file(REMOVE_RECURSE
  "CMakeFiles/fig2_win_calls.dir/fig2_win_calls.cpp.o"
  "CMakeFiles/fig2_win_calls.dir/fig2_win_calls.cpp.o.d"
  "fig2_win_calls"
  "fig2_win_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_win_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
