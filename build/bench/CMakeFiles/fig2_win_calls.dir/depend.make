# Empty dependencies file for fig2_win_calls.
# This may be replaced when dependencies are built.
