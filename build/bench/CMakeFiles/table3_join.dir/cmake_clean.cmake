file(REMOVE_RECURSE
  "CMakeFiles/table3_join.dir/table3_join.cpp.o"
  "CMakeFiles/table3_join.dir/table3_join.cpp.o.d"
  "table3_join"
  "table3_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
