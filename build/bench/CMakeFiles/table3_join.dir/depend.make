# Empty dependencies file for table3_join.
# This may be replaced when dependencies are built.
