file(REMOVE_RECURSE
  "CMakeFiles/datalog_suite.dir/datalog_suite.cpp.o"
  "CMakeFiles/datalog_suite.dir/datalog_suite.cpp.o.d"
  "datalog_suite"
  "datalog_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
