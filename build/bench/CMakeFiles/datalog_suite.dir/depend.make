# Empty dependencies file for datalog_suite.
# This may be replaced when dependencies are built.
