file(REMOVE_RECURSE
  "CMakeFiles/load_io.dir/load_io.cpp.o"
  "CMakeFiles/load_io.dir/load_io.cpp.o.d"
  "load_io"
  "load_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
