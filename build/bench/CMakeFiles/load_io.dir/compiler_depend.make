# Empty compiler generated dependencies file for load_io.
# This may be replaced when dependencies are built.
