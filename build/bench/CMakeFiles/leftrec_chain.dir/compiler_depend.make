# Empty compiler generated dependencies file for leftrec_chain.
# This may be replaced when dependencies are built.
