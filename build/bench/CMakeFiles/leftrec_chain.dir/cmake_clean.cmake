file(REMOVE_RECURSE
  "CMakeFiles/leftrec_chain.dir/leftrec_chain.cpp.o"
  "CMakeFiles/leftrec_chain.dir/leftrec_chain.cpp.o.d"
  "leftrec_chain"
  "leftrec_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leftrec_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
