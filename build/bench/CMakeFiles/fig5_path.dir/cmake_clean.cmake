file(REMOVE_RECURSE
  "CMakeFiles/fig5_path.dir/fig5_path.cpp.o"
  "CMakeFiles/fig5_path.dir/fig5_path.cpp.o.d"
  "fig5_path"
  "fig5_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
