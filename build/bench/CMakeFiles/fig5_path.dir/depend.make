# Empty dependencies file for fig5_path.
# This may be replaced when dependencies are built.
