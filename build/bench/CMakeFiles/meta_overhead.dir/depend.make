# Empty dependencies file for meta_overhead.
# This may be replaced when dependencies are built.
