file(REMOVE_RECURSE
  "CMakeFiles/meta_overhead.dir/meta_overhead.cpp.o"
  "CMakeFiles/meta_overhead.dir/meta_overhead.cpp.o.d"
  "meta_overhead"
  "meta_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
