# Empty dependencies file for indexing_ablation.
# This may be replaced when dependencies are built.
