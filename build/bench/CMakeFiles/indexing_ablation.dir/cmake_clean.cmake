file(REMOVE_RECURSE
  "CMakeFiles/indexing_ablation.dir/indexing_ablation.cpp.o"
  "CMakeFiles/indexing_ablation.dir/indexing_ablation.cpp.o.d"
  "indexing_ablation"
  "indexing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
