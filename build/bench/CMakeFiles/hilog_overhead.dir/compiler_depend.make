# Empty compiler generated dependencies file for hilog_overhead.
# This may be replaced when dependencies are built.
