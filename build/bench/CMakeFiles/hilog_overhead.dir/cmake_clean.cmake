file(REMOVE_RECURSE
  "CMakeFiles/hilog_overhead.dir/hilog_overhead.cpp.o"
  "CMakeFiles/hilog_overhead.dir/hilog_overhead.cpp.o.d"
  "hilog_overhead"
  "hilog_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilog_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
