# Empty dependencies file for sld_overhead.
# This may be replaced when dependencies are built.
