file(REMOVE_RECURSE
  "CMakeFiles/sld_overhead.dir/sld_overhead.cpp.o"
  "CMakeFiles/sld_overhead.dir/sld_overhead.cpp.o.d"
  "sld_overhead"
  "sld_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sld_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
