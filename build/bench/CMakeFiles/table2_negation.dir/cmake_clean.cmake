file(REMOVE_RECURSE
  "CMakeFiles/table2_negation.dir/table2_negation.cpp.o"
  "CMakeFiles/table2_negation.dir/table2_negation.cpp.o.d"
  "table2_negation"
  "table2_negation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
