# Empty compiler generated dependencies file for table2_negation.
# This may be replaced when dependencies are built.
