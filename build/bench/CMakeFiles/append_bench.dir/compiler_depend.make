# Empty compiler generated dependencies file for append_bench.
# This may be replaced when dependencies are built.
