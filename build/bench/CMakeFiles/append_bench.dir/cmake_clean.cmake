file(REMOVE_RECURSE
  "CMakeFiles/append_bench.dir/append_bench.cpp.o"
  "CMakeFiles/append_bench.dir/append_bench.cpp.o.d"
  "append_bench"
  "append_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/append_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
