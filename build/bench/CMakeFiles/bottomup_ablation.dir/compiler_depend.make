# Empty compiler generated dependencies file for bottomup_ablation.
# This may be replaced when dependencies are built.
