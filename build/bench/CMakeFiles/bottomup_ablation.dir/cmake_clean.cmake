file(REMOVE_RECURSE
  "CMakeFiles/bottomup_ablation.dir/bottomup_ablation.cpp.o"
  "CMakeFiles/bottomup_ablation.dir/bottomup_ablation.cpp.o.d"
  "bottomup_ablation"
  "bottomup_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottomup_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
