# Empty compiler generated dependencies file for xsb.
# This may be replaced when dependencies are built.
