file(REMOVE_RECURSE
  "libxsb.a"
)
