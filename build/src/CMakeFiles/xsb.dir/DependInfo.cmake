
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "src/CMakeFiles/xsb.dir/base/status.cc.o" "gcc" "src/CMakeFiles/xsb.dir/base/status.cc.o.d"
  "/root/repo/src/bottomup/magic.cc" "src/CMakeFiles/xsb.dir/bottomup/magic.cc.o" "gcc" "src/CMakeFiles/xsb.dir/bottomup/magic.cc.o.d"
  "/root/repo/src/bottomup/relation.cc" "src/CMakeFiles/xsb.dir/bottomup/relation.cc.o" "gcc" "src/CMakeFiles/xsb.dir/bottomup/relation.cc.o.d"
  "/root/repo/src/bottomup/rules.cc" "src/CMakeFiles/xsb.dir/bottomup/rules.cc.o" "gcc" "src/CMakeFiles/xsb.dir/bottomup/rules.cc.o.d"
  "/root/repo/src/bottomup/seminaive.cc" "src/CMakeFiles/xsb.dir/bottomup/seminaive.cc.o" "gcc" "src/CMakeFiles/xsb.dir/bottomup/seminaive.cc.o.d"
  "/root/repo/src/db/index.cc" "src/CMakeFiles/xsb.dir/db/index.cc.o" "gcc" "src/CMakeFiles/xsb.dir/db/index.cc.o.d"
  "/root/repo/src/db/loader.cc" "src/CMakeFiles/xsb.dir/db/loader.cc.o" "gcc" "src/CMakeFiles/xsb.dir/db/loader.cc.o.d"
  "/root/repo/src/db/objfile.cc" "src/CMakeFiles/xsb.dir/db/objfile.cc.o" "gcc" "src/CMakeFiles/xsb.dir/db/objfile.cc.o.d"
  "/root/repo/src/db/program.cc" "src/CMakeFiles/xsb.dir/db/program.cc.o" "gcc" "src/CMakeFiles/xsb.dir/db/program.cc.o.d"
  "/root/repo/src/db/table_all.cc" "src/CMakeFiles/xsb.dir/db/table_all.cc.o" "gcc" "src/CMakeFiles/xsb.dir/db/table_all.cc.o.d"
  "/root/repo/src/db/trie_index.cc" "src/CMakeFiles/xsb.dir/db/trie_index.cc.o" "gcc" "src/CMakeFiles/xsb.dir/db/trie_index.cc.o.d"
  "/root/repo/src/engine/builtins.cc" "src/CMakeFiles/xsb.dir/engine/builtins.cc.o" "gcc" "src/CMakeFiles/xsb.dir/engine/builtins.cc.o.d"
  "/root/repo/src/engine/machine.cc" "src/CMakeFiles/xsb.dir/engine/machine.cc.o" "gcc" "src/CMakeFiles/xsb.dir/engine/machine.cc.o.d"
  "/root/repo/src/hilog/hilog.cc" "src/CMakeFiles/xsb.dir/hilog/hilog.cc.o" "gcc" "src/CMakeFiles/xsb.dir/hilog/hilog.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/xsb.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/xsb.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/ops.cc" "src/CMakeFiles/xsb.dir/parser/ops.cc.o" "gcc" "src/CMakeFiles/xsb.dir/parser/ops.cc.o.d"
  "/root/repo/src/parser/reader.cc" "src/CMakeFiles/xsb.dir/parser/reader.cc.o" "gcc" "src/CMakeFiles/xsb.dir/parser/reader.cc.o.d"
  "/root/repo/src/parser/writer.cc" "src/CMakeFiles/xsb.dir/parser/writer.cc.o" "gcc" "src/CMakeFiles/xsb.dir/parser/writer.cc.o.d"
  "/root/repo/src/tabling/evaluator.cc" "src/CMakeFiles/xsb.dir/tabling/evaluator.cc.o" "gcc" "src/CMakeFiles/xsb.dir/tabling/evaluator.cc.o.d"
  "/root/repo/src/tabling/table_space.cc" "src/CMakeFiles/xsb.dir/tabling/table_space.cc.o" "gcc" "src/CMakeFiles/xsb.dir/tabling/table_space.cc.o.d"
  "/root/repo/src/term/flat.cc" "src/CMakeFiles/xsb.dir/term/flat.cc.o" "gcc" "src/CMakeFiles/xsb.dir/term/flat.cc.o.d"
  "/root/repo/src/term/store.cc" "src/CMakeFiles/xsb.dir/term/store.cc.o" "gcc" "src/CMakeFiles/xsb.dir/term/store.cc.o.d"
  "/root/repo/src/term/symbols.cc" "src/CMakeFiles/xsb.dir/term/symbols.cc.o" "gcc" "src/CMakeFiles/xsb.dir/term/symbols.cc.o.d"
  "/root/repo/src/wam/compile.cc" "src/CMakeFiles/xsb.dir/wam/compile.cc.o" "gcc" "src/CMakeFiles/xsb.dir/wam/compile.cc.o.d"
  "/root/repo/src/wam/emulator.cc" "src/CMakeFiles/xsb.dir/wam/emulator.cc.o" "gcc" "src/CMakeFiles/xsb.dir/wam/emulator.cc.o.d"
  "/root/repo/src/wam/instr.cc" "src/CMakeFiles/xsb.dir/wam/instr.cc.o" "gcc" "src/CMakeFiles/xsb.dir/wam/instr.cc.o.d"
  "/root/repo/src/wfs/wfs.cc" "src/CMakeFiles/xsb.dir/wfs/wfs.cc.o" "gcc" "src/CMakeFiles/xsb.dir/wfs/wfs.cc.o.d"
  "/root/repo/src/xsb/engine.cc" "src/CMakeFiles/xsb.dir/xsb/engine.cc.o" "gcc" "src/CMakeFiles/xsb.dir/xsb/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
