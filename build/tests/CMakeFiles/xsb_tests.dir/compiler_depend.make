# Empty compiler generated dependencies file for xsb_tests.
# This may be replaced when dependencies are built.
