file(REMOVE_RECURSE
  "CMakeFiles/xsb_tests.dir/bottomup_test.cc.o"
  "CMakeFiles/xsb_tests.dir/bottomup_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/builtins_ext_test.cc.o"
  "CMakeFiles/xsb_tests.dir/builtins_ext_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/engine_api_test.cc.o"
  "CMakeFiles/xsb_tests.dir/engine_api_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/engine_test.cc.o"
  "CMakeFiles/xsb_tests.dir/engine_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/flat_test.cc.o"
  "CMakeFiles/xsb_tests.dir/flat_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/hilog_test.cc.o"
  "CMakeFiles/xsb_tests.dir/hilog_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/index_test.cc.o"
  "CMakeFiles/xsb_tests.dir/index_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/integration_test.cc.o"
  "CMakeFiles/xsb_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/parser_test.cc.o"
  "CMakeFiles/xsb_tests.dir/parser_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/property_test.cc.o"
  "CMakeFiles/xsb_tests.dir/property_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/tabling_test.cc.o"
  "CMakeFiles/xsb_tests.dir/tabling_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/term_test.cc.o"
  "CMakeFiles/xsb_tests.dir/term_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/wam_test.cc.o"
  "CMakeFiles/xsb_tests.dir/wam_test.cc.o.d"
  "CMakeFiles/xsb_tests.dir/wfs_test.cc.o"
  "CMakeFiles/xsb_tests.dir/wfs_test.cc.o.d"
  "xsb_tests"
  "xsb_tests.pdb"
  "xsb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
