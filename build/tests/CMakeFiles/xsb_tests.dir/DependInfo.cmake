
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bottomup_test.cc" "tests/CMakeFiles/xsb_tests.dir/bottomup_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/bottomup_test.cc.o.d"
  "/root/repo/tests/builtins_ext_test.cc" "tests/CMakeFiles/xsb_tests.dir/builtins_ext_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/builtins_ext_test.cc.o.d"
  "/root/repo/tests/engine_api_test.cc" "tests/CMakeFiles/xsb_tests.dir/engine_api_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/engine_api_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/xsb_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/flat_test.cc" "tests/CMakeFiles/xsb_tests.dir/flat_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/flat_test.cc.o.d"
  "/root/repo/tests/hilog_test.cc" "tests/CMakeFiles/xsb_tests.dir/hilog_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/hilog_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/xsb_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/xsb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/xsb_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/xsb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/tabling_test.cc" "tests/CMakeFiles/xsb_tests.dir/tabling_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/tabling_test.cc.o.d"
  "/root/repo/tests/term_test.cc" "tests/CMakeFiles/xsb_tests.dir/term_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/term_test.cc.o.d"
  "/root/repo/tests/wam_test.cc" "tests/CMakeFiles/xsb_tests.dir/wam_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/wam_test.cc.o.d"
  "/root/repo/tests/wfs_test.cc" "tests/CMakeFiles/xsb_tests.dir/wfs_test.cc.o" "gcc" "tests/CMakeFiles/xsb_tests.dir/wfs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xsb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
