# Empty dependencies file for same_generation.
# This may be replaced when dependencies are built.
