# Empty dependencies file for company_db.
# This may be replaced when dependencies are built.
