file(REMOVE_RECURSE
  "CMakeFiles/company_db.dir/company_db.cpp.o"
  "CMakeFiles/company_db.dir/company_db.cpp.o.d"
  "company_db"
  "company_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
