file(REMOVE_RECURSE
  "CMakeFiles/win_game.dir/win_game.cpp.o"
  "CMakeFiles/win_game.dir/win_game.cpp.o.d"
  "win_game"
  "win_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/win_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
