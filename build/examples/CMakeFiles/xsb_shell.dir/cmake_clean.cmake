file(REMOVE_RECURSE
  "CMakeFiles/xsb_shell.dir/xsb_shell.cpp.o"
  "CMakeFiles/xsb_shell.dir/xsb_shell.cpp.o.d"
  "xsb_shell"
  "xsb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
