# Empty dependencies file for xsb_shell.
# This may be replaced when dependencies are built.
