file(REMOVE_RECURSE
  "CMakeFiles/hilog_sets.dir/hilog_sets.cpp.o"
  "CMakeFiles/hilog_sets.dir/hilog_sets.cpp.o.d"
  "hilog_sets"
  "hilog_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilog_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
