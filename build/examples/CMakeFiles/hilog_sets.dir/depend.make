# Empty dependencies file for hilog_sets.
# This may be replaced when dependencies are built.
