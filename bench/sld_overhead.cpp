// Section 3.2: "Using the SLG-WAM to execute Prolog's SLD resolution incurs
// only minimal overhead ... usually less than 10% slower than PSB-Prolog's
// WAM." The analogous measurement here: classic Prolog programs (no tabled
// predicates) run on the machine with the SLG machinery armed (evaluator
// attached, per-call tabled check active) vs the same machine with tabling
// structurally ignored — the cost of being a tabling engine when no tabling
// happens.

#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

constexpr char kNrev[] =
    "app([], L, L).\n"
    "app([H|T], L, [H|R]) :- app(T, L, R).\n"
    "nrev([], []).\n"
    "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n";

double TimeGoal(xsb::Engine* engine, const std::string& goal) {
  return xsb::bench::TimeBest([&]() {
    auto r = engine->Count(goal);
    if (!r.ok()) std::abort();
  });
}

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("SLD code on the SLG engine: tabling hooks armed vs ignored");
  PrintRow("program", {"armed ms", "ignored ms", "overhead"}, 30, 12);

  struct Case {
    std::string name;
    std::string program;
    std::string goal;
  };
  std::vector<Case> cases{
      {"nrev(30 elements)", kNrev,
       "nrev(" + xsb::bench::ListText(30) + ", _)"},
      {"right-rec path, chain 1024",
       "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n" +
           xsb::bench::ChainEdges(1024),
       "path(1, X)"},
      {"naive member x2000",
       "mem(X,[X|_]). mem(X,[_|T]) :- mem(X,T).\n"
       "drive(0) :- !.\n"
       "drive(N) :- mem(" + std::to_string(25) + ", " +
           xsb::bench::ListText(25) + "), M is N - 1, drive(M).\n",
       "drive(2000)"},
  };

  for (const Case& c : cases) {
    xsb::Engine armed;  // evaluator attached (the default)
    if (!armed.ConsultString(c.program).ok()) std::abort();
    double with_hooks = TimeGoal(&armed, c.goal);

    xsb::Engine plain;
    if (!plain.ConsultString(c.program).ok()) std::abort();
    plain.machine().set_ignore_tabling(true);
    plain.machine().set_tabled_handler(nullptr);
    double without_hooks = TimeGoal(&plain, c.goal);

    double overhead = (with_hooks / without_hooks - 1.0) * 100.0;
    PrintRow(c.name,
             {FmtMs(with_hooks), FmtMs(without_hooks),
              Fmt(overhead, 1) + "%"},
             30, 12);
  }

  std::printf(
      "\nPaper: the SLG-WAM runs plain Prolog at most ~10%% slower than the\n"
      "WAM it derives from (the cost was trailing/testing extra pointers).\n"
      "Here the hook is a per-call predicate-flag test, so the overhead\n"
      "should be near zero — same conclusion, cheaper mechanism.\n");
  return 0;
}
