// Section 5's "SLG at the speed of compiled Prolog" experiment: the
// left-recursive tabled path/2 vs its right-recursive SLD form over chains
// and binary trees (no redundant paths, so SLD is linear and loop-free).
// The paper measures left-recursive SLG at about 20-25% slower than
// right-recursive SLD, the difference being answer-copying into table space
// and table reclamation.

#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

double TimeQuery(const std::string& program, const std::string& goal,
                 bool abolish) {
  xsb::Engine engine;
  if (!engine.ConsultString(program).ok()) std::abort();
  return xsb::bench::TimeBest([&]() {
    if (abolish) engine.AbolishAllTables();
    auto n = engine.Count(goal);
    if (!n.ok()) std::abort();
  });
}

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  constexpr char kSlgLeft[] =
      ":- table path/2.\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
  constexpr char kSldRight[] =
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- edge(X,Z), path(Z,Y).\n";

  PrintHeader("left-recursive SLG vs right-recursive SLD: ?- path(1,X)");
  PrintRow("structure", {"SLD ms", "SLG ms", "SLG/SLD"}, 26, 12);

  struct Case {
    const char* name;
    std::string edges;
  };
  std::vector<Case> cases{
      {"chain 512", xsb::bench::ChainEdges(512)},
      {"chain 2048", xsb::bench::ChainEdges(2048)},
      {"binary tree h=9", xsb::bench::BinaryTreeEdges(9, "edge")},
      {"binary tree h=11", xsb::bench::BinaryTreeEdges(11, "edge")},
  };
  for (const Case& c : cases) {
    double sld = TimeQuery(kSldRight + c.edges, "path(1, X)", false);
    double slg = TimeQuery(kSlgLeft + c.edges, "path(1, X)", true);
    PrintRow(c.name, {FmtMs(sld), FmtMs(slg), Fmt(slg / sld, 2)}, 26, 12);
  }

  std::printf(
      "\nPaper: left-recursive SLG takes ~1.20-1.25x the right-recursive\n"
      "SLD time on chains and trees, including answer copying to table\n"
      "space and table reclamation. SLG additionally terminates on cycles\n"
      "where SLD cannot.\n");
  return 0;
}
