// Figure 5 of the paper: the left-recursive path/2 program over cycles and
// fanout structures — XSB's tabled tuple-at-a-time evaluation vs the
// bottom-up set-at-a-time baseline (CORAL-def = semi-naive + magic sets;
// CORAL-fac = with the factoring optimization).
//
// The paper iterates the query 1000 times on cycles of length 8..2048 and
// on fanout relations; we report per-query times and the bottom-up/XSB
// ratios (paper: roughly an order of magnitude in XSB's favor).
//
// A third section runs the same path query through the raw WAM layer on
// acyclic chains (right recursion, so plain SLD terminates): the bytecode
// emulator vs the ISSUE 9 native tier — the `jit` column. Chains keep the
// whole derivation inside the JIT's straight-line subset (no builtins), so
// this is the workload where the native tier should pay off most.
//
// Usage: fig5_path [OUT.json]

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wam_tier.h"
#include "bottomup/magic.h"
#include "bottomup/seminaive.h"
#include "xsb/engine.h"

namespace {

using xsb::datalog::DatalogProgram;
using xsb::datalog::Evaluation;
using xsb::datalog::FactorRewrite;
using xsb::datalog::Literal;
using xsb::datalog::MagicRewrite;
using xsb::datalog::ParseDatalog;
using xsb::datalog::ParseQuery;

constexpr char kTc[] =
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- path(X,Z), edge(Z,Y).\n";

// Right-recursive variant for the non-tabled WAM tiers.
constexpr char kTcRight[] =
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- edge(X,Z), path(Z,Y).\n";

// Tabled engine: load once, per-iteration abolish tables + query (the paper
// reclaims table space between iterations, section 5).
double TimeXsb(const std::string& edges) {
  xsb::Engine engine;
  if (!engine.ConsultString(":- table path/2.\n" + std::string(kTc) + edges)
           .ok()) {
    std::abort();
  }
  return xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto n = engine.Count("path(1, X)");
    if (!n.ok()) std::abort();
  });
}

enum class BottomUpMode { kMagic, kFactoring, kPlain };

double TimeBottomUp(const std::string& edges, BottomUpMode mode) {
  // Parse once; per-iteration work is rewrite + evaluation, as in CORAL.
  DatalogProgram base;
  if (!ParseDatalog(std::string(kTc) + edges, &base).ok()) std::abort();
  return xsb::bench::TimeBest([&]() {
    DatalogProgram program = base;
    auto query = ParseQuery("path(1, X)", &program);
    Literal target = query.value();
    if (mode == BottomUpMode::kMagic) {
      auto rewritten = MagicRewrite(&program, query.value());
      if (!rewritten.ok()) std::abort();
      target = rewritten.value();
    } else if (mode == BottomUpMode::kFactoring) {
      auto rewritten = FactorRewrite(&program, query.value());
      if (!rewritten.ok()) std::abort();
      target = rewritten.value();
    }
    Evaluation eval(&program);
    if (!eval.Run().ok()) std::abort();
    (void)eval.Select(target);
  });
}

struct FigRow {
  int size = 0;
  double xsb = 0, magic = 0, factored = 0;
};

std::vector<FigRow> Report(const char* title, const std::vector<int>& sizes,
                           const std::function<std::string(int)>& make_edges) {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader(title);
  std::vector<std::string> header;
  for (int n : sizes) header.push_back(std::to_string(n));
  PrintRow("size", header, 26, 10);

  std::vector<FigRow> rows;
  for (int n : sizes) {
    std::string edges = make_edges(n);
    FigRow row;
    row.size = n;
    row.xsb = TimeXsb(edges);
    row.magic = TimeBottomUp(edges, BottomUpMode::kMagic);
    row.factored = TimeBottomUp(edges, BottomUpMode::kFactoring);
    rows.push_back(row);
  }
  auto ms_row = [&](const char* label,
                    const std::function<double(const FigRow&)>& get) {
    std::vector<std::string> cells;
    for (const FigRow& r : rows) cells.push_back(FmtMs(get(r)));
    PrintRow(label, cells, 26, 10);
  };
  ms_row("XSB tabled (ms)", [](const FigRow& r) { return r.xsb; });
  ms_row("CORAL-def magic (ms)", [](const FigRow& r) { return r.magic; });
  ms_row("CORAL-fac factored (ms)", [](const FigRow& r) { return r.factored; });
  std::vector<std::string> r1, r2;
  for (const FigRow& r : rows) {
    r1.push_back(Fmt(r.magic / r.xsb, 1));
    r2.push_back(Fmt(r.factored / r.xsb, 1));
  }
  PrintRow("ratio magic/XSB", r1, 26, 10);
  PrintRow("ratio factored/XSB", r2, 26, 10);
  return rows;
}

struct JitRow {
  int size = 0;
  xsb::bench::WamTierRun emu;
  xsb::bench::WamTierRun jit;
};

std::string FigRowsJson(const std::vector<FigRow>& rows) {
  std::string json;
  for (size_t i = 0; i < rows.size(); ++i) {
    const FigRow& r = rows[i];
    json += "    {\"size\": " + std::to_string(r.size) +
            ", \"xsb_tabled_ms\": " + xsb::bench::Fmt(r.xsb * 1e3, 3) +
            ", \"coral_magic_ms\": " + xsb::bench::Fmt(r.magic * 1e3, 3) +
            ", \"coral_factored_ms\": " + xsb::bench::Fmt(r.factored * 1e3, 3) +
            "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  std::vector<int> cycle_sizes{8, 32, 128, 512, 1024, 2048};
  std::vector<FigRow> cycle_rows =
      Report("Figure 5 (left): ?- path(1,X) on cycles of length 8..2048",
             cycle_sizes, [](int n) { return xsb::bench::CycleEdges(n); });

  std::vector<int> fanout_sizes{8, 64, 256, 1024, 4096};
  std::vector<FigRow> fanout_rows =
      Report("Figure 5 (right): ?- path(1,X) on fanout edge(1,1..N)",
             fanout_sizes, [](int n) { return xsb::bench::FanoutEdges(n); });

  PrintHeader("WAM tiers: ?- path(1,X), right recursion on acyclic chains");
  PrintRow("chain size",
           {"emulator ms", "jit ms", "jit speedup", "instructions"}, 14, 14);
  std::vector<JitRow> jit_rows;
  for (int n : {128, 256, 512, 1024}) {
    std::string program = std::string(kTcRight) + xsb::bench::ChainEdges(n);
    JitRow row;
    row.size = n;
    int reps = n <= 256 ? 20 : 4;
    row.emu = xsb::bench::TimeWamTier(program, "path(1, X)",
                                      /*jit_threshold=*/-1, reps);
    row.jit = xsb::bench::TimeWamTier(program, "path(1, X)",
                                      /*jit_threshold=*/0, reps);
    if (row.emu.answers != row.jit.answers) std::abort();
    PrintRow(std::to_string(n),
             {FmtMs(row.emu.seconds), FmtMs(row.jit.seconds),
              Fmt(row.emu.seconds / row.jit.seconds, 2),
              std::to_string(row.emu.instructions)},
             14, 14);
    jit_rows.push_back(row);
  }

  std::printf(
      "\nPaper's Figure 5 shape: XSB about an order of magnitude faster\n"
      "than CORAL(def); factoring narrows but does not close the gap.\n"
      "The WAM-tier table is the engine-compilation rung underneath: the\n"
      "chain derivation stays entirely inside the JIT's native subset, so\n"
      "the speedup there is pure dispatch-loop elimination (jit_active=%d\n"
      "on this host; unsupported hosts report 1.0x by construction).\n",
      jit_rows.empty() ? 0 : static_cast<int>(jit_rows.back().jit.jit_active));

  if (argc > 1) {
    std::string json = "{\n  \"bench\": \"fig5_path\",\n  \"jit_active\": ";
    json += (!jit_rows.empty() && jit_rows.back().jit.jit_active) ? "true"
                                                                  : "false";
    json += ",\n  \"cycle_rows\": [\n" + FigRowsJson(cycle_rows) +
            "  ],\n  \"fanout_rows\": [\n" + FigRowsJson(fanout_rows) +
            "  ],\n  \"jit_chain_rows\": [\n";
    for (size_t i = 0; i < jit_rows.size(); ++i) {
      const JitRow& r = jit_rows[i];
      json += "    {\"chain_size\": " + std::to_string(r.size) +
              ", \"answers\": " + std::to_string(r.emu.answers) +
              ", \"wam_emulator_ms\": " + Fmt(r.emu.seconds * 1e3, 3) +
              ", \"wam_jit_ms\": " + Fmt(r.jit.seconds * 1e3, 3) +
              ", \"jit_speedup\": " + Fmt(r.emu.seconds / r.jit.seconds, 2) +
              ", \"instructions\": " + std::to_string(r.emu.instructions) +
              ", \"jit_compiled_preds\": " + std::to_string(r.jit.jit_compiled) +
              "}";
      json += (i + 1 < jit_rows.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
