// Figure 5 of the paper: the left-recursive path/2 program over cycles and
// fanout structures — XSB's tabled tuple-at-a-time evaluation vs the
// bottom-up set-at-a-time baseline (CORAL-def = semi-naive + magic sets;
// CORAL-fac = with the factoring optimization).
//
// The paper iterates the query 1000 times on cycles of length 8..2048 and
// on fanout relations; we report per-query times and the bottom-up/XSB
// ratios (paper: roughly an order of magnitude in XSB's favor).

#include <string>

#include "bench/bench_util.h"
#include "bottomup/magic.h"
#include "bottomup/seminaive.h"
#include "xsb/engine.h"

namespace {

using xsb::datalog::DatalogProgram;
using xsb::datalog::Evaluation;
using xsb::datalog::FactorRewrite;
using xsb::datalog::Literal;
using xsb::datalog::MagicRewrite;
using xsb::datalog::ParseDatalog;
using xsb::datalog::ParseQuery;

constexpr char kTc[] =
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- path(X,Z), edge(Z,Y).\n";

// Tabled engine: load once, per-iteration abolish tables + query (the paper
// reclaims table space between iterations, section 5).
double TimeXsb(const std::string& edges) {
  xsb::Engine engine;
  if (!engine.ConsultString(":- table path/2.\n" + std::string(kTc) + edges)
           .ok()) {
    std::abort();
  }
  return xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto n = engine.Count("path(1, X)");
    if (!n.ok()) std::abort();
  });
}

enum class BottomUpMode { kMagic, kFactoring, kPlain };

double TimeBottomUp(const std::string& edges, BottomUpMode mode) {
  // Parse once; per-iteration work is rewrite + evaluation, as in CORAL.
  DatalogProgram base;
  if (!ParseDatalog(std::string(kTc) + edges, &base).ok()) std::abort();
  return xsb::bench::TimeBest([&]() {
    DatalogProgram program = base;
    auto query = ParseQuery("path(1, X)", &program);
    Literal target = query.value();
    if (mode == BottomUpMode::kMagic) {
      auto rewritten = MagicRewrite(&program, query.value());
      if (!rewritten.ok()) std::abort();
      target = rewritten.value();
    } else if (mode == BottomUpMode::kFactoring) {
      auto rewritten = FactorRewrite(&program, query.value());
      if (!rewritten.ok()) std::abort();
      target = rewritten.value();
    }
    Evaluation eval(&program);
    if (!eval.Run().ok()) std::abort();
    (void)eval.Select(target);
  });
}

void Report(const char* title, const std::vector<int>& sizes,
            const std::function<std::string(int)>& make_edges) {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader(title);
  std::vector<std::string> header;
  for (int n : sizes) header.push_back(std::to_string(n));
  PrintRow("size", header, 26, 10);

  std::vector<double> xsb_t, magic_t, fac_t;
  for (int n : sizes) {
    std::string edges = make_edges(n);
    xsb_t.push_back(TimeXsb(edges));
    magic_t.push_back(TimeBottomUp(edges, BottomUpMode::kMagic));
    fac_t.push_back(TimeBottomUp(edges, BottomUpMode::kFactoring));
  }
  auto ms_row = [&](const char* label, const std::vector<double>& xs) {
    std::vector<std::string> cells;
    for (double x : xs) cells.push_back(FmtMs(x));
    PrintRow(label, cells, 26, 10);
  };
  ms_row("XSB tabled (ms)", xsb_t);
  ms_row("CORAL-def magic (ms)", magic_t);
  ms_row("CORAL-fac factored (ms)", fac_t);
  std::vector<std::string> r1, r2;
  for (size_t i = 0; i < sizes.size(); ++i) {
    r1.push_back(Fmt(magic_t[i] / xsb_t[i], 1));
    r2.push_back(Fmt(fac_t[i] / xsb_t[i], 1));
  }
  PrintRow("ratio magic/XSB", r1, 26, 10);
  PrintRow("ratio factored/XSB", r2, 26, 10);
}

}  // namespace

int main() {
  std::vector<int> cycle_sizes{8, 32, 128, 512, 1024, 2048};
  Report("Figure 5 (left): ?- path(1,X) on cycles of length 8..2048",
         cycle_sizes,
         [](int n) { return xsb::bench::CycleEdges(n); });

  std::vector<int> fanout_sizes{8, 64, 256, 1024, 4096};
  Report("Figure 5 (right): ?- path(1,X) on fanout edge(1,1..N)",
         fanout_sizes,
         [](int n) { return xsb::bench::FanoutEdges(n); });

  std::printf(
      "\nPaper's Figure 5 shape: XSB about an order of magnitude faster\n"
      "than CORAL(def); factoring narrows but does not close the gap.\n");
  return 0;
}
