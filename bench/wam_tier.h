#ifndef XSB_BENCH_WAM_TIER_H_
#define XSB_BENCH_WAM_TIER_H_

// Shared harness for timing a goal on the raw WAM layer at a chosen
// execution tier: jit_threshold = -1 pins the bytecode emulator,
// jit_threshold = 0 compiles every predicate to native code on first entry
// (the top rung of the Table 3 ladder; see DESIGN.md "Execution tiers").
// Benches must pin the tier explicitly — a default-constructed Emulator
// reads XSB_JIT_THRESHOLD and would tier up mid-measurement.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "db/loader.h"
#include "parser/reader.h"
#include "wam/compile.h"
#include "wam/emulator.h"

namespace xsb::bench {

struct WamTierRun {
  double seconds = 0;          // best per-solve wall time
  size_t answers = 0;          // answers from one solve
  uint64_t instructions = 0;   // WAM instructions retired by one solve
  uint64_t choice_points = 0;  // choice points pushed by one solve
  uint64_t switch_structure_hits = 0;  // functor-keyed dispatches in one solve
  bool jit_active = false;     // a native tier exists on this emulator
  uint64_t jit_compiled = 0;   // predicates actually compiled to x64
};

// Consults `program`, compiles it, and times `goal` on one emulator built
// with the given tier-up threshold. Each timed iteration runs the solve
// `reps` times (amplifies sub-millisecond workloads above timer noise); the
// returned per-solve time divides that back out. The first solve is untimed
// warmup, so with threshold 0 the timed runs are all-native.
inline WamTierRun TimeWamTier(const std::string& program,
                              const std::string& goal, int64_t jit_threshold,
                              int reps = 1, double min_seconds = 0.05,
                              int max_repeats = 7) {
  SymbolTable symbols;
  TermStore store(&symbols);
  Program prog(&symbols);
  Loader loader(&store, &prog);
  if (!loader.ConsultString(program).ok()) std::abort();
  Result<wam::CompiledModule> compiled = wam::CompileModule(&store, prog, {});
  if (!compiled.ok()) std::abort();
  wam::EmulatorOptions opts;
  opts.jit_threshold = jit_threshold;
  wam::Emulator emulator(&store, &compiled.value(), opts);
  Result<Word> g = ParseTermString(&store, prog.ops(), goal);
  if (!g.ok()) std::abort();

  WamTierRun run;
  run.jit_active = emulator.jit_active();
  auto solve = [&]() {
    size_t trail = store.TrailMark();
    size_t count = 0;
    Status s = emulator.Solve(g.value(), [&count]() {
      ++count;
      return wam::WamAction::kContinue;
    });
    store.UndoTrail(trail);
    if (!s.ok()) std::abort();
    run.answers = count;
  };
  solve();  // warmup: tier-up (if any) happens here, off the clock
  uint64_t instr0 = emulator.stats().instructions;
  uint64_t cps0 = emulator.stats().choice_points;
  uint64_t swh0 = emulator.stats().switch_structure_hits;
  solve();
  run.instructions = emulator.stats().instructions - instr0;
  run.choice_points = emulator.stats().choice_points - cps0;
  run.switch_structure_hits =
      emulator.stats().switch_structure_hits - swh0;
  run.seconds = TimeBest(
                    [&]() {
                      for (int i = 0; i < reps; ++i) solve();
                    },
                    min_seconds, max_repeats) /
                reps;
  run.jit_compiled = emulator.stats().jit_compiled_preds;
  return run;
}

}  // namespace xsb::bench

#endif  // XSB_BENCH_WAM_TIER_H_
