// Ablation A2 (DESIGN.md): what the bottom-up baseline's own optimizations
// are worth — naive vs semi-naive iteration, and magic sets on/off — so the
// Figure 5 comparison is against the baseline at its best.

#include <string>

#include "bench/bench_util.h"
#include "bottomup/magic.h"
#include "bottomup/seminaive.h"

namespace {

using xsb::datalog::DatalogProgram;
using xsb::datalog::EvalOptions;
using xsb::datalog::Evaluation;
using xsb::datalog::Literal;
using xsb::datalog::MagicRewrite;
using xsb::datalog::ParseDatalog;
using xsb::datalog::ParseQuery;

constexpr char kTc[] =
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- path(X,Z), edge(Z,Y).\n";

double TimeEval(const std::string& text, bool seminaive, bool magic,
                uint64_t* tuples) {
  DatalogProgram base;
  if (!ParseDatalog(text, &base).ok()) std::abort();
  double t = xsb::bench::TimeBest([&]() {
    DatalogProgram program = base;
    auto query = ParseQuery("path(1, X)", &program);
    Literal target = query.value();
    if (magic) {
      auto rewritten = MagicRewrite(&program, query.value());
      if (!rewritten.ok()) std::abort();
      target = rewritten.value();
    }
    EvalOptions options;
    options.seminaive = seminaive;
    Evaluation eval(&program);
    if (!eval.Run(options).ok()) std::abort();
    (void)eval.Select(target);
    *tuples = eval.stats().tuples_inserted;
  });
  return t;
}

}  // namespace

int main() {
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("bottom-up ablation: ?- path(1,X), two disconnected chains");
  PrintRow("config", {"ms", "tuples derived"}, 34, 16);

  // Two chains of 300; only one is reachable from the query constant.
  std::string text = kTc;
  text += xsb::bench::ChainEdges(300);
  for (int i = 0; i < 300; ++i) {
    text += "edge(" + std::to_string(10000 + i) + "," +
            std::to_string(10001 + i) + ").\n";
  }

  struct Config {
    const char* name;
    bool seminaive;
    bool magic;
  };
  for (const Config& c :
       {Config{"naive, no magic", false, false},
        Config{"semi-naive, no magic", true, false},
        Config{"naive + magic", false, true},
        Config{"semi-naive + magic (CORAL-def)", true, true}}) {
    uint64_t tuples = 0;
    double t = TimeEval(text, c.seminaive, c.magic, &tuples);
    PrintRow(c.name, {FmtMs(t), std::to_string(tuples)}, 34, 16);
  }

  std::printf(
      "\nExpected: semi-naive beats naive by avoiding rederivation; magic\n"
      "cuts derived tuples to the reachable half and, combined, gives the\n"
      "configuration Figure 5 calls CORAL-def.\n");
  return 0;
}
