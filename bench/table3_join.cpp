// Table 3 of the paper: approximate relative speeds of an indexed,
// memory-resident two-relation join across engine tiers
// (Quintus 1 : XSB 3 : LDL 8 : CORAL 24 : Sybase 100).
//
// The original systems are proprietary or unreleased, so each row is the
// *architectural tier* it represents, built in this repository:
//   Quintus (native WAM)    -> our WAM bytecode emulator (most compiled)
//   XSB (emulated SLG-WAM)  -> our SLD interpreter engine
//   LDL  (compiled bottom-up)-> our semi-naive set-at-a-time engine
//   CORAL (interpretive b-u) -> the same engine through the magic-rewritten
//                               program (its default query path)
//   Sybase (client/server   -> the same join run through a transactional
//           RDBMS)             tuple pipeline: per-row latching, logging and
//                               message serialization (simulated; DESIGN.md)
// The paper's point survives the substitution: the lower/more compiled the
// execution level, the faster the in-memory join; transactional machinery
// costs an order of magnitude on top.

#include <atomic>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "bottomup/magic.h"
#include "bottomup/seminaive.h"
#include "parser/reader.h"
#include "wam/compile.h"
#include "wam/emulator.h"
#include "xsb/engine.h"

namespace {

constexpr int kTuples = 10000;
constexpr int kKeys = 1000;  // r's second column / s's first column domain

std::string Facts() {
  std::string text;
  for (int i = 0; i < kTuples; ++i) {
    text += "r(" + std::to_string(i) + "," + std::to_string(i % kKeys) +
            ").\n";
    text += "s(" + std::to_string(i % kKeys) + "," + std::to_string(i * 3) +
            ").\n";
  }
  return text;
}

constexpr char kJoinRule[] = "j(X,Z) :- r(X,Y), s(Y,Z).\n";

// --- Transactional tuple pipeline (the Sybase stand-in) ----------------------

struct TxnSim {
  std::atomic<uint32_t> latch{0};
  std::vector<char> log;
  std::vector<char> wire;
  uint64_t lsn = 0;
  std::unordered_map<uint64_t, uint32_t> lock_table;  // row lock manager

  // The interpreted SQL row executor: predicate/projection evaluation over
  // an expression tree, per row (what a compiled WAM join does in a handful
  // of native instructions).
  int64_t ExecutorOverhead(int64_t a, int64_t b, int64_t c) {
    static constexpr uint8_t kPlan[] = {0, 1, 2, 0, 3, 1, 2, 3,
                                        0, 2, 1, 3, 2, 0, 3, 1,
                                        0, 1, 2, 3, 1, 0, 2, 3};
    // A Sybase-era row pipeline runs on the order of a few thousand
    // instructions per row (parse-tree walking, type dispatch, visibility
    // checks); 20 passes over the 24-step plan model that budget.
    volatile int64_t regs[4] = {a, b, c, 0};
    for (int pass = 0; pass < 20; ++pass) {
      for (uint8_t op : kPlan) {
        switch (op) {
          case 0: regs[3] = regs[0] + regs[1]; break;
          case 1: regs[3] = regs[3] ^ regs[2]; break;
          case 2: regs[0] = regs[3] > regs[1] ? regs[3] : regs[1]; break;
          case 3: regs[1] = regs[1] * 31 + regs[0]; break;
        }
      }
    }
    return regs[3];
  }

  void Acquire() {
    uint32_t expected = 0;
    while (!latch.compare_exchange_weak(expected, 1)) expected = 0;
  }
  void Release() { latch.store(0); }

  // Per-row cost of a locking, logged, client/server row pipeline.
  void OnRow(int64_t a, int64_t b, int64_t c) {
    // Row lock acquire/release through the lock manager.
    c ^= ExecutorOverhead(a, b, c);
    uint64_t row_key = static_cast<uint64_t>(a) * 1000003u ^
                       static_cast<uint64_t>(c);
    Acquire();
    ++lock_table[row_key];
    Release();
    Acquire();
    char record[40];
    std::memcpy(record, &lsn, 8);
    std::memcpy(record + 8, &a, 8);
    std::memcpy(record + 16, &b, 8);
    std::memcpy(record + 24, &c, 8);
    uint64_t checksum = lsn ^ static_cast<uint64_t>(a * 31 + b * 17 + c);
    std::memcpy(record + 32, &checksum, 8);
    log.insert(log.end(), record, record + sizeof(record));
    ++lsn;
    Release();
    // Serialize the row onto the client wire.
    char message[64];
    int n = std::snprintf(message, sizeof(message), "%lld|%lld|%lld\n",
                          static_cast<long long>(a),
                          static_cast<long long>(b),
                          static_cast<long long>(c));
    wire.insert(wire.end(), message, message + n);
    Acquire();
    auto it = lock_table.find(row_key);
    if (it != lock_table.end() && --it->second == 0) lock_table.erase(it);
    Release();
    if (log.size() > (1u << 20)) log.clear();
    if (wire.size() > (1u << 20)) wire.clear();
  }
};

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;
  using namespace xsb::datalog;

  std::string facts = Facts();
  size_t expected = 0;

  // Tier 1: WAM-compiled join.
  double wam_time;
  {
    xsb::SymbolTable symbols;
    xsb::TermStore store(&symbols);
    xsb::Program program(&symbols);
    xsb::Loader loader(&store, &program);
    if (!loader.ConsultString(facts + kJoinRule).ok()) std::abort();
    auto module = xsb::wam::CompileModule(&store, program, {});
    if (!module.ok()) std::abort();
    xsb::wam::Emulator emulator(&store, &module.value());
    auto goal = xsb::ParseTermString(&store, program.ops(), "j(X,Z)");
    wam_time = xsb::bench::TimeBest([&]() {
      size_t count = 0;
      size_t trail = store.TrailMark();
      if (!emulator
               .Solve(goal.value(),
                      [&count]() {
                        ++count;
                        return xsb::wam::WamAction::kContinue;
                      })
               .ok()) {
        std::abort();
      }
      store.UndoTrail(trail);
      expected = count;
    });
  }

  // Tier 2: the SLD interpreter.
  double interp_time;
  {
    xsb::Engine engine;
    if (!engine.ConsultString(facts + kJoinRule).ok()) std::abort();
    interp_time = xsb::bench::TimeBest([&]() {
      auto n = engine.Count("j(X,Z)");
      if (!n.ok() || n.value() != expected) std::abort();
    });
  }

  // Tier 3: semi-naive bottom-up (LDL).
  double bottomup_time;
  {
    DatalogProgram base;
    if (!ParseDatalog(facts + kJoinRule, &base).ok()) std::abort();
    bottomup_time = xsb::bench::TimeBest([&]() {
      DatalogProgram program = base;
      Evaluation eval(&program);
      if (!eval.Run().ok()) std::abort();
      auto q = ParseQuery("j(X,Z)", &program);
      if (eval.Select(q.value()).size() != expected) std::abort();
    });
  }

  // Tier 4: bottom-up through the magic-rewritten program (CORAL default).
  double magic_time;
  {
    DatalogProgram base;
    if (!ParseDatalog(facts + kJoinRule, &base).ok()) std::abort();
    magic_time = xsb::bench::TimeBest([&]() {
      DatalogProgram program = base;
      auto q = ParseQuery("j(X,Z)", &program);
      auto adorned = MagicRewrite(&program, q.value());
      if (!adorned.ok()) std::abort();
      Evaluation eval(&program);
      if (!eval.Run().ok()) std::abort();
      if (eval.Select(adorned.value()).size() != expected) std::abort();
    });
  }

  // Tier 5: the transactional pipeline (simulated client/server RDBMS).
  // The same indexed nested-loop join, but every tuple access goes through
  // a buffer-pool lookup + latch + lock-record append, and every result row
  // is logged and serialized onto the client wire — the per-row machinery a
  // concurrent, recoverable server cannot skip (section 5's discussion).
  double txn_time;
  {
    DatalogProgram program;
    if (!ParseDatalog(facts, &program).ok()) std::abort();
    PredId r = program.InternPred("r", 2);
    PredId sp = program.InternPred("s", 2);
    Relation rrel(2), srel(2);
    for (const auto& [pred, tuples] : program.edb()) {
      for (const Tuple& t : tuples) {
        (pred == r ? rrel : srel).Insert(t);
      }
    }
    txn_time = xsb::bench::TimeBest([&]() {
      TxnSim txn;
      // Buffer pool: page id -> pin count (every access pins/unpins).
      std::unordered_map<uint32_t, uint32_t> buffer_pool;
      size_t count = 0;
      uint32_t row_id = 0;
      for (const Tuple& rt : rrel.tuples()) {
        txn.Acquire();  // shared latch on r's page
        ++buffer_pool[row_id++ / 64];
        txn.Release();
        for (uint32_t srow : srel.Probe(0, rt[1])) {
          txn.Acquire();  // latch on s's page
          ++buffer_pool[srow / 64];
          txn.Release();
          const Tuple& st = srel.tuples()[srow];
          int64_t a = program.consts().IntOf(rt[0]);
          int64_t b = program.consts().IntOf(rt[1]);
          int64_t c = program.consts().IntOf(st[1]);
          txn.OnRow(a, b, c);  // lock record + log + wire serialization
          ++count;
        }
      }
      if (count != expected) std::abort();
    });
    (void)sp;
  }

  PrintHeader("Table 3: relative indexed join speeds (" +
              std::to_string(expected) + " result rows)");
  PrintRow("tier", {"ms", "relative"}, 36, 12);
  auto row = [&](const char* name, double t) {
    PrintRow(name, {FmtMs(t), Fmt(t / wam_time, 1)}, 36, 12);
  };
  row("WAM bytecode (Quintus tier)", wam_time);
  row("SLD interpreter (XSB tier)", interp_time);
  row("semi-naive bottom-up (LDL tier)", bottomup_time);
  row("magic bottom-up (CORAL tier)", magic_time);
  row("transactional pipeline (Sybase)", txn_time);

  std::printf(
      "\nPaper's Table 3: Quintus 1, XSB 3, LDL 8, CORAL 24, Sybase 100.\n"
      "Shape to check: compiled WAM fastest; interpreters slower; the\n"
      "transactional tuple pipeline costs an order of magnitude or more.\n");
  return 0;
}
