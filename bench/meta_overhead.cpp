// Section 3.2: "The SLG-WAM ... is roughly 100 times faster than its
// meta-interpreter running on a similar emulator."
//
// The meta-interpreter here is written in the object language itself and
// executed by this engine's SLD machinery: tabled answers live in an
// asserted ans/1 relation and the fixpoint is driven by repeated passes —
// the interpretive strategy one is forced into without engine support
// (section 3.2's discussion of why interpreters/preprocessors are slow).

#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

constexpr char kMetaInterpreter[] = R"PROGRAM(
    % Object program, represented as mi_clause(Head, Body) facts.
    mi_clause(path(X,Y), edge(X,Y)).
    mi_clause(path(X,Y), (path(X,Z), edge(Z,Y))).

    :- dynamic(ans/1).
    :- dynamic(mi_changed/0).

    % One bottom-up pass of SLG-style answer derivation.
    mi_pass :-
        mi_clause(H, B),
        mi_prove(B),
        \+ ans(H),
        assert(ans(H)),
        ( mi_changed -> true ; assert(mi_changed) ),
        fail.
    mi_pass.

    mi_prove(true) :- !.
    mi_prove((A, B)) :- !, mi_prove(A), mi_prove(B).
    mi_prove(path(X,Y)) :- !, ans(path(X,Y)).   % tabled: read the table
    mi_prove(G) :- call(G).

    mi_fixpoint :-
        retractall(mi_changed),
        mi_pass,
        ( mi_changed -> mi_fixpoint ; true ).

    mi_solve(G) :- retractall(ans(_)), mi_fixpoint, ans(G).
)PROGRAM";

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("engine SLG vs meta-interpreted SLG: ?- path(1,X) on a cycle");
  PrintRow("cycle size", {"engine ms", "meta ms", "meta/engine"}, 18, 14);

  for (int n : {8, 12, 16}) {
    std::string edges = xsb::bench::CycleEdges(n);

    xsb::Engine engine;
    if (!engine
             .ConsultString(":- table path/2.\n"
                            "path(X,Y) :- edge(X,Y).\n"
                            "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges)
             .ok()) {
      std::abort();
    }
    double native = xsb::bench::TimeBest([&]() {
      engine.AbolishAllTables();
      auto r = engine.Count("path(1, X)");
      if (!r.ok()) std::abort();
    });

    xsb::Engine meta;
    if (!meta.ConsultString(std::string(kMetaInterpreter) + edges).ok()) {
      std::abort();
    }
    double interpreted = xsb::bench::TimeBest(
        [&]() {
          auto r = meta.Count("mi_solve(path(1, X))");
          if (!r.ok()) std::abort();
        },
        /*min_seconds=*/0.05, /*max_repeats=*/3);

    PrintRow(std::to_string(n),
             {FmtMs(native), FmtMs(interpreted), Fmt(interpreted / native, 0)},
             18, 14);
  }

  std::printf(
      "\nPaper: the engine is roughly two orders of magnitude faster than\n"
      "the meta-interpreter — the gap that justified building the SLG-WAM\n"
      "instead of interpreting or preprocessing (section 3.2). Our\n"
      "assert-based meta-interpreter recomputes whole passes per fixpoint\n"
      "round, so its gap *grows* with the cycle length; at small sizes it\n"
      "sits in the paper's hundreds-of-x regime.\n");
  return 0;
}
