// Section 3.2: "The SLG-WAM ... is roughly 100 times faster than its
// meta-interpreter running on a similar emulator."
//
// The meta-interpreter here is written in the object language itself and
// executed by this engine's SLD machinery: tabled answers live in an
// asserted ans/1 relation and the fixpoint is driven by repeated passes —
// the interpretive strategy one is forced into without engine support
// (section 3.2's discussion of why interpreters/preprocessors are slow).
//
// Two tables:
//   1. the paper's original comparison — meta-interpreted SLG vs the engine
//      on cycles (tabling required: plain SLD loops);
//   2. the full execution-tier ladder on acyclic chains, where every tier
//      terminates: meta-interpreter → engine SLG → WAM emulator → WAM JIT
//      (DESIGN.md "Execution tiers"; the JIT column is the ISSUE 9 tier).
//
// Usage: meta_overhead [OUT.json]  (JSON carries the ladder rows)

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/wam_tier.h"
#include "xsb/engine.h"

namespace {

constexpr char kMetaInterpreter[] = R"PROGRAM(
    % Object program, represented as mi_clause(Head, Body) facts.
    mi_clause(path(X,Y), edge(X,Y)).
    mi_clause(path(X,Y), (path(X,Z), edge(Z,Y))).

    :- dynamic(ans/1).
    :- dynamic(mi_changed/0).

    % One bottom-up pass of SLG-style answer derivation.
    mi_pass :-
        mi_clause(H, B),
        mi_prove(B),
        \+ ans(H),
        assert(ans(H)),
        ( mi_changed -> true ; assert(mi_changed) ),
        fail.
    mi_pass.

    mi_prove(true) :- !.
    mi_prove((A, B)) :- !, mi_prove(A), mi_prove(B).
    mi_prove(path(X,Y)) :- !, ans(path(X,Y)).   % tabled: read the table
    mi_prove(G) :- call(G).

    mi_fixpoint :-
        retractall(mi_changed),
        mi_pass,
        ( mi_changed -> mi_fixpoint ; true ).

    mi_solve(G) :- retractall(ans(_)), mi_fixpoint, ans(G).
)PROGRAM";

// Right recursion, so SLD terminates on acyclic data (the non-tabled tiers).
constexpr char kChainTc[] =
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- edge(X,Z), path(Z,Y).\n";

double TimeEngine(const std::string& edges) {
  xsb::Engine engine;
  if (!engine
           .ConsultString(":- table path/2.\n"
                          "path(X,Y) :- edge(X,Y).\n"
                          "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges)
           .ok()) {
    std::abort();
  }
  return xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto r = engine.Count("path(1, X)");
    if (!r.ok()) std::abort();
  });
}

double TimeMeta(const std::string& edges) {
  xsb::Engine meta;
  if (!meta.ConsultString(std::string(kMetaInterpreter) + edges).ok()) {
    std::abort();
  }
  return xsb::bench::TimeBest(
      [&]() {
        auto r = meta.Count("mi_solve(path(1, X))");
        if (!r.ok()) std::abort();
      },
      /*min_seconds=*/0.05, /*max_repeats=*/3);
}

struct LadderRow {
  int size = 0;
  double meta = -1;  // < 0: skipped (meta is too slow at this size)
  double engine = 0;
  xsb::bench::WamTierRun emu;
  xsb::bench::WamTierRun jit;
};

// The nrev ladder runs WAM-only (nrev is not a tabling workload): naive
// reverse of an n-element ground list on both WAM tiers, carrying the
// choice-point and structure-switch counters so the first-argument-indexing
// win is diffable in the JSON snapshot.
struct NrevRow {
  int size = 0;
  xsb::bench::WamTierRun emu;
  xsb::bench::WamTierRun jit;
};

std::string NrevProgram() {
  return "app([], L, L).\n"
         "app([H|T], L, [H|R]) :- app(T, L, R).\n"
         "nrev([], []).\n"
         "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n";
}

std::string NrevGoal(int n) {
  std::string list = "[";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) list += ",";
    list += std::to_string(i);
  }
  return "nrev(" + list + "], R)";
}

}  // namespace

int main(int argc, char** argv) {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("engine SLG vs meta-interpreted SLG: ?- path(1,X) on a cycle");
  PrintRow("cycle size", {"engine ms", "meta ms", "meta/engine"}, 18, 14);
  for (int n : {8, 12, 16}) {
    std::string edges = xsb::bench::CycleEdges(n);
    double native = TimeEngine(edges);
    double interpreted = TimeMeta(edges);
    PrintRow(std::to_string(n),
             {FmtMs(native), FmtMs(interpreted), Fmt(interpreted / native, 0)},
             18, 14);
  }

  PrintHeader(
      "execution tiers: ?- path(1,X) on a chain (meta -> SLG -> WAM -> JIT)");
  PrintRow("chain size",
           {"meta ms", "SLG ms", "WAM emu ms", "WAM jit ms", "emu/jit"}, 14,
           12);
  std::vector<LadderRow> rows;
  for (int n : {8, 16, 64, 256}) {
    LadderRow row;
    row.size = n;
    std::string edges = xsb::bench::ChainEdges(n);
    std::string program = std::string(kChainTc) + edges;
    // The meta-interpreter recomputes whole passes per fixpoint round
    // (O(n^3)-ish); past tiny sizes it would dominate the bench's runtime.
    if (n <= 16) row.meta = TimeMeta(edges);
    row.engine = TimeEngine(edges);
    // Small chains solve in microseconds: amplify with in-loop repetitions
    // so the per-solve time is above timer noise.
    int reps = n <= 16 ? 400 : (n <= 64 ? 50 : 5);
    row.emu = xsb::bench::TimeWamTier(program, "path(1, X)",
                                      /*jit_threshold=*/-1, reps);
    row.jit = xsb::bench::TimeWamTier(program, "path(1, X)",
                                      /*jit_threshold=*/0, reps);
    if (row.emu.answers != row.jit.answers) std::abort();
    PrintRow(std::to_string(n),
             {row.meta < 0 ? "-" : FmtMs(row.meta), FmtMs(row.engine),
              FmtMs(row.emu.seconds), FmtMs(row.jit.seconds),
              Fmt(row.emu.seconds / row.jit.seconds, 2)},
             14, 12);
    rows.push_back(row);
  }

  PrintHeader("nrev ladder: ?- nrev([1..n], R) on both WAM tiers");
  PrintRow("list size",
           {"WAM emu ms", "WAM jit ms", "emu/jit", "choice pts", "struct hits"},
           14, 12);
  std::vector<NrevRow> nrev_rows;
  for (int n : {10, 30, 100}) {
    NrevRow row;
    row.size = n;
    int reps = n <= 30 ? 400 : 50;
    row.emu = xsb::bench::TimeWamTier(NrevProgram(), NrevGoal(n),
                                      /*jit_threshold=*/-1, reps);
    row.jit = xsb::bench::TimeWamTier(NrevProgram(), NrevGoal(n),
                                      /*jit_threshold=*/0, reps);
    if (row.emu.answers != row.jit.answers ||
        row.emu.choice_points != row.jit.choice_points ||
        row.emu.instructions != row.jit.instructions) {
      std::abort();  // the tiers must be byte-identical on counters
    }
    PrintRow(std::to_string(n),
             {FmtMs(row.emu.seconds), FmtMs(row.jit.seconds),
              Fmt(row.emu.seconds / row.jit.seconds, 2),
              std::to_string(row.emu.choice_points),
              std::to_string(row.emu.switch_structure_hits)},
             14, 12);
    nrev_rows.push_back(row);
  }

  std::printf(
      "\nPaper: the engine is roughly two orders of magnitude faster than\n"
      "the meta-interpreter — the gap that justified building the SLG-WAM\n"
      "instead of interpreting or preprocessing (section 3.2). Our\n"
      "assert-based meta-interpreter recomputes whole passes per fixpoint\n"
      "round, so its gap *grows* with the cycle length; at small sizes it\n"
      "sits in the paper's hundreds-of-x regime. The chain ladder extends\n"
      "Table 3 downward: the same query, each tier dropping one layer of\n"
      "interpretation (jit column requires x64 + executable pages;\n"
      "jit_active=%d here).\n",
      rows.empty() ? 0 : static_cast<int>(rows.back().jit.jit_active));

  if (argc > 1) {
    std::string json = "{\n  \"bench\": \"meta_overhead\",\n";
    json += "  \"jit_active\": ";
    json += (!rows.empty() && rows.back().jit.jit_active) ? "true" : "false";
    json += ",\n  \"ladder_rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const LadderRow& r = rows[i];
      json += "    {\"chain_size\": " + std::to_string(r.size) +
              ", \"answers\": " + std::to_string(r.emu.answers) +
              ", \"meta_ms\": " +
              (r.meta < 0 ? std::string("null") : xsb::bench::Fmt(r.meta * 1e3, 3)) +
              ", \"engine_slg_ms\": " + xsb::bench::Fmt(r.engine * 1e3, 3) +
              ", \"wam_emulator_ms\": " +
              xsb::bench::Fmt(r.emu.seconds * 1e3, 3) +
              ", \"wam_jit_ms\": " + xsb::bench::Fmt(r.jit.seconds * 1e3, 3) +
              ", \"jit_speedup\": " +
              xsb::bench::Fmt(r.emu.seconds / r.jit.seconds, 2) +
              ", \"instructions\": " + std::to_string(r.emu.instructions) +
              ", \"choice_points\": " + std::to_string(r.emu.choice_points) +
              "}";
      json += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    json += "  ],\n  \"nrev_rows\": [\n";
    for (size_t i = 0; i < nrev_rows.size(); ++i) {
      const NrevRow& r = nrev_rows[i];
      json += "    {\"list_size\": " + std::to_string(r.size) +
              ", \"wam_emulator_ms\": " +
              xsb::bench::Fmt(r.emu.seconds * 1e3, 3) +
              ", \"wam_jit_ms\": " + xsb::bench::Fmt(r.jit.seconds * 1e3, 3) +
              ", \"jit_speedup\": " +
              xsb::bench::Fmt(r.emu.seconds / r.jit.seconds, 2) +
              ", \"instructions\": " + std::to_string(r.emu.instructions) +
              ", \"choice_points\": " + std::to_string(r.emu.choice_points) +
              ", \"switch_structure_hits\": " +
              std::to_string(r.emu.switch_structure_hits) + "}";
      json += (i + 1 < nrev_rows.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
