// Substitution factoring + call-trie bench (paper sections 3.2 / 5): table
// access on the SLG hot path. Times tabled evaluation and reports table-space
// memory for the workloads BENCH_subst_factoring.json tracks:
//   * right-recursive transitive closure over a chain (chain400: the PR 1
//     baseline workload — 400 subgoals, 79800 answers),
//   * left-recursive transitive closure (one subgoal, consumer-heavy),
//   * same_generation over a two-level tree (mixed generator/consumer),
//   * an indexed two-relation join (answer-insert heavy, wide fanout).
// Substitution factoring stores only the bindings of each call's variables
// per answer instead of the full canonical answer term, and the call trie
// replaces the hash-map variant index, so both the time and the byte columns
// here are expected to move.
//
// Usage: subst_factoring [OUT.json] — with an argument, also writes the
// machine-readable snapshot scripts/bench.sh collects.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

struct Workload {
  const char* key;
  std::string program;
  std::string goal;
};

struct Row {
  const char* key;
  double time_ms;
  size_t answers;
  size_t subgoals;
  size_t answer_trie_nodes;
  size_t call_trie_nodes;
  size_t table_bytes;
  size_t factored_saved_bytes;
};

Row Run(const Workload& w) {
  xsb::Engine engine;
  if (!engine.ConsultString(w.program).ok()) std::abort();
  double secs = xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto n = engine.Count(w.goal);
    if (!n.ok()) std::abort();
  });
  // Deterministic memory snapshot: one cold evaluation, then measure. The
  // factored-savings counter is cumulative, so report this evaluation's
  // delta (deterministic, unlike the repeat count of the timing loop).
  const xsb::TableSpace& tables = engine.evaluator().tables();
  engine.AbolishAllTables();
  uint64_t saved_before = tables.stats().factored_cells_saved;
  auto count = engine.Count(w.goal);
  if (!count.ok()) std::abort();
  Row row{w.key,
          secs * 1e3,
          tables.total_answers(),
          tables.num_subgoals(),
          tables.total_trie_nodes(),
          tables.call_trie_nodes(),
          tables.table_bytes(),
          (tables.stats().factored_cells_saved - saved_before) *
              sizeof(xsb::Word)};
  std::printf(
      "%-24s time_ms=%8.3f answers=%7zu subgoals=%5zu trie_nodes=%7zu "
      "call_trie_nodes=%5zu table_bytes=%9zu factored_saved=%9zu\n",
      row.key, row.time_ms, row.answers, row.subgoals, row.answer_trie_nodes,
      row.call_trie_nodes, row.table_bytes, row.factored_saved_bytes);
  return row;
}

std::string JoinFacts(int tuples, int keys) {
  std::string text;
  for (int i = 0; i < tuples; ++i) {
    text += "r(" + std::to_string(i) + "," + std::to_string(i % keys) + ").\n";
    text += "s(" + std::to_string(i % keys) + "," + std::to_string(i * 3) +
            ").\n";
  }
  return text;
}

std::string SameGenFacts(int groups, int kids) {
  std::string text;
  for (int g = 0; g < groups; ++g) {
    for (int c = 0; c < kids; ++c) {
      text += "par(c" + std::to_string(g * kids + c) + ",g" +
              std::to_string(g) + ").\n";
    }
    text += "par(g" + std::to_string(g) + ",root).\n";
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  xsb::bench::PrintHeader(
      "call tries + substitution factoring: tabled hot-path workloads");

  const std::string chain = xsb::bench::ChainEdges(400);
  std::vector<Workload> workloads{
      {"right_rec_tc_chain400",
       ":- table path/2.\npath(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- edge(X,Z), path(Z,Y).\n" +
           chain,
       "path(1, X)"},
      {"left_rec_tc_chain400",
       ":- table path/2.\npath(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), edge(Z,Y).\n" +
           chain,
       "path(1, X)"},
      {"same_gen_20x20",
       ":- table sg/2.\nsg(X,X).\n"
       "sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n" +
           SameGenFacts(20, 20),
       "sg(c0, X)"},
      {"join_2000x10",
       ":- table j/2.\nj(X,Z) :- r(X,Y), s(Y,Z).\n" + JoinFacts(2000, 200),
       "j(X, Z)"},
  };
  std::vector<Row> rows;
  for (const Workload& w : workloads) rows.push_back(Run(w));

  std::printf(
      "\nFactored answer return binds only the call's variables per answer;\n"
      "the call trie checks/inserts tabled calls in one walk from the live\n"
      "heap term. Compare against BENCH_subst_factoring.json.\n");

  if (argc > 1) {
    std::string json = "{\n  \"bench\": \"subst_factoring\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      json += "    {\"workload\": \"" + std::string(r.key) +
              "\", \"time_ms\": " + xsb::bench::Fmt(r.time_ms, 3) +
              ", \"answers\": " + std::to_string(r.answers) +
              ", \"subgoals\": " + std::to_string(r.subgoals) +
              ", \"answer_trie_nodes\": " + std::to_string(r.answer_trie_nodes) +
              ", \"call_trie_nodes\": " + std::to_string(r.call_trie_nodes) +
              ", \"table_bytes\": " + std::to_string(r.table_bytes) +
              ", \"factored_saved_bytes\": " +
              std::to_string(r.factored_saved_bytes) + "}";
      json += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
