// Section 5's append/3 comparison: top-down SLD is linear; tabled SLG is
// quadratic in this 1994-era engine because answers (whole lists) are copied
// into table space per prefix; the bottom-up engine cannot express lists, so
// its stand-in is an unrolled positional encoding evaluated set-at-a-time.
//
// The paper reports SLD fastest everywhere, pipelined CORAL beating SLG
// beyond length ~10, and compiled bottom-up CORAL beating SLG beyond ~200.
// The shape to check here: SLD linear, SLG superlinear (quadratic).

#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

constexpr char kAppend[] =
    "app([], L, L).\n"
    "app([H|T], L, [H|R]) :- app(T, L, R).\n"
    ":- table tapp/3.\n"
    "tapp([], L, L).\n"
    "tapp([H|T], L, [H|R]) :- tapp(T, L, R).\n";

double TimeAppend(const char* pred, int n, bool fresh_tables) {
  xsb::Engine engine;
  if (!engine.ConsultString(kAppend).ok()) std::abort();
  std::string goal = std::string(pred) + "(" + xsb::bench::ListText(n) +
                     ", [x], R)";
  return xsb::bench::TimeBest([&]() {
    if (fresh_tables) engine.AbolishAllTables();
    auto r = engine.Holds(goal);
    if (!r.ok() || !r.value()) std::abort();
  });
}

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  std::vector<int> sizes{4, 8, 16, 32, 64, 128, 256, 512};
  PrintHeader("append/3: SLD vs SLG (tabled), ms per query");
  std::vector<std::string> header;
  for (int n : sizes) header.push_back(std::to_string(n));
  PrintRow("list length", header, 22, 9);

  std::vector<double> sld, slg;
  for (int n : sizes) {
    sld.push_back(TimeAppend("app", n, false));
    slg.push_back(TimeAppend("tapp", n, true));
  }
  auto ms_row = [&](const char* label, const std::vector<double>& xs) {
    std::vector<std::string> cells;
    for (double x : xs) cells.push_back(FmtMs(x));
    PrintRow(label, cells, 22, 9);
  };
  ms_row("SLD (ms)", sld);
  ms_row("SLG tabled (ms)", slg);
  std::vector<std::string> ratios;
  for (size_t i = 0; i < sizes.size(); ++i) {
    ratios.push_back(Fmt(slg[i] / sld[i], 1));
  }
  PrintRow("SLG / SLD", ratios, 22, 9);

  // Growth-order check: time(2n)/time(n) ~ 2 for SLD, ~4 for SLG.
  size_t last = sizes.size() - 1;
  std::printf(
      "\ndoubling 256->512:  SLD x%.1f (linear ~2),  SLG x%.1f "
      "(quadratic ~4)\n",
      sld[last] / sld[last - 1], slg[last] / slg[last - 1]);
  std::printf(
      "Paper: SLD fastest at every length; SLG quadratic because version\n"
      "1.4 lacks table copy optimizations for ground structures (section "
      "5).\n");
  return 0;
}
