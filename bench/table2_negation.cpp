// Table 2 of the paper: the stalemate game win/1 over complete binary trees
// of height 6..11, comparing
//   * default SLG negation (tnot)   — fully evaluates every table,
//   * SLDNF (\+, no tabling)        — explores ~sqrt(2)^n nodes,
//   * existential negation (e_tnot) — SLG that prunes like SLDNF.
// Times are normalized to existential negation, as in the paper.

#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

// Loads once; times the query alone, with table space reset per run (the
// paper's measurements also reclaim table space between iterations).
double RunWin(int height, const std::string& rule, const char* pred) {
  xsb::Engine engine;
  std::string program = ":- table win/1. :- table ewin/1.\n" + rule +
                        xsb::bench::BinaryTreeMoves(height);
  xsb::Status s = engine.ConsultString(program);
  if (!s.ok()) std::abort();
  std::string goal = std::string(pred) + "(1)";
  return xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto r = engine.Holds(goal);
    if (!r.ok()) std::abort();
  });
}

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader(
      "Table 2: win/1 over complete binary trees (ratios vs e_tnot)");
  PrintRow("Height", {"6", "7", "8", "9", "10", "11"});

  std::vector<double> slg, sldnf, eneg;
  for (int h = 6; h <= 11; ++h) {
    slg.push_back(
        RunWin(h, "win(X) :- move(X,Y), tnot win(Y).\n"
                  "ewin(X) :- move(X,Y), e_tnot ewin(Y).\n",
               "win"));
    sldnf.push_back(
        RunWin(h, "swin(X) :- move(X,Y), \\+ swin(Y).\n"
                  "win(X) :- true.\newin(X) :- true.\n",
               "swin"));
    eneg.push_back(
        RunWin(h, "win(X) :- move(X,Y), tnot win(Y).\n"
                  "ewin(X) :- move(X,Y), e_tnot ewin(Y).\n",
               "ewin"));
  }

  auto ratio_row = [&](const char* label, const std::vector<double>& xs) {
    std::vector<std::string> cells;
    for (size_t i = 0; i < xs.size(); ++i) cells.push_back(Fmt(xs[i] / eneg[i]));
    PrintRow(label, cells);
  };
  ratio_row("XSB / Default SLG", slg);
  ratio_row("XSB / SLDNF", sldnf);
  ratio_row("XSB / E-Neg", eneg);

  PrintHeader("raw milliseconds");
  auto ms_row = [&](const char* label, const std::vector<double>& xs) {
    std::vector<std::string> cells;
    for (double x : xs) cells.push_back(xsb::bench::FmtMs(x));
    PrintRow(label, cells);
  };
  ms_row("Default SLG (tnot)", slg);
  ms_row("SLDNF (\\+)", sldnf);
  ms_row("E-Neg (e_tnot)", eneg);

  std::printf(
      "\nPaper's Table 2 ratios:   SLG 4.5 4.25 7.6 8.2 15.4 15.7;"
      "  SLDNF .3 .24 .22 .24 .24 .23;  E-Neg 1.\n"
      "Expected shape: the SLG ratio grows ~sqrt(2) per level; the SLDNF\n"
      "ratio stays a constant a bit below 1.\n");
  return 0;
}
