// Ablation A1 (DESIGN.md): the section 4.5 indexing machinery.
//   * clause access: no index vs first-argument hash vs first-string trie,
//     on a relation keyed by compound terms (where the trie discriminates
//     below the outer symbol and hashing cannot);
//   * answer tables: hash dedup vs trie dedup (the "trie-based indexing ...
//     being developed for answer clauses" of section 4.5).

#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

std::string CompoundFacts(int n) {
  // p(g(K), f(I)) with K in 0..49: hashing on arg 1 buckets by g/1 only
  // (all clauses collide); the first string g K f I discriminates fully.
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "p(g(" + std::to_string(i % 50) + "),f(" + std::to_string(i) +
            ")).\n";
  }
  return text;
}

double TimeLookups(const std::string& index_directive, int n) {
  xsb::Engine engine;
  std::string program = CompoundFacts(n) + index_directive +
                        "probe(K, V) :- p(g(K), f(V)).\n"
                        "drive(I) :- I >= 0, K is I mod 50, probe(K, _), "
                        "J is I - 1, drive(J).\n"
                        "drive(I) :- I < 0.\n";
  if (!engine.ConsultString(program).ok()) std::abort();
  return xsb::bench::TimeBest([&]() {
    auto r = engine.Holds("drive(2000)");
    if (!r.ok() || !r.value()) std::abort();
  });
}

double TimeTabled(bool answer_trie, int n, size_t* table_bytes) {
  xsb::Engine::Options options;
  options.answer_trie = answer_trie;
  xsb::Engine engine(options);
  std::string program = ":- table path/2.\n"
                        "path(X,Y) :- edge(X,Y).\n"
                        "path(X,Y) :- path(X,Z), edge(Z,Y).\n" +
                        xsb::bench::CycleEdges(n);
  if (!engine.ConsultString(program).ok()) std::abort();
  double ms = xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto r = engine.Count("path(X, Y)");  // all n^2 answers
    if (!r.ok()) std::abort();
  });
  if (table_bytes != nullptr) {
    *table_bytes = engine.evaluator().tables().table_bytes();
  }
  return ms;
}

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("clause indexing: 2000 bound probes into p/2 (compound keys)");
  PrintRow("facts", {"no index", "hash arg1", "first-string"}, 14, 14);
  for (int n : {500, 2000, 8000}) {
    double none = TimeLookups(":- index(p/2, 0).\n", n);
    double hash = TimeLookups("", n);  // default first-arg hash
    double trie = TimeLookups(":- index(p/2, trie).\n", n);
    PrintRow(std::to_string(n),
             {FmtMs(none), FmtMs(hash), FmtMs(trie)}, 14, 14);
  }
  std::printf(
      "hash on arg 1 keys only the outer symbol g/1 here (all clauses in\n"
      "one bucket); the first-string trie discriminates inside the term.\n");

  PrintHeader("answer-table index: hash set vs answer trie (all-pairs TC)");
  PrintRow("cycle", {"hash ms", "trie ms", "hash KB", "trie KB"}, 14, 14);
  for (int n : {64, 128, 256}) {
    size_t hash_bytes = 0, trie_bytes = 0;
    double hash = TimeTabled(false, n, &hash_bytes);
    double trie = TimeTabled(true, n, &trie_bytes);
    PrintRow(std::to_string(n),
             {FmtMs(hash), FmtMs(trie), std::to_string(hash_bytes / 1024),
              std::to_string(trie_bytes / 1024)},
             14, 14);
  }
  std::printf(
      "\nSection 4.5: answer tables need duplicate checks on every derived\n"
      "answer. The trie integrates storage with indexing: the hash store\n"
      "keeps every answer's cells twice (vector + set key), the trie keeps\n"
      "shared prefixes and interned ground subterms once.\n");
  return 0;
}
