// Micro-benchmarks of the engine's primitive operations, on
// google-benchmark: unification, flattening (the table-space copy path),
// index probes, clause resolution, and answer insertion. These are the
// constants behind every macro number in the other bench binaries.

#include <benchmark/benchmark.h>

#include "db/loader.h"
#include "engine/machine.h"
#include "parser/reader.h"
#include "tabling/table_space.h"
#include "term/flat.h"
#include "term/intern.h"
#include "term/store.h"

namespace xsb {
namespace {

struct Fixture {
  Fixture() : store(&symbols), program(&symbols) {}
  Word Parse(const std::string& text) {
    Result<Word> r = ParseTermString(&store, program.ops(), text);
    if (!r.ok()) std::abort();
    return r.value();
  }
  SymbolTable symbols;
  TermStore store;
  Program program;
};

void BM_UnifyFlatTerms(benchmark::State& state) {
  Fixture f;
  Word a = f.Parse("f(g(1,2), h(X, [a,b,c]), Y)");
  Word b = f.Parse("f(g(1,2), h(q, [a,b,c]), r(s))");
  for (auto _ : state) {
    size_t trail = f.store.TrailMark();
    benchmark::DoNotOptimize(f.store.Unify(a, b));
    f.store.UndoTrail(trail);
  }
}
BENCHMARK(BM_UnifyFlatTerms);

void BM_FlattenTerm(benchmark::State& state) {
  Fixture f;
  Word t = f.Parse("path(edge(a,b), [1,2,3,4,5], g(h(i(j))))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Flatten(f.store, t));
  }
}
BENCHMARK(BM_FlattenTerm);

void BM_UnflattenTerm(benchmark::State& state) {
  Fixture f;
  FlatTerm flat =
      Flatten(f.store, f.Parse("path(edge(a,b), [1,2,3,4,5], g(h(X)))"));
  for (auto _ : state) {
    size_t heap = f.store.HeapMark();
    benchmark::DoNotOptimize(Unflatten(&f.store, flat));
    f.store.TruncateHeap(heap);
  }
}
BENCHMARK(BM_UnflattenTerm);

void BM_FirstArgIndexProbe(benchmark::State& state) {
  Fixture f;
  Loader loader(&f.store, &f.program);
  std::string text;
  for (int i = 0; i < 1000; ++i) {
    text += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + "). ";
  }
  if (!loader.ConsultString(text).ok()) std::abort();
  Predicate* pred = f.program.Lookup(
      f.symbols.InternFunctor(f.symbols.InternAtom("e"), 2));
  Word goal = f.Parse("e(500, X)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred->Candidates(f.store, goal));
  }
}
BENCHMARK(BM_FirstArgIndexProbe);

void BM_ClauseResolutionStep(benchmark::State& state) {
  Fixture f;
  Loader loader(&f.store, &f.program);
  if (!loader.ConsultString("e(1,2). e(2,3). e(3,4).").ok()) std::abort();
  Machine machine(&f.store, &f.program);
  Word goal = f.Parse("e(2, X)");
  for (auto _ : state) {
    size_t trail = f.store.TrailMark();
    Result<bool> r = machine.SolveOnce(goal);
    benchmark::DoNotOptimize(r);
    f.store.UndoTrail(trail);
  }
}
BENCHMARK(BM_ClauseResolutionStep);

void BM_AnswerInsertHash(benchmark::State& state) {
  Fixture f;
  int64_t i = 0;
  TableSpace tables(f.store.symbols(), /*answer_trie=*/false);
  Word goal = f.Parse("p(X)");
  FunctorId p1 = f.symbols.InternFunctor(f.symbols.InternAtom("p"), 1);
  auto [id, created] = tables.LookupOrCreate(f.store, goal, p1, 0);
  Word var = f.store.Deref(f.store.Arg(goal, 0));
  for (auto _ : state) {
    size_t trail = f.store.TrailMark();
    f.store.Bind(var, IntCell(i++ % 4096));
    benchmark::DoNotOptimize(tables.AddAnswer(id, f.store, goal));
    f.store.UndoTrail(trail);
  }
}
BENCHMARK(BM_AnswerInsertHash);

void BM_AnswerInsertTrie(benchmark::State& state) {
  Fixture f;
  int64_t i = 0;
  TableSpace tables(f.store.symbols(), /*answer_trie=*/true);
  Word goal = f.Parse("p(X)");
  FunctorId p1 = f.symbols.InternFunctor(f.symbols.InternAtom("p"), 1);
  auto [id, created] = tables.LookupOrCreate(f.store, goal, p1, 0);
  Word var = f.store.Deref(f.store.Arg(goal, 0));
  for (auto _ : state) {
    size_t trail = f.store.TrailMark();
    f.store.Bind(var, IntCell(i++ % 4096));
    benchmark::DoNotOptimize(tables.AddAnswer(id, f.store, goal));
    f.store.UndoTrail(trail);
  }
}
BENCHMARK(BM_AnswerInsertTrie);

void BM_CallTrieVariantHit(benchmark::State& state) {
  // The tabling hot path: variant check of an already-tabled call, walked
  // straight off the live heap term (no FlatTerm materialization).
  Fixture f;
  TableSpace tables(f.store.symbols(), /*answer_trie=*/true);
  Word goal = f.Parse("path(f(a, g(1,2)), X, Y)");
  FunctorId path3 = f.symbols.InternFunctor(f.symbols.InternAtom("path"), 3);
  tables.LookupOrCreate(f.store, goal, path3, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tables.Lookup(f.store, goal));
  }
}
BENCHMARK(BM_CallTrieVariantHit);

void BM_InternGroundHit(benchmark::State& state) {
  // Steady-state cost of re-interning an already-stored ground term (the
  // common case: repeated answers and calls over a warmed table space).
  Fixture f;
  InternTable interns(&f.symbols);
  FlatTerm t = Flatten(f.store, f.Parse("f(g(1,2), h(a, [b,c]))"));
  benchmark::DoNotOptimize(interns.Intern(t));
  for (auto _ : state) {
    benchmark::DoNotOptimize(interns.Intern(t));
  }
}
BENCHMARK(BM_InternGroundHit);

void BM_EncodeOpenAnswer(benchmark::State& state) {
  // The per-answer encode step of AnswerTrie::Insert: functor kept open,
  // ground compound arguments collapsed to interned tokens.
  Fixture f;
  InternTable interns(&f.symbols);
  FlatTerm t = Flatten(f.store, f.Parse("p(g(7), f(1,2,3), X)"));
  std::vector<Word> tokens;
  for (auto _ : state) {
    interns.EncodeOpen(t.cells, &tokens);
    benchmark::DoNotOptimize(tokens.data());
  }
}
BENCHMARK(BM_EncodeOpenAnswer);

}  // namespace
}  // namespace xsb

BENCHMARK_MAIN();
