// Section 5 / 4.7: "HiLog predicates ... execute only marginally slower
// than non-parameterized Prolog predicates." Three tiers of the same
// transitive closure:
//   1. first-order path/2 (tabled),
//   2. HiLog path(Graph)(X,Y) compiled to apply/3 (tabled),
//   3. the same after compile-time specialization of known calls
//      (apply$path, section 4.7's optimization).

#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

double TimeEngine(const std::string& program, const std::string& goal,
                  bool specialize) {
  xsb::Engine engine;
  if (!engine.ConsultString(program).ok()) std::abort();
  if (specialize) {
    if (!engine.SpecializeHiLog().ok()) std::abort();
  }
  return xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto n = engine.Count(goal);
    if (!n.ok()) std::abort();
  });
}

}  // namespace

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("HiLog overhead: parameterized path vs first-order path");
  PrintRow("cycle size", {"first-order", "HiLog", "specialized"}, 22, 14);

  for (int n : {64, 256, 1024}) {
    std::string edges = xsb::bench::CycleEdges(n);
    std::string first_order =
        ":- table path/2.\n"
        "path(X,Y) :- edge(X,Y).\n"
        "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges;
    std::string hilog =
        ":- table apply/3.\n"
        "path(G)(X,Y) :- G(X,Y).\n"
        "path(G)(X,Y) :- path(G)(X,Z), G(Z,Y).\n" + edges;

    double fo = TimeEngine(first_order, "path(1, X)", false);
    double hi = TimeEngine(hilog, "path(edge)(1, X)", false);
    double sp = TimeEngine(hilog, "path(edge)(1, X)", true);
    PrintRow(std::to_string(n), {FmtMs(fo), FmtMs(hi), FmtMs(sp)}, 22, 14);
    PrintRow("  (ratio vs first-order)",
             {"1.00", Fmt(hi / fo, 2), Fmt(sp / fo, 2)}, 22, 14);
  }

  std::printf(
      "\nPaper: after specialization the parameterized predicate is 'not\n"
      "much less efficient' than the first-order one — the residual cost is\n"
      "the extra Graph argument and one extra level of the discrimination\n"
      "graph (Figure 4).\n");
  return 0;
}
