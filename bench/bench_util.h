#ifndef XSB_BENCH_BENCH_UTIL_H_
#define XSB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace xsb::bench {

// Wall-clock seconds for one run of `fn`.
inline double TimeOnce(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Runs `fn` repeatedly until at least `min_seconds` of total time or
// `max_repeats` runs, and returns the *minimum* per-run time (least noisy).
inline double TimeBest(const std::function<void()>& fn,
                       double min_seconds = 0.05, int max_repeats = 7) {
  double best = 1e30;
  double total = 0;
  for (int i = 0; i < max_repeats; ++i) {
    double t = TimeOnce(fn);
    if (t < best) best = t;
    total += t;
    if (total >= min_seconds && i >= 1) break;
  }
  return best;
}

// --- Paper-style table printing ----------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintRow(const std::string& label,
                     const std::vector<std::string>& cells,
                     int label_width = 26, int cell_width = 12) {
  std::printf("%-*s", label_width, label.c_str());
  for (const std::string& cell : cells) {
    std::printf("%*s", cell_width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

inline std::string FmtMs(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", seconds * 1e3);
  return buffer;
}

// --- Workload generators -------------------------------------------------------

// edge(1,2). ... edge(N,1).  (the paper's cycle structures)
inline std::string CycleEdges(int n, const std::string& pred = "edge") {
  std::string text;
  for (int i = 1; i <= n; ++i) {
    text += pred + "(" + std::to_string(i) + "," +
            std::to_string(i % n + 1) + ").\n";
  }
  return text;
}

// edge(1,1). edge(1,2). ... edge(1,N).  (the paper's fanout structures)
inline std::string FanoutEdges(int n, const std::string& pred = "edge") {
  std::string text;
  for (int i = 1; i <= n; ++i) {
    text += pred + "(1," + std::to_string(i) + ").\n";
  }
  return text;
}

// edge(1,2). ... edge(N-1,N).  (chains)
inline std::string ChainEdges(int n, const std::string& pred = "edge") {
  std::string text;
  for (int i = 1; i < n; ++i) {
    text += pred + "(" + std::to_string(i) + "," + std::to_string(i + 1) +
            ").\n";
  }
  return text;
}

// move facts of a complete binary tree of `height`: root 1, children 2i,2i+1.
inline std::string BinaryTreeMoves(int height,
                                   const std::string& pred = "move") {
  std::string text;
  int internal = (1 << height) - 1;
  for (int i = 1; i <= internal; ++i) {
    text += pred + "(" + std::to_string(i) + "," + std::to_string(2 * i) +
            ").\n" + pred + "(" + std::to_string(i) + "," +
            std::to_string(2 * i + 1) + ").\n";
  }
  return text;
}

// Binary tree as edges for path queries (edge from parent to children).
inline std::string BinaryTreeEdges(int height,
                                   const std::string& pred = "edge") {
  return BinaryTreeMoves(height, pred);
}

// [1,2,...,N] as Prolog list text.
inline std::string ListText(int n) {
  std::string text = "[";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) text += ",";
    text += std::to_string(i);
  }
  return text + "]";
}

}  // namespace xsb::bench

#endif  // XSB_BENCH_BENCH_UTIL_H_
