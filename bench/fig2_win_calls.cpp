// Figure 2 of the paper: which win/1 subgoals are visited when the query
// win(1) runs over a complete binary tree.
//
//   * SLDNF visits G(n) = 2^(floor(n/2)+2) - 3 + 2*(n/2 - floor(n/2))
//     subgoals (the circled nodes of Figure 2) — about sqrt(2)^n;
//   * default SLG evaluates the whole tree: 2^(n+1) - 1 subgoals;
//   * existential negation matches the SLDNF frontier.
//
// We count actual calls (SLDNF) and tables created (SLG variants).

#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

double PaperFormula(int n) {
  // G(n) = 2^(floor(n/2)+2) - 3 + 2(n/2 - floor(n/2)).
  return std::pow(2.0, n / 2 + 2) - 3.0 + 2.0 * (n / 2.0 - n / 2);
}

}  // namespace

int main() {
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("Figure 2: win/1 subgoals visited over a binary tree");
  PrintRow("height n", {"2", "4", "6", "8", "10", "12"},
           /*label_width=*/22, /*cell_width=*/10);

  std::vector<std::string> sldnf_calls, slg_tables, eneg_tables, formula,
      total;
  for (int h : {2, 4, 6, 8, 10, 12}) {
    // SLDNF: count calls to swin/1.
    {
      xsb::Engine engine;
      (void)engine.ConsultString("swin(X) :- move(X,Y), \\+ swin(Y).\n" +
                                 xsb::bench::BinaryTreeMoves(h));
      auto& symbols = engine.symbols();
      engine.machine().set_counted_functor(
          symbols.InternFunctor(symbols.InternAtom("swin"), 1));
      (void)engine.Holds("swin(1)");
      sldnf_calls.push_back(
          std::to_string(engine.machine().stats().counted_calls));
    }
    // Default SLG: tables created.
    {
      xsb::Engine engine;
      (void)engine.ConsultString(":- table win/1.\n"
                                 "win(X) :- move(X,Y), tnot win(Y).\n" +
                                 xsb::bench::BinaryTreeMoves(h));
      (void)engine.Holds("win(1)");
      slg_tables.push_back(std::to_string(
          engine.evaluator().tables().stats().subgoals_created));
    }
    // Existential negation: tables created (incl. disposed ones).
    {
      xsb::Engine engine;
      (void)engine.ConsultString(":- table win/1.\n"
                                 "win(X) :- move(X,Y), e_tnot win(Y).\n" +
                                 xsb::bench::BinaryTreeMoves(h));
      (void)engine.Holds("win(1)");
      eneg_tables.push_back(std::to_string(
          engine.evaluator().tables().stats().subgoals_created));
    }
    formula.push_back(std::to_string(
        static_cast<long long>(PaperFormula(h))));
    total.push_back(std::to_string((1LL << (h + 1)) - 1));
  }

  PrintRow("SLDNF calls", sldnf_calls, 22, 10);
  PrintRow("paper G(n)", formula, 22, 10);
  PrintRow("SLG tables (tnot)", slg_tables, 22, 10);
  PrintRow("tree nodes 2^(n+1)-1", total, 22, 10);
  PrintRow("e_tnot tables", eneg_tables, 22, 10);

  std::printf(
      "\nExpected shape: SLDNF calls == G(n) (13 of 31 nodes at n=4, as in\n"
      "Figure 2); default SLG touches every node; e_tnot tracks G(n).\n");
  return 0;
}
