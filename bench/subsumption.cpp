// Answer-subsumption bench: lattice aggregation in the answer-trie insert
// path versus computing every answer and aggregating afterwards.
//
// Workload: single-source shortest path (min lattice) and widest path (max
// lattice) over a layered DAG — L fully connected layers of W nodes with
// random weights 1..9. The DAG keeps the compute-all baseline finite (a
// cyclic graph only terminates with the lattice), yet each (source, node)
// pair still has many distinct walk costs, so the subsumptive table holds
// one answer per key while the plain table holds every cost and re-feeds
// each of them to the recursive consumer.
//
//   * mode "subsumption":  :- table best(_, _, min)  — replace in the trie.
//   * mode "compute_all":  :- table best/3            — keep all costs, then
//                          aggregate per key at enumeration time.
//
// Usage: subsumption [OUT.json] — with an argument, also writes the
// machine-readable snapshot scripts/bench.sh collects.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

struct Row {
  std::string key;
  const char* mode;
  double time_ms;
  size_t live_answers;
  size_t table_bytes;
  uint64_t subsumed_dropped;
  uint64_t subsumed_replaced;
};

// L layers x W nodes, all edges between consecutive layers, weights 1..9.
std::string LayeredEdges(int layers, int width, uint32_t seed) {
  std::mt19937 rng(seed);
  std::string text;
  for (int j = 1; j <= width; ++j) {
    int w = 1 + static_cast<int>(rng() % 9);
    text += "edge(s, n1_" + std::to_string(j) + ", " + std::to_string(w) +
            ").\n";
  }
  for (int i = 1; i < layers; ++i) {
    for (int a = 1; a <= width; ++a) {
      for (int b = 1; b <= width; ++b) {
        int w = 1 + static_cast<int>(rng() % 9);
        text += "edge(n" + std::to_string(i) + "_" + std::to_string(a) +
                ", n" + std::to_string(i + 1) + "_" + std::to_string(b) +
                ", " + std::to_string(w) + ").\n";
      }
    }
  }
  return text;
}

std::string Rules(const std::string& kind, const std::string& table) {
  std::string combine =
      kind == "min" ? "C is C1 + C2" : "C is min(C1, C2)";
  return table + "best(X, Y, C) :- edge(X, Y, C).\n" +
         "best(X, Y, C) :- best(X, Z, C1), edge(Z, Y, C2), " + combine +
         ".\n";
}

// One timed evaluation: enumerate best(s, Y, C) and reduce to the per-node
// optimum in the callback (a no-op reduction for the subsumptive table,
// the actual aggregation step for compute_all).
size_t QueryAndAggregate(xsb::Engine& engine, const std::string& kind) {
  std::map<std::string, long> agg;
  xsb::Status s = engine.ForEach("best(s, Y, C)", [&](const xsb::Answer& a) {
    long c = std::strtol(a["C"].c_str(), nullptr, 10);
    auto [it, inserted] = agg.try_emplace(a["Y"], c);
    if (!inserted) {
      it->second = kind == "min" ? std::min(it->second, c)
                                 : std::max(it->second, c);
    }
    return true;
  });
  if (!s.ok()) std::abort();
  return agg.size();
}

Row Run(const std::string& key, const char* mode, const std::string& program,
        const std::string& kind) {
  xsb::Engine engine;
  if (!engine.ConsultString(program).ok()) std::abort();
  double secs = xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    QueryAndAggregate(engine, kind);
  });
  const xsb::TableSpace& tables = engine.evaluator().tables();
  engine.AbolishAllTables();
  uint64_t dropped_before = tables.stats().subsumed_dropped;
  uint64_t replaced_before = tables.stats().subsumed_replaced;
  QueryAndAggregate(engine, kind);
  Row row{key,
          mode,
          secs * 1e3,
          tables.total_answers(),
          tables.table_bytes(),
          tables.stats().subsumed_dropped - dropped_before,
          tables.stats().subsumed_replaced - replaced_before};
  std::printf(
      "%-22s %-12s time_ms=%8.3f live_answers=%7zu table_bytes=%9zu "
      "dropped=%7llu replaced=%6llu\n",
      row.key.c_str(), row.mode, row.time_ms, row.live_answers,
      row.table_bytes, static_cast<unsigned long long>(row.subsumed_dropped),
      static_cast<unsigned long long>(row.subsumed_replaced));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  xsb::bench::PrintHeader(
      "answer subsumption: in-trie lattice vs compute-all-then-aggregate");

  struct Config {
    const char* name;
    int layers;
    int width;
    const char* kind;
  };
  std::vector<Config> configs{
      {"shortest_12x6", 12, 6, "min"},
      {"shortest_16x8", 16, 8, "min"},
      {"widest_12x6", 12, 6, "max"},
  };

  std::vector<Row> rows;
  for (const Config& c : configs) {
    std::string edges = LayeredEdges(c.layers, c.width, 42);
    std::string spec = std::string(":- table best(_, _, ") + c.kind + ").\n";
    rows.push_back(
        Run(c.name, "subsumption", Rules(c.kind, spec) + edges, c.kind));
    rows.push_back(Run(c.name, "compute_all",
                       Rules(c.kind, ":- table best/3.\n") + edges, c.kind));
  }

  std::printf(
      "\nThe subsumptive table keeps one lattice-best answer per key and\n"
      "retires beaten ones in place; compute_all stores every distinct cost\n"
      "and re-fires the recursive consumer for each. Compare against\n"
      "BENCH_subsumption.json.\n");

  if (argc > 1) {
    std::string json = "{\n  \"bench\": \"subsumption\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      json += "    {\"workload\": \"" + r.key + "\", \"mode\": \"" + r.mode +
              "\", \"time_ms\": " + xsb::bench::Fmt(r.time_ms, 3) +
              ", \"live_answers\": " + std::to_string(r.live_answers) +
              ", \"table_bytes\": " + std::to_string(r.table_bytes) +
              ", \"subsumed_dropped\": " + std::to_string(r.subsumed_dropped) +
              ", \"subsumed_replaced\": " +
              std::to_string(r.subsumed_replaced) + "}";
      json += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
