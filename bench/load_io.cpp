// Section 4.6: bulk I/O paths. The paper reports the formatted read at
// about a millisecond per fact on a Sparc2 (including index maintenance) —
// "roughly equivalent to the data load times of other deductive database
// systems" — and object-file loading at about 12x faster than formatted
// read + assert. We compare all three load paths on a 100k-tuple relation:
//   1. the general reader (full HiLog parser + assert),
//   2. the formatted read,
//   3. binary object files.

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "xsb/engine.h"

int main() {
  using xsb::bench::Fmt;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  constexpr int kTuples = 100000;

  // Prepare the three input files.
  std::string prolog_path = "/tmp/xsb_load_bench.P";
  std::string formatted_path = "/tmp/xsb_load_bench.dat";
  std::string object_path = "/tmp/xsb_load_bench.xob";
  {
    std::ofstream prolog(prolog_path);
    std::ofstream formatted(formatted_path);
    for (int i = 0; i < kTuples; ++i) {
      prolog << "rel(" << i << ",k" << (i % 977) << "," << (i * 7 % 10007)
             << ").\n";
      formatted << i << ",k" << (i % 977) << "," << (i * 7 % 10007) << "\n";
    }
  }
  {
    xsb::Engine engine;
    auto loaded = engine.LoadFactsFormattedFile(formatted_path, "rel", 3);
    if (!loaded.ok()) std::abort();
    if (!engine.SaveObjectFile(object_path).ok()) std::abort();
  }

  double general = xsb::bench::TimeOnce([&]() {
    xsb::Engine engine;
    if (!engine.ConsultFile(prolog_path).ok()) std::abort();
  });
  double formatted = xsb::bench::TimeOnce([&]() {
    xsb::Engine engine;
    auto loaded = engine.LoadFactsFormattedFile(formatted_path, "rel", 3);
    if (!loaded.ok() || loaded.value() != kTuples) std::abort();
  });
  double object = xsb::bench::TimeOnce([&]() {
    xsb::Engine engine;
    auto loaded = engine.LoadObjectFile(object_path);
    if (!loaded.ok() || loaded.value() != kTuples) std::abort();
  });

  PrintHeader("bulk loading a 100k-tuple relation (first-arg index built)");
  PrintRow("path", {"total ms", "us/fact", "speedup"}, 26, 12);
  PrintRow("general reader + assert",
           {Fmt(general * 1e3, 1), Fmt(general / kTuples * 1e6, 2), "1.0"},
           26, 12);
  PrintRow("formatted read",
           {Fmt(formatted * 1e3, 1), Fmt(formatted / kTuples * 1e6, 2),
            Fmt(general / formatted, 1)},
           26, 12);
  PrintRow("object file",
           {Fmt(object * 1e3, 1), Fmt(object / kTuples * 1e6, 2),
            Fmt(general / object, 1)},
           26, 12);
  std::printf("object file vs formatted read: %.1fx faster\n",
              formatted / object);

  std::printf(
      "\nPaper (Sparc2): formatted read ~1 ms/fact incl. index upkeep;\n"
      "object files ~12x faster than formatted read + assert. On modern\n"
      "hardware absolute times shrink; the ordering and the order-of-\n"
      "magnitude gap between parsing and binary loading are the shape.\n");

  std::remove(prolog_path.c_str());
  std::remove(formatted_path.c_str());
  std::remove(object_path.c_str());
  return 0;
}
