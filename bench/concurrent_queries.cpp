// Concurrent query serving over shared completed tables (QueryService).
//
// Workloads are the paper's transitive-closure structures: a chain and a
// cycle, tabled path/2 over edge/2. Two phases per workload:
//   * cold  — a fresh service; the measured batch includes computing the
//     tables (first-caller-computes, under the evaluation lock), so it
//     bounds how much the lock serializes distinct variants;
//   * warm  — tables completed and published before timing; every query is
//     served lock-free off the shared answer tries, so throughput should
//     scale with worker threads (given actual hardware parallelism).
// Both phases run at 1/2/4/8 worker threads and report queries/second.
// A separate section compares the plain single-session Engine against a
// 1-worker service on the same warm workload — the serving layer's
// per-query overhead.
//
// An optional argv[1] names a JSON file to write machine-readable results
// to (the repo records them in BENCH_concurrent.json). The JSON carries
// `hardware_threads` (std::thread::hardware_concurrency of the measuring
// machine) — scaling numbers are only meaningful when it exceeds the
// worker count.

#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/query_service.h"
#include "xsb/engine.h"

namespace {

using xsb::QueryService;
using xsb::bench::Fmt;
using xsb::bench::PrintHeader;
using xsb::bench::PrintRow;
using xsb::bench::TimeOnce;

constexpr const char* kTcRules =
    ":- table path/2.\n"
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- path(X,Z), edge(Z,Y).\n";

struct Workload {
  std::string name;
  std::string program;
  std::vector<std::string> goals;  // distinct variants, round-robined
};

Workload ChainWorkload(int nodes, int variants) {
  Workload w;
  w.name = "chain" + std::to_string(nodes);
  w.program = kTcRules + xsb::bench::ChainEdges(nodes);
  for (int i = 1; i <= variants; ++i) {
    w.goals.push_back("path(" + std::to_string(i) + ", X)");
  }
  return w;
}

Workload CycleWorkload(int nodes, int variants) {
  Workload w;
  w.name = "cycle" + std::to_string(nodes);
  w.program = kTcRules + xsb::bench::CycleEdges(nodes);
  for (int i = 1; i <= variants; ++i) {
    w.goals.push_back("path(" + std::to_string(i) + ", X)");
  }
  return w;
}

// `families` disjoint transitive-closure predicates path0..pathN-1: the
// analyzer places each in its own shard, so cold evaluation of different
// families proceeds concurrently under the shard-ownership protocol. This
// is the workload where cold q/s can actually scale with workers (the
// single-predicate workloads above share one shard and serialize their
// cold batches by design).
Workload FamiliesWorkload(int families, int nodes) {
  Workload w;
  w.name = "families" + std::to_string(families) + "x" +
           std::to_string(nodes);
  std::string program;
  for (int f = 0; f < families; ++f) {
    std::string p = "path" + std::to_string(f);
    std::string e = "edge" + std::to_string(f);
    program += ":- table " + p + "/2.\n";
    program += p + "(X,Y) :- " + e + "(X,Y).\n";
    program += p + "(X,Y) :- " + p + "(X,Z), " + e + "(Z,Y).\n";
    for (int i = 1; i < nodes; ++i) {
      program += e + "(" + std::to_string(i) + "," +
                 std::to_string(i + 1) + ").\n";
    }
    w.goals.push_back(p + "(1, X)");
  }
  w.program = std::move(program);
  return w;
}

size_t Drain(std::vector<std::future<xsb::Result<std::vector<xsb::Answer>>>>*
                 futures) {
  size_t answers = 0;
  for (auto& future : *futures) {
    auto result = future.get();
    if (!result.ok()) std::abort();
    answers += result.value().size();
  }
  futures->clear();
  return answers;
}

// Submits `queries` jobs round-robin over the workload's goal variants and
// waits for all of them; returns wall seconds.
double RunBatch(QueryService* service, const Workload& w, int queries,
                size_t* answers) {
  std::vector<std::future<xsb::Result<std::vector<xsb::Answer>>>> futures;
  futures.reserve(queries);
  double seconds = TimeOnce([&] {
    for (int i = 0; i < queries; ++i) {
      futures.push_back(
          service->Submit(w.goals[i % w.goals.size()]));
    }
    *answers += Drain(&futures);
  });
  return seconds;
}

struct Measurement {
  double cold_qps = 0;
  double warm_qps = 0;
  size_t answers = 0;  // divergence guard across thread counts
  uint64_t parallel_batches = 0;  // cold batches evaluated under < full mask
  uint64_t coarse_fallbacks = 0;  // cold batches restarted coarse
};

Measurement Measure(const Workload& w, int threads, int queries) {
  Measurement m;
  // Cold: fresh tables, the batch pays for evaluation. Best of 3 services.
  double cold_best = 1e30;
  for (int run = 0; run < 3; ++run) {
    QueryService service({.num_workers = threads});
    if (!service.Consult(w.program).ok()) std::abort();
    size_t answers = 0;
    double t = RunBatch(&service, w, queries, &answers);
    if (run == 0) {
      m.answers = answers;
      QueryService::ServiceStats stats = service.Stats();
      m.parallel_batches = stats.parallel_batches;
      m.coarse_fallbacks = stats.coarse_fallbacks;
    }
    if (t < cold_best) cold_best = t;
  }
  m.cold_qps = queries / cold_best;

  // Warm: publish every variant's table first, then time repeat batches.
  QueryService service({.num_workers = threads});
  if (!service.Consult(w.program).ok()) std::abort();
  for (const std::string& goal : w.goals) {
    if (!service.Query(goal).ok()) std::abort();
  }
  double warm_best = 1e30;
  for (int run = 0; run < 5; ++run) {
    size_t answers = 0;
    double t = RunBatch(&service, w, queries, &answers);
    if (t < warm_best) warm_best = t;
  }
  m.warm_qps = queries / warm_best;
  return m;
}

// Plain Engine vs 1-worker service on the same warm workload: the serving
// layer's per-query overhead (queue hop, epoch bracket, promise).
void EngineVsService(const Workload& w, int queries, double* engine_qps,
                     double* service_qps) {
  xsb::Engine engine;
  if (!engine.ConsultString(w.program).ok()) std::abort();
  for (const std::string& goal : w.goals) {
    if (!engine.Count(goal).ok()) std::abort();
  }
  double engine_best = 1e30;
  for (int run = 0; run < 5; ++run) {
    double t = TimeOnce([&] {
      for (int i = 0; i < queries; ++i) {
        if (!engine.FindAll(w.goals[i % w.goals.size()]).ok()) std::abort();
      }
    });
    if (t < engine_best) engine_best = t;
  }
  *engine_qps = queries / engine_best;

  Measurement m = Measure(w, 1, queries);
  *service_qps = m.warm_qps;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned hardware = std::thread::hardware_concurrency();
  const int kQueries = 64;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<Workload> workloads = {ChainWorkload(300, 16),
                                     CycleWorkload(200, 16),
                                     FamiliesWorkload(8, 200)};

  std::string json = "{\n  \"bench\": \"concurrent_queries\",\n";
  json += "  \"unit\": \"queries_per_second\",\n";
  json += "  \"hardware_threads\": " + std::to_string(hardware) + ",\n";
  // hardware_concurrency() may return 0 when the count is unknowable; treat
  // that as "not measured" too rather than implying parallelism.
  bool parallel_measured = hardware >= 2;
  json += std::string("  \"parallelism_not_measured\": ") +
          (parallel_measured ? "false" : "true") + ",\n";
  json +=
      "  \"note\": \"scaling across worker counts is only meaningful when "
      "hardware_threads exceeds the worker count; when "
      "parallelism_not_measured is true all worker counts time-slice one "
      "core, so multi-worker numbers show queue pipelining, not parallel "
      "speedup — see EXPERIMENTS.md\",\n";
  json += "  \"workloads\": [\n";

  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const Workload& w = workloads[wi];
    PrintHeader("concurrent serving: " + w.name + " (" +
                std::to_string(kQueries) + " queries, " +
                std::to_string(w.goals.size()) + " variants)");
    PrintRow("threads", {"cold q/s", "warm q/s", "answers", "par batches"});
    json += "    {\"workload\": \"" + w.name + "\", \"queries\": " +
            std::to_string(kQueries) + ", \"points\": [\n";
    size_t answers0 = 0;
    for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
      int threads = thread_counts[ti];
      Measurement m = Measure(w, threads, kQueries);
      if (ti == 0) answers0 = m.answers;
      if (m.answers != answers0) {
        std::printf("WARNING: answer count diverged across thread counts\n");
        return 1;
      }
      PrintRow(std::to_string(threads),
               {Fmt(m.cold_qps, 1), Fmt(m.warm_qps, 1),
                std::to_string(m.answers),
                std::to_string(m.parallel_batches)});
      json += "      {\"threads\": " + std::to_string(threads) +
              ", \"cold_qps\": " + Fmt(m.cold_qps, 2) +
              ", \"warm_qps\": " + Fmt(m.warm_qps, 2) +
              ", \"parallel_batches\": " +
              std::to_string(m.parallel_batches) +
              ", \"coarse_fallbacks\": " +
              std::to_string(m.coarse_fallbacks) + "}" +
              (ti + 1 < thread_counts.size() ? ",\n" : "\n");
    }
    json += "    ]}" + std::string(wi + 1 < workloads.size() ? ",\n" : "\n");
  }
  json += "  ],\n";

  double engine_qps = 0;
  double service_qps = 0;
  EngineVsService(workloads[0], kQueries, &engine_qps, &service_qps);
  PrintHeader("engine vs 1-worker service (warm " + workloads[0].name + ")");
  PrintRow("engine", {Fmt(engine_qps, 1)});
  PrintRow("service x1", {Fmt(service_qps, 1)});
  PrintRow("service/engine", {Fmt(service_qps / engine_qps, 3)});
  json += "  \"single_thread_overhead\": {\"workload\": \"" +
          workloads[0].name + "\", \"engine_qps\": " + Fmt(engine_qps, 2) +
          ", \"service_1worker_qps\": " + Fmt(service_qps, 2) +
          ", \"service_over_engine\": " + Fmt(service_qps / engine_qps, 4) +
          "}\n}\n";

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
