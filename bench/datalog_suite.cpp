// Section 5's "generally similar ratios hold" paragraph: XSB vs the
// bottom-up baseline over the standard datalog suite — linear right
// recursion, double recursion, same_generation, and the stratified win/1
// game. Each entry reports XSB (tabled) and bottom-up (semi-naive; with
// magic where the program is positive) times and their ratio.

#include <functional>
#include <string>

#include "bench/bench_util.h"
#include "bottomup/magic.h"
#include "bottomup/seminaive.h"
#include "xsb/engine.h"

namespace {

using xsb::datalog::DatalogProgram;
using xsb::datalog::Evaluation;
using xsb::datalog::Literal;
using xsb::datalog::MagicRewrite;
using xsb::datalog::ParseDatalog;
using xsb::datalog::ParseQuery;

double TimeXsb(const std::string& program, const std::string& goal) {
  xsb::Engine engine;
  if (!engine.ConsultString(program).ok()) std::abort();
  return xsb::bench::TimeBest([&]() {
    engine.AbolishAllTables();
    auto n = engine.Count(goal);
    if (!n.ok()) std::abort();
  });
}

double TimeBottomUp(const std::string& program, const std::string& query,
                    bool magic) {
  DatalogProgram base;
  if (!ParseDatalog(program, &base).ok()) std::abort();
  return xsb::bench::TimeBest([&]() {
    DatalogProgram copy = base;
    auto q = ParseQuery(query, &copy);
    Literal target = q.value();
    if (magic) {
      auto rewritten = MagicRewrite(&copy, q.value());
      if (!rewritten.ok()) std::abort();
      target = rewritten.value();
    }
    Evaluation eval(&copy);
    if (!eval.Run().ok()) std::abort();
    (void)eval.Select(target);
  });
}

}  // namespace

int main() {
  using xsb::bench::ChainEdges;
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader("Section 5 datalog suite: XSB vs bottom-up baseline");
  PrintRow("workload", {"XSB ms", "bottom-up ms", "ratio"}, 30, 14);

  struct Case {
    std::string name;
    std::string xsb_program;
    std::string xsb_goal;
    std::string datalog_program;
    std::string datalog_query;
    bool magic;
  };

  std::string chain = ChainEdges(400);
  std::string cyl = xsb::bench::CycleEdges(96);

  // same_generation over a two-level wide tree.
  std::string par;
  for (int g = 0; g < 20; ++g) {
    for (int c = 0; c < 20; ++c) {
      par += "par(c" + std::to_string(g * 20 + c) + ",g" +
             std::to_string(g) + ").\n";
    }
    par += "par(g" + std::to_string(g) + ",root).\n";
  }

  std::string tree = xsb::bench::BinaryTreeMoves(9);

  std::vector<Case> cases{
      {"right-rec TC, chain 400",
       ":- table path/2.\npath(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- edge(X,Z), path(Z,Y).\n" + chain,
       "path(1, X)",
       "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n" +
           chain,
       "path(1, X)", true},
      {"double-rec TC, cycle 96",
       ":- table path/2.\npath(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), path(Z,Y).\n" + cyl,
       "path(1, X)",
       "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y).\n" +
           cyl,
       "path(1, X)", true},
      {"same_generation 400 kids",
       ":- table sg/2.\nsg(X,X).\n"
       "sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n" + par,
       "sg(c0, X)",
       "sg(X,Y) :- par(X,P), par(Y,P).\n"
       "sg(X,Y) :- par(X,XP), sg(XP,YP), par(Y,YP).\n" + par,
       "sg(c0, X)", true},
      {"win/1, tree h=9 (negation)",
       ":- table win/1.\nwin(X) :- move(X,Y), tnot win(Y).\n" + tree,
       "win(1)",
       // Bottom-up: stratified layers cannot express win directly (negation
       // through recursion); the standard encoding unrolls by depth, which
       // magic cannot help — evaluated without magic over the full tree.
       "pos(X) :- move(X,Y).\npos(Y) :- move(X,Y).\n"
       "lose(X) :- pos(X), not haswin(X).\n"
       "haswin(X) :- move(X,Y).\n" + tree,
       "lose(1)", false},
  };

  for (const Case& c : cases) {
    double a = TimeXsb(c.xsb_program, c.xsb_goal);
    double b = TimeBottomUp(c.datalog_program, c.datalog_query, c.magic);
    PrintRow(c.name, {FmtMs(a), FmtMs(b), Fmt(b / a, 1)}, 30, 14);
  }

  std::printf(
      "\nPaper: XSB at least an order of magnitude faster than CORAL on\n"
      "these programs (win/1 included). The last row's bottom-up column is\n"
      "a weaker stratified approximation: full win/1 is not stratified, so\n"
      "the set-at-a-time engine cannot run it at all — which is itself the\n"
      "point the paper makes with modularly stratified SLG.\n");
  return 0;
}
