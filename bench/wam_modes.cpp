// WAM mode-specialization bench: the same compiled module run with the
// mode-specialized entry code ON vs OFF (CompileOptions::specialize), over
//   * chain400_path — right-recursive reachability over a 400-node chain
//     (the PR 1 baseline workload shape, non-tabled here: acyclic, so plain
//     WAM terminates), first argument proven ground by a query entry seed;
//   * nrev30 — naive reverse of a 30-element ground list, exercising the
//     read-mode structure instructions (kGetStructureRd/kUnifyConstantRd)
//     on app/3's proven-ground first argument.
// Reports wall time and the emulator's instruction counter (deterministic:
// the specialized entries skip switch_on_term, verified first-argument
// gets, and write-mode branches). Non-gating; scripts/bench.sh writes
// bench-out/BENCH_modes.json.
//
// Usage: wam_modes [OUT.json]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "bench/bench_util.h"
#include "db/loader.h"
#include "parser/reader.h"
#include "wam/compile.h"
#include "wam/emulator.h"

namespace {

using namespace xsb;

struct Workload {
  const char* key;
  std::string program;
  std::string goal;
  const char* entry_pred;
  int entry_arity;
  analysis::InstVec entry_call;
};

struct Column {
  double time_ms = 0;
  uint64_t instructions = 0;
  uint64_t mode_checks = 0;
  uint64_t mode_fallbacks = 0;
  uint64_t choice_points = 0;
  uint64_t switch_structure_hits = 0;
  size_t answers = 0;
};

struct Row {
  const char* key;
  Column spec;
  Column generic;
  Column jit;  // the specialized module on the native tier (threshold 0)
  bool jit_active = false;
};

// jit_threshold is pinned explicitly: -1 keeps the measurement on the
// bytecode emulator regardless of XSB_JIT_THRESHOLD in the environment,
// 0 compiles every predicate before the timed runs (first solve is warmup).
Column RunOne(TermStore* store, Program* program,
              const wam::CompiledModule& module, const std::string& goal,
              int64_t jit_threshold, bool* jit_active = nullptr) {
  Result<Word> g = ParseTermString(store, program->ops(), goal);
  if (!g.ok()) std::abort();
  Column col;
  wam::EmulatorOptions eopts;
  eopts.jit_threshold = jit_threshold;
  wam::Emulator emulator(store, &module, eopts);
  if (jit_active != nullptr) *jit_active = emulator.jit_active();
  auto solve = [&]() {
    size_t trail = store->TrailMark();
    size_t count = 0;
    Status s = emulator.Solve(g.value(), [&count]() {
      ++count;
      return wam::WamAction::kContinue;
    });
    store->UndoTrail(trail);
    if (!s.ok()) std::abort();
    col.answers = count;
  };
  solve();  // warm + deterministic counters from exactly the timed shape
  uint64_t instr0 = emulator.stats().instructions;
  uint64_t checks0 = emulator.stats().mode_checks;
  uint64_t falls0 = emulator.stats().mode_fallbacks;
  uint64_t cps0 = emulator.stats().choice_points;
  uint64_t swh0 = emulator.stats().switch_structure_hits;
  solve();
  col.instructions = emulator.stats().instructions - instr0;
  col.mode_checks = emulator.stats().mode_checks - checks0;
  col.mode_fallbacks = emulator.stats().mode_fallbacks - falls0;
  col.choice_points = emulator.stats().choice_points - cps0;
  col.switch_structure_hits =
      emulator.stats().switch_structure_hits - swh0;
  col.time_ms = bench::TimeBest(solve, 0.1, 400) * 1e3;
  return col;
}

Row Run(const Workload& w) {
  SymbolTable symbols;
  TermStore store(&symbols);
  Program program(&symbols);
  Loader loader(&store, &program);
  if (!loader.ConsultString(w.program).ok()) std::abort();

  // Seed the analysis with the query's call shape (the in-program clauses
  // alone cannot reveal how the top-level goal binds the entry arguments).
  analysis::AnalyzeOptions options;
  analysis::ModeEntry entry;
  entry.functor = symbols.InternFunctor(symbols.InternAtom(w.entry_pred),
                                        w.entry_arity);
  entry.call = w.entry_call;
  options.mode_entries.push_back(entry);
  analysis::AnalysisResult result = analysis::Analyze(program, options);
  analysis::PublishModes(&program, result);

  wam::CompileOptions on;
  on.specialize = true;
  Result<wam::CompiledModule> spec = CompileModule(&store, program, {}, on);
  if (!spec.ok()) std::abort();
  wam::CompileOptions off;
  off.specialize = false;
  Result<wam::CompiledModule> generic =
      CompileModule(&store, program, {}, off);
  if (!generic.ok()) std::abort();

  Row row;
  row.key = w.key;
  row.generic = RunOne(&store, &program, generic.value(), w.goal,
                       /*jit_threshold=*/-1);
  row.spec = RunOne(&store, &program, spec.value(), w.goal,
                    /*jit_threshold=*/-1);
  row.jit = RunOne(&store, &program, spec.value(), w.goal,
                   /*jit_threshold=*/0, &row.jit_active);
  if (row.spec.answers != row.generic.answers) std::abort();
  if (row.jit.answers != row.spec.answers) std::abort();
  if (row.jit.instructions != row.spec.instructions) std::abort();
  if (row.jit.choice_points != row.spec.choice_points) std::abort();
  std::printf(
      "%-16s answers=%5zu  spec: time_ms=%8.3f instr=%8llu cps=%5llu "
      "checks=%6llu fallbacks=%3llu | generic: time_ms=%8.3f instr=%8llu "
      "cps=%5llu | jit: time_ms=%8.3f speedup=%.2f\n",
      row.key, row.spec.answers, row.spec.time_ms,
      static_cast<unsigned long long>(row.spec.instructions),
      static_cast<unsigned long long>(row.spec.choice_points),
      static_cast<unsigned long long>(row.spec.mode_checks),
      static_cast<unsigned long long>(row.spec.mode_fallbacks),
      row.generic.time_ms,
      static_cast<unsigned long long>(row.generic.instructions),
      static_cast<unsigned long long>(row.generic.choice_points),
      row.jit.time_ms, row.spec.time_ms / row.jit.time_ms);
  return row;
}

std::string NrevList(int n) {
  std::string list = "[";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) list += ",";
    list += std::to_string(i);
  }
  return list + "]";
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader("WAM mode specialization: spec on vs off");

  const analysis::InstVec gf = {analysis::Inst::kGround,
                                analysis::Inst::kFree};
  std::vector<Workload> workloads{
      {"chain400_path",
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- edge(X,Z), path(Z,Y).\n" +
           bench::ChainEdges(400),
       "path(1, X)", "path", 2, gf},
      {"nrev30",
       "app([], L, L).\n"
       "app([H|T], L, [H|R]) :- app(T, L, R).\n"
       "nrev([], []).\n"
       "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n",
       "nrev(" + NrevList(30) + ", R)", "nrev", 2, gf},
  };
  std::vector<Row> rows;
  for (const Workload& w : workloads) rows.push_back(Run(w));

  std::printf(
      "\nThe specialized entries are guarded (kCheckMode): the instruction\n"
      "delta is pure savings on pattern-conformant calls, and a violating\n"
      "call costs one failed guard plus the generic copy.\n");

  if (argc > 1) {
    auto column = [](const Column& c) {
      return "{\"time_ms\": " + bench::Fmt(c.time_ms, 3) +
             ", \"instructions\": " + std::to_string(c.instructions) +
             ", \"mode_checks\": " + std::to_string(c.mode_checks) +
             ", \"mode_fallbacks\": " + std::to_string(c.mode_fallbacks) +
             ", \"choice_points\": " + std::to_string(c.choice_points) +
             ", \"switch_structure_hits\": " +
             std::to_string(c.switch_structure_hits) + "}";
    };
    std::string json = "{\n  \"bench\": \"wam_modes\",\n  \"jit_active\": ";
    json += (!rows.empty() && rows.front().jit_active) ? "true" : "false";
    json += ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      int64_t saved = static_cast<int64_t>(r.generic.instructions) -
                      static_cast<int64_t>(r.spec.instructions);
      json += "    {\"workload\": \"" + std::string(r.key) +
              "\", \"answers\": " + std::to_string(r.spec.answers) +
              ", \"instructions_saved\": " + std::to_string(saved) +
              ", \"spec_on\": " + column(r.spec) +
              ", \"spec_off\": " + column(r.generic) +
              ", \"jit\": " + column(r.jit) +
              ", \"jit_speedup\": " +
              bench::Fmt(r.spec.time_ms / r.jit.time_ms, 2) + "}";
      json += (i + 1 < rows.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
