// Incremental table maintenance vs abolish-and-recompute under a dynamic
// update workload. Two independent tabled components share one engine:
//   * a small, hot transitive closure (edge/path) that is updated every
//     round — one mid-chain edge retracted, then re-asserted;
//   * a large, cold closure (bigedge/bigpath) that is never updated.
// Each round performs one update and re-queries both closures. With
// incremental maintenance only the hot component's tables are invalidated
// and lazily re-evaluated; the baseline abolishes the whole table space on
// every update and so pays to re-derive the cold closure each round. The
// gap is the cost the dependency graph avoids.
//
// An optional argv[1] names a JSON file to append machine-readable results
// to (the repo records them in BENCH_incremental.json).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "xsb/engine.h"

namespace {

struct Config {
  int small_chain;  // nodes of the hot closure's chain
  int big_chain;    // nodes of the cold closure's chain
  int rounds;       // update+requery rounds per timed run
};

std::string Program(const Config& c) {
  std::string text =
      ":- table path/2.\n"
      ":- table bigpath/2.\n"
      ":- incremental(edge/2).\n"
      ":- incremental(bigedge/2).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      "bigpath(X,Y) :- bigedge(X,Y).\n"
      "bigpath(X,Y) :- bigpath(X,Z), bigedge(Z,Y).\n";
  text += xsb::bench::ChainEdges(c.small_chain);
  text += xsb::bench::ChainEdges(c.big_chain, "bigedge");
  return text;
}

// Seconds per round (update + both requeries), best of several runs.
// `checksum` guards against the engines diverging: both modes must count
// the same answers every round.
double TimePerRound(const Config& c, bool incremental, size_t* checksum) {
  xsb::Engine::Options options;
  options.incremental = incremental;
  xsb::Engine engine(options);
  if (!engine.ConsultString(Program(c)).ok()) std::abort();

  int mid = c.small_chain / 2;
  std::string cut_edge =
      "edge(" + std::to_string(mid) + "," + std::to_string(mid + 1) + ")";
  auto count = [&](const char* goal) {
    auto n = engine.Count(goal);
    if (!n.ok()) std::abort();
    return n.value();
  };

  // Warm both closures so round 0 measures maintenance, not first derivation.
  count("path(1, X)");
  count("bigpath(1, X)");

  size_t sum = 0;
  double best = xsb::bench::TimeBest([&]() {
    // Even number of rounds: the chain is restored when the run ends, so
    // repeated runs time the same work.
    for (int r = 0; r < c.rounds; ++r) {
      const char* update = (r % 2 == 0) ? "retract" : "assert";
      if (!engine.Holds(std::string(update) + "(" + cut_edge + ")").value()) {
        std::abort();
      }
      sum += count("path(1, X)");
      sum += count("bigpath(1, X)");
    }
  });
  *checksum = sum;
  return best / c.rounds;
}

}  // namespace

int main(int argc, char** argv) {
  using xsb::bench::Fmt;
  using xsb::bench::FmtMs;
  using xsb::bench::PrintHeader;
  using xsb::bench::PrintRow;

  PrintHeader(
      "incremental maintenance vs abolish-and-recompute (per update round)");
  PrintRow("workload", {"abolish ms", "incr ms", "speedup"}, 30, 12);

  std::vector<Config> configs{
      {32, 256, 20},
      {32, 1024, 20},
      {64, 2048, 20},
  };
  std::string json = "{\n  \"bench\": \"incremental_updates\",\n"
                     "  \"unit\": \"ms_per_update_round\",\n  \"configs\": [\n";
  bool all_consistent = true;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    size_t sum_baseline = 0;
    size_t sum_incremental = 0;
    double baseline = TimePerRound(c, /*incremental=*/false, &sum_baseline);
    double incremental =
        TimePerRound(c, /*incremental=*/true, &sum_incremental);
    // Answer-level equivalence of the two modes is the fuzz suite's job;
    // here just guard against a mode silently deriving nothing.
    all_consistent = all_consistent && sum_baseline > 0 && sum_incremental > 0;

    std::string label = "hot " + std::to_string(c.small_chain) + " / cold " +
                        std::to_string(c.big_chain);
    PrintRow(label,
             {FmtMs(baseline), FmtMs(incremental),
              Fmt(baseline / incremental, 2)},
             30, 12);
    json += "    {\"hot_chain\": " + std::to_string(c.small_chain) +
            ", \"cold_chain\": " + std::to_string(c.big_chain) +
            ", \"rounds\": " + std::to_string(c.rounds) +
            ", \"abolish_ms\": " + Fmt(baseline * 1e3, 4) +
            ", \"incremental_ms\": " + Fmt(incremental * 1e3, 4) +
            ", \"speedup\": " + Fmt(baseline / incremental, 2) + "}" +
            (i + 1 < configs.size() ? ",\n" : "\n");
  }
  json += "  ]\n}\n";

  std::printf(
      "\nThe baseline re-derives the cold closure after every update; the\n"
      "dependency graph invalidates only the hot component, so the gap\n"
      "grows with the cold/hot size ratio.\n");
  if (!all_consistent) {
    std::printf("WARNING: a mode produced no answers; results suspect.\n");
    return 1;
  }

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
