#include "term/flat.h"

#include <unordered_map>

namespace xsb {

void FlattenAppend(const TermStore& store, Word t, std::vector<Word>* out,
                   std::vector<uint64_t>* var_cells) {
  // Variable numbering by first occurrence; terms rarely have more than a
  // handful of variables, so a linear scan beats a hash map here.
  // Preorder walk. The work stack holds cells still to emit; children are
  // pushed in reverse so they pop in order.
  std::vector<Word> work{t};
  while (!work.empty()) {
    Word x = store.Deref(work.back());
    work.pop_back();
    switch (TagOf(x)) {
      case Tag::kRef: {
        uint64_t cell = PayloadOf(x);
        uint32_t ordinal = static_cast<uint32_t>(var_cells->size());
        for (uint32_t i = 0; i < var_cells->size(); ++i) {
          if ((*var_cells)[i] == cell) {
            ordinal = i;
            break;
          }
        }
        if (ordinal == var_cells->size()) var_cells->push_back(cell);
        out->push_back(LocalCell(ordinal));
        break;
      }
      case Tag::kAtom:
      case Tag::kInt:
        out->push_back(x);
        break;
      case Tag::kStruct: {
        FunctorId f = store.StructFunctor(x);
        out->push_back(FunctorCell(f));
        int arity = store.symbols()->FunctorArity(f);
        for (int i = arity - 1; i >= 0; --i) work.push_back(store.Arg(x, i));
        break;
      }
      default:
        // kFunctor / kLocal never appear as heap terms.
        out->push_back(x);
        break;
    }
  }
}

FlatTerm Flatten(const TermStore& store, Word t) {
  FlatTerm out;
  std::vector<uint64_t> var_cells;
  FlattenAppend(store, t, &out.cells, &var_cells);
  out.num_vars = static_cast<uint32_t>(var_cells.size());
  return out;
}

bool FlattenInto(const TermStore& store, Word t, FlatTerm* out) {
  size_t cap_before = out->cells.capacity();
  out->cells.clear();
  std::vector<uint64_t> var_cells;
  FlattenAppend(store, t, &out->cells, &var_cells);
  out->num_vars = static_cast<uint32_t>(var_cells.size());
  return out->cells.capacity() == cap_before;
}

namespace {

// Rebuilds the subterm starting at stream position *pos; advances *pos.
Word UnflattenAt(TermStore* store, const FlatTerm& flat, size_t* pos,
                 std::vector<Word>* vars) {
  Word w = flat.cells[(*pos)++];
  switch (TagOf(w)) {
    case Tag::kLocal: {
      uint64_t ord = PayloadOf(w);
      Word& slot = (*vars)[ord];
      if (slot == 0) slot = store->MakeVar();
      return slot;
    }
    case Tag::kAtom:
    case Tag::kInt:
      return w;
    case Tag::kFunctor: {
      FunctorId f = FunctorOf(w);
      int arity = store->symbols()->FunctorArity(f);
      // Allocate the struct block first so nested blocks land after it; the
      // args are patched as they are built.
      Word s = store->MakeStructUninit(f);
      for (int i = 0; i < arity; ++i) {
        Word a = UnflattenAt(store, flat, pos, vars);
        store->SetArg(s, i, a);
      }
      return s;
    }
    default:
      return w;  // malformed stream; callers control inputs
  }
}

}  // namespace

Word Unflatten(TermStore* store, const FlatTerm& flat,
               std::vector<Word>* vars) {
  std::vector<Word> local_vars;
  if (vars == nullptr) vars = &local_vars;
  if (vars->size() < flat.num_vars) vars->resize(flat.num_vars, 0);
  size_t pos = 0;
  return UnflattenAt(store, flat, &pos, vars);
}

Word UnflattenNext(TermStore* store, const FlatTerm& flat, size_t* pos,
                   std::vector<Word>* vars) {
  return UnflattenAt(store, flat, pos, vars);
}

bool FlatTopFunctor(const FlatTerm& flat, FunctorId* functor) {
  if (flat.cells.empty() || !IsFunctor(flat.cells[0])) return false;
  *functor = FunctorOf(flat.cells[0]);
  return true;
}

}  // namespace xsb
