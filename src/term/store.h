#ifndef XSB_TERM_STORE_H_
#define XSB_TERM_STORE_H_

#include <cstddef>
#include <vector>

#include "term/cell.h"
#include "term/rawbuf.h"
#include "term/symbols.h"

namespace xsb {

// The term heap plus the binding trail: the mutable state that resolution
// operates on. Cells are addressed by index so the underlying vector may
// grow without invalidating terms. Backtracking is watermark-based: record
// {heap size, trail size}, and later unwind the trail and truncate the heap
// back to the marks.
class TermStore {
 public:
  explicit TermStore(SymbolTable* symbols) : symbols_(symbols) {}
  TermStore(const TermStore&) = delete;
  TermStore& operator=(const TermStore&) = delete;

  SymbolTable* symbols() const { return symbols_; }

  // --- Construction -------------------------------------------------------

  // Allocates a fresh unbound variable; returns a ref cell to it.
  Word MakeVar() {
    uint64_t i = heap_.size();
    heap_.push_back(RefCell(i));
    return RefCell(i);
  }

  // Allocates an uninitialized struct block for functor `f`; the caller must
  // fill the `arity` argument cells at ArgIndex(result, 0..arity-1).
  Word MakeStructUninit(FunctorId f) {
    uint64_t i = heap_.size();
    int arity = symbols_->FunctorArity(f);
    heap_.push_back(FunctorCell(f));
    for (int k = 0; k < arity; ++k) heap_.push_back(RefCell(i + 1 + k));
    return StructCell(i);
  }

  // Builds f(args...) where args are existing cells.
  Word MakeStruct(FunctorId f, const std::vector<Word>& args);
  Word MakeStruct2(AtomId name, Word a, Word b);  // name(a, b)
  Word MakeList(const std::vector<Word>& elements, Word tail);

  // --- Access --------------------------------------------------------------

  Word& At(uint64_t i) { return heap_[i]; }
  Word At(uint64_t i) const { return heap_[i]; }
  size_t heap_size() const { return heap_.size(); }

  // Follows ref chains to the representative cell.
  Word Deref(Word w) const {
    while (IsRef(w)) {
      Word next = heap_[PayloadOf(w)];
      if (next == w) return w;  // unbound
      w = next;
    }
    return w;
  }

  bool IsUnbound(Word w) const {
    w = Deref(w);
    return IsRef(w);
  }

  // For a dereferenced struct cell: its functor and argument cells.
  FunctorId StructFunctor(Word s) const {
    return FunctorOf(heap_[PayloadOf(s)]);
  }
  int StructArity(Word s) const {
    return symbols_->FunctorArity(StructFunctor(s));
  }
  Word Arg(Word s, int i) const { return heap_[PayloadOf(s) + 1 + i]; }
  uint64_t ArgIndex(Word s, int i) const { return PayloadOf(s) + 1 + i; }
  void SetArg(Word s, int i, Word v) { heap_[PayloadOf(s) + 1 + i] = v; }

  // --- Binding and backtracking -------------------------------------------

  // Binds the unbound variable `ref` (a dereferenced kRef cell) to `value`,
  // recording the old state on the trail.
  void Bind(Word ref, Word value) {
    uint64_t i = PayloadOf(ref);
    trail_.push_back(i);
    heap_[i] = value;
  }

  size_t TrailMark() const { return trail_.size(); }
  size_t HeapMark() const { return heap_.size(); }

  // Unbinds everything trailed after `mark`.
  void UndoTrail(size_t mark) {
    while (trail_.size() > mark) {
      uint64_t i = trail_.back();
      trail_.pop_back();
      heap_[i] = RefCell(i);
    }
  }

  // Frees heap cells allocated after `mark`. Only call after UndoTrail for a
  // trail mark taken at the same time, so no surviving cell points above.
  void TruncateHeap(size_t mark) { heap_.resize(mark); }

  // --- Unification ---------------------------------------------------------

  // Unifies a and b, trailing bindings; returns false (with bindings still
  // trailed — caller unwinds) on failure.
  bool Unify(Word a, Word b);

  // Structural identity without binding (==/2).
  bool Identical(Word a, Word b) const;

  // Standard order of terms: Var < Int < Atom < Compound. Returns <0,0,>0.
  int Compare(Word a, Word b) const;

  // True if no unbound variable occurs in t.
  bool IsGround(Word t) const;

  // Copies t to fresh heap cells with fresh variables (copy_term/2).
  Word CopyTerm(Word t);

  // --- Native-code access --------------------------------------------------

  // The live heap and trail buffers, exposed so the WAM JIT can bake their
  // (stable) addresses into generated code and bump-allocate inline. Regular
  // engine code must keep going through the methods above.
  RawBuf<Word>& heap_buf() { return heap_; }
  RawBuf<uint64_t>& trail_buf() { return trail_; }

 private:
  SymbolTable* symbols_;
  RawBuf<Word> heap_;
  RawBuf<uint64_t> trail_;
  // Scratch for Unify; reused across calls to avoid per-call allocation.
  std::vector<std::pair<Word, Word>> unify_stack_;
};

}  // namespace xsb

#endif  // XSB_TERM_STORE_H_
