#ifndef XSB_TERM_RAWBUF_H_
#define XSB_TERM_RAWBUF_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>

namespace xsb {

// A growable buffer of trivially-copyable cells with a fixed, standard-layout
// field order: {data, len, cap}. The term heap and the binding trail use this
// instead of std::vector so native (JIT-compiled) code can address the live
// buffer directly: the three fields sit at offsets 0/8/16 from the RawBuf
// address, which is stable for the lifetime of the owning TermStore even as
// the data block reallocates.
template <typename T>
struct RawBuf {
  static_assert(std::is_trivially_copyable_v<T>);

  T* data = nullptr;
  uint64_t len = 0;
  uint64_t cap = 0;

  RawBuf() = default;
  RawBuf(const RawBuf&) = delete;
  RawBuf& operator=(const RawBuf&) = delete;
  ~RawBuf() { std::free(data); }

  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  T& operator[](uint64_t i) { return data[i]; }
  const T& operator[](uint64_t i) const { return data[i]; }
  T& back() { return data[len - 1]; }
  void pop_back() { --len; }

  void push_back(T v) {
    if (len == cap) Grow(len + 1);
    data[len++] = v;
  }

  // Shrinks or grows; new cells are zero-initialized (matching the
  // std::vector<Word> value-init semantics this type replaced).
  void resize(uint64_t n) {
    if (n > len) {
      if (n > cap) Grow(n);
      std::memset(data + len, 0, (n - len) * sizeof(T));
    }
    len = n;
  }

 private:
  void Grow(uint64_t need) {
    uint64_t next = cap < 32 ? 64 : cap * 2;
    if (next < need) next = need;
    data = static_cast<T*>(std::realloc(data, next * sizeof(T)));
    cap = next;
  }
};

}  // namespace xsb

#endif  // XSB_TERM_RAWBUF_H_
