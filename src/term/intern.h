#ifndef XSB_TERM_INTERN_H_
#define XSB_TERM_INTERN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "base/concurrent.h"
#include "term/cell.h"
#include "term/flat.h"
#include "term/symbols.h"

namespace xsb {

// Id of a hash-consed ground compound term. Ids are dense and stable for the
// lifetime of the InternTable; two interned terms are equal iff their ids
// are equal, so ground-term comparison is one integer compare.
using InternId = uint32_t;

inline InternId InternIdOf(Word w) {
  return static_cast<InternId>(PayloadOf(w));
}

// Hash-consing store for ground terms (Warren, "Interning Ground Terms in
// XSB"): every distinct ground compound term is stored exactly once as a
// functor plus interned argument tokens, giving full structure sharing
// across table space. Atoms and integers are already canonical single
// cells, so only compound terms get table entries.
//
// A *token* is a Word that is either a plain atomic cell (kAtom / kInt), a
// kLocal variable cell, or a kInterned cell naming a stored compound term.
// Token streams are the compressed form of FlatTerm cell streams: every
// maximal ground compound subterm collapses to one kInterned token. Answer
// tries and canonical call keys are built over tokens, which is what makes
// tabled answer check/insert effectively constant-time on ground-heavy
// workloads.
//
// Concurrency: the store is shared by every serving thread of a
// QueryService. Reads (FindNode, AppendExpansion, Decode, ArgsOfId, ...)
// are lock-free — node and argument storage live in append-only arenas that
// never move, and the dedup index is an open bucket array of atomic chain
// heads published with release stores. Writes (Intern / Encode / InternNode
// miss paths) take a shard lock chosen by the key's hash plus a single
// allocation lock for the arena appends; distinct shards dedup-check in
// parallel. A lock-free FindNode may miss a term interned concurrently —
// a miss is advisory (callers re-probe under the evaluation lock before
// concluding a call variant is new); a hit is definitive.
class InternTable {
 public:
  explicit InternTable(const SymbolTable* symbols);
  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;
  ~InternTable();

  // Interns the ground term `t`; its cells must contain no kLocal cell.
  // Returns the token for it: an atomic cell for atoms/ints, a kInterned
  // cell for compounds.
  Word Intern(const FlatTerm& t) { return InternSubterm(t.cells, 0, nullptr); }

  // Rewrites a flat cell stream into a token stream: each maximal ground
  // compound subterm becomes one kInterned token; atoms, ints and kLocal
  // variables pass through unchanged. `out` is cleared first.
  void Encode(const std::vector<Word>& cells, std::vector<Word>* out);

  // Like Encode, but a compound at the top level keeps its functor cell
  // uncollapsed (only its arguments are tokenized). Answer tries use this:
  // answers of one subgoal share their functor/leading-argument prefix as
  // trie edges, while nested ground structure still collapses to interned
  // tokens. A fully ground answer costs no intern-table probe unless it has
  // compound arguments.
  void EncodeOpen(const std::vector<Word>& cells, std::vector<Word>* out);

  // Appends the plain flat-cell expansion of `token` to *out (the inverse
  // of Encode, one token at a time). Lock-free.
  void AppendExpansion(Word token, std::vector<Word>* out) const;

  // Expands a whole token stream back into a FlatTerm. num_vars is
  // recomputed from the kLocal ordinals present. Lock-free.
  FlatTerm Decode(const std::vector<Word>& tokens) const;

  // Interns the compound (functor, args) where the args are already tokens.
  // The call trie's heap-walking encoder builds tokens bottom-up with this,
  // skipping the intermediate FlatTerm entirely.
  Word InternNode(FunctorId functor, const Word* args, int arity) {
    return MakeNode(functor, args, arity);
  }

  // Lock-free lookup-only probe: the token for hash-consed (functor, args)
  // if that compound has already been interned, or kNoToken if it has not.
  // The call trie uses this on its lock-free lookup path — a ground
  // compound absent from the intern table cannot appear in any stored call
  // either. A kNoToken result is advisory under concurrency (see class
  // comment).
  static constexpr Word kNoToken = ~Word{0};
  Word FindNode(FunctorId functor, const Word* args, int arity) const;

  const SymbolTable& symbols() const { return *symbols_; }

  // Functor and argument tokens of an interned compound. Lock-free.
  FunctorId FunctorOfId(InternId id) const { return nodes_[id].functor; }
  const Word* ArgsOfId(InternId id) const {
    return arg_pool_.at(nodes_[id].first_arg);
  }
  int ArityOfId(InternId id) const {
    return symbols_->FunctorArity(nodes_[id].functor);
  }

  // --- Statistics -----------------------------------------------------------

  size_t num_terms() const { return nodes_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  // Approximate resident bytes of the store (nodes + arg pool + hash index).
  size_t bytes() const;

 private:
  static constexpr InternId kNoId = 0xffffffffu;
  // Write-path shards. Bucket counts are always a multiple of kShards, and
  // shard(h) == bucket(h) % kShards, so each dedup bucket is owned by
  // exactly one shard lock and chain-head updates never race.
  static constexpr size_t kShards = 16;

  struct Node {
    FunctorId functor;
    uint32_t first_arg;  // offset of the args run in arg_pool_
    // Intrusive collision/bucket chain. Always strictly less than the id of
    // the node holding it (new nodes are prepended, and rebuilds process
    // ids in ascending order), so a reader walking a chain — even one
    // re-linked by a concurrent bucket-array growth — strictly descends
    // and terminates.
    std::atomic<InternId> next_same_hash{kNoId};

    Node(FunctorId f, uint32_t a, InternId next) : functor(f), first_arg(a) {
      next_same_hash.store(next, std::memory_order_relaxed);
    }
  };

  // Open bucket array: hash -> head of an intrusive next_same_hash chain.
  // Grown by rebuild under all shard locks; superseded arrays are retired
  // (not freed) so lock-free readers probing a stale array see at worst an
  // advisory miss.
  struct DedupTable {
    size_t capacity;  // power of two, >= kShards
    std::unique_ptr<std::atomic<InternId>[]> buckets;
  };

  // Interns the subterm starting at `pos` of `cells` (which must be ground
  // over that extent); returns its token and, if `end` is non-null, the
  // position just past the subterm.
  Word InternSubterm(const std::vector<Word>& cells, size_t pos, size_t* end);

  // Single-pass encoder: emits the token stream for the subterm at `pos`
  // into *out and returns whether that subterm was ground (in which case it
  // contributed exactly one token).
  bool EncodeSubterm(const std::vector<Word>& cells, size_t pos, size_t* end,
                     std::vector<Word>* out);

  // Hash-conses (functor, args); args are tokens.
  Word MakeNode(FunctorId functor, const Word* args, int arity);

  static uint64_t HashNode(FunctorId functor, const Word* args, int arity);
  bool NodeEquals(InternId id, FunctorId functor, const Word* args,
                  int arity) const;

  static DedupTable* NewDedupTable(size_t capacity);
  void GrowIfNeeded();

  const SymbolTable* symbols_;
  ConcurrentArena<Node> nodes_;
  ConcurrentArena<Word, 12> arg_pool_;
  std::atomic<DedupTable*> dedup_{nullptr};
  std::vector<DedupTable*> retired_dedup_;
  std::mutex shard_mutex_[kShards];
  // Serializes arena appends across shards (and guards retired_dedup_).
  // Lock order: shard lock(s) first, then alloc_mutex_.
  mutable std::mutex alloc_mutex_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace xsb

#endif  // XSB_TERM_INTERN_H_
