#include "term/symbols.h"

namespace xsb {

SymbolTable::SymbolTable() {
  nil_ = InternAtom("[]");
  comma_ = InternAtom(",");
  dot_ = InternAtom(".");
  neck_ = InternAtom(":-");
  apply_ = InternAtom("apply");
  true_ = InternAtom("true");
  curly_ = InternAtom("{}");
}

AtomId SymbolTable::InternAtom(std::string_view name) {
  std::lock_guard<std::mutex> lock(intern_mutex_);
  auto it = atom_ids_.find(std::string(name));
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_names_.EmplaceBack(name));
  atom_ids_.emplace(atom_names_[id], id);
  return id;
}

FunctorId SymbolTable::InternFunctor(AtomId name, int arity) {
  uint64_t key = (static_cast<uint64_t>(name) << 16) |
                 static_cast<uint64_t>(arity & 0xffff);
  std::lock_guard<std::mutex> lock(intern_mutex_);
  auto it = functor_ids_.find(key);
  if (it != functor_ids_.end()) return it->second;
  FunctorId id =
      static_cast<FunctorId>(functors_.EmplaceBack(Functor{name, arity}));
  functor_ids_.emplace(key, id);
  return id;
}

}  // namespace xsb
