#include "term/store.h"

#include <unordered_map>

namespace xsb {

Word TermStore::MakeStruct(FunctorId f, const std::vector<Word>& args) {
  uint64_t i = heap_.size();
  heap_.push_back(FunctorCell(f));
  for (Word a : args) heap_.push_back(a);
  return StructCell(i);
}

Word TermStore::MakeStruct2(AtomId name, Word a, Word b) {
  FunctorId f = symbols_->InternFunctor(name, 2);
  uint64_t i = heap_.size();
  heap_.push_back(FunctorCell(f));
  heap_.push_back(a);
  heap_.push_back(b);
  return StructCell(i);
}

Word TermStore::MakeList(const std::vector<Word>& elements, Word tail) {
  Word list = tail;
  FunctorId cons = symbols_->InternFunctor(symbols_->dot(), 2);
  for (auto it = elements.rbegin(); it != elements.rend(); ++it) {
    uint64_t i = heap_.size();
    heap_.push_back(FunctorCell(cons));
    heap_.push_back(*it);
    heap_.push_back(list);
    list = StructCell(i);
  }
  return list;
}

bool TermStore::Unify(Word a, Word b) {
  // Explicit work stack; pairs still to unify. Reused member scratch: this
  // function is the hottest in the engine.
  std::vector<std::pair<Word, Word>>& work = unify_stack_;
  work.clear();
  work.emplace_back(a, b);
  while (!work.empty()) {
    auto [x, y] = work.back();
    work.pop_back();
    x = Deref(x);
    y = Deref(y);
    if (x == y) continue;
    if (IsRef(x)) {
      if (IsRef(y)) {
        // Bind the younger variable to the older to keep chains short and
        // keep bindings valid across heap truncation.
        if (PayloadOf(x) < PayloadOf(y)) {
          Bind(y, x);
        } else {
          Bind(x, y);
        }
      } else {
        Bind(x, y);
      }
      continue;
    }
    if (IsRef(y)) {
      Bind(y, x);
      continue;
    }
    if (IsAtomic(x) || IsAtomic(y)) {
      if (x != y) return false;
      continue;
    }
    // Both structs.
    FunctorId fx = StructFunctor(x);
    FunctorId fy = StructFunctor(y);
    if (fx != fy) return false;
    int arity = symbols_->FunctorArity(fx);
    for (int i = 0; i < arity; ++i) {
      work.emplace_back(Arg(x, i), Arg(y, i));
    }
  }
  return true;
}

bool TermStore::Identical(Word a, Word b) const {
  std::vector<std::pair<Word, Word>> work;
  work.emplace_back(a, b);
  while (!work.empty()) {
    auto [x, y] = work.back();
    work.pop_back();
    x = Deref(x);
    y = Deref(y);
    if (x == y) continue;
    if (!IsStruct(x) || !IsStruct(y)) return false;
    FunctorId fx = StructFunctor(x);
    if (fx != StructFunctor(y)) return false;
    int arity = symbols_->FunctorArity(fx);
    for (int i = 0; i < arity; ++i) {
      work.emplace_back(Arg(x, i), Arg(y, i));
    }
  }
  return true;
}

int TermStore::Compare(Word a, Word b) const {
  a = Deref(a);
  b = Deref(b);
  if (a == b) return 0;
  auto rank = [](Word w) {
    switch (TagOf(w)) {
      case Tag::kRef:
        return 0;
      case Tag::kInt:
        return 1;
      case Tag::kAtom:
        return 2;
      default:
        return 3;
    }
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (TagOf(a)) {
    case Tag::kRef:
      return PayloadOf(a) < PayloadOf(b) ? -1 : 1;
    case Tag::kInt: {
      int64_t va = IntValue(a), vb = IntValue(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case Tag::kAtom: {
      const std::string& na = symbols_->AtomName(AtomOf(a));
      const std::string& nb = symbols_->AtomName(AtomOf(b));
      return na.compare(nb) < 0 ? -1 : (na == nb ? 0 : 1);
    }
    default: {
      int aa = StructArity(a), ab = StructArity(b);
      if (aa != ab) return aa < ab ? -1 : 1;
      const std::string& na =
          symbols_->AtomName(symbols_->FunctorAtom(StructFunctor(a)));
      const std::string& nb =
          symbols_->AtomName(symbols_->FunctorAtom(StructFunctor(b)));
      int c = na.compare(nb);
      if (c != 0) return c < 0 ? -1 : 1;
      for (int i = 0; i < aa; ++i) {
        c = Compare(Arg(a, i), Arg(b, i));
        if (c != 0) return c;
      }
      return 0;
    }
  }
}

bool TermStore::IsGround(Word t) const {
  std::vector<Word> work{t};
  while (!work.empty()) {
    Word x = Deref(work.back());
    work.pop_back();
    if (IsRef(x)) return false;
    if (IsStruct(x)) {
      int arity = StructArity(x);
      for (int i = 0; i < arity; ++i) work.push_back(Arg(x, i));
    }
  }
  return true;
}

Word TermStore::CopyTerm(Word t) {
  std::unordered_map<uint64_t, Word> var_map;
  // Recursive copy via explicit stack: first pass computes nothing; we copy
  // structurally. Use recursion through a lambda with depth bounded by term
  // depth (fine for our workloads) to keep the code simple.
  auto copy = [&](auto&& self, Word x) -> Word {
    x = Deref(x);
    if (IsRef(x)) {
      auto it = var_map.find(PayloadOf(x));
      if (it != var_map.end()) return it->second;
      Word v = MakeVar();
      var_map.emplace(PayloadOf(x), v);
      return v;
    }
    if (!IsStruct(x)) return x;
    FunctorId f = StructFunctor(x);
    int arity = symbols_->FunctorArity(f);
    std::vector<Word> args(arity);
    for (int i = 0; i < arity; ++i) args[i] = self(self, Arg(x, i));
    return MakeStruct(f, args);
  };
  return copy(copy, t);
}

}  // namespace xsb
