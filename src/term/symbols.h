#ifndef XSB_TERM_SYMBOLS_H_
#define XSB_TERM_SYMBOLS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/concurrent.h"

namespace xsb {

// Interned atom name. Atom ids are dense and stable for the lifetime of the
// SymbolTable that produced them.
using AtomId = uint32_t;

// Interned (atom, arity) pair. Functor ids name compound-term shapes; an
// atom used as a functor of arity 0 is just the atom itself, so functors
// always have arity >= 1.
using FunctorId = uint32_t;

// Global intern tables for atoms and functors.
//
// Every term-producing component (parser, stores, loaders) shares one
// SymbolTable so that atom identity is pointer-free equality on ids.
//
// Concurrency: id -> name/arity reads (AtomName, FunctorAtom, FunctorArity)
// are lock-free — they index append-only arenas whose entries are immutable
// once published, which is what keeps the tabling and serving hot paths free
// of symbol locks. Interning (InternAtom / InternFunctor, i.e. parsing and
// consulting) takes a mutex; it is far off the hot path.
class SymbolTable {
 public:
  SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `name`, interning it on first use. Thread-safe.
  AtomId InternAtom(std::string_view name);
  // Returns the id for name/arity, interning it on first use. Thread-safe.
  FunctorId InternFunctor(AtomId name, int arity);

  const std::string& AtomName(AtomId id) const { return atom_names_[id]; }
  AtomId FunctorAtom(FunctorId id) const { return functors_[id].name; }
  int FunctorArity(FunctorId id) const { return functors_[id].arity; }

  size_t num_atoms() const { return atom_names_.size(); }
  size_t num_functors() const { return functors_.size(); }

  // Pre-interned atoms used pervasively by the engine.
  AtomId nil() const { return nil_; }          // []
  AtomId comma() const { return comma_; }      // ','
  AtomId dot() const { return dot_; }          // '.' (list cons)
  AtomId neck() const { return neck_; }        // ':-'
  AtomId apply() const { return apply_; }      // HiLog encoding symbol
  AtomId truth() const { return true_; }       // true
  AtomId curly() const { return curly_; }      // {}

 private:
  struct Functor {
    AtomId name;
    int arity;
  };

  std::mutex intern_mutex_;  // guards atom_ids_ / functor_ids_ and appends
  ConcurrentArena<std::string> atom_names_;
  std::unordered_map<std::string, AtomId> atom_ids_;
  ConcurrentArena<Functor> functors_;
  std::unordered_map<uint64_t, FunctorId> functor_ids_;

  AtomId nil_, comma_, dot_, neck_, apply_, true_, curly_;
};

}  // namespace xsb

#endif  // XSB_TERM_SYMBOLS_H_
