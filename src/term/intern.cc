#include "term/intern.h"

namespace xsb {

uint64_t InternTable::HashNode(FunctorId functor, const Word* args,
                               int arity) {
  uint64_t h = 1469598103934665603ULL;
  h ^= functor;
  h *= 1099511628211ULL;
  for (int i = 0; i < arity; ++i) {
    h ^= args[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool InternTable::NodeEquals(InternId id, FunctorId functor, const Word* args,
                             int arity) const {
  const Node& node = nodes_[id];
  if (node.functor != functor) return false;
  const Word* stored = arg_pool_.data() + node.first_arg;
  for (int i = 0; i < arity; ++i) {
    if (stored[i] != args[i]) return false;
  }
  return true;
}

Word InternTable::MakeNode(FunctorId functor, const Word* args, int arity) {
  uint64_t h = HashNode(functor, args, arity);
  auto [it, inserted] = dedup_.try_emplace(h, kNoId);
  if (!inserted) {
    for (InternId id = it->second; id != kNoId;
         id = nodes_[id].next_same_hash) {
      if (NodeEquals(id, functor, args, arity)) {
        ++hits_;
        return InternedCell(id);
      }
    }
  }
  ++misses_;
  InternId id = static_cast<InternId>(nodes_.size());
  Node node;
  node.functor = functor;
  node.first_arg = static_cast<uint32_t>(arg_pool_.size());
  node.next_same_hash = it->second;  // chain any hash collisions
  arg_pool_.insert(arg_pool_.end(), args, args + arity);
  nodes_.push_back(node);
  it->second = id;
  return InternedCell(id);
}

Word InternTable::FindNode(FunctorId functor, const Word* args,
                           int arity) const {
  uint64_t h = HashNode(functor, args, arity);
  auto it = dedup_.find(h);
  if (it == dedup_.end()) return kNoToken;
  for (InternId id = it->second; id != kNoId; id = nodes_[id].next_same_hash) {
    if (NodeEquals(id, functor, args, arity)) return InternedCell(id);
  }
  return kNoToken;
}

Word InternTable::InternSubterm(const std::vector<Word>& cells, size_t pos,
                                size_t* end) {
  Word w = cells[pos];
  if (!IsFunctor(w)) {
    // Ground atomic cell (atom or int): already canonical.
    if (end != nullptr) *end = pos + 1;
    return w;
  }
  FunctorId functor = FunctorOf(w);
  int arity = symbols_->FunctorArity(functor);
  Word small[8];
  std::vector<Word> large;
  Word* args = small;
  if (arity > 8) {
    large.resize(static_cast<size_t>(arity));
    args = large.data();
  }
  size_t p = pos + 1;
  for (int i = 0; i < arity; ++i) {
    args[i] = InternSubterm(cells, p, &p);
  }
  if (end != nullptr) *end = p;
  return MakeNode(functor, args, arity);
}

bool InternTable::EncodeSubterm(const std::vector<Word>& cells, size_t pos,
                                size_t* end, std::vector<Word>* out) {
  Word w = cells[pos];
  if (!IsFunctor(w)) {
    out->push_back(w);
    *end = pos + 1;
    return !IsLocal(w);
  }
  // Emit the functor cell speculatively; every ground argument collapses to
  // exactly one token, so if the whole subterm turns out ground, the args
  // sit in out[mark+1 .. mark+arity] and are replaced by one interned token.
  FunctorId functor = FunctorOf(w);
  int arity = symbols_->FunctorArity(functor);
  size_t mark = out->size();
  out->push_back(w);
  size_t p = pos + 1;
  bool ground = true;
  for (int i = 0; i < arity; ++i) {
    ground &= EncodeSubterm(cells, p, &p, out);
  }
  *end = p;
  if (ground) {
    Word token = MakeNode(functor, out->data() + mark + 1, arity);
    out->resize(mark);
    out->push_back(token);
  }
  return ground;
}

void InternTable::Encode(const std::vector<Word>& cells,
                         std::vector<Word>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < cells.size()) {
    EncodeSubterm(cells, pos, &pos, out);
  }
}

void InternTable::EncodeOpen(const std::vector<Word>& cells,
                             std::vector<Word>* out) {
  out->clear();
  if (cells.empty() || !IsFunctor(cells[0])) {
    size_t pos = 0;
    while (pos < cells.size()) EncodeSubterm(cells, pos, &pos, out);
    return;
  }
  out->push_back(cells[0]);
  int arity = symbols_->FunctorArity(FunctorOf(cells[0]));
  size_t pos = 1;
  for (int i = 0; i < arity; ++i) {
    EncodeSubterm(cells, pos, &pos, out);
  }
}

void InternTable::AppendExpansion(Word token, std::vector<Word>* out) const {
  if (!IsInterned(token)) {
    out->push_back(token);
    return;
  }
  InternId id = InternIdOf(token);
  const Node& node = nodes_[id];
  out->push_back(FunctorCell(node.functor));
  int arity = symbols_->FunctorArity(node.functor);
  const Word* args = arg_pool_.data() + node.first_arg;
  for (int i = 0; i < arity; ++i) AppendExpansion(args[i], out);
}

FlatTerm InternTable::Decode(const std::vector<Word>& tokens) const {
  FlatTerm out;
  for (Word token : tokens) AppendExpansion(token, &out.cells);
  for (Word w : out.cells) {
    if (IsLocal(w)) {
      uint32_t ordinal = static_cast<uint32_t>(PayloadOf(w));
      if (ordinal + 1 > out.num_vars) out.num_vars = ordinal + 1;
    }
  }
  return out;
}

size_t InternTable::bytes() const {
  size_t total = nodes_.capacity() * sizeof(Node) +
                 arg_pool_.capacity() * sizeof(Word);
  // Node-based hash map overhead (key + value + pointers), approximated.
  total += dedup_.size() *
           (sizeof(uint64_t) + sizeof(InternId) + 2 * sizeof(void*));
  return total;
}

}  // namespace xsb
