#include "term/intern.h"

namespace xsb {

InternTable::InternTable(const SymbolTable* symbols) : symbols_(symbols) {
  dedup_.store(NewDedupTable(1024), std::memory_order_release);
}

InternTable::~InternTable() {
  delete dedup_.load(std::memory_order_relaxed);
  for (DedupTable* t : retired_dedup_) delete t;
}

InternTable::DedupTable* InternTable::NewDedupTable(size_t capacity) {
  DedupTable* t = new DedupTable;
  t->capacity = capacity;
  t->buckets = std::make_unique<std::atomic<InternId>[]>(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    t->buckets[i].store(kNoId, std::memory_order_relaxed);
  }
  return t;
}

uint64_t InternTable::HashNode(FunctorId functor, const Word* args,
                               int arity) {
  uint64_t h = 1469598103934665603ULL;
  h ^= functor;
  h *= 1099511628211ULL;
  for (int i = 0; i < arity; ++i) {
    h ^= args[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool InternTable::NodeEquals(InternId id, FunctorId functor, const Word* args,
                             int arity) const {
  const Node& node = nodes_[id];
  if (node.functor != functor) return false;
  const Word* stored = arg_pool_.at(node.first_arg);
  for (int i = 0; i < arity; ++i) {
    if (stored[i] != args[i]) return false;
  }
  return true;
}

Word InternTable::FindNode(FunctorId functor, const Word* args,
                           int arity) const {
  uint64_t h = HashNode(functor, args, arity);
  const DedupTable* t = dedup_.load(std::memory_order_acquire);
  InternId id = t->buckets[h & (t->capacity - 1)].load(
      std::memory_order_acquire);
  while (id != kNoId) {
    if (NodeEquals(id, functor, args, arity)) return InternedCell(id);
    id = nodes_[id].next_same_hash.load(std::memory_order_acquire);
  }
  return kNoToken;
}

Word InternTable::MakeNode(FunctorId functor, const Word* args, int arity) {
  // Lock-free fast path: a hit is definitive, and on warm workloads nearly
  // every probe is a hit.
  Word found = FindNode(functor, args, arity);
  if (found != kNoToken) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return found;
  }
  GrowIfNeeded();
  uint64_t h = HashNode(functor, args, arity);
  std::lock_guard<std::mutex> lock(shard_mutex_[h % kShards]);
  // Re-probe under the shard lock: the lock-free miss was advisory.
  found = FindNode(functor, args, arity);
  if (found != kNoToken) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return found;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  DedupTable* t = dedup_.load(std::memory_order_acquire);
  size_t bucket = h & (t->capacity - 1);
  InternId head = t->buckets[bucket].load(std::memory_order_relaxed);
  InternId id;
  {
    std::lock_guard<std::mutex> alloc(alloc_mutex_);
    uint32_t first_arg =
        static_cast<uint32_t>(arg_pool_.AppendRun(args, arity));
    id = static_cast<InternId>(nodes_.EmplaceBack(functor, first_arg, head));
  }
  // Publish: the release store on the bucket head orders the node and its
  // argument run before any reader that follows the chain to it.
  t->buckets[bucket].store(id, std::memory_order_release);
  return InternedCell(id);
}

void InternTable::GrowIfNeeded() {
  DedupTable* t = dedup_.load(std::memory_order_acquire);
  if (nodes_.size() * 10 < t->capacity * 7) return;
  // Take every shard lock (ascending order; writers never hold one shard
  // while waiting for another, so this cannot deadlock), then rebuild.
  for (size_t s = 0; s < kShards; ++s) shard_mutex_[s].lock();
  t = dedup_.load(std::memory_order_relaxed);
  size_t n = nodes_.size();
  if (n * 10 >= t->capacity * 7) {
    size_t capacity = t->capacity;
    while (n * 10 >= capacity * 7) capacity *= 2;
    DedupTable* bigger = NewDedupTable(capacity);
    // Relink every node into the new bucket array in ascending id order, so
    // chains keep the strictly-descending-id invariant that guarantees
    // termination for readers caught mid-walk on a relinked chain.
    for (InternId id = 0; id < n; ++id) {
      const Node& node = nodes_[id];
      int arity = symbols_->FunctorArity(node.functor);
      uint64_t h = HashNode(node.functor, arg_pool_.at(node.first_arg), arity);
      size_t bucket = h & (capacity - 1);
      nodes_[id].next_same_hash.store(
          bigger->buckets[bucket].load(std::memory_order_relaxed),
          std::memory_order_release);
      bigger->buckets[bucket].store(id, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> alloc(alloc_mutex_);
      retired_dedup_.push_back(t);
    }
    dedup_.store(bigger, std::memory_order_release);
  }
  for (size_t s = kShards; s-- > 0;) shard_mutex_[s].unlock();
}

Word InternTable::InternSubterm(const std::vector<Word>& cells, size_t pos,
                                size_t* end) {
  Word w = cells[pos];
  if (!IsFunctor(w)) {
    // Ground atomic cell (atom or int): already canonical.
    if (end != nullptr) *end = pos + 1;
    return w;
  }
  FunctorId functor = FunctorOf(w);
  int arity = symbols_->FunctorArity(functor);
  Word small[8];
  std::vector<Word> large;
  Word* args = small;
  if (arity > 8) {
    large.resize(static_cast<size_t>(arity));
    args = large.data();
  }
  size_t p = pos + 1;
  for (int i = 0; i < arity; ++i) {
    args[i] = InternSubterm(cells, p, &p);
  }
  if (end != nullptr) *end = p;
  return MakeNode(functor, args, arity);
}

bool InternTable::EncodeSubterm(const std::vector<Word>& cells, size_t pos,
                                size_t* end, std::vector<Word>* out) {
  Word w = cells[pos];
  if (!IsFunctor(w)) {
    out->push_back(w);
    *end = pos + 1;
    return !IsLocal(w);
  }
  // Emit the functor cell speculatively; every ground argument collapses to
  // exactly one token, so if the whole subterm turns out ground, the args
  // sit in out[mark+1 .. mark+arity] and are replaced by one interned token.
  FunctorId functor = FunctorOf(w);
  int arity = symbols_->FunctorArity(functor);
  size_t mark = out->size();
  out->push_back(w);
  size_t p = pos + 1;
  bool ground = true;
  for (int i = 0; i < arity; ++i) {
    ground &= EncodeSubterm(cells, p, &p, out);
  }
  *end = p;
  if (ground) {
    Word token = MakeNode(functor, out->data() + mark + 1, arity);
    out->resize(mark);
    out->push_back(token);
  }
  return ground;
}

void InternTable::Encode(const std::vector<Word>& cells,
                         std::vector<Word>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < cells.size()) {
    EncodeSubterm(cells, pos, &pos, out);
  }
}

void InternTable::EncodeOpen(const std::vector<Word>& cells,
                             std::vector<Word>* out) {
  out->clear();
  if (cells.empty() || !IsFunctor(cells[0])) {
    size_t pos = 0;
    while (pos < cells.size()) EncodeSubterm(cells, pos, &pos, out);
    return;
  }
  out->push_back(cells[0]);
  int arity = symbols_->FunctorArity(FunctorOf(cells[0]));
  size_t pos = 1;
  for (int i = 0; i < arity; ++i) {
    EncodeSubterm(cells, pos, &pos, out);
  }
}

void InternTable::AppendExpansion(Word token, std::vector<Word>* out) const {
  if (!IsInterned(token)) {
    out->push_back(token);
    return;
  }
  InternId id = InternIdOf(token);
  const Node& node = nodes_[id];
  out->push_back(FunctorCell(node.functor));
  int arity = symbols_->FunctorArity(node.functor);
  const Word* args = arg_pool_.at(node.first_arg);
  for (int i = 0; i < arity; ++i) AppendExpansion(args[i], out);
}

FlatTerm InternTable::Decode(const std::vector<Word>& tokens) const {
  FlatTerm out;
  for (Word token : tokens) AppendExpansion(token, &out.cells);
  for (Word w : out.cells) {
    if (IsLocal(w)) {
      uint32_t ordinal = static_cast<uint32_t>(PayloadOf(w));
      if (ordinal + 1 > out.num_vars) out.num_vars = ordinal + 1;
    }
  }
  return out;
}

size_t InternTable::bytes() const {
  size_t total = nodes_.bytes() + arg_pool_.bytes();
  const DedupTable* t = dedup_.load(std::memory_order_acquire);
  total += sizeof(DedupTable) + t->capacity * sizeof(std::atomic<InternId>);
  std::lock_guard<std::mutex> alloc(alloc_mutex_);
  for (const DedupTable* r : retired_dedup_) {
    total += sizeof(DedupTable) + r->capacity * sizeof(std::atomic<InternId>);
  }
  return total;
}

}  // namespace xsb
