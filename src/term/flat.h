#ifndef XSB_TERM_FLAT_H_
#define XSB_TERM_FLAT_H_

#include <cstddef>
#include <vector>

#include "term/cell.h"
#include "term/store.h"

namespace xsb {

// A relocatable, heap-independent term image: the preorder stream of the
// term's cells, with variables renamed to kLocal(0), kLocal(1), ... in order
// of first occurrence. Struct cells are replaced by their functor cell
// followed by the flattened arguments, so the stream is self-describing.
//
// FlatTerms serve three roles, exactly as table space does in the SLG-WAM:
//   * clause templates in the clause database,
//   * canonical forms for tabled-subgoal variant checking,
//   * stored answers in answer tables.
//
// Two terms are variants iff their FlatTerms are element-wise equal.
struct FlatTerm {
  std::vector<Word> cells;
  uint32_t num_vars = 0;

  bool operator==(const FlatTerm& other) const {
    return cells == other.cells;
  }

  bool ground() const { return num_vars == 0; }
  size_t size() const { return cells.size(); }
};

// FNV-style hash over the cell stream.
struct FlatTermHash {
  size_t operator()(const FlatTerm& t) const {
    uint64_t h = 1469598103934665603ULL;
    for (Word w : t.cells) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Flattens the (possibly partially bound) heap term `t`.
FlatTerm Flatten(const TermStore& store, Word t);

// Rebuilds `flat` on the heap with fresh variables. If `vars` is non-null it
// receives the fresh cell chosen for each local variable ordinal (resized by
// the call); passing the same vars vector to several Unflatten calls shares
// variables across them.
Word Unflatten(TermStore* store, const FlatTerm& flat,
               std::vector<Word>* vars = nullptr);

// Reads the top functor of a flattened term without rebuilding it.
// Returns true and sets *functor if the term is a struct.
bool FlatTopFunctor(const FlatTerm& flat, FunctorId* functor);

}  // namespace xsb

#endif  // XSB_TERM_FLAT_H_
