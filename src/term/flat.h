#ifndef XSB_TERM_FLAT_H_
#define XSB_TERM_FLAT_H_

#include <cstddef>
#include <vector>

#include "term/cell.h"
#include "term/store.h"

namespace xsb {

// A relocatable, heap-independent term image: the preorder stream of the
// term's cells, with variables renamed to kLocal(0), kLocal(1), ... in order
// of first occurrence. Struct cells are replaced by their functor cell
// followed by the flattened arguments, so the stream is self-describing.
//
// FlatTerms serve three roles, exactly as table space does in the SLG-WAM:
//   * clause templates in the clause database,
//   * canonical forms for tabled-subgoal variant checking,
//   * stored answers in answer tables.
//
// Two terms are variants iff their FlatTerms are element-wise equal.
struct FlatTerm {
  std::vector<Word> cells;
  uint32_t num_vars = 0;

  bool operator==(const FlatTerm& other) const {
    return cells == other.cells;
  }

  bool ground() const { return num_vars == 0; }
  size_t size() const { return cells.size(); }
};

// FNV-style hash over the cell stream.
struct FlatTermHash {
  size_t operator()(const FlatTerm& t) const {
    uint64_t h = 1469598103934665603ULL;
    for (Word w : t.cells) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Flattens the (possibly partially bound) heap term `t`.
FlatTerm Flatten(const TermStore& store, Word t);

// Flattens `t` into *out, reusing out's cell capacity (findall's per-instance
// scratch). Returns true when the existing capacity sufficed — i.e. the call
// performed no cell-vector allocation.
bool FlattenInto(const TermStore& store, Word t, FlatTerm* out);

// Appends the flattened form of `t` to *out, numbering variables by first
// occurrence across the whole stream being built: `var_cells` carries the
// heap addresses already assigned ordinals 0..var_cells->size()-1 and grows
// as new variables appear. Substitution factoring builds an answer's binding
// list as a sequence of such appends sharing one numbering.
void FlattenAppend(const TermStore& store, Word t, std::vector<Word>* out,
                   std::vector<uint64_t>* var_cells);

// Rebuilds `flat` on the heap with fresh variables. If `vars` is non-null it
// receives the fresh cell chosen for each local variable ordinal (resized by
// the call); passing the same vars vector to several Unflatten calls shares
// variables across them.
Word Unflatten(TermStore* store, const FlatTerm& flat,
               std::vector<Word>* vars = nullptr);

// Rebuilds the single subterm starting at stream position *pos of `flat`,
// advancing *pos past it. `vars` must already be sized to cover every kLocal
// ordinal in the segment. Used to unflatten a concatenation of stored
// segments (e.g. the binding list of a factored answer) one term at a time.
Word UnflattenNext(TermStore* store, const FlatTerm& flat, size_t* pos,
                   std::vector<Word>* vars);

// Reads the top functor of a flattened term without rebuilding it.
// Returns true and sets *functor if the term is a struct.
bool FlatTopFunctor(const FlatTerm& flat, FunctorId* functor);

}  // namespace xsb

#endif  // XSB_TERM_FLAT_H_
