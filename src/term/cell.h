#ifndef XSB_TERM_CELL_H_
#define XSB_TERM_CELL_H_

#include <cstdint>

#include "term/symbols.h"

namespace xsb {

// A term cell is one 64-bit word: a 3-bit tag in the low bits and a payload
// in the high 61 bits. This is the WAM-style representation the whole engine
// computes over.
//
//   kRef      payload = heap index it points at; a cell that points at its
//             own address is an unbound variable.
//   kStruct   payload = heap index of a functor cell followed by the args.
//   kAtom     payload = AtomId.
//   kInt      payload = signed 61-bit integer.
//   kFunctor  payload = FunctorId; appears only at the head of a struct
//             block (and inside flattened terms).
//   kLocal    payload = variable ordinal; appears only inside FlatTerms
//             (clause templates, table entries), never on the heap.
//   kInterned payload = InternId of a hash-consed ground term; appears only
//             inside table-space token streams (answer tries, canonical call
//             keys), never on the heap.
using Word = uint64_t;

enum class Tag : unsigned {
  kRef = 0,
  kStruct = 1,
  kAtom = 2,
  kInt = 3,
  kFunctor = 4,
  kLocal = 5,
  kInterned = 6,
};

constexpr unsigned kTagBits = 3;

inline Tag TagOf(Word w) { return static_cast<Tag>(w & 0x7); }
inline uint64_t PayloadOf(Word w) { return w >> kTagBits; }

inline Word MakeCell(Tag tag, uint64_t payload) {
  return (payload << kTagBits) | static_cast<Word>(tag);
}

inline Word RefCell(uint64_t heap_index) {
  return MakeCell(Tag::kRef, heap_index);
}
inline Word StructCell(uint64_t heap_index) {
  return MakeCell(Tag::kStruct, heap_index);
}
inline Word AtomCell(AtomId atom) { return MakeCell(Tag::kAtom, atom); }
inline Word FunctorCell(FunctorId functor) {
  return MakeCell(Tag::kFunctor, functor);
}
inline Word LocalCell(uint64_t ordinal) {
  return MakeCell(Tag::kLocal, ordinal);
}
inline Word InternedCell(uint64_t intern_id) {
  return MakeCell(Tag::kInterned, intern_id);
}

inline Word IntCell(int64_t value) {
  return MakeCell(Tag::kInt, static_cast<uint64_t>(value) & ((1ULL << 61) - 1));
}
inline int64_t IntValue(Word w) {
  // Sign-extend the 61-bit payload.
  return static_cast<int64_t>(w) >> kTagBits;
}

inline bool IsRef(Word w) { return TagOf(w) == Tag::kRef; }
inline bool IsStruct(Word w) { return TagOf(w) == Tag::kStruct; }
inline bool IsAtom(Word w) { return TagOf(w) == Tag::kAtom; }
inline bool IsInt(Word w) { return TagOf(w) == Tag::kInt; }
inline bool IsFunctor(Word w) { return TagOf(w) == Tag::kFunctor; }
inline bool IsLocal(Word w) { return TagOf(w) == Tag::kLocal; }
inline bool IsInterned(Word w) { return TagOf(w) == Tag::kInterned; }
inline bool IsAtomic(Word w) { return IsAtom(w) || IsInt(w); }

inline AtomId AtomOf(Word w) { return static_cast<AtomId>(PayloadOf(w)); }
inline FunctorId FunctorOf(Word w) {
  return static_cast<FunctorId>(PayloadOf(w));
}

}  // namespace xsb

#endif  // XSB_TERM_CELL_H_
