#include "parser/lexer.h"

#include <cctype>

namespace xsb {
namespace {

bool IsSymbolChar(char c) {
  switch (c) {
    case '+':
    case '-':
    case '*':
    case '/':
    case '\\':
    case '^':
    case '<':
    case '>':
    case '=':
    case '~':
    case ':':
    case '.':
    case '?':
    case '@':
    case '#':
    case '&':
    case '$':
      return true;
    default:
      return false;
  }
}

bool IsAlnum(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Lexer::Lexer(std::string_view text) : text_(text) {}

char Lexer::Peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  return i < text_.size() ? text_[i] : '\0';
}

char Lexer::Advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipLayout() {
  saw_layout_ = false;
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
      saw_layout_ = true;
    } else if (c == '%') {
      while (!AtEnd() && Peek() != '\n') Advance();
      saw_layout_ = true;
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
      if (!AtEnd()) {
        Advance();
        Advance();
      }
      saw_layout_ = true;
    } else {
      break;
    }
  }
}

Token Lexer::Make(TokenKind kind, std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = tok_line_;
  t.column = tok_column_;
  return t;
}

Token Lexer::ErrorToken(std::string message) {
  Token t = Make(TokenKind::kError, std::move(message));
  return t;
}

Token Lexer::Next() {
  SkipLayout();
  tok_line_ = line_;
  tok_column_ = column_;
  if (AtEnd()) return Make(TokenKind::kEof);

  char c = Peek();

  // Clause-terminating period: '.' followed by layout, EOF or '%'.
  if (c == '.') {
    char n = Peek(1);
    if (n == '\0' || std::isspace(static_cast<unsigned char>(n)) ||
        n == '%') {
      Advance();
      return Make(TokenKind::kEnd);
    }
  }

  // Numbers, including 0'c character codes.
  if (std::isdigit(static_cast<unsigned char>(c))) {
    if (c == '0' && Peek(1) == '\'') {
      Advance();
      Advance();
      if (AtEnd()) return ErrorToken("unterminated character code");
      char ch = Advance();
      Token t = Make(TokenKind::kInt);
      t.int_value = static_cast<int64_t>(static_cast<unsigned char>(ch));
      return t;
    }
    int64_t value = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      value = value * 10 + (Advance() - '0');
    }
    Token t = Make(TokenKind::kInt);
    t.int_value = value;
    return t;
  }

  // Variables.
  if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
    std::string name;
    while (!AtEnd() && IsAlnum(Peek())) name.push_back(Advance());
    return Make(TokenKind::kVar, std::move(name));
  }

  // Unquoted atoms.
  if (std::islower(static_cast<unsigned char>(c))) {
    std::string name;
    while (!AtEnd() && IsAlnum(Peek())) name.push_back(Advance());
    saw_layout_ = false;
    return Make(TokenKind::kAtom, std::move(name));
  }

  // Quoted atoms and strings.
  if (c == '\'' || c == '"') {
    char quote = Advance();
    std::string name;
    while (true) {
      if (AtEnd()) return ErrorToken("unterminated quoted token");
      char ch = Advance();
      if (ch == quote) {
        if (Peek() == quote) {
          name.push_back(quote);
          Advance();
          continue;
        }
        break;
      }
      if (ch == '\\') {
        if (AtEnd()) return ErrorToken("unterminated escape");
        char e = Advance();
        switch (e) {
          case 'n':
            name.push_back('\n');
            break;
          case 't':
            name.push_back('\t');
            break;
          case 'r':
            name.push_back('\r');
            break;
          case 'a':
            name.push_back('\a');
            break;
          case '\\':
          case '\'':
          case '"':
            name.push_back(e);
            break;
          case '\n':
            break;  // line continuation
          default:
            name.push_back(e);
            break;
        }
        continue;
      }
      name.push_back(ch);
    }
    return Make(quote == '\'' ? TokenKind::kAtom : TokenKind::kString,
                std::move(name));
  }

  // Punctuation.
  switch (c) {
    case '(': {
      Advance();
      return Make(saw_layout_ ? TokenKind::kLParen : TokenKind::kFuncLParen);
    }
    case ')':
      Advance();
      return Make(TokenKind::kRParen);
    case '[':
      Advance();
      return Make(TokenKind::kLBracket);
    case ']':
      Advance();
      return Make(TokenKind::kRBracket);
    case '{':
      Advance();
      return Make(TokenKind::kLBrace);
    case '}':
      Advance();
      return Make(TokenKind::kRBrace);
    case ',':
      Advance();
      return Make(TokenKind::kComma);
    case '|':
      Advance();
      return Make(TokenKind::kBar);
    case '!':
      Advance();
      return Make(TokenKind::kAtom, "!");
    case ';':
      Advance();
      return Make(TokenKind::kAtom, ";");
    default:
      break;
  }

  // Symbolic atoms.
  if (IsSymbolChar(c)) {
    std::string name;
    while (!AtEnd() && IsSymbolChar(Peek())) name.push_back(Advance());
    return Make(TokenKind::kAtom, std::move(name));
  }

  return ErrorToken(std::string("unexpected character '") + c + "'");
}

}  // namespace xsb
