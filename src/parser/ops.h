#ifndef XSB_PARSER_OPS_H_
#define XSB_PARSER_OPS_H_

#include <optional>
#include <unordered_map>

#include "term/symbols.h"

namespace xsb {

// Prolog operator fixities.
enum class OpType { kXfx, kXfy, kYfx, kFy, kFx, kXf, kYf };

struct OpDef {
  int priority = 0;  // 1..1200
  OpType type = OpType::kXfx;

  bool prefix() const { return type == OpType::kFy || type == OpType::kFx; }
  bool postfix() const { return type == OpType::kXf || type == OpType::kYf; }
  bool infix() const { return !prefix() && !postfix(); }

  // Maximum priorities acceptable for the left/right operand.
  int left_max() const {
    switch (type) {
      case OpType::kYfx:
      case OpType::kYf:
        return priority;
      default:
        return priority - 1;
    }
  }
  int right_max() const {
    switch (type) {
      case OpType::kXfy:
      case OpType::kFy:
        return priority;
      default:
        return priority - 1;
    }
  }
};

// The operator table used by the reader and the writer. Pre-populated with
// the standard Prolog operators plus XSB's tnot/e_tnot/table directives.
class OpTable {
 public:
  explicit OpTable(SymbolTable* symbols);

  // Declares (or redeclares) an operator, as op/3 would.
  void Add(int priority, OpType type, AtomId name);

  std::optional<OpDef> Infix(AtomId name) const;
  std::optional<OpDef> Prefix(AtomId name) const;
  bool IsOp(AtomId name) const;

 private:
  std::unordered_map<AtomId, OpDef> infix_;
  std::unordered_map<AtomId, OpDef> prefix_;
};

}  // namespace xsb

#endif  // XSB_PARSER_OPS_H_
