#include "parser/writer.h"

#include <cctype>
#include <unordered_map>

namespace xsb {
namespace {

bool NeedsQuotes(const std::string& name) {
  if (name.empty()) return true;
  if (name == "[]" || name == "{}" || name == "!" || name == ";") {
    return false;
  }
  if (name == ",") return true;
  if (std::islower(static_cast<unsigned char>(name[0]))) {
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        return true;
      }
    }
    return false;
  }
  // Symbolic atoms need no quotes.
  auto is_symbol = [](char c) {
    switch (c) {
      case '+':
      case '-':
      case '*':
      case '/':
      case '\\':
      case '^':
      case '<':
      case '>':
      case '=':
      case '~':
      case ':':
      case '.':
      case '?':
      case '@':
      case '#':
      case '&':
      case '$':
        return true;
      default:
        return false;
    }
  };
  bool all_symbols = true;
  for (char c : name) {
    if (!is_symbol(c)) {
      all_symbols = false;
      break;
    }
  }
  return !all_symbols;
}

class Writer {
 public:
  Writer(const TermStore& store, const OpTable& ops,
         const WriteOptions& options)
      : store_(store),
        symbols_(*store.symbols()),
        ops_(ops),
        options_(options) {}

  std::string Render(Word t) {
    out_.clear();
    var_ids_.clear();
    Emit(t, 1200, 0);
    return out_;
  }

 private:
  void EmitAtom(AtomId a) {
    const std::string& name = symbols_.AtomName(a);
    if (options_.quoted && NeedsQuotes(name)) {
      out_ += '\'';
      for (char c : name) {
        if (c == '\'' || c == '\\') out_ += '\\';
        out_ += c;
      }
      out_ += '\'';
    } else {
      out_ += name;
    }
  }

  bool IsCons(Word s) const {
    return IsStruct(s) && store_.StructArity(s) == 2 &&
           symbols_.FunctorAtom(store_.StructFunctor(s)) == symbols_.dot();
  }

  void EmitList(Word s, int depth) {
    out_ += '[';
    Emit(store_.Arg(s, 0), 999, depth + 1);
    Word tail = store_.Deref(store_.Arg(s, 1));
    while (true) {
      if (IsAtom(tail) && AtomOf(tail) == symbols_.nil()) break;
      if (IsCons(tail)) {
        out_ += ',';
        Emit(store_.Arg(tail, 0), 999, depth + 1);
        tail = store_.Deref(store_.Arg(tail, 1));
        continue;
      }
      out_ += '|';
      Emit(tail, 999, depth + 1);
      break;
    }
    out_ += ']';
  }

  void EmitArgs(Word s, int first, int arity, int depth) {
    out_ += '(';
    for (int i = first; i < arity; ++i) {
      if (i > first) out_ += ',';
      Emit(store_.Arg(s, i), 999, depth + 1);
    }
    out_ += ')';
  }

  void Emit(Word t, int max_priority, int depth) {
    t = store_.Deref(t);
    if (options_.max_depth > 0 && depth > options_.max_depth) {
      out_ += "...";
      return;
    }
    switch (TagOf(t)) {
      case Tag::kRef: {
        auto [it, inserted] = var_ids_.emplace(
            PayloadOf(t), static_cast<int>(var_ids_.size()));
        out_ += "_G" + std::to_string(it->second);
        return;
      }
      case Tag::kLocal:
        out_ += "_" + std::to_string(PayloadOf(t));
        return;
      case Tag::kInt:
        out_ += std::to_string(IntValue(t));
        return;
      case Tag::kAtom:
        EmitAtom(AtomOf(t));
        return;
      case Tag::kFunctor:
        EmitAtom(symbols_.FunctorAtom(FunctorOf(t)));
        out_ += '/';
        out_ += std::to_string(symbols_.FunctorArity(FunctorOf(t)));
        return;
      case Tag::kStruct:
        break;
    }

    FunctorId f = store_.StructFunctor(t);
    AtomId name = symbols_.FunctorAtom(f);
    int arity = symbols_.FunctorArity(f);

    if (name == symbols_.dot() && arity == 2) {
      EmitList(t, depth);
      return;
    }

    // HiLog sugar: apply(F, A1..An) prints as F(A1..An).
    if (options_.hilog_sugar && name == symbols_.apply() && arity >= 2) {
      Word functor_term = store_.Deref(store_.Arg(t, 0));
      bool needs_parens = IsStruct(functor_term) &&
                          symbols_.FunctorAtom(store_.StructFunctor(
                              functor_term)) == symbols_.apply();
      if (needs_parens) out_ += '(';
      Emit(functor_term, 0, depth + 1);
      if (needs_parens) out_ += ')';
      EmitArgs(t, 1, arity, depth);
      return;
    }

    if (options_.use_operators && arity == 2) {
      std::optional<OpDef> infix = ops_.Infix(name);
      if (infix.has_value()) {
        bool parens = infix->priority > max_priority;
        if (parens) out_ += '(';
        Emit(store_.Arg(t, 0), infix->left_max(), depth + 1);
        if (name == symbols_.comma()) {
          out_ += ",";
        } else {
          out_ += ' ';
          EmitAtom(name);
          out_ += ' ';
        }
        Emit(store_.Arg(t, 1), infix->right_max(), depth + 1);
        if (parens) out_ += ')';
        return;
      }
    }
    if (options_.use_operators && arity == 1) {
      std::optional<OpDef> prefix = ops_.Prefix(name);
      if (prefix.has_value()) {
        bool parens = prefix->priority > max_priority;
        if (parens) out_ += '(';
        EmitAtom(name);
        out_ += ' ';
        Emit(store_.Arg(t, 0), prefix->right_max(), depth + 1);
        if (parens) out_ += ')';
        return;
      }
    }

    EmitAtom(name);
    EmitArgs(t, 0, arity, depth);
  }

  const TermStore& store_;
  const SymbolTable& symbols_;
  const OpTable& ops_;
  WriteOptions options_;
  std::string out_;
  std::unordered_map<uint64_t, int> var_ids_;
};

}  // namespace

std::string WriteTerm(const TermStore& store, const OpTable& ops, Word t,
                      const WriteOptions& options) {
  Writer writer(store, ops, options);
  return writer.Render(t);
}

std::string WriteFlat(TermStore* scratch, const OpTable& ops,
                      const FlatTerm& flat, const WriteOptions& options) {
  size_t heap_mark = scratch->HeapMark();
  size_t trail_mark = scratch->TrailMark();
  Word t = Unflatten(scratch, flat);
  std::string out = WriteTerm(*scratch, ops, t, options);
  scratch->UndoTrail(trail_mark);
  scratch->TruncateHeap(heap_mark);
  return out;
}

}  // namespace xsb
