#include "parser/reader.h"

namespace xsb {
namespace {

bool CanStartTerm(const Token& t) {
  switch (t.kind) {
    case TokenKind::kAtom:
    case TokenKind::kVar:
    case TokenKind::kInt:
    case TokenKind::kString:
    case TokenKind::kLParen:
    case TokenKind::kFuncLParen:
    case TokenKind::kLBracket:
    case TokenKind::kLBrace:
      return true;
    default:
      return false;
  }
}

}  // namespace

Reader::Reader(TermStore* store, const OpTable* ops, std::string_view text,
               const std::unordered_set<AtomId>* hilog_atoms)
    : store_(store),
      symbols_(store->symbols()),
      ops_(ops),
      hilog_atoms_(hilog_atoms),
      lexer_(text) {
  cur_ = lexer_.Next();
}

bool Reader::AtEof() { return cur_.kind == TokenKind::kEof; }

Status Reader::ErrorHere(const std::string& message) {
  return ParseError("line " + std::to_string(cur_.line) + ": " + message);
}

Word Reader::VarFor(const std::string& name) {
  if (name == "_") return store_->MakeVar();
  for (VarInfo& info : var_infos_) {
    if (info.name == name) {
      ++info.occurrences;
      return info.cell;
    }
  }
  Word v = store_->MakeVar();
  // cur_ is still the variable's own token here.
  var_infos_.push_back(VarInfo{name, v, 1, cur_.line, cur_.column});
  var_names_.emplace_back(name, v);
  return v;
}

Result<Word> Reader::ReadClause() {
  var_names_.clear();
  var_infos_.clear();
  clause_line_ = cur_.line;
  clause_column_ = cur_.column;
  if (cur_.kind == TokenKind::kEof) {
    return AtomCell(symbols_->InternAtom("end_of_file"));
  }
  Result<Parsed> parsed = ParseTerm(1200);
  if (!parsed.ok()) return parsed.status();
  if (cur_.kind != TokenKind::kEnd) {
    return ErrorHere("expected '.' at end of clause");
  }
  Consume();
  return parsed.value().term;
}

Word Reader::MakeApplication(Word functor_term, bool functor_is_plain_atom,
                             const std::vector<Word>& args) {
  if (functor_is_plain_atom) {
    AtomId name = AtomOf(functor_term);
    bool hilog = hilog_atoms_ != nullptr && hilog_atoms_->count(name) > 0;
    if (!hilog) {
      FunctorId f =
          symbols_->InternFunctor(name, static_cast<int>(args.size()));
      return store_->MakeStruct(f, args);
    }
  }
  // HiLog encoding: T(A1..An) => apply(T, A1..An).
  FunctorId f = symbols_->InternFunctor(symbols_->apply(),
                                        static_cast<int>(args.size()) + 1);
  std::vector<Word> all;
  all.reserve(args.size() + 1);
  all.push_back(functor_term);
  all.insert(all.end(), args.begin(), args.end());
  return store_->MakeStruct(f, all);
}

Result<Word> Reader::ParseArgList(std::vector<Word>* args) {
  // cur_ is the token after '('.
  while (true) {
    Result<Parsed> arg = ParseTerm(999);
    if (!arg.ok()) return arg.status();
    args->push_back(arg.value().term);
    if (cur_.kind == TokenKind::kComma) {
      Consume();
      continue;
    }
    if (cur_.kind == TokenKind::kRParen) {
      Consume();
      return Word{0};
    }
    return ErrorHere("expected ',' or ')' in argument list");
  }
}

Result<Word> Reader::ParseList() {
  // cur_ is the token after '['.
  if (cur_.kind == TokenKind::kRBracket) {
    Consume();
    return AtomCell(symbols_->nil());
  }
  std::vector<Word> elements;
  Word tail = AtomCell(symbols_->nil());
  while (true) {
    Result<Parsed> e = ParseTerm(999);
    if (!e.ok()) return e.status();
    elements.push_back(e.value().term);
    if (cur_.kind == TokenKind::kComma) {
      Consume();
      continue;
    }
    if (cur_.kind == TokenKind::kBar) {
      Consume();
      Result<Parsed> t = ParseTerm(999);
      if (!t.ok()) return t.status();
      tail = t.value().term;
    }
    break;
  }
  if (cur_.kind != TokenKind::kRBracket) {
    return ErrorHere("expected ']' at end of list");
  }
  Consume();
  return store_->MakeList(elements, tail);
}

Result<Reader::Parsed> Reader::ParsePrimary(int max_priority) {
  Word term = 0;
  int priority = 0;
  bool plain_atom = false;  // an unapplied, non-operator use of an atom

  switch (cur_.kind) {
    case TokenKind::kError:
      return ErrorHere(cur_.text);
    case TokenKind::kInt: {
      term = IntCell(cur_.int_value);
      Consume();
      break;
    }
    case TokenKind::kString: {
      std::vector<Word> codes;
      for (unsigned char c : cur_.text) {
        codes.push_back(IntCell(static_cast<int64_t>(c)));
      }
      term = store_->MakeList(codes, AtomCell(symbols_->nil()));
      Consume();
      break;
    }
    case TokenKind::kVar: {
      term = VarFor(cur_.text);
      Consume();
      break;
    }
    case TokenKind::kLParen:
    case TokenKind::kFuncLParen: {
      Consume();
      Result<Parsed> inner = ParseTerm(1200);
      if (!inner.ok()) return inner.status();
      if (cur_.kind != TokenKind::kRParen) return ErrorHere("expected ')'");
      Consume();
      term = inner.value().term;
      break;
    }
    case TokenKind::kLBracket: {
      Consume();
      Result<Word> list = ParseList();
      if (!list.ok()) return list.status();
      term = list.value();
      break;
    }
    case TokenKind::kLBrace: {
      Consume();
      if (cur_.kind == TokenKind::kRBrace) {
        Consume();
        term = AtomCell(symbols_->curly());
        break;
      }
      Result<Parsed> inner = ParseTerm(1200);
      if (!inner.ok()) return inner.status();
      if (cur_.kind != TokenKind::kRBrace) return ErrorHere("expected '}'");
      Consume();
      FunctorId f = symbols_->InternFunctor(symbols_->curly(), 1);
      term = store_->MakeStruct(f, {inner.value().term});
      break;
    }
    case TokenKind::kAtom: {
      AtomId name = symbols_->InternAtom(cur_.text);
      std::string spelled = cur_.text;
      Consume();
      if (cur_.kind == TokenKind::kFuncLParen) {
        Consume();
        std::vector<Word> args;
        Result<Word> end = ParseArgList(&args);
        if (!end.ok()) return end.status();
        term = MakeApplication(AtomCell(name), /*functor_is_plain_atom=*/true,
                               args);
        break;
      }
      std::optional<OpDef> prefix = ops_->Prefix(name);
      if (prefix.has_value() && prefix->priority <= max_priority &&
          CanStartTerm(cur_)) {
        if (spelled == "-" && cur_.kind == TokenKind::kInt) {
          term = IntCell(-cur_.int_value);
          Consume();
          break;
        }
        // An atom that is itself an infix operator cannot start an operand
        // (e.g. `- =`): fall through to plain atom in that case.
        bool operand_is_bare_infix =
            cur_.kind == TokenKind::kAtom &&
            ops_->Infix(symbols_->InternAtom(cur_.text)).has_value() &&
            !ops_->Prefix(symbols_->InternAtom(cur_.text)).has_value();
        if (!operand_is_bare_infix) {
          Result<Parsed> operand = ParseTerm(prefix->right_max());
          if (!operand.ok()) return operand.status();
          FunctorId f = symbols_->InternFunctor(name, 1);
          term = store_->MakeStruct(f, {operand.value().term});
          priority = prefix->priority;
          break;
        }
      }
      term = AtomCell(name);
      plain_atom = true;
      break;
    }
    case TokenKind::kEof:
      return ErrorHere("unexpected end of input");
    default:
      return ErrorHere("unexpected token");
  }

  // HiLog application chains: T(...)(...)....
  while (cur_.kind == TokenKind::kFuncLParen) {
    Consume();
    std::vector<Word> args;
    Result<Word> end = ParseArgList(&args);
    if (!end.ok()) return end.status();
    term = MakeApplication(term, plain_atom, args);
    plain_atom = false;
    priority = 0;
  }
  return Parsed{term, priority};
}

Result<Reader::Parsed> Reader::ParseTerm(int max_priority) {
  Result<Parsed> left_result = ParsePrimary(max_priority);
  if (!left_result.ok()) return left_result.status();
  Parsed left = left_result.value();

  while (true) {
    if (cur_.kind == TokenKind::kComma && max_priority >= 1000) {
      if (left.priority > 999) break;
      Consume();
      Result<Parsed> right = ParseTerm(1000);
      if (!right.ok()) return right.status();
      left.term =
          store_->MakeStruct2(symbols_->comma(), left.term,
                              right.value().term);
      left.priority = 1000;
      continue;
    }
    if (cur_.kind == TokenKind::kAtom) {
      AtomId name = symbols_->InternAtom(cur_.text);
      std::optional<OpDef> infix = ops_->Infix(name);
      if (infix.has_value() && infix->priority <= max_priority &&
          left.priority <= infix->left_max()) {
        Consume();
        Result<Parsed> right = ParseTerm(infix->right_max());
        if (!right.ok()) return right.status();
        FunctorId f = symbols_->InternFunctor(name, 2);
        left.term = store_->MakeStruct(f, {left.term, right.value().term});
        left.priority = infix->priority;
        continue;
      }
    }
    break;
  }
  return left;
}

Result<Word> ParseTermString(TermStore* store, const OpTable* ops,
                             std::string_view text) {
  std::string buffer(text);
  buffer += " .";
  Reader reader(store, ops, buffer);
  return reader.ReadClause();
}

}  // namespace xsb
