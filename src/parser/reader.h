#ifndef XSB_PARSER_READER_H_
#define XSB_PARSER_READER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/status.h"
#include "parser/lexer.h"
#include "parser/ops.h"
#include "term/store.h"

namespace xsb {

// Reads HiLog terms (a superset of Prolog terms) from text, one clause at a
// time. Implements the paper's section 4.1 syntax:
//
//   * standard Prolog terms with the operator table,
//   * HiLog applications: X(bob, Y), path(G)(X, Y), 7(E),
//   * atoms declared `:- hilog f.` read as apply(f, ...) in functor position.
//
// HiLog applications are encoded into first order with the `apply` symbol of
// arity N+1, exactly as described in the paper.
class Reader {
 public:
  // `hilog_atoms` may be null; it is consulted for each atom in functor
  // position and not copied (the db owns and grows it during a consult).
  Reader(TermStore* store, const OpTable* ops, std::string_view text,
         const std::unordered_set<AtomId>* hilog_atoms = nullptr);

  // Parses the next clause (up to the terminating period). Returns the term,
  // or the atom `end_of_file` at end of input.
  Result<Word> ReadClause();

  // Named variables of the most recent ReadClause, in first-occurrence
  // order. '_' variables are excluded.
  const std::vector<std::pair<std::string, Word>>& var_names() const {
    return var_names_;
  }

  // Everything the singleton lint needs about a named variable: how often
  // it occurred in the clause and where it was first seen.
  struct VarInfo {
    std::string name;
    Word cell;
    int occurrences;
    int line;
    int column;
  };
  const std::vector<VarInfo>& var_infos() const { return var_infos_; }

  // Position of the first token of the most recent ReadClause.
  int clause_line() const { return clause_line_; }
  int clause_column() const { return clause_column_; }

  bool AtEof();

 private:
  struct Parsed {
    Word term;
    int priority;
  };

  Result<Parsed> ParseTerm(int max_priority);
  Result<Parsed> ParsePrimary(int max_priority);
  Result<Word> ParseArgList(std::vector<Word>* args);  // after '('
  Result<Word> ParseList();                            // after '['
  // Wraps `functor_term`(args...) with HiLog encoding rules.
  Word MakeApplication(Word functor_term, bool functor_is_plain_atom,
                       const std::vector<Word>& args);

  Word VarFor(const std::string& name);
  Status ErrorHere(const std::string& message);
  void Consume() { cur_ = lexer_.Next(); }

  TermStore* store_;
  SymbolTable* symbols_;
  const OpTable* ops_;
  const std::unordered_set<AtomId>* hilog_atoms_;
  Lexer lexer_;
  Token cur_;
  std::vector<std::pair<std::string, Word>> var_names_;
  std::vector<VarInfo> var_infos_;
  int clause_line_ = 0;
  int clause_column_ = 0;
};

// Convenience: parse a single term from `text` (no trailing period needed).
Result<Word> ParseTermString(TermStore* store, const OpTable* ops,
                             std::string_view text);

}  // namespace xsb

#endif  // XSB_PARSER_READER_H_
