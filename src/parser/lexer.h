#ifndef XSB_PARSER_LEXER_H_
#define XSB_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

namespace xsb {

enum class TokenKind {
  kAtom,        // foo, 'quoted', + symbolic
  kVar,         // Foo, _X, _
  kInt,         // 42
  kString,      // "text"
  kLParen,      // ( preceded by whitespace/operator
  kFuncLParen,  // ( immediately following a name/var/) — an application
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kBar,
  kEnd,  // clause-terminating period
  kEof,
  kError,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // atom/var/string spelling
  int64_t int_value = 0;
  int line = 0;
  int column = 0;
};

// Prolog/HiLog tokenizer over an in-memory buffer. Understands % line
// comments, /* */ block comments, quoted atoms, and distinguishes the
// clause-ending period from the symbolic '.' atom.
class Lexer {
 public:
  explicit Lexer(std::string_view text);

  // Scans the next token. On malformed input returns kind kError with the
  // message in `text`.
  Token Next();

  int line() const { return line_; }

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= text_.size(); }
  void SkipLayout();  // whitespace + comments; sets saw_layout_

  Token Make(TokenKind kind, std::string text = std::string());
  Token ErrorToken(std::string message);

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  bool saw_layout_ = true;  // true if layout preceded the current token
  int tok_line_ = 1;
  int tok_column_ = 1;
};

}  // namespace xsb

#endif  // XSB_PARSER_LEXER_H_
