#include "parser/ops.h"

namespace xsb {

OpTable::OpTable(SymbolTable* symbols) {
  auto def = [&](int priority, OpType type, const char* name) {
    Add(priority, type, symbols->InternAtom(name));
  };
  def(1200, OpType::kXfx, ":-");
  def(1200, OpType::kXfx, "-->");
  def(1200, OpType::kFx, ":-");
  def(1200, OpType::kFx, "?-");
  def(1150, OpType::kFx, "table");
  def(1150, OpType::kFx, "hilog");
  def(1150, OpType::kFx, "dynamic");
  def(1150, OpType::kFx, "discontiguous");
  def(1150, OpType::kFx, "module");
  def(1150, OpType::kFx, "import");
  def(1100, OpType::kXfy, ";");
  def(1050, OpType::kXfy, "->");
  def(1000, OpType::kXfy, ",");
  def(900, OpType::kFy, "\\+");
  def(900, OpType::kFy, "tnot");
  def(900, OpType::kFy, "e_tnot");
  def(700, OpType::kXfx, "=");
  def(700, OpType::kXfx, "\\=");
  def(700, OpType::kXfx, "==");
  def(700, OpType::kXfx, "\\==");
  def(700, OpType::kXfx, "@<");
  def(700, OpType::kXfx, "@>");
  def(700, OpType::kXfx, "@=<");
  def(700, OpType::kXfx, "@>=");
  def(700, OpType::kXfx, "is");
  def(700, OpType::kXfx, "=:=");
  def(700, OpType::kXfx, "=\\=");
  def(700, OpType::kXfx, "<");
  def(700, OpType::kXfx, ">");
  def(700, OpType::kXfx, "=<");
  def(700, OpType::kXfx, ">=");
  def(700, OpType::kXfx, "=..");
  def(500, OpType::kYfx, "+");
  def(500, OpType::kYfx, "-");
  def(500, OpType::kYfx, "/\\");
  def(500, OpType::kYfx, "\\/");
  def(500, OpType::kYfx, "xor");
  def(400, OpType::kYfx, "*");
  def(400, OpType::kYfx, "/");
  def(400, OpType::kYfx, "//");
  def(400, OpType::kYfx, "mod");
  def(400, OpType::kYfx, "rem");
  def(400, OpType::kYfx, "<<");
  def(400, OpType::kYfx, ">>");
  def(200, OpType::kXfx, "**");
  def(200, OpType::kXfy, "^");
  def(200, OpType::kFy, "-");
  def(200, OpType::kFy, "+");
  def(200, OpType::kFy, "\\");
}

void OpTable::Add(int priority, OpType type, AtomId name) {
  OpDef def{priority, type};
  if (def.infix()) {
    infix_[name] = def;
  } else if (def.prefix()) {
    prefix_[name] = def;
  } else {
    // Postfix operators are rare; store them in the infix table with a
    // marker-free entry. We do not use postfix operators anywhere, so they
    // are simply ignored.
  }
}

std::optional<OpDef> OpTable::Infix(AtomId name) const {
  auto it = infix_.find(name);
  if (it == infix_.end()) return std::nullopt;
  return it->second;
}

std::optional<OpDef> OpTable::Prefix(AtomId name) const {
  auto it = prefix_.find(name);
  if (it == prefix_.end()) return std::nullopt;
  return it->second;
}

bool OpTable::IsOp(AtomId name) const {
  return infix_.count(name) > 0 || prefix_.count(name) > 0;
}

}  // namespace xsb
