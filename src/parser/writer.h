#ifndef XSB_PARSER_WRITER_H_
#define XSB_PARSER_WRITER_H_

#include <string>

#include "parser/ops.h"
#include "term/flat.h"
#include "term/store.h"

namespace xsb {

struct WriteOptions {
  bool quoted = true;          // quote atoms that need it
  bool use_operators = true;   // print infix/prefix operators
  bool hilog_sugar = true;     // print apply(F,A,B) as F(A,B)
  int max_depth = 0;           // 0 = unlimited
};

// Renders `t` as readable (re-parsable) text.
std::string WriteTerm(const TermStore& store, const OpTable& ops, Word t,
                      const WriteOptions& options = WriteOptions());

// Renders a flattened term (variables print as _0, _1, ...).
std::string WriteFlat(TermStore* scratch, const OpTable& ops,
                      const FlatTerm& flat,
                      const WriteOptions& options = WriteOptions());

}  // namespace xsb

#endif  // XSB_PARSER_WRITER_H_
