#include "engine/machine.h"

#include "engine/builtins.h"

namespace xsb {

Machine::Machine(TermStore* store, Program* program)
    : store_(store),
      program_(program),
      builtins_(std::make_unique<BuiltinRegistry>(store->symbols())) {
  SymbolTable* symbols = store->symbols();
  auto f = [&](const char* name, int arity) {
    return symbols->InternFunctor(symbols->InternAtom(name), arity);
  };
  f_comma_ = f(",", 2);
  f_semicolon_ = f(";", 2);
  f_arrow_ = f("->", 2);
  f_naf_ = f("\\+", 1);
  f_cut_ = f("!", 0);
  f_tcut_ = f("tcut", 0);
  f_true_ = f("true", 0);
  f_fail_ = f("fail", 0);
  f_false_ = f("false", 0);
  f_ite_commit_ = f("$ite_commit", 1);
  f_tabled_answer_ = f("$tabled_answer", 2);
  f_tnot_ = f("tnot", 1);
  f_e_tnot_ = f("e_tnot", 1);
  f_tfindall_ = f("tfindall", 3);
  f_resolve_clauses_ = f("$resolve_clauses", 1);
}

Machine::~Machine() = default;

void Machine::CutTo(size_t depth) {
  if (cps_.size() > depth) cps_.resize(depth);
}

void Machine::PushAnswerChoices(Word goal, const AnswerSource* answers,
                                const GoalNode* cont) {
  ChoicePoint cp;
  cp.kind = ChoiceKind::kAnswers;
  cp.cont = cont;
  cp.trail_mark = store_->TrailMark();
  cp.heap_mark = store_->HeapMark();
  cp.goal = goal;
  cp.answers = answers;
  const FlatTerm* tmpl = answers->answer_template();
  if (tmpl != nullptr) {
    // Substitution-factored source: unify the call template against the
    // goal once, here, *before* capturing the choice point's marks. The
    // goal is a variant of the template (that is how the table was found),
    // so this only aliases template variables to goal subterms; per-answer
    // backtracking then undoes answer bindings but keeps the aliasing, and
    // each answer needs only its binding cells unified — the ground call
    // skeleton is never decoded again.
    cp.template_vars.assign(tmpl->num_vars, 0);
    Word t = Unflatten(store_, *tmpl, &cp.template_vars);
    if (store_->Unify(goal, t)) {
      cp.factored = true;
      cp.trail_mark = store_->TrailMark();
      cp.heap_mark = store_->HeapMark();
    } else {
      // Cannot happen for variant calls; fall back to full answer reads.
      store_->UndoTrail(cp.trail_mark);
      store_->TruncateHeap(cp.heap_mark);
      cp.template_vars.clear();
    }
  }
  cps_.push_back(std::move(cp));
  ++stats_.choice_points;
}

void Machine::PushBetweenChoices(Word var, int64_t low, int64_t high,
                                 const GoalNode* cont) {
  ChoicePoint cp;
  cp.kind = ChoiceKind::kBetween;
  cp.cont = cont;
  cp.trail_mark = store_->TrailMark();
  cp.heap_mark = store_->HeapMark();
  cp.goal = var;
  cp.next_value = low;
  cp.max_value = high;
  cps_.push_back(std::move(cp));
  ++stats_.choice_points;
}

void Machine::PushPendingGoal(Word goal) {
  pending_goals_.emplace_back(goal, false);
}

void Machine::PushPendingGoalOpaqueCut(Word goal) {
  pending_goals_.emplace_back(goal, true);
}

bool Machine::TryClause(Predicate* pred, ClauseId id, Word goal,
                        const GoalNode* cont, uint32_t entry_depth,
                        const GoalNode** new_goals) {
  const Clause& clause = pred->clause(id);
  ++stats_.head_unifications;
  clause_vars_.assign(clause.term.num_vars, 0);
  Word inst = Unflatten(store_, clause.term, &clause_vars_);
  Word head = inst;
  Word body = 0;
  if (clause.is_rule) {
    Word d = store_->Deref(inst);
    head = store_->Arg(d, 0);
    body = store_->Arg(d, 1);
  }
  if (!store_->Unify(goal, head)) return false;
  if (!clause.is_rule) {
    *new_goals = cont;
  } else {
    *new_goals = Cons(body, cont, entry_depth);
  }
  return true;
}

bool Machine::Backtrack(size_t base_cp, const GoalNode** goals) {
  while (cps_.size() > base_cp) {
    ChoicePoint& cp = cps_.back();
    store_->UndoTrail(cp.trail_mark);
    store_->TruncateHeap(cp.heap_mark);
    switch (cp.kind) {
      case ChoiceKind::kClauses: {
        uint32_t entry_depth = static_cast<uint32_t>(cps_.size() - 1);
        while (cp.next_candidate < cp.candidates.size()) {
          ClauseId id = cp.candidates[cp.next_candidate++];
          if (cp.pred->clause(id).erased) continue;
          if (TryClause(cp.pred, id, cp.goal, cp.cont, entry_depth, goals)) {
            return true;
          }
          store_->UndoTrail(cp.trail_mark);
          store_->TruncateHeap(cp.heap_mark);
        }
        cps_.pop_back();
        continue;
      }
      case ChoiceKind::kDisjunction: {
        Word alternative = cp.alternative;
        const GoalNode* cont = cp.cont;
        uint32_t cut_depth = cp.cut_depth;
        cps_.pop_back();
        *goals = Cons(alternative, cont, cut_depth);
        return true;
      }
      case ChoiceKind::kAnswers: {
        if (cp.factored) {
          // Factored return: per answer, rebuild only the binding segments
          // and unify each against its (goal-aliased) template variable.
          while (cp.next_answer < cp.answers->size()) {
            // Answer subsumption: an answer retired by a better one is
            // skipped, not returned. The cursor itself stays valid.
            if (!cp.answers->live(cp.next_answer)) {
              ++cp.next_answer;
              continue;
            }
            cp.answers->ReadBindings(cp.next_answer++, &answer_scratch_);
            answer_vars_scratch_.assign(answer_scratch_.num_vars, 0);
            size_t pos = 0;
            bool ok = true;
            for (Word tv : cp.template_vars) {
              Word b = UnflattenNext(store_, answer_scratch_, &pos,
                                     &answer_vars_scratch_);
              if (!store_->Unify(tv, b)) {
                ok = false;
                break;
              }
            }
            if (ok) {
              ++stats_.factored_answer_returns;
              *goals = cp.cont;
              return true;
            }
            store_->UndoTrail(cp.trail_mark);
            store_->TruncateHeap(cp.heap_mark);
          }
          cps_.pop_back();
          continue;
        }
        while (cp.next_answer < cp.answers->size()) {
          if (!cp.answers->live(cp.next_answer)) {
            ++cp.next_answer;
            continue;
          }
          cp.answers->ReadAnswer(cp.next_answer++, &answer_scratch_);
          Word t = Unflatten(store_, answer_scratch_);
          if (store_->Unify(cp.goal, t)) {
            *goals = cp.cont;
            return true;
          }
          store_->UndoTrail(cp.trail_mark);
          store_->TruncateHeap(cp.heap_mark);
        }
        cps_.pop_back();
        continue;
      }
      case ChoiceKind::kBetween: {
        if (cp.next_value <= cp.max_value) {
          Word v = IntCell(cp.next_value++);
          if (store_->Unify(cp.goal, v)) {
            *goals = cp.cont;
            return true;
          }
          store_->UndoTrail(cp.trail_mark);
          store_->TruncateHeap(cp.heap_mark);
          continue;
        }
        cps_.pop_back();
        continue;
      }
    }
  }
  return false;
}

Machine::StepResult Machine::CallUserPredicate(Word goal, FunctorId functor,
                                               const GoalNode* cont,
                                               uint32_t cut_depth,
                                               bool force_clause_resolution) {
  ++stats_.user_calls;
  if (has_counted_functor_ && functor == counted_functor_) {
    ++stats_.counted_calls;
  }
  Predicate* pred = program_->Lookup(functor);

  if (!force_clause_resolution && pred != nullptr && pred->tabled() &&
      !ignore_tabling_) {
    if (handler_ == nullptr) {
      SetError(InvalidError(
          "call to tabled predicate without a tabling evaluator"));
      return StepResult::kError;
    }
    switch (handler_->OnTabledCall(this, goal, cont)) {
      case TabledCallHandler::CallOutcome::kFail:
      case TabledCallHandler::CallOutcome::kContinue:
        // Either the branch is suspended/failed, or an answer choice point
        // was pushed; both proceed through the backtracker.
        return StepResult::kBacktrack;
      case TabledCallHandler::CallOutcome::kError:
        return StepResult::kError;
    }
  }

  // From here on the goal resolves against clauses (this includes the
  // tabling evaluator's own $resolve_clauses episodes): tell the table
  // maintenance subsystem when the predicate is incremental, so the table
  // being computed records its dependency on these clauses.
  if (pred != nullptr && pred->incremental() && handler_ != nullptr) {
    handler_->OnIncrementalAccess(functor);
  }

  SymbolTable* symbols = store_->symbols();
  if (pred == nullptr || pred->num_live_clauses() == 0) {
    // HiLog runtime dispatch: apply(F, Args...) with F bound to an atom and
    // no matching hilog clauses falls back to the first-order predicate F/N.
    if (symbols->FunctorAtom(functor) == symbols->apply() &&
        symbols->FunctorArity(functor) >= 2 && IsStruct(goal)) {
      Word head = store_->Deref(store_->Arg(goal, 0));
      if (IsAtom(head)) {
        int arity = symbols->FunctorArity(functor) - 1;
        FunctorId fo = symbols->InternFunctor(AtomOf(head), arity);
        Word fo_goal;
        if (arity == 0) {
          fo_goal = head;
        } else {
          std::vector<Word> args(static_cast<size_t>(arity));
          for (int i = 0; i < arity; ++i) args[i] = store_->Arg(goal, i + 1);
          fo_goal = store_->MakeStruct(fo, args);
        }
        return CallUserPredicate(fo_goal, fo, cont, cut_depth,
                                 force_clause_resolution);
      }
    }
    if (pred == nullptr) {
      SetError(ExistenceError(
          "unknown predicate " +
          symbols->AtomName(symbols->FunctorAtom(functor)) + "/" +
          std::to_string(symbols->FunctorArity(functor))));
      return StepResult::kError;
    }
    return StepResult::kBacktrack;  // declared but currently empty: fail
  }

  ChoicePoint cp;
  cp.kind = ChoiceKind::kClauses;
  cp.cont = cont;
  cp.trail_mark = store_->TrailMark();
  cp.heap_mark = store_->HeapMark();
  cp.goal = goal;
  cp.pred = pred;
  cp.candidates = pred->Candidates(*store_, goal);
  cps_.push_back(std::move(cp));
  ++stats_.choice_points;
  return StepResult::kBacktrack;  // enter the new choice point
}

Machine::StepResult Machine::DispatchGoal(const GoalNode** goals) {
  const GoalNode* node = *goals;
  Word goal = store_->Deref(node->goal);

  if (IsRef(goal)) {
    SetError(InstantiationError("call to an unbound variable"));
    return StepResult::kError;
  }
  if (IsInt(goal)) {
    SetError(TypeError("integers are not callable"));
    return StepResult::kError;
  }

  SymbolTable* symbols = store_->symbols();
  FunctorId functor = IsAtom(goal)
                          ? symbols->InternFunctor(AtomOf(goal), 0)
                          : store_->StructFunctor(goal);

  // --- Control constructs ----------------------------------------------------
  if (functor == f_true_) {
    *goals = node->next;
    return StepResult::kAdvance;
  }
  if (functor == f_comma_) {
    Word a = store_->Arg(goal, 0);
    Word b = store_->Arg(goal, 1);
    *goals = Cons(a, Cons(b, node->next, node->cut_depth), node->cut_depth);
    return StepResult::kAdvance;
  }
  if (functor == f_fail_ || functor == f_false_) {
    return StepResult::kBacktrack;
  }
  if (functor == f_cut_ || functor == f_tcut_) {
    // tcut/0 (section 4.4) prunes like '!'; freeing the tables it cuts over
    // is only done when provably safe, which under local scheduling is the
    // existential-negation path inside the evaluator. Here it is a cut.
    CutTo(node->cut_depth);
    *goals = node->next;
    return StepResult::kAdvance;
  }
  if (functor == f_semicolon_ || functor == f_arrow_) {
    Word condition = 0;
    Word then_goal = 0;
    Word else_goal = 0;
    bool is_ite = false;
    if (functor == f_arrow_) {
      is_ite = true;
      condition = store_->Arg(goal, 0);
      then_goal = store_->Arg(goal, 1);
      else_goal = AtomCell(symbols->InternAtom("fail"));
    } else {
      Word left = store_->Deref(store_->Arg(goal, 0));
      else_goal = store_->Arg(goal, 1);
      if (IsStruct(left) && store_->StructFunctor(left) == f_arrow_) {
        is_ite = true;
        condition = store_->Arg(left, 0);
        then_goal = store_->Arg(left, 1);
      } else {
        condition = left;  // plain disjunction
      }
    }
    ChoicePoint cp;
    cp.kind = ChoiceKind::kDisjunction;
    cp.cont = node->next;
    cp.trail_mark = store_->TrailMark();
    cp.heap_mark = store_->HeapMark();
    cp.alternative = else_goal;
    cp.cut_depth = node->cut_depth;
    cps_.push_back(std::move(cp));
    ++stats_.choice_points;
    if (is_ite) {
      size_t cp_index = cps_.size() - 1;
      Word commit = store_->MakeStruct(
          f_ite_commit_, {IntCell(static_cast<int64_t>(cp_index))});
      // The condition gets a local cut barrier; Then is cut-transparent.
      const GoalNode* rest = Cons(then_goal, node->next, node->cut_depth);
      rest = Cons(commit, rest, node->cut_depth);
      *goals = Cons(condition, rest, static_cast<uint32_t>(cps_.size()));
    } else {
      *goals = Cons(condition, node->next, node->cut_depth);
    }
    return StepResult::kAdvance;
  }
  if (functor == f_ite_commit_) {
    int64_t cp_index = IntValue(store_->Deref(store_->Arg(goal, 0)));
    CutTo(static_cast<size_t>(cp_index));
    *goals = node->next;
    return StepResult::kAdvance;
  }
  if (functor == f_naf_) {
    size_t trail_mark = store_->TrailMark();
    size_t heap_mark = store_->HeapMark();
    bool found = false;
    const GoalNode* sub = Cons(store_->Arg(goal, 0), nullptr,
                               static_cast<uint32_t>(cps_.size()));
    Status status = Run(sub, [&found]() {
      found = true;
      return SolveAction::kStop;
    });
    store_->UndoTrail(trail_mark);
    store_->TruncateHeap(heap_mark);
    if (!status.ok()) {
      SetError(status);
      return StepResult::kError;
    }
    if (found) return StepResult::kBacktrack;
    *goals = node->next;
    return StepResult::kAdvance;
  }
  if (functor == f_tnot_ || functor == f_e_tnot_) {
    if (handler_ == nullptr) {
      SetError(InvalidError("tnot/e_tnot require the tabling evaluator"));
      return StepResult::kError;
    }
    switch (handler_->OnNegation(this, store_->Arg(goal, 0), node->next,
                                 functor == f_e_tnot_)) {
      case TabledCallHandler::CallOutcome::kFail:
        return StepResult::kBacktrack;
      case TabledCallHandler::CallOutcome::kContinue:
        *goals = node->next;
        return StepResult::kAdvance;
      case TabledCallHandler::CallOutcome::kError:
        return StepResult::kError;
    }
  }
  if (functor == f_tfindall_) {
    if (handler_ == nullptr) {
      SetError(InvalidError("tfindall/3 requires the tabling evaluator"));
      return StepResult::kError;
    }
    switch (handler_->OnTFindall(this, store_->Arg(goal, 0),
                                 store_->Arg(goal, 1), store_->Arg(goal, 2),
                                 node->next)) {
      case TabledCallHandler::CallOutcome::kFail:
        return StepResult::kBacktrack;
      case TabledCallHandler::CallOutcome::kContinue:
        *goals = node->next;
        return StepResult::kAdvance;
      case TabledCallHandler::CallOutcome::kError:
        return StepResult::kError;
    }
  }
  if (functor == f_tabled_answer_) {
    if (handler_ == nullptr) {
      SetError(InvalidError("orphan $tabled_answer"));
      return StepResult::kError;
    }
    int64_t index = IntValue(store_->Deref(store_->Arg(goal, 0)));
    switch (handler_->OnTabledAnswer(this, index, store_->Arg(goal, 1))) {
      case TabledCallHandler::CallOutcome::kFail:
        return StepResult::kBacktrack;
      case TabledCallHandler::CallOutcome::kContinue:
        *goals = node->next;
        return StepResult::kAdvance;
      case TabledCallHandler::CallOutcome::kError:
        return StepResult::kError;
    }
  }
  if (functor == f_resolve_clauses_) {
    Word inner = store_->Deref(store_->Arg(goal, 0));
    std::optional<FunctorId> inner_functor =
        Program::CallableFunctor(*store_, inner);
    if (!inner_functor.has_value()) {
      SetError(TypeError("$resolve_clauses argument not callable"));
      return StepResult::kError;
    }
    return CallUserPredicate(inner, *inner_functor, node->next,
                             node->cut_depth,
                             /*force_clause_resolution=*/true);
  }

  // --- HiLog bridge ------------------------------------------------------------
  // apply(F, Args...) where F is an atom NOT declared hilog is the same goal
  // as the first-order F(Args...): rewrite before tabling/builtin dispatch,
  // so `Graph(X,Y)` with Graph = edge runs against edge/2 (section 4.7).
  if (symbols->FunctorAtom(functor) == symbols->apply() &&
      symbols->FunctorArity(functor) >= 2 && IsStruct(goal)) {
    Word head = store_->Deref(store_->Arg(goal, 0));
    if (IsAtom(head) && !program_->IsHilogAtom(AtomOf(head))) {
      int arity = symbols->FunctorArity(functor) - 1;
      Word fo_goal;
      if (arity == 0) {
        fo_goal = head;
      } else {
        FunctorId fo = symbols->InternFunctor(AtomOf(head), arity);
        std::vector<Word> args(static_cast<size_t>(arity));
        for (int i = 0; i < arity; ++i) args[i] = store_->Arg(goal, i + 1);
        fo_goal = store_->MakeStruct(fo, args);
      }
      *goals = Cons(fo_goal, node->next, node->cut_depth);
      return StepResult::kAdvance;
    }
  }

  // --- Builtins ----------------------------------------------------------------
  BuiltinFn builtin = builtins_->Find(functor);
  if (builtin != nullptr) {
    ++stats_.builtin_calls;
    pending_goals_.clear();
    BuiltinResult result = builtin(*this, goal, node);
    switch (result) {
      case BuiltinResult::kTrue: {
        const GoalNode* g = node->next;
        for (auto it = pending_goals_.rbegin(); it != pending_goals_.rend();
             ++it) {
          uint32_t cut_depth = it->second
                                   ? static_cast<uint32_t>(cps_.size())
                                   : node->cut_depth;
          g = Cons(it->first, g, cut_depth);
        }
        pending_goals_.clear();
        *goals = g;
        return StepResult::kAdvance;
      }
      case BuiltinResult::kFail:
        return StepResult::kBacktrack;
      case BuiltinResult::kError:
        return StepResult::kError;
    }
  }

  // --- User predicates -----------------------------------------------------------
  return CallUserPredicate(goal, functor, node->next, node->cut_depth,
                           /*force_clause_resolution=*/false);
}

Status Machine::Run(const GoalNode* goals, const SolutionFn& on_solution) {
  size_t base_cp = cps_.size();
  const GoalNode* g = goals;
  bool saved_stop = stop_requested_;
  stop_requested_ = false;

  while (true) {
    if (stop_requested_) {
      stop_requested_ = saved_stop;
      CutTo(base_cp);
      return Status::Ok();
    }
    if (g == nullptr) {
      SolveAction action = on_solution();
      if (stop_requested_ || action == SolveAction::kStop) {
        stop_requested_ = saved_stop;
        CutTo(base_cp);
        return Status::Ok();
      }
      if (!Backtrack(base_cp, &g)) {
        stop_requested_ = saved_stop;
        return Status::Ok();
      }
      continue;
    }
    StepResult step = DispatchGoal(&g);
    switch (step) {
      case StepResult::kAdvance:
        continue;
      case StepResult::kBacktrack:
        if (!Backtrack(base_cp, &g)) {
          stop_requested_ = saved_stop;
          return Status::Ok();
        }
        continue;
      case StepResult::kError: {
        Status status = error_;
        error_ = Status::Ok();
        CutTo(base_cp);
        stop_requested_ = saved_stop;
        return status;
      }
      default:
        continue;
    }
  }
}

Status Machine::Solve(Word goal, const SolutionFn& on_solution) {
  const GoalNode* g = Cons(goal, nullptr, static_cast<uint32_t>(cps_.size()));
  return Run(g, on_solution);
}

Result<bool> Machine::SolveOnce(Word goal) {
  bool found = false;
  Status status = Solve(goal, [&found]() {
    found = true;
    return SolveAction::kStop;
  });
  if (!status.ok()) return status;
  return found;
}

Result<size_t> Machine::CountSolutions(Word goal) {
  size_t trail_mark = store_->TrailMark();
  size_t heap_mark = store_->HeapMark();
  size_t count = 0;
  Status status = Solve(goal, [&count]() {
    ++count;
    return SolveAction::kContinue;
  });
  store_->UndoTrail(trail_mark);
  store_->TruncateHeap(heap_mark);
  if (!status.ok()) return status;
  return count;
}

Result<std::vector<FlatTerm>> Machine::FindAll(Word templ, Word goal) {
  size_t trail_mark = store_->TrailMark();
  size_t heap_mark = store_->HeapMark();
  std::vector<FlatTerm> out;
  Status status = Solve(goal, [&]() {
    // Flatten into the persistent scratch (no growth reallocations once it
    // is warm), then copy out at exact size — one allocation per instance.
    if (FlattenInto(*store_, templ, &findall_scratch_)) {
      ++stats_.findall_flatten_reuses;
    }
    out.push_back(findall_scratch_);
    return SolveAction::kContinue;
  });
  store_->UndoTrail(trail_mark);
  store_->TruncateHeap(heap_mark);
  if (!status.ok()) return status;
  return out;
}

Result<int64_t> Machine::EvalArith(Word expression) {
  Word e = store_->Deref(expression);
  if (IsInt(e)) return IntValue(e);
  if (IsRef(e)) {
    return InstantiationError("arithmetic on an unbound variable");
  }
  SymbolTable* symbols = store_->symbols();
  if (IsStruct(e)) {
    FunctorId f = store_->StructFunctor(e);
    const std::string& name = symbols->AtomName(symbols->FunctorAtom(f));
    int arity = symbols->FunctorArity(f);
    if (arity == 1) {
      Result<int64_t> a = EvalArith(store_->Arg(e, 0));
      if (!a.ok()) return a;
      int64_t x = a.value();
      if (name == "-") return -x;
      if (name == "+") return x;
      if (name == "abs") return x < 0 ? -x : x;
      if (name == "sign") return x > 0 ? 1 : (x < 0 ? -1 : 0);
      if (name == "\\") return ~x;
      return TypeError("unknown arithmetic function " + name + "/1");
    }
    if (arity == 2) {
      Result<int64_t> a = EvalArith(store_->Arg(e, 0));
      if (!a.ok()) return a;
      Result<int64_t> b = EvalArith(store_->Arg(e, 1));
      if (!b.ok()) return b;
      int64_t x = a.value();
      int64_t y = b.value();
      if (name == "+") return x + y;
      if (name == "-") return x - y;
      if (name == "*") return x * y;
      if (name == "//" || name == "/") {
        if (y == 0) return TypeError("zero divisor");
        return x / y;
      }
      if (name == "mod") {
        if (y == 0) return TypeError("zero divisor");
        int64_t m = x % y;
        if (m != 0 && ((m < 0) != (y < 0))) m += y;
        return m;
      }
      if (name == "rem") {
        if (y == 0) return TypeError("zero divisor");
        return x % y;
      }
      if (name == "min") return x < y ? x : y;
      if (name == "max") return x > y ? x : y;
      if (name == ">>") return x >> y;
      if (name == "<<") return x << y;
      if (name == "/\\") return x & y;
      if (name == "\\/") return x | y;
      if (name == "xor") return x ^ y;
      if (name == "**" || name == "^") {
        int64_t r = 1;
        for (int64_t i = 0; i < y; ++i) r *= x;
        return r;
      }
      return TypeError("unknown arithmetic function " + name + "/2");
    }
  }
  return TypeError("bad arithmetic expression");
}

}  // namespace xsb
