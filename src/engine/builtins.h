#ifndef XSB_ENGINE_BUILTINS_H_
#define XSB_ENGINE_BUILTINS_H_

#include <unordered_map>

#include "engine/machine.h"

namespace xsb {

// Outcome of a builtin predicate call.
enum class BuiltinResult {
  kTrue,   // deterministic success; continue with the next goal
  kFail,   // failure, or a choice point was pushed that the backtracker
           // should now enter
  kError,  // machine->SetError was called
};

// `node` is the resolvent node of the call (its ->next is the
// continuation; its cut_depth the enclosing clause's cut barrier).
using BuiltinFn = BuiltinResult (*)(Machine& machine, Word goal,
                                    const GoalNode* node);

// The table of builtin predicates, keyed by functor. One per Machine, since
// functor ids are SymbolTable-relative.
class BuiltinRegistry {
 public:
  explicit BuiltinRegistry(SymbolTable* symbols);

  BuiltinFn Find(FunctorId functor) const {
    auto it = table_.find(functor);
    return it == table_.end() ? nullptr : it->second;
  }

 private:
  void Register(SymbolTable* symbols, const char* name, int arity,
                BuiltinFn fn);
  std::unordered_map<FunctorId, BuiltinFn> table_;
};

}  // namespace xsb

#endif  // XSB_ENGINE_BUILTINS_H_
