#ifndef XSB_ENGINE_ANSWER_SOURCE_H_
#define XSB_ENGINE_ANSWER_SOURCE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "term/flat.h"

namespace xsb {

// A stably-indexed collection of stored answers that the machine's answer
// choice points (and the SLG evaluator's consumers) enumerate. Index order
// is insertion order and indices stay valid while the collection grows, so
// a cursor is just a size_t — this is what lets consumers pick up answers
// that arrive after they suspended.
//
// Implemented by the answer tables of table space (which read answers
// straight out of the answer trie) and by the materialized instance lists
// of clause/2.
class AnswerSource {
 public:
  virtual ~AnswerSource() = default;

  virtual size_t size() const = 0;

  // Writes answer `i` into *out, reusing out's buffers (hot path: callers
  // keep one scratch FlatTerm alive across a whole enumeration).
  virtual void ReadAnswer(size_t i, FlatTerm* out) const = 0;

  // Answer subsumption: false when answer `i` has been retired by a better
  // (lattice-subsuming) answer. The index remains readable — a cursor parked
  // on it stays sound — but enumerators must skip it. Plain sources are
  // always fully live.
  virtual bool live(size_t /*i*/) const { return true; }

  // --- Substitution-factored enumeration ------------------------------------
  // A factored source stores answers as bindings of one shared call
  // template's variables. When answer_template() is non-null, a consumer may
  // unify the template against its goal once, then per answer read only the
  // binding stream (segments in template-variable ordinal order) instead of
  // re-materializing the full instance. Default: not factored.
  virtual const FlatTerm* answer_template() const { return nullptr; }
  virtual void ReadBindings(size_t i, FlatTerm* out) const {
    ReadAnswer(i, out);
  }
};

// Adapter over a materialized vector of flat terms.
class VectorAnswerSource : public AnswerSource {
 public:
  explicit VectorAnswerSource(std::vector<FlatTerm> items)
      : items_(std::move(items)) {}

  size_t size() const override { return items_.size(); }
  void ReadAnswer(size_t i, FlatTerm* out) const override {
    out->cells = items_[i].cells;
    out->num_vars = items_[i].num_vars;
  }

 private:
  std::vector<FlatTerm> items_;
};

}  // namespace xsb

#endif  // XSB_ENGINE_ANSWER_SOURCE_H_
