#ifndef XSB_ENGINE_MACHINE_H_
#define XSB_ENGINE_MACHINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "base/status.h"
#include "db/program.h"
#include "engine/answer_source.h"
#include "term/flat.h"
#include "term/store.h"

namespace xsb {

class Machine;
class BuiltinRegistry;

// Resolvent node: an immutable cons cell in the machine's goal arena.
// `cut_depth` is the choice-point-stack height a '!' in this goal cuts back
// to (the height at entry to the clause that contributed the goal).
struct GoalNode {
  Word goal;
  const GoalNode* next;
  uint32_t cut_depth;
};

// Decision returned by the per-solution callback.
enum class SolveAction { kContinue, kStop };
using SolutionFn = std::function<SolveAction()>;

// Hook through which the tabling subsystem (tabling/evaluator.h) takes over
// calls to tabled predicates; keeps the SLD core free of table knowledge.
class TabledCallHandler {
 public:
  enum class CallOutcome {
    kFail,      // branch suspended (consumer registered) or no answers
    kContinue,  // handler installed machine state (answer choice point)
    kError,     // see machine->error()
  };

  virtual ~TabledCallHandler() = default;

  // A call to tabled predicate `goal`; `cont` is the rest of the resolvent.
  virtual CallOutcome OnTabledCall(Machine* machine, Word goal,
                                   const GoalNode* cont) = 0;
  // '$tabled_answer'(Index, CallTerm) reached: record the answer instance.
  // Returns false to fail the branch (always, in SLG), after recording.
  virtual CallOutcome OnTabledAnswer(Machine* machine, int64_t subgoal_index,
                                     Word call_instance) = 0;
  // tnot/1, e_tnot/1, tfindall/3.
  virtual CallOutcome OnNegation(Machine* machine, Word goal,
                                 const GoalNode* cont, bool existential) = 0;
  virtual CallOutcome OnTFindall(Machine* machine, Word templ, Word goal,
                                 Word result, const GoalNode* cont) = 0;

  // Table-space statistics snapshot for the table_stats builtin.
  struct TableStatsInfo {
    bool found = false;
    uint64_t subgoals = 0;
    uint64_t answers = 0;
    uint64_t trie_nodes = 0;
    uint64_t interned_terms = 0;
    uint64_t bytes = 0;
    uint64_t call_trie_nodes = 0;       // variant-index trie nodes
    uint64_t factored_saved_bytes = 0;  // bytes factoring avoided storing
    // Shared-serving counters (relaxed-atomic reads: each is an independent
    // monotonic event count; no cross-counter snapshot is implied).
    uint64_t shared_table_hits = 0;     // lock-free warm-table serves
    uint64_t waits_on_inprogress = 0;   // callers parked on another batch
    uint64_t epochs_retired = 0;        // retired answer tables reclaimed
    uint64_t coarse_fallbacks = 0;      // batches restarted under the
                                        // all-shards coarse lock
    uint64_t mode_violations = 0;       // runtime tabled calls less bound
                                        // than the inferred call modes
    uint64_t subsumed_dropped = 0;      // answers dropped by lattice
                                        // subsumption (:- table p(_, min))
    uint64_t subsumed_replaced = 0;     // answers stored by beating (and
                                        // retiring) an existing answer
  };
  // Statistics for the variant table of `goal`, or aggregated over the
  // whole table space when goal == 0. Default: no statistics available.
  virtual TableStatsInfo GetTableStats(Machine* /*machine*/, Word /*goal*/) {
    return TableStatsInfo{};
  }

  // --- Incremental table maintenance hooks ----------------------------------

  // Clause resolution is about to touch incremental dynamic predicate
  // `functor` — the evaluator records a dependency edge from the table being
  // computed (if any) to the predicate. Default: no tracking.
  virtual void OnIncrementalAccess(FunctorId /*functor*/) {}

  // abolish_table_call/1: disposes the variant table of `goal`. Returns
  // true when such a table existed.
  virtual bool AbolishTableCall(Machine* /*machine*/, Word /*goal*/) {
    return false;
  }

  // table_state/2 snapshot of the variant table of `goal`.
  enum class TableState {
    kNoTable,     // never called (or abolished): `undefined`
    kIncomplete,  // mid-evaluation
    kComplete,    // completed and current
    kInvalid,     // completed, but invalidated by an update; will lazily
                  // re-evaluate on its next call
  };
  virtual TableState GetTableState(Machine* /*machine*/, Word /*goal*/) {
    return TableState::kNoTable;
  }
};

// Counters for the experiments (Figure 2 counts calls; section 3.2 compares
// engine tiers).
struct MachineStats {
  uint64_t user_calls = 0;
  uint64_t builtin_calls = 0;
  uint64_t choice_points = 0;
  uint64_t head_unifications = 0;
  uint64_t counted_calls = 0;  // calls to the counted functor, if set
  // findall/tfindall/clause instance collections that flattened into the
  // reused scratch without allocating (the steady state after warm-up).
  uint64_t findall_flatten_reuses = 0;
  // Answers delivered through the substitution-factored choice-point path
  // (template unified once, only bindings unified per answer).
  uint64_t factored_answer_returns = 0;
};

// The SLD(NF) resolution engine: a structure-copying abstract machine with a
// goal list, a choice-point stack and the TermStore's binding trail. This is
// the "WAM-level" execution core of the reproduction; tabling (SLG) plugs in
// through TabledCallHandler, making the combination the SLG engine.
class Machine {
 public:
  Machine(TermStore* store, Program* program);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  TermStore* store() { return store_; }
  Program* program() { return program_; }

  void set_tabled_handler(TabledCallHandler* handler) { handler_ = handler; }
  TabledCallHandler* tabled_handler() { return handler_; }

  // When true, calls to tabled predicates resolve against program clauses
  // directly (plain SLDNF) — the paper's "XSB / SLDNF" configuration.
  void set_ignore_tabling(bool value) { ignore_tabling_ = value; }
  bool ignore_tabling() const { return ignore_tabling_; }

  // --- Top-level solving ----------------------------------------------------

  // Proves `goal`, invoking `on_solution` with bindings live in the store at
  // each solution. Returns non-OK only on evaluation errors.
  Status Solve(Word goal, const SolutionFn& on_solution);

  // Proves `goal` once; true if a proof exists. Bindings of the first
  // solution are left in place.
  Result<bool> SolveOnce(Word goal);

  // Counts solutions (all bindings undone afterwards).
  Result<size_t> CountSolutions(Word goal);

  // findall-style collection of instances of `templ`.
  Result<std::vector<FlatTerm>> FindAll(Word templ, Word goal);

  // --- Hooks for builtins and the tabling evaluator -------------------------

  // Runs an explicit resolvent. Nested invocations (negation, findall,
  // tabling episodes) are re-entrant: each Run owns the choice points it
  // creates.
  Status Run(const GoalNode* goals, const SolutionFn& on_solution);

  const GoalNode* Cons(Word goal, const GoalNode* next, uint32_t cut_depth) {
    arena_.push_back(GoalNode{goal, next, cut_depth});
    return &arena_.back();
  }

  // Asks the current Run loop to stop as if solutions were exhausted
  // (used by existential negation to abandon a batch).
  void RequestStop() { stop_requested_ = true; }

  // Pushes a choice point that enumerates stored answers against `goal`.
  // Used by the tabling evaluator for completed tables (the source is the
  // answer table, read straight from its trie) and by clause/2. The machine
  // enters the choice point when the caller returns a fail-like outcome.
  void PushAnswerChoices(Word goal, const AnswerSource* answers,
                         const GoalNode* cont);

  // Pushes a choice point enumerating integers low..high into `var`
  // (between/3). Enter by returning a fail-like outcome.
  void PushBetweenChoices(Word var, int64_t low, int64_t high,
                          const GoalNode* cont);

  // Schedules `goal` to run before the current continuation. Only valid
  // from within a builtin/handler callback during dispatch.
  void PushPendingGoal(Word goal);
  // Same, but gives the goal a fresh cut barrier (call/1 semantics).
  void PushPendingGoalOpaqueCut(Word goal);

  void SetError(Status status) { error_ = std::move(status); }

  size_t choice_point_count() const { return cps_.size(); }
  // Discards choice points above `depth` (the cut operation).
  void CutTo(size_t depth);

  // Resets the goal arena; only call between top-level queries.
  void ResetArena() { arena_.clear(); }

  // Takes ownership of a materialized answer source referenced by an
  // answer choice point (clause/2); freed with the machine. Returns the
  // adopted pointer for use in PushAnswerChoices.
  const AnswerSource* AdoptAnswerSource(std::unique_ptr<AnswerSource> source) {
    adopted_sources_.push_back(std::move(source));
    return adopted_sources_.back().get();
  }

  MachineStats& stats() { return stats_; }
  void set_counted_functor(FunctorId functor) {
    counted_functor_ = functor;
    has_counted_functor_ = true;
  }

  // Evaluates an arithmetic expression term (is/2, comparisons).
  Result<int64_t> EvalArith(Word expression);

 private:
  friend class BuiltinRegistry;

  enum class ChoiceKind { kClauses, kDisjunction, kAnswers, kBetween };

  struct ChoicePoint {
    ChoiceKind kind;
    const GoalNode* cont;
    size_t trail_mark;
    size_t heap_mark;
    Word goal = 0;
    uint32_t cut_depth = 0;
    // kClauses
    Predicate* pred = nullptr;
    std::vector<ClauseId> candidates;
    size_t next_candidate = 0;
    // kDisjunction
    Word alternative = 0;
    // kAnswers
    const AnswerSource* answers = nullptr;
    size_t next_answer = 0;
    // kAnswers, factored mode: heap cells aliased to the source's answer
    // template variables (template unified with `goal` once, at push time,
    // before this choice point's marks — so per-answer backtracking keeps
    // the aliasing and only undoes the binding unifications).
    std::vector<Word> template_vars;
    bool factored = false;
    // kBetween
    int64_t next_value = 0;
    int64_t max_value = 0;
  };

  enum class StepResult { kAdvance, kBacktrack, kSolution, kError, kStopped };

  // Resolves the goal at the head of *goals (dispatch). On success updates
  // *goals to the new resolvent.
  StepResult DispatchGoal(const GoalNode** goals);
  // Tries alternatives from the top choice point; false when the whole
  // stack (down to base) is exhausted.
  bool Backtrack(size_t base_cp, const GoalNode** goals);
  // Resolves `goal` against a user predicate's clauses.
  StepResult CallUserPredicate(Word goal, FunctorId functor,
                               const GoalNode* cont, uint32_t cut_depth,
                               bool force_clause_resolution);
  // Instantiates clause `id` of `pred` and unifies its head with `goal`.
  // On success sets *body_goals to the clause body resolvent.
  bool TryClause(Predicate* pred, ClauseId id, Word goal,
                 const GoalNode* cont, uint32_t entry_depth,
                 const GoalNode** new_goals);

  TermStore* store_;
  Program* program_;
  TabledCallHandler* handler_ = nullptr;
  bool ignore_tabling_ = false;
  std::unique_ptr<BuiltinRegistry> builtins_;

  std::deque<GoalNode> arena_;
  std::vector<std::unique_ptr<AnswerSource>> adopted_sources_;
  std::vector<ChoicePoint> cps_;
  FlatTerm answer_scratch_;  // reused by the answer-choice backtracker
  std::vector<Word> answer_vars_scratch_;  // fresh vars per factored answer
  FlatTerm findall_scratch_;  // reused by FindAll's per-solution flatten
  Status error_;
  bool stop_requested_ = false;

  std::vector<std::pair<Word, bool>> pending_goals_;  // goal, opaque_cut
  std::vector<Word> clause_vars_;  // scratch for clause instantiation

  MachineStats stats_;
  FunctorId counted_functor_ = 0;
  bool has_counted_functor_ = false;

  // Interned ids used by the dispatcher.
  FunctorId f_comma_, f_semicolon_, f_arrow_, f_naf_, f_cut_, f_tcut_,
      f_true_, f_fail_, f_false_, f_ite_commit_, f_tabled_answer_, f_tnot_,
      f_e_tnot_, f_tfindall_, f_resolve_clauses_;
};

}  // namespace xsb

#endif  // XSB_ENGINE_MACHINE_H_
