#include "engine/builtins.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/analyzer.h"
#include "parser/writer.h"
#include "wam/emulator.h"

namespace xsb {
namespace {

Word Arg(Machine& m, Word goal, int i) {
  return m.store()->Deref(m.store()->Arg(m.store()->Deref(goal), i));
}

BuiltinResult UnifyResult(Machine& m, Word a, Word b) {
  return m.store()->Unify(a, b) ? BuiltinResult::kTrue : BuiltinResult::kFail;
}

BuiltinResult Bool(bool ok) {
  return ok ? BuiltinResult::kTrue : BuiltinResult::kFail;
}

// --- Unification and comparison ---------------------------------------------

BuiltinResult BuiltinUnify(Machine& m, Word goal, const GoalNode*) {
  return UnifyResult(m, Arg(m, goal, 0), Arg(m, goal, 1));
}

BuiltinResult BuiltinNotUnify(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  size_t trail = store->TrailMark();
  bool ok = store->Unify(Arg(m, goal, 0), Arg(m, goal, 1));
  store->UndoTrail(trail);
  return Bool(!ok);
}

BuiltinResult BuiltinIdentical(Machine& m, Word goal, const GoalNode*) {
  return Bool(m.store()->Identical(Arg(m, goal, 0), Arg(m, goal, 1)));
}

BuiltinResult BuiltinNotIdentical(Machine& m, Word goal, const GoalNode*) {
  return Bool(!m.store()->Identical(Arg(m, goal, 0), Arg(m, goal, 1)));
}

BuiltinResult BuiltinTermLess(Machine& m, Word goal, const GoalNode*) {
  return Bool(m.store()->Compare(Arg(m, goal, 0), Arg(m, goal, 1)) < 0);
}
BuiltinResult BuiltinTermGreater(Machine& m, Word goal, const GoalNode*) {
  return Bool(m.store()->Compare(Arg(m, goal, 0), Arg(m, goal, 1)) > 0);
}
BuiltinResult BuiltinTermLessEq(Machine& m, Word goal, const GoalNode*) {
  return Bool(m.store()->Compare(Arg(m, goal, 0), Arg(m, goal, 1)) <= 0);
}
BuiltinResult BuiltinTermGreaterEq(Machine& m, Word goal, const GoalNode*) {
  return Bool(m.store()->Compare(Arg(m, goal, 0), Arg(m, goal, 1)) >= 0);
}

BuiltinResult BuiltinCompare(Machine& m, Word goal, const GoalNode*) {
  int c = m.store()->Compare(Arg(m, goal, 1), Arg(m, goal, 2));
  const char* name = c < 0 ? "<" : (c > 0 ? ">" : "=");
  Word order = AtomCell(m.store()->symbols()->InternAtom(name));
  return UnifyResult(m, Arg(m, goal, 0), order);
}

// --- Type tests ----------------------------------------------------------------

BuiltinResult BuiltinVar(Machine& m, Word goal, const GoalNode*) {
  return Bool(IsRef(Arg(m, goal, 0)));
}
BuiltinResult BuiltinNonvar(Machine& m, Word goal, const GoalNode*) {
  return Bool(!IsRef(Arg(m, goal, 0)));
}
BuiltinResult BuiltinAtom(Machine& m, Word goal, const GoalNode*) {
  return Bool(IsAtom(Arg(m, goal, 0)));
}
BuiltinResult BuiltinNumber(Machine& m, Word goal, const GoalNode*) {
  return Bool(IsInt(Arg(m, goal, 0)));
}
BuiltinResult BuiltinAtomic(Machine& m, Word goal, const GoalNode*) {
  Word t = Arg(m, goal, 0);
  return Bool(IsAtom(t) || IsInt(t));
}
BuiltinResult BuiltinCompound(Machine& m, Word goal, const GoalNode*) {
  return Bool(IsStruct(Arg(m, goal, 0)));
}
BuiltinResult BuiltinCallable(Machine& m, Word goal, const GoalNode*) {
  Word t = Arg(m, goal, 0);
  return Bool(IsAtom(t) || IsStruct(t));
}
BuiltinResult BuiltinGround(Machine& m, Word goal, const GoalNode*) {
  return Bool(m.store()->IsGround(Arg(m, goal, 0)));
}

// --- Arithmetic -----------------------------------------------------------------

BuiltinResult BuiltinIs(Machine& m, Word goal, const GoalNode*) {
  Result<int64_t> v = m.EvalArith(Arg(m, goal, 1));
  if (!v.ok()) {
    m.SetError(v.status());
    return BuiltinResult::kError;
  }
  return UnifyResult(m, Arg(m, goal, 0), IntCell(v.value()));
}

template <typename Cmp>
BuiltinResult ArithCompare(Machine& m, Word goal, Cmp cmp) {
  Result<int64_t> a = m.EvalArith(Arg(m, goal, 0));
  if (!a.ok()) {
    m.SetError(a.status());
    return BuiltinResult::kError;
  }
  Result<int64_t> b = m.EvalArith(Arg(m, goal, 1));
  if (!b.ok()) {
    m.SetError(b.status());
    return BuiltinResult::kError;
  }
  return Bool(cmp(a.value(), b.value()));
}

BuiltinResult BuiltinArithEq(Machine& m, Word goal, const GoalNode*) {
  return ArithCompare(m, goal, [](int64_t a, int64_t b) { return a == b; });
}
BuiltinResult BuiltinArithNeq(Machine& m, Word goal, const GoalNode*) {
  return ArithCompare(m, goal, [](int64_t a, int64_t b) { return a != b; });
}
BuiltinResult BuiltinLess(Machine& m, Word goal, const GoalNode*) {
  return ArithCompare(m, goal, [](int64_t a, int64_t b) { return a < b; });
}
BuiltinResult BuiltinGreater(Machine& m, Word goal, const GoalNode*) {
  return ArithCompare(m, goal, [](int64_t a, int64_t b) { return a > b; });
}
BuiltinResult BuiltinLessEq(Machine& m, Word goal, const GoalNode*) {
  return ArithCompare(m, goal, [](int64_t a, int64_t b) { return a <= b; });
}
BuiltinResult BuiltinGreaterEq(Machine& m, Word goal, const GoalNode*) {
  return ArithCompare(m, goal, [](int64_t a, int64_t b) { return a >= b; });
}

// --- Term construction / inspection ---------------------------------------------

BuiltinResult BuiltinFunctor(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word t = Arg(m, goal, 0);
  Word name = Arg(m, goal, 1);
  Word arity = Arg(m, goal, 2);
  if (!IsRef(t)) {
    if (IsStruct(t)) {
      FunctorId f = store->StructFunctor(t);
      if (!store->Unify(name, AtomCell(symbols->FunctorAtom(f)))) {
        return BuiltinResult::kFail;
      }
      return UnifyResult(m, arity, IntCell(symbols->FunctorArity(f)));
    }
    if (!store->Unify(name, t)) return BuiltinResult::kFail;
    return UnifyResult(m, arity, IntCell(0));
  }
  if (IsRef(name) || IsRef(arity) || !IsInt(arity)) {
    m.SetError(InstantiationError("functor/3: insufficiently instantiated"));
    return BuiltinResult::kError;
  }
  int64_t n = IntValue(arity);
  if (n == 0) return UnifyResult(m, t, name);
  if (!IsAtom(name) || n < 0) {
    m.SetError(TypeError("functor/3: bad name/arity"));
    return BuiltinResult::kError;
  }
  FunctorId f = symbols->InternFunctor(AtomOf(name), static_cast<int>(n));
  // MakeStructUninit leaves the args as fresh unbound cells.
  Word s = store->MakeStructUninit(f);
  return UnifyResult(m, t, s);
}

BuiltinResult BuiltinArg(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  Word n = Arg(m, goal, 0);
  Word t = Arg(m, goal, 1);
  if (!IsInt(n) || !IsStruct(t)) {
    m.SetError(TypeError("arg/3: expects an integer and a compound term"));
    return BuiltinResult::kError;
  }
  int64_t i = IntValue(n);
  int arity = store->StructArity(t);
  if (i < 1 || i > arity) return BuiltinResult::kFail;
  return UnifyResult(m, Arg(m, goal, 2),
                     store->Arg(t, static_cast<int>(i - 1)));
}

BuiltinResult BuiltinUniv(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word t = Arg(m, goal, 0);
  Word list = Arg(m, goal, 1);
  if (!IsRef(t)) {
    std::vector<Word> items;
    if (IsStruct(t)) {
      FunctorId f = store->StructFunctor(t);
      items.push_back(AtomCell(symbols->FunctorAtom(f)));
      int arity = symbols->FunctorArity(f);
      for (int i = 0; i < arity; ++i) items.push_back(store->Arg(t, i));
    } else {
      items.push_back(t);
    }
    Word l = store->MakeList(items, AtomCell(symbols->nil()));
    return UnifyResult(m, list, l);
  }
  // Build the term from the list.
  std::vector<Word> items;
  Word cur = list;
  FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
  while (true) {
    cur = store->Deref(cur);
    if (IsAtom(cur) && AtomOf(cur) == symbols->nil()) break;
    if (!IsStruct(cur) || store->StructFunctor(cur) != cons) {
      m.SetError(TypeError("=../2: second argument is not a proper list"));
      return BuiltinResult::kError;
    }
    items.push_back(store->Deref(store->Arg(cur, 0)));
    cur = store->Arg(cur, 1);
  }
  if (items.empty()) {
    m.SetError(TypeError("=../2: empty list"));
    return BuiltinResult::kError;
  }
  if (items.size() == 1) return UnifyResult(m, t, items[0]);
  if (!IsAtom(items[0])) {
    m.SetError(TypeError("=../2: functor must be an atom"));
    return BuiltinResult::kError;
  }
  FunctorId f = symbols->InternFunctor(AtomOf(items[0]),
                                       static_cast<int>(items.size() - 1));
  std::vector<Word> args(items.begin() + 1, items.end());
  return UnifyResult(m, t, store->MakeStruct(f, args));
}

BuiltinResult BuiltinCopyTerm(Machine& m, Word goal, const GoalNode*) {
  Word copy = m.store()->CopyTerm(Arg(m, goal, 0));
  return UnifyResult(m, Arg(m, goal, 1), copy);
}

// --- Control ----------------------------------------------------------------------

BuiltinResult CallWithExtraArgs(Machine& m, Word goal, int extra) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word g = Arg(m, goal, 0);
  if (IsRef(g)) {
    m.SetError(InstantiationError("call/N on an unbound variable"));
    return BuiltinResult::kError;
  }
  if (extra == 0) {
    m.PushPendingGoalOpaqueCut(g);
    return BuiltinResult::kTrue;
  }
  std::vector<Word> args;
  AtomId name;
  bool is_apply = false;
  if (IsAtom(g)) {
    name = AtomOf(g);
  } else if (IsStruct(g)) {
    FunctorId f = store->StructFunctor(g);
    name = symbols->FunctorAtom(f);
    int arity = symbols->FunctorArity(f);
    if (name == symbols->apply()) {
      // HiLog closure: call(T, X) is T(X) = apply(T, X).
      is_apply = true;
      args.push_back(g);
    } else {
      for (int i = 0; i < arity; ++i) args.push_back(store->Arg(g, i));
    }
  } else {
    m.SetError(TypeError("call/N on a non-callable term"));
    return BuiltinResult::kError;
  }
  for (int i = 0; i < extra; ++i) {
    args.push_back(m.store()->Arg(m.store()->Deref(goal), 1 + i));
  }
  Word built;
  if (is_apply) {
    FunctorId f = symbols->InternFunctor(symbols->apply(),
                                         static_cast<int>(args.size()));
    built = store->MakeStruct(f, args);
  } else {
    FunctorId f =
        symbols->InternFunctor(name, static_cast<int>(args.size()));
    built = store->MakeStruct(f, args);
  }
  m.PushPendingGoalOpaqueCut(built);
  return BuiltinResult::kTrue;
}

BuiltinResult BuiltinCall1(Machine& m, Word goal, const GoalNode*) {
  return CallWithExtraArgs(m, goal, 0);
}
BuiltinResult BuiltinCall2(Machine& m, Word goal, const GoalNode*) {
  return CallWithExtraArgs(m, goal, 1);
}
BuiltinResult BuiltinCall3(Machine& m, Word goal, const GoalNode*) {
  return CallWithExtraArgs(m, goal, 2);
}
BuiltinResult BuiltinCall4(Machine& m, Word goal, const GoalNode*) {
  return CallWithExtraArgs(m, goal, 3);
}
BuiltinResult BuiltinCall5(Machine& m, Word goal, const GoalNode*) {
  return CallWithExtraArgs(m, goal, 4);
}

BuiltinResult BuiltinOnce(Machine& m, Word goal, const GoalNode*) {
  bool found = false;
  const GoalNode* sub =
      m.Cons(Arg(m, goal, 0), nullptr,
             static_cast<uint32_t>(m.choice_point_count()));
  Status status = m.Run(sub, [&found]() {
    found = true;
    return SolveAction::kStop;
  });
  if (!status.ok()) {
    m.SetError(status);
    return BuiltinResult::kError;
  }
  return Bool(found);
}

BuiltinResult BuiltinNot(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  size_t trail = store->TrailMark();
  size_t heap = store->HeapMark();
  bool found = false;
  const GoalNode* sub =
      m.Cons(Arg(m, goal, 0), nullptr,
             static_cast<uint32_t>(m.choice_point_count()));
  Status status = m.Run(sub, [&found]() {
    found = true;
    return SolveAction::kStop;
  });
  store->UndoTrail(trail);
  store->TruncateHeap(heap);
  if (!status.ok()) {
    m.SetError(status);
    return BuiltinResult::kError;
  }
  return Bool(!found);
}

BuiltinResult BuiltinFindall(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  Result<std::vector<FlatTerm>> collected =
      m.FindAll(Arg(m, goal, 0), Arg(m, goal, 1));
  if (!collected.ok()) {
    m.SetError(collected.status());
    return BuiltinResult::kError;
  }
  std::vector<Word> items;
  items.reserve(collected.value().size());
  for (const FlatTerm& flat : collected.value()) {
    items.push_back(Unflatten(store, flat));
  }
  Word list =
      store->MakeList(items, AtomCell(store->symbols()->nil()));
  return UnifyResult(m, Arg(m, goal, 2), list);
}

BuiltinResult BuiltinBetween(Machine& m, Word goal, const GoalNode* node) {
  Word lo = Arg(m, goal, 0);
  Word hi = Arg(m, goal, 1);
  Word x = Arg(m, goal, 2);
  if (!IsInt(lo) || !IsInt(hi)) {
    m.SetError(TypeError("between/3: bounds must be integers"));
    return BuiltinResult::kError;
  }
  if (IsInt(x)) {
    return Bool(IntValue(lo) <= IntValue(x) && IntValue(x) <= IntValue(hi));
  }
  if (!IsRef(x)) return BuiltinResult::kFail;
  m.PushBetweenChoices(x, IntValue(lo), IntValue(hi), node->next);
  return BuiltinResult::kFail;  // enter the choice point
}

BuiltinResult BuiltinLength(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word list = Arg(m, goal, 0);
  Word n = Arg(m, goal, 1);
  FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
  // Walk the list as far as it is bound.
  int64_t count = 0;
  Word cur = list;
  while (true) {
    cur = store->Deref(cur);
    if (IsAtom(cur) && AtomOf(cur) == symbols->nil()) {
      return UnifyResult(m, n, IntCell(count));
    }
    if (IsStruct(cur) && store->StructFunctor(cur) == cons) {
      ++count;
      cur = store->Arg(cur, 1);
      continue;
    }
    break;
  }
  if (IsRef(cur) && IsInt(n)) {
    // Extend the partial list with fresh variables.
    int64_t want = IntValue(n) - count;
    if (want < 0) return BuiltinResult::kFail;
    std::vector<Word> fresh(static_cast<size_t>(want));
    for (auto& v : fresh) v = store->MakeVar();
    Word tail = store->MakeList(fresh, AtomCell(symbols->nil()));
    return UnifyResult(m, cur, tail);
  }
  m.SetError(InstantiationError("length/2: insufficiently instantiated"));
  return BuiltinResult::kError;
}

// --- Sorting and all-solutions --------------------------------------------------

// Reads a proper list into *items; false if not a proper list.
bool ListToVector(Machine& m, Word list, std::vector<Word>* items) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
  Word cur = store->Deref(list);
  while (true) {
    if (IsAtom(cur) && AtomOf(cur) == symbols->nil()) return true;
    if (!IsStruct(cur) || store->StructFunctor(cur) != cons) return false;
    items->push_back(store->Arg(cur, 0));
    cur = store->Deref(store->Arg(cur, 1));
  }
}

BuiltinResult SortImpl(Machine& m, Word goal, bool dedup) {
  TermStore* store = m.store();
  std::vector<Word> items;
  if (!ListToVector(m, Arg(m, goal, 0), &items)) {
    m.SetError(TypeError("sort/2: not a proper list"));
    return BuiltinResult::kError;
  }
  std::stable_sort(items.begin(), items.end(), [&](Word a, Word b) {
    return store->Compare(a, b) < 0;
  });
  if (dedup) {
    items.erase(std::unique(items.begin(), items.end(),
                            [&](Word a, Word b) {
                              return store->Compare(a, b) == 0;
                            }),
                items.end());
  }
  Word sorted = store->MakeList(items, AtomCell(store->symbols()->nil()));
  return UnifyResult(m, Arg(m, goal, 1), sorted);
}

BuiltinResult BuiltinSort(Machine& m, Word goal, const GoalNode*) {
  return SortImpl(m, goal, /*dedup=*/true);
}
BuiltinResult BuiltinMsort(Machine& m, Word goal, const GoalNode*) {
  return SortImpl(m, goal, /*dedup=*/false);
}

// Strips `Var^Goal` wrappers (existential quantification markers).
Word StripCarets(Machine& m, Word goal) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  FunctorId caret = symbols->InternFunctor(symbols->InternAtom("^"), 2);
  Word g = store->Deref(goal);
  while (IsStruct(g) && store->StructFunctor(g) == caret) {
    g = store->Deref(store->Arg(g, 1));
  }
  return g;
}

// bagof/3 and setof/3, in their common findall-like reading: the template's
// solutions are collected (existential ^ prefixes are honored by stripping),
// the empty bag fails, and setof sorts and deduplicates. Free-variable
// grouping (backtracking over witness bindings) is not implemented; this is
// the behavior most database-style uses rely on and is documented in
// README.md.
BuiltinResult BagofImpl(Machine& m, Word goal, bool is_setof) {
  TermStore* store = m.store();
  Word templ = Arg(m, goal, 0);
  Word inner = StripCarets(m, Arg(m, goal, 1));
  Result<std::vector<FlatTerm>> collected = m.FindAll(templ, inner);
  if (!collected.ok()) {
    m.SetError(collected.status());
    return BuiltinResult::kError;
  }
  if (collected.value().empty()) return BuiltinResult::kFail;
  std::vector<Word> items;
  items.reserve(collected.value().size());
  for (const FlatTerm& flat : collected.value()) {
    items.push_back(Unflatten(store, flat));
  }
  if (is_setof) {
    std::stable_sort(items.begin(), items.end(), [&](Word a, Word b) {
      return store->Compare(a, b) < 0;
    });
    items.erase(std::unique(items.begin(), items.end(),
                            [&](Word a, Word b) {
                              return store->Compare(a, b) == 0;
                            }),
                items.end());
  }
  Word list = store->MakeList(items, AtomCell(store->symbols()->nil()));
  return UnifyResult(m, Arg(m, goal, 2), list);
}

BuiltinResult BuiltinBagof(Machine& m, Word goal, const GoalNode*) {
  return BagofImpl(m, goal, /*is_setof=*/false);
}
BuiltinResult BuiltinSetof(Machine& m, Word goal, const GoalNode*) {
  return BagofImpl(m, goal, /*is_setof=*/true);
}

BuiltinResult BuiltinSucc(Machine& m, Word goal, const GoalNode*) {
  Word a = Arg(m, goal, 0);
  Word b = Arg(m, goal, 1);
  if (IsInt(a)) return UnifyResult(m, b, IntCell(IntValue(a) + 1));
  if (IsInt(b)) {
    if (IntValue(b) <= 0) return BuiltinResult::kFail;
    return UnifyResult(m, a, IntCell(IntValue(b) - 1));
  }
  m.SetError(InstantiationError("succ/2: both arguments unbound"));
  return BuiltinResult::kError;
}

// --- Database updates ---------------------------------------------------------------

BuiltinResult AssertImpl(Machine& m, Word goal, bool front) {
  Status status =
      m.program()->AddClauseTerm(*m.store(), Arg(m, goal, 0), front);
  if (!status.ok()) {
    m.SetError(status);
    return BuiltinResult::kError;
  }
  return BuiltinResult::kTrue;
}

BuiltinResult BuiltinAssertz(Machine& m, Word goal, const GoalNode*) {
  return AssertImpl(m, goal, false);
}
BuiltinResult BuiltinAsserta(Machine& m, Word goal, const GoalNode*) {
  return AssertImpl(m, goal, true);
}

// Splits a retract pattern into (head, body, body_given).
void SplitClausePattern(Machine& m, Word pattern, Word* head, Word* body,
                        bool* body_given) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  pattern = store->Deref(pattern);
  *body_given = false;
  *head = pattern;
  *body = AtomCell(symbols->truth());
  if (IsStruct(pattern)) {
    FunctorId f = store->StructFunctor(pattern);
    if (symbols->FunctorAtom(f) == symbols->neck() &&
        symbols->FunctorArity(f) == 2) {
      *head = store->Deref(store->Arg(pattern, 0));
      *body = store->Arg(pattern, 1);
      *body_given = true;
    }
  }
}

// A successful erasure shrinks the program: shard reach masks and
// incremental dependency seeds published for the old clause set are now
// stale (still sound — a shrunken program only satisfies the published
// upper bounds more — but loose, so every cold call over-acquires shards).
// Recompute the structural analyses and republish. The mode pass is
// skipped: published call/success modes are likewise upper bounds that
// erasure can only tighten, and the fixpoint is the expensive part.
void RepublishAfterErasure(Machine& m) {
  analysis::AnalyzeOptions options;
  options.safety_pass = false;
  options.advisor_pass = false;
  options.lint_pass = false;
  options.mode_pass = false;
  analysis::AnalysisResult result = analysis::Analyze(*m.program(), options);
  analysis::PublishIncrementalDeps(m.program(), result);
  analysis::PublishEvalShards(m.program(), result);
}

BuiltinResult BuiltinRetract(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word head, body;
  bool body_given;
  SplitClausePattern(m, Arg(m, goal, 0), &head, &body, &body_given);
  std::optional<FunctorId> functor = Program::CallableFunctor(*store, head);
  if (!functor.has_value()) {
    m.SetError(TypeError("retract/1: head not callable"));
    return BuiltinResult::kError;
  }
  Predicate* pred = m.program()->Lookup(*functor);
  if (pred == nullptr) return BuiltinResult::kFail;
  for (ClauseId id : pred->Candidates(*store, head)) {
    const Clause& clause = pred->clause(id);
    if (clause.erased) continue;
    size_t trail = store->TrailMark();
    size_t heap = store->HeapMark();
    Word inst = Unflatten(store, clause.term);
    Word chead = inst;
    Word cbody = AtomCell(symbols->truth());
    if (clause.is_rule) {
      Word d = store->Deref(inst);
      chead = store->Arg(d, 0);
      cbody = store->Arg(d, 1);
    }
    // A bare pattern retracts clauses whose body is `true` (facts); a
    // (H :- B) pattern matches against the stored body.
    if (store->Unify(head, chead) && store->Unify(body, cbody)) {
      pred->EraseClause(id);
      if (pred->incremental()) m.program()->NotifyIncrementalUpdate(*functor);
      RepublishAfterErasure(m);
      return BuiltinResult::kTrue;  // bindings stay, as in ISO retract
    }
    store->UndoTrail(trail);
    store->TruncateHeap(heap);
  }
  return BuiltinResult::kFail;
}

BuiltinResult BuiltinRetractAll(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  Word head = Arg(m, goal, 0);
  std::optional<FunctorId> functor = Program::CallableFunctor(*store, head);
  if (!functor.has_value()) {
    m.SetError(TypeError("retractall/1: head not callable"));
    return BuiltinResult::kError;
  }
  Predicate* pred = m.program()->Lookup(*functor);
  if (pred == nullptr) return BuiltinResult::kTrue;
  bool erased_any = false;
  for (ClauseId id : pred->Candidates(*store, head)) {
    const Clause& clause = pred->clause(id);
    if (clause.erased) continue;
    size_t trail = store->TrailMark();
    size_t heap = store->HeapMark();
    Word inst = Unflatten(store, clause.term);
    Word chead = inst;
    if (clause.is_rule) chead = store->Arg(store->Deref(inst), 0);
    if (store->Unify(head, chead)) {
      pred->EraseClause(id);
      erased_any = true;
    }
    store->UndoTrail(trail);
    store->TruncateHeap(heap);
  }
  if (erased_any && pred->incremental()) {
    m.program()->NotifyIncrementalUpdate(*functor);
  }
  if (erased_any) RepublishAfterErasure(m);
  return BuiltinResult::kTrue;
}

BuiltinResult BuiltinAbolish(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word spec = Arg(m, goal, 0);
  FunctorId slash = symbols->InternFunctor(symbols->InternAtom("/"), 2);
  if (!IsStruct(spec) || store->StructFunctor(spec) != slash) {
    m.SetError(TypeError("abolish/1: expected Name/Arity"));
    return BuiltinResult::kError;
  }
  Word name = store->Deref(store->Arg(spec, 0));
  Word arity = store->Deref(store->Arg(spec, 1));
  if (!IsAtom(name) || !IsInt(arity)) {
    m.SetError(TypeError("abolish/1: expected Name/Arity"));
    return BuiltinResult::kError;
  }
  FunctorId f = symbols->InternFunctor(AtomOf(name),
                                       static_cast<int>(IntValue(arity)));
  Predicate* pred = m.program()->Lookup(f);
  if (pred != nullptr) {
    bool erased_any = pred->num_live_clauses() > 0;
    for (ClauseId id = 0; id < pred->clauses().size(); ++id) {
      pred->EraseClause(id);
    }
    if (erased_any && pred->incremental()) {
      m.program()->NotifyIncrementalUpdate(f);
    }
    if (erased_any) RepublishAfterErasure(m);
  }
  return BuiltinResult::kTrue;
}

// --- Atoms and strings ----------------------------------------------------------

// atom_codes/2, number_codes/2, atom_length/2, atom_concat/3.
BuiltinResult BuiltinAtomCodes(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word a = Arg(m, goal, 0);
  Word codes = Arg(m, goal, 1);
  if (IsAtom(a) || IsInt(a)) {
    std::string text = IsAtom(a) ? symbols->AtomName(AtomOf(a))
                                 : std::to_string(IntValue(a));
    std::vector<Word> items;
    for (unsigned char c : text) items.push_back(IntCell(c));
    Word list = store->MakeList(items, AtomCell(symbols->nil()));
    return UnifyResult(m, codes, list);
  }
  std::vector<Word> items;
  if (!ListToVector(m, codes, &items)) {
    m.SetError(InstantiationError("atom_codes/2: need an atom or codes"));
    return BuiltinResult::kError;
  }
  std::string text;
  for (Word w : items) {
    Word d = store->Deref(w);
    if (!IsInt(d)) {
      m.SetError(TypeError("atom_codes/2: code list must hold integers"));
      return BuiltinResult::kError;
    }
    text.push_back(static_cast<char>(IntValue(d)));
  }
  return UnifyResult(m, a, AtomCell(symbols->InternAtom(text)));
}

BuiltinResult BuiltinNumberCodes(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word n = Arg(m, goal, 0);
  Word codes = Arg(m, goal, 1);
  if (IsInt(n)) {
    std::string text = std::to_string(IntValue(n));
    std::vector<Word> items;
    for (unsigned char c : text) items.push_back(IntCell(c));
    Word list = store->MakeList(items, AtomCell(symbols->nil()));
    return UnifyResult(m, codes, list);
  }
  std::vector<Word> items;
  if (!ListToVector(m, codes, &items) || items.empty()) {
    m.SetError(InstantiationError("number_codes/2: need a number or codes"));
    return BuiltinResult::kError;
  }
  std::string text;
  for (Word w : items) {
    Word d = store->Deref(w);
    if (!IsInt(d)) {
      m.SetError(TypeError("number_codes/2: code list must hold integers"));
      return BuiltinResult::kError;
    }
    text.push_back(static_cast<char>(IntValue(d)));
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return BuiltinResult::kFail;  // not a number
  }
  return UnifyResult(m, n, IntCell(value));
}

BuiltinResult BuiltinAtomLength(Machine& m, Word goal, const GoalNode*) {
  Word a = Arg(m, goal, 0);
  if (!IsAtom(a)) {
    m.SetError(TypeError("atom_length/2: first argument must be an atom"));
    return BuiltinResult::kError;
  }
  const std::string& name = m.store()->symbols()->AtomName(AtomOf(a));
  return UnifyResult(m, Arg(m, goal, 1),
                     IntCell(static_cast<int64_t>(name.size())));
}

BuiltinResult BuiltinAtomConcat(Machine& m, Word goal, const GoalNode*) {
  SymbolTable* symbols = m.store()->symbols();
  Word a = Arg(m, goal, 0);
  Word b = Arg(m, goal, 1);
  auto text_of = [&](Word w, std::string* out) {
    if (IsAtom(w)) {
      *out = symbols->AtomName(AtomOf(w));
      return true;
    }
    if (IsInt(w)) {
      *out = std::to_string(IntValue(w));
      return true;
    }
    return false;
  };
  std::string ta, tb;
  if (text_of(a, &ta) && text_of(b, &tb)) {
    return UnifyResult(m, Arg(m, goal, 2),
                       AtomCell(symbols->InternAtom(ta + tb)));
  }
  m.SetError(InstantiationError(
      "atom_concat/3: first two arguments must be atomic"));
  return BuiltinResult::kError;
}

// clause/2: enumerates clauses of a predicate (deterministic first match is
// not enough — push pending alternatives through the machine is complex, so
// clause/2 here is implemented with findall-style collection semantics via
// the machine's answer choice point: we materialize matching clause bodies).
BuiltinResult BuiltinClause(Machine& m, Word goal, const GoalNode* node) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word head = Arg(m, goal, 0);
  Word body = Arg(m, goal, 1);
  std::optional<FunctorId> functor = Program::CallableFunctor(*store, head);
  if (!functor.has_value()) {
    m.SetError(InstantiationError("clause/2: head must be callable"));
    return BuiltinResult::kError;
  }
  Predicate* pred = m.program()->Lookup(*functor);
  if (pred == nullptr) return BuiltinResult::kFail;
  // Materialize (Head :- Body) instances that match, then enumerate them
  // through an answer choice point over a machine-adopted AnswerSource.
  std::vector<FlatTerm> instances;
  FlatTerm instance_scratch;
  FunctorId neck = symbols->InternFunctor(symbols->neck(), 2);
  Word pair_pattern = store->MakeStruct(neck, {head, body});
  for (ClauseId id : pred->Candidates(*store, head)) {
    const Clause& clause = pred->clause(id);
    if (clause.erased) continue;
    size_t trail = store->TrailMark();
    size_t heap = store->HeapMark();
    Word inst = Unflatten(store, clause.term);
    Word chead = inst;
    Word cbody = AtomCell(symbols->truth());
    if (clause.is_rule) {
      Word d = store->Deref(inst);
      chead = store->Arg(d, 0);
      cbody = store->Arg(d, 1);
    }
    Word cpair = store->MakeStruct(neck, {chead, cbody});
    if (store->Unify(pair_pattern, cpair)) {
      // Flatten into the reused scratch, then store an exact-size copy: no
      // growth reallocations once the scratch is warm.
      if (FlattenInto(*store, pair_pattern, &instance_scratch)) {
        ++m.stats().findall_flatten_reuses;
      }
      instances.push_back(instance_scratch);
    }
    store->UndoTrail(trail);
    store->TruncateHeap(heap);
  }
  if (instances.empty()) return BuiltinResult::kFail;
  const AnswerSource* source = m.AdoptAnswerSource(
      std::make_unique<VectorAnswerSource>(std::move(instances)));
  m.PushAnswerChoices(pair_pattern, source, node->next);
  return BuiltinResult::kFail;  // enter the choice point
}

// table_stats/2: table_stats(Goal, Stats) unifies Stats with
// [subgoals-N, answers-N, trie_nodes-N, call_trie_nodes-N, interned_terms-N,
// bytes-N, factored_saved_bytes-N, findall_flatten_reuses-N,
// shared_table_hits-N, waits_on_inprogress-N, epochs_retired-N,
// coarse_fallbacks-N, mode_violations-N, subsumed_dropped-N,
// subsumed_replaced-N] for the
// variant table of Goal, or aggregated over the whole table space when Goal
// is the atom `all`. Fails when Goal has no table; errors when no tabling
// evaluator is installed. The shared-serving counters are relaxed atomics:
// each is an independent monotonic event count, with no cross-counter
// snapshot implied.
BuiltinResult BuiltinTableStats(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  TabledCallHandler* handler = m.tabled_handler();
  if (handler == nullptr) {
    m.SetError(TypeError("table_stats/2: no tabling evaluator installed"));
    return BuiltinResult::kError;
  }
  Word subject = store->Deref(Arg(m, goal, 0));
  Word probe = 0;  // 0 = aggregate over the whole table space
  if (!(IsAtom(subject) &&
        AtomOf(subject) == symbols->InternAtom("all"))) {
    if (!Program::CallableFunctor(*store, subject).has_value()) {
      m.SetError(InstantiationError(
          "table_stats/2: first argument must be `all` or a callable goal"));
      return BuiltinResult::kError;
    }
    probe = subject;
  }
  TabledCallHandler::TableStatsInfo info = handler->GetTableStats(&m, probe);
  if (!info.found) return BuiltinResult::kFail;
  FunctorId dash = symbols->InternFunctor(symbols->InternAtom("-"), 2);
  auto pair = [&](const char* name, uint64_t value) {
    return store->MakeStruct(dash,
                             {AtomCell(symbols->InternAtom(name)),
                              IntCell(static_cast<int64_t>(value))});
  };
  std::vector<Word> items = {
      pair("subgoals", info.subgoals),
      pair("answers", info.answers),
      pair("trie_nodes", info.trie_nodes),
      pair("call_trie_nodes", info.call_trie_nodes),
      pair("interned_terms", info.interned_terms),
      pair("bytes", info.bytes),
      pair("factored_saved_bytes", info.factored_saved_bytes),
      pair("findall_flatten_reuses", m.stats().findall_flatten_reuses),
      pair("shared_table_hits", info.shared_table_hits),
      pair("waits_on_inprogress", info.waits_on_inprogress),
      pair("epochs_retired", info.epochs_retired),
      pair("coarse_fallbacks", info.coarse_fallbacks),
      pair("mode_violations", info.mode_violations),
      pair("subsumed_dropped", info.subsumed_dropped),
      pair("subsumed_replaced", info.subsumed_replaced),
  };
  Word list = store->MakeList(items, AtomCell(symbols->nil()));
  return UnifyResult(m, Arg(m, goal, 1), list);
}

// wam_stats/2: wam_stats(all, Stats) unifies Stats with the process-wide WAM
// execution-tier counters as [instructions-N, choice_points-N, mode_checks-N,
// mode_fallbacks-N, jit_compiled_preds-N, jit_entries-N, jit_bailouts-N,
// switch_structure_hits-N, switch_miss_linear-N].
// Counters aggregate over every emulator instance the process has run
// (flushed at the end of each Solve), so benches and the shell can read the
// tier ladder — including how much work ran natively — without touching C++
// structs. The same functor is recognized by the WAM compiler, so the goal
// also works when compiled straight to bytecode.
BuiltinResult BuiltinWamStatsEngine(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  wam::WamStats stats = wam::GlobalWamStats();
  FunctorId dash = symbols->InternFunctor(symbols->InternAtom("-"), 2);
  auto pair = [&](const char* name, uint64_t value) {
    return store->MakeStruct(dash,
                             {AtomCell(symbols->InternAtom(name)),
                              IntCell(static_cast<int64_t>(value))});
  };
  std::vector<Word> items = {
      pair("instructions", stats.instructions),
      pair("choice_points", stats.choice_points),
      pair("mode_checks", stats.mode_checks),
      pair("mode_fallbacks", stats.mode_fallbacks),
      pair("jit_compiled_preds", stats.jit_compiled_preds),
      pair("jit_entries", stats.jit_entries),
      pair("jit_bailouts", stats.jit_bailouts),
      pair("switch_structure_hits", stats.switch_structure_hits),
      pair("switch_miss_linear", stats.switch_miss_linear),
  };
  Word list = store->MakeList(items, AtomCell(symbols->nil()));
  if (!store->Unify(Arg(m, goal, 0), AtomCell(symbols->InternAtom("all")))) {
    return BuiltinResult::kFail;
  }
  return UnifyResult(m, Arg(m, goal, 1), list);
}

// analyze/1: reruns the consult-time program analyzer on demand and unifies
// its argument with a report:
//   [sccs-N, stratified-B, widened-B,
//    table_suggestions-[p/N, ...],
//    index_suggestions-[index(p/N, K), ...],
//    diagnostics-[diag(Code, Severity, p/N, Message, span(File, Line, Col)),
//                 ...]]
// Also refreshes the program's published stratification verdict, so asserts
// made since the last consult are taken into account.
BuiltinResult BuiltinAnalyze(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  analysis::AnalysisResult result = analysis::Analyze(*m.program());
  analysis::PublishVerdict(m.program(), result);
  analysis::PublishIncrementalDeps(m.program(), result);
  analysis::PublishEvalShards(m.program(), result);
  analysis::PublishModes(m.program(), result);

  FunctorId dash = symbols->InternFunctor(symbols->InternAtom("-"), 2);
  FunctorId slash = symbols->InternFunctor(symbols->InternAtom("/"), 2);
  FunctorId diag5 = symbols->InternFunctor(symbols->InternAtom("diag"), 5);
  FunctorId span3 = symbols->InternFunctor(symbols->InternAtom("span"), 3);
  FunctorId index2 = symbols->InternFunctor(symbols->InternAtom("index"), 2);
  Word nil = AtomCell(symbols->nil());
  auto atom = [&](const char* name) {
    return AtomCell(symbols->InternAtom(name));
  };
  auto pred_indicator = [&](FunctorId f) {
    return store->MakeStruct(slash,
                             {AtomCell(symbols->FunctorAtom(f)),
                              IntCell(symbols->FunctorArity(f))});
  };
  auto pair = [&](const char* name, Word value) {
    return store->MakeStruct(dash,
                             {AtomCell(symbols->InternAtom(name)), value});
  };

  std::vector<Word> tables;
  for (FunctorId f : result.table_suggestions) {
    tables.push_back(pred_indicator(f));
  }
  std::vector<Word> indexes;
  for (const auto& [f, argnum] : result.index_suggestions) {
    indexes.push_back(
        store->MakeStruct(index2, {pred_indicator(f), IntCell(argnum)}));
  }
  std::vector<Word> diags;
  for (const analysis::Diagnostic& d : result.diagnostics) {
    Word subject = d.functor == analysis::kNoFunctor ? atom("program")
                                                     : pred_indicator(d.functor);
    Word file = d.span.file != 0 ? AtomCell(d.span.file) : atom("unknown");
    Word span = store->MakeStruct(
        span3, {file, IntCell(d.span.line), IntCell(d.span.column)});
    diags.push_back(store->MakeStruct(
        diag5, {atom(analysis::DiagCodeName(d.code)),
                atom(analysis::SeverityName(d.severity)), subject,
                AtomCell(symbols->InternAtom(d.message)), span}));
  }
  std::vector<Word> items = {
      pair("sccs", IntCell(static_cast<int64_t>(result.sccs.size()))),
      pair("stratified", atom(result.stratified() ? "true" : "false")),
      pair("widened", atom(result.widened ? "true" : "false")),
      pair("table_suggestions", store->MakeList(tables, nil)),
      pair("index_suggestions", store->MakeList(indexes, nil)),
      pair("diagnostics", store->MakeList(diags, nil)),
  };
  Word report = store->MakeList(items, nil);
  m.program()->SetAnalysisDiagnostics(std::move(result.diagnostics));
  return UnifyResult(m, Arg(m, goal, 0), report);
}

// predicate_mode/2: predicate_mode(Name/Arity, Modes) unifies Modes with
// the call/success modes the mode analysis published for the predicate:
//   [call-[ground|nonvar|free|any, ...], success-[...]]
// `call-unknown` when the analysis saw no call site of the predicate;
// `success-never` when it proved the predicate cannot succeed. Fails when
// the predicate is unknown or no analysis has published modes for it.
BuiltinResult BuiltinPredicateMode(Machine& m, Word goal, const GoalNode*) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word spec = store->Deref(Arg(m, goal, 0));
  FunctorId slash = symbols->InternFunctor(symbols->InternAtom("/"), 2);
  if (!IsStruct(spec) || store->StructFunctor(spec) != slash) {
    m.SetError(TypeError("predicate_mode/2: expected Name/Arity"));
    return BuiltinResult::kError;
  }
  Word name = store->Deref(store->Arg(spec, 0));
  Word arity = store->Deref(store->Arg(spec, 1));
  if (!IsAtom(name) || !IsInt(arity)) {
    m.SetError(TypeError("predicate_mode/2: expected Name/Arity"));
    return BuiltinResult::kError;
  }
  FunctorId f = symbols->InternFunctor(AtomOf(name),
                                       static_cast<int>(IntValue(arity)));
  const Predicate* pred = m.program()->Lookup(f);
  if (pred == nullptr || pred->modes() == nullptr) {
    return BuiltinResult::kFail;
  }
  const PublishedModes& modes = *pred->modes();
  Word nil = AtomCell(symbols->nil());
  auto atom = [&](const char* text) {
    return AtomCell(symbols->InternAtom(text));
  };
  auto mode_atom = [&](uint8_t mode) {
    switch (mode) {
      case kModeGround:
        return atom("ground");
      case kModeNonvar:
        return atom("nonvar");
      case kModeFree:
        return atom("free");
      default:
        return atom("any");
    }
  };
  auto mode_list = [&](const std::vector<uint8_t>& vec) {
    std::vector<Word> items;
    for (uint8_t mode : vec) items.push_back(mode_atom(mode));
    return store->MakeList(items, nil);
  };
  FunctorId dash = symbols->InternFunctor(symbols->InternAtom("-"), 2);
  auto pair = [&](const char* key, Word value) {
    return store->MakeStruct(dash, {atom(key), value});
  };
  std::vector<Word> items = {
      pair("call", modes.site_join.empty() ? atom("unknown")
                                           : mode_list(modes.site_join)),
      pair("success", modes.success_join.empty()
                          ? atom("never")
                          : mode_list(modes.success_join)),
  };
  return UnifyResult(m, Arg(m, goal, 1), store->MakeList(items, nil));
}

// --- Incremental table maintenance ----------------------------------------------

// Walks an incremental/1 spec: Name/Arity, a comma conjunction, or a list.
Status DeclareIncrementalSpec(Machine& m, Word spec) {
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  spec = store->Deref(spec);
  FunctorId comma = symbols->InternFunctor(symbols->comma(), 2);
  FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
  FunctorId slash = symbols->InternFunctor(symbols->InternAtom("/"), 2);
  if (IsStruct(spec)) {
    FunctorId f = store->StructFunctor(spec);
    if (f == comma || f == cons) {
      Status s = DeclareIncrementalSpec(m, store->Arg(spec, 0));
      if (!s.ok()) return s;
      Word rest = store->Deref(store->Arg(spec, 1));
      if (IsAtom(rest) && AtomOf(rest) == symbols->nil()) return Status::Ok();
      return DeclareIncrementalSpec(m, rest);
    }
    if (f == slash) {
      Word name = store->Deref(store->Arg(spec, 0));
      Word arity = store->Deref(store->Arg(spec, 1));
      if (IsAtom(name) && IsInt(arity)) {
        FunctorId functor = symbols->InternFunctor(
            AtomOf(name), static_cast<int>(IntValue(arity)));
        return m.program()->DeclareIncremental(functor);
      }
    }
  }
  return TypeError("incremental/1: expected Name/Arity spec(s)");
}

// incremental/1: runtime counterpart of the `:- incremental(p/N)` directive.
// After declaring, reruns the analyzer so the static dependency seeds given
// to tables created from here on cover the fresh declarations.
BuiltinResult BuiltinIncremental(Machine& m, Word goal, const GoalNode*) {
  Status status = DeclareIncrementalSpec(m, Arg(m, goal, 0));
  if (!status.ok()) {
    m.SetError(status);
    return BuiltinResult::kError;
  }
  analysis::AnalysisResult result = analysis::Analyze(*m.program());
  analysis::PublishIncrementalDeps(m.program(), result);
  return BuiltinResult::kTrue;
}

// abolish_table_call/1: disposes the variant table of Goal (its dependents
// are untouched — use updates for that). Fails when Goal has no table.
BuiltinResult BuiltinAbolishTableCall(Machine& m, Word goal, const GoalNode*) {
  TabledCallHandler* handler = m.tabled_handler();
  if (handler == nullptr) {
    m.SetError(
        TypeError("abolish_table_call/1: no tabling evaluator installed"));
    return BuiltinResult::kError;
  }
  TermStore* store = m.store();
  Word subject = store->Deref(Arg(m, goal, 0));
  if (!Program::CallableFunctor(*store, subject).has_value()) {
    m.SetError(
        InstantiationError("abolish_table_call/1: goal must be callable"));
    return BuiltinResult::kError;
  }
  return handler->AbolishTableCall(&m, subject) ? BuiltinResult::kTrue
                                                : BuiltinResult::kFail;
}

// table_state/2: table_state(Goal, State) unifies State with the variant
// table's lifecycle state: undefined | incomplete | complete | invalid.
BuiltinResult BuiltinTableState(Machine& m, Word goal, const GoalNode*) {
  TabledCallHandler* handler = m.tabled_handler();
  if (handler == nullptr) {
    m.SetError(TypeError("table_state/2: no tabling evaluator installed"));
    return BuiltinResult::kError;
  }
  TermStore* store = m.store();
  SymbolTable* symbols = store->symbols();
  Word subject = store->Deref(Arg(m, goal, 0));
  if (!Program::CallableFunctor(*store, subject).has_value()) {
    m.SetError(InstantiationError("table_state/2: goal must be callable"));
    return BuiltinResult::kError;
  }
  const char* name = "undefined";
  switch (handler->GetTableState(&m, subject)) {
    case TabledCallHandler::TableState::kNoTable:
      name = "undefined";
      break;
    case TabledCallHandler::TableState::kIncomplete:
      name = "incomplete";
      break;
    case TabledCallHandler::TableState::kComplete:
      name = "complete";
      break;
    case TabledCallHandler::TableState::kInvalid:
      name = "invalid";
      break;
  }
  return UnifyResult(m, Arg(m, goal, 1), AtomCell(symbols->InternAtom(name)));
}

// --- Output ------------------------------------------------------------------------

BuiltinResult WriteImpl(Machine& m, Word goal, bool quoted, bool newline) {
  WriteOptions options;
  options.quoted = quoted;
  std::cout << WriteTerm(*m.store(), *m.program()->ops(),
                         m.store()->Arg(m.store()->Deref(goal), 0), options);
  if (newline) std::cout << '\n';
  return BuiltinResult::kTrue;
}

BuiltinResult BuiltinWrite(Machine& m, Word goal, const GoalNode*) {
  return WriteImpl(m, goal, /*quoted=*/false, /*newline=*/false);
}
BuiltinResult BuiltinPrint(Machine& m, Word goal, const GoalNode*) {
  return WriteImpl(m, goal, /*quoted=*/true, /*newline=*/false);
}
BuiltinResult BuiltinWriteln(Machine& m, Word goal, const GoalNode*) {
  return WriteImpl(m, goal, /*quoted=*/false, /*newline=*/true);
}
BuiltinResult BuiltinNl(Machine&, Word, const GoalNode*) {
  std::cout << '\n';
  return BuiltinResult::kTrue;
}

}  // namespace

BuiltinRegistry::BuiltinRegistry(SymbolTable* symbols) {
  Register(symbols, "=", 2, BuiltinUnify);
  Register(symbols, "\\=", 2, BuiltinNotUnify);
  Register(symbols, "==", 2, BuiltinIdentical);
  Register(symbols, "\\==", 2, BuiltinNotIdentical);
  Register(symbols, "@<", 2, BuiltinTermLess);
  Register(symbols, "@>", 2, BuiltinTermGreater);
  Register(symbols, "@=<", 2, BuiltinTermLessEq);
  Register(symbols, "@>=", 2, BuiltinTermGreaterEq);
  Register(symbols, "compare", 3, BuiltinCompare);
  Register(symbols, "var", 1, BuiltinVar);
  Register(symbols, "nonvar", 1, BuiltinNonvar);
  Register(symbols, "atom", 1, BuiltinAtom);
  Register(symbols, "number", 1, BuiltinNumber);
  Register(symbols, "integer", 1, BuiltinNumber);
  Register(symbols, "atomic", 1, BuiltinAtomic);
  Register(symbols, "compound", 1, BuiltinCompound);
  Register(symbols, "callable", 1, BuiltinCallable);
  Register(symbols, "ground", 1, BuiltinGround);
  Register(symbols, "is", 2, BuiltinIs);
  Register(symbols, "=:=", 2, BuiltinArithEq);
  Register(symbols, "=\\=", 2, BuiltinArithNeq);
  Register(symbols, "<", 2, BuiltinLess);
  Register(symbols, ">", 2, BuiltinGreater);
  Register(symbols, "=<", 2, BuiltinLessEq);
  Register(symbols, ">=", 2, BuiltinGreaterEq);
  Register(symbols, "functor", 3, BuiltinFunctor);
  Register(symbols, "arg", 3, BuiltinArg);
  Register(symbols, "=..", 2, BuiltinUniv);
  Register(symbols, "copy_term", 2, BuiltinCopyTerm);
  Register(symbols, "call", 1, BuiltinCall1);
  Register(symbols, "call", 2, BuiltinCall2);
  Register(symbols, "call", 3, BuiltinCall3);
  Register(symbols, "call", 4, BuiltinCall4);
  Register(symbols, "call", 5, BuiltinCall5);
  Register(symbols, "once", 1, BuiltinOnce);
  Register(symbols, "not", 1, BuiltinNot);
  Register(symbols, "findall", 3, BuiltinFindall);
  Register(symbols, "bagof", 3, BuiltinBagof);
  Register(symbols, "setof", 3, BuiltinSetof);
  Register(symbols, "sort", 2, BuiltinSort);
  Register(symbols, "msort", 2, BuiltinMsort);
  Register(symbols, "succ", 2, BuiltinSucc);
  Register(symbols, "atom_codes", 2, BuiltinAtomCodes);
  Register(symbols, "number_codes", 2, BuiltinNumberCodes);
  Register(symbols, "atom_length", 2, BuiltinAtomLength);
  Register(symbols, "atom_concat", 3, BuiltinAtomConcat);
  Register(symbols, "clause", 2, BuiltinClause);
  Register(symbols, "table_stats", 2, BuiltinTableStats);
  Register(symbols, "wam_stats", 2, BuiltinWamStatsEngine);
  Register(symbols, "table_state", 2, BuiltinTableState);
  Register(symbols, "analyze", 1, BuiltinAnalyze);
  Register(symbols, "predicate_mode", 2, BuiltinPredicateMode);
  Register(symbols, "incremental", 1, BuiltinIncremental);
  Register(symbols, "abolish_table_call", 1, BuiltinAbolishTableCall);
  Register(symbols, "between", 3, BuiltinBetween);
  Register(symbols, "length", 2, BuiltinLength);
  Register(symbols, "assert", 1, BuiltinAssertz);
  Register(symbols, "assertz", 1, BuiltinAssertz);
  Register(symbols, "asserta", 1, BuiltinAsserta);
  Register(symbols, "retract", 1, BuiltinRetract);
  Register(symbols, "retractall", 1, BuiltinRetractAll);
  Register(symbols, "abolish", 1, BuiltinAbolish);
  Register(symbols, "write", 1, BuiltinWrite);
  Register(symbols, "print", 1, BuiltinPrint);
  Register(symbols, "writeln", 1, BuiltinWriteln);
  Register(symbols, "nl", 0, BuiltinNl);
}

void BuiltinRegistry::Register(SymbolTable* symbols, const char* name,
                               int arity, BuiltinFn fn) {
  FunctorId f = symbols->InternFunctor(symbols->InternAtom(name), arity);
  table_[f] = fn;
}

}  // namespace xsb
