#ifndef XSB_WAM_JIT_X64_H_
#define XSB_WAM_JIT_X64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xsb::wam {

// Minimal x86-64 encoder for the WAM JIT: the mov/lea/cmp/test/jcc/call/ret
// subset the template compiler in jit.cc needs, with rel32 labels. Operand
// order is Intel (destination first). All register operations are 64-bit
// unless the name says otherwise.
enum class X64Reg : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
};

enum class X64Cond : uint8_t {
  kEq = 0x4,   // je  / jz
  kNe = 0x5,   // jne / jnz
  kAe = 0x3,   // jae (unsigned >=)
  kBelow = 0x2,  // jb (unsigned <)
};

class X64Assembler {
 public:
  const std::vector<uint8_t>& code() const { return code_; }
  size_t Here() const { return code_.size(); }

  // --- Labels (rel32, resolved by Finalize) ---
  int NewLabel();
  void BindLabel(int label);
  bool Finalize();  // patches fixups; false if a label was never bound

  // --- Moves ---
  void MovRegImm64(X64Reg d, uint64_t imm);
  void MovReg32Imm32(X64Reg d, uint32_t imm);  // zero-extends into the full reg
  void MovRegReg(X64Reg d, X64Reg s);
  void MovRegMem(X64Reg d, X64Reg base, int32_t disp);
  void MovMemReg(X64Reg base, int32_t disp, X64Reg s);
  void MovMemImm32(X64Reg base, int32_t disp, int32_t imm);  // qword, sext
  // d = [base + index*8 + disp] and the store form.
  void MovRegMemIdx8(X64Reg d, X64Reg base, X64Reg index, int32_t disp = 0);
  void MovMemIdx8Reg(X64Reg base, X64Reg index, X64Reg s, int32_t disp = 0);

  // --- Arithmetic / logic ---
  void LeaRegMemIdx8(X64Reg d, X64Reg base, X64Reg index, int32_t disp = 0);
  void LeaRegScaled8(X64Reg d, X64Reg index);  // d = index*8 (no base)
  void AddRegImm32(X64Reg d, int32_t imm);
  void AddMemReg(X64Reg base, int32_t disp, X64Reg s);  // add [base+disp], s
  void IncReg(X64Reg d);
  void IncMem(X64Reg base, int32_t disp);        // inc qword [base+disp]
  void IncMemAbs(X64Reg scratch, uint64_t abs);  // mov scratch,abs; inc [it]
  void ShrRegImm8(X64Reg d, uint8_t imm);
  void ShlRegImm8(X64Reg d, uint8_t imm);
  void AndReg32Imm8(X64Reg d, uint8_t imm);
  void XorReg32(X64Reg d);  // zero the register

  // --- Compare / test ---
  void CmpRegReg(X64Reg a, X64Reg b);
  void CmpRegImm8(X64Reg a, int8_t imm);  // sign-extended
  void CmpRegMem(X64Reg a, X64Reg base, int32_t disp);
  void CmpMemIdx8Reg(X64Reg base, X64Reg index, X64Reg s);
  void TestRegReg(X64Reg a, X64Reg b);
  void TestAlImm8(uint8_t imm);  // test al, imm (deref tag check on rax)

  // --- Control flow ---
  void Jcc(X64Cond cond, int label);
  void Jmp(int label);
  void JmpReg(X64Reg r);
  void CallReg(X64Reg r);
  void Ret();

 private:
  void Byte(uint8_t b) { code_.push_back(b); }
  void Imm32(int32_t v);
  void Imm64(uint64_t v);
  void Rex(bool w, X64Reg reg, X64Reg index, X64Reg rm);
  // ModRM (+SIB) for [base + disp]; handles rsp/r12 (SIB) and rbp/r13
  // (forced disp) bases. `reg_field` is the /r operand or opcode extension.
  void Mem(uint8_t reg_field, X64Reg base, int32_t disp);
  // ModRM+SIB for [base + index*8 + disp].
  void MemIdx8(uint8_t reg_field, X64Reg base, X64Reg index, int32_t disp);

  struct Fixup {
    size_t pos;  // offset of the rel32 to patch
    int label;
  };
  std::vector<uint8_t> code_;
  std::vector<size_t> label_offsets_;  // SIZE_MAX = unbound
  std::vector<Fixup> fixups_;
};

}  // namespace xsb::wam

#endif  // XSB_WAM_JIT_X64_H_
