#include "wam/instr.h"

namespace xsb::wam {
namespace {

std::string RegName(uint32_t reg) {
  return (IsYReg(reg) ? "Y" : "X") + std::to_string(RegIndex(reg));
}

}  // namespace

std::string CompiledModule::Disassemble(const SymbolTable& symbols) const {
  auto functor_name = [&](uint32_t f) {
    return symbols.AtomName(symbols.FunctorAtom(f)) + "/" +
           std::to_string(symbols.FunctorArity(f));
  };
  auto constant_name = [&](uint32_t ix) {
    Word w = constants[ix];
    if (IsInt(w)) return std::to_string(IntValue(w));
    if (IsAtom(w)) return symbols.AtomName(AtomOf(w));
    return std::string("?");
  };

  std::string out;
  std::unordered_map<size_t, FunctorId> entry_at;
  for (const auto& [functor, pc] : entries) entry_at[pc] = functor;

  for (size_t pc = 0; pc < code.size(); ++pc) {
    auto it = entry_at.find(pc);
    if (it != entry_at.end()) {
      out += functor_name(it->second) + ":\n";
    }
    const Instr& i = code[pc];
    char line[128];
    auto emit = [&](const std::string& text) {
      std::snprintf(line, sizeof(line), "%5zu  %s\n", pc, text.c_str());
      out += line;
    };
    switch (i.op) {
      case Op::kGetVariable:
        emit("get_variable " + RegName(i.a) + ", A" + std::to_string(i.b));
        break;
      case Op::kGetValue:
        emit("get_value " + RegName(i.a) + ", A" + std::to_string(i.b));
        break;
      case Op::kGetConstant:
        emit("get_constant " + constant_name(i.a) + ", A" +
             std::to_string(i.b));
        break;
      case Op::kGetStructure:
        emit("get_structure " + functor_name(i.a) + ", A" +
             std::to_string(i.b));
        break;
      case Op::kUnifyVariable:
        emit("unify_variable " + RegName(i.a));
        break;
      case Op::kUnifyValue:
        emit("unify_value " + RegName(i.a));
        break;
      case Op::kUnifyConstant:
        emit("unify_constant " + constant_name(i.a));
        break;
      case Op::kUnifyVoid:
        emit("unify_void " + std::to_string(i.a));
        break;
      case Op::kPutVariable:
        emit("put_variable " + RegName(i.a) + ", A" + std::to_string(i.b));
        break;
      case Op::kPutValue:
        emit("put_value " + RegName(i.a) + ", A" + std::to_string(i.b));
        break;
      case Op::kPutConstant:
        emit("put_constant " + constant_name(i.a) + ", A" +
             std::to_string(i.b));
        break;
      case Op::kPutStructure:
        emit("put_structure " + functor_name(i.a) + ", A" +
             std::to_string(i.b));
        break;
      case Op::kAllocate:
        emit("allocate " + std::to_string(i.a));
        break;
      case Op::kDeallocate:
        emit("deallocate");
        break;
      case Op::kCall:
        emit("call " + functor_name(i.b));
        break;
      case Op::kProceed:
        emit("proceed");
        break;
      case Op::kTryMeElse:
        emit("try_me_else " + std::to_string(i.a));
        break;
      case Op::kRetryMeElse:
        emit("retry_me_else " + std::to_string(i.a));
        break;
      case Op::kTrustMe:
        emit("trust_me");
        break;
      case Op::kSwitchOnTerm:
        emit("switch_on_term var=" + std::to_string(i.a) +
             " const=" + std::to_string(i.b) +
             " struct=" + std::to_string(i.c));
        break;
      case Op::kSwitchOnConstant:
        emit("switch_on_constant table#" + std::to_string(i.a));
        break;
      case Op::kTry:
        emit("try " + std::to_string(i.a));
        break;
      case Op::kRetry:
        emit("retry " + std::to_string(i.a));
        break;
      case Op::kTrust:
        emit("trust " + std::to_string(i.a));
        break;
      case Op::kBuiltin:
        emit("builtin #" + std::to_string(i.a) + "/" + std::to_string(i.b));
        break;
      case Op::kSolution:
        emit("solution");
        break;
      case Op::kHalt:
        emit("halt");
        break;
      case Op::kCheckMode:
        emit("check_mode spec#" + std::to_string(i.a) + "/" +
             std::to_string(i.b) + ", generic=" + std::to_string(i.c));
        break;
      case Op::kGetConstantNv:
        emit("get_constant_nv " + constant_name(i.a) + ", A" +
             std::to_string(i.b));
        break;
      case Op::kGetStructureRd:
        emit("get_structure_rd " + functor_name(i.a) + ", A" +
             std::to_string(i.b));
        break;
      case Op::kUnifyConstantRd:
        emit("unify_constant_rd " + constant_name(i.a));
        break;
      case Op::kSwitchOnStructure:
        emit("switch_on_structure table#" + std::to_string(i.a) +
             " list=" + std::to_string(i.c));
        break;
    }
  }
  return out;
}

}  // namespace xsb::wam
