#include "wam/emulator.h"

#include <mutex>

#include "db/program.h"

namespace xsb::wam {

namespace {
constexpr uint32_t kFailTarget = 0xffffffffu;

std::mutex& GlobalStatsMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}
WamStats& GlobalStatsTotals() {
  static WamStats* t = new WamStats;
  return *t;
}
}  // namespace

WamStats GlobalWamStats() {
  std::lock_guard<std::mutex> lock(GlobalStatsMutex());
  return GlobalStatsTotals();
}

Emulator::Emulator(TermStore* store, const CompiledModule* module,
                   EmulatorOptions options)
    : store_(store), module_(module) {
  if (options.jit_threshold >= 0 && !module->pred_ranges.empty() &&
      Jit::HostSupported()) {
    jit_ = std::make_unique<Jit>(this, module, store, options.jit_threshold);
    if (!jit_->available()) jit_.reset();
  }
}

Emulator::~Emulator() { FlushGlobalStats(); }

void Emulator::FlushGlobalStats() {
  std::lock_guard<std::mutex> lock(GlobalStatsMutex());
  WamStats& t = GlobalStatsTotals();
  t.instructions += stats_.instructions - flushed_.instructions;
  t.choice_points += stats_.choice_points - flushed_.choice_points;
  t.mode_checks += stats_.mode_checks - flushed_.mode_checks;
  t.mode_fallbacks += stats_.mode_fallbacks - flushed_.mode_fallbacks;
  t.jit_compiled_preds +=
      stats_.jit_compiled_preds - flushed_.jit_compiled_preds;
  t.jit_entries += stats_.jit_entries - flushed_.jit_entries;
  t.jit_bailouts += stats_.jit_bailouts - flushed_.jit_bailouts;
  t.switch_structure_hits +=
      stats_.switch_structure_hits - flushed_.switch_structure_hits;
  t.switch_miss_linear +=
      stats_.switch_miss_linear - flushed_.switch_miss_linear;
  flushed_ = stats_;
}

bool Emulator::GroundForMode(Word w) {
  std::vector<Word>& work = ground_work_;  // reused scratch space
  work.clear();
  work.push_back(w);
  while (!work.empty()) {
    Word v = store_->Deref(work.back());
    work.pop_back();
    if (IsRef(v)) return false;
    if (IsStruct(v)) {
      int n = store_->StructArity(v);
      for (int k = 0; k < n; ++k) work.push_back(store_->Arg(v, k));
    }
  }
  return true;
}

bool Emulator::BuiltinWamStats() {
  SymbolTable* symbols = store_->symbols();
  WamStats snap = stats_;
  AtomId dash = symbols->InternAtom("-");
  auto pair = [&](const char* name, uint64_t v) {
    return store_->MakeStruct2(dash, AtomCell(symbols->InternAtom(name)),
                               IntCell(static_cast<int64_t>(v)));
  };
  std::vector<Word> items = {
      pair("instructions", snap.instructions),
      pair("choice_points", snap.choice_points),
      pair("mode_checks", snap.mode_checks),
      pair("mode_fallbacks", snap.mode_fallbacks),
      pair("jit_compiled_preds", snap.jit_compiled_preds),
      pair("jit_entries", snap.jit_entries),
      pair("jit_bailouts", snap.jit_bailouts),
      pair("switch_structure_hits", snap.switch_structure_hits),
      pair("switch_miss_linear", snap.switch_miss_linear),
  };
  Word list = store_->MakeList(items, AtomCell(symbols->nil()));
  return store_->Unify(x_[1], AtomCell(symbols->InternAtom("all"))) &&
         store_->Unify(x_[2], list);
}

bool Emulator::Backtrack(size_t* pc) {
  if (cps_size_ == 0) return false;
  Choice& cp = cps_[cps_size_ - 1];
  store_->UndoTrail(cp.trail_mark);
  store_->TruncateHeap(cp.heap_mark);
  frames_size_ = cp.frames_size;
  cur_frame_ = cp.frame;
  if (x_.size() < cp.args.size()) x_.resize(cp.args.size(), 0);
  for (size_t i = 0; i < cp.args.size(); ++i) x_[i] = cp.args[i];
  *pc = cp.alt_pc;
  return true;
}

Result<int64_t> Emulator::Eval(Word expression) {
  Word e = store_->Deref(expression);
  if (IsInt(e)) return IntValue(e);
  if (IsRef(e)) return InstantiationError("wam: unbound arithmetic");
  if (!IsStruct(e)) return TypeError("wam: bad arithmetic term");
  SymbolTable* symbols = store_->symbols();
  FunctorId f = store_->StructFunctor(e);
  const std::string& name = symbols->AtomName(symbols->FunctorAtom(f));
  int arity = symbols->FunctorArity(f);
  if (arity == 1) {
    Result<int64_t> a = Eval(store_->Arg(e, 0));
    if (!a.ok()) return a;
    if (name == "-") return -a.value();
    if (name == "+") return a.value();
    if (name == "abs") return a.value() < 0 ? -a.value() : a.value();
    return TypeError("wam: unknown arithmetic " + name + "/1");
  }
  if (arity == 2) {
    Result<int64_t> a = Eval(store_->Arg(e, 0));
    if (!a.ok()) return a;
    Result<int64_t> b = Eval(store_->Arg(e, 1));
    if (!b.ok()) return b;
    int64_t x = a.value(), y = b.value();
    if (name == "+") return x + y;
    if (name == "-") return x - y;
    if (name == "*") return x * y;
    if (name == "//" || name == "/") {
      if (y == 0) return TypeError("wam: zero divisor");
      return x / y;
    }
    if (name == "mod") {
      if (y == 0) return TypeError("wam: zero divisor");
      int64_t m = x % y;
      if (m != 0 && ((m < 0) != (y < 0))) m += y;
      return m;
    }
    return TypeError("wam: unknown arithmetic " + name + "/2");
  }
  return TypeError("wam: bad arithmetic term");
}

Status Emulator::Solve(Word goal, const WamSolutionFn& on_solution) {
  Status status = SolveImpl(goal, on_solution);
  FlushGlobalStats();
  return status;
}

Status Emulator::SolveImpl(Word goal, const WamSolutionFn& on_solution) {
  goal = store_->Deref(goal);
  std::optional<FunctorId> functor = Program::CallableFunctor(*store_, goal);
  if (!functor.has_value()) return TypeError("wam: goal is not callable");
  auto entry = module_->entries.find(*functor);
  if (entry == module_->entries.end()) {
    return InvalidError("wam: predicate not compiled in this module");
  }

  // Reset machine state. The JIT bakes X-register slots into native code, so
  // keep x_ at least as large as any compiled predicate needs.
  size_t min_x = jit_ != nullptr ? std::max<size_t>(16, jit_->max_xreg_plus1())
                                 : 16;
  x_.assign(min_x, 0);
  frames_size_ = 0;  // storage kept: see the high-water-mark stack comment
  cur_frame_ = 0;
  cps_size_ = 0;
  size_t base_trail = store_->TrailMark();
  size_t base_heap = store_->HeapMark();

  int arity = IsStruct(goal) ? store_->StructArity(goal) : 0;
  if (x_.size() <= static_cast<size_t>(arity)) x_.resize(arity + 1, 0);
  for (int i = 0; i < arity; ++i) {
    x_[static_cast<size_t>(i) + 1] = store_->Arg(goal, i);
  }

  size_t pc = entry->second;
  size_t cont = 0;  // pc 0 is the kSolution epilogue
  bool write_mode = false;
  uint64_t s = 0;  // heap cursor inside a structure

  const std::vector<Instr>& code = module_->code;
  Status status = Status::Ok();
  bool running = true;
  bool stopped = false;  // callback asked to keep the current solution

  auto fail = [&]() {
    if (!Backtrack(&pc)) {
      running = false;
    }
  };

  Jit* jit = jit_.get();

  while (running) {
    if (jit != nullptr) {
      uint8_t jf = jit->FlagsAt(pc);
      if (jf != 0) {
        if ((jf & Jit::kFlagEntry) != 0) {
          jit->OnEntry(pc);
          jf = jit->FlagsAt(pc);  // compilation may have set kFlagNative
        }
        if ((jf & Jit::kFlagNative) != 0) {
          uint64_t next = jit->Execute(pc, &cont, &s, &write_mode);
          if (next == Jit::kFailStop) {
            running = false;
          } else {
            pc = next;
          }
          continue;
        }
      }
    }
    const Instr& instr = code[pc];
    ++stats_.instructions;
    switch (instr.op) {
      case Op::kGetVariable:
        Reg(instr.a) = x_[instr.b];
        ++pc;
        break;
      case Op::kGetValue:
        if (store_->Unify(Reg(instr.a), x_[instr.b])) {
          ++pc;
        } else {
          fail();
        }
        break;
      case Op::kGetConstant: {
        Word c = module_->constants[instr.a];
        Word v = store_->Deref(x_[instr.b]);
        if (IsRef(v)) {
          store_->Bind(v, c);
          ++pc;
        } else if (v == c) {
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kGetStructure: {
        Word v = store_->Deref(x_[instr.b]);
        if (IsRef(v)) {
          Word structure = store_->MakeStructUninit(instr.a);
          store_->Bind(v, structure);
          s = PayloadOf(structure) + 1;
          write_mode = true;
          ++pc;
        } else if (IsStruct(v) && store_->StructFunctor(v) == instr.a) {
          s = PayloadOf(v) + 1;
          write_mode = false;
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kUnifyVariable:
        if (write_mode) {
          Reg(instr.a) = RefCell(s);  // the fresh arg cell itself
        } else {
          Reg(instr.a) = store_->At(s);
        }
        ++s;
        ++pc;
        break;
      case Op::kUnifyValue:
        if (write_mode) {
          store_->At(s) = Reg(instr.a);
          ++s;
          ++pc;
        } else if (store_->Unify(Reg(instr.a), RefCell(s))) {
          ++s;
          ++pc;
        } else {
          fail();
        }
        break;
      case Op::kUnifyConstant: {
        Word c = module_->constants[instr.a];
        if (write_mode) {
          store_->At(s) = c;
          ++s;
          ++pc;
        } else {
          Word v = store_->Deref(store_->At(s));
          if (IsRef(v)) {
            store_->Bind(v, c);
            ++s;
            ++pc;
          } else if (v == c) {
            ++s;
            ++pc;
          } else {
            fail();
          }
        }
        break;
      }
      case Op::kUnifyVoid:
        s += instr.a;
        ++pc;
        break;
      case Op::kPutVariable: {
        Word v = store_->MakeVar();
        Reg(instr.a) = v;
        x_[instr.b] = v;
        ++pc;
        break;
      }
      case Op::kPutValue:
        x_[instr.b] = Reg(instr.a);
        ++pc;
        break;
      case Op::kPutConstant:
        x_[instr.b] = module_->constants[instr.a];
        ++pc;
        break;
      case Op::kPutStructure: {
        Word structure = store_->MakeStructUninit(instr.a);
        if (x_.size() <= instr.b) x_.resize(instr.b + 1, 0);
        Reg(instr.b) = structure;
        s = PayloadOf(structure) + 1;
        write_mode = true;
        ++pc;
        break;
      }
      case Op::kAllocate:
        AllocateFrame(instr.a, cont);
        ++pc;
        break;
      case Op::kDeallocate:
        cont = DeallocateFrame();
        ++pc;
        break;
      case Op::kCall:
        cont = pc + 1;
        pc = instr.a;
        break;
      case Op::kProceed:
        pc = cont;
        break;
      case Op::kTryMeElse:
      case Op::kTry: {
        bool me = instr.op == Op::kTryMeElse;
        // try_me_else only heads unindexed chains: entering one means this
        // call never saw a switch.
        if (me) ++stats_.switch_miss_linear;
        PushChoice(me ? instr.a : pc + 1, instr.b, cont);
        pc = me ? pc + 1 : instr.a;
        break;
      }
      case Op::kRetryMeElse:
        cont = RetryTop(instr.a);
        ++pc;
        break;
      case Op::kRetry:
        cont = RetryTop(pc + 1);
        pc = instr.a;
        break;
      case Op::kTrustMe:
        cont = TrustTop();
        ++pc;
        break;
      case Op::kTrust:
        cont = TrustTop();
        pc = instr.a;
        break;
      case Op::kSwitchOnTerm: {
        Word v = store_->Deref(x_[1]);
        uint32_t target;
        if (IsRef(v)) {
          target = instr.a;
          // An unbound first argument falls through to the full linear
          // chain — the dispatch the index could not help.
          if (target != kFailTarget) ++stats_.switch_miss_linear;
        } else if (IsAtom(v) || IsInt(v)) {
          target = instr.b;
        } else {
          target = instr.c;
        }
        if (target == kFailTarget) {
          fail();
        } else {
          pc = target;
        }
        break;
      }
      case Op::kSwitchOnConstant: {
        const SwitchTable& table = module_->switch_tables[instr.a];
        uint32_t target = table.Lookup(store_->Deref(x_[1]));
        if (target == SwitchTable::kMiss) {
          fail();
        } else {
          pc = target;
        }
        break;
      }
      case Op::kSwitchOnStructure: {
        // Dispatch on the functor/arity key of A1; './2' takes the one-
        // compare list fast path ahead of the table.
        Word v = store_->Deref(x_[1]);
        if (!IsStruct(v)) {
          fail();
          break;
        }
        if (instr.c != kFailTarget &&
            store_->StructFunctor(v) == static_cast<FunctorId>(instr.b)) {
          ++stats_.switch_structure_hits;
          pc = instr.c;
          break;
        }
        const SwitchTable& table = module_->switch_tables[instr.a];
        uint32_t target = table.Lookup(FunctorCell(store_->StructFunctor(v)));
        if (target == SwitchTable::kMiss) {
          fail();
        } else {
          ++stats_.switch_structure_hits;
          pc = target;
        }
        break;
      }
      case Op::kBuiltin: {
        BuiltinOp op = static_cast<BuiltinOp>(instr.a);
        bool ok = true;
        switch (op) {
          case BuiltinOp::kTrue:
            break;
          case BuiltinOp::kFail:
            ok = false;
            break;
          case BuiltinOp::kUnify:
            ok = store_->Unify(x_[1], x_[2]);
            break;
          case BuiltinOp::kWamStats:
            ok = BuiltinWamStats();
            break;
          case BuiltinOp::kIs: {
            Result<int64_t> v = Eval(x_[2]);
            if (!v.ok()) return v.status();
            ok = store_->Unify(x_[1], IntCell(v.value()));
            break;
          }
          default: {
            Result<int64_t> a = Eval(x_[1]);
            if (!a.ok()) return a.status();
            Result<int64_t> b = Eval(x_[2]);
            if (!b.ok()) return b.status();
            switch (op) {
              case BuiltinOp::kLess:
                ok = a.value() < b.value();
                break;
              case BuiltinOp::kLessEq:
                ok = a.value() <= b.value();
                break;
              case BuiltinOp::kGreater:
                ok = a.value() > b.value();
                break;
              case BuiltinOp::kGreaterEq:
                ok = a.value() >= b.value();
                break;
              case BuiltinOp::kArithEq:
                ok = a.value() == b.value();
                break;
              case BuiltinOp::kArithNeq:
                ok = a.value() != b.value();
                break;
              default:
                return InvalidError("wam: bad builtin");
            }
            break;
          }
        }
        if (ok) {
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kSolution: {
        WamAction action = on_solution();
        if (action == WamAction::kStop) {
          stopped = true;
          running = false;
          break;
        }
        fail();
        break;
      }
      case Op::kHalt:
        running = false;
        break;
      case Op::kCheckMode: {
        // Verify the actual arguments against the inferred mode spec; on any
        // mismatch fall back to the generic copy of the predicate (the
        // analysis is a verified hint, never trusted).
        ++stats_.mode_checks;
        const std::vector<uint8_t>& spec = module_->mode_specs[instr.a];
        bool ok = true;
        for (uint32_t i = 0; i < instr.b && ok; ++i) {
          uint8_t m = spec[i];
          if (m == kModeNonvar) {
            ok = !IsRef(store_->Deref(x_[i + 1]));
          } else if (m == kModeGround) {
            ok = GroundForMode(x_[i + 1]);
          }
        }
        if (ok) {
          ++pc;
        } else {
          ++stats_.mode_fallbacks;
          pc = instr.c;
        }
        break;
      }
      case Op::kGetConstantNv: {
        // Argument proven nonvar: compare only, no bind branch.
        Word v = store_->Deref(x_[instr.b]);
        if (v == module_->constants[instr.a]) {
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kGetStructureRd: {
        // Argument proven nonvar: read mode only, no write-mode branch.
        Word v = store_->Deref(x_[instr.b]);
        if (IsStruct(v) && store_->StructFunctor(v) == instr.a) {
          s = PayloadOf(v) + 1;
          write_mode = false;
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kUnifyConstantRd: {
        // Inside a ground structure: the argument cell cannot be unbound.
        Word v = store_->Deref(store_->At(s));
        if (v == module_->constants[instr.a]) {
          ++s;
          ++pc;
        } else {
          fail();
        }
        break;
      }
    }
  }

  // Keep the last solution's bindings if the caller stopped; otherwise the
  // search is exhausted and everything is unwound to the entry marks.
  if (!stopped && status.ok()) {
    store_->UndoTrail(base_trail);
    store_->TruncateHeap(base_heap);
  }
  return status;
}

}  // namespace xsb::wam
