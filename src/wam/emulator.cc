#include "wam/emulator.h"

#include "db/program.h"

namespace xsb::wam {

namespace {
constexpr uint32_t kFailTarget = 0xffffffffu;
}  // namespace

bool Emulator::Backtrack(size_t* pc) {
  if (cps_.empty()) return false;
  Choice& cp = cps_.back();
  store_->UndoTrail(cp.trail_mark);
  store_->TruncateHeap(cp.heap_mark);
  frames_.resize(cp.frames_size);
  cur_frame_ = cp.frame;
  if (x_.size() < cp.args.size()) x_.resize(cp.args.size(), 0);
  for (size_t i = 0; i < cp.args.size(); ++i) x_[i] = cp.args[i];
  *pc = cp.alt_pc;
  return true;
}

Result<int64_t> Emulator::Eval(Word expression) {
  Word e = store_->Deref(expression);
  if (IsInt(e)) return IntValue(e);
  if (IsRef(e)) return InstantiationError("wam: unbound arithmetic");
  if (!IsStruct(e)) return TypeError("wam: bad arithmetic term");
  SymbolTable* symbols = store_->symbols();
  FunctorId f = store_->StructFunctor(e);
  const std::string& name = symbols->AtomName(symbols->FunctorAtom(f));
  int arity = symbols->FunctorArity(f);
  if (arity == 1) {
    Result<int64_t> a = Eval(store_->Arg(e, 0));
    if (!a.ok()) return a;
    if (name == "-") return -a.value();
    if (name == "+") return a.value();
    if (name == "abs") return a.value() < 0 ? -a.value() : a.value();
    return TypeError("wam: unknown arithmetic " + name + "/1");
  }
  if (arity == 2) {
    Result<int64_t> a = Eval(store_->Arg(e, 0));
    if (!a.ok()) return a;
    Result<int64_t> b = Eval(store_->Arg(e, 1));
    if (!b.ok()) return b;
    int64_t x = a.value(), y = b.value();
    if (name == "+") return x + y;
    if (name == "-") return x - y;
    if (name == "*") return x * y;
    if (name == "//" || name == "/") {
      if (y == 0) return TypeError("wam: zero divisor");
      return x / y;
    }
    if (name == "mod") {
      if (y == 0) return TypeError("wam: zero divisor");
      int64_t m = x % y;
      if (m != 0 && ((m < 0) != (y < 0))) m += y;
      return m;
    }
    return TypeError("wam: unknown arithmetic " + name + "/2");
  }
  return TypeError("wam: bad arithmetic term");
}

Status Emulator::Solve(Word goal, const WamSolutionFn& on_solution) {
  goal = store_->Deref(goal);
  std::optional<FunctorId> functor = Program::CallableFunctor(*store_, goal);
  if (!functor.has_value()) return TypeError("wam: goal is not callable");
  auto entry = module_->entries.find(*functor);
  if (entry == module_->entries.end()) {
    return InvalidError("wam: predicate not compiled in this module");
  }

  // Reset machine state.
  x_.assign(16, 0);
  frames_.clear();
  cur_frame_ = 0;
  cps_.clear();
  size_t base_trail = store_->TrailMark();
  size_t base_heap = store_->HeapMark();

  int arity = IsStruct(goal) ? store_->StructArity(goal) : 0;
  if (x_.size() <= static_cast<size_t>(arity)) x_.resize(arity + 1, 0);
  for (int i = 0; i < arity; ++i) {
    x_[static_cast<size_t>(i) + 1] = store_->Arg(goal, i);
  }

  size_t pc = entry->second;
  size_t cont = 0;  // pc 0 is the kSolution epilogue
  bool write_mode = false;
  uint64_t s = 0;  // heap cursor inside a structure

  const std::vector<Instr>& code = module_->code;
  Status status = Status::Ok();
  bool running = true;
  bool stopped = false;  // callback asked to keep the current solution

  auto fail = [&]() {
    if (!Backtrack(&pc)) {
      running = false;
    }
  };

  while (running) {
    const Instr& instr = code[pc];
    ++stats_.instructions;
    switch (instr.op) {
      case Op::kGetVariable:
        Reg(instr.a) = x_[instr.b];
        ++pc;
        break;
      case Op::kGetValue:
        if (store_->Unify(Reg(instr.a), x_[instr.b])) {
          ++pc;
        } else {
          fail();
        }
        break;
      case Op::kGetConstant: {
        Word c = module_->constants[instr.a];
        Word v = store_->Deref(x_[instr.b]);
        if (IsRef(v)) {
          store_->Bind(v, c);
          ++pc;
        } else if (v == c) {
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kGetStructure: {
        Word v = store_->Deref(x_[instr.b]);
        if (IsRef(v)) {
          Word structure = store_->MakeStructUninit(instr.a);
          store_->Bind(v, structure);
          s = PayloadOf(structure) + 1;
          write_mode = true;
          ++pc;
        } else if (IsStruct(v) && store_->StructFunctor(v) == instr.a) {
          s = PayloadOf(v) + 1;
          write_mode = false;
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kUnifyVariable:
        if (write_mode) {
          Reg(instr.a) = RefCell(s);  // the fresh arg cell itself
        } else {
          Reg(instr.a) = store_->At(s);
        }
        ++s;
        ++pc;
        break;
      case Op::kUnifyValue:
        if (write_mode) {
          store_->At(s) = Reg(instr.a);
          ++s;
          ++pc;
        } else if (store_->Unify(Reg(instr.a), RefCell(s))) {
          ++s;
          ++pc;
        } else {
          fail();
        }
        break;
      case Op::kUnifyConstant: {
        Word c = module_->constants[instr.a];
        if (write_mode) {
          store_->At(s) = c;
          ++s;
          ++pc;
        } else {
          Word v = store_->Deref(store_->At(s));
          if (IsRef(v)) {
            store_->Bind(v, c);
            ++s;
            ++pc;
          } else if (v == c) {
            ++s;
            ++pc;
          } else {
            fail();
          }
        }
        break;
      }
      case Op::kUnifyVoid:
        s += instr.a;
        ++pc;
        break;
      case Op::kPutVariable: {
        Word v = store_->MakeVar();
        Reg(instr.a) = v;
        x_[instr.b] = v;
        ++pc;
        break;
      }
      case Op::kPutValue:
        x_[instr.b] = Reg(instr.a);
        ++pc;
        break;
      case Op::kPutConstant:
        x_[instr.b] = module_->constants[instr.a];
        ++pc;
        break;
      case Op::kPutStructure: {
        Word structure = store_->MakeStructUninit(instr.a);
        if (x_.size() <= instr.b) x_.resize(instr.b + 1, 0);
        Reg(instr.b) = structure;
        s = PayloadOf(structure) + 1;
        write_mode = true;
        ++pc;
        break;
      }
      case Op::kAllocate: {
        Frame frame;
        frame.cont_pc = cont;
        frame.prev_frame = cur_frame_;
        frame.y.assign(instr.a, 0);
        frames_.push_back(std::move(frame));
        cur_frame_ = frames_.size();
        ++pc;
        break;
      }
      case Op::kDeallocate: {
        // The frame's storage survives (a choice point below may still
        // need it); only the E register moves, as in the real WAM.
        Frame& frame = frames_[cur_frame_ - 1];
        cont = frame.cont_pc;
        cur_frame_ = frame.prev_frame;
        ++pc;
        break;
      }
      case Op::kCall:
        cont = pc + 1;
        pc = instr.a;
        break;
      case Op::kProceed:
        pc = cont;
        break;
      case Op::kTryMeElse:
      case Op::kTry: {
        Choice cp;
        cp.alt_pc = instr.op == Op::kTryMeElse ? instr.a : pc + 1;
        cp.cont_pc = cont;
        cp.frame = cur_frame_;
        cp.frames_size = frames_.size();
        cp.trail_mark = store_->TrailMark();
        cp.heap_mark = store_->HeapMark();
        cp.args.assign(x_.begin(),
                       x_.begin() + std::min<size_t>(x_.size(), instr.b + 1));
        cps_.push_back(std::move(cp));
        ++stats_.choice_points;
        pc = instr.op == Op::kTryMeElse ? pc + 1 : instr.a;
        break;
      }
      case Op::kRetryMeElse:
        cont = cps_.back().cont_pc;
        cps_.back().alt_pc = instr.a;
        ++pc;
        break;
      case Op::kRetry:
        cont = cps_.back().cont_pc;
        cps_.back().alt_pc = pc + 1;
        pc = instr.a;
        break;
      case Op::kTrustMe:
        cont = cps_.back().cont_pc;
        cps_.pop_back();
        ++pc;
        break;
      case Op::kTrust:
        cont = cps_.back().cont_pc;
        cps_.pop_back();
        pc = instr.a;
        break;
      case Op::kSwitchOnTerm: {
        Word v = store_->Deref(x_[1]);
        uint32_t target;
        if (IsRef(v)) {
          target = instr.a;
        } else if (IsAtom(v) || IsInt(v)) {
          target = instr.b;
        } else {
          target = instr.c;
        }
        if (target == kFailTarget) {
          fail();
        } else {
          pc = target;
        }
        break;
      }
      case Op::kSwitchOnConstant: {
        const auto& table = module_->switch_tables[instr.a];
        Word key = store_->Deref(x_[1]);
        auto it = table.find(key);
        if (it == table.end()) {
          fail();
        } else {
          pc = it->second;
        }
        break;
      }
      case Op::kBuiltin: {
        BuiltinOp op = static_cast<BuiltinOp>(instr.a);
        bool ok = true;
        switch (op) {
          case BuiltinOp::kTrue:
            break;
          case BuiltinOp::kFail:
            ok = false;
            break;
          case BuiltinOp::kUnify:
            ok = store_->Unify(x_[1], x_[2]);
            break;
          case BuiltinOp::kIs: {
            Result<int64_t> v = Eval(x_[2]);
            if (!v.ok()) return v.status();
            ok = store_->Unify(x_[1], IntCell(v.value()));
            break;
          }
          default: {
            Result<int64_t> a = Eval(x_[1]);
            if (!a.ok()) return a.status();
            Result<int64_t> b = Eval(x_[2]);
            if (!b.ok()) return b.status();
            switch (op) {
              case BuiltinOp::kLess:
                ok = a.value() < b.value();
                break;
              case BuiltinOp::kLessEq:
                ok = a.value() <= b.value();
                break;
              case BuiltinOp::kGreater:
                ok = a.value() > b.value();
                break;
              case BuiltinOp::kGreaterEq:
                ok = a.value() >= b.value();
                break;
              case BuiltinOp::kArithEq:
                ok = a.value() == b.value();
                break;
              case BuiltinOp::kArithNeq:
                ok = a.value() != b.value();
                break;
              default:
                return InvalidError("wam: bad builtin");
            }
            break;
          }
        }
        if (ok) {
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kSolution: {
        WamAction action = on_solution();
        if (action == WamAction::kStop) {
          stopped = true;
          running = false;
          break;
        }
        fail();
        break;
      }
      case Op::kHalt:
        running = false;
        break;
      case Op::kCheckMode: {
        // Verify the actual arguments against the inferred mode spec; on any
        // mismatch fall back to the generic copy of the predicate (the
        // analysis is a verified hint, never trusted).
        ++stats_.mode_checks;
        const std::vector<uint8_t>& spec = module_->mode_specs[instr.a];
        auto is_ground = [&](Word w) {
          std::vector<Word>& work = ground_work_;  // reused scratch space
          work.clear();
          work.push_back(w);
          while (!work.empty()) {
            Word v = store_->Deref(work.back());
            work.pop_back();
            if (IsRef(v)) return false;
            if (IsStruct(v)) {
              int n = store_->StructArity(v);
              for (int k = 0; k < n; ++k) work.push_back(store_->Arg(v, k));
            }
          }
          return true;
        };
        bool ok = true;
        for (uint32_t i = 0; i < instr.b && ok; ++i) {
          uint8_t m = spec[i];
          if (m == kModeNonvar) {
            ok = !IsRef(store_->Deref(x_[i + 1]));
          } else if (m == kModeGround) {
            ok = is_ground(x_[i + 1]);
          }
        }
        if (ok) {
          ++pc;
        } else {
          ++stats_.mode_fallbacks;
          pc = instr.c;
        }
        break;
      }
      case Op::kGetConstantNv: {
        // Argument proven nonvar: compare only, no bind branch.
        Word v = store_->Deref(x_[instr.b]);
        if (v == module_->constants[instr.a]) {
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kGetStructureRd: {
        // Argument proven nonvar: read mode only, no write-mode branch.
        Word v = store_->Deref(x_[instr.b]);
        if (IsStruct(v) && store_->StructFunctor(v) == instr.a) {
          s = PayloadOf(v) + 1;
          write_mode = false;
          ++pc;
        } else {
          fail();
        }
        break;
      }
      case Op::kUnifyConstantRd: {
        // Inside a ground structure: the argument cell cannot be unbound.
        Word v = store_->Deref(store_->At(s));
        if (v == module_->constants[instr.a]) {
          ++s;
          ++pc;
        } else {
          fail();
        }
        break;
      }
    }
  }

  // Keep the last solution's bindings if the caller stopped; otherwise the
  // search is exhausted and everything is unwound to the entry marks.
  if (!stopped && status.ok()) {
    store_->UndoTrail(base_trail);
    store_->TruncateHeap(base_heap);
  }
  return status;
}

}  // namespace xsb::wam
