#include "wam/jit.h"

#include <cstddef>
#include <cstdlib>

#include "db/program.h"
#include "wam/emulator.h"
#include "wam/jit_x64.h"

// Native-tier support: x86-64 with mmap-based executable pages. Everything
// else compiles to a stub Jit that never reports HostSupported().
#if defined(__x86_64__) && defined(XSB_EXEC_ARENA_HAVE_MMAP)
#define XSB_WAM_JIT_NATIVE 1
#else
#define XSB_WAM_JIT_NATIVE 0
#endif

namespace xsb::wam {

namespace {
constexpr uint32_t kFailTarget = 0xffffffffu;
}  // namespace

int64_t DefaultJitThreshold() {
  const char* env = std::getenv("XSB_JIT_THRESHOLD");
  if (env == nullptr || *env == '\0') return kDefaultJitThreshold;
  return std::strtoll(env, nullptr, 10);
}

#if XSB_WAM_JIT_NATIVE

// Generated-code register map (all callee-saved so helper calls preserve
// them): rbx = JitContext*, r12 = x_base, r13 = S, r14 = retired-instruction
// accumulator, r15 = write_mode, rbp = heap data pointer (generated code has
// no frames, so the frame register is free; reloaded after every helper call
// because an allocating helper may grow and move the heap buffer).
// Everything else is scratch between WAM instructions. The bytecode `cont`
// register lives in ctx->cont (memory) so helpers can read and write it.
static_assert(offsetof(JitContext, x_base) == 0, "baked into generated code");
static_assert(offsetof(JitContext, y_base) == 8, "baked into generated code");
static_assert(offsetof(JitContext, cont) == 16, "baked into generated code");
static_assert(offsetof(JitContext, s) == 24, "baked into generated code");
static_assert(offsetof(JitContext, write_mode) == 32,
              "baked into generated code");
static_assert(offsetof(JitContext, jit) == 40, "baked into generated code");
static_assert(offsetof(JitContext, heap_base) == 48,
              "baked into generated code");

// RawBuf field offsets the inline trail fast path depends on.
static_assert(offsetof(RawBuf<Word>, data) == 0, "baked into generated code");
static_assert(offsetof(RawBuf<Word>, len) == 8, "baked into generated code");
static_assert(offsetof(RawBuf<Word>, cap) == 16, "baked into generated code");

extern "C" uint64_t xsb_jit_enter(JitContext* ctx, const void* entry);
extern "C" void xsb_jit_exit_thunk();

// Entry: save callee-saved registers, load the machine registers from the
// context, and jump into generated code. The `sub $8` keeps rsp 16-byte
// aligned at every helper call site inside generated code. r14 is the
// retired-instruction accumulator: counting in a register instead of a
// memory inc per instruction avoids a store-forwarding dependency chain on
// stats_.instructions (the interpreter's ++ gets the same treatment from
// the C++ optimizer); generated code flushes it at the exit funnel. Exit
// (reached by an indirect jump from generated code, never a call): spill
// S/write_mode back and return to xsb_jit_enter's caller with rax = resume
// pc.
asm(".text\n"
    ".globl xsb_jit_enter\n"
    "xsb_jit_enter:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  subq $8, %rsp\n"
    "  movq %rdi, %rbx\n"
    "  movq 0(%rbx), %r12\n"
    "  movq 24(%rbx), %r13\n"
    "  movq 32(%rbx), %r15\n"
    "  movq 48(%rbx), %rbp\n"
    "  xorl %r14d, %r14d\n"
    "  jmpq *%rsi\n"
    ".globl xsb_jit_exit_thunk\n"
    "xsb_jit_exit_thunk:\n"
    "  movq %r13, 24(%rbx)\n"
    "  movq %r15, 32(%rbx)\n"
    "  addq $8, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n");

// --- Runtime helpers -------------------------------------------------------
// Called from generated code with the SysV ABI; each is a thin wrapper over
// the exact routine the interpreter switch uses, so both tiers share
// semantics. Helpers that move or grow emulator-owned storage refresh the
// context bases; generated code reloads r12 afterwards.

extern "C" uint64_t xsb_jit_backtrack_rt(JitContext* ctx) {
  Jit* jit = ctx->jit;
  size_t pc = 0;
  if (!jit->emu()->Backtrack(&pc)) return Jit::kFailStop;
  jit->RefreshBases();
  return pc;
}

extern "C" void xsb_jit_bind_rt(JitContext* ctx, uint64_t ref,
                                uint64_t value) {
  ctx->jit->store()->Bind(ref, value);
}

extern "C" uint64_t xsb_jit_make_var_rt(JitContext* ctx) {
  return ctx->jit->store()->MakeVar();
}

extern "C" uint64_t xsb_jit_put_struct_rt(JitContext* ctx, uint64_t functor) {
  return ctx->jit->store()->MakeStructUninit(static_cast<FunctorId>(functor));
}

// get_structure against an unbound argument: build, bind, return the new S.
extern "C" uint64_t xsb_jit_get_struct_write_rt(JitContext* ctx,
                                                uint64_t functor,
                                                uint64_t ref) {
  TermStore* store = ctx->jit->store();
  Word built = store->MakeStructUninit(static_cast<FunctorId>(functor));
  store->Bind(ref, built);
  return PayloadOf(built) + 1;
}

extern "C" uint64_t xsb_jit_unify_rt(JitContext* ctx, uint64_t a, uint64_t b) {
  return ctx->jit->store()->Unify(a, b) ? 1 : 0;
}

extern "C" void xsb_jit_allocate_rt(JitContext* ctx, uint64_t n) {
  Jit* jit = ctx->jit;
  jit->emu()->AllocateFrame(static_cast<uint32_t>(n), ctx->cont);
  jit->RefreshBases();
}

extern "C" void xsb_jit_deallocate_rt(JitContext* ctx) {
  Jit* jit = ctx->jit;
  ctx->cont = jit->emu()->DeallocateFrame();
  jit->RefreshBases();
}

extern "C" void xsb_jit_try_rt(JitContext* ctx, uint64_t alt, uint64_t arity) {
  ctx->jit->emu()->PushChoice(alt, static_cast<uint32_t>(arity), ctx->cont);
}

extern "C" void xsb_jit_retry_rt(JitContext* ctx, uint64_t new_alt) {
  ctx->cont = ctx->jit->emu()->RetryTop(new_alt);
}

extern "C" void xsb_jit_trust_rt(JitContext* ctx) {
  ctx->cont = ctx->jit->emu()->TrustTop();
}

extern "C" uint64_t xsb_jit_switch_const_rt(JitContext* ctx, uint64_t table_ix,
                                            uint64_t key) {
  const SwitchTable& table = ctx->jit->module()->switch_tables[table_ix];
  uint32_t target = table.Lookup(key);
  return target == SwitchTable::kMiss ? ~0ull : static_cast<uint64_t>(target);
}

// switch_on_structure table lookup; `key` is the argument's functor cell.
// Reads the same SwitchTable the interpreter dispatches through, so the two
// tiers cannot disagree on a bucket.
extern "C" uint64_t xsb_jit_switch_struct_rt(JitContext* ctx,
                                             uint64_t table_ix, uint64_t key) {
  const SwitchTable& table = ctx->jit->module()->switch_tables[table_ix];
  uint32_t target = table.Lookup(key);
  return target == SwitchTable::kMiss ? ~0ull : static_cast<uint64_t>(target);
}

extern "C" uint64_t xsb_jit_is_ground_rt(JitContext* ctx, uint64_t w) {
  return ctx->jit->emu()->GroundForMode(w) ? 1 : 0;
}

#endif  // XSB_WAM_JIT_NATIVE

bool Jit::HostSupported() {
#if XSB_WAM_JIT_NATIVE
  // Prove the host will actually run arena code: seccomp/SELinux-style
  // policies can refuse PROT_EXEC even where the syscalls exist.
  static const bool supported = [] {
    ExecArena arena;
    const uint8_t probe[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};  // mov
                                                                   // eax,42;
                                                                   // ret
    void* p = arena.Commit(probe, sizeof(probe));
    if (p == nullptr) return false;
    using ProbeFn = uint32_t (*)();
    return reinterpret_cast<ProbeFn>(reinterpret_cast<uintptr_t>(p))() == 42u;
  }();
  return supported;
#else
  return false;
#endif
}

Jit::Jit(Emulator* emu, const CompiledModule* module, TermStore* store,
         int64_t threshold)
    : emu_(emu), module_(module), store_(store), threshold_(threshold) {
  if (threshold_ < 0 || !HostSupported() || module_->code.empty()) return;
  flags_.assign(module_->code.size(), 0);
  native_addrs_.assign(module_->code.size(), nullptr);
  entry_pred_.assign(module_->code.size(), 0);
  entry_counts_.assign(module_->pred_ranges.size(), 0);
  compiled_.assign(module_->pred_ranges.size(), false);
  for (size_t i = 0; i < module_->pred_ranges.size(); ++i) {
    const PredRange& range = module_->pred_ranges[i];
    flags_[range.begin] |= kFlagEntry;
    entry_pred_[range.begin] = static_cast<uint32_t>(i) + 1;
  }
  ctx_.jit = this;
  available_ = true;
}

void Jit::OnEntry(size_t pc) {
  if (!available_) return;
  uint32_t ix = entry_pred_[pc];
  if (ix == 0) return;
  size_t pred = ix - 1;
  if (compiled_[pred]) return;
  if (static_cast<int64_t>(++entry_counts_[pred]) > threshold_) {
    CompilePredicate(pred);
  }
}

void Jit::RefreshBases() {
  ctx_.x_base = emu_->x_.data();
  ctx_.y_base = emu_->cur_frame_ != 0
                    ? emu_->frames_[emu_->cur_frame_ - 1].y.data()
                    : nullptr;
  ctx_.heap_base = store_->heap_buf().data;
}

WamStats& Jit::EmuStats() { return emu_->stats_; }

void Jit::DisableNative() {
  available_ = false;
  for (uint8_t& f : flags_) f &= static_cast<uint8_t>(~kFlagNative);
}

uint64_t Jit::Execute(size_t pc, size_t* cont, uint64_t* s, bool* write_mode) {
#if XSB_WAM_JIT_NATIVE
  if (emu_->x_.size() < max_xreg_plus1_) emu_->x_.resize(max_xreg_plus1_, 0);
  RefreshBases();
  ctx_.cont = *cont;
  ctx_.s = *s;
  ctx_.write_mode = *write_mode ? 1 : 0;
  ++emu_->stats_.jit_entries;
  uint64_t resume = xsb_jit_enter(&ctx_, native_addrs_[pc]);
  *cont = static_cast<size_t>(ctx_.cont);
  *s = ctx_.s;
  *write_mode = ctx_.write_mode != 0;
  if (resume != kFailStop) ++emu_->stats_.jit_bailouts;
  return resume;
#else
  (void)pc;
  (void)cont;
  (void)s;
  (void)write_mode;
  return kFailStop;
#endif
}

#if XSB_WAM_JIT_NATIVE

// Template compiler: one predicate's bytecode range to native code, in pc
// order, one code block per instruction. Machine registers as documented at
// the top of the file; between instructions only rbx/r12/r13/r15 and memory
// are live. Every compiled instruction starts by retiring itself into
// stats_.instructions so the two tiers report identical counters.
class JitCompiler {
 public:
  JitCompiler(Jit* jit, const PredRange& range)
      : jit_(jit),
        mod_(jit->module()),
        begin_(range.begin),
        end_(range.end) {}

  // Emits, commits and publishes the whole range. On false the caller must
  // DisableNative(): the arena may hold earlier code left non-executable by
  // a failed mprotect.
  bool Compile();

  size_t max_x_plus1() const { return max_x_plus1_; }

 private:
  using R = X64Reg;

  void TouchX(uint32_t index) {
    if (index + 1 > max_x_plus1_) max_x_plus1_ = index + 1;
  }

  // mov d, [x_base + i*8] — X register load (A registers are X registers).
  void LoadX(R d, uint32_t i) {
    TouchX(i);
    a_.MovRegMem(d, R::kR12, static_cast<int32_t>(i) * 8);
  }
  void StoreX(uint32_t i, R s) {
    TouchX(i);
    a_.MovMemReg(R::kR12, static_cast<int32_t>(i) * 8, s);
  }

  // Operand registers may be X or Y; Y lives behind ctx->y_base, reloaded on
  // every access because frame pushes move it. Clobbers rcx in the Y case,
  // so `s`/`d` must not be rcx.
  void LoadReg(R d, uint32_t reg) {
    if (IsYReg(reg)) {
      a_.MovRegMem(d, R::kRbx, 8);
      a_.MovRegMem(d, d, static_cast<int32_t>(RegIndex(reg)) * 8);
    } else {
      LoadX(d, RegIndex(reg));
    }
  }
  void StoreReg(uint32_t reg, R s) {
    if (IsYReg(reg)) {
      a_.MovRegMem(R::kRcx, R::kRbx, 8);
      a_.MovMemReg(R::kRcx, static_cast<int32_t>(RegIndex(reg)) * 8, s);
    } else {
      StoreX(RegIndex(reg), s);
    }
  }

  // d = heap data pointer, cached in rbp (reloaded from the RawBuf after
  // every helper call — an allocating helper may grow and move the buffer —
  // and by dyn_dispatch/entry, so it is valid at every instruction).
  void LoadHeap(R d) { a_.MovRegReg(d, R::kRbp); }

  void ReloadHeapBase() {
    a_.MovRegImm64(R::kRbp,
                   reinterpret_cast<uint64_t>(&jit_->store()->heap_buf()));
    a_.MovRegMem(R::kRbp, R::kRbp, 0);
  }

  // Dereference rax in place (heap data in rdx, clobbers rcx). Afterwards
  // `test al, 7` distinguishes an unbound ref (zero) from a bound value.
  void Deref() {
    int loop = a_.NewLabel();
    int done = a_.NewLabel();
    a_.BindLabel(loop);
    a_.TestAlImm8(7);
    a_.Jcc(X64Cond::kNe, done);
    a_.MovRegReg(R::kRcx, R::kRax);
    a_.ShrRegImm8(R::kRcx, 3);
    a_.MovRegMemIdx8(R::kRcx, R::kRdx, R::kRcx);
    a_.CmpRegReg(R::kRcx, R::kRax);
    a_.Jcc(X64Cond::kEq, done);  // self-reference: unbound
    a_.MovRegReg(R::kRax, R::kRcx);
    a_.Jmp(loop);
    a_.BindLabel(done);
  }

  // heap_moves: the helper can grow (and so move) the heap buffer — only
  // the allocating ones (make_var/put_struct/get_struct_write) do; binding,
  // choice-point and frame helpers leave the heap data pointer intact, so
  // the rbp cache stays valid across them. The reload clobbers only rbp
  // itself; the rax result stays intact.
  void CallHelper(const void* fn, bool heap_moves = false) {
    a_.MovRegImm64(R::kRax, reinterpret_cast<uint64_t>(fn));
    a_.CallReg(R::kRax);
    if (heap_moves) ReloadHeapBase();
  }

  void CountStat(uint64_t* counter) {
    a_.IncMemAbs(R::kRcx, reinterpret_cast<uint64_t>(counter));
  }

  // Retired-instruction counting stays in r14 (callee-saved, so helpers
  // preserve it; dyn_dispatch keeps it live across predicates) and is
  // flushed to stats_.instructions once at the exit funnel — a per-instr
  // memory RMW would serialize the whole trace on one cache line.
  void CountInstr() { a_.IncReg(R::kR14); }

  // Jump to a static bytecode target: fail, an in-range label, or the
  // dynamic dispatcher for anything outside this predicate.
  void JumpTo(uint32_t target) {
    if (target == kFailTarget) {
      a_.Jmp(fail_);
    } else if (target >= begin_ && target < end_) {
      a_.Jmp(pc_labels_[target - begin_]);
    } else {
      a_.MovReg32Imm32(R::kRax, target);
      a_.Jmp(dyn_dispatch_);
    }
  }

  void EmitInstr(size_t pc, const Instr& instr);
  void EmitTails();

  Jit* jit_;
  const CompiledModule* mod_;
  X64Assembler a_;
  size_t begin_;
  size_t end_;
  std::vector<int> pc_labels_;
  std::vector<size_t> pc_offsets_;
  std::vector<bool> is_native_;  // false: bail stub only
  int dyn_dispatch_ = -1;
  int fail_ = -1;
  int exit_rax_ = -1;
  size_t max_x_plus1_ = 0;
};

bool JitCompiler::Compile() {
  size_t count = end_ - begin_;
  pc_labels_.resize(count);
  pc_offsets_.resize(count);
  is_native_.assign(count, true);
  for (size_t i = 0; i < count; ++i) pc_labels_[i] = a_.NewLabel();
  dyn_dispatch_ = a_.NewLabel();
  fail_ = a_.NewLabel();
  exit_rax_ = a_.NewLabel();

  for (size_t pc = begin_; pc < end_; ++pc) {
    pc_offsets_[pc - begin_] = a_.Here();
    a_.BindLabel(pc_labels_[pc - begin_]);
    EmitInstr(pc, mod_->code[pc]);
  }
  EmitTails();
  if (!a_.Finalize()) return false;

  void* base = jit_->arena_.Commit(a_.code().data(), a_.code().size());
  if (base == nullptr) return false;
  uint8_t* bytes = static_cast<uint8_t*>(base);
  for (size_t i = 0; i < count; ++i) {
    jit_->native_addrs_[begin_ + i] = bytes + pc_offsets_[i];
    if (is_native_[i]) jit_->flags_[begin_ + i] |= Jit::kFlagNative;
  }
  return true;
}

void JitCompiler::EmitTails() {
  // fail: backtrack through the shared helper; a resume pc goes back through
  // the dispatcher, exhaustion falls through to exit with kFailStop in rax.
  a_.BindLabel(fail_);
  a_.MovRegReg(R::kRdi, R::kRbx);
  CallHelper(reinterpret_cast<const void*>(&xsb_jit_backtrack_rt));
  a_.CmpRegImm8(R::kRax, -1);
  a_.Jcc(X64Cond::kNe, dyn_dispatch_);
  // exit: every path out of native code funnels through here (bail stubs,
  // dyn_dispatch misses, search exhaustion), so this is the one place the
  // r14 instruction accumulator must reach stats_.instructions.
  a_.BindLabel(exit_rax_);
  a_.MovRegImm64(R::kRcx,
                 reinterpret_cast<uint64_t>(&jit_->EmuStats().instructions));
  a_.AddMemReg(R::kRcx, 0, R::kR14);
  a_.MovRegImm64(R::kRcx, reinterpret_cast<uint64_t>(&xsb_jit_exit_thunk));
  a_.JmpReg(R::kRcx);

  // dyn_dispatch: rax = bytecode pc. Stay native when that pc has code
  // (its own range or any other compiled predicate), else exit to the
  // interpreter. Reload x_base: a helper may have refreshed it. The rbp
  // heap cache needs no reload here — every heap-moving helper call already
  // reloaded it at its call site.
  a_.BindLabel(dyn_dispatch_);
  a_.MovRegImm64(R::kRcx,
                 reinterpret_cast<uint64_t>(jit_->native_addrs_.data()));
  a_.MovRegMemIdx8(R::kRcx, R::kRcx, R::kRax);
  a_.TestRegReg(R::kRcx, R::kRcx);
  a_.Jcc(X64Cond::kEq, exit_rax_);
  a_.MovRegMem(R::kR12, R::kRbx, 0);
  a_.JmpReg(R::kRcx);
}

void JitCompiler::EmitInstr(size_t pc, const Instr& instr) {
  switch (instr.op) {
    case Op::kBuiltin:
    case Op::kSolution:
    case Op::kHalt:
      // Outside the native subset: bail to the interpreter at this exact pc.
      // Not kFlagNative (entering here would just bounce) and not counted —
      // the interpreter retires it.
      is_native_[pc - begin_] = false;
      a_.MovReg32Imm32(R::kRax, static_cast<uint32_t>(pc));
      a_.Jmp(exit_rax_);
      return;
    default:
      break;
  }

  CountInstr();

  switch (instr.op) {
    case Op::kGetVariable:  // Reg(a) = A_b
      LoadX(R::kRax, instr.b);
      StoreReg(instr.a, R::kRax);
      break;

    case Op::kGetValue: {  // unify(Reg(a), A_b)
      LoadReg(R::kRsi, instr.a);
      LoadX(R::kRdx, instr.b);
      a_.MovRegReg(R::kRdi, R::kRbx);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_unify_rt));
      a_.TestRegReg(R::kRax, R::kRax);
      a_.Jcc(X64Cond::kEq, fail_);
      break;
    }

    case Op::kGetConstant: {
      Word c = mod_->constants[instr.a];
      int bound = a_.NewLabel();
      int done = a_.NewLabel();
      LoadHeap(R::kRdx);
      LoadX(R::kRax, instr.b);
      Deref();
      a_.TestAlImm8(7);
      a_.Jcc(X64Cond::kNe, bound);
      a_.MovRegReg(R::kRdi, R::kRbx);  // unbound: bind to the constant
      a_.MovRegReg(R::kRsi, R::kRax);
      a_.MovRegImm64(R::kRdx, c);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_bind_rt));
      a_.Jmp(done);
      a_.BindLabel(bound);
      a_.MovRegImm64(R::kRcx, c);
      a_.CmpRegReg(R::kRax, R::kRcx);
      a_.Jcc(X64Cond::kNe, fail_);
      a_.BindLabel(done);
      break;
    }

    case Op::kGetStructure: {
      int bound = a_.NewLabel();
      int done = a_.NewLabel();
      LoadHeap(R::kRdx);
      LoadX(R::kRax, instr.b);
      Deref();
      a_.TestAlImm8(7);
      a_.Jcc(X64Cond::kNe, bound);
      // Unbound: build + bind via helper, enter write mode.
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovRegImm64(R::kRsi, instr.a);
      a_.MovRegReg(R::kRdx, R::kRax);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_get_struct_write_rt), /*heap_moves=*/true);
      a_.MovRegReg(R::kR13, R::kRax);  // S
      a_.MovReg32Imm32(R::kR15, 1);    // write mode
      a_.Jmp(done);
      // Bound: must be a struct with the right functor; enter read mode.
      a_.BindLabel(bound);
      a_.MovRegReg(R::kRcx, R::kRax);
      a_.AndReg32Imm8(R::kRcx, 7);
      a_.CmpRegImm8(R::kRcx, static_cast<int8_t>(Tag::kStruct));
      a_.Jcc(X64Cond::kNe, fail_);
      a_.MovRegReg(R::kRcx, R::kRax);
      a_.ShrRegImm8(R::kRcx, 3);
      a_.MovRegMemIdx8(R::kRdx, R::kRdx, R::kRcx);  // functor cell
      a_.MovRegImm64(R::kRsi, FunctorCell(instr.a));
      a_.CmpRegReg(R::kRdx, R::kRsi);
      a_.Jcc(X64Cond::kNe, fail_);
      a_.MovRegReg(R::kR13, R::kRcx);
      a_.AddRegImm32(R::kR13, 1);  // S = payload + 1
      a_.XorReg32(R::kR15);        // read mode
      a_.BindLabel(done);
      break;
    }

    case Op::kUnifyVariable: {
      int read = a_.NewLabel();
      int done = a_.NewLabel();
      a_.TestRegReg(R::kR15, R::kR15);
      a_.Jcc(X64Cond::kEq, read);
      a_.LeaRegScaled8(R::kRax, R::kR13);  // RefCell(S): the arg cell itself
      a_.Jmp(done);
      a_.BindLabel(read);
      LoadHeap(R::kRdx);
      a_.MovRegMemIdx8(R::kRax, R::kRdx, R::kR13);
      a_.BindLabel(done);
      StoreReg(instr.a, R::kRax);
      a_.IncReg(R::kR13);
      break;
    }

    case Op::kUnifyValue: {
      int read = a_.NewLabel();
      int done = a_.NewLabel();
      a_.TestRegReg(R::kR15, R::kR15);
      a_.Jcc(X64Cond::kEq, read);
      LoadHeap(R::kRdx);  // write: heap[S] = Reg(a)
      LoadReg(R::kRax, instr.a);
      a_.MovMemIdx8Reg(R::kRdx, R::kR13, R::kRax);
      a_.Jmp(done);
      a_.BindLabel(read);  // read: unify(Reg(a), RefCell(S))
      LoadReg(R::kRsi, instr.a);
      a_.LeaRegScaled8(R::kRdx, R::kR13);
      a_.MovRegReg(R::kRdi, R::kRbx);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_unify_rt));
      a_.TestRegReg(R::kRax, R::kRax);
      a_.Jcc(X64Cond::kEq, fail_);
      a_.BindLabel(done);
      a_.IncReg(R::kR13);
      break;
    }

    case Op::kUnifyConstant: {
      Word c = mod_->constants[instr.a];
      int read = a_.NewLabel();
      int bound = a_.NewLabel();
      int done = a_.NewLabel();
      a_.TestRegReg(R::kR15, R::kR15);
      a_.Jcc(X64Cond::kEq, read);
      LoadHeap(R::kRdx);  // write: heap[S] = c
      a_.MovRegImm64(R::kRax, c);
      a_.MovMemIdx8Reg(R::kRdx, R::kR13, R::kRax);
      a_.Jmp(done);
      a_.BindLabel(read);
      LoadHeap(R::kRdx);
      a_.MovRegMemIdx8(R::kRax, R::kRdx, R::kR13);
      Deref();
      a_.TestAlImm8(7);
      a_.Jcc(X64Cond::kNe, bound);
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovRegReg(R::kRsi, R::kRax);
      a_.MovRegImm64(R::kRdx, c);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_bind_rt));
      a_.Jmp(done);
      a_.BindLabel(bound);
      a_.MovRegImm64(R::kRcx, c);
      a_.CmpRegReg(R::kRax, R::kRcx);
      a_.Jcc(X64Cond::kNe, fail_);
      a_.BindLabel(done);
      a_.IncReg(R::kR13);
      break;
    }

    case Op::kUnifyVoid:
      a_.AddRegImm32(R::kR13, static_cast<int32_t>(instr.a));
      break;

    case Op::kPutVariable: {  // fresh var into Reg(a) and A_b
      a_.MovRegReg(R::kRdi, R::kRbx);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_make_var_rt), /*heap_moves=*/true);
      StoreReg(instr.a, R::kRax);
      StoreX(instr.b, R::kRax);
      break;
    }

    case Op::kPutValue:
      LoadReg(R::kRax, instr.a);
      StoreX(instr.b, R::kRax);
      break;

    case Op::kPutConstant:
      a_.MovRegImm64(R::kRax, mod_->constants[instr.a]);
      StoreX(instr.b, R::kRax);
      break;

    case Op::kPutStructure: {
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovRegImm64(R::kRsi, instr.a);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_put_struct_rt), /*heap_moves=*/true);
      StoreX(instr.b, R::kRax);
      a_.MovRegReg(R::kR13, R::kRax);
      a_.ShrRegImm8(R::kR13, 3);
      a_.AddRegImm32(R::kR13, 1);  // S = payload + 1
      a_.MovReg32Imm32(R::kR15, 1);
      break;
    }

    case Op::kAllocate:
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovReg32Imm32(R::kRsi, instr.a);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_allocate_rt));
      a_.MovRegMem(R::kR12, R::kRbx, 0);  // frames moved; bases refreshed
      break;

    case Op::kDeallocate:
      a_.MovRegReg(R::kRdi, R::kRbx);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_deallocate_rt));
      a_.MovRegMem(R::kR12, R::kRbx, 0);
      break;

    case Op::kCall:
      a_.MovMemImm32(R::kRbx, 16, static_cast<int32_t>(pc) + 1);  // cont
      JumpTo(instr.a);
      return;  // control transferred

    case Op::kProceed:
      a_.MovRegMem(R::kRax, R::kRbx, 16);
      a_.Jmp(dyn_dispatch_);
      return;

    case Op::kTryMeElse:
    case Op::kTry: {
      bool me = instr.op == Op::kTryMeElse;
      // try_me_else only heads unindexed chains (see the interpreter case).
      if (me) CountStat(&jit_->EmuStats().switch_miss_linear);
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovReg32Imm32(R::kRsi, me ? instr.a : static_cast<uint32_t>(pc) + 1);
      a_.MovReg32Imm32(R::kRdx, instr.b);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_try_rt));
      if (!me) JumpTo(instr.a);  // try_me_else falls through to pc+1
      break;
    }

    case Op::kRetryMeElse:
    case Op::kRetry: {
      bool me = instr.op == Op::kRetryMeElse;
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovReg32Imm32(R::kRsi, me ? instr.a : static_cast<uint32_t>(pc) + 1);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_retry_rt));
      if (!me) JumpTo(instr.a);
      break;
    }

    case Op::kTrustMe:
    case Op::kTrust:
      a_.MovRegReg(R::kRdi, R::kRbx);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_trust_rt));
      if (instr.op == Op::kTrust) JumpTo(instr.a);
      break;

    case Op::kSwitchOnTerm: {
      int on_var = a_.NewLabel();
      int on_const = a_.NewLabel();
      LoadHeap(R::kRdx);
      LoadX(R::kRax, 1);
      Deref();
      a_.TestAlImm8(7);
      a_.Jcc(X64Cond::kEq, on_var);
      a_.MovRegReg(R::kRcx, R::kRax);
      a_.AndReg32Imm8(R::kRcx, 7);
      a_.CmpRegImm8(R::kRcx, static_cast<int8_t>(Tag::kAtom));
      a_.Jcc(X64Cond::kEq, on_const);
      a_.CmpRegImm8(R::kRcx, static_cast<int8_t>(Tag::kInt));
      a_.Jcc(X64Cond::kEq, on_const);
      JumpTo(instr.c);  // structures
      a_.BindLabel(on_var);
      // Unbound first argument: the full linear chain (see the interpreter).
      if (instr.a != kFailTarget) {
        CountStat(&jit_->EmuStats().switch_miss_linear);
      }
      JumpTo(instr.a);
      a_.BindLabel(on_const);
      JumpTo(instr.b);
      return;
    }

    case Op::kSwitchOnConstant:
      LoadHeap(R::kRdx);
      LoadX(R::kRax, 1);
      Deref();
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovReg32Imm32(R::kRsi, instr.a);
      a_.MovRegReg(R::kRdx, R::kRax);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_switch_const_rt));
      a_.CmpRegImm8(R::kRax, -1);
      a_.Jcc(X64Cond::kEq, fail_);  // miss
      a_.Jmp(dyn_dispatch_);
      return;

    case Op::kSwitchOnStructure: {
      LoadHeap(R::kRdx);
      LoadX(R::kRax, 1);
      Deref();
      a_.MovRegReg(R::kRcx, R::kRax);
      a_.AndReg32Imm8(R::kRcx, 7);
      a_.CmpRegImm8(R::kRcx, static_cast<int8_t>(Tag::kStruct));
      a_.Jcc(X64Cond::kNe, fail_);  // non-structure input
      a_.MovRegReg(R::kRcx, R::kRax);
      a_.ShrRegImm8(R::kRcx, 3);
      a_.MovRegMemIdx8(R::kRdx, R::kRdx, R::kRcx);  // rdx = functor cell
      if (instr.c != kFailTarget) {
        // './2' fast path: one compare beats the table for list traversal.
        int not_list = a_.NewLabel();
        a_.MovRegImm64(R::kRsi,
                       FunctorCell(static_cast<FunctorId>(instr.b)));
        a_.CmpRegReg(R::kRdx, R::kRsi);
        a_.Jcc(X64Cond::kNe, not_list);
        CountStat(&jit_->EmuStats().switch_structure_hits);
        JumpTo(instr.c);
        a_.BindLabel(not_list);
      }
      a_.MovRegReg(R::kRdi, R::kRbx);
      a_.MovReg32Imm32(R::kRsi, instr.a);
      CallHelper(reinterpret_cast<const void*>(&xsb_jit_switch_struct_rt));
      a_.CmpRegImm8(R::kRax, -1);
      a_.Jcc(X64Cond::kEq, fail_);  // miss
      CountStat(&jit_->EmuStats().switch_structure_hits);
      a_.Jmp(dyn_dispatch_);
      return;
    }

    case Op::kCheckMode: {
      CountStat(&jit_->EmuStats().mode_checks);
      const std::vector<uint8_t>& spec = mod_->mode_specs[instr.a];
      int fallback = a_.NewLabel();
      int pass = a_.NewLabel();
      for (uint32_t i = 0; i < instr.b; ++i) {
        uint8_t m = spec[i];
        if (m == kModeNonvar) {
          LoadHeap(R::kRdx);
          LoadX(R::kRax, i + 1);
          Deref();
          a_.TestAlImm8(7);
          a_.Jcc(X64Cond::kEq, fallback);
        } else if (m == kModeGround) {
          a_.MovRegReg(R::kRdi, R::kRbx);
          LoadX(R::kRsi, i + 1);
          CallHelper(reinterpret_cast<const void*>(&xsb_jit_is_ground_rt));
          a_.TestRegReg(R::kRax, R::kRax);
          a_.Jcc(X64Cond::kEq, fallback);
        }
      }
      a_.Jmp(pass);
      a_.BindLabel(fallback);
      CountStat(&jit_->EmuStats().mode_fallbacks);
      JumpTo(instr.c);
      a_.BindLabel(pass);
      break;
    }

    case Op::kGetConstantNv: {  // proven nonvar: compare only
      LoadHeap(R::kRdx);
      LoadX(R::kRax, instr.b);
      Deref();
      a_.MovRegImm64(R::kRcx, mod_->constants[instr.a]);
      a_.CmpRegReg(R::kRax, R::kRcx);
      a_.Jcc(X64Cond::kNe, fail_);
      break;
    }

    case Op::kGetStructureRd: {  // proven nonvar: read mode only
      LoadHeap(R::kRdx);
      LoadX(R::kRax, instr.b);
      Deref();
      a_.MovRegReg(R::kRcx, R::kRax);
      a_.AndReg32Imm8(R::kRcx, 7);
      a_.CmpRegImm8(R::kRcx, static_cast<int8_t>(Tag::kStruct));
      a_.Jcc(X64Cond::kNe, fail_);
      a_.MovRegReg(R::kRcx, R::kRax);
      a_.ShrRegImm8(R::kRcx, 3);
      a_.MovRegMemIdx8(R::kRdx, R::kRdx, R::kRcx);
      a_.MovRegImm64(R::kRsi, FunctorCell(instr.a));
      a_.CmpRegReg(R::kRdx, R::kRsi);
      a_.Jcc(X64Cond::kNe, fail_);
      a_.MovRegReg(R::kR13, R::kRcx);
      a_.AddRegImm32(R::kR13, 1);
      a_.XorReg32(R::kR15);
      break;
    }

    case Op::kUnifyConstantRd: {  // ground root: cell cannot be unbound
      LoadHeap(R::kRdx);
      a_.MovRegMemIdx8(R::kRax, R::kRdx, R::kR13);
      Deref();
      a_.MovRegImm64(R::kRcx, mod_->constants[instr.a]);
      a_.CmpRegReg(R::kRax, R::kRcx);
      a_.Jcc(X64Cond::kNe, fail_);
      a_.IncReg(R::kR13);
      break;
    }

    case Op::kBuiltin:
    case Op::kSolution:
    case Op::kHalt:
      break;  // handled above
  }
  // Fall through to the next instruction's code (bytecode pc + 1).
}

void Jit::CompilePredicate(size_t pred_ix) {
  compiled_[pred_ix] = true;
  if (!available_) return;
  JitCompiler compiler(this, module_->pred_ranges[pred_ix]);
  if (!compiler.Compile()) {
    DisableNative();
    return;
  }
  if (max_xreg_plus1_ < compiler.max_x_plus1()) {
    max_xreg_plus1_ = compiler.max_x_plus1();
  }
  if (emu_->x_.size() < max_xreg_plus1_) emu_->x_.resize(max_xreg_plus1_, 0);
  ++emu_->stats_.jit_compiled_preds;
}

#else  // !XSB_WAM_JIT_NATIVE

void Jit::CompilePredicate(size_t pred_ix) {
  compiled_[pred_ix] = true;  // unreachable: available_ is never true
}

#endif  // XSB_WAM_JIT_NATIVE

}  // namespace xsb::wam
