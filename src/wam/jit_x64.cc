#include "wam/jit_x64.h"

#include <cstring>

namespace xsb::wam {

namespace {
inline uint8_t Low3(X64Reg r) { return static_cast<uint8_t>(r) & 7; }
inline bool Ext(X64Reg r) { return static_cast<uint8_t>(r) >= 8; }
}  // namespace

void X64Assembler::Imm32(int32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, 4);
  for (uint8_t x : b) Byte(x);
}

void X64Assembler::Imm64(uint64_t v) {
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  for (uint8_t x : b) Byte(x);
}

void X64Assembler::Rex(bool w, X64Reg reg, X64Reg index, X64Reg rm) {
  uint8_t rex = 0x40;
  if (w) rex |= 0x08;
  if (Ext(reg)) rex |= 0x04;
  if (Ext(index)) rex |= 0x02;
  if (Ext(rm)) rex |= 0x01;
  if (rex != 0x40 || w) Byte(rex);
}

void X64Assembler::Mem(uint8_t reg_field, X64Reg base, int32_t disp) {
  uint8_t base3 = Low3(base);
  bool need_sib = base3 == 4;                       // rsp/r12
  bool no_disp0 = base3 == 5;                       // rbp/r13 need a disp
  uint8_t mod;
  if (disp == 0 && !no_disp0) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  Byte(static_cast<uint8_t>((mod << 6) | ((reg_field & 7) << 3) |
                            (need_sib ? 4 : base3)));
  if (need_sib) Byte(static_cast<uint8_t>((0 << 6) | (4 << 3) | base3));
  if (mod == 1) Byte(static_cast<uint8_t>(disp));
  if (mod == 2) Imm32(disp);
}

void X64Assembler::MemIdx8(uint8_t reg_field, X64Reg base, X64Reg index,
                           int32_t disp) {
  // index must not be rsp (unencodable); r12 as index is fine via REX.X.
  uint8_t base3 = Low3(base);
  bool no_disp0 = base3 == 5;  // rbp/r13 base needs a disp byte
  uint8_t mod;
  if (disp == 0 && !no_disp0) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  Byte(static_cast<uint8_t>((mod << 6) | ((reg_field & 7) << 3) | 4));
  Byte(static_cast<uint8_t>((3 << 6) | (Low3(index) << 3) | base3));  // *8
  if (mod == 1) Byte(static_cast<uint8_t>(disp));
  if (mod == 2) Imm32(disp);
}

int X64Assembler::NewLabel() {
  label_offsets_.push_back(SIZE_MAX);
  return static_cast<int>(label_offsets_.size() - 1);
}

void X64Assembler::BindLabel(int label) {
  label_offsets_[static_cast<size_t>(label)] = code_.size();
}

bool X64Assembler::Finalize() {
  for (const Fixup& f : fixups_) {
    size_t target = label_offsets_[static_cast<size_t>(f.label)];
    if (target == SIZE_MAX) return false;
    int32_t rel = static_cast<int32_t>(static_cast<int64_t>(target) -
                                       static_cast<int64_t>(f.pos + 4));
    std::memcpy(&code_[f.pos], &rel, 4);
  }
  fixups_.clear();
  return true;
}

void X64Assembler::MovRegImm64(X64Reg d, uint64_t imm) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, d);
  Byte(static_cast<uint8_t>(0xB8 + Low3(d)));
  Imm64(imm);
}

void X64Assembler::MovReg32Imm32(X64Reg d, uint32_t imm) {
  Rex(false, X64Reg::kRax, X64Reg::kRax, d);
  Byte(static_cast<uint8_t>(0xB8 + Low3(d)));
  Imm32(static_cast<int32_t>(imm));
}

void X64Assembler::MovRegReg(X64Reg d, X64Reg s) {
  Rex(true, d, X64Reg::kRax, s);
  Byte(0x8B);
  Byte(static_cast<uint8_t>(0xC0 | (Low3(d) << 3) | Low3(s)));
}

void X64Assembler::MovRegMem(X64Reg d, X64Reg base, int32_t disp) {
  Rex(true, d, X64Reg::kRax, base);
  Byte(0x8B);
  Mem(Low3(d), base, disp);
}

void X64Assembler::MovMemReg(X64Reg base, int32_t disp, X64Reg s) {
  Rex(true, s, X64Reg::kRax, base);
  Byte(0x89);
  Mem(Low3(s), base, disp);
}

void X64Assembler::MovMemImm32(X64Reg base, int32_t disp, int32_t imm) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, base);
  Byte(0xC7);
  Mem(0, base, disp);
  Imm32(imm);
}

void X64Assembler::MovRegMemIdx8(X64Reg d, X64Reg base, X64Reg index,
                                 int32_t disp) {
  Rex(true, d, index, base);
  Byte(0x8B);
  MemIdx8(Low3(d), base, index, disp);
}

void X64Assembler::MovMemIdx8Reg(X64Reg base, X64Reg index, X64Reg s,
                                 int32_t disp) {
  Rex(true, s, index, base);
  Byte(0x89);
  MemIdx8(Low3(s), base, index, disp);
}

void X64Assembler::LeaRegMemIdx8(X64Reg d, X64Reg base, X64Reg index,
                                 int32_t disp) {
  Rex(true, d, index, base);
  Byte(0x8D);
  MemIdx8(Low3(d), base, index, disp);
}

void X64Assembler::LeaRegScaled8(X64Reg d, X64Reg index) {
  // lea d, [index*8]: mod=00, rm=100 (SIB), SIB base=101 + disp32.
  Rex(true, d, index, X64Reg::kRax);
  Byte(0x8D);
  Byte(static_cast<uint8_t>((0 << 6) | (Low3(d) << 3) | 4));
  Byte(static_cast<uint8_t>((3 << 6) | (Low3(index) << 3) | 5));
  Imm32(0);
}

void X64Assembler::AddRegImm32(X64Reg d, int32_t imm) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, d);
  if (imm >= -128 && imm <= 127) {
    Byte(0x83);
    Byte(static_cast<uint8_t>(0xC0 | Low3(d)));
    Byte(static_cast<uint8_t>(imm));
  } else {
    Byte(0x81);
    Byte(static_cast<uint8_t>(0xC0 | Low3(d)));
    Imm32(imm);
  }
}

void X64Assembler::AddMemReg(X64Reg base, int32_t disp, X64Reg s) {
  Rex(true, s, X64Reg::kRax, base);
  Byte(0x01);
  Mem(Low3(s), base, disp);
}

void X64Assembler::IncReg(X64Reg d) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, d);
  Byte(0xFF);
  Byte(static_cast<uint8_t>(0xC0 | Low3(d)));
}

void X64Assembler::IncMem(X64Reg base, int32_t disp) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, base);
  Byte(0xFF);
  Mem(0, base, disp);
}

void X64Assembler::IncMemAbs(X64Reg scratch, uint64_t abs) {
  MovRegImm64(scratch, abs);
  IncMem(scratch, 0);
}

void X64Assembler::ShrRegImm8(X64Reg d, uint8_t imm) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, d);
  Byte(0xC1);
  Byte(static_cast<uint8_t>(0xE8 | Low3(d)));  // /5
  Byte(imm);
}

void X64Assembler::ShlRegImm8(X64Reg d, uint8_t imm) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, d);
  Byte(0xC1);
  Byte(static_cast<uint8_t>(0xE0 | Low3(d)));  // /4
  Byte(imm);
}

void X64Assembler::AndReg32Imm8(X64Reg d, uint8_t imm) {
  Rex(false, X64Reg::kRax, X64Reg::kRax, d);
  Byte(0x83);
  Byte(static_cast<uint8_t>(0xE0 | Low3(d)));  // /4
  Byte(imm);
}

void X64Assembler::XorReg32(X64Reg d) {
  Rex(false, d, X64Reg::kRax, d);
  Byte(0x33);
  Byte(static_cast<uint8_t>(0xC0 | (Low3(d) << 3) | Low3(d)));
}

void X64Assembler::CmpRegReg(X64Reg a, X64Reg b) {
  Rex(true, a, X64Reg::kRax, b);
  Byte(0x3B);
  Byte(static_cast<uint8_t>(0xC0 | (Low3(a) << 3) | Low3(b)));
}

void X64Assembler::CmpRegImm8(X64Reg a, int8_t imm) {
  Rex(true, X64Reg::kRax, X64Reg::kRax, a);
  Byte(0x83);
  Byte(static_cast<uint8_t>(0xF8 | Low3(a)));  // /7
  Byte(static_cast<uint8_t>(imm));
}

void X64Assembler::CmpRegMem(X64Reg a, X64Reg base, int32_t disp) {
  Rex(true, a, X64Reg::kRax, base);
  Byte(0x3B);
  Mem(Low3(a), base, disp);
}

void X64Assembler::CmpMemIdx8Reg(X64Reg base, X64Reg index, X64Reg s) {
  Rex(true, s, index, base);
  Byte(0x39);
  MemIdx8(Low3(s), base, index, 0);
}

void X64Assembler::TestRegReg(X64Reg a, X64Reg b) {
  Rex(true, b, X64Reg::kRax, a);
  Byte(0x85);
  Byte(static_cast<uint8_t>(0xC0 | (Low3(b) << 3) | Low3(a)));
}

void X64Assembler::TestAlImm8(uint8_t imm) {
  Byte(0xA8);
  Byte(imm);
}

void X64Assembler::Jcc(X64Cond cond, int label) {
  Byte(0x0F);
  Byte(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(cond)));
  fixups_.push_back(Fixup{code_.size(), label});
  Imm32(0);
}

void X64Assembler::Jmp(int label) {
  Byte(0xE9);
  fixups_.push_back(Fixup{code_.size(), label});
  Imm32(0);
}

void X64Assembler::JmpReg(X64Reg r) {
  Rex(false, X64Reg::kRax, X64Reg::kRax, r);
  Byte(0xFF);
  Byte(static_cast<uint8_t>(0xE0 | Low3(r)));  // /4
}

void X64Assembler::CallReg(X64Reg r) {
  Rex(false, X64Reg::kRax, X64Reg::kRax, r);
  Byte(0xFF);
  Byte(static_cast<uint8_t>(0xD0 | Low3(r)));  // /2
}

void X64Assembler::Ret() { Byte(0xC3); }

}  // namespace xsb::wam
