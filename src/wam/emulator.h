#ifndef XSB_WAM_EMULATOR_H_
#define XSB_WAM_EMULATOR_H_

#include <functional>
#include <vector>

#include "base/status.h"
#include "term/store.h"
#include "wam/instr.h"

namespace xsb::wam {

// Decision returned by the per-solution callback.
enum class WamAction { kContinue, kStop };
using WamSolutionFn = std::function<WamAction()>;

struct WamStats {
  uint64_t instructions = 0;
  uint64_t choice_points = 0;
  // Mode-specialized entries taken / kCheckMode guards that failed and fell
  // back to the generic copy (a call violating its inferred mode pattern).
  uint64_t mode_checks = 0;
  uint64_t mode_fallbacks = 0;
};

// The WAM bytecode emulator: registers, environment stack and choice-point
// stack over the shared TermStore heap/trail. This is the "compiled"
// execution tier of the reproduction (Table 3's fastest rows are the
// WAM-based systems).
class Emulator {
 public:
  Emulator(TermStore* store, const CompiledModule* module)
      : store_(store), module_(module) {}

  // Proves `goal` (a heap term whose predicate is compiled in the module),
  // invoking the callback per solution with bindings live.
  Status Solve(Word goal, const WamSolutionFn& on_solution);

  WamStats& stats() { return stats_; }

 private:
  struct Frame {
    size_t cont_pc;
    size_t prev_frame;  // index+1; 0 = none
    std::vector<Word> y;
  };
  struct Choice {
    size_t alt_pc;
    size_t cont_pc;
    size_t frame;        // cur_frame_ at creation
    size_t frames_size;  // frames_.size() at creation
    size_t trail_mark;
    size_t heap_mark;
    std::vector<Word> args;  // A1..An snapshot
  };

  Word& Reg(uint32_t reg) {
    if (IsYReg(reg)) return frames_[cur_frame_ - 1].y[RegIndex(reg)];
    uint32_t ix = RegIndex(reg);
    if (x_.size() <= ix) x_.resize(ix + 1, 0);
    return x_[ix];
  }

  bool Backtrack(size_t* pc);
  Result<int64_t> Eval(Word expression);

  TermStore* store_;
  const CompiledModule* module_;
  std::vector<Word> x_;
  std::vector<Frame> frames_;
  size_t cur_frame_ = 0;  // index+1; 0 = none
  std::vector<Choice> cps_;
  std::vector<Word> ground_work_;  // kCheckMode ground-walk scratch
  WamStats stats_;
};

}  // namespace xsb::wam

#endif  // XSB_WAM_EMULATOR_H_
