#ifndef XSB_WAM_EMULATOR_H_
#define XSB_WAM_EMULATOR_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "base/status.h"
#include "term/store.h"
#include "wam/instr.h"
#include "wam/jit.h"

namespace xsb::wam {

// Decision returned by the per-solution callback.
enum class WamAction { kContinue, kStop };
using WamSolutionFn = std::function<WamAction()>;

struct WamStats {
  uint64_t instructions = 0;
  uint64_t choice_points = 0;
  // Mode-specialized entries taken / kCheckMode guards that failed and fell
  // back to the generic copy (a call violating its inferred mode pattern).
  uint64_t mode_checks = 0;
  uint64_t mode_fallbacks = 0;
  // JIT tier: predicates compiled to native code, native-code entries from
  // the interpreter loop, and bailouts back into it (every native entry that
  // did not end the search returns through a bailout at some bytecode pc).
  uint64_t jit_compiled_preds = 0;
  uint64_t jit_entries = 0;
  uint64_t jit_bailouts = 0;
  // First-argument indexing: structure-key dispatches that hit (functor
  // table or './2' fast path), and calls that fell through to a linear
  // clause chain — a switch_on_term taking its var arm, or an unindexed
  // try_me_else chain entry.
  uint64_t switch_structure_hits = 0;
  uint64_t switch_miss_linear = 0;
};

// Aggregate counters across every Emulator in the process, flushed at the
// end of each Solve. The engine-level wam_stats/2 builtin reports these.
WamStats GlobalWamStats();

struct EmulatorOptions {
  // JIT tier-up threshold: <0 disables the JIT, 0 compiles every predicate
  // on its first call, N>0 tiers a predicate up after N entries. Defaults to
  // the XSB_JIT_THRESHOLD environment variable (see DefaultJitThreshold).
  int64_t jit_threshold = DefaultJitThreshold();
};

// The WAM bytecode emulator: registers, environment stack and choice-point
// stack over the shared TermStore heap/trail. This is the "compiled"
// execution tier of the reproduction (Table 3's fastest rows are the
// WAM-based systems); hot predicates additionally tier up to native code
// through the Jit, which shares the primitives below.
class Emulator {
 public:
  explicit Emulator(TermStore* store, const CompiledModule* module,
                    EmulatorOptions options = EmulatorOptions());
  ~Emulator();

  // Proves `goal` (a heap term whose predicate is compiled in the module),
  // invoking the callback per solution with bindings live.
  Status Solve(Word goal, const WamSolutionFn& on_solution);

  WamStats& stats() { return stats_; }
  bool jit_active() const { return jit_ != nullptr; }

  // --- Choice-point / environment / guard primitives ------------------------
  // Shared verbatim by the interpreter's dispatch switch and the JIT's
  // runtime helpers, so both tiers execute identical semantics by
  // construction.

  // Choice points and environment frames live in high-water-mark stacks:
  // popping only moves the logical size (cps_size_/frames_size_), so the
  // per-entry vectors (saved A registers, Y slots) keep their capacity and
  // a push after warmup allocates nothing. A malloc+free per choice point
  // would otherwise dominate backtracking-heavy programs on both execution
  // tiers (every two-clause call pushes one).
  void PushChoice(size_t alt_pc, uint32_t arity, size_t cont) {
    if (cps_.size() == cps_size_) cps_.emplace_back();
    Choice& cp = cps_[cps_size_++];
    cp.alt_pc = alt_pc;
    cp.cont_pc = cont;
    cp.frame = cur_frame_;
    cp.frames_size = frames_size_;
    cp.trail_mark = store_->TrailMark();
    cp.heap_mark = store_->HeapMark();
    cp.args.assign(x_.begin(),
                   x_.begin() + std::min<size_t>(x_.size(), arity + 1));
    ++stats_.choice_points;
  }

  // retry/trust: restore the saved continuation; update or pop the choice.
  size_t RetryTop(size_t new_alt) {
    cps_[cps_size_ - 1].alt_pc = new_alt;
    return cps_[cps_size_ - 1].cont_pc;
  }
  size_t TrustTop() {
    return cps_[--cps_size_].cont_pc;
  }

  void AllocateFrame(uint32_t n, size_t cont) {
    if (frames_.size() == frames_size_) frames_.emplace_back();
    Frame& frame = frames_[frames_size_++];
    frame.cont_pc = cont;
    frame.prev_frame = cur_frame_;
    frame.y.assign(n, 0);
    cur_frame_ = frames_size_;
  }
  // The frame's storage survives (a choice point below may still need it);
  // only the E register moves, as in the real WAM. Returns the saved cont.
  size_t DeallocateFrame() {
    Frame& frame = frames_[cur_frame_ - 1];
    cur_frame_ = frame.prev_frame;
    return frame.cont_pc;
  }

  bool Backtrack(size_t* pc);
  // The kCheckMode groundness walk (iterative, reused scratch).
  bool GroundForMode(Word w);

 private:
  friend class Jit;

  struct Frame {
    size_t cont_pc;
    size_t prev_frame;  // index+1; 0 = none
    std::vector<Word> y;
  };
  struct Choice {
    size_t alt_pc;
    size_t cont_pc;
    size_t frame;        // cur_frame_ at creation
    size_t frames_size;  // frames_.size() at creation
    size_t trail_mark;
    size_t heap_mark;
    std::vector<Word> args;  // A1..An snapshot
  };

  Word& Reg(uint32_t reg) {
    if (IsYReg(reg)) return frames_[cur_frame_ - 1].y[RegIndex(reg)];
    uint32_t ix = RegIndex(reg);
    if (x_.size() <= ix) x_.resize(ix + 1, 0);
    return x_[ix];
  }

  Status SolveImpl(Word goal, const WamSolutionFn& on_solution);
  Result<int64_t> Eval(Word expression);
  bool BuiltinWamStats();
  void FlushGlobalStats();

  TermStore* store_;
  const CompiledModule* module_;
  std::vector<Word> x_;
  std::vector<Frame> frames_;   // storage high-water mark; logical top below
  size_t frames_size_ = 0;
  size_t cur_frame_ = 0;  // index+1; 0 = none
  std::vector<Choice> cps_;     // storage high-water mark; logical top below
  size_t cps_size_ = 0;
  std::vector<Word> ground_work_;  // kCheckMode ground-walk scratch
  WamStats stats_;
  WamStats flushed_;  // portion of stats_ already added to the global totals
  std::unique_ptr<Jit> jit_;  // null: interpret only
};

}  // namespace xsb::wam

#endif  // XSB_WAM_EMULATOR_H_
