#ifndef XSB_WAM_JIT_H_
#define XSB_WAM_JIT_H_

#include <cstdint>
#include <vector>

#include "term/store.h"
#include "wam/exec_arena.h"
#include "wam/instr.h"

namespace xsb::wam {

class Emulator;
class Jit;
struct WamStats;

// The mutable machine state the native tier shares with the emulator across
// one Execute() round trip. Field offsets are baked into generated code
// (static_asserts in jit.cc).
struct JitContext {
  Word* x_base = nullptr;    // x_.data(); refreshed on entry and backtracking
  Word* y_base = nullptr;    // current frame's Y block (null: no frame)
  uint64_t cont = 0;         // continuation pc
  uint64_t s = 0;            // structure cursor
  uint64_t write_mode = 0;   // 0/1
  Jit* jit = nullptr;        // back-pointer for the runtime helpers
  Word* heap_base = nullptr; // heap_buf().data; see the rbp cache in jit.cc
};

// The JIT tier-up threshold from XSB_JIT_THRESHOLD: <0 disables the JIT,
// 0 compiles every predicate on its first call, N>0 tiers a predicate up
// once it has been entered more than N times. Unset: kDefaultJitThreshold.
constexpr int64_t kDefaultJitThreshold = 64;
int64_t DefaultJitThreshold();

// Tier-up JIT: counts predicate entries in the interpreter loop and compiles
// hot predicates' bytecode ranges to x86-64 in an executable arena. The
// native subset covers the get/put/unify groups (both modes), first-argument
// switching, kCheckMode guards and the choice-point/environment instructions
// (the latter through runtime helpers that call the exact routines the
// interpreter switch uses); everything else — builtins, the solution/halt
// epilogue, calls into uncompiled predicates — exits to the emulator at the
// precise bytecode pc, so observable semantics (including every WamStats
// counter) are the emulator's by construction. Hosts that are not x86-64 or
// refuse executable pages are detected at runtime and never tier up.
class Jit {
 public:
  static constexpr uint8_t kFlagEntry = 1;   // predicate entry: count here
  static constexpr uint8_t kFlagNative = 2;  // real native code at this pc
  static constexpr uint64_t kFailStop = ~0ull;  // Execute: search exhausted

  // True when this build/host can map and run generated code (checked once
  // by actually executing a probe function from the arena).
  static bool HostSupported();

  Jit(Emulator* emu, const CompiledModule* module, TermStore* store,
      int64_t threshold);

  bool available() const { return available_; }
  uint8_t FlagsAt(size_t pc) const { return flags_[pc]; }

  // Interpreter hook at a predicate-entry pc: bump the invocation counter,
  // compile past the threshold.
  void OnEntry(size_t pc);

  // Runs native code from `pc` (which must have kFlagNative), syncing
  // cont/s/write_mode both ways. Returns the bytecode pc to resume
  // interpreting at, or kFailStop when backtracking exhausted the stack.
  uint64_t Execute(size_t pc, size_t* cont, uint64_t* s, bool* write_mode);

  // Largest X register index + 1 any compiled predicate touches; the emulator
  // pre-sizes x_ to this so native X accesses never need to grow it.
  size_t max_xreg_plus1() const { return max_xreg_plus1_; }

  Emulator* emu() { return emu_; }
  TermStore* store() { return store_; }
  const CompiledModule* module() { return module_; }
  // The emulator's counters, for the compiler to bake their addresses into
  // generated increments (JitCompiler is not the Emulator's friend).
  WamStats& EmuStats();
  // Re-derives ctx x_base/y_base from the emulator after a runtime helper
  // moved or grew them (backtracking, frame push/pop).
  void RefreshBases();

 private:
  friend class JitCompiler;
  void CompilePredicate(size_t pred_ix);
  void DisableNative();

  Emulator* emu_;
  const CompiledModule* module_;
  TermStore* store_;
  int64_t threshold_;
  bool available_ = false;
  ExecArena arena_;
  JitContext ctx_;
  std::vector<uint8_t> flags_;             // per pc
  std::vector<const void*> native_addrs_;  // per pc; null = interpret
  std::vector<uint64_t> entry_counts_;     // per predicate (pred_ranges order)
  std::vector<bool> compiled_;             // per predicate
  std::vector<uint32_t> entry_pred_;       // per pc: predicate index + 1
  size_t max_xreg_plus1_ = 16;  // x_ pre-size so native X access never grows
};

}  // namespace xsb::wam

#endif  // XSB_WAM_JIT_H_
