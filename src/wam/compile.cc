#include "wam/compile.h"

#include <deque>
#include <unordered_map>

namespace xsb::wam {
namespace {

constexpr uint32_t kFailTarget = 0xffffffffu;

// Builtins the compiler knows how to emit (by name/arity).
const std::unordered_map<std::string, BuiltinOp>& BuiltinNames() {
  static const auto* map = new std::unordered_map<std::string, BuiltinOp>{
      {"=/2", BuiltinOp::kUnify},     {"is/2", BuiltinOp::kIs},
      {"</2", BuiltinOp::kLess},      {"=</2", BuiltinOp::kLessEq},
      {">/2", BuiltinOp::kGreater},   {">=/2", BuiltinOp::kGreaterEq},
      {"=:=/2", BuiltinOp::kArithEq}, {"=\\=/2", BuiltinOp::kArithNeq},
      {"true/0", BuiltinOp::kTrue},   {"fail/0", BuiltinOp::kFail},
      {"false/0", BuiltinOp::kFail},  {"wam_stats/2", BuiltinOp::kWamStats},
  };
  return *map;
}

class Compiler {
 public:
  Compiler(TermStore* store, const Program& program,
           const CompileOptions& options)
      : store_(store),
        symbols_(store->symbols()),
        program_(program),
        options_(options) {}

  Result<CompiledModule> Compile(std::vector<FunctorId> predicates) {
    if (predicates.empty()) {
      for (const auto& [functor, pred] : program_.predicates()) {
        if (pred->num_live_clauses() > 0) predicates.push_back(functor);
      }
    }
    compiled_set_.insert(predicates.begin(), predicates.end());

    // pc 0/1: the query epilogue every Solve call continues into.
    module_.code.push_back(Instr{Op::kSolution, 0, 0, 0});
    module_.code.push_back(Instr{Op::kHalt, 0, 0, 0});

    for (FunctorId functor : predicates) {
      Status s = CompilePredicate(functor);
      if (!s.ok()) return s;
    }
    // Resolve call fixups.
    for (const auto& [pc, functor] : call_fixups_) {
      auto it = module_.entries.find(functor);
      if (it == module_.entries.end()) {
        return InvalidError("wam: call to predicate outside the module: " +
                            FunctorName(functor));
      }
      module_.code[pc].a = static_cast<uint32_t>(it->second);
    }
    return std::move(module_);
  }

 private:
  std::string FunctorName(FunctorId f) const {
    return symbols_->AtomName(symbols_->FunctorAtom(f)) + "/" +
           std::to_string(symbols_->FunctorArity(f));
  }

  void Emit(Op op, uint32_t a = 0, uint32_t b = 0, uint32_t c = 0) {
    module_.code.push_back(Instr{op, a, b, c});
  }
  size_t Here() const { return module_.code.size(); }

  Status CompilePredicate(FunctorId functor) {
    const Predicate* pred = program_.Lookup(functor);
    if (pred == nullptr || pred->num_live_clauses() == 0) {
      return InvalidError("wam: no clauses for " + FunctorName(functor));
    }
    if (pred->tabled()) {
      return InvalidError("wam: tabled predicate " + FunctorName(functor) +
                          " cannot be compiled to plain WAM code");
    }
    int arity = symbols_->FunctorArity(functor);

    std::vector<ClauseId> live;
    for (ClauseId id = 0; id < pred->clauses().size(); ++id) {
      if (!pred->clause(id).erased) live.push_back(id);
    }

    // Decide whether a first-arg switch applies: every clause must key on
    // a constant (atom/int) or a structure functor. The key cell's own tag
    // separates the two sides of the dispatch downstream.
    bool switchable = options_.index && arity >= 1 && live.size() > 1;
    std::vector<Word> first_keys(live.size());
    if (switchable) {
      for (size_t i = 0; i < live.size(); ++i) {
        const Clause& clause = pred->clause(live[i]);
        size_t pos = FlatArgPos(*symbols_, clause.term.cells,
                                clause.head_pos, 0);
        Word cell = clause.term.cells[pos];
        if (!IsAtom(cell) && !IsInt(cell) && !IsFunctor(cell)) {
          switchable = false;
          break;
        }
        first_keys[i] = cell;
      }
    }

    size_t begin = Here();
    module_.entries[functor] = begin;

    // Mode specialization: when the published modes prove arguments bound
    // at every analyzed call site and that buys at least one cheaper head
    // instruction (or a switch without the var test), emit a specialized
    // body behind a kCheckMode guard, with a generic copy as its verified
    // fallback. The guard makes the analysis a hint: a call violating the
    // inferred pattern takes the generic path, never wrong code.
    std::vector<uint8_t> spec;
    if (options_.specialize) spec = SpecFor(pred, arity, live, switchable);
    if (!spec.empty()) {
      size_t check_pc = Here();
      Emit(Op::kCheckMode, static_cast<uint32_t>(module_.mode_specs.size()),
           static_cast<uint32_t>(arity));
      module_.mode_specs.push_back(spec);
      cur_spec_ = spec;
      Status s = EmitPredicateBody(pred, live, first_keys, switchable, arity);
      cur_spec_.clear();
      if (!s.ok()) return s;
      module_.code[check_pc].c = static_cast<uint32_t>(Here());
    }
    Status s = EmitPredicateBody(pred, live, first_keys, switchable, arity);
    if (!s.ok()) return s;
    module_.pred_ranges.push_back(PredRange{
        functor, static_cast<uint32_t>(begin), static_cast<uint32_t>(Here())});
    return Status::Ok();
  }

  // True when `mode` proves the argument has a known outer symbol.
  static bool ModeBound(uint8_t mode) {
    return mode == kModeGround || mode == kModeNonvar;
  }

  // The specialization target for `pred`, or {} when the modes are absent
  // or buy nothing (guard overhead with no cheaper instruction is a loss).
  std::vector<uint8_t> SpecFor(const Predicate* pred, int arity,
                               const std::vector<ClauseId>& live,
                               bool switchable) const {
    const PublishedModes* modes = pred->modes();
    if (modes == nullptr ||
        modes->spec_meet.size() != static_cast<size_t>(arity)) {
      return {};
    }
    std::vector<uint8_t> spec = modes->spec_meet;
    // Groundness is only exploited by read-mode code *inside* structured
    // head arguments (kUnifyConstantRd, read-only nested structures): a
    // head argument whose structure holds nothing but variables compiles
    // to the same instructions under nonvar, and the nonvar guard is one
    // deref where the ground guard walks the whole term on every call.
    // Weaken each proven-ground argument the emitted code won't exploit.
    std::vector<bool> interior(static_cast<size_t>(arity), false);
    for (ClauseId id : live) {
      const Clause& clause = pred->clause(id);
      const std::vector<Word>& cells = clause.term.cells;
      if (!IsFunctor(cells[clause.head_pos])) continue;
      size_t arg = clause.head_pos + 1;
      for (int i = 0; i < arity; ++i) {
        size_t end = SkipFlatSubterm(*symbols_, cells, arg);
        if (IsFunctor(cells[arg])) {
          for (size_t p = arg + 1; p < end; ++p) {
            if (!IsLocal(cells[p])) {
              interior[static_cast<size_t>(i)] = true;
              break;
            }
          }
        }
        arg = end;
      }
    }
    for (int i = 0; i < arity; ++i) {
      if (spec[static_cast<size_t>(i)] == kModeGround &&
          !interior[static_cast<size_t>(i)]) {
        spec[static_cast<size_t>(i)] = kModeNonvar;
      }
    }
    bool benefit = switchable && ModeBound(spec[0]);
    for (ClauseId id : live) {
      if (benefit) break;
      const Clause& clause = pred->clause(id);
      const std::vector<Word>& cells = clause.term.cells;
      if (!IsFunctor(cells[clause.head_pos])) break;
      size_t arg = clause.head_pos + 1;
      for (int i = 0; i < arity; ++i) {
        if (ModeBound(spec[static_cast<size_t>(i)]) && !IsLocal(cells[arg])) {
          benefit = true;
          break;
        }
        arg = SkipFlatSubterm(*symbols_, cells, arg);
      }
    }
    return benefit ? spec : std::vector<uint8_t>{};
  }

  // One full body of a predicate: dispatch plus clause code. Emitted twice
  // for specialized predicates (once with cur_spec_ set, once generic).
  Status EmitPredicateBody(const Predicate* pred,
                           const std::vector<ClauseId>& live,
                           const std::vector<Word>& first_keys,
                           bool switchable, int arity) {
    if (live.size() == 1) {
      return CompileClause(pred->clause(live[0]));
    }

    if (!switchable) {
      // Plain try_me_else chain.
      std::vector<size_t> link_pcs;
      for (size_t i = 0; i < live.size(); ++i) {
        if (i == 0) {
          link_pcs.push_back(Here());
          Emit(Op::kTryMeElse, 0, static_cast<uint32_t>(arity));
        } else if (i + 1 < live.size()) {
          module_.code[link_pcs.back()].a = static_cast<uint32_t>(Here());
          link_pcs.push_back(Here());
          Emit(Op::kRetryMeElse, 0, static_cast<uint32_t>(arity));
        } else {
          module_.code[link_pcs.back()].a = static_cast<uint32_t>(Here());
          Emit(Op::kTrustMe);
        }
        Status s = CompileClause(pred->clause(live[i]));
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }

    // Two-level dispatch: switch_on_term splits var/constant/structure,
    // below it a constant table, a functor table and a './2' fast path
    // share the clause blocks. With a spec proving the first argument
    // bound, the var test (and the full chain behind it) is dead — and
    // when only one key kind occurs, the entry dispatches straight into
    // that table; constant-keyed clause blocks then skip their
    // first-argument get, the switch already verified it.
    bool first_arg_known =
        !cur_spec_.empty() && ModeBound(cur_spec_[0]);
    bool has_const = false;
    bool has_struct = false;
    for (Word key : first_keys) (IsFunctor(key) ? has_struct : has_const) = true;
    const FunctorId cons = symbols_->InternFunctor(symbols_->dot(), 2);
    const Word list_key = FunctorCell(cons);

    bool need_term_switch = !first_arg_known || (has_const && has_struct);
    size_t switch_pc = 0;
    if (need_term_switch) {
      switch_pc = Here();
      // All three arms patched below; an absent side stays kFailTarget.
      Emit(Op::kSwitchOnTerm, kFailTarget, kFailTarget, kFailTarget);
    }
    uint32_t const_table = 0;
    uint32_t struct_table = 0;
    size_t struct_switch_pc = 0;
    if (has_const) {
      if (need_term_switch) {
        module_.code[switch_pc].b = static_cast<uint32_t>(Here());
      }
      const_table = static_cast<uint32_t>(module_.switch_tables.size());
      module_.switch_tables.emplace_back();
      Emit(Op::kSwitchOnConstant, const_table);
    }
    if (has_struct) {
      if (need_term_switch) {
        module_.code[switch_pc].c = static_cast<uint32_t>(Here());
      }
      struct_switch_pc = Here();
      struct_table = static_cast<uint32_t>(module_.switch_tables.size());
      module_.switch_tables.emplace_back();
      Emit(Op::kSwitchOnStructure, struct_table, cons, kFailTarget);
    }

    // Clause blocks (each ends in proceed); record their pcs.
    // They are emitted after the chains, so use fixup lists.
    // First: group clauses by key, preserving source order.
    std::vector<std::pair<Word, std::vector<size_t>>> groups;  // key -> ix
    for (size_t i = 0; i < live.size(); ++i) {
      bool found = false;
      for (auto& [key, members] : groups) {
        if (key == first_keys[i]) {
          members.push_back(i);
          found = true;
          break;
        }
      }
      if (!found) groups.push_back({first_keys[i], {i}});
    }

    // Chain areas reference clause block pcs, which we know only after
    // emitting the blocks; emit chains with placeholders and patch.
    struct ChainRef {
      size_t pc;        // instruction to patch (operand a)
      size_t clause_ix; // index into `live`
    };
    std::vector<ChainRef> refs;

    // Bucket chains for keys with >1 clause.
    std::unordered_map<Word, size_t> bucket_chain_pc;
    for (auto& [key, members] : groups) {
      if (members.size() == 1) continue;
      bucket_chain_pc[key] = Here();
      for (size_t j = 0; j < members.size(); ++j) {
        Op op = j == 0 ? Op::kTry
                       : (j + 1 < members.size() ? Op::kRetry : Op::kTrust);
        refs.push_back({Here(), members[j]});
        Emit(op, 0, static_cast<uint32_t>(arity));
      }
    }

    // Full chain (unbound first argument); dead when the spec proves the
    // first argument bound.
    if (!first_arg_known) {
      size_t full_chain_pc = Here();
      module_.code[switch_pc].a = static_cast<uint32_t>(full_chain_pc);
      for (size_t i = 0; i < live.size(); ++i) {
        Op op = i == 0 ? Op::kTry
                       : (i + 1 < live.size() ? Op::kRetry : Op::kTrust);
        refs.push_back({Here(), i});
        Emit(op, 0, static_cast<uint32_t>(arity));
      }
    }

    // Clause blocks.
    std::vector<size_t> clause_pc(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      clause_pc[i] = Here();
      skip_first_get_ = first_arg_known;
      Status s = CompileClause(pred->clause(live[i]));
      skip_first_get_ = false;
      if (!s.ok()) return s;
    }
    for (const ChainRef& ref : refs) {
      module_.code[ref.pc].a = static_cast<uint32_t>(clause_pc[ref.clause_ix]);
    }
    // Fill the dispatch tables: single-clause keys jump straight to the
    // block (no choice point at all); './2' rides the list fast path on
    // the switch_on_structure instruction itself.
    for (auto& [key, members] : groups) {
      uint32_t target = static_cast<uint32_t>(
          members.size() == 1 ? clause_pc[members[0]] : bucket_chain_pc[key]);
      if (IsFunctor(key)) {
        if (key == list_key) {
          module_.code[struct_switch_pc].c = target;
        } else {
          module_.switch_tables[struct_table].Set(key, target);
        }
      } else {
        module_.switch_tables[const_table].Set(key, target);
      }
    }
    return Status::Ok();
  }

  // --- Clause compilation -----------------------------------------------------

  struct ClauseCtx {
    std::unordered_map<uint64_t, uint32_t> var_regs;  // heap var -> reg
    bool is_rule = false;
    uint32_t temp_next = 0;  // next free X temp
  };

  Status CompileClause(const Clause& clause) {
    size_t heap_mark = store_->HeapMark();
    Word term = Unflatten(store_, clause.term);
    Word head = term;
    std::vector<Word> goals;
    if (clause.is_rule) {
      Word d = store_->Deref(term);
      head = store_->Deref(store_->Arg(d, 0));
      Status s = FlattenBody(store_->Arg(d, 1), &goals);
      if (!s.ok()) return s;
    } else {
      head = store_->Deref(term);
    }

    ClauseCtx ctx;
    ctx.is_rule = !goals.empty();

    // Temps start above the widest argument register use.
    uint32_t max_arity = 0;
    auto arity_of = [&](Word t) -> uint32_t {
      t = store_->Deref(t);
      return IsStruct(t) ? static_cast<uint32_t>(store_->StructArity(t)) : 0;
    };
    max_arity = arity_of(head);
    for (Word g : goals) max_arity = std::max(max_arity, arity_of(g));
    ctx.temp_next = max_arity + 1;

    // Permanent variables: in rules, every clause variable lives in the
    // environment (a sound, conservative register allocation; XSB's
    // compiler is smarter, the semantics are the same).
    uint32_t num_y = 0;
    if (ctx.is_rule) {
      auto collect = [&](auto&& self, Word t) -> void {
        t = store_->Deref(t);
        if (IsRef(t)) {
          auto [it, inserted] =
              ctx.var_regs.try_emplace(PayloadOf(t), YReg(num_y));
          if (inserted) ++num_y;
          return;
        }
        if (IsStruct(t)) {
          int n = store_->StructArity(t);
          for (int i = 0; i < n; ++i) self(self, store_->Arg(t, i));
        }
      };
      collect(collect, head);
      for (Word g : goals) collect(collect, g);
      Emit(Op::kAllocate, num_y);
      // Re-map: registers assigned, but "first occurrence" tracking is
      // separate; clear the seen set.
      seen_.clear();
    } else {
      ctx.var_regs.clear();
      seen_.clear();
    }

    Status s = CompileHead(&ctx, head);
    if (!s.ok()) return s;
    for (Word g : goals) {
      s = CompileGoal(&ctx, g);
      if (!s.ok()) return s;
    }
    if (ctx.is_rule) Emit(Op::kDeallocate);
    Emit(Op::kProceed);

    store_->TruncateHeap(heap_mark);
    return Status::Ok();
  }

  Status FlattenBody(Word body, std::vector<Word>* goals) {
    body = store_->Deref(body);
    if (IsStruct(body)) {
      FunctorId f = store_->StructFunctor(body);
      if (symbols_->FunctorAtom(f) == symbols_->comma() &&
          symbols_->FunctorArity(f) == 2) {
        Status s = FlattenBody(store_->Arg(body, 0), goals);
        if (!s.ok()) return s;
        return FlattenBody(store_->Arg(body, 1), goals);
      }
    }
    if (IsRef(body) || IsInt(body)) {
      return InvalidError("wam: unsupported body goal");
    }
    goals->push_back(body);
    return Status::Ok();
  }

  // Register for a variable; facts allocate X temps on first use.
  uint32_t VarReg(ClauseCtx* ctx, Word var) {
    uint64_t key = PayloadOf(var);
    auto it = ctx->var_regs.find(key);
    if (it != ctx->var_regs.end()) return it->second;
    uint32_t reg = XReg(ctx->temp_next++);
    ctx->var_regs.emplace(key, reg);
    return reg;
  }
  bool FirstOccurrence(Word var) { return seen_.insert(PayloadOf(var)).second; }

  // BFS queue entry for nested head structures: `rd` marks a structure
  // rooted under a proven-ground argument, whose subterm cells can never be
  // unbound (read-only matching, no write-mode code).
  struct HeadStruct {
    uint32_t reg;
    Word term;
    bool rd;
  };

  Status CompileHead(ClauseCtx* ctx, Word head) {
    head = store_->Deref(head);
    if (IsAtom(head)) return Status::Ok();
    int arity = store_->StructArity(head);
    std::deque<HeadStruct> queue;
    for (int i = 0; i < arity; ++i) {
      Word arg = store_->Deref(store_->Arg(head, i));
      uint32_t ai = static_cast<uint32_t>(i + 1);
      uint8_t mode = static_cast<size_t>(i) < cur_spec_.size()
                         ? cur_spec_[static_cast<size_t>(i)]
                         : kModeAny;
      if (IsRef(arg)) {
        uint32_t reg = VarReg(ctx, arg);
        Emit(FirstOccurrence(arg) ? Op::kGetVariable : Op::kGetValue, reg,
             ai);
      } else if (IsAtom(arg) || IsInt(arg)) {
        if (i == 0 && skip_first_get_) continue;  // the switch verified it
        Emit(ModeBound(mode) ? Op::kGetConstantNv : Op::kGetConstant,
             static_cast<uint32_t>(module_.AddConstant(arg)), ai);
      } else {
        Emit(ModeBound(mode) ? Op::kGetStructureRd : Op::kGetStructure,
             static_cast<uint32_t>(store_->StructFunctor(arg)), ai);
        EmitUnifyArgs(ctx, arg, &queue, mode == kModeGround);
      }
    }
    while (!queue.empty()) {
      HeadStruct item = queue.front();
      queue.pop_front();
      Emit(item.rd ? Op::kGetStructureRd : Op::kGetStructure,
           static_cast<uint32_t>(store_->StructFunctor(item.term)), item.reg);
      EmitUnifyArgs(ctx, item.term, &queue, item.rd);
    }
    return Status::Ok();
  }

  // unify_* sequence for the args of `term`, queueing nested structures.
  // `rd`: the enclosing structure is proven ground, so argument cells are
  // never unbound and nested structures stay read-only.
  void EmitUnifyArgs(ClauseCtx* ctx, Word term, std::deque<HeadStruct>* queue,
                     bool rd) {
    int n = store_->StructArity(term);
    for (int i = 0; i < n; ++i) {
      Word arg = store_->Deref(store_->Arg(term, i));
      if (IsRef(arg)) {
        uint32_t reg = VarReg(ctx, arg);
        Emit(FirstOccurrence(arg) ? Op::kUnifyVariable : Op::kUnifyValue,
             reg);
      } else if (IsAtom(arg) || IsInt(arg)) {
        Emit(rd ? Op::kUnifyConstantRd : Op::kUnifyConstant,
             static_cast<uint32_t>(module_.AddConstant(arg)));
      } else {
        uint32_t temp = XReg(ctx->temp_next++);
        Emit(Op::kUnifyVariable, temp);
        queue->push_back({temp, arg, rd});
      }
    }
  }

  // Builds structure `term` into register `target` (write mode, bottom-up).
  void BuildStruct(ClauseCtx* ctx, Word term, uint32_t target) {
    int n = store_->StructArity(term);
    // First build nested structures into temps.
    std::vector<uint32_t> arg_regs(static_cast<size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      Word arg = store_->Deref(store_->Arg(term, i));
      if (IsStruct(arg)) {
        uint32_t temp = XReg(ctx->temp_next++);
        BuildStruct(ctx, arg, temp);
        arg_regs[i] = temp;
      }
    }
    Emit(Op::kPutStructure,
         static_cast<uint32_t>(store_->StructFunctor(term)), target);
    for (int i = 0; i < n; ++i) {
      Word arg = store_->Deref(store_->Arg(term, i));
      if (IsRef(arg)) {
        uint32_t reg = VarReg(ctx, arg);
        Emit(FirstOccurrence(arg) ? Op::kUnifyVariable : Op::kUnifyValue,
             reg);
      } else if (IsAtom(arg) || IsInt(arg)) {
        Emit(Op::kUnifyConstant,
             static_cast<uint32_t>(module_.AddConstant(arg)));
      } else {
        Emit(Op::kUnifyValue, arg_regs[i]);
      }
    }
  }

  Status CompileGoal(ClauseCtx* ctx, Word goal) {
    goal = store_->Deref(goal);
    FunctorId functor;
    int arity = 0;
    if (IsAtom(goal)) {
      functor = symbols_->InternFunctor(AtomOf(goal), 0);
    } else if (IsStruct(goal)) {
      functor = store_->StructFunctor(goal);
      arity = store_->StructArity(goal);
    } else {
      return InvalidError("wam: unsupported body goal");
    }

    // Reset temps for this goal's argument loading.
    uint32_t saved_temp = ctx->temp_next;

    // Load A1..An.
    for (int i = 0; i < arity; ++i) {
      Word arg = store_->Deref(store_->Arg(goal, i));
      uint32_t ai = static_cast<uint32_t>(i + 1);
      if (IsRef(arg)) {
        uint32_t reg = VarReg(ctx, arg);
        Emit(FirstOccurrence(arg) ? Op::kPutVariable : Op::kPutValue, reg,
             ai);
      } else if (IsAtom(arg) || IsInt(arg)) {
        Emit(Op::kPutConstant,
             static_cast<uint32_t>(module_.AddConstant(arg)), ai);
      } else {
        BuildStruct(ctx, arg, ai);
      }
    }

    const std::string name = FunctorName(functor);
    auto builtin = BuiltinNames().find(name);
    if (builtin != BuiltinNames().end()) {
      Emit(Op::kBuiltin, static_cast<uint32_t>(builtin->second),
           static_cast<uint32_t>(arity));
    } else {
      if (compiled_set_.count(functor) == 0) {
        return InvalidError("wam: body calls uncompiled predicate " + name);
      }
      call_fixups_.emplace_back(Here(), functor);
      Emit(Op::kCall, 0, functor);
    }
    ctx->temp_next = saved_temp;
    return Status::Ok();
  }

  TermStore* store_;
  SymbolTable* symbols_;
  const Program& program_;
  CompileOptions options_;
  CompiledModule module_;
  std::vector<std::pair<size_t, FunctorId>> call_fixups_;
  std::unordered_set<FunctorId> compiled_set_;
  std::unordered_set<uint64_t> seen_;
  // Active mode spec while emitting a specialized predicate body (empty =
  // generic), and whether clause blocks may omit their first-argument get
  // (constant-switch dispatch already verified it).
  std::vector<uint8_t> cur_spec_;
  bool skip_first_get_ = false;
};

}  // namespace

Result<CompiledModule> CompileModule(TermStore* store, const Program& program,
                                     const std::vector<FunctorId>& predicates,
                                     const CompileOptions& options) {
  Compiler compiler(store, program, options);
  return compiler.Compile(predicates);
}

Result<CompiledModule> CompileModule(TermStore* store, const Program& program,
                                     const std::vector<FunctorId>& predicates) {
  return CompileModule(store, program, predicates, CompileOptions{});
}

}  // namespace xsb::wam
