#ifndef XSB_WAM_INSTR_H_
#define XSB_WAM_INSTR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "term/cell.h"

namespace xsb::wam {

// The classic WAM instruction set (Warren 1983), the execution level the
// paper's engine compiles to (sections 3.2 and 5: "XSB code is compiled to
// a lower level than is usual with database systems").
enum class Op : uint8_t {
  // Head (get) instructions — match the call's argument registers.
  kGetVariable,   // a: reg, b: Ai        Vreg = Ai
  kGetValue,      // a: reg, b: Ai        unify(Vreg, Ai)
  kGetConstant,   // a: const ix, b: Ai
  kGetStructure,  // a: functor, b: Ai    enter read/write mode

  // Unify (and write-mode set) instructions inside a structure.
  kUnifyVariable,  // a: reg
  kUnifyValue,     // a: reg
  kUnifyConstant,  // a: const ix
  kUnifyVoid,      // a: count

  // Body (put) instructions — load the next call's argument registers.
  kPutVariable,   // a: reg, b: Ai        fresh var in both
  kPutValue,      // a: reg, b: Ai
  kPutConstant,   // a: const ix, b: Ai
  kPutStructure,  // a: functor, b: Ai    write mode

  // Control.
  kAllocate,    // a: number of permanent (Y) variables
  kDeallocate,  //
  kCall,        // a: entry pc, b: functor (for diagnostics)
  kProceed,     //

  // Choice points.
  kTryMeElse,    // a: alternative pc
  kRetryMeElse,  // a: alternative pc
  kTrustMe,      //

  // First-argument indexing.
  kSwitchOnTerm,      // a: var pc, b: const-switch pc, c: struct pc
  kSwitchOnConstant,  // a: table index (constant -> pc; miss = fail)
  kTry,               // a: clause pc (like try_me_else but branch target)
  kRetry,             // a: clause pc
  kTrust,             // a: clause pc

  // Builtins evaluated over the argument registers.
  kBuiltin,  // a: BuiltinOp, b: arity (args in A1..Ab)

  // Query driving.
  kSolution,  // report a solution, then backtrack
  kHalt,

  // Mode-specialized instructions (emitted only under a kCheckMode guard;
  // the analysis that justifies them is runtime-verified, never trusted).
  kCheckMode,       // a: mode-spec index, b: arity, c: generic entry pc —
                    // verify A1..Ab against the spec; jump to c on mismatch
  kGetConstantNv,   // a: const ix, b: Ai — Ai proven nonvar: compare only,
                    // no unbound-var branch, no trailing
  kGetStructureRd,  // a: functor, b: Ai — Ai proven nonvar: read mode only,
                    // no write-mode branch
  kUnifyConstantRd, // a: const ix — inside kGetStructureRd with a ground
                    // root: argument cells cannot be unbound

  // Second level of first-argument indexing, structure side: dispatch on
  // the functor/arity key of A1 (which must deref to a structure; anything
  // else fails). a: table index (functor cell -> pc; miss = fail),
  // b: the list cons functor id, c: list fast-path pc — the './2' bucket
  // is dispatched by one compare, before the table lookup (kFailTarget:
  // no list-keyed clauses, './2' falls through to the table miss).
  kSwitchOnStructure,
};

enum class BuiltinOp : uint32_t {
  kUnify,      // A1 = A2
  kIs,         // A1 is A2
  kLess,       // A1 < A2
  kLessEq,     // A1 =< A2
  kGreater,    // A1 > A2
  kGreaterEq,  // A1 >= A2
  kArithEq,    // A1 =:= A2
  kArithNeq,   // A1 =\= A2
  kTrue,
  kFail,
  kWamStats,   // wam_stats(Scope, Pairs): unify A2 with the emulator's
               // WamStats counters as a [name-Value, ...] list
};

// Register operands: X (temporary) registers share the space with argument
// registers (A_i == X_i); Y (permanent) registers live in the environment.
// The high bit selects Y.
constexpr uint32_t kYRegFlag = 0x80000000u;
inline uint32_t XReg(uint32_t n) { return n; }
inline uint32_t YReg(uint32_t n) { return n | kYRegFlag; }
inline bool IsYReg(uint32_t reg) { return (reg & kYRegFlag) != 0; }
inline uint32_t RegIndex(uint32_t reg) { return reg & ~kYRegFlag; }

struct Instr {
  Op op;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
};

// The code range a predicate's instructions occupy: [begin, end), with
// `begin` also its entry pc. The JIT compiles whole ranges so every static
// branch target (switch arms, clause blocks, check_mode fallbacks) stays
// inside the compiled unit.
struct PredRange {
  FunctorId functor;
  uint32_t begin;
  uint32_t end;
};

// One first-argument dispatch table (constant- or functor-keyed). Small
// fanouts stay an insertion-ordered vector scanned linearly — for the 2-4
// key predicates that dominate real programs a scan beats hashing — and
// escalate to a hash map once the key count passes kHashFanout. Both the
// emulator's switch dispatch and the JIT's runtime helpers read the same
// table, so the tiers cannot disagree on a lookup.
struct SwitchTable {
  static constexpr uint32_t kMiss = 0xffffffffu;
  static constexpr size_t kHashFanout = 8;

  std::vector<std::pair<Word, uint32_t>> entries;  // insertion order
  std::unordered_map<Word, uint32_t> hash;         // built above kHashFanout

  void Set(Word key, uint32_t target) {
    for (auto& e : entries) {
      if (e.first == key) {
        e.second = target;
        if (!hash.empty()) hash[key] = target;
        return;
      }
    }
    entries.emplace_back(key, target);
    if (!hash.empty()) {
      hash.emplace(key, target);
    } else if (entries.size() > kHashFanout) {
      for (const auto& e : entries) hash.emplace(e.first, e.second);
    }
  }

  uint32_t Lookup(Word key) const {
    if (!hash.empty()) {
      auto it = hash.find(key);
      return it == hash.end() ? kMiss : it->second;
    }
    for (const auto& e : entries) {
      if (e.first == key) return e.second;
    }
    return kMiss;
  }

  size_t size() const { return entries.size(); }
  bool hashed() const { return !hash.empty(); }
};

// A compiled module: code, constants, switch tables and predicate entries.
struct CompiledModule {
  std::vector<Instr> code;
  std::vector<Word> constants;
  std::vector<SwitchTable> switch_tables;
  std::unordered_map<FunctorId, size_t> entries;  // functor -> entry pc
  // kCheckMode argument-mode specs (kMode* bytes per argument position;
  // kModeAny positions are not checked).
  std::vector<std::vector<uint8_t>> mode_specs;
  // Per-predicate pc extents, in emission order (the JIT's unit of work).
  std::vector<PredRange> pred_ranges;

  size_t AddConstant(Word w) {
    for (size_t i = 0; i < constants.size(); ++i) {
      if (constants[i] == w) return i;
    }
    constants.push_back(w);
    return constants.size() - 1;
  }

  // Human-readable listing of the compiled code.
  std::string Disassemble(const SymbolTable& symbols) const;
};

}  // namespace xsb::wam

#endif  // XSB_WAM_INSTR_H_
