#ifndef XSB_WAM_COMPILE_H_
#define XSB_WAM_COMPILE_H_

#include <vector>

#include "base/status.h"
#include "db/program.h"
#include "term/store.h"
#include "wam/instr.h"

namespace xsb::wam {

struct CompileOptions {
  // Emit mode-specialized entry code for predicates whose published modes
  // (Predicate::modes()->spec_meet) prove arguments bound: the entry checks
  // the actual arguments against the spec (kCheckMode) and falls back to a
  // generic copy on mismatch, so the analysis is verified, never trusted.
  bool specialize = true;
  // Build first-argument dispatch (switch_on_term / switch_on_constant /
  // switch_on_structure). Off forces every multi-clause predicate onto a
  // try_me_else chain — the ablation baseline the property sweeps and the
  // bench decomposition compare against.
  bool index = true;
};

// Compiles `predicates` ({} = every predicate with clauses) of `program`
// into WAM code with two-level first-argument indexing (constant table,
// functor table, list fast path) where every clause head keys on a
// constant or structure.
//
// Supported clause bodies: conjunctions of user predicate calls (which must
// themselves be compiled in the same module) and the arithmetic/unification
// builtins of BuiltinOp. Control constructs, negation, and tabled
// predicates stay on the interpreted engine (exactly the paper's split:
// WAM-speed for compiled code, SLG machinery above it).
Result<CompiledModule> CompileModule(TermStore* store, const Program& program,
                                     const std::vector<FunctorId>& predicates,
                                     const CompileOptions& options);
Result<CompiledModule> CompileModule(TermStore* store, const Program& program,
                                     const std::vector<FunctorId>& predicates);

}  // namespace xsb::wam

#endif  // XSB_WAM_COMPILE_H_
