#ifndef XSB_WAM_EXEC_ARENA_H_
#define XSB_WAM_EXEC_ARENA_H_

#include <cstdint>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define XSB_EXEC_ARENA_HAVE_MMAP 1
#endif

namespace xsb::wam {

// W^X executable memory for JIT output. Chunks are mmap'd writable, code is
// copied in, and the whole chunk is flipped to read+execute; appending to a
// partially-used chunk flips it back to writable first. Nothing runs native
// code while a commit is in progress (compilation happens from the bytecode
// interpreter loop), so the flip is safe. Any mmap/mprotect refusal — seccomp
// filters, PaX/SELinux-style exec restrictions, noexec maps — makes Commit
// return null and the caller stays on the emulator.
class ExecArena {
 public:
  ExecArena() = default;
  ExecArena(const ExecArena&) = delete;
  ExecArena& operator=(const ExecArena&) = delete;

  ~ExecArena() {
#if XSB_EXEC_ARENA_HAVE_MMAP
    for (const Chunk& c : chunks_) munmap(c.base, c.size);
#endif
  }

  // Copies `code` into executable memory; returns its start address, or
  // nullptr when the host refuses executable pages.
  void* Commit(const uint8_t* code, size_t size) {
#if XSB_EXEC_ARENA_HAVE_MMAP
    if (size == 0) return nullptr;
    Chunk* chunk = nullptr;
    if (!chunks_.empty() && chunks_.back().used + size <= chunks_.back().size) {
      chunk = &chunks_.back();
      if (mprotect(chunk->base, chunk->size, PROT_READ | PROT_WRITE) != 0) {
        return nullptr;
      }
    } else {
      size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
      size_t want = size < kChunkSize ? kChunkSize : size;
      want = (want + page - 1) & ~(page - 1);
      void* base = mmap(nullptr, want, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (base == MAP_FAILED) return nullptr;
      chunks_.push_back(Chunk{static_cast<uint8_t*>(base), want, 0});
      chunk = &chunks_.back();
    }
    uint8_t* dst = chunk->base + chunk->used;
    std::memcpy(dst, code, size);
    chunk->used += size;
    if (mprotect(chunk->base, chunk->size, PROT_READ | PROT_EXEC) != 0) {
      // The chunk may hold previously-committed code that is now
      // non-executable; the caller must stop issuing native entries.
      return nullptr;
    }
    return dst;
#else
    (void)code;
    (void)size;
    return nullptr;
#endif
  }

 private:
  static constexpr size_t kChunkSize = 256 * 1024;
  struct Chunk {
    uint8_t* base;
    size_t size;
    size_t used;
  };
  std::vector<Chunk> chunks_;
};

}  // namespace xsb::wam

#endif  // XSB_WAM_EXEC_ARENA_H_
