#include "wfs/wfs.h"

#include <functional>
#include <set>

#include "bottomup/seminaive.h"

namespace xsb::wfs {

using datalog::Arg;
using datalog::EvalOptions;
using datalog::Evaluation;
using datalog::Relation;
using datalog::Rule;
using datalog::Value;
using datalog::VarId;

Truth WellFoundedModel::TruthOf(PredId pred, const Tuple& args) const {
  auto it = atom_truth_.find({pred, args});
  return it == atom_truth_.end() ? Truth::kFalse : it->second;
}

namespace {

using AtomId = uint32_t;

struct GroundRule {
  AtomId head;
  std::vector<AtomId> pos;  // IDB positive conditions
  std::vector<AtomId> neg;  // negative conditions (atoms in the overestimate)
};

// Enumerates assignments satisfying the positive body literals of `rule`
// over the overestimate relations.
void EnumerateBodies(const Rule& rule, size_t idx,
                     const std::vector<int>& positive_order,
                     Evaluation* over, std::vector<Value>* env,
                     std::vector<bool>* bound,
                     const std::function<void()>& emit) {
  if (idx == positive_order.size()) {
    emit();
    return;
  }
  const Literal& literal = rule.body[positive_order[idx]];
  Relation& rel = over->relation(literal.pred);
  int probe_column = -1;
  Value probe_value = 0;
  for (size_t i = 0; i < literal.args.size(); ++i) {
    const Arg& arg = literal.args[i];
    if (!arg.is_var) {
      probe_column = static_cast<int>(i);
      probe_value = arg.id;
      break;
    }
    if ((*bound)[arg.id]) {
      probe_column = static_cast<int>(i);
      probe_value = (*env)[arg.id];
      break;
    }
  }
  auto match = [&](const Tuple& tuple) {
    std::vector<VarId> newly;
    bool ok = true;
    for (size_t i = 0; i < literal.args.size(); ++i) {
      const Arg& arg = literal.args[i];
      if (!arg.is_var) {
        if (tuple[i] != arg.id) {
          ok = false;
          break;
        }
        continue;
      }
      if ((*bound)[arg.id]) {
        if ((*env)[arg.id] != tuple[i]) {
          ok = false;
          break;
        }
        continue;
      }
      (*bound)[arg.id] = true;
      (*env)[arg.id] = tuple[i];
      newly.push_back(arg.id);
    }
    if (ok) EnumerateBodies(rule, idx + 1, positive_order, over, env, bound,
                            emit);
    for (VarId v : newly) (*bound)[v] = false;
  };
  if (probe_column >= 0) {
    for (uint32_t row : rel.Probe(probe_column, probe_value)) {
      match(rel.tuples()[row]);
    }
  } else {
    for (const Tuple& tuple : rel.tuples()) match(tuple);
  }
}

}  // namespace

Result<WellFoundedModel> ComputeWellFounded(DatalogProgram* program) {
  Status safety = program->CheckSafety();
  if (!safety.ok()) return safety;

  // 1. Relevant overestimate: evaluate the positive version (negative
  // literals dropped — a superset of every fixpoint below).
  DatalogProgram positive;
  // Share predicate/constant identity by re-interning in the same order.
  for (PredId p = 0; p < program->num_preds(); ++p) {
    positive.InternPred(program->PredName(p), program->PredArity(p));
  }
  // The const pools must agree; copy values by id (ConstPool is append-only
  // and ids are dense, so re-intern in order).
  // Note: we just reuse the ids — the positive program never looks names up.
  for (const auto& [pred, tuples] : program->edb()) {
    for (const Tuple& t : tuples) positive.AddFact(pred, t);
  }
  for (const Rule& rule : program->rules()) {
    Rule copy;
    copy.head = rule.head;
    copy.num_vars = rule.num_vars;
    for (const Literal& literal : rule.body) {
      if (!literal.negated) copy.body.push_back(literal);
    }
    positive.AddRule(std::move(copy));
  }
  Evaluation over(&positive);
  Status st = over.Run(EvalOptions());
  if (!st.ok()) return st;

  // 2. Ground the rules over the overestimate.
  WellFoundedModel model;
  std::unordered_map<std::pair<PredId, Tuple>, AtomId,
                     WellFoundedModel::AtomKeyHash>
      atom_ids;
  std::vector<std::pair<PredId, Tuple>> atoms;
  auto intern_atom = [&](PredId pred, Tuple args) {
    auto key = std::make_pair(pred, std::move(args));
    auto it = atom_ids.find(key);
    if (it != atom_ids.end()) return it->second;
    AtomId id = static_cast<AtomId>(atoms.size());
    atoms.push_back(key);
    atom_ids.emplace(std::move(key), id);
    return id;
  };

  // EDB membership test.
  auto is_edb_pred = [&](PredId p) { return !program->IsIdb(p); };

  std::vector<GroundRule> ground;
  for (const Rule& rule : program->rules()) {
    std::vector<int> positive_order;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (!rule.body[i].negated) positive_order.push_back(static_cast<int>(i));
    }
    std::vector<Value> env(rule.num_vars, 0);
    std::vector<bool> bound(rule.num_vars, false);
    auto ground_args = [&](const Literal& literal) {
      Tuple t(literal.args.size());
      for (size_t i = 0; i < literal.args.size(); ++i) {
        const Arg& arg = literal.args[i];
        t[i] = arg.is_var ? env[arg.id] : arg.id;
      }
      return t;
    };
    EnumerateBodies(rule, 0, positive_order, &over, &env, &bound, [&]() {
      GroundRule gr;
      gr.head = intern_atom(rule.head.pred, ground_args(rule.head));
      bool dead = false;
      for (const Literal& literal : rule.body) {
        Tuple args = ground_args(literal);
        if (!literal.negated) {
          // EDB positives hold by construction; keep IDB conditions.
          if (!is_edb_pred(literal.pred)) {
            gr.pos.push_back(intern_atom(literal.pred, std::move(args)));
          }
          continue;
        }
        if (is_edb_pred(literal.pred)) {
          // Negation over the EDB is decided now.
          if (over.relation(literal.pred).Contains(args)) dead = true;
          continue;
        }
        if (!over.relation(literal.pred).Contains(args)) {
          continue;  // atom outside the overestimate: surely false
        }
        gr.neg.push_back(intern_atom(literal.pred, std::move(args)));
      }
      if (!dead) ground.push_back(std::move(gr));
    });
  }
  model.num_ground_rules_ = ground.size();

  // 3. Alternating fixpoint: S(I) = lfp of the I-reduct.
  size_t n = atoms.size();
  auto reduct_lfp = [&](const std::vector<bool>& negatives) {
    std::vector<bool> truth(n, false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const GroundRule& gr : ground) {
        if (truth[gr.head]) continue;
        bool fire = true;
        for (AtomId a : gr.pos) {
          if (!truth[a]) {
            fire = false;
            break;
          }
        }
        if (fire) {
          for (AtomId a : gr.neg) {
            if (negatives[a]) {
              fire = false;
              break;
            }
          }
        }
        if (fire) {
          truth[gr.head] = true;
          changed = true;
        }
      }
    }
    return truth;
  };

  std::vector<bool> even(n, false);  // increasing: definitely true
  std::vector<bool> odd;             // decreasing: possibly true
  size_t iterations = 0;
  while (true) {
    ++iterations;
    odd = reduct_lfp(even);
    std::vector<bool> next_even = reduct_lfp(odd);
    if (next_even == even) break;
    even = std::move(next_even);
  }
  model.iterations_ = iterations;

  for (AtomId a = 0; a < n; ++a) {
    Truth truth = even[a] ? Truth::kTrue
                          : (odd[a] ? Truth::kUndefined : Truth::kFalse);
    if (truth == Truth::kTrue) ++model.num_true_;
    if (truth == Truth::kUndefined) ++model.num_undefined_;
    model.atom_truth_.emplace(atoms[a], truth);
  }
  // EDB facts are true.
  for (const auto& [pred, tuples] : program->edb()) {
    for (const Tuple& t : tuples) {
      auto [it, inserted] =
          model.atom_truth_.emplace(std::make_pair(pred, t), Truth::kTrue);
      if (inserted) ++model.num_true_;
    }
  }
  return model;
}

}  // namespace xsb::wfs
