#ifndef XSB_WFS_WFS_H_
#define XSB_WFS_WFS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "bottomup/rules.h"

namespace xsb::wfs {

using datalog::DatalogProgram;
using datalog::Literal;
using datalog::PredId;
using datalog::Tuple;

enum class Truth { kTrue, kFalse, kUndefined };

// The well-founded model of a (possibly non-stratified) datalog program with
// negation, computed by Van Gelder's alternating fixpoint over the relevant
// grounding. This is the reproduction of the meta-interpreter XSB provides
// for programs the engine's modularly-stratified SLG cannot handle
// (sections 1, 3.1: well-founded semantics / three-valued stable models).
class WellFoundedModel {
 public:
  Truth TruthOf(PredId pred, const Tuple& args) const;

  size_t num_true() const { return num_true_; }
  size_t num_undefined() const { return num_undefined_; }
  size_t num_ground_atoms() const { return atom_truth_.size(); }
  size_t iterations() const { return iterations_; }
  size_t num_ground_rules() const { return num_ground_rules_; }

 private:
  friend Result<WellFoundedModel> ComputeWellFounded(DatalogProgram* program);

  struct AtomKeyHash {
    size_t operator()(const std::pair<PredId, Tuple>& k) const {
      return k.first * 1099511628211ULL ^ datalog::TupleHash()(k.second);
    }
  };

  // Atoms absent from the map are false (not even in the overestimate).
  std::unordered_map<std::pair<PredId, Tuple>, Truth, AtomKeyHash>
      atom_truth_;
  size_t num_true_ = 0;
  size_t num_undefined_ = 0;
  size_t iterations_ = 0;
  size_t num_ground_rules_ = 0;
};

// Grounds the program over its relevant atoms and runs the alternating
// fixpoint. EDB facts are true by definition.
Result<WellFoundedModel> ComputeWellFounded(DatalogProgram* program);

}  // namespace xsb::wfs

#endif  // XSB_WFS_WFS_H_
