#include "db/index.h"

namespace xsb {

size_t SkipFlatSubterm(const SymbolTable& symbols,
                       const std::vector<Word>& cells, size_t pos) {
  size_t remaining = 1;
  while (remaining > 0 && pos < cells.size()) {
    Word w = cells[pos++];
    --remaining;
    if (IsFunctor(w)) {
      remaining += static_cast<size_t>(symbols.FunctorArity(FunctorOf(w)));
    }
  }
  return pos;
}

Word FlatArgKey(const std::vector<Word>& cells, size_t pos) {
  Word w = cells[pos];
  if (IsLocal(w)) return 0;
  return w;  // atoms, ints, and functor cells are their own keys
}

size_t FlatArgPos(const SymbolTable& symbols, const std::vector<Word>& cells,
                  size_t pos, int arg) {
  // cells[pos] is the functor cell; the first argument follows it.
  size_t p = pos + 1;
  for (int i = 0; i < arg; ++i) p = SkipFlatSubterm(symbols, cells, p);
  return p;
}

void ArgHashIndex::Insert(ClauseId id, Word key) {
  if (key == 0) {
    // Variable in the indexed position: matches every key, so append to all
    // current buckets and remember it for buckets created later.
    var_clauses_.push_back(id);
    for (auto& [k, bucket] : buckets_) bucket.push_back(id);
    return;
  }
  auto [it, inserted] = buckets_.try_emplace(key);
  if (inserted) it->second = var_clauses_;  // seed with earlier var clauses
  it->second.push_back(id);
}

const std::vector<ClauseId>& ArgHashIndex::Lookup(Word key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return var_clauses_;
  return it->second;
}

uint64_t CombinedHashIndex::HashKeys(const std::vector<Word>& keys) {
  uint64_t h = 1469598103934665603ULL;
  for (Word k : keys) {
    h ^= k;
    h *= 1099511628211ULL;
  }
  return h;
}

bool CombinedHashIndex::Keyable(const std::vector<Word>& keys) {
  for (Word k : keys) {
    if (k == 0) return false;
  }
  return true;
}

void CombinedHashIndex::Insert(ClauseId id, const std::vector<Word>& keys) {
  if (!Keyable(keys)) {
    catch_all_.push_back(id);
    for (auto& [k, bucket] : buckets_) bucket.push_back(id);
    return;
  }
  uint64_t h = HashKeys(keys);
  auto [it, inserted] = buckets_.try_emplace(h);
  if (inserted) it->second = catch_all_;
  it->second.push_back(id);
}

const std::vector<ClauseId>* CombinedHashIndex::Lookup(
    const std::vector<Word>& keys) const {
  if (!Keyable(keys)) return nullptr;
  auto it = buckets_.find(HashKeys(keys));
  if (it == buckets_.end()) return &catch_all_;
  return &it->second;
}

}  // namespace xsb
