#include "db/trie_index.h"

#include <algorithm>

namespace xsb {

void FirstStringIndex::Insert(ClauseId id, const SymbolTable& symbols,
                              const std::vector<Word>& head_cells,
                              size_t head_pos) {
  size_t end = SkipFlatSubterm(symbols, head_cells, head_pos);
  // Skip the head's own functor token (the trie is per-predicate, as in the
  // paper's Figure 3 which drops the leading p/1 token).
  size_t pos = head_pos + (IsFunctor(head_cells[head_pos]) ? 1 : 0);
  TokenTrie::NodeId node = TokenTrie::root();
  for (; pos < end; ++pos) {
    Word token = head_cells[pos];
    if (IsLocal(token)) break;  // first string stops at the first variable
    node = trie_.Extend(node, token, nullptr);
  }
  if (trie_.payload(node) == TokenTrie::kNoPayload) {
    trie_.set_payload(node, static_cast<uint32_t>(endings_.size()));
    endings_.emplace_back();
  }
  endings_[trie_.payload(node)].push_back(id);
}

void FirstStringIndex::CollectSubtree(TokenTrie::NodeId node,
                                      std::vector<ClauseId>* out) const {
  if (const std::vector<ClauseId>* ends = EndingsAt(node)) {
    out->insert(out->end(), ends->begin(), ends->end());
  }
  for (TokenTrie::NodeId c = trie_.first_child(node);
       c != TokenTrie::kNilNode; c = trie_.next_sibling(c)) {
    CollectSubtree(c, out);
  }
}

std::vector<ClauseId> FirstStringIndex::Lookup(const TermStore& store,
                                               Word goal) const {
  std::vector<ClauseId> out;
  const SymbolTable& symbols = *store.symbols();

  // Token stream of the call: preorder traversal of the goal's arguments.
  std::vector<Word> work;
  goal = store.Deref(goal);
  if (IsStruct(goal)) {
    int arity = store.StructArity(goal);
    for (int i = arity - 1; i >= 0; --i) work.push_back(store.Arg(goal, i));
  }

  TokenTrie::NodeId node = TokenTrie::root();
  while (true) {
    if (const std::vector<ClauseId>* ends = EndingsAt(node)) {
      out.insert(out.end(), ends->begin(), ends->end());
    }
    if (work.empty()) break;  // call stream consumed
    Word x = store.Deref(work.back());
    work.pop_back();
    if (IsRef(x)) {
      // Unbound in the call: stop discriminating, everything below matches.
      for (TokenTrie::NodeId c = trie_.first_child(node);
           c != TokenTrie::kNilNode; c = trie_.next_sibling(c)) {
        CollectSubtree(c, &out);
      }
      break;
    }
    Word token;
    if (IsStruct(x)) {
      FunctorId f = store.StructFunctor(x);
      token = FunctorCell(f);
      int arity = symbols.FunctorArity(f);
      for (int i = arity - 1; i >= 0; --i) work.push_back(store.Arg(x, i));
    } else {
      token = x;
    }
    TokenTrie::NodeId next = trie_.Find(node, token);
    if (next == TokenTrie::kNilNode) break;  // only prefix-ended clauses match
    node = next;
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string FirstStringIndex::Dump(const SymbolTable& symbols) const {
  std::string out;
  auto token_name = [&](Word token) -> std::string {
    switch (TagOf(token)) {
      case Tag::kAtom:
        return symbols.AtomName(AtomOf(token)) + "/0";
      case Tag::kInt:
        return std::to_string(IntValue(token));
      case Tag::kFunctor:
        return symbols.AtomName(symbols.FunctorAtom(FunctorOf(token))) + "/" +
               std::to_string(symbols.FunctorArity(FunctorOf(token)));
      default:
        return "?";
    }
  };
  auto walk = [&](auto&& self, TokenTrie::NodeId node, int depth) -> void {
    if (const std::vector<ClauseId>* ends = EndingsAt(node)) {
      out.append(static_cast<size_t>(depth) * 2, ' ');
      out += "* clauses:";
      for (ClauseId id : *ends) {
        out += ' ';
        out += std::to_string(id);
      }
      out += '\n';
    }
    for (TokenTrie::NodeId child : trie_.SortedChildren(node)) {
      out.append(static_cast<size_t>(depth) * 2, ' ');
      out += token_name(trie_.token(child));
      out += '\n';
      self(self, child, depth + 1);
    }
  };
  walk(walk, TokenTrie::root(), 0);
  return out;
}

}  // namespace xsb
