#include "db/trie_index.h"

#include <algorithm>

namespace xsb {

void FirstStringIndex::Insert(ClauseId id, const SymbolTable& symbols,
                              const std::vector<Word>& head_cells,
                              size_t head_pos) {
  size_t end = SkipFlatSubterm(symbols, head_cells, head_pos);
  // Skip the head's own functor token (the trie is per-predicate, as in the
  // paper's Figure 3 which drops the leading p/1 token).
  size_t pos = head_pos + (IsFunctor(head_cells[head_pos]) ? 1 : 0);
  Node* node = root_.get();
  for (; pos < end; ++pos) {
    Word token = head_cells[pos];
    if (IsLocal(token)) break;  // first string stops at the first variable
    auto [it, inserted] = node->children.try_emplace(token, nullptr);
    if (inserted) it->second = std::make_unique<Node>();
    node = it->second.get();
  }
  node->ends_here.push_back(id);
}

void FirstStringIndex::CollectSubtree(const Node* node,
                                      std::vector<ClauseId>* out) {
  out->insert(out->end(), node->ends_here.begin(), node->ends_here.end());
  for (const auto& [token, child] : node->children) {
    CollectSubtree(child.get(), out);
  }
}

std::vector<ClauseId> FirstStringIndex::Lookup(const TermStore& store,
                                               Word goal) const {
  std::vector<ClauseId> out;
  const SymbolTable& symbols = *store.symbols();

  // Token stream of the call: preorder traversal of the goal's arguments.
  std::vector<Word> work;
  goal = store.Deref(goal);
  if (IsStruct(goal)) {
    int arity = store.StructArity(goal);
    for (int i = arity - 1; i >= 0; --i) work.push_back(store.Arg(goal, i));
  }

  const Node* node = root_.get();
  while (true) {
    out.insert(out.end(), node->ends_here.begin(), node->ends_here.end());
    if (work.empty()) break;  // call stream consumed
    Word x = store.Deref(work.back());
    work.pop_back();
    if (IsRef(x)) {
      // Unbound in the call: stop discriminating, everything below matches.
      for (const auto& [token, child] : node->children) {
        CollectSubtree(child.get(), &out);
      }
      break;
    }
    Word token;
    if (IsStruct(x)) {
      FunctorId f = store.StructFunctor(x);
      token = FunctorCell(f);
      int arity = symbols.FunctorArity(f);
      for (int i = arity - 1; i >= 0; --i) work.push_back(store.Arg(x, i));
    } else {
      token = x;
    }
    auto it = node->children.find(token);
    if (it == node->children.end()) break;  // only prefix-ended clauses match
    node = it->second.get();
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t FirstStringIndex::NodeCount() const {
  size_t count = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    ++count;
    for (const auto& [token, child] : node->children) {
      self(self, child.get());
    }
  };
  walk(walk, root_.get());
  return count;
}

std::string FirstStringIndex::Dump(const SymbolTable& symbols) const {
  std::string out;
  auto token_name = [&](Word token) -> std::string {
    switch (TagOf(token)) {
      case Tag::kAtom:
        return symbols.AtomName(AtomOf(token)) + "/0";
      case Tag::kInt:
        return std::to_string(IntValue(token));
      case Tag::kFunctor:
        return symbols.AtomName(symbols.FunctorAtom(FunctorOf(token))) + "/" +
               std::to_string(symbols.FunctorArity(FunctorOf(token)));
      default:
        return "?";
    }
  };
  auto walk = [&](auto&& self, const Node* node, int depth) -> void {
    if (!node->ends_here.empty()) {
      out.append(static_cast<size_t>(depth) * 2, ' ');
      out += "* clauses:";
      for (ClauseId id : node->ends_here) {
        out += ' ';
        out += std::to_string(id);
      }
      out += '\n';
    }
    for (const auto& [token, child] : node->children) {
      out.append(static_cast<size_t>(depth) * 2, ' ');
      out += token_name(token);
      out += '\n';
      self(self, child.get(), depth + 1);
    }
  };
  walk(walk, root_.get(), 0);
  return out;
}

}  // namespace xsb
