#include "db/loader.h"

#include <fstream>
#include <sstream>

#include "analysis/analyzer.h"
#include "parser/reader.h"

namespace xsb {

Result<FunctorId> Loader::ParsePredSpec(Word spec) {
  SymbolTable* symbols = store_->symbols();
  spec = store_->Deref(spec);
  FunctorId slash = symbols->InternFunctor(symbols->InternAtom("/"), 2);
  if (IsStruct(spec) && store_->StructFunctor(spec) == slash) {
    Word name = store_->Deref(store_->Arg(spec, 0));
    Word arity = store_->Deref(store_->Arg(spec, 1));
    if (IsAtom(name) && IsInt(arity) && IntValue(arity) >= 0) {
      return symbols->InternFunctor(AtomOf(name),
                                    static_cast<int>(IntValue(arity)));
    }
  }
  return InvalidError("expected a Name/Arity predicate specification");
}

Status Loader::ForEachPredSpec(Word spec,
                               const std::function<Status(FunctorId)>& fn) {
  SymbolTable* symbols = store_->symbols();
  spec = store_->Deref(spec);
  // Allow conjunctions and lists of specs.
  FunctorId comma = symbols->InternFunctor(symbols->comma(), 2);
  FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
  if (IsStruct(spec)) {
    FunctorId f = store_->StructFunctor(spec);
    if (f == comma || f == cons) {
      Status s = ForEachPredSpec(store_->Arg(spec, 0), fn);
      if (!s.ok()) return s;
      Word rest = store_->Deref(store_->Arg(spec, 1));
      if (IsAtom(rest) && AtomOf(rest) == symbols->nil()) return Status::Ok();
      return ForEachPredSpec(rest, fn);
    }
  }
  Result<FunctorId> functor = ParsePredSpec(spec);
  if (!functor.ok()) return functor.status();
  return fn(functor.value());
}

Status Loader::HandleTableSpec(Word spec) {
  SymbolTable* symbols = store_->symbols();
  spec = store_->Deref(spec);
  // Conjunctions and lists mix freely; each element is either Name/Arity or
  // an answer-subsumption template like `p(_, min)`.
  FunctorId comma = symbols->InternFunctor(symbols->comma(), 2);
  FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
  if (IsStruct(spec)) {
    FunctorId f = store_->StructFunctor(spec);
    if (f == comma || f == cons) {
      Status s = HandleTableSpec(store_->Arg(spec, 0));
      if (!s.ok()) return s;
      Word rest = store_->Deref(store_->Arg(spec, 1));
      if (IsAtom(rest) && AtomOf(rest) == symbols->nil()) return Status::Ok();
      return HandleTableSpec(rest);
    }
  }
  Result<FunctorId> functor = ParsePredSpec(spec);
  if (functor.ok()) return program_->DeclareTabled(functor.value());
  return ParseSubsumptionSpec(spec);
}

// `:- table p(_, min).` — each argument of the template is `_` (tabled as
// usual), `min`/`max` (keep the lattice-best integer answer per key), or
// `first(N)` (keep at most N answers per key, insertion order).
Status Loader::ParseSubsumptionSpec(Word spec) {
  SymbolTable* symbols = store_->symbols();
  spec = store_->Deref(spec);
  if (!IsStruct(spec)) {
    return InvalidError(
        "expected Name/Arity or an answer-subsumption template like "
        "p(_, min) in :- table");
  }
  FunctorId functor = store_->StructFunctor(spec);
  int arity = symbols->FunctorArity(functor);
  FunctorId first1 = symbols->InternFunctor(symbols->InternAtom("first"), 1);
  TableSpec table_spec;
  table_spec.args.resize(arity);
  bool has_agg = false;
  for (int i = 0; i < arity; ++i) {
    Word arg = store_->Deref(store_->Arg(spec, i));
    if (IsRef(arg)) continue;  // `_`: plain argument
    TableSpec::Arg& out = table_spec.args[i];
    if (IsAtom(arg)) {
      const std::string& name = symbols->AtomName(AtomOf(arg));
      if (name == "min") {
        out.agg = TableSpec::Agg::kMin;
      } else if (name == "max") {
        out.agg = TableSpec::Agg::kMax;
      } else {
        return InvalidError("unknown table lattice '" + name +
                            "' (expected min, max, or first(N))");
      }
    } else if (IsStruct(arg) && store_->StructFunctor(arg) == first1) {
      Word n = store_->Deref(store_->Arg(arg, 0));
      if (!IsInt(n) || IntValue(n) < 0) {
        return InvalidError("first(N) requires a non-negative integer N");
      }
      out.agg = TableSpec::Agg::kFirst;
      out.n = IntValue(n);
    } else {
      return InvalidError(
          "table spec arguments must be _, min, max, or first(N)");
    }
    has_agg = true;
  }
  if (!has_agg) return program_->DeclareTabled(functor);
  return program_->DeclareTabledSubsumptive(functor, std::move(table_spec));
}

Status Loader::HandleDiscontiguousSpec(Word spec) {
  return ForEachPredSpec(spec, [this](FunctorId f) {
    program_->LookupOrCreate(f)->set_discontiguous_ok(true);
    return Status::Ok();
  });
}

Status Loader::HandleIndexSpec(Word pred_spec, Word index_spec) {
  SymbolTable* symbols = store_->symbols();
  Result<FunctorId> functor = ParsePredSpec(pred_spec);
  if (!functor.ok()) return functor.status();
  index_spec = store_->Deref(index_spec);

  // `:- index(p/2, trie)` selects first-string indexing.
  if (IsAtom(index_spec) &&
      symbols->AtomName(AtomOf(index_spec)) == "trie") {
    return program_->DeclareFirstString(functor.value());
  }
  // `:- index(p/2, 0)` disables indexing.
  if (IsInt(index_spec) && IntValue(index_spec) == 0) {
    Predicate* pred = program_->LookupOrCreate(functor.value());
    pred->SetNoIndex();
    return Status::Ok();
  }
  // `:- index(p/2, K)` or `:- index(p/5, [1, 2, 3+5])`.
  std::vector<std::vector<int>> field_sets;
  auto parse_field_set = [&](Word w) -> Status {
    std::vector<int> fields;
    FunctorId plus = symbols->InternFunctor(symbols->InternAtom("+"), 2);
    // A field set is K or K1+K2(+K3); '+' is left associative.
    std::vector<Word> work{store_->Deref(w)};
    while (!work.empty()) {
      Word x = store_->Deref(work.back());
      work.pop_back();
      if (IsInt(x)) {
        fields.push_back(static_cast<int>(IntValue(x)));
      } else if (IsStruct(x) && store_->StructFunctor(x) == plus) {
        work.push_back(store_->Arg(x, 1));
        work.push_back(store_->Arg(x, 0));
      } else {
        return InvalidError("bad index field specification");
      }
    }
    field_sets.push_back(std::move(fields));
    return Status::Ok();
  };

  if (IsInt(index_spec)) {
    Status s = parse_field_set(index_spec);
    if (!s.ok()) return s;
  } else {
    FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
    Word cur = index_spec;
    while (true) {
      cur = store_->Deref(cur);
      if (IsAtom(cur) && AtomOf(cur) == symbols->nil()) break;
      if (!IsStruct(cur) || store_->StructFunctor(cur) != cons) {
        return InvalidError("index spec must be an integer or a list");
      }
      Status s = parse_field_set(store_->Arg(cur, 0));
      if (!s.ok()) return s;
      cur = store_->Arg(cur, 1);
    }
  }
  return program_->DeclareIndex(functor.value(), std::move(field_sets));
}

Status Loader::HandleDirective(Word directive) {
  SymbolTable* symbols = store_->symbols();
  directive = store_->Deref(directive);
  if (IsAtom(directive)) {
    const std::string& name = symbols->AtomName(AtomOf(directive));
    if (name == "table_all") {
      table_all_requested_ = true;
      return Status::Ok();
    }
    if (name == "auto_table") {
      auto_table_requested_ = true;
      return Status::Ok();
    }
    return InvalidError("unsupported directive: " + name);
  }
  if (!IsStruct(directive)) return InvalidError("bad directive");

  FunctorId f = store_->StructFunctor(directive);
  const std::string& name = symbols->AtomName(symbols->FunctorAtom(f));
  int arity = symbols->FunctorArity(f);

  if (name == "table" && arity == 1) {
    return HandleTableSpec(store_->Arg(directive, 0));
  }
  if (name == "hilog" && arity >= 1) {
    // `:- hilog h.` possibly with a conjunction of atoms.
    std::vector<Word> work{store_->Arg(directive, 0)};
    FunctorId comma = symbols->InternFunctor(symbols->comma(), 2);
    while (!work.empty()) {
      Word x = store_->Deref(work.back());
      work.pop_back();
      if (IsAtom(x)) {
        Status s = program_->DeclareHilog(AtomOf(x));
        if (!s.ok()) return s;
      } else if (IsStruct(x) && store_->StructFunctor(x) == comma) {
        work.push_back(store_->Arg(x, 1));
        work.push_back(store_->Arg(x, 0));
      } else {
        return InvalidError("hilog directive expects atoms");
      }
    }
    return Status::Ok();
  }
  if (name == "index" && arity == 2) {
    return HandleIndexSpec(store_->Arg(directive, 0),
                           store_->Arg(directive, 1));
  }
  if (name == "dynamic" && arity == 1) {
    return ForEachPredSpec(store_->Arg(directive, 0), [this](FunctorId f) {
      Predicate* pred = program_->LookupOrCreate(f);
      pred->set_dynamic(true);
      pred->set_declared(true);
      return Status::Ok();
    });
  }
  if (name == "incremental" && arity == 1) {
    return ForEachPredSpec(store_->Arg(directive, 0), [this](FunctorId f) {
      return program_->DeclareIncremental(f);
    });
  }
  if (name == "discontiguous" && arity == 1) {
    return HandleDiscontiguousSpec(store_->Arg(directive, 0));
  }
  if (name == "module" && arity >= 1) {
    Word module = store_->Deref(store_->Arg(directive, 0));
    if (!IsAtom(module)) return InvalidError("module name must be an atom");
    program_->set_current_module(AtomOf(module));
    return Status::Ok();
  }
  if (name == "import" || name == "export") {
    return Status::Ok();  // accepted for compatibility; names are global
  }
  if (name == "op" && arity == 3) {
    Word priority = store_->Deref(store_->Arg(directive, 0));
    Word type = store_->Deref(store_->Arg(directive, 1));
    Word op_name = store_->Deref(store_->Arg(directive, 2));
    if (!IsInt(priority) || !IsAtom(type) || !IsAtom(op_name)) {
      return InvalidError("op/3 expects (Priority, Type, Name)");
    }
    int64_t p = IntValue(priority);
    if (p < 1 || p > 1200) return InvalidError("op/3: priority out of range");
    const std::string& type_name = symbols->AtomName(AtomOf(type));
    OpType op_type;
    if (type_name == "xfx") {
      op_type = OpType::kXfx;
    } else if (type_name == "xfy") {
      op_type = OpType::kXfy;
    } else if (type_name == "yfx") {
      op_type = OpType::kYfx;
    } else if (type_name == "fy") {
      op_type = OpType::kFy;
    } else if (type_name == "fx") {
      op_type = OpType::kFx;
    } else {
      return InvalidError("op/3: unsupported operator type " + type_name);
    }
    program_->ops()->Add(static_cast<int>(p), op_type, AtomOf(op_name));
    return Status::Ok();
  }
  return InvalidError("unsupported directive: " + name + "/" +
                      std::to_string(arity));
}

Status Loader::ConsultString(std::string_view text) {
  SymbolTable* symbols = store_->symbols();
  Reader reader(store_, program_->ops(), text, program_->hilog_atoms());
  AtomId eof = symbols->InternAtom("end_of_file");
  FunctorId neck1 = symbols->InternFunctor(symbols->neck(), 1);

  if (source_name_.empty()) {
    source_name_ = "<consult-" + std::to_string(program_->NextConsultId()) +
                   ">";
  }
  AtomId file = symbols->InternAtom(source_name_);

  while (!reader.AtEof()) {
    Result<Word> clause = reader.ReadClause();
    if (!clause.ok()) return clause.status();
    Word t = store_->Deref(clause.value());
    if (IsAtom(t) && AtomOf(t) == eof) break;
    if (IsStruct(t) && store_->StructFunctor(t) == neck1) {
      Status s = HandleDirective(store_->Arg(t, 0));
      if (!s.ok()) return s;
      continue;
    }
    // Track the defined predicate for table_all scoping.
    Word head = t;
    FunctorId neck2 = symbols->InternFunctor(symbols->neck(), 2);
    if (IsStruct(t) && store_->StructFunctor(t) == neck2) {
      head = store_->Deref(store_->Arg(t, 0));
    }
    std::optional<FunctorId> functor =
        Program::CallableFunctor(*store_, head);
    if (functor.has_value()) {
      if (defined_.empty() || defined_.back() != *functor) {
        bool seen = false;
        for (FunctorId d : defined_) {
          if (d == *functor) {
            seen = true;
            break;
          }
        }
        if (!seen) defined_.push_back(*functor);
      }
      // L001: a named variable (not '_'-prefixed) occurring exactly once.
      // Collected here because variable names do not survive flattening.
      for (const Reader::VarInfo& info : reader.var_infos()) {
        if (info.occurrences != 1 || info.name[0] == '_') continue;
        program_->AddConsultLint(analysis::Diagnostic{
            analysis::DiagCode::kSingletonVar, analysis::Severity::kWarning,
            *functor, "singleton variable " + info.name,
            SourceSpan{file, info.line, info.column}});
      }
    }
    SourceSpan span{file, reader.clause_line(), reader.clause_column()};
    Status s = program_->AddClauseTerm(*store_, t, /*front=*/false, span);
    if (!s.ok()) return s;
  }
  if (table_all_requested_) {
    TableAllAnalysis(program_, defined_);
    table_all_requested_ = false;
  }
  // The section 4.4 static analysis: no cut may close over a table.
  Status cut = CheckCutSafety(*program_, defined_);
  if (!cut.ok()) return cut;
  return RunAnalysis();
}

Status Loader::RunAnalysis() {
  analysis::AnalysisResult result = analysis::Analyze(*program_);
  if (auto_table_requested_) {
    // :- auto_table. applies the advisor's suggestions, restricted to the
    // predicates this consult unit defined; then the analysis re-runs so the
    // published diagnostics describe the final program.
    analysis::ApplyTableSuggestions(program_, result, defined_);
    auto_table_requested_ = false;
    result = analysis::Analyze(*program_);
  }
  analysis::PublishVerdict(program_, result);
  analysis::PublishIncrementalDeps(program_, result);
  analysis::PublishEvalShards(program_, result);
  analysis::PublishModes(program_, result);
  if (strict_) {
    for (const analysis::Diagnostic& diagnostic : result.diagnostics) {
      if (diagnostic.severity == analysis::Severity::kError) {
        return StratificationError(
            FormatDiagnostic(*program_->symbols(), diagnostic));
      }
    }
  }
  program_->SetAnalysisDiagnostics(std::move(result.diagnostics));
  return Status::Ok();
}

Status Loader::ConsultFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (source_name_.empty()) source_name_ = path;
  return ConsultString(buffer.str());
}

Result<size_t> Loader::LoadFactsFormatted(std::istream& in,
                                          const std::string& name,
                                          int arity) {
  SymbolTable* symbols = store_->symbols();
  FunctorId functor = symbols->InternFunctor(symbols->InternAtom(name), arity);
  Predicate* pred = program_->LookupOrCreate(functor);

  size_t count = 0;
  std::string line;
  std::vector<Word> cells;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    cells.clear();
    cells.push_back(FunctorCell(functor));
    size_t pos = 0;
    int fields = 0;
    while (pos <= line.size() && fields < arity) {
      size_t next = line.find(',', pos);
      if (next == std::string::npos) next = line.size();
      std::string_view field(line.data() + pos, next - pos);
      if (field.empty()) {
        return InvalidError("empty field in formatted input: " + line);
      }
      bool numeric = true;
      size_t start = field[0] == '-' ? 1 : 0;
      if (start == field.size()) numeric = false;
      for (size_t i = start; i < field.size(); ++i) {
        if (field[i] < '0' || field[i] > '9') {
          numeric = false;
          break;
        }
      }
      if (numeric) {
        int64_t v = 0;
        bool negative = field[0] == '-';
        for (size_t i = start; i < field.size(); ++i) {
          v = v * 10 + (field[i] - '0');
        }
        cells.push_back(IntCell(negative ? -v : v));
      } else {
        cells.push_back(AtomCell(symbols->InternAtom(field)));
      }
      ++fields;
      pos = next + 1;
    }
    if (fields != arity) {
      return InvalidError("wrong field count in formatted input: " + line);
    }
    Clause clause;
    clause.term.cells = cells;
    clause.term.num_vars = 0;
    pred->AddClause(*symbols, std::move(clause), /*front=*/false);
    ++count;
  }
  return count;
}

Result<size_t> Loader::LoadFactsFormattedFile(const std::string& path,
                                              const std::string& name,
                                              int arity) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open " + path);
  return LoadFactsFormatted(in, name, arity);
}

}  // namespace xsb
