#ifndef XSB_DB_INDEX_H_
#define XSB_DB_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "term/flat.h"

namespace xsb {

using ClauseId = uint32_t;

// --- Flat-stream helpers ----------------------------------------------------

// Position just past the subterm starting at `pos` in a flattened stream.
size_t SkipFlatSubterm(const SymbolTable& symbols,
                       const std::vector<Word>& cells, size_t pos);

// Index key of the cell at `pos`: the cell itself for atoms/ints, the
// functor cell for structs (outer symbol only, as all XSB hash indexing
// does), and 0 for variables ("matches anything").
Word FlatArgKey(const std::vector<Word>& cells, size_t pos);

// Start position of argument `arg` (0-based) of the struct whose functor
// cell sits at `pos` in the stream.
size_t FlatArgPos(const SymbolTable& symbols, const std::vector<Word>& cells,
                  size_t pos, int arg);

// --- Hash indexes ------------------------------------------------------------

// Hash index on the outer symbol of one argument position. Clauses whose
// indexed argument is a variable appear in every bucket (and in the bucket
// seeded for keys unseen so far), preserving source clause order.
class ArgHashIndex {
 public:
  explicit ArgHashIndex(int arg) : arg_(arg) {}

  int arg() const { return arg_; }

  // `key` = FlatArgKey of the clause head's indexed argument.
  void Insert(ClauseId id, Word key);

  // Candidate clauses for a call whose indexed argument has key `key`
  // (0 = unbound: caller should scan all clauses instead).
  const std::vector<ClauseId>& Lookup(Word key) const;

  const std::vector<ClauseId>& var_clauses() const { return var_clauses_; }

 private:
  int arg_;
  std::unordered_map<Word, std::vector<ClauseId>> buckets_;
  std::vector<ClauseId> var_clauses_;
};

// A multi-field index: one combined hash over the outer symbols of a set of
// argument positions (at most 3, as in the paper). Only usable when every
// position in the set is bound in the call.
class CombinedHashIndex {
 public:
  explicit CombinedHashIndex(std::vector<int> args) : args_(std::move(args)) {}

  const std::vector<int>& args() const { return args_; }

  void Insert(ClauseId id, const std::vector<Word>& keys);
  // Returns nullptr if any key is unbound (index unusable) — the caller
  // falls through to the next index in the declaration order.
  const std::vector<ClauseId>* Lookup(const std::vector<Word>& keys) const;

  // True if the clause can be keyed (no variable among indexed args).
  static bool Keyable(const std::vector<Word>& keys);

 private:
  static uint64_t HashKeys(const std::vector<Word>& keys);

  std::vector<int> args_;
  std::unordered_map<uint64_t, std::vector<ClauseId>> buckets_;
  std::vector<ClauseId> catch_all_;  // clauses with a variable in a keyed arg
};

}  // namespace xsb

#endif  // XSB_DB_INDEX_H_
