#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "db/loader.h"

namespace xsb {
namespace {

// Collects the predicates called from a clause body (flattened form),
// descending through the control constructs and negation.
void CollectCalledFunctors(SymbolTable& symbols,
                           const std::vector<Word>& cells, size_t pos,
                           std::unordered_set<FunctorId>* out) {
  Word w = cells[pos];
  if (IsAtom(w)) {
    out->insert(symbols.InternFunctor(AtomOf(w), 0));
    return;
  }
  if (!IsFunctor(w)) return;  // variables / ints in call position: ignore
  FunctorId f = FunctorOf(w);
  const std::string& name = symbols.AtomName(symbols.FunctorAtom(f));
  int arity = symbols.FunctorArity(f);
  if ((name == "," || name == ";" || name == "->") && arity == 2) {
    size_t left = pos + 1;
    size_t right = SkipFlatSubterm(symbols, cells, left);
    CollectCalledFunctors(symbols, cells, left, out);
    CollectCalledFunctors(symbols, cells, right, out);
    return;
  }
  if ((name == "\\+" || name == "tnot" || name == "e_tnot" ||
       name == "once" || name == "call") &&
      arity == 1) {
    CollectCalledFunctors(symbols, cells, pos + 1, out);
    return;
  }
  if (name == "findall" && arity == 3) {
    size_t second = SkipFlatSubterm(symbols, cells, pos + 1);
    CollectCalledFunctors(symbols, cells, second, out);
    return;
  }
  out->insert(f);
}

}  // namespace

namespace {

// Walks the flattened goal at `pos`, updating *saw_tabled and returning a
// non-OK status when '!' follows a tabled call in the same body.
Status WalkForCutSafety(const Program& program, SymbolTable& symbols,
                        const std::vector<Word>& cells, size_t pos,
                        bool* saw_tabled) {
  Word w = cells[pos];
  if (IsAtom(w)) {
    const std::string& name = symbols.AtomName(AtomOf(w));
    if (name == "!" || name == "tcut") {
      if (*saw_tabled) {
        return PermissionError(
            "a cut would close over a partially computed table; restructure "
            "the clause or use tcut semantics via e_tnot (section 4.4)");
      }
      return Status::Ok();
    }
    const Predicate* pred =
        program.Lookup(symbols.InternFunctor(AtomOf(w), 0));
    if (pred != nullptr && pred->tabled()) *saw_tabled = true;
    return Status::Ok();
  }
  if (!IsFunctor(w)) return Status::Ok();
  FunctorId f = FunctorOf(w);
  const std::string& name = symbols.AtomName(symbols.FunctorAtom(f));
  int arity = symbols.FunctorArity(f);
  if ((name == "," || name == ";" || name == "->") && arity == 2) {
    size_t left = pos + 1;
    size_t right = SkipFlatSubterm(symbols, cells, left);
    Status s = WalkForCutSafety(program, symbols, cells, left, saw_tabled);
    if (!s.ok()) return s;
    return WalkForCutSafety(program, symbols, cells, right, saw_tabled);
  }
  if ((name == "\\+" || name == "tnot" || name == "e_tnot" ||
       name == "once" || name == "call" || name == "findall") &&
      arity >= 1) {
    // Cut inside these is local; tabled calls inside still count as "seen"
    // conservatively only for tnot/e_tnot completion, which is safe.
    return Status::Ok();
  }
  const Predicate* pred = program.Lookup(f);
  if (pred != nullptr && pred->tabled()) *saw_tabled = true;
  return Status::Ok();
}

}  // namespace

Status CheckCutSafety(const Program& program,
                      const std::vector<FunctorId>& scope) {
  SymbolTable& symbols = *program.symbols();
  for (FunctorId f : scope) {
    const Predicate* pred = program.Lookup(f);
    if (pred == nullptr) continue;
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased || !clause.is_rule) continue;
      size_t body_pos =
          SkipFlatSubterm(symbols, clause.term.cells, clause.head_pos);
      bool saw_tabled = false;
      Status s = WalkForCutSafety(program, symbols, clause.term.cells,
                                  body_pos, &saw_tabled);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

std::vector<FunctorId> TableAllAnalysis(Program* program,
                                        const std::vector<FunctorId>& scope) {
  SymbolTable& symbols = *program->symbols();
  std::unordered_set<FunctorId> in_scope(scope.begin(), scope.end());

  // Call graph restricted to in-scope predicates.
  std::unordered_map<FunctorId, std::vector<FunctorId>> edges;
  for (FunctorId f : scope) {
    const Predicate* pred = program->Lookup(f);
    if (pred == nullptr) continue;
    std::unordered_set<FunctorId> called;
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased || !clause.is_rule) continue;
      // cells[0] is ':-'/2; the body starts after the head subterm.
      size_t body_pos =
          SkipFlatSubterm(symbols, clause.term.cells, clause.head_pos);
      CollectCalledFunctors(symbols, clause.term.cells, body_pos, &called);
    }
    std::vector<FunctorId>& out = edges[f];
    for (FunctorId callee : called) {
      if (in_scope.count(callee) > 0) out.push_back(callee);
    }
  }

  // Tarjan SCC over the in-scope graph.
  std::unordered_map<FunctorId, int> index, low;
  std::unordered_set<FunctorId> on_stack;
  std::vector<FunctorId> stack;
  int counter = 0;
  std::vector<FunctorId> newly_tabled;

  auto strongconnect = [&](auto&& self, FunctorId v) -> void {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack.insert(v);
    for (FunctorId w : edges[v]) {
      if (index.find(w) == index.end()) {
        self(self, w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack.count(w) > 0) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<FunctorId> scc;
      while (true) {
        FunctorId w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      // Any SCC containing a cycle gets tabled wholesale: every loop in the
      // call graph is broken, trading precision for simplicity (section 4.3).
      bool cyclic = scc.size() > 1;
      if (!cyclic) {
        for (FunctorId w : edges[scc[0]]) {
          if (w == scc[0]) {
            cyclic = true;
            break;
          }
        }
      }
      if (cyclic) {
        for (FunctorId w : scc) {
          Predicate* pred = program->Lookup(w);
          if (pred != nullptr && !pred->tabled()) {
            pred->set_tabled(true);
            newly_tabled.push_back(w);
          }
        }
      }
    }
  };

  for (FunctorId f : scope) {
    if (index.find(f) == index.end()) strongconnect(strongconnect, f);
  }
  return newly_tabled;
}

}  // namespace xsb
