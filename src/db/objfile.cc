#include "db/objfile.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <unordered_map>

namespace xsb {
namespace {

constexpr uint32_t kMagic = 0x584F424Au;  // "XOBJ"-ish tag
constexpr uint32_t kVersion = 1;

void PutU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
// In-memory cursor over a loaded object file.
struct MemReader {
  explicit MemReader(const std::string& bytes)
      : data(bytes.data()), size(bytes.size()) {}
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Read(void* out, size_t n) {
    if (pos + n > size) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
};

bool GetU32(MemReader& in, uint32_t* v) { return in.Read(v, sizeof(*v)); }
bool GetU64(MemReader& in, uint64_t* v) { return in.Read(v, sizeof(*v)); }

// Local symbol tables built while writing: global ids -> dense local ids.
struct LocalSymbols {
  std::unordered_map<AtomId, uint32_t> atom_ids;
  std::vector<AtomId> atoms;
  std::unordered_map<FunctorId, uint32_t> functor_ids;
  std::vector<FunctorId> functors;

  uint32_t Atom(AtomId a) {
    auto [it, inserted] = atom_ids.try_emplace(a, atoms.size());
    if (inserted) atoms.push_back(a);
    return it->second;
  }
  uint32_t Functor(FunctorId f) {
    auto [it, inserted] = functor_ids.try_emplace(f, functors.size());
    if (inserted) functors.push_back(f);
    return it->second;
  }
};

Word RemapCellOut(Word cell, LocalSymbols* local) {
  switch (TagOf(cell)) {
    case Tag::kAtom:
      return MakeCell(Tag::kAtom, local->Atom(AtomOf(cell)));
    case Tag::kFunctor:
      return MakeCell(Tag::kFunctor, local->Functor(FunctorOf(cell)));
    default:
      return cell;  // ints and locals are position independent
  }
}

}  // namespace

Status SaveObjectFile(const Program& program,
                      const std::vector<FunctorId>& predicates,
                      const std::string& path) {
  std::vector<const Predicate*> preds;
  if (predicates.empty()) {
    for (const auto& [functor, pred] : program.predicates()) {
      if (pred->num_live_clauses() > 0) preds.push_back(pred.get());
    }
  } else {
    for (FunctorId f : predicates) {
      const Predicate* pred = program.Lookup(f);
      if (pred == nullptr) {
        return InvalidError("object save: unknown predicate");
      }
      preds.push_back(pred);
    }
  }

  // First pass: remap all clause cells and collect the local symbol tables.
  LocalSymbols local;
  struct OutClause {
    uint8_t is_rule;
    uint32_t head_pos;
    uint32_t num_vars;
    std::vector<Word> cells;
  };
  struct OutPred {
    uint32_t functor;
    uint8_t tabled;
    std::vector<OutClause> clauses;
  };
  std::vector<OutPred> out_preds;
  for (const Predicate* pred : preds) {
    OutPred op;
    op.functor = local.Functor(pred->functor());
    op.tabled = pred->tabled() ? 1 : 0;
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased) continue;
      OutClause oc;
      oc.is_rule = clause.is_rule ? 1 : 0;
      oc.head_pos = static_cast<uint32_t>(clause.head_pos);
      oc.num_vars = clause.term.num_vars;
      oc.cells.reserve(clause.term.cells.size());
      for (Word cell : clause.term.cells) {
        oc.cells.push_back(RemapCellOut(cell, &local));
      }
      op.clauses.push_back(std::move(oc));
    }
    out_preds.push_back(std::move(op));
  }

  const SymbolTable& symbols = *program.symbols();
  // Functor names must be in the local atom table before it is emitted.
  for (size_t i = 0; i < local.functors.size(); ++i) {
    local.Atom(symbols.FunctorAtom(local.functors[i]));
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot write " + path);
  PutU32(out, kMagic);
  PutU32(out, kVersion);
  PutU32(out, static_cast<uint32_t>(local.atoms.size()));
  for (AtomId a : local.atoms) {
    const std::string& name = symbols.AtomName(a);
    PutU32(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  PutU32(out, static_cast<uint32_t>(local.functors.size()));
  for (FunctorId f : local.functors) {
    PutU32(out, local.Atom(symbols.FunctorAtom(f)));
    PutU32(out, static_cast<uint32_t>(symbols.FunctorArity(f)));
  }
  PutU32(out, static_cast<uint32_t>(out_preds.size()));
  for (const OutPred& op : out_preds) {
    PutU32(out, op.functor);
    PutU32(out, op.tabled);
    PutU32(out, static_cast<uint32_t>(op.clauses.size()));
    for (const OutClause& oc : op.clauses) {
      PutU32(out, oc.is_rule);
      PutU32(out, oc.head_pos);
      PutU32(out, oc.num_vars);
      PutU32(out, static_cast<uint32_t>(oc.cells.size()));
      for (Word cell : oc.cells) PutU64(out, cell);
    }
  }
  if (!out) return IoError("write failure on " + path);
  return Status::Ok();
}

Result<size_t> LoadObjectFile(Program* program, const std::string& path) {
  // Slurp the whole file: object loading is meant to be bulk-speed
  // (section 4.6), so avoid per-word stream reads.
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return IoError("cannot open " + path);
  std::string bytes(static_cast<size_t>(file.tellg()), '\0');
  file.seekg(0);
  file.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return IoError("read failure on " + path);
  MemReader in(bytes);
  uint32_t magic = 0, version = 0;
  if (!GetU32(in, &magic) || magic != kMagic) {
    return IoError("bad object file magic: " + path);
  }
  if (!GetU32(in, &version) || version != kVersion) {
    return IoError("unsupported object file version");
  }

  SymbolTable* symbols = program->symbols();
  uint32_t natoms = 0;
  if (!GetU32(in, &natoms)) return IoError("truncated object file");
  std::vector<AtomId> atoms(natoms);
  std::string buffer;
  for (uint32_t i = 0; i < natoms; ++i) {
    uint32_t len = 0;
    if (!GetU32(in, &len)) return IoError("truncated object file");
    buffer.resize(len);
    if (!in.Read(buffer.data(), len)) return IoError("truncated object file");
    atoms[i] = symbols->InternAtom(buffer);
  }
  uint32_t nfunctors = 0;
  if (!GetU32(in, &nfunctors)) return IoError("truncated object file");
  std::vector<FunctorId> functors(nfunctors);
  for (uint32_t i = 0; i < nfunctors; ++i) {
    uint32_t atom = 0, arity = 0;
    if (!GetU32(in, &atom) || !GetU32(in, &arity) || atom >= natoms) {
      return IoError("corrupt functor table");
    }
    functors[i] = symbols->InternFunctor(atoms[atom],
                                         static_cast<int>(arity));
  }

  uint32_t npreds = 0;
  if (!GetU32(in, &npreds)) return IoError("truncated object file");
  size_t total_clauses = 0;
  for (uint32_t p = 0; p < npreds; ++p) {
    uint32_t functor_local = 0, tabled = 0, nclauses = 0;
    if (!GetU32(in, &functor_local) || !GetU32(in, &tabled) ||
        !GetU32(in, &nclauses) || functor_local >= nfunctors) {
      return IoError("corrupt predicate header");
    }
    Predicate* pred = program->LookupOrCreate(functors[functor_local]);
    if (tabled != 0) pred->set_tabled(true);
    for (uint32_t c = 0; c < nclauses; ++c) {
      uint32_t is_rule = 0, head_pos = 0, num_vars = 0, ncells = 0;
      if (!GetU32(in, &is_rule) || !GetU32(in, &head_pos) ||
          !GetU32(in, &num_vars) || !GetU32(in, &ncells)) {
        return IoError("corrupt clause header");
      }
      Clause clause;
      clause.is_rule = is_rule != 0;
      clause.head_pos = head_pos;
      clause.term.num_vars = num_vars;
      clause.term.cells.resize(ncells);
      for (uint32_t i = 0; i < ncells; ++i) {
        uint64_t cell = 0;
        if (!GetU64(in, &cell)) return IoError("truncated clause cells");
        switch (TagOf(cell)) {
          case Tag::kAtom: {
            uint64_t local = PayloadOf(cell);
            if (local >= natoms) return IoError("corrupt atom reference");
            cell = AtomCell(atoms[local]);
            break;
          }
          case Tag::kFunctor: {
            uint64_t local = PayloadOf(cell);
            if (local >= nfunctors) {
              return IoError("corrupt functor reference");
            }
            cell = FunctorCell(functors[local]);
            break;
          }
          default:
            break;
        }
        clause.term.cells[i] = cell;
      }
      pred->AddClause(*symbols, std::move(clause), /*front=*/false);
      ++total_clauses;
    }
  }
  return total_clauses;
}

}  // namespace xsb
