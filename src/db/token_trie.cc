#include "db/token_trie.h"

#include <algorithm>

namespace xsb {

TokenTrie::Node* TokenTrie::Extend(Node* node, Word token, bool* created) {
  if (node->child_index != nullptr) {
    auto it = node->child_index->find(token);
    if (it != node->child_index->end()) {
      if (created != nullptr) *created = false;
      return it->second;
    }
  } else {
    for (Node* c = node->first_child; c != nullptr; c = c->next_sibling) {
      if (c->token == token) {
        if (created != nullptr) *created = false;
        return c;
      }
    }
  }
  nodes_.push_back(Node{});
  Node* child = &nodes_.back();
  child->token = token;
  child->parent = node;
  child->next_sibling = node->first_child;
  node->first_child = child;
  ++node->num_children;
  if (node->child_index != nullptr) {
    node->child_index->emplace(token, child);
  } else if (node->num_children > kHashThreshold) {
    child_maps_.push_back(std::make_unique<ChildMap>());
    node->child_index = child_maps_.back().get();
    // Generous reserve: a node that escalates tends to keep growing, and
    // incremental rehashing showed up hot in answer-insert profiles.
    node->child_index->reserve(4 * kHashThreshold);
    for (Node* c = node->first_child; c != nullptr; c = c->next_sibling) {
      node->child_index->emplace(c->token, c);
    }
  }
  if (created != nullptr) *created = true;
  return child;
}

const TokenTrie::Node* TokenTrie::Find(const Node* node, Word token) {
  if (node->child_index != nullptr) {
    auto it = node->child_index->find(token);
    return it == node->child_index->end() ? nullptr : it->second;
  }
  for (const Node* c = node->first_child; c != nullptr; c = c->next_sibling) {
    if (c->token == token) return c;
  }
  return nullptr;
}

std::vector<const TokenTrie::Node*> TokenTrie::SortedChildren(
    const Node* node) {
  std::vector<const Node*> out;
  out.reserve(node->num_children);
  for (const Node* c = node->first_child; c != nullptr; c = c->next_sibling) {
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(), [](const Node* a, const Node* b) {
    return a->token < b->token;
  });
  return out;
}

size_t TokenTrie::bytes() const {
  size_t total = nodes_.size() * sizeof(Node);
  for (const auto& map : child_maps_) {
    total += sizeof(ChildMap) +
             map->size() * (sizeof(std::pair<Word, Node*>) + 2 * sizeof(void*));
  }
  return total;
}

void TokenTrie::Clear() {
  nodes_.clear();
  child_maps_.clear();
  nodes_.push_back(Node{});
  root_ = &nodes_.back();
}

}  // namespace xsb
