#include "db/token_trie.h"

#include <algorithm>

namespace xsb {

TokenTrie::NodeId TokenTrie::Extend(NodeId id, Word token, bool* created) {
  {
    const Node& node = nodes_[id];
    if (node.child_map != kNoChildMap) {
      const ChildMap& map = *child_maps_[node.child_map];
      auto it = map.find(token);
      if (it != map.end()) {
        if (created != nullptr) *created = false;
        return it->second;
      }
    } else {
      for (NodeId c = node.first_child; c != kNilNode;
           c = nodes_[c].next_sibling) {
        if (nodes_[c].token == token) {
          if (created != nullptr) *created = false;
          return c;
        }
      }
    }
  }
  NodeId child = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{});
  Node& node = nodes_[id];  // re-fetch: push_back may have reallocated
  Node& child_node = nodes_[child];
  child_node.token = token;
  child_node.parent = id;
  child_node.next_sibling = node.first_child;
  node.first_child = child;
  ++node.num_children;
  if (node.child_map != kNoChildMap) {
    child_maps_[node.child_map]->emplace(token, child);
  } else if (node.num_children > kHashThreshold) {
    node.child_map = static_cast<uint32_t>(child_maps_.size());
    child_maps_.push_back(std::make_unique<ChildMap>());
    ChildMap& map = *child_maps_.back();
    // Generous reserve: a node that escalates tends to keep growing, and
    // incremental rehashing showed up hot in answer-insert profiles.
    map.reserve(4 * kHashThreshold);
    for (NodeId c = node.first_child; c != kNilNode;
         c = nodes_[c].next_sibling) {
      map.emplace(nodes_[c].token, c);
    }
  }
  if (created != nullptr) *created = true;
  return child;
}

TokenTrie::NodeId TokenTrie::Find(NodeId id, Word token) const {
  const Node& node = nodes_[id];
  if (node.child_map != kNoChildMap) {
    const ChildMap& map = *child_maps_[node.child_map];
    auto it = map.find(token);
    return it == map.end() ? kNilNode : it->second;
  }
  for (NodeId c = node.first_child; c != kNilNode; c = nodes_[c].next_sibling) {
    if (nodes_[c].token == token) return c;
  }
  return kNilNode;
}

std::vector<TokenTrie::NodeId> TokenTrie::SortedChildren(NodeId id) const {
  std::vector<NodeId> out;
  out.reserve(nodes_[id].num_children);
  for (NodeId c = nodes_[id].first_child; c != kNilNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(), [this](NodeId a, NodeId b) {
    return nodes_[a].token < nodes_[b].token;
  });
  return out;
}

size_t TokenTrie::bytes() const {
  size_t total = nodes_.capacity() * sizeof(Node);
  for (const auto& map : child_maps_) {
    total += sizeof(ChildMap) +
             map->size() *
                 (sizeof(std::pair<Word, NodeId>) + 2 * sizeof(void*));
  }
  total += child_maps_.capacity() * sizeof(std::unique_ptr<ChildMap>);
  return total;
}

void TokenTrie::Clear() {
  nodes_.clear();
  nodes_.shrink_to_fit();
  child_maps_.clear();
  nodes_.push_back(Node{});
}

}  // namespace xsb
