#include "db/token_trie.h"

#include <algorithm>

namespace xsb {

TokenTrie::NodeId TokenTrie::Extend(NodeId id, Word token, bool* created) {
  Node& node = nodes_[id];
  uint32_t map_idx = node.child_map.load(std::memory_order_relaxed);
  if (map_idx != kNoChildMap) {
    uint32_t found = child_maps_[map_idx]->Find(token);
    if (found != AtomicKeyMap::kNotFound) {
      if (created != nullptr) *created = false;
      return found;
    }
  } else {
    for (NodeId c = node.first_child.load(std::memory_order_relaxed);
         c != kNilNode; c = nodes_[c].next_sibling) {
      if (nodes_[c].token == token) {
        if (created != nullptr) *created = false;
        return c;
      }
    }
  }
  // Construct the child fully, then publish it by prepending with a release
  // store: a concurrent reader that loads first_child either sees the old
  // head or the new, fully initialized node.
  NodeId child = static_cast<NodeId>(nodes_.EmplaceBack());
  Node& child_node = nodes_[child];
  child_node.token = token;
  child_node.parent = id;
  child_node.next_sibling = node.first_child.load(std::memory_order_relaxed);
  node.first_child.store(child, std::memory_order_release);
  ++node.num_children;
  if (map_idx != kNoChildMap) {
    child_maps_[map_idx]->Insert(token, child);
  } else if (node.num_children > kHashThreshold) {
    // Escalate: build the hash index over the full (already published)
    // sibling chain, then publish the map index with a release store. The
    // chain stays intact, so a reader holding the pre-escalation view of
    // the node still walks it correctly.
    auto* map = new AtomicKeyMap(4 * kHashThreshold);
    for (NodeId c = node.first_child.load(std::memory_order_relaxed);
         c != kNilNode; c = nodes_[c].next_sibling) {
      map->Insert(nodes_[c].token, c);
    }
    uint32_t idx = static_cast<uint32_t>(child_maps_.EmplaceBack(map));
    node.child_map.store(idx, std::memory_order_release);
  }
  if (created != nullptr) *created = true;
  return child;
}

TokenTrie::NodeId TokenTrie::Find(NodeId id, Word token) const {
  const Node& node = nodes_[id];
  uint32_t map_idx = node.child_map.load(std::memory_order_acquire);
  if (map_idx != kNoChildMap) {
    uint32_t found = child_maps_[map_idx]->Find(token);
    return found == AtomicKeyMap::kNotFound ? kNilNode : found;
  }
  for (NodeId c = node.first_child.load(std::memory_order_acquire);
       c != kNilNode; c = nodes_[c].next_sibling) {
    if (nodes_[c].token == token) return c;
  }
  return kNilNode;
}

std::vector<TokenTrie::NodeId> TokenTrie::SortedChildren(NodeId id) const {
  std::vector<NodeId> out;
  out.reserve(nodes_[id].num_children);
  for (NodeId c = nodes_[id].first_child.load(std::memory_order_acquire);
       c != kNilNode; c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(), [this](NodeId a, NodeId b) {
    return nodes_[a].token < nodes_[b].token;
  });
  return out;
}

size_t TokenTrie::bytes() const {
  size_t total = nodes_.bytes() + child_maps_.bytes();
  size_t num_maps = child_maps_.size();
  for (size_t i = 0; i < num_maps; ++i) total += child_maps_[i]->bytes();
  return total;
}

void TokenTrie::Clear() {
  FreeChildMaps();
  child_maps_.Clear();
  nodes_.Clear();
  Reset();
}

void TokenTrie::Reset() { nodes_.EmplaceBack(); }

void TokenTrie::FreeChildMaps() {
  size_t num_maps = child_maps_.size();
  for (size_t i = 0; i < num_maps; ++i) delete child_maps_[i];
}

}  // namespace xsb
