#ifndef XSB_DB_OBJFILE_H_
#define XSB_DB_OBJFILE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "db/program.h"

namespace xsb {

// Binary object files (section 4.6): predicates saved as pre-flattened
// clause images with a local symbol table, so loading is a remap + bulk
// index build instead of parsing — the paper measures this at about 12x
// faster than the formatted read + assert path.

// Saves the clauses of `predicates` (or all predicates if empty).
Status SaveObjectFile(const Program& program,
                      const std::vector<FunctorId>& predicates,
                      const std::string& path);

// Loads an object file into `program`, interning symbols as needed.
// Returns the number of clauses loaded.
Result<size_t> LoadObjectFile(Program* program, const std::string& path);

}  // namespace xsb

#endif  // XSB_DB_OBJFILE_H_
