#ifndef XSB_DB_TOKEN_TRIE_H_
#define XSB_DB_TOKEN_TRIE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "term/cell.h"

namespace xsb {

// The trie node machinery shared by the first-string clause index
// (db/trie_index.h) and the answer tries of table space
// (tabling/table_space.h). A trie edge is labelled with one token Word
// (functor / atom / int / local-variable / interned cell).
//
// Nodes carry a parent pointer so a stored entry can be *retrieved* from its
// leaf by walking back to the root — the property that lets answer tables
// enumerate answers straight out of the trie instead of keeping a parallel
// materialized vector.
//
// Children hang off an intrusive first-child/next-sibling chain, so a node
// costs no heap allocations of its own; lookup scans the chain for the
// common low-fanout case and escalates to a hash map once a node's fanout
// exceeds kHashThreshold (the XSB trie's buckets).
class TokenTrie {
 public:
  struct Node;
  using ChildMap = std::unordered_map<Word, Node*>;

  struct Node {
    Word token = 0;  // edge label from the parent to this node
    Node* parent = nullptr;
    Node* first_child = nullptr;
    Node* next_sibling = nullptr;
    ChildMap* child_index = nullptr;  // owned by the trie; set above threshold
    uint32_t payload = kNoPayload;  // owner-defined index; kNoPayload if none
    uint32_t num_children = 0;
  };

  static constexpr uint32_t kNoPayload = 0xffffffffu;
  static constexpr uint32_t kHashThreshold = 8;

  TokenTrie() { Clear(); }
  TokenTrie(const TokenTrie&) = delete;
  TokenTrie& operator=(const TokenTrie&) = delete;

  Node* root() { return root_; }
  const Node* root() const { return root_; }

  // Child of `node` along `token`, created if absent. *created (may be
  // null) reports whether a new node was allocated.
  Node* Extend(Node* node, Word token, bool* created);

  // Lookup-only step; nullptr if no such child.
  static const Node* Find(const Node* node, Word token);

  // Children of `node` in ascending token order (deterministic iteration
  // for dumps and subtree collection).
  static std::vector<const Node*> SortedChildren(const Node* node);

  size_t node_count() const { return nodes_.size(); }

  // Approximate resident bytes of the trie structure.
  size_t bytes() const;

  void Clear();

 private:
  std::deque<Node> nodes_;  // arena; deque keeps node pointers stable
  std::vector<std::unique_ptr<ChildMap>> child_maps_;  // escalated indexes
  Node* root_ = nullptr;
};

}  // namespace xsb

#endif  // XSB_DB_TOKEN_TRIE_H_
