#ifndef XSB_DB_TOKEN_TRIE_H_
#define XSB_DB_TOKEN_TRIE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/concurrent.h"
#include "term/cell.h"

namespace xsb {

// The trie node machinery shared by the first-string clause index
// (db/trie_index.h), the answer tries of table space, and the call trie's
// variant index (tabling/call_trie.h). A trie edge is labelled with one
// token Word (functor / atom / int / local-variable / interned cell).
//
// Nodes are addressed by dense 32-bit ids into an append-only block arena,
// so every link (parent, child, sibling) is 4 bytes instead of a pointer and
// a node packs into 32 bytes — the table-space-resident structure this
// engine allocates most of. Ids are stable for the life of the trie (until
// Clear), and nodes never move: growth allocates new blocks.
//
// Concurrency contract (the invariant the shared-table serving layer relies
// on, frozen here as API):
//   * At most ONE mutator at a time (Extend / set_payload / Clear); the
//     table space serializes mutation under its evaluation lock.
//   * Any number of readers (Find, token, parent, payload, walks from a
//     leaf to the root) may run concurrently with that mutator. New
//     children are prepended and published with a release store, so a
//     reader either sees a fully initialized child or none at all.
//   * A concurrent Find may therefore *miss* a just-inserted child — a
//     negative result is advisory and callers on lock-free paths must
//     re-check under the lock; a positive result is definitive.
//   * Clear requires quiescence (no concurrent readers).
//
// Children hang off an intrusive first-child/next-sibling chain, so a node
// costs no heap allocations of its own; lookup scans the chain for the
// common low-fanout case and escalates to a lock-free-readable hash index
// once a node's fanout exceeds kHashThreshold (the XSB trie's buckets). The
// sibling chain is kept intact after escalation, so readers holding a stale
// view of the node still terminate correctly.
class TokenTrie {
 public:
  using NodeId = uint32_t;

  static constexpr NodeId kNilNode = 0xffffffffu;
  static constexpr uint32_t kNoPayload = 0xffffffffu;
  static constexpr uint32_t kNoChildMap = 0xffffffffu;
  static constexpr uint32_t kHashThreshold = 8;

  struct Node {
    Word token = 0;  // edge label from the parent to this node
    NodeId parent = kNilNode;
    std::atomic<NodeId> first_child{kNilNode};
    NodeId next_sibling = kNilNode;
    std::atomic<uint32_t> child_map{kNoChildMap};
    uint32_t num_children = 0;  // writer-side escalation bookkeeping
    std::atomic<uint32_t> payload{kNoPayload};
  };
  static_assert(sizeof(Node) == 32);

  TokenTrie() { Reset(); }
  TokenTrie(const TokenTrie&) = delete;
  TokenTrie& operator=(const TokenTrie&) = delete;
  ~TokenTrie() { FreeChildMaps(); }

  static constexpr NodeId root() { return 0; }

  Word token(NodeId id) const { return nodes_[id].token; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const {
    return nodes_[id].first_child.load(std::memory_order_acquire);
  }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }

  uint32_t payload(NodeId id) const {
    return nodes_[id].payload.load(std::memory_order_acquire);
  }
  void set_payload(NodeId id, uint32_t payload) {
    nodes_[id].payload.store(payload, std::memory_order_release);
  }

  // Child of `id` along `token`, created if absent (writer only). *created
  // (may be null) reports whether a new node was allocated.
  NodeId Extend(NodeId id, Word token, bool* created);

  // Lookup-only step; kNilNode if no such child. Safe concurrently with one
  // Extend-er; a miss is advisory (see class comment).
  NodeId Find(NodeId id, Word token) const;

  // Children of `id` in ascending token order (deterministic iteration for
  // dumps and subtree collection). Writer-side / quiescent use.
  std::vector<NodeId> SortedChildren(NodeId id) const;

  size_t node_count() const { return nodes_.size(); }

  // Approximate resident bytes of the trie structure (node arena blocks
  // plus escalated child indexes).
  size_t bytes() const;

  // Drops every node (writer only, requires quiescence).
  void Clear();

 private:
  void Reset();
  void FreeChildMaps();

  ConcurrentArena<Node, 7> nodes_;  // arena; ids stable, nodes never move
  ConcurrentArena<AtomicKeyMap*, 4> child_maps_;  // escalated child indexes
};

}  // namespace xsb

#endif  // XSB_DB_TOKEN_TRIE_H_
