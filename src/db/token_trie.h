#ifndef XSB_DB_TOKEN_TRIE_H_
#define XSB_DB_TOKEN_TRIE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "term/cell.h"

namespace xsb {

// The trie node machinery shared by the first-string clause index
// (db/trie_index.h), the answer tries of table space, and the call trie's
// variant index (tabling/call_trie.h). A trie edge is labelled with one
// token Word (functor / atom / int / local-variable / interned cell).
//
// Nodes are addressed by dense 32-bit ids into a flat arena, so every link
// (parent, child, sibling) is 4 bytes instead of a pointer and a node packs
// into 32 bytes — the table-space-resident structure this engine allocates
// most of. Ids are stable for the life of the trie (until Clear).
//
// Nodes carry a parent id so a stored entry can be *retrieved* from its
// leaf by walking back to the root — the property that lets answer tables
// enumerate answers straight out of the trie instead of keeping a parallel
// materialized vector.
//
// Children hang off an intrusive first-child/next-sibling chain, so a node
// costs no heap allocations of its own; lookup scans the chain for the
// common low-fanout case and escalates to a hash map once a node's fanout
// exceeds kHashThreshold (the XSB trie's buckets).
class TokenTrie {
 public:
  using NodeId = uint32_t;
  using ChildMap = std::unordered_map<Word, NodeId>;

  static constexpr NodeId kNilNode = 0xffffffffu;
  static constexpr uint32_t kNoPayload = 0xffffffffu;
  static constexpr uint32_t kNoChildMap = 0xffffffffu;
  static constexpr uint32_t kHashThreshold = 8;

  struct Node {
    Word token = 0;  // edge label from the parent to this node
    NodeId parent = kNilNode;
    NodeId first_child = kNilNode;
    NodeId next_sibling = kNilNode;
    uint32_t child_map = kNoChildMap;  // index into the trie's escalated maps
    uint32_t num_children = 0;
    uint32_t payload = kNoPayload;  // owner-defined index; kNoPayload if none
  };

  TokenTrie() { Clear(); }
  TokenTrie(const TokenTrie&) = delete;
  TokenTrie& operator=(const TokenTrie&) = delete;

  static constexpr NodeId root() { return 0; }

  const Node& node(NodeId id) const { return nodes_[id]; }

  uint32_t payload(NodeId id) const { return nodes_[id].payload; }
  void set_payload(NodeId id, uint32_t payload) {
    nodes_[id].payload = payload;
  }

  // Child of `id` along `token`, created if absent. *created (may be null)
  // reports whether a new node was allocated.
  NodeId Extend(NodeId id, Word token, bool* created);

  // Lookup-only step; kNilNode if no such child.
  NodeId Find(NodeId id, Word token) const;

  // Children of `id` in ascending token order (deterministic iteration for
  // dumps and subtree collection).
  std::vector<NodeId> SortedChildren(NodeId id) const;

  size_t node_count() const { return nodes_.size(); }

  // Approximate resident bytes of the trie structure (node arena capacity
  // plus escalated child maps).
  size_t bytes() const;

  void Clear();

 private:
  std::vector<Node> nodes_;  // arena; ids are indices, stable until Clear
  std::vector<std::unique_ptr<ChildMap>> child_maps_;  // escalated indexes
};

}  // namespace xsb

#endif  // XSB_DB_TOKEN_TRIE_H_
