#ifndef XSB_DB_PROGRAM_H_
#define XSB_DB_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/diagnostic.h"
#include "base/status.h"
#include "db/index.h"
#include "db/trie_index.h"
#include "parser/ops.h"
#include "term/flat.h"
#include "term/store.h"

namespace xsb {

// --- Evaluation sharding ------------------------------------------------------
//
// The shared table space is partitioned into kNumEvalShards evaluation
// shards; a tabled subgoal belongs to the shard of its predicate's call-graph
// SCC (scc index mod kNumEvalShards, assigned by the consult-time analyzer).
// A cold evaluation batch owns the shards of every *tabled* SCC statically
// reachable from its root before it starts, so batches over independent
// subgoals hold disjoint shard sets and run concurrently. A ShardMask is a
// bitset over the shards; mask 0 means "unknown" and callers treat it as
// kAllEvalShards (coarse, mutually exclusive with everything).
inline constexpr int kNumEvalShards = 16;
using ShardMask = uint32_t;
inline constexpr ShardMask kAllEvalShards =
    (ShardMask{1} << kNumEvalShards) - 1;
inline constexpr ShardMask EvalShardBit(int shard) {
  return ShardMask{1} << shard;
}

// --- Published instantiation modes --------------------------------------------
//
// The mode/groundness analysis (analysis/modes.h) publishes its per-predicate
// results here as raw bytes so this header stays free of the analysis types;
// analysis::Inst maps onto these values one-to-one.
inline constexpr uint8_t kModeGround = 0;  // no variables anywhere
inline constexpr uint8_t kModeNonvar = 1;  // outer symbol known
inline constexpr uint8_t kModeFree = 2;    // definitely an unbound variable
inline constexpr uint8_t kModeAny = 3;     // no information

// Inferred call/success patterns of one predicate, as published by
// analysis::PublishModes. Consumers: the WAM compiler (specialization
// target + runtime guard), predicate_mode/2, the evaluator's per-pattern
// shard reach masks, and the sanitizer-build soundness oracle.
struct PublishedModes {
  struct Pattern {
    std::vector<uint8_t> call;
    // Empty when the analysis proved the pattern can never succeed.
    std::vector<uint8_t> success;
    // Shards of the tabled SCCs reachable from this call pattern; a hint
    // exactly like Predicate::eval_reach_mask (0 = unknown).
    ShardMask reach_mask = 0;
  };
  std::vector<Pattern> patterns;     // [0] is the all-`any` top pattern
  std::vector<uint8_t> site_join;    // join over call-site patterns ([] = no
                                     // analyzed call site)
  std::vector<uint8_t> spec_meet;    // most precise site pattern worth
                                     // specializing for ([] = none)
  std::vector<uint8_t> success_join; // [] = never succeeds
  // Program::clause_epoch() at publication. Runtime asserts bump the epoch,
  // after which success modes may understate the program (a new clause can
  // produce differently-bound answers): epoch-mismatched modes must not be
  // *trusted* (the oracle skips its asserts), though they remain usable as
  // hints (shard masks, guarded WAM code).
  uint64_t epoch = 0;
};

// --- Answer subsumption table specs -------------------------------------------
//
// `:- table p(_, min).` declares per-argument lattice aggregation: answers
// that agree on every non-aggregated argument are collapsed by the lattice at
// the aggregated position instead of accumulating. At most one argument may
// carry a lattice; `first(N)` bounds the per-key answer count in insertion
// order rather than comparing values.
struct TableSpec {
  enum class Agg : uint8_t {
    kAll,    // `_`: plain tabling at this argument
    kMin,    // keep the answer with the smallest integer value
    kMax,    // keep the answer with the largest integer value
    kFirst,  // keep at most `n` answers per key, insertion order
  };
  struct Arg {
    Agg agg = Agg::kAll;
    int64_t n = 0;  // kFirst only
  };
  std::vector<Arg> args;
  int agg_pos = -1;  // index of the (single) aggregated argument, -1 if none
  bool subsumptive() const { return agg_pos >= 0; }
};

// How a predicate's clauses are indexed.
enum class IndexKind {
  kNone,         // linear scan
  kFirstArg,     // hash on the outer symbol of one argument (default: arg 1)
  kMultiField,   // :- index(p/5, [1, 2, 3+5])
  kFirstString,  // trie-based first-string indexing
};

// One stored clause. `term` is the flattened full clause: either a bare head
// (a fact) or ':-'(Head, Body).
struct Clause {
  FlatTerm term;
  bool is_rule = false;
  bool erased = false;  // tombstone left by retract
  size_t head_pos = 0;  // position of the head within term.cells
  SourceSpan span;      // where the clause was read; unknown for asserts
};

// A predicate: its clauses plus indexing and evaluation attributes.
class Predicate {
 public:
  Predicate(FunctorId functor, AtomId module)
      : functor_(functor), module_(module) {}

  FunctorId functor() const { return functor_; }
  AtomId module() const { return module_; }

  bool tabled() const { return tabled_; }
  void set_tabled(bool value) { tabled_ = value; }
  bool dynamic() const { return dynamic_; }
  void set_dynamic(bool value) { dynamic_ = value; }
  // Declared via :- incremental(p/N): updates to this predicate's clauses
  // are reported to the table-maintenance listener so dependent tables can
  // be invalidated instead of going silently stale.
  bool incremental() const { return incremental_; }
  void set_incremental(bool value) { incremental_ = value; }
  // Declared via a directive (table/dynamic/index/...): calling it with no
  // clauses is intentional, so the unknown-predicate lint stays quiet.
  bool declared() const { return declared_; }
  void set_declared(bool value) { declared_ = value; }
  // :- discontiguous p/N. suppresses the L002 lint.
  bool discontiguous_ok() const { return discontiguous_ok_; }
  void set_discontiguous_ok(bool value) { discontiguous_ok_ = value; }

  // Answer-subsumption lattice declaration (`:- table p(_, min).`); nullptr
  // for plain tabling. Captured by each Subgoal at table creation, so a
  // redeclaration only affects tables created afterwards.
  const TableSpec* table_spec() const { return table_spec_.get(); }
  void set_table_spec(std::unique_ptr<const TableSpec> spec) {
    table_spec_ = std::move(spec);
  }

  // Evaluation-shard assignment published by the consult-time analyzer:
  // `eval_shard` is the shard of this predicate's call-graph SCC (-1 before
  // any analysis), `eval_reach_mask` the shards of every tabled SCC
  // statically reachable from it (0 = unknown; callers treat 0 as all
  // shards). The mask is a *hint*: clauses asserted after the analysis can
  // make it stale, which the evaluator's ownership check catches at the
  // tabled call (escalate or fall back to coarse) — soundness never depends
  // on the mask being current.
  int eval_shard() const { return eval_shard_; }
  ShardMask eval_reach_mask() const { return eval_reach_mask_; }
  void set_eval_shards(int shard, ShardMask reach_mask) {
    eval_shard_ = shard;
    eval_reach_mask_ = reach_mask;
  }

  // Inferred call/success modes published by the mode analysis; nullptr
  // before any analysis (and after clear_modes()). Same publication
  // discipline as set_eval_shards: written only under pause-the-world or a
  // single-threaded session.
  const PublishedModes* modes() const { return modes_.get(); }
  void set_modes(std::unique_ptr<const PublishedModes> modes) {
    modes_ = std::move(modes);
  }
  void clear_modes() { modes_.reset(); }

  // First-argument dispatch masks for tabled predicates whose live clauses
  // all key on an atom/int first argument: constant -> shards reachable
  // through that clause group (plus nothing else). A bound cold call whose
  // first argument hits a key acquires only that group's shards; a miss
  // means no clause matches, so only the predicate's own shard is needed.
  // nullptr = not applicable. Hints like eval_reach_mask: stale entries are
  // repaired by the evaluator's runtime ownership check.
  const std::unordered_map<Word, ShardMask>* key_masks() const {
    return key_masks_.get();
  }
  void set_key_masks(
      std::unique_ptr<const std::unordered_map<Word, ShardMask>> masks) {
    key_masks_ = std::move(masks);
  }
  void clear_key_masks() { key_masks_.reset(); }

  IndexKind index_kind() const { return index_kind_; }

  const std::vector<Clause>& clauses() const { return clauses_; }
  const Clause& clause(ClauseId id) const { return clauses_[id]; }
  size_t num_live_clauses() const { return live_count_; }

  // Appends (or prepends, for asserta) a clause and updates indexes.
  // Prepended clauses force the index to rebuild.
  ClauseId AddClause(const SymbolTable& symbols, Clause clause, bool front);

  // Tombstones a clause (retract/1).
  void EraseClause(ClauseId id);

  // Drops all clauses and indexes (used by source-to-source transforms).
  void ClearClauses();

  // Declares the index layout. `fields`: list of field sets (1-based arg
  // numbers); empty = no indexing. Rebuilds over existing clauses.
  void SetHashIndex(const SymbolTable& symbols,
                    std::vector<std::vector<int>> field_sets);
  void SetFirstStringIndex(const SymbolTable& symbols);
  void SetNoIndex();

  // Candidate clauses for `goal` (a dereferenced heap term of this
  // predicate), best available index first. The result is a superset of the
  // clauses whose heads unify with the goal, in source order, and may
  // include erased clauses (callers must check).
  std::vector<ClauseId> Candidates(const TermStore& store, Word goal) const;

  const FirstStringIndex* first_string_index() const { return trie_.get(); }

 private:
  void Reindex(const SymbolTable& symbols);
  void IndexClause(const SymbolTable& symbols, ClauseId id);
  std::vector<Word> KeysFor(const SymbolTable& symbols, const Clause& clause,
                            const std::vector<int>& fields) const;

  FunctorId functor_;
  AtomId module_;
  bool tabled_ = false;
  bool dynamic_ = true;
  bool incremental_ = false;
  bool declared_ = false;
  bool discontiguous_ok_ = false;
  std::unique_ptr<const TableSpec> table_spec_;
  int eval_shard_ = -1;
  ShardMask eval_reach_mask_ = 0;
  std::unique_ptr<const PublishedModes> modes_;
  std::unique_ptr<const std::unordered_map<Word, ShardMask>> key_masks_;
  size_t live_count_ = 0;

  IndexKind index_kind_ = IndexKind::kFirstArg;
  std::vector<std::vector<int>> field_sets_ = {{1}};
  std::vector<std::unique_ptr<CombinedHashIndex>> hash_indexes_;
  std::unique_ptr<ArgHashIndex> first_arg_;
  std::unique_ptr<FirstStringIndex> trie_;

  std::vector<Clause> clauses_;
};

// Receives change notifications for incremental dynamic predicates. The
// tabling evaluator registers itself here so assert/retract/consult on a
// `:- incremental` predicate invalidates exactly the dependent tables.
class TableUpdateListener {
 public:
  virtual ~TableUpdateListener() = default;

  // Predicate `functor` (declared incremental) gained or lost a clause.
  virtual void OnIncrementalUpdate(FunctorId functor) = 0;

  // Predicate `functor` just *became* incremental. Tables created before the
  // declaration carry no dependency entries for it, so a late (runtime)
  // declaration must be handled conservatively.
  virtual void OnIncrementalDeclaration(FunctorId /*functor*/) {}
};

// The clause database: predicates, HiLog declarations, the operator table,
// and the per-module bookkeeping used by table_all.
class Program {
 public:
  explicit Program(SymbolTable* symbols)
      : symbols_(symbols), ops_(symbols) {
    user_module_ = symbols->InternAtom("user");
    current_module_ = user_module_;
  }
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  SymbolTable* symbols() const { return symbols_; }
  OpTable* ops() { return &ops_; }
  const OpTable& ops() const { return ops_; }

  // Looks a predicate up; returns nullptr if never defined/declared.
  Predicate* Lookup(FunctorId functor);
  const Predicate* Lookup(FunctorId functor) const;
  // Looks up, creating an empty predicate on first use.
  Predicate* LookupOrCreate(FunctorId functor);

  // Adds the clause `clause_term` (a heap term: fact or H :- B).
  // `front` selects asserta semantics. `span` records where the clause was
  // read from (default: unknown, as for runtime asserts).
  Status AddClauseTerm(const TermStore& store, Word clause_term,
                       bool front = false, SourceSpan span = SourceSpan());

  // Declarations (normally issued via directives during a consult).
  Status DeclareTabled(FunctorId functor);
  // `:- table p(_, min).`: tabled with answer-subsumption. `spec.args` must
  // match the functor's arity and carry exactly one aggregated position.
  Status DeclareTabledSubsumptive(FunctorId functor, TableSpec spec);
  // :- incremental(p/N): dynamic + update events feed table maintenance.
  Status DeclareIncremental(FunctorId functor);
  Status DeclareHilog(AtomId atom);
  Status DeclareIndex(FunctorId functor,
                      std::vector<std::vector<int>> field_sets);
  Status DeclareFirstString(FunctorId functor);

  bool IsHilogAtom(AtomId atom) const { return hilog_atoms_.count(atom) > 0; }
  const std::unordered_set<AtomId>* hilog_atoms() const {
    return &hilog_atoms_;
  }

  AtomId current_module() const { return current_module_; }
  void set_current_module(AtomId module) { current_module_ = module; }

  const std::unordered_map<FunctorId, std::unique_ptr<Predicate>>&
  predicates() const {
    return predicates_;
  }

  // Splits a callable heap term into functor + whether it is callable.
  // Atoms are arity-0 predicates.
  static std::optional<FunctorId> CallableFunctor(const TermStore& store,
                                                  Word goal);

  // --- Consult-time analysis state ------------------------------------------

  // Lints collected while reading (singleton variables need the variable
  // names, which do not survive flattening). Analyze() folds these into its
  // diagnostics.
  void AddConsultLint(analysis::Diagnostic lint) {
    consult_lints_.push_back(std::move(lint));
  }
  const std::vector<analysis::Diagnostic>& consult_lints() const {
    return consult_lints_;
  }

  // Diagnostics produced by the most recent consult-time analysis, for
  // analyze/1 and shell reporting.
  void SetAnalysisDiagnostics(std::vector<analysis::Diagnostic> diags) {
    analysis_diagnostics_ = std::move(diags);
  }
  const std::vector<analysis::Diagnostic>& analysis_diagnostics() const {
    return analysis_diagnostics_;
  }

  // Per-predicate stratification verdict published by the analyzer: maps
  // each member of a negation-infected SCC to its S001 message. The tabling
  // evaluator cites this instead of its generic runtime error.
  void SetUnstratified(std::unordered_map<FunctorId, std::string> reasons) {
    unstratified_ = std::move(reasons);
  }
  // Returns the S001 message for `functor`, or nullptr if the analyzer
  // found it stratified (or never ran).
  const std::string* UnstratifiedReason(FunctorId functor) const {
    auto it = unstratified_.find(functor);
    return it == unstratified_.end() ? nullptr : &it->second;
  }

  // Monotone counter naming anonymous consult units ("<consult-N>"), so
  // clauses from different ConsultString calls never appear interleaved.
  int NextConsultId() { return ++consult_counter_; }

  // Monotone count of clause *additions* (consult and runtime asserts).
  // Published modes carry the epoch they were computed at; a mismatch tells
  // trust-requiring consumers (the soundness oracle) that success modes may
  // understate the current program. Clause erasure does not bump it: a
  // shrunken program only ever satisfies the published upper bounds more.
  uint64_t clause_epoch() const { return clause_epoch_; }
  void BumpClauseEpoch() { ++clause_epoch_; }

  // --- Incremental update maintenance ---------------------------------------

  // Registers the table-maintenance listener (the tabling evaluator).
  void set_update_listener(TableUpdateListener* listener) {
    update_listener_ = listener;
  }
  // Reports a clause change on incremental predicate `functor`. AddClauseTerm
  // calls this itself; the retract family of builtins calls it after erasing.
  void NotifyIncrementalUpdate(FunctorId functor) {
    if (update_listener_ != nullptr) {
      update_listener_->OnIncrementalUpdate(functor);
    }
  }

  // Static dependency seeds published by the analyzer: for each predicate,
  // the incremental predicates reachable through the call graph (including
  // itself when incremental). New tables are registered as readers of every
  // seed, which makes invalidation a superset of the truly affected tables
  // even for calls the runtime capture cannot see (call/N, HiLog).
  void SetIncrementalDeps(
      std::unordered_map<FunctorId, std::vector<FunctorId>> deps) {
    incremental_deps_ = std::move(deps);
  }
  const std::vector<FunctorId>* IncrementalDepsOf(FunctorId functor) const {
    auto it = incremental_deps_.find(functor);
    return it == incremental_deps_.end() ? nullptr : &it->second;
  }

 private:
  SymbolTable* symbols_;
  OpTable ops_;
  AtomId user_module_;
  AtomId current_module_;
  std::unordered_map<FunctorId, std::unique_ptr<Predicate>> predicates_;
  std::unordered_set<AtomId> hilog_atoms_;
  std::vector<analysis::Diagnostic> consult_lints_;
  std::vector<analysis::Diagnostic> analysis_diagnostics_;
  std::unordered_map<FunctorId, std::string> unstratified_;
  int consult_counter_ = 0;
  uint64_t clause_epoch_ = 0;
  TableUpdateListener* update_listener_ = nullptr;
  std::unordered_map<FunctorId, std::vector<FunctorId>> incremental_deps_;
};

}  // namespace xsb

#endif  // XSB_DB_PROGRAM_H_
