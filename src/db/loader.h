#ifndef XSB_DB_LOADER_H_
#define XSB_DB_LOADER_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "db/program.h"
#include "term/store.h"

namespace xsb {

// Consults source text into a Program: reads clauses, processes directives
// (:- table, :- table_all, :- hilog, :- index, :- dynamic, :- incremental,
// :- module), and asserts everything else. One Loader per consult unit; the
// paper's `table_all` directive is scoped to the unit it appears in.
class Loader {
 public:
  Loader(TermStore* store, Program* program)
      : store_(store), program_(program) {}

  // Names the consult unit in source spans and diagnostics. ConsultFile sets
  // it to the path; ConsultString units otherwise get "<consult-N>".
  void set_source_name(std::string name) { source_name_ = std::move(name); }

  // In strict mode, error-severity analysis diagnostics (non-stratified
  // programs) fail the consult instead of being recorded for later.
  void set_strict(bool strict) { strict_ = strict; }

  Status ConsultString(std::string_view text);
  Status ConsultFile(const std::string& path);

  // Formatted bulk reader (section 4.6): each line is `v1,v2,...,vN` with
  // integer or atom fields, asserted as name(v1..vN) with index maintenance.
  // Orders of magnitude cheaper than the general reader. Returns the number
  // of facts loaded.
  Result<size_t> LoadFactsFormatted(std::istream& in, const std::string& name,
                                    int arity);
  Result<size_t> LoadFactsFormattedFile(const std::string& path,
                                        const std::string& name, int arity);

  // Functors defined (given clauses) by this consult unit, in order.
  const std::vector<FunctorId>& defined() const { return defined_; }

 private:
  Status HandleDirective(Word directive);
  // Applies `fn` to each Name/Arity in `spec` (a single spec, a conjunction,
  // or a list of specs).
  Status ForEachPredSpec(Word spec,
                         const std::function<Status(FunctorId)>& fn);
  Status HandleTableSpec(Word spec);
  // `p(_, min)`-shaped answer-subsumption declaration inside :- table.
  Status ParseSubsumptionSpec(Word spec);
  Status HandleIndexSpec(Word pred_spec, Word index_spec);
  Status HandleDiscontiguousSpec(Word spec);
  Result<FunctorId> ParsePredSpec(Word spec);  // name/arity
  // Runs the consult-time analyzer over the program, applies auto_table if
  // requested, publishes the stratification verdict and diagnostics.
  Status RunAnalysis();

  TermStore* store_;
  Program* program_;
  std::vector<FunctorId> defined_;
  std::string source_name_;
  bool table_all_requested_ = false;
  bool auto_table_requested_ = false;
  bool strict_ = false;
};

// Static cut-safety check (section 4.4): reports an error when a clause
// body cuts after calling a tabled predicate — the cut could close a
// partially computed table, so the compiler rejects it.
Status CheckCutSafety(const Program& program,
                      const std::vector<FunctorId>& scope);

// The `:- table_all.` analysis (section 4.3): builds the call graph of the
// in-scope predicates, finds its strongly connected components, and tables
// every predicate on a cycle, which breaks all loops (favoring simplicity
// over precision, as the paper does).
//
// Returns the functors that were newly tabled.
std::vector<FunctorId> TableAllAnalysis(Program* program,
                                        const std::vector<FunctorId>& scope);

}  // namespace xsb

#endif  // XSB_DB_LOADER_H_
