#include "db/program.h"

namespace xsb {

ClauseId Predicate::AddClause(const SymbolTable& symbols, Clause clause,
                              bool front) {
  ++live_count_;
  if (front && !clauses_.empty()) {
    clauses_.insert(clauses_.begin(), std::move(clause));
    Reindex(symbols);
    return 0;
  }
  clauses_.push_back(std::move(clause));
  ClauseId id = static_cast<ClauseId>(clauses_.size() - 1);
  IndexClause(symbols, id);
  return id;
}

void Predicate::ClearClauses() {
  clauses_.clear();
  live_count_ = 0;
  first_arg_.reset();
  hash_indexes_.clear();
  trie_.reset();
}

void Predicate::EraseClause(ClauseId id) {
  if (!clauses_[id].erased) {
    clauses_[id].erased = true;
    --live_count_;
  }
  // Indexes keep the tombstoned id; retrieval filters on `erased`.
}

std::vector<Word> Predicate::KeysFor(const SymbolTable& symbols,
                                     const Clause& clause,
                                     const std::vector<int>& fields) const {
  std::vector<Word> keys;
  keys.reserve(fields.size());
  const std::vector<Word>& cells = clause.term.cells;
  for (int field : fields) {
    size_t pos =
        FlatArgPos(symbols, cells, clause.head_pos, field - 1);
    keys.push_back(FlatArgKey(cells, pos));
  }
  return keys;
}

void Predicate::IndexClause(const SymbolTable& symbols, ClauseId id) {
  const Clause& clause = clauses_[id];
  int arity = symbols.FunctorArity(functor_);
  switch (index_kind_) {
    case IndexKind::kNone:
      return;
    case IndexKind::kFirstArg: {
      if (arity == 0) return;
      if (first_arg_ == nullptr) {
        first_arg_ = std::make_unique<ArgHashIndex>(1);
      }
      size_t pos = FlatArgPos(symbols, clause.term.cells, clause.head_pos, 0);
      first_arg_->Insert(id, FlatArgKey(clause.term.cells, pos));
      return;
    }
    case IndexKind::kMultiField: {
      for (size_t i = 0; i < field_sets_.size(); ++i) {
        if (hash_indexes_.size() <= i) {
          hash_indexes_.push_back(
              std::make_unique<CombinedHashIndex>(field_sets_[i]));
        }
        hash_indexes_[i]->Insert(id, KeysFor(symbols, clause, field_sets_[i]));
      }
      return;
    }
    case IndexKind::kFirstString: {
      if (trie_ == nullptr) trie_ = std::make_unique<FirstStringIndex>();
      trie_->Insert(id, symbols, clause.term.cells, clause.head_pos);
      return;
    }
  }
}

void Predicate::Reindex(const SymbolTable& symbols) {
  first_arg_.reset();
  hash_indexes_.clear();
  trie_.reset();
  for (ClauseId id = 0; id < clauses_.size(); ++id) {
    if (!clauses_[id].erased) IndexClause(symbols, id);
  }
}

void Predicate::SetHashIndex(const SymbolTable& symbols,
                             std::vector<std::vector<int>> field_sets) {
  if (field_sets.empty()) {
    SetNoIndex();
    return;
  }
  if (field_sets.size() == 1 && field_sets[0].size() == 1 &&
      field_sets[0][0] == 1) {
    index_kind_ = IndexKind::kFirstArg;
    field_sets_ = {{1}};
  } else {
    index_kind_ = IndexKind::kMultiField;
    field_sets_ = std::move(field_sets);
  }
  Reindex(symbols);
}

void Predicate::SetFirstStringIndex(const SymbolTable& symbols) {
  index_kind_ = IndexKind::kFirstString;
  Reindex(symbols);
}

void Predicate::SetNoIndex() {
  index_kind_ = IndexKind::kNone;
  first_arg_.reset();
  hash_indexes_.clear();
  trie_.reset();
}

std::vector<ClauseId> Predicate::Candidates(const TermStore& store,
                                            Word goal) const {
  goal = store.Deref(goal);
  std::vector<ClauseId> all;
  auto scan_all = [&]() {
    all.reserve(clauses_.size());
    for (ClauseId id = 0; id < clauses_.size(); ++id) all.push_back(id);
    return all;
  };

  switch (index_kind_) {
    case IndexKind::kNone:
      return scan_all();
    case IndexKind::kFirstArg: {
      if (first_arg_ == nullptr || !IsStruct(goal)) return scan_all();
      Word arg = store.Deref(store.Arg(goal, 0));
      if (IsRef(arg)) return scan_all();
      Word key = IsStruct(arg) ? FunctorCell(store.StructFunctor(arg)) : arg;
      return first_arg_->Lookup(key);
    }
    case IndexKind::kMultiField: {
      if (!IsStruct(goal)) return scan_all();
      // First declared index whose fields are all bound in the call wins,
      // mirroring ":- index(p/5,[1,2,3+5])" semantics from the paper.
      for (const auto& index : hash_indexes_) {
        std::vector<Word> keys;
        keys.reserve(index->args().size());
        bool usable = true;
        for (int field : index->args()) {
          Word arg = store.Deref(store.Arg(goal, field - 1));
          if (IsRef(arg)) {
            usable = false;
            break;
          }
          keys.push_back(IsStruct(arg)
                             ? FunctorCell(store.StructFunctor(arg))
                             : arg);
        }
        if (!usable) continue;
        const std::vector<ClauseId>* bucket = index->Lookup(keys);
        if (bucket != nullptr) return *bucket;
      }
      return scan_all();
    }
    case IndexKind::kFirstString: {
      if (trie_ == nullptr) return scan_all();
      return trie_->Lookup(store, goal);
    }
  }
  return scan_all();
}

Predicate* Program::Lookup(FunctorId functor) {
  auto it = predicates_.find(functor);
  return it == predicates_.end() ? nullptr : it->second.get();
}

const Predicate* Program::Lookup(FunctorId functor) const {
  auto it = predicates_.find(functor);
  return it == predicates_.end() ? nullptr : it->second.get();
}

Predicate* Program::LookupOrCreate(FunctorId functor) {
  auto it = predicates_.find(functor);
  if (it != predicates_.end()) return it->second.get();
  auto pred = std::make_unique<Predicate>(functor, current_module_);
  Predicate* raw = pred.get();
  predicates_.emplace(functor, std::move(pred));
  return raw;
}

std::optional<FunctorId> Program::CallableFunctor(const TermStore& store,
                                                  Word goal) {
  goal = store.Deref(goal);
  if (IsAtom(goal)) {
    return store.symbols()->InternFunctor(AtomOf(goal), 0);
  }
  if (IsStruct(goal)) return store.StructFunctor(goal);
  return std::nullopt;
}

Status Program::AddClauseTerm(const TermStore& store, Word clause_term,
                              bool front, SourceSpan span) {
  clause_term = store.Deref(clause_term);
  Clause clause;
  clause.term = Flatten(store, clause_term);
  clause.span = span;

  // Split H :- B.
  Word head = clause_term;
  if (IsStruct(clause_term)) {
    FunctorId f = store.StructFunctor(clause_term);
    if (symbols_->FunctorAtom(f) == symbols_->neck() &&
        symbols_->FunctorArity(f) == 2) {
      clause.is_rule = true;
      clause.head_pos = 1;  // cells[0] is the ':-' functor cell
      head = store.Deref(store.Arg(clause_term, 0));
    }
  }

  std::optional<FunctorId> functor = CallableFunctor(store, head);
  if (!functor.has_value()) {
    return TypeError("clause head is not callable");
  }
  Predicate* pred = LookupOrCreate(*functor);
  pred->AddClause(*symbols_, std::move(clause), front);
  BumpClauseEpoch();
  if (pred->incremental()) NotifyIncrementalUpdate(*functor);
  return Status::Ok();
}

Status Program::DeclareTabled(FunctorId functor) {
  Predicate* pred = LookupOrCreate(functor);
  pred->set_tabled(true);
  pred->set_declared(true);
  return Status::Ok();
}

Status Program::DeclareTabledSubsumptive(FunctorId functor, TableSpec spec) {
  int arity = symbols_->FunctorArity(functor);
  if (static_cast<int>(spec.args.size()) != arity) {
    return InvalidError("table spec arity does not match predicate arity");
  }
  spec.agg_pos = -1;
  for (size_t i = 0; i < spec.args.size(); ++i) {
    if (spec.args[i].agg == TableSpec::Agg::kAll) continue;
    if (spec.agg_pos >= 0) {
      return InvalidError(
          "table spec declares more than one aggregated argument");
    }
    if (spec.args[i].agg == TableSpec::Agg::kFirst && spec.args[i].n < 0) {
      return InvalidError("first(N) requires a non-negative N");
    }
    spec.agg_pos = static_cast<int>(i);
  }
  Predicate* pred = LookupOrCreate(functor);
  pred->set_tabled(true);
  pred->set_declared(true);
  pred->set_table_spec(
      std::make_unique<const TableSpec>(std::move(spec)));
  return Status::Ok();
}

Status Program::DeclareIncremental(FunctorId functor) {
  Predicate* pred = LookupOrCreate(functor);
  bool newly_incremental = !pred->incremental();
  pred->set_incremental(true);
  pred->set_dynamic(true);
  pred->set_declared(true);
  if (newly_incremental && update_listener_ != nullptr) {
    update_listener_->OnIncrementalDeclaration(functor);
  }
  return Status::Ok();
}

Status Program::DeclareHilog(AtomId atom) {
  hilog_atoms_.insert(atom);
  return Status::Ok();
}

Status Program::DeclareIndex(FunctorId functor,
                             std::vector<std::vector<int>> field_sets) {
  int arity = symbols_->FunctorArity(functor);
  for (const auto& fields : field_sets) {
    if (fields.empty() || fields.size() > 3) {
      return InvalidError("index field sets must have 1 to 3 fields");
    }
    for (int f : fields) {
      if (f < 1 || f > arity) {
        return InvalidError("index field out of range for predicate arity");
      }
    }
  }
  Predicate* pred = LookupOrCreate(functor);
  pred->SetHashIndex(*symbols_, std::move(field_sets));
  pred->set_declared(true);
  return Status::Ok();
}

Status Program::DeclareFirstString(FunctorId functor) {
  Predicate* pred = LookupOrCreate(functor);
  pred->SetFirstStringIndex(*symbols_);
  pred->set_declared(true);
  return Status::Ok();
}

}  // namespace xsb
