#ifndef XSB_DB_TRIE_INDEX_H_
#define XSB_DB_TRIE_INDEX_H_

#include <string>
#include <vector>

#include "db/index.h"
#include "db/token_trie.h"
#include "term/flat.h"
#include "term/store.h"

namespace xsb {

// First-string indexing (section 4.5, Example 4.2 / Figure 3): a
// discrimination trie built over the "first string" of each clause head —
// the preorder traversal of the head, truncated at the first variable.
//
// Tokens are flat cells (functor / atom / int). A clause whose first string
// ends at node N matches any call whose token stream reaches N (the clause
// had a variable there); conversely a call token stream that hits a variable
// *in the call* matches every clause in the subtree below the current node.
//
// The node machinery is the shared TokenTrie (db/token_trie.h), the same
// structure that backs the answer tries of table space; each trie node's
// payload indexes the list of clauses whose first string ends there.
class FirstStringIndex {
 public:
  FirstStringIndex() = default;

  // `head_cells` is the flattened clause head (functor cell + args).
  void Insert(ClauseId id, const SymbolTable& symbols,
              const std::vector<Word>& head_cells, size_t head_pos);

  // Candidate clauses for the (possibly nonground) call term `goal`.
  // Results are in clause order; a superset of the truly matching clauses.
  std::vector<ClauseId> Lookup(const TermStore& store, Word goal) const;

  // Number of trie nodes (for tests and the indexing ablation bench).
  size_t NodeCount() const { return trie_.node_count(); }

  // Renders the trie as an indented tree, as in the paper's Figure 3.
  std::string Dump(const SymbolTable& symbols) const;

 private:
  const std::vector<ClauseId>* EndingsAt(TokenTrie::NodeId node) const {
    uint32_t payload = trie_.payload(node);
    if (payload == TokenTrie::kNoPayload) return nullptr;
    return &endings_[payload];
  }
  void CollectSubtree(TokenTrie::NodeId node, std::vector<ClauseId>* out) const;

  TokenTrie trie_;
  // Clause lists, referenced from trie-node payloads.
  std::vector<std::vector<ClauseId>> endings_;
};

}  // namespace xsb

#endif  // XSB_DB_TRIE_INDEX_H_
