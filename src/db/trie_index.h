#ifndef XSB_DB_TRIE_INDEX_H_
#define XSB_DB_TRIE_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/index.h"
#include "term/flat.h"
#include "term/store.h"

namespace xsb {

// First-string indexing (section 4.5, Example 4.2 / Figure 3): a
// discrimination trie built over the "first string" of each clause head —
// the preorder traversal of the head, truncated at the first variable.
//
// Tokens are flat cells (functor / atom / int). A clause whose first string
// ends at node N matches any call whose token stream reaches N (the clause
// had a variable there); conversely a call token stream that hits a variable
// *in the call* matches every clause in the subtree below the current node.
class FirstStringIndex {
 public:
  FirstStringIndex() : root_(std::make_unique<Node>()) {}

  // `head_cells` is the flattened clause head (functor cell + args).
  void Insert(ClauseId id, const SymbolTable& symbols,
              const std::vector<Word>& head_cells, size_t head_pos);

  // Candidate clauses for the (possibly nonground) call term `goal`.
  // Results are in clause order; a superset of the truly matching clauses.
  std::vector<ClauseId> Lookup(const TermStore& store, Word goal) const;

  // Number of trie nodes (for tests and the indexing ablation bench).
  size_t NodeCount() const;

  // Renders the trie as an indented tree, as in the paper's Figure 3.
  std::string Dump(const SymbolTable& symbols) const;

 private:
  struct Node {
    std::map<Word, std::unique_ptr<Node>> children;
    std::vector<ClauseId> ends_here;  // clauses whose first string ends here
  };

  static void CollectSubtree(const Node* node, std::vector<ClauseId>* out);

  std::unique_ptr<Node> root_;
};

}  // namespace xsb

#endif  // XSB_DB_TRIE_INDEX_H_
