#ifndef XSB_TABLING_EPOCH_H_
#define XSB_TABLING_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <limits>

namespace xsb {

// Epoch-based deferred reclamation for the shared table space.
//
// Completed answer tables are enumerated lock-free by any number of serving
// threads. When an update retires a table (abolish_table_call/1, incremental
// invalidation, Clear), the trie a reader may still be walking cannot be
// freed in place. Instead the table is stamped with the current epoch and
// parked on a limbo list; it is destroyed only once every thread that could
// have observed it has announced a *later* epoch (or gone idle).
//
// Protocol:
//   * A serving thread owns a slot. Around each query it brackets the work
//     with Enter(slot) / Exit(slot); between queries the slot is idle.
//   * A retirer stamps the object with Retire() — the epoch during which
//     the object was last reachable — after unlinking it from all shared
//     structures.
//   * SafeToReclaim(stamp) is true once min(announced epochs) > stamp:
//     every in-flight reader entered after the unlink became visible.
//
// The single-threaded engine never enters a slot, so MinActive() is +inf
// and reclamation degenerates to the old "free between top-level queries"
// behavior with zero overhead on that path.
class EpochManager {
 public:
  static constexpr int kMaxSlots = 64;
  static constexpr uint64_t kIdle = 0;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Claims a slot for a serving thread (service worker / session). Returns
  // -1 when all slots are taken; callers then serialize through the
  // evaluation lock instead of serving lock-free (never happens below 64
  // concurrent sessions).
  int AcquireSlot() {
    for (int i = 0; i < kMaxSlots; ++i) {
      bool expected = false;
      if (slots_[i].in_use.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        slots_[i].announced.store(kIdle, std::memory_order_release);
        return i;
      }
    }
    return -1;
  }

  void ReleaseSlot(int slot) {
    if (slot < 0) return;
    slots_[slot].announced.store(kIdle, std::memory_order_release);
    slots_[slot].in_use.store(false, std::memory_order_release);
  }

  // Announces that `slot` is about to read shared table structures. The
  // seq_cst store orders the announcement before every subsequent pointer
  // load, so a retirer scanning slots either sees this reader or the reader
  // sees the unlink.
  void Enter(int slot) {
    uint64_t e = global_.load(std::memory_order_seq_cst);
    slots_[slot].announced.store(e, std::memory_order_seq_cst);
  }

  void Exit(int slot) {
    slots_[slot].announced.store(kIdle, std::memory_order_release);
  }

  // Stamps a retirement: returns the epoch during which the retired object
  // was last reachable, and advances the global epoch so future Enter()s
  // announce a later one.
  uint64_t Retire() {
    return global_.fetch_add(1, std::memory_order_seq_cst);
  }

  // Smallest announced epoch over the active slots; +inf when all idle.
  uint64_t MinActive() const {
    uint64_t min = std::numeric_limits<uint64_t>::max();
    for (int i = 0; i < kMaxSlots; ++i) {
      uint64_t e = slots_[i].announced.load(std::memory_order_seq_cst);
      if (e != kIdle && e < min) min = e;
    }
    return min;
  }

  bool SafeToReclaim(uint64_t stamp) const { return MinActive() > stamp; }

  uint64_t current() const {
    return global_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> announced{kIdle};
    std::atomic<bool> in_use{false};
  };

  std::atomic<uint64_t> global_{1};  // 0 is reserved for kIdle
  Slot slots_[kMaxSlots];
};

// RAII query bracket for a serving thread's epoch slot. A negative slot
// (engine path / slot exhaustion) makes it a no-op.
class EpochGuard {
 public:
  EpochGuard(EpochManager* manager, int slot)
      : manager_(manager), slot_(slot) {
    if (manager_ != nullptr && slot_ >= 0) manager_->Enter(slot_);
  }
  ~EpochGuard() {
    if (manager_ != nullptr && slot_ >= 0) manager_->Exit(slot_);
  }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* manager_;
  int slot_;
};

}  // namespace xsb

#endif  // XSB_TABLING_EPOCH_H_
