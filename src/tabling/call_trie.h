#ifndef XSB_TABLING_CALL_TRIE_H_
#define XSB_TABLING_CALL_TRIE_H_

#include <cstddef>
#include <vector>

#include "db/token_trie.h"
#include "term/flat.h"
#include "term/intern.h"
#include "term/store.h"

namespace xsb {

// The call trie: XSB's variant-based subgoal index (section 3.2), realized
// over the shared TokenTrie. A tabled call is checked/inserted in a single
// walk from the live heap term — no intermediate FlatTerm is materialized —
// tokenizing as it goes: variables become kLocal cells numbered by first
// occurrence, and every maximal ground compound subterm collapses to one
// kInterned token via the engine-wide intern store (so a repeated ground
// call is a handful of trie steps regardless of its size). Two calls are
// variants iff their token streams are equal iff they reach the same leaf.
//
// The leaf payload is owner-defined (table space stores the SubgoalId).
// Payloads can be cleared (abolish_table_call/1) without removing the path;
// a later variant call reuses the nodes and just re-sets the payload.
//
// Concurrency: LookupOrInsert mutates and must run under the table space's
// evaluation lock (single mutator). Probe is lock-free and may run from any
// number of serving threads concurrently with one inserter — its walk
// scratch is thread-local, and a kNilNode result is advisory (it can miss a
// variant inserted concurrently; the serving layer re-checks under the
// lock). The "last encoded call" accessors read the calling thread's own
// scratch, valid until that thread's next walk.
class CallTrie {
 public:
  explicit CallTrie(InternTable* interns) : interns_(interns) {}
  CallTrie(const CallTrie&) = delete;
  CallTrie& operator=(const CallTrie&) = delete;

  // Walks (and extends) the trie for the call `goal`; returns its leaf.
  // Afterwards last_tokens()/last_num_vars() describe the encoded call.
  TokenTrie::NodeId LookupOrInsert(const TermStore& store, Word goal);

  // Lookup-only walk; TokenTrie::kNilNode if no variant of `goal` was ever
  // inserted. Never mutates the trie or the intern store: ground compounds
  // are probed with InternTable::FindNode, and a compound that was never
  // interned cannot occur in any stored call.
  TokenTrie::NodeId Probe(const TermStore& store, Word goal) const;

  uint32_t payload(TokenTrie::NodeId leaf) const {
    return trie_.payload(leaf);
  }
  void set_payload(TokenTrie::NodeId leaf, uint32_t payload) {
    trie_.set_payload(leaf, payload);
  }

  // Token stream / variable count of the call most recently encoded by
  // LookupOrInsert or Probe *on this thread* (scratch: valid until the
  // calling thread's next walk).
  const std::vector<Word>& last_tokens() const;
  uint32_t last_num_vars() const;

  // Canonical FlatTerm of the last encoded call (the subgoal's answer
  // template); only needed on the miss path when a new subgoal is created.
  FlatTerm DecodeLastCall() const;

  size_t node_count() const { return trie_.node_count(); }
  size_t bytes() const { return trie_.bytes(); }

  void Clear() { trie_.Clear(); }

 private:
  // Per-thread walk scratch (see class comment).
  struct WalkScratch {
    std::vector<Word> tokens;
    std::vector<uint64_t> var_cells;
    bool probe_miss = false;
  };
  static WalkScratch& Scratch();

  // Tokenizes the subterm `t` into scratch.tokens; returns whether it was
  // ground (in which case it contributed exactly one token). With
  // `probing`, uses lookup-only interning and sets scratch.probe_miss
  // instead of interning fresh compounds.
  bool EncodeHeapSubterm(const TermStore& store, Word t, bool probing,
                         WalkScratch& scratch) const;
  // Open-encodes the whole call (top functor kept as its own token, as in
  // AnswerTrie streams) into scratch.tokens. Returns false if a probing
  // encode hit a never-interned ground compound.
  bool EncodeCall(const TermStore& store, Word goal, bool probing,
                  WalkScratch& scratch) const;

  InternTable* interns_;
  TokenTrie trie_;
};

}  // namespace xsb

#endif  // XSB_TABLING_CALL_TRIE_H_
