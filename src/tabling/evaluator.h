#ifndef XSB_TABLING_EVALUATOR_H_
#define XSB_TABLING_EVALUATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/machine.h"
#include "tabling/table_space.h"

namespace xsb {

// The SLG evaluator: plugs into the Machine as its TabledCallHandler and
// turns SLD into SLG resolution for tabled predicates (section 3).
//
// Scheduling is *local*: a tabled call made from ordinary (non-tabled)
// execution opens an evaluation batch, drives every subgoal the batch
// creates to fixpoint, marks them complete, and only then returns answers
// to the caller through an answer choice point. Inside a batch, repeated
// calls become suspended consumers captured by copying the (call,
// continuation) pair into table space — the copying realization of the
// SLG-WAM's frozen stacks.
//
// Negation:
//   * tnot/1  — SLG negation: completes the subgoal in a nested batch, then
//     succeeds iff the (necessarily ground) call has no answer. A nested
//     batch that touches an incomplete table of an enclosing batch is a
//     modular-stratification violation and is reported as an error.
//   * e_tnot/1 — existential negation: the nested batch stops at the first
//     answer and *disposes* every table it created (the tcut mechanism),
//     reproducing the paper's Table 2 behavior.
//
// Ground calls complete early: as soon as a ground subgoal gets its answer,
// its generator is cut off (XSB's early completion), which is what makes
// e_tnot explore sqrt(2)^n rather than 2^n nodes of the win/1 tree.
//
// Incremental maintenance: the evaluator registers as the program's update
// listener. While a table is being computed it records which incremental
// dynamic predicates its clauses read and which subsidiary tables it
// consumed (refining the analyzer's static seeds). An assert/retract on an
// incremental predicate then marks exactly the completed tables that
// transitively depend on it invalid; an invalid table is re-evaluated
// lazily on its next call, reusing every still-valid subsidiary table.
//
// Shared-table mode: an Evaluator may be constructed over an external
// TableSpace shared with other sessions (QueryService workers). The *warm
// path* — a top-level call whose table is already complete and valid —
// serves answers entirely lock-free via the publication/revalidation
// protocol (see Subgoal). A top-level caller that finds another session's
// batch mid-computation of its variant parks on the completion condvar
// instead of duplicating the work (first caller computes).
//
// Cold evaluation is parallel across *independent* subgoals: a top-level
// cold call acquires its predicate's static shard reach mask (analyzer SCC
// output, see PublishEvalShards) all-or-nothing, making this session the
// exclusive evaluator of every tabled predicate in those shards. Sessions
// whose roots reach disjoint shard sets evaluate concurrently against the
// shared space. A mid-batch call that falls outside the owned mask (the
// mask went stale via assertz, or the predicate was never analyzed) tries a
// non-blocking shard escalation; if the needed shards are contended the
// batch unwinds via an internal kRetryEvaluation status — disposing its
// partial tables exactly like an error — and restarts under the full shard
// mask (the coarse fallback, counted in coarse_fallbacks). Blocking shard
// acquisition only ever happens while holding no shards, so the scheduler
// cannot deadlock; condvar waits on in-progress variants likewise occur
// only outside any batch.
class Evaluator : public TabledCallHandler, public TableUpdateListener {
 public:
  struct Options {
    // Store answers as interned token paths in a trie (the default). When
    // false, falls back to the materialized vector + hash-set store, kept
    // for the indexing-ablation bench.
    bool answer_trie = true;
    // Complete ground subgoals as soon as their answer arrives, cutting off
    // the rest of their generator. This post-1994 XSB optimization makes
    // default tnot behave like e_tnot on Table 2's trees, so it is OFF by
    // default and exercised by the ablation bench.
    bool early_completion = false;
    // Maintain tables across updates to :- incremental predicates (the
    // default). When false, such an update abolishes the whole table space
    // — the from-scratch baseline the update bench compares against.
    bool incremental = true;
    // Register as the Program's (single) update listener. QueryService
    // worker sessions set this false: the service's control session owns
    // the listener slot, and all sessions share one table space anyway.
    bool register_update_listener = true;
  };

  explicit Evaluator(Machine* machine) : Evaluator(machine, Options()) {}
  Evaluator(Machine* machine, Options options)
      : Evaluator(machine, options, nullptr) {}
  // Shared-table construction: evaluate against `shared_tables` (owned by
  // the caller, typically a QueryService) instead of a private space.
  Evaluator(Machine* machine, Options options, TableSpace* shared_tables);
  ~Evaluator() override;

  TableSpace& tables() { return *tables_; }
  const TableSpace& tables() const { return *tables_; }

  // Drops all tables (exposed to benches; abolish_all_tables/0 equivalent).
  void AbolishAllTables();

  struct EvalStats {
    uint64_t batches = 0;
    uint64_t generator_episodes = 0;
    uint64_t resumptions = 0;
    uint64_t early_completions = 0;
    uint64_t existential_aborts = 0;
    uint64_t update_events = 0;  // incremental-predicate change reports
  };
  const EvalStats& stats() const { return stats_; }

  // TabledCallHandler:
  CallOutcome OnTabledCall(Machine* machine, Word goal,
                           const GoalNode* cont) override;
  CallOutcome OnTabledAnswer(Machine* machine, int64_t subgoal_index,
                             Word call_instance) override;
  CallOutcome OnNegation(Machine* machine, Word goal, const GoalNode* cont,
                         bool existential) override;
  CallOutcome OnTFindall(Machine* machine, Word templ, Word goal, Word result,
                         const GoalNode* cont) override;
  TableStatsInfo GetTableStats(Machine* machine, Word goal) override;
  void OnIncrementalAccess(FunctorId functor) override;
  bool AbolishTableCall(Machine* machine, Word goal) override;
  TableState GetTableState(Machine* machine, Word goal) override;

  // TableUpdateListener: an incremental predicate gained or lost clauses.
  void OnIncrementalUpdate(FunctorId functor) override;
  // A predicate became incremental after tables may have been built over it:
  // no dependency entries exist, so every completed table is conservatively
  // invalidated (or, in baseline mode, the table space abolished).
  void OnIncrementalDeclaration(FunctorId functor) override;

 private:
  struct Batch {
    uint64_t id;
    std::vector<SubgoalId> subgoals;
    std::vector<Consumer> consumers;
    std::vector<SubgoalId> generator_queue;
    SubgoalId stop_on_answer = kNoSubgoal;
    bool aborted = false;
  };

  // Runs `root` (a fresh subgoal for `goal`) to completion in a new batch.
  // With `existential`, stops at the root's first answer and disposes the
  // batch's tables. *has_answer reports whether the root derived an answer.
  // Caller owns shards covering `functor` (owned_shards_); may return the
  // internal kRetryEvaluation status, after which the batch's tables are
  // already disposed and the caller restarts under the full mask.
  Status EvaluateToCompletion(Word goal, FunctorId functor, bool existential,
                              bool* has_answer, SubgoalId* root_out);

  Status RunBatchLoop(size_t batch_index);
  Status RunGeneratorEpisode(SubgoalId id);
  Status ResumeConsumer(SubgoalId owner, FlatTerm saved,
                        const FlatTerm& answer);

  // Lock-free warm-path attempt for a top-level tabled call: serve `goal`
  // from a published complete+valid table. Returns true and pushes the
  // answer choice point on success.
  bool TryServeWarm(Machine* machine, Word goal, const GoalNode* cont);

  // Builds '$consumer'(Goal, [G1, ..., Gk]) for the continuation chain.
  Word BuildConsumerTerm(Word goal, const GoalNode* cont);

  // The subgoal whose generator/consumer code is currently running, or
  // kNoSubgoal outside tabled evaluation. Dependency edges captured during
  // evaluation are attributed to it.
  SubgoalId CurrentSubgoal() const {
    return eval_stack_.empty() ? kNoSubgoal : eval_stack_.back();
  }

  // Registers a fresh subgoal with the analyzer's static dependency seeds.
  void SeedSubgoalDeps(SubgoalId id, FunctorId functor);

#ifdef XSB_MODE_ORACLE
  // Sanitizer-build soundness oracle: every subgoal records the success
  // modes the analysis published for its predicate (plus the clause epoch
  // they were computed at); every answer is then asserted against them.
  // An epoch mismatch (runtime assertz after the analysis) downgrades the
  // modes to untrusted hints and skips the assert.
  struct ModeExpectation {
    uint64_t epoch = 0;
    std::vector<uint8_t> success;  // kMode* bytes; empty = proven to fail
    bool has_modes = false;
  };
  void RecordModeExpectation(SubgoalId id, FunctorId functor);
  void CheckAnswerModes(SubgoalId id, Word call_instance);
  std::unordered_map<SubgoalId, ModeExpectation> mode_expectations_;
#endif

  // Applies a deferred full abolish (baseline mode) once no batch is live.
  void ApplyPendingAbolish();

  // --- Shard ownership (see the class comment) -------------------------------

  // The shards to acquire before evaluating `functor` cold: its published
  // reach mask plus its own shard bit; kAllEvalShards when the analyzer
  // never assigned it a shard.
  ShardMask ReachMask(FunctorId functor) const;
  // Goal-aware refinement used by top-level cold calls: consults the mode
  // analysis's per-call-pattern reach masks (and, for a bound first
  // argument, the predicate's first-arg key masks) to acquire fewer shards
  // than the functor-level mask. Every returned mask includes the
  // predicate's own shard bit; all refinements are hints — staleness is
  // repaired by the in-batch escalation / coarse fallback. Also counts a
  // runtime mode violation when the actual goal is less bound than the
  // analysis's site join says every call site is.
  ShardMask ReachMask(FunctorId functor, Word goal) const;
  // Ensures the running batch owns shards covering `functor`, widening
  // owned_shards_ via a non-blocking TryAcquireShards when it does not.
  // Returns the internal kRetryEvaluation status if the widening loses the
  // race; the batch then unwinds and restarts coarse.
  Status EnsureOwnedForCall(FunctorId functor);

  // The predicate's answer-subsumption declaration, or nullptr for plain
  // tabling; passed to TableSpace::LookupOrCreate at table creation.
  const TableSpec* SpecFor(FunctorId functor) const;

  Machine* machine_;
  std::unique_ptr<TableSpace> owned_tables_;  // null in shared mode
  TableSpace* tables_;
  bool early_completion_;
  bool incremental_;
  bool listener_registered_;
  std::vector<Batch> batches_;
  // Evaluation shards this session currently holds. Nonzero exactly while a
  // top-level cold evaluation (and its nested batches) runs; the session is
  // single-threaded, so no synchronization is needed on the member itself.
  ShardMask owned_shards_ = 0;
  // Subgoals whose evaluation frames are active, innermost last.
  std::vector<SubgoalId> eval_stack_;
  bool pending_full_abolish_ = false;
  EvalStats stats_;

  FunctorId f_resolve_clauses_, f_tabled_answer_, f_consumer_;
};

}  // namespace xsb

#endif  // XSB_TABLING_EVALUATOR_H_
