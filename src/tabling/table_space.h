#ifndef XSB_TABLING_TABLE_SPACE_H_
#define XSB_TABLING_TABLE_SPACE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/concurrent.h"
#include "db/program.h"
#include "db/token_trie.h"
#include "engine/answer_source.h"
#include "tabling/call_trie.h"
#include "tabling/epoch.h"
#include "term/flat.h"
#include "term/intern.h"
#include "term/store.h"

namespace xsb {

using SubgoalId = uint32_t;
inline constexpr SubgoalId kNoSubgoal = 0xffffffffu;

enum class SubgoalState : uint8_t {
  kIncomplete,  // generator/consumers still at work
  kComplete,    // fixpoint reached; answers are final
  kDisposed,    // deleted by tcut / existential negation
};

// Outcome of inserting one answer instance. For plain tables only the first
// two occur; answer-subsumption tables (`:- table p(_, min)`) additionally
// drop lattice-subsumed answers and replace subsumed existing ones.
enum class AnswerInsert : uint8_t {
  kNew,             // stored; consumers must be woken
  kDuplicate,       // variant of a stored answer; ignored
  kSubsumedDropped, // an existing answer is at least as good; dropped
  kReplaced,        // stored, and the beaten answer was retired in place —
                    // consumers must be woken exactly like for kNew
  kBadAggregate,    // min/max position not bound to an integer (type error)
};

// Discrimination trie over answers: the answer-clause index of section 4.5,
// grown into the *primary* answer store with XSB's substitution factoring.
// An answer of subgoal `path(1,Y)` is not stored as the full instance
// `path(1,5)` — only the *bindings of the call's variables* (here `Y = 5`)
// enter the trie, as a token stream over the shared InternTable (ground
// compound bindings collapse to kInterned cells). The call itself is kept
// once as the answer template; one downward walk both checks and inserts an
// answer, and read-back either returns the raw binding stream (ReadBindings,
// the factored consumer path) or splices the segments back into the template
// (ReadAnswer, for callers that need the full instance).
//
// Concurrency: Insert runs only from the evaluation batch that owns the
// subgoal's shard (answers are only added to incomplete tables, and shard
// ownership makes the owning batch the table's single mutator). The
// read-back paths use thread-local scratch and only acquire-loads of the
// append-only trie, so any number of threads can enumerate a completed (or
// retired) table lock-free.
class AnswerTrie {
 public:
  // `call_template` is the canonical (flattened) call; it is owned by the
  // trie so retired tables stay readable after their subgoal is gone.
  AnswerTrie(InternTable* interns, FlatTerm call_template)
      : interns_(interns), template_(std::move(call_template)) {}

  // Factors the heap term `instance` — an instance of the call template —
  // into its binding stream and inserts it. Returns true if the answer was
  // new; then *saved_cells (may be null) is the number of flat cells that
  // factoring avoided storing versus the full instance. *index (may be null)
  // receives the answer's insertion-order index, new or existing.
  bool Insert(const TermStore& store, Word instance, size_t* saved_cells,
              size_t* index = nullptr);

  size_t size() const {
    return num_answers_.load(std::memory_order_acquire);
  }

  // Per-answer retirement (answer subsumption): a beaten answer is flagged,
  // not unlinked — indices stay stable and open cursors can still read it,
  // they just skip it as dead. Flag writes come only from the table's single
  // mutator; readers acquire-load.
  void RetireLeaf(size_t i) {
    leaves_[i].retired.store(1, std::memory_order_release);
  }
  bool leaf_live(size_t i) const {
    return leaves_[i].retired.load(std::memory_order_acquire) == 0;
  }

  // Reconstructs full answer `i` (insertion order) by splicing its binding
  // segments into the call template, reusing out's buffers.
  void ReadAnswer(size_t i, FlatTerm* out) const;

  // Reads answer `i` as its raw binding stream: the flattened bindings of
  // the template's variables, concatenated in ordinal order.
  void ReadBindings(size_t i, FlatTerm* out) const;

  const FlatTerm& call_template() const { return template_; }

  size_t node_count() const { return trie_.node_count(); }
  size_t bytes() const;

 private:
  struct Leaf {
    Leaf(TokenTrie::NodeId node_in, uint32_t num_vars_in)
        : node(node_in), num_vars(num_vars_in) {}
    TokenTrie::NodeId node;
    uint32_t num_vars;  // variables in the binding stream
    // Answer subsumption: set once (by the single mutator) when a better
    // answer replaces this one. Never cleared.
    std::atomic<uint8_t> retired{0};
  };

  // Per-thread read-back scratch: concurrent enumerators of one completed
  // table must not share buffers.
  struct ReadScratch {
    std::vector<Word> path;
    std::vector<Word> expand;
    std::vector<size_t> seg;
  };
  static ReadScratch& Scratch();

  // Expands leaf `i`'s root-to-leaf token path into flat cells.
  void ExpandLeaf(size_t i, std::vector<Word>* out) const;

  InternTable* interns_;
  FlatTerm template_;
  TokenTrie trie_;
  ConcurrentArena<Leaf> leaves_;  // answers in insertion order
  // Published answer count: released after the leaf is fully linked, so a
  // reader that observes size() >= k can read answers [0, k) lock-free.
  std::atomic<size_t> num_answers_{0};
  // Insert scratch (single mutator: the batch owning the subgoal's shard).
  std::vector<Word> bindings_scratch_;
  std::vector<uint64_t> var_scratch_;
  std::vector<Word> walk_scratch_;
  std::vector<Word> encode_scratch_;
  std::vector<size_t> seg_scratch_;
};

// The answers of one tabled subgoal. The trie store (default) keeps answers
// only as factored binding paths; the hash store (kept for the ablation
// bench) keeps a materialized vector plus a hash set of full instances,
// which stores every answer's cells twice.
class AnswerTable : public AnswerSource {
 public:
  // `spec` (copied) enables answer subsumption when it has an aggregated
  // argument; the default spec is plain tabling.
  AnswerTable(bool use_trie, InternTable* interns, FlatTerm call_template,
              TableSpec spec = TableSpec())
      : use_trie_(use_trie),
        spec_(std::move(spec)),
        trie_(interns, std::move(call_template)) {}

  // Inserts the answer instance; see AnswerInsert for the outcomes.
  // *saved_cells as in AnswerTrie::Insert (0 in hash mode). For subsumptive
  // tables the lattice decision happens here, on the insert hot path: the
  // per-key aggregate index is consulted before any trie walk, so subsumed
  // answers are dropped without touching the trie, and a replacement
  // appends its leaf first and only then retires the beaten one (cursors at
  // the old answer stay sound; the count grows so suspended consumers wake).
  AnswerInsert Insert(const TermStore& store, Word instance,
                      size_t* saved_cells);

  // AnswerSource: enumeration in insertion order, stable under growth.
  size_t size() const override {
    return use_trie_ ? trie_.size() : answers_.size();
  }
  void ReadAnswer(size_t i, FlatTerm* out) const override;

  // AnswerSource: false for answers retired by a subsuming replacement.
  // Indices stay readable either way; enumerators skip dead ones.
  bool live(size_t i) const override {
    if (!spec_.subsumptive()) return true;
    return use_trie_ ? trie_.leaf_live(i) : dead_[i] == 0;
  }
  // Answers not beaten by a replacement. Relaxed: the count is a statistic
  // (table_stats/2), not a synchronization point.
  size_t live_size() const {
    return size() - num_retired_.load(std::memory_order_relaxed);
  }

  // Factored enumeration (trie mode only; null template in hash mode makes
  // callers fall back to ReadAnswer).
  const FlatTerm* answer_template() const override {
    return use_trie_ ? &trie_.call_template() : nullptr;
  }
  void ReadBindings(size_t i, FlatTerm* out) const override;

  bool empty() const { return size() == 0; }

  const TableSpec& spec() const { return spec_; }

  size_t trie_nodes() const { return use_trie_ ? trie_.node_count() : 0; }
  size_t bytes() const;

 private:
  // Lattice bookkeeping per aggregate key (the flattened non-aggregated
  // arguments): current best value + its live answer index for min/max,
  // kept-answer count for first(N).
  struct AggEntry {
    int64_t best = 0;
    size_t live_index = 0;
    int64_t count = 0;
  };

  AnswerInsert InsertSubsumptive(const TermStore& store, Word instance,
                                 size_t* saved_cells);
  // Plain store shared by both paths: trie or hash-mode vector.
  bool StoreAnswer(const TermStore& store, Word instance, size_t* saved_cells,
                   size_t* index);
  void RetireAnswerAt(size_t i);

  bool use_trie_;
  TableSpec spec_;
  AnswerTrie trie_;
  std::vector<FlatTerm> answers_;  // hash mode only
  std::unordered_set<FlatTerm, FlatTermHash> hash_index_;
  std::vector<uint8_t> dead_;  // hash mode: parallels answers_
  std::atomic<size_t> num_retired_{0};
  std::unordered_map<FlatTerm, AggEntry, FlatTermHash> agg_index_;
  // Key-building scratch (single mutator, like the trie's insert scratch).
  FlatTerm key_scratch_;
  std::vector<uint64_t> key_vars_;
};

// A suspended consumer: the copied (call, continuation) pair plus a cursor
// into the producer's answer list. This is the copying (CAT-style)
// realization of the SLG-WAM's frozen consumer choice points. `owner` is the
// subgoal whose generator episode suspended here — resumptions run in its
// context so dependency edges they capture are attributed correctly.
struct Consumer {
  SubgoalId producer;
  SubgoalId owner = kNoSubgoal;
  FlatTerm saved;  // '$consumer'(CallTerm, [Goal1, ..., GoalK])
  size_t next_answer = 0;
};

// One tabled subgoal: canonical call (the answer template), state, answers,
// and its place in the incremental dependency graph.
//
// Publication protocol (the shared-table invariant): `state` is stored with
// release semantics on every transition, and the answer-table pointer is
// swapped only *after* the state has left kComplete. A lock-free reader
// therefore revalidates in this order — state == kComplete (acquire), load
// `answers` (acquire), re-check state/invalid — and either serves a table
// that is still the published complete snapshot, or falls back to the
// locked path. A reader that races an invalidation and serves the old
// snapshot linearizes before the update; the snapshot itself stays readable
// via epoch-deferred reclamation.
struct Subgoal {
  FlatTerm call;
  // Leaf of this subgoal's path in the call trie (the variant index).
  TokenTrie::NodeId call_leaf = TokenTrie::kNilNode;
  FunctorId functor = 0;
  // Answer-subsumption spec captured from the predicate at table creation;
  // re-evaluation and retirement rebuild answer tables with the same spec.
  TableSpec spec;
  std::atomic<SubgoalState> state{SubgoalState::kIncomplete};
  // Evaluation batch that created it. Written under the structure mutex at
  // creation; read by the owning batch and by same-thread reentrancy checks.
  uint64_t batch_id = 0;
  std::atomic<AnswerTable*> answers{nullptr};
  // Incremental maintenance: a completed table whose support changed is
  // marked invalid and lazily re-evaluated on its next call.
  std::atomic<bool> invalid{false};
  // Subgoals that consumed this table's answers (reverse call edges captured
  // during SLG evaluation); invalidation propagates along these. Guarded by
  // the structure mutex.
  std::vector<SubgoalId> dependents;

  Subgoal() = default;
  Subgoal(const Subgoal&) = delete;
  Subgoal& operator=(const Subgoal&) = delete;
  ~Subgoal() { delete answers.load(std::memory_order_relaxed); }

  bool ground_call() const { return call.ground(); }
  AnswerTable* table() const {
    return answers.load(std::memory_order_acquire);
  }
  SubgoalState state_acquire() const {
    return state.load(std::memory_order_acquire);
  }
  bool invalid_acquire() const {
    return invalid.load(std::memory_order_acquire);
  }
};

// Evaluation counters. All fields are relaxed atomics: each counter is an
// independent monotonic event count — increments from concurrent threads
// interleave without synchronizing anything else, and a read observes some
// recent value of each counter individually (no cross-counter snapshot is
// implied). That is exactly the documented contract of table_stats/2 and
// the service counters.
struct TableStats {
  std::atomic<uint64_t> subgoals_created{0};
  std::atomic<uint64_t> subgoals_disposed{0};
  std::atomic<uint64_t> answers_inserted{0};
  std::atomic<uint64_t> duplicate_answers{0};
  // Answer subsumption (`:- table p(_, min)`): answers dropped because an
  // existing one was at least as good / answers stored by beating (and
  // retiring) an existing one.
  std::atomic<uint64_t> subsumed_dropped{0};
  std::atomic<uint64_t> subsumed_replaced{0};
  std::atomic<uint64_t> consumer_suspensions{0};
  std::atomic<uint64_t> consumer_resumptions{0};
  std::atomic<uint64_t> tables_invalidated{0};
  std::atomic<uint64_t> tables_reevaluated{0};
  // Flat cells substitution factoring avoided storing (fresh answers only):
  // full-instance size minus binding-stream size, summed.
  std::atomic<uint64_t> factored_cells_saved{0};
  // Shared-serving counters (relaxed; see struct comment).
  std::atomic<uint64_t> shared_table_hits{0};    // lock-free warm serves
  std::atomic<uint64_t> waits_on_inprogress{0};  // blocked on another batch
  std::atomic<uint64_t> epochs_retired{0};       // retired tables reclaimed
  // Parallel-evaluation counters (relaxed; see struct comment).
  std::atomic<uint64_t> parallel_batches{0};     // batches run on a proper
                                                 // shard subset (not coarse)
  std::atomic<uint64_t> shard_escalations{0};    // in-batch TryAcquireShards
                                                 // widenings that succeeded
  std::atomic<uint64_t> coarse_fallbacks{0};     // batches restarted under
                                                 // the all-shards coarse lock
  // Top-level tabled calls less bound than the mode analysis's site join
  // (a runtime call pattern the static analysis never predicted).
  std::atomic<uint64_t> mode_violations{0};
};

// The table space (section 3.2): call trie for variant-based subgoal
// indexing plus per-subgoal factored answer tables. Owns the engine-wide
// ground-term intern store. A call is checked/inserted in one walk over the
// live heap term — the hit path materializes nothing.
//
// Threading model (see DESIGN.md "Threading model" for the full treatment):
//   * The space is partitioned into kNumEvalShards *evaluation shards*
//     (shard = call-graph SCC index mod kNumEvalShards, published by the
//     analyzer onto Predicate). An evaluation batch acquires its root
//     call's whole static reach mask up front (AcquireShards, all-or-
//     nothing) and is then the exclusive evaluator of every subgoal in
//     those shards: batches over call-graph-independent tabled subgoals
//     own disjoint masks and run concurrently. A mid-batch call outside
//     the owned mask (stale mask after assertz) tries a non-blocking
//     widening (TryAcquireShards); if that fails the batch unwinds and
//     restarts under kAllEvalShards — the documented coarse fallback, and
//     the reason shard acquisition never deadlocks: blocking waits happen
//     only while holding nothing.
//   * Shared bookkeeping that is not per-shard — the call trie and subgoal
//     arena (insertion), the dependency graph, invalidation sweeps, global
//     stat walks — is serialized by the short-hold *structure mutex*;
//     per-answer work never touches it.
//   * Completed tables are published by a release store of the subgoal
//     state; thereafter any thread enumerates them lock-free (Lookup +
//     revalidation, see Subgoal). Concurrent variant callers of an
//     in-progress table WaitUntilComplete instead of duplicating work.
//   * Retiring a published table (Dispose, Clear, ResetForReevaluation)
//     never frees it in place: it is stamped with the current epoch and
//     parked; ReleaseRetiredAnswers frees only stamps every serving thread
//     has provably passed (EpochManager). The single-threaded engine has no
//     epoch slots, so there it degenerates to the old free-between-queries
//     behavior.
class TableSpace {
 public:
  explicit TableSpace(const SymbolTable* symbols, bool answer_trie = true,
                      bool shared = false)
      : answer_trie_(answer_trie),
        shared_(shared),
        interns_(symbols),
        call_trie_(&interns_) {}

  // Variant lookup straight from the heap term `goal`. Returns
  // {id, created}; on creation the new subgoal's canonical call (answer
  // template) is decoded from the walk's token stream. Takes the structure
  // mutex internally (trie insert + subgoal init + payload publish are one
  // critical section); the caller's batch must own `functor`'s shard, which
  // makes it the only possible creator/evaluator of this variant.
  // `spec` (optional) is the predicate's answer-subsumption declaration; it
  // is copied onto the subgoal at creation and ignored on a lookup hit.
  std::pair<SubgoalId, bool> LookupOrCreate(const TermStore& store, Word goal,
                                            FunctorId functor,
                                            uint64_t batch_id,
                                            const TableSpec* spec = nullptr);
  // Lookup without creating; kNoSubgoal if absent. Never mutates the trie
  // or the intern store; lock-free. Under concurrency a kNoSubgoal result
  // is advisory (the variant may have been inserted concurrently) — the
  // locked path re-checks.
  SubgoalId Lookup(const TermStore& store, Word goal) const;

  Subgoal& subgoal(SubgoalId id) { return subgoals_[id]; }
  const Subgoal& subgoal(SubgoalId id) const { return subgoals_[id]; }

  // Inserts the answer instance (a heap instance of `id`'s call) after
  // factoring out the call's ground skeleton; see AnswerInsert for the
  // outcomes (kNew/kReplaced mean "stored — wake consumers"). Caller:
  // the batch owning `id`'s shard — the table's single mutator.
  AnswerInsert AddAnswer(SubgoalId id, const TermStore& store, Word instance);

  // Removes the subgoal from the call index and drops its answers (tcut /
  // existential negation, abolish_table_call/1). The id remains valid but
  // disposed. The answer table is retired, not destroyed, so open cursors
  // keep enumerating their frozen snapshot. Caller owns `id`'s shard.
  void Dispose(SubgoalId id);

  // Drops every table (abolish_all_tables/0). The intern store survives: it
  // is a cache of ground structure, not per-table state. Answer tables are
  // retired (see Dispose) until ReleaseRetiredAnswers(). In shared mode the
  // call trie and subgoal arena are kept (concurrent readers may hold
  // indices into them) and every live subgoal is disposed instead;
  // non-shared mode truly clears. Caller owns all shards.
  void Clear();

  // --- Incremental dependency graph ----------------------------------------

  // Records that `caller` consumed answers of `callee` (an SLG call edge).
  void AddDependent(SubgoalId callee, SubgoalId caller);

  // Records that subgoal `reader` resolved clauses of incremental dynamic
  // predicate `pred` (directly, or via the analyzer's static seeding).
  void AddPredReader(FunctorId pred, SubgoalId reader);

  // An update hit `pred`: marks every completed table that (transitively)
  // read it invalid. Returns the number of tables newly invalidated.
  size_t InvalidateForPredicate(FunctorId pred);

  // Marks every completed table invalid (a predicate became incremental
  // after tables were built: no dependency entries exist for it, so every
  // table is conservatively suspect). Returns the number newly invalidated.
  size_t InvalidateAll();

  // True when `id` is a completed table marked invalid: its next call must
  // re-evaluate instead of reusing the stale answers.
  bool NeedsReevaluation(SubgoalId id) const {
    const Subgoal& sg = subgoals_[id];
    return sg.state_acquire() == SubgoalState::kComplete &&
           sg.invalid_acquire();
  }

  // Reopens an invalid table for re-evaluation in `batch_id`: the old answer
  // table is retired (open cursors keep their frozen snapshot) and a fresh
  // one installed. The variant index entry is reused, so dependency edges
  // pointing at this subgoal survive re-evaluation. Caller owns `id`'s
  // shard.
  void ResetForReevaluation(SubgoalId id, uint64_t batch_id);

  // Frees retired answer tables whose epoch stamp every serving thread has
  // passed. With no active epoch slots (the single-threaded engine) that is
  // all of them — the engine calls this between top-level queries.
  void ReleaseRetiredAnswers();
  size_t num_retired_answers() const;

  size_t num_subgoals() const { return subgoals_.size(); }

  InternTable& interns() { return interns_; }
  const InternTable& interns() const { return interns_; }

  const CallTrie& call_trie() const { return call_trie_; }

  bool shared() const { return shared_; }

  // --- Shard ownership protocol ---------------------------------------------

  // Blocking all-or-nothing acquisition of every shard in `mask`: parks on
  // the scheduler condvar until the whole mask is free, then claims it in
  // one step. Deadlock-freedom rule: a thread calls this only while holding
  // *no* shards (batch start, or coarse-fallback restart after releasing),
  // so circular hold-and-wait is impossible by construction.
  void AcquireShards(ShardMask mask);
  // Non-blocking widening for a batch that already holds shards and hits a
  // call outside its mask (stale reach mask after assertz). Claims `mask`
  // iff every requested-but-unowned shard is free; on failure the caller
  // must unwind to its batch boundary and restart coarse.
  bool TryAcquireShards(ShardMask mask);
  void ReleaseShards(ShardMask mask);
  // Shards currently held by some batch (diagnostic/test snapshot).
  ShardMask BusyShards() const;

  // Globally unique evaluation-batch ids across all sessions of this space.
  uint64_t NextBatchId() {
    return next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Blocks until `id` leaves kIncomplete (first-caller-computes: concurrent
  // variant callers park here instead of duplicating the evaluation). Must
  // NOT be called while holding the evaluation lock.
  void WaitUntilComplete(SubgoalId id);
  // Wakes WaitUntilComplete parkers; called after state transitions out of
  // kIncomplete (batch completion, disposal).
  void NotifyCompletion();

  EpochManager& epochs() { return epochs_; }

  // --- Schedule-perturbation test hook ---------------------------------------

  // Invoked (when set) at every lock acquisition / wait / publication point,
  // named by a stable string. The parallel stress tests install a seeded
  // randomized yield/sleep here to widen the explored interleaving space;
  // production leaves it null (one relaxed load on each hot-path call).
  using SchedulePerturbFn = void (*)(const char* point);
  static void SetSchedulePerturb(SchedulePerturbFn fn) {
    perturb_hook_.store(fn, std::memory_order_release);
  }
  static void Perturb(const char* point) {
    SchedulePerturbFn fn = perturb_hook_.load(std::memory_order_acquire);
    if (fn != nullptr) fn(point);
  }

  // Aggregates over all live tables (the table_stats/2 builtin). Each walk
  // takes the structure mutex so it never races subgoal initialization.
  size_t total_answers() const;
  size_t total_trie_nodes() const;  // answer-trie nodes
  size_t call_trie_nodes() const { return call_trie_.node_count(); }
  // Resident table-space bytes: answer tables (live and retired), the call
  // trie, subgoal metadata, and the intern store. Caller must hold every
  // shard (the intern/retired byte walks are not concurrency-safe).
  size_t table_bytes() const;

  TableStats& stats() { return stats_; }
  const TableStats& stats() const { return stats_; }

 private:
  // Retires `id`'s current answer table (epoch-stamped limbo) and installs
  // a fresh empty one. Caller has already moved `state` out of kComplete.
  void RetireAnswers(Subgoal& sg);

  bool answer_trie_;
  bool shared_;
  InternTable interns_;
  CallTrie call_trie_;
  ConcurrentArena<Subgoal, 7> subgoals_;
  // Incremental predicate -> tables that read its clauses. Structure mutex.
  std::unordered_map<FunctorId, std::unordered_set<SubgoalId>> pred_readers_;

  // Answer tables detached by Dispose/Clear/ResetForReevaluation but kept
  // alive for still-open cursors and lock-free readers (freeze semantics),
  // each stamped with the epoch in which it was unlinked.
  struct Retired {
    std::unique_ptr<AnswerTable> table;
    uint64_t stamp;
  };
  mutable std::mutex retired_mutex_;
  std::vector<Retired> retired_answers_;
  EpochManager epochs_;

  // Shard scheduler: which evaluation shards are held by some batch.
  // Guarded by sched_mutex_; AcquireShards parks on sched_cv_.
  mutable std::mutex sched_mutex_;
  std::condition_variable sched_cv_;
  ShardMask shards_busy_ = 0;

  // Serializes cross-shard structural bookkeeping: call-trie insertion and
  // subgoal initialization, the dependency graph (dependents/pred_readers_),
  // invalidation sweeps, and whole-space stat walks. Never held while
  // blocking; below sched_mutex_ in the lock hierarchy (the two are never
  // held together).
  mutable std::mutex structure_mutex_;

  // Completion parking for waits-on-in-progress.
  std::mutex completion_mutex_;
  std::condition_variable completion_cv_;

  static std::atomic<SchedulePerturbFn> perturb_hook_;

  std::atomic<uint64_t> next_batch_id_{1};
  TableStats stats_;
};

// RAII shard lease: acquires `mask` blocking in the constructor, releases in
// the destructor. For whole-space operations and tests; the evaluator's
// batch loop manages its masks manually (it widens and restarts).
class ShardLease {
 public:
  ShardLease(TableSpace* tables, ShardMask mask)
      : tables_(tables), mask_(mask) {
    tables_->AcquireShards(mask_);
  }
  ~ShardLease() { tables_->ReleaseShards(mask_); }
  ShardLease(const ShardLease&) = delete;
  ShardLease& operator=(const ShardLease&) = delete;

 private:
  TableSpace* tables_;
  ShardMask mask_;
};

}  // namespace xsb

#endif  // XSB_TABLING_TABLE_SPACE_H_
