#ifndef XSB_TABLING_TABLE_SPACE_H_
#define XSB_TABLING_TABLE_SPACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/token_trie.h"
#include "engine/answer_source.h"
#include "term/flat.h"
#include "term/intern.h"

namespace xsb {

using SubgoalId = uint32_t;
inline constexpr SubgoalId kNoSubgoal = 0xffffffffu;

enum class SubgoalState {
  kIncomplete,  // generator/consumers still at work
  kComplete,    // fixpoint reached; answers are final
  kDisposed,    // deleted by tcut / existential negation
};

// Discrimination trie over answers: the answer-clause index of section 4.5,
// here grown into the *primary* answer store. Answers are stored as token
// streams (ground compound subterms collapsed to kInterned cells by the
// shared InternTable), so one downward walk both checks and inserts, and
// common prefixes — plus every repeated ground subterm engine-wide — are
// stored once. Each answer's leaf is kept in insertion order, and answers
// are read back by walking leaf-to-root parent pointers: enumeration works
// directly off the trie with no materialized per-answer copies.
class AnswerTrie {
 public:
  explicit AnswerTrie(InternTable* interns) : interns_(interns) {}

  // Returns true if the answer was new.
  bool Insert(const FlatTerm& answer);

  size_t size() const { return leaves_.size(); }

  // Reconstructs answer `i` (insertion order) from its trie path, reusing
  // out's buffers.
  void ReadAnswer(size_t i, FlatTerm* out) const;

  size_t node_count() const { return trie_.node_count(); }
  size_t bytes() const;

 private:
  struct Leaf {
    const TokenTrie::Node* node;
    uint32_t num_vars;
  };

  InternTable* interns_;
  TokenTrie trie_;
  std::vector<Leaf> leaves_;  // answers in insertion order
  std::vector<Word> encode_scratch_;
  mutable std::vector<Word> path_scratch_;
};

// The answers of one tabled subgoal. The trie store (default) keeps answers
// only as interned trie paths; the hash store (kept for the ablation bench)
// keeps a materialized vector plus a hash set, which stores every answer's
// cells twice.
class AnswerTable : public AnswerSource {
 public:
  AnswerTable(bool use_trie, InternTable* interns)
      : use_trie_(use_trie), trie_(interns) {}

  // Returns true (and stores) if `answer` was not already present.
  bool Insert(FlatTerm answer);

  // AnswerSource: enumeration in insertion order, stable under growth.
  size_t size() const override {
    return use_trie_ ? trie_.size() : answers_.size();
  }
  void ReadAnswer(size_t i, FlatTerm* out) const override;

  bool empty() const { return size() == 0; }

  size_t trie_nodes() const { return use_trie_ ? trie_.node_count() : 0; }
  size_t bytes() const;

 private:
  bool use_trie_;
  AnswerTrie trie_;
  std::vector<FlatTerm> answers_;  // hash mode only
  std::unordered_set<FlatTerm, FlatTermHash> hash_index_;
};

// A suspended consumer: the copied (call, continuation) pair plus a cursor
// into the producer's answer list. This is the copying (CAT-style)
// realization of the SLG-WAM's frozen consumer choice points. `owner` is the
// subgoal whose generator episode suspended here — resumptions run in its
// context so dependency edges they capture are attributed correctly.
struct Consumer {
  SubgoalId producer;
  SubgoalId owner = kNoSubgoal;
  FlatTerm saved;  // '$consumer'(CallTerm, [Goal1, ..., GoalK])
  size_t next_answer = 0;
};

// One tabled subgoal: canonical call, state, answers, and its place in the
// incremental dependency graph.
struct Subgoal {
  FlatTerm call;
  FlatTerm call_key;  // interned token stream; the variant-index key
  FunctorId functor = 0;
  SubgoalState state = SubgoalState::kIncomplete;
  uint64_t batch_id = 0;  // evaluation batch that created it
  std::unique_ptr<AnswerTable> answers;
  // Incremental maintenance: a completed table whose support changed is
  // marked invalid and lazily re-evaluated on its next call.
  bool invalid = false;
  // Subgoals that consumed this table's answers (reverse call edges captured
  // during SLG evaluation); invalidation propagates along these.
  std::vector<SubgoalId> dependents;

  bool ground_call() const { return call.ground(); }
};

struct TableStats {
  uint64_t subgoals_created = 0;
  uint64_t subgoals_disposed = 0;
  uint64_t answers_inserted = 0;
  uint64_t duplicate_answers = 0;
  uint64_t consumer_suspensions = 0;
  uint64_t consumer_resumptions = 0;
  uint64_t tables_invalidated = 0;
  uint64_t tables_reevaluated = 0;
};

// The table space (section 3.2): subgoal table with variant-based call
// indexing plus per-subgoal answer tables. Owns the engine-wide ground-term
// intern store; calls are canonicalized into interned token streams before
// variant lookup, so a repeated ground call is one hash over a short key.
class TableSpace {
 public:
  explicit TableSpace(const SymbolTable* symbols, bool answer_trie = true)
      : answer_trie_(answer_trie), interns_(symbols) {}

  // Variant lookup. Returns {id, created}.
  std::pair<SubgoalId, bool> LookupOrCreate(const FlatTerm& call,
                                            FunctorId functor,
                                            uint64_t batch_id);
  // Lookup without creating; kNoSubgoal if absent.
  SubgoalId Lookup(const FlatTerm& call) const;

  Subgoal& subgoal(SubgoalId id) { return subgoals_[id]; }
  const Subgoal& subgoal(SubgoalId id) const { return subgoals_[id]; }

  // Inserts an answer; returns true if new.
  bool AddAnswer(SubgoalId id, FlatTerm answer);

  // Removes the subgoal from the call index and drops its answers (tcut /
  // existential negation, abolish_table_call/1). The id remains valid but
  // disposed. The answer table is retired, not destroyed, so open cursors
  // keep enumerating their frozen snapshot.
  void Dispose(SubgoalId id);

  // Drops every table (abolish_all_tables/0). The intern store survives: it
  // is a cache of ground structure, not per-table state. Answer tables are
  // retired (see Dispose) until ReleaseRetiredAnswers().
  void Clear();

  // --- Incremental dependency graph ----------------------------------------

  // Records that `caller` consumed answers of `callee` (an SLG call edge).
  void AddDependent(SubgoalId callee, SubgoalId caller);

  // Records that subgoal `reader` resolved clauses of incremental dynamic
  // predicate `pred` (directly, or via the analyzer's static seeding).
  void AddPredReader(FunctorId pred, SubgoalId reader);

  // An update hit `pred`: marks every completed table that (transitively)
  // read it invalid. Returns the number of tables newly invalidated.
  size_t InvalidateForPredicate(FunctorId pred);

  // Marks every completed table invalid (a predicate became incremental
  // after tables were built: no dependency entries exist for it, so every
  // table is conservatively suspect). Returns the number newly invalidated.
  size_t InvalidateAll();

  // True when `id` is a completed table marked invalid: its next call must
  // re-evaluate instead of reusing the stale answers.
  bool NeedsReevaluation(SubgoalId id) const {
    const Subgoal& sg = subgoals_[id];
    return sg.state == SubgoalState::kComplete && sg.invalid;
  }

  // Reopens an invalid table for re-evaluation in `batch_id`: the old answer
  // table is retired (open cursors keep their frozen snapshot) and a fresh
  // one installed. The variant index entry is reused, so dependency edges
  // pointing at this subgoal survive re-evaluation.
  void ResetForReevaluation(SubgoalId id, uint64_t batch_id);

  // Frees retired answer tables. Safe only when no answer cursor can still
  // be walking one — the engine calls this between top-level queries.
  void ReleaseRetiredAnswers() { retired_answers_.clear(); }
  size_t num_retired_answers() const { return retired_answers_.size(); }

  size_t num_subgoals() const { return subgoals_.size(); }

  InternTable& interns() { return interns_; }
  const InternTable& interns() const { return interns_; }

  // Aggregates over all live tables (the table_stats/2 builtin).
  size_t total_answers() const;
  size_t total_trie_nodes() const;
  // Answer-table bytes plus intern-store bytes.
  size_t table_bytes() const;

  TableStats& stats() { return stats_; }
  const TableStats& stats() const { return stats_; }

 private:
  bool answer_trie_;
  // Mutable: variant lookup interns fresh ground subterms of the probed
  // call, which only grows the hash-cons cache — logically const.
  mutable InternTable interns_;
  std::unordered_map<FlatTerm, SubgoalId, FlatTermHash> call_index_;
  std::deque<Subgoal> subgoals_;
  // Incremental predicate -> tables that read its clauses.
  std::unordered_map<FunctorId, std::unordered_set<SubgoalId>> pred_readers_;
  // Answer tables detached by Dispose/Clear/ResetForReevaluation but kept
  // alive for still-open cursors (freeze semantics).
  std::vector<std::unique_ptr<AnswerTable>> retired_answers_;
  TableStats stats_;
};

}  // namespace xsb

#endif  // XSB_TABLING_TABLE_SPACE_H_
