#ifndef XSB_TABLING_TABLE_SPACE_H_
#define XSB_TABLING_TABLE_SPACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "term/flat.h"

namespace xsb {

using SubgoalId = uint32_t;
inline constexpr SubgoalId kNoSubgoal = 0xffffffffu;

enum class SubgoalState {
  kIncomplete,  // generator/consumers still at work
  kComplete,    // fixpoint reached; answers are final
  kDisposed,    // deleted by tcut / existential negation
};

// Discrimination trie over flattened answers: the answer-clause index the
// paper describes as under development (section 4.5), provided here as an
// alternative to the hash index for the ablation bench.
class AnswerTrie {
 public:
  AnswerTrie() : root_(std::make_unique<Node>()) {}

  // Returns true if the answer was new.
  bool Insert(const FlatTerm& answer);
  size_t size() const { return count_; }

 private:
  struct Node {
    std::map<Word, std::unique_ptr<Node>> children;
    bool terminal = false;
  };
  std::unique_ptr<Node> root_;
  size_t count_ = 0;
};

// The answers of one tabled subgoal, with duplicate elimination through
// either a hash set (default) or an answer trie.
class AnswerTable {
 public:
  explicit AnswerTable(bool use_trie) : use_trie_(use_trie) {}

  // Returns true (and stores) if `answer` was not already present.
  bool Insert(FlatTerm answer);

  const std::vector<FlatTerm>& answers() const { return answers_; }
  size_t size() const { return answers_.size(); }
  bool empty() const { return answers_.empty(); }

 private:
  bool use_trie_;
  std::vector<FlatTerm> answers_;
  std::unordered_map<FlatTerm, bool, FlatTermHash> hash_index_;
  AnswerTrie trie_index_;
};

// A suspended consumer: the copied (call, continuation) pair plus a cursor
// into the producer's answer list. This is the copying (CAT-style)
// realization of the SLG-WAM's frozen consumer choice points.
struct Consumer {
  SubgoalId producer;
  FlatTerm saved;  // '$consumer'(CallTerm, [Goal1, ..., GoalK])
  size_t next_answer = 0;
};

// One tabled subgoal: canonical call, state, answers.
struct Subgoal {
  FlatTerm call;
  FunctorId functor = 0;
  SubgoalState state = SubgoalState::kIncomplete;
  uint64_t batch_id = 0;  // evaluation batch that created it
  std::unique_ptr<AnswerTable> answers;

  bool ground_call() const { return call.ground(); }
};

struct TableStats {
  uint64_t subgoals_created = 0;
  uint64_t subgoals_disposed = 0;
  uint64_t answers_inserted = 0;
  uint64_t duplicate_answers = 0;
  uint64_t consumer_suspensions = 0;
  uint64_t consumer_resumptions = 0;
};

// The table space (section 3.2): subgoal table with variant-based call
// indexing plus per-subgoal answer tables.
class TableSpace {
 public:
  explicit TableSpace(bool answer_trie = false)
      : answer_trie_(answer_trie) {}

  // Variant lookup. Returns {id, created}.
  std::pair<SubgoalId, bool> LookupOrCreate(const FlatTerm& call,
                                            FunctorId functor,
                                            uint64_t batch_id);
  // Lookup without creating; kNoSubgoal if absent.
  SubgoalId Lookup(const FlatTerm& call) const;

  Subgoal& subgoal(SubgoalId id) { return subgoals_[id]; }
  const Subgoal& subgoal(SubgoalId id) const { return subgoals_[id]; }

  // Inserts an answer; returns true if new.
  bool AddAnswer(SubgoalId id, FlatTerm answer);

  // Removes the subgoal from the call index and drops its answers (tcut /
  // existential negation). The id remains valid but disposed.
  void Dispose(SubgoalId id);

  // Drops every table (abolish_all_tables/0).
  void Clear();

  size_t num_subgoals() const { return subgoals_.size(); }
  TableStats& stats() { return stats_; }
  const TableStats& stats() const { return stats_; }

 private:
  bool answer_trie_;
  std::unordered_map<FlatTerm, SubgoalId, FlatTermHash> call_index_;
  std::deque<Subgoal> subgoals_;
  TableStats stats_;
};

}  // namespace xsb

#endif  // XSB_TABLING_TABLE_SPACE_H_
