#include "tabling/call_trie.h"

namespace xsb {

CallTrie::WalkScratch& CallTrie::Scratch() {
  static thread_local WalkScratch scratch;
  return scratch;
}

const std::vector<Word>& CallTrie::last_tokens() const {
  return Scratch().tokens;
}

uint32_t CallTrie::last_num_vars() const {
  return static_cast<uint32_t>(Scratch().var_cells.size());
}

FlatTerm CallTrie::DecodeLastCall() const {
  return interns_->Decode(Scratch().tokens);
}

bool CallTrie::EncodeHeapSubterm(const TermStore& store, Word t, bool probing,
                                 WalkScratch& scratch) const {
  Word x = store.Deref(t);
  switch (TagOf(x)) {
    case Tag::kRef: {
      uint64_t cell = PayloadOf(x);
      uint32_t ordinal = static_cast<uint32_t>(scratch.var_cells.size());
      for (uint32_t i = 0; i < scratch.var_cells.size(); ++i) {
        if (scratch.var_cells[i] == cell) {
          ordinal = i;
          break;
        }
      }
      if (ordinal == scratch.var_cells.size()) {
        scratch.var_cells.push_back(cell);
      }
      scratch.tokens.push_back(LocalCell(ordinal));
      return false;
    }
    case Tag::kAtom:
    case Tag::kInt:
      scratch.tokens.push_back(x);
      return true;
    case Tag::kStruct: {
      // Emit the functor token speculatively; every ground argument
      // collapses to exactly one token, so if the whole subterm turns out
      // ground, the args sit in tokens[mark+1 .. mark+arity] and are
      // replaced by one interned token (the heap-walking twin of
      // InternTable::EncodeSubterm).
      FunctorId f = store.StructFunctor(x);
      int arity = interns_->symbols().FunctorArity(f);
      size_t mark = scratch.tokens.size();
      scratch.tokens.push_back(FunctorCell(f));
      bool ground = true;
      for (int i = 0; i < arity; ++i) {
        ground &= EncodeHeapSubterm(store, store.Arg(x, i), probing, scratch);
        if (probing && scratch.probe_miss) return true;  // unwound by caller
      }
      if (ground) {
        Word token;
        if (probing) {
          token =
              interns_->FindNode(f, scratch.tokens.data() + mark + 1, arity);
          if (token == InternTable::kNoToken) {
            scratch.probe_miss = true;
            return true;
          }
        } else {
          token =
              interns_->InternNode(f, scratch.tokens.data() + mark + 1, arity);
        }
        scratch.tokens.resize(mark);
        scratch.tokens.push_back(token);
      }
      return ground;
    }
    default:
      scratch.tokens.push_back(x);
      return true;
  }
}

bool CallTrie::EncodeCall(const TermStore& store, Word goal, bool probing,
                          WalkScratch& scratch) const {
  scratch.tokens.clear();
  scratch.var_cells.clear();
  scratch.probe_miss = false;
  Word x = store.Deref(goal);
  if (IsStruct(x)) {
    FunctorId f = store.StructFunctor(x);
    scratch.tokens.push_back(FunctorCell(f));
    int arity = interns_->symbols().FunctorArity(f);
    for (int i = 0; i < arity; ++i) {
      EncodeHeapSubterm(store, store.Arg(x, i), probing, scratch);
      if (probing && scratch.probe_miss) return false;
    }
  } else {
    EncodeHeapSubterm(store, x, probing, scratch);
    if (probing && scratch.probe_miss) return false;
  }
  return true;
}

TokenTrie::NodeId CallTrie::LookupOrInsert(const TermStore& store, Word goal) {
  WalkScratch& scratch = Scratch();
  EncodeCall(store, goal, /*probing=*/false, scratch);
  TokenTrie::NodeId node = TokenTrie::root();
  for (Word token : scratch.tokens) {
    node = trie_.Extend(node, token, nullptr);
  }
  return node;
}

TokenTrie::NodeId CallTrie::Probe(const TermStore& store, Word goal) const {
  WalkScratch& scratch = Scratch();
  if (!EncodeCall(store, goal, /*probing=*/true, scratch)) {
    return TokenTrie::kNilNode;
  }
  TokenTrie::NodeId node = TokenTrie::root();
  for (Word token : scratch.tokens) {
    node = trie_.Find(node, token);
    if (node == TokenTrie::kNilNode) return TokenTrie::kNilNode;
  }
  return node;
}

}  // namespace xsb
