#include "tabling/call_trie.h"

namespace xsb {

bool CallTrie::EncodeHeapSubterm(const TermStore& store, Word t,
                                 bool probing) const {
  Word x = store.Deref(t);
  switch (TagOf(x)) {
    case Tag::kRef: {
      uint64_t cell = PayloadOf(x);
      uint32_t ordinal = static_cast<uint32_t>(var_cells_.size());
      for (uint32_t i = 0; i < var_cells_.size(); ++i) {
        if (var_cells_[i] == cell) {
          ordinal = i;
          break;
        }
      }
      if (ordinal == var_cells_.size()) var_cells_.push_back(cell);
      tokens_.push_back(LocalCell(ordinal));
      return false;
    }
    case Tag::kAtom:
    case Tag::kInt:
      tokens_.push_back(x);
      return true;
    case Tag::kStruct: {
      // Emit the functor token speculatively; every ground argument
      // collapses to exactly one token, so if the whole subterm turns out
      // ground, the args sit in tokens_[mark+1 .. mark+arity] and are
      // replaced by one interned token (the heap-walking twin of
      // InternTable::EncodeSubterm).
      FunctorId f = store.StructFunctor(x);
      int arity = interns_->symbols().FunctorArity(f);
      size_t mark = tokens_.size();
      tokens_.push_back(FunctorCell(f));
      bool ground = true;
      for (int i = 0; i < arity; ++i) {
        ground &= EncodeHeapSubterm(store, store.Arg(x, i), probing);
        if (probing && probe_miss_) return true;  // unwound by EncodeCall
      }
      if (ground) {
        Word token;
        if (probing) {
          token = interns_->FindNode(f, tokens_.data() + mark + 1, arity);
          if (token == InternTable::kNoToken) {
            probe_miss_ = true;
            return true;
          }
        } else {
          token = interns_->InternNode(f, tokens_.data() + mark + 1, arity);
        }
        tokens_.resize(mark);
        tokens_.push_back(token);
      }
      return ground;
    }
    default:
      tokens_.push_back(x);
      return true;
  }
}

bool CallTrie::EncodeCall(const TermStore& store, Word goal,
                          bool probing) const {
  tokens_.clear();
  var_cells_.clear();
  probe_miss_ = false;
  Word x = store.Deref(goal);
  if (IsStruct(x)) {
    FunctorId f = store.StructFunctor(x);
    tokens_.push_back(FunctorCell(f));
    int arity = interns_->symbols().FunctorArity(f);
    for (int i = 0; i < arity; ++i) {
      EncodeHeapSubterm(store, store.Arg(x, i), probing);
      if (probing && probe_miss_) return false;
    }
  } else {
    EncodeHeapSubterm(store, x, probing);
    if (probing && probe_miss_) return false;
  }
  return true;
}

TokenTrie::NodeId CallTrie::LookupOrInsert(const TermStore& store, Word goal) {
  EncodeCall(store, goal, /*probing=*/false);
  TokenTrie::NodeId node = TokenTrie::root();
  for (Word token : tokens_) {
    node = trie_.Extend(node, token, nullptr);
  }
  return node;
}

TokenTrie::NodeId CallTrie::Probe(const TermStore& store, Word goal) const {
  if (!EncodeCall(store, goal, /*probing=*/true)) return TokenTrie::kNilNode;
  TokenTrie::NodeId node = TokenTrie::root();
  for (Word token : tokens_) {
    node = trie_.Find(node, token);
    if (node == TokenTrie::kNilNode) return TokenTrie::kNilNode;
  }
  return node;
}

size_t CallTrie::bytes() const {
  return trie_.bytes() + tokens_.capacity() * sizeof(Word) +
         var_cells_.capacity() * sizeof(uint64_t);
}

void CallTrie::Clear() {
  trie_.Clear();
  tokens_.clear();
  var_cells_.clear();
}

}  // namespace xsb
