#include "tabling/evaluator.h"

#include <cstdio>
#include <cstdlib>

#include "parser/writer.h"

namespace xsb {
namespace {

// Prefers the consult-time analyzer's S001 verdict (which carries a source
// span and the offending component) over the generic runtime message. The
// runtime trigger itself is unchanged; the generic text remains the fallback
// when the analyzer never saw this predicate (runtime asserts, skipped
// analysis).
Status StratificationFailure(Machine* machine, FunctorId functor,
                             const char* fallback) {
  const std::string* reason =
      machine->program()->UnstratifiedReason(functor);
  if (reason != nullptr) return StratificationError(*reason);
  return StratificationError(fallback);
}

// Internal unwind signal: a batch hit a call outside its owned shards and
// the non-blocking widening lost the race. It propagates through the
// machine's ordinary error path (disposing the batch's partial tables on the
// way out) and is consumed by the top-level retry loop — it never reaches
// the API.
Status RetryEvaluation() {
  return Status(ErrorCode::kRetryEvaluation,
                "shard escalation contended; restarting coarse");
}

}  // namespace

Evaluator::Evaluator(Machine* machine, Options options,
                     TableSpace* shared_tables)
    : machine_(machine),
      early_completion_(options.early_completion),
      incremental_(options.incremental),
      listener_registered_(options.register_update_listener) {
  if (shared_tables != nullptr) {
    tables_ = shared_tables;
  } else {
    owned_tables_ = std::make_unique<TableSpace>(
        machine->store()->symbols(), options.answer_trie, /*shared=*/false);
    tables_ = owned_tables_.get();
  }
  SymbolTable* symbols = machine->store()->symbols();
  f_resolve_clauses_ = symbols->InternFunctor(
      symbols->InternAtom("$resolve_clauses"), 1);
  f_tabled_answer_ =
      symbols->InternFunctor(symbols->InternAtom("$tabled_answer"), 2);
  f_consumer_ = symbols->InternFunctor(symbols->InternAtom("$consumer"), 2);
  machine->set_tabled_handler(this);
  if (listener_registered_) {
    machine->program()->set_update_listener(this);
  }
}

Evaluator::~Evaluator() {
  if (listener_registered_) {
    machine_->program()->set_update_listener(nullptr);
  }
}

void Evaluator::AbolishAllTables() {
  ShardLease lease(tables_, kAllEvalShards);
  tables_->Clear();
}

ShardMask Evaluator::ReachMask(FunctorId functor) const {
  const Predicate* pred = machine_->program()->Lookup(functor);
  if (pred == nullptr || pred->eval_shard() < 0) return kAllEvalShards;
  // The self bit is OR-ed in explicitly: a predicate tabled *after* the
  // analysis ran has a shard but no tabled bit in its published mask, and
  // exclusivity requires every evaluator of `functor` to hold its shard.
  return pred->eval_reach_mask() | EvalShardBit(pred->eval_shard());
}

ShardMask Evaluator::ReachMask(FunctorId functor, Word goal) const {
  const Predicate* pred = machine_->program()->Lookup(functor);
  if (pred == nullptr || pred->eval_shard() < 0) return kAllEvalShards;
  ShardMask self = EvalShardBit(pred->eval_shard());
  TermStore* store = machine_->store();
  int arity = IsStruct(goal) ? store->StructArity(goal) : 0;

  // First-argument key masks: when every live clause keys on a constant
  // first argument, a bound first argument selects one clause group and
  // needs only that group's reach; a key-table miss means no clause can
  // match, so only the predicate's own shard is touched.
  const std::unordered_map<Word, ShardMask>* keys = pred->key_masks();
  if (keys != nullptr && arity >= 1) {
    Word a0 = store->Deref(store->Arg(goal, 0));
    if (IsAtom(a0) || IsInt(a0)) {
      auto it = keys->find(a0);
      return it == keys->end() ? self : (it->second | self);
    }
  }

  const PublishedModes* modes = pred->modes();
  if (modes == nullptr) return pred->eval_reach_mask() | self;

  // Runtime mode-violation counter: the site join is the join over every
  // call site the analysis saw, so a top-level call less bound than it is
  // a pattern the static analysis never predicted.
  if (static_cast<int>(modes->site_join.size()) == arity) {
    for (int i = 0; i < arity; ++i) {
      uint8_t m = modes->site_join[i];
      if (m == kModeAny) continue;
      Word v = store->Deref(store->Arg(goal, i));
      bool consistent = m == kModeFree     ? IsRef(v)
                        : m == kModeNonvar ? !IsRef(v)
                                           : store->IsGround(v);
      if (!consistent) {
        ++tables_->stats().mode_violations;
        break;
      }
    }
  }

  // Per-pattern reach masks: a pattern whose call modes the actual goal
  // satisfies abstracts this concrete call, so its mask upper-bounds the
  // call's reach; intersecting over all such patterns keeps the tightest.
  ShardMask best = 0;
  bool found = false;
  for (const PublishedModes::Pattern& pat : modes->patterns) {
    if (pat.reach_mask == 0 ||
        static_cast<int>(pat.call.size()) != arity) {
      continue;
    }
    bool satisfied = true;
    for (int i = 0; i < arity && satisfied; ++i) {
      uint8_t m = pat.call[i];
      if (m == kModeAny) continue;
      Word v = store->Deref(store->Arg(goal, i));
      satisfied = m == kModeFree     ? IsRef(v)
                  : m == kModeNonvar ? !IsRef(v)
                                     : store->IsGround(v);
    }
    if (!satisfied) continue;
    best = found ? (best & pat.reach_mask) : pat.reach_mask;
    found = true;
  }
  if (found) return best | self;
  return pred->eval_reach_mask() | self;
}

const TableSpec* Evaluator::SpecFor(FunctorId functor) const {
  const Predicate* pred = machine_->program()->Lookup(functor);
  return pred == nullptr ? nullptr : pred->table_spec();
}

Status Evaluator::EnsureOwnedForCall(FunctorId functor) {
  ShardMask need = ReachMask(functor) & ~owned_shards_;
  if (need == 0) return Status::Ok();
  // Already holding shards: blocking here could deadlock, so the widening
  // is try-only; contention unwinds the batch into the coarse restart.
  if (!tables_->TryAcquireShards(need)) return RetryEvaluation();
  owned_shards_ |= need;
  ++tables_->stats().shard_escalations;
  return Status::Ok();
}

#ifdef XSB_MODE_ORACLE
void Evaluator::RecordModeExpectation(SubgoalId id, FunctorId functor) {
  ModeExpectation exp;
  const Predicate* pred = machine_->program()->Lookup(functor);
  if (pred != nullptr && pred->modes() != nullptr) {
    exp.has_modes = true;
    exp.epoch = pred->modes()->epoch;
    exp.success = pred->modes()->success_join;
  }
  mode_expectations_[id] = std::move(exp);
}

void Evaluator::CheckAnswerModes(SubgoalId id, Word call_instance) {
  auto it = mode_expectations_.find(id);
  if (it == mode_expectations_.end() || !it->second.has_modes) return;
  const ModeExpectation& exp = it->second;
  // Runtime asserts since the analysis may have added clauses with more
  // general answers: the published success modes are no longer a bound on
  // the current program, so the oracle stands down for this table.
  if (exp.epoch != machine_->program()->clause_epoch()) return;
  TermStore* store = machine_->store();
  Word d = store->Deref(call_instance);
  int arity = IsStruct(d) ? store->StructArity(d) : 0;
  auto die = [&](const char* what, int argnum) {
    std::fprintf(stderr,
                 "mode oracle: answer for subgoal %lld violates proven "
                 "success mode (%s, argument %d)\n",
                 static_cast<long long>(id), what, argnum);
    std::abort();
  };
  if (exp.success.empty()) {
    // success_join is empty exactly when the analysis proved every call
    // pattern of this predicate fails — an answer refutes the analysis.
    die("predicate proven to never succeed", 0);
  }
  if (static_cast<int>(exp.success.size()) != arity) return;
  for (int i = 0; i < arity; ++i) {
    Word v = store->Deref(store->Arg(d, i));
    if (exp.success[i] == kModeGround && !store->IsGround(v)) {
      die("proven ground", i + 1);
    }
    if (exp.success[i] == kModeNonvar && IsRef(v)) {
      die("proven nonvar", i + 1);
    }
  }
}
#endif  // XSB_MODE_ORACLE

void Evaluator::SeedSubgoalDeps(SubgoalId id, FunctorId functor) {
#ifdef XSB_MODE_ORACLE
  RecordModeExpectation(id, functor);
#endif
  const std::vector<FunctorId>* seeds =
      machine_->program()->IncrementalDepsOf(functor);
  if (seeds != nullptr) {
    for (FunctorId pred : *seeds) tables_->AddPredReader(pred, id);
  }
  // Runtime-declared incremental predicates may predate any analysis run;
  // a table always depends on its own predicate's clauses.
  const Predicate* pred = machine_->program()->Lookup(functor);
  if (pred != nullptr && pred->incremental()) {
    tables_->AddPredReader(functor, id);
  }
}

void Evaluator::OnIncrementalAccess(FunctorId functor) {
  SubgoalId current = CurrentSubgoal();
  if (current != kNoSubgoal) tables_->AddPredReader(functor, current);
}

void Evaluator::OnIncrementalUpdate(FunctorId functor) {
  ++stats_.update_events;
  if (!incremental_) {
    // Baseline policy: any update to incremental data invalidates the world.
    // Deferred while a batch is live — Clear() would pull the tables out
    // from under the running evaluation.
    if (batches_.empty()) {
      ShardLease lease(tables_, kAllEvalShards);
      tables_->Clear();
    } else {
      pending_full_abolish_ = true;
    }
    return;
  }
  // Invalidation is shard-free: it takes the structure mutex and flips
  // per-subgoal atomics, so it is safe both mid-batch (assertz from inside
  // evaluation) and against other sessions' batches.
  tables_->InvalidateForPredicate(functor);
}

void Evaluator::OnIncrementalDeclaration(FunctorId /*functor*/) {
  if (tables_->num_subgoals() == 0) return;
  if (!incremental_) {
    if (batches_.empty()) {
      ShardLease lease(tables_, kAllEvalShards);
      tables_->Clear();
    } else {
      pending_full_abolish_ = true;
    }
    return;
  }
  tables_->InvalidateAll();
}

void Evaluator::ApplyPendingAbolish() {
  if (pending_full_abolish_ && batches_.empty()) {
    tables_->Clear();
    pending_full_abolish_ = false;
  }
}

Word Evaluator::BuildConsumerTerm(Word goal, const GoalNode* cont) {
  TermStore* store = machine_->store();
  std::vector<Word> goals;
  for (const GoalNode* n = cont; n != nullptr; n = n->next) {
    goals.push_back(n->goal);
  }
  Word list = store->MakeList(goals, AtomCell(store->symbols()->nil()));
  return store->MakeStruct(f_consumer_, {goal, list});
}

bool Evaluator::TryServeWarm(Machine* machine, Word goal,
                             const GoalNode* cont) {
  TermStore* store = machine->store();
  SubgoalId id = tables_->Lookup(*store, goal);  // lock-free; miss advisory
  if (id == kNoSubgoal) return false;
  const Subgoal& sg = tables_->subgoal(id);
  // Revalidation protocol (see Subgoal): state first, then the table
  // pointer, then state/invalid again. If the re-check still reads
  // complete+valid, `table` is the published complete snapshot (a racing
  // retirement would have moved `state` out of kComplete *before* swapping
  // the pointer), and epoch protection keeps it readable even if it is
  // retired after we return.
  if (sg.state_acquire() != SubgoalState::kComplete) return false;
  AnswerTable* table = sg.table();
  if (sg.state_acquire() != SubgoalState::kComplete || sg.invalid_acquire()) {
    return false;
  }
  ++tables_->stats().shared_table_hits;
  machine->PushAnswerChoices(goal, table, cont);
  return true;
}

TabledCallHandler::CallOutcome Evaluator::OnTabledCall(
    Machine* machine, Word goal, const GoalNode* cont) {
  TermStore* store = machine->store();
  std::optional<FunctorId> functor = Program::CallableFunctor(*store, goal);
  if (!functor.has_value()) {
    machine->SetError(TypeError("tabled call is not callable"));
    return CallOutcome::kError;
  }

  if (batches_.empty()) {
    // Top-level call. The warm path — table already complete and valid —
    // is fully lock-free; it is the path concurrent serving scales on.
    if (!pending_full_abolish_ && TryServeWarm(machine, goal, cont)) {
      return CallOutcome::kContinue;
    }
    if (tables_->shared()) {
      // First caller computes: if another session's batch is mid-evaluation
      // of this variant, park until it completes rather than duplicating
      // the work, then serve the published table.
      for (int spins = 0; spins < 64; ++spins) {
        SubgoalId id = tables_->Lookup(*store, goal);
        if (id == kNoSubgoal) break;
        const Subgoal& sg = tables_->subgoal(id);
        if (sg.state_acquire() != SubgoalState::kIncomplete) break;
        ++tables_->stats().waits_on_inprogress;
        tables_->WaitUntilComplete(id);
        if (TryServeWarm(machine, goal, cont)) {
          return CallOutcome::kContinue;
        }
      }
    }
    // Cold path: evaluate to completion (also when an update left the table
    // invalid) while owning the call's shard reach mask, then enumerate
    // answers. A contended mid-batch escalation unwinds back here and
    // restarts under the full mask (coarse fallback).
    for (bool coarse = false;;) {
      ShardMask mask = coarse || pending_full_abolish_
                           ? kAllEvalShards
                           : ReachMask(*functor, goal);
      tables_->AcquireShards(mask);
      owned_shards_ = mask;
      ApplyPendingAbolish();
      SubgoalId id = tables_->Lookup(*store, goal);
      Status st = Status::Ok();
      if (id == kNoSubgoal || tables_->NeedsReevaluation(id)) {
        bool has_answer = false;
        st = EvaluateToCompletion(goal, *functor, /*existential=*/false,
                                  &has_answer, &id);
      }
      if (st.ok() && owned_shards_ != kAllEvalShards) {
        ++tables_->stats().parallel_batches;
      }
      // Capture the published table pointer *before* releasing the shards:
      // once they are gone another session may dispose the subgoal and swap
      // in a fresh empty table. The captured snapshot stays enumerable —
      // epoch reclamation keeps a concurrently retired table readable.
      AnswerTable* table = st.ok() ? tables_->subgoal(id).table() : nullptr;
      tables_->ReleaseShards(owned_shards_);
      owned_shards_ = 0;
      if (st.ok()) {
        machine->PushAnswerChoices(goal, table, cont);
        return CallOutcome::kContinue;
      }
      if (st.code() == ErrorCode::kRetryEvaluation && !coarse) {
        coarse = true;
        ++tables_->stats().coarse_fallbacks;
        continue;
      }
      machine->SetError(st);
      return CallOutcome::kError;
    }
  }

  // In-batch call: widen this batch's shard ownership to cover the callee
  // before touching its tables (stale reach masks are repaired here).
  Batch& batch = batches_.back();
  Status own = EnsureOwnedForCall(*functor);
  if (!own.ok()) {
    machine->SetError(own);
    return CallOutcome::kError;
  }
  auto [id, created] =
      tables_->LookupOrCreate(*store, goal, *functor, batch.id,
                              SpecFor(*functor));
  // The consuming table depends on the consumed one: an update invalidating
  // `id` must also invalidate whoever built answers from it.
  SubgoalId caller = CurrentSubgoal();
  if (caller != kNoSubgoal) tables_->AddDependent(id, caller);
  Subgoal& sg = tables_->subgoal(id);
  if (!created) {
    if (sg.state_acquire() == SubgoalState::kComplete) {
      if (!tables_->NeedsReevaluation(id)) {
        machine->PushAnswerChoices(goal, sg.table(), cont);
        return CallOutcome::kContinue;
      }
      // Invalid table called mid-batch: reopen it as a generator of this
      // batch; the caller suspends as an ordinary consumer below.
      tables_->ResetForReevaluation(id, batch.id);
#ifdef XSB_MODE_ORACLE
      RecordModeExpectation(id, *functor);
#endif
      batch.subgoals.push_back(id);
      batch.generator_queue.push_back(id);
    } else if (sg.batch_id != batch.id) {
      machine->SetError(StratificationFailure(
          machine, *functor,
          "tabled subgoal depends on an incomplete table of an enclosing "
          "negation: the program is not modularly stratified"));
      return CallOutcome::kError;
    }
  } else {
    SeedSubgoalDeps(id, *functor);
    batch.subgoals.push_back(id);
    batch.generator_queue.push_back(id);
  }
  // Suspend the caller as a consumer; the batch loop resumes it per answer.
  Consumer consumer;
  consumer.producer = id;
  consumer.owner = caller;
  consumer.saved = Flatten(*store, BuildConsumerTerm(goal, cont));
  batch.consumers.push_back(std::move(consumer));
  ++tables_->stats().consumer_suspensions;
  return CallOutcome::kFail;
}

TabledCallHandler::CallOutcome Evaluator::OnTabledAnswer(Machine* machine,
                                                         int64_t subgoal_index,
                                                         Word call_instance) {
  TermStore* store = machine->store();
  SubgoalId id = static_cast<SubgoalId>(subgoal_index);
  AnswerInsert outcome = tables_->AddAnswer(id, *store, call_instance);
  if (outcome == AnswerInsert::kBadAggregate) {
    machine->SetError(TypeError(
        "answer subsumption: min/max argument must be an integer"));
    return CallOutcome::kError;
  }
  // A replacement is an insertion: the table grew (the beaten answer was
  // retired in place, not unlinked), so suspended consumers see it as a new
  // answer and re-fire — exactly the wake semantics of a fresh answer.
  bool fresh =
      outcome == AnswerInsert::kNew || outcome == AnswerInsert::kReplaced;
#ifdef XSB_MODE_ORACLE
  // Only answers actually stored are asserted against the published success
  // modes: lattice-dropped candidates never become answers of the predicate,
  // and answers later retired by a replacement were valid when stored.
  if (fresh) CheckAnswerModes(id, call_instance);
#endif
  if (fresh && !batches_.empty()) {
    Batch& batch = batches_.back();
    if (batch.stop_on_answer == id) {
      // Existential negation: one answer suffices; abandon the batch.
      batch.aborted = true;
      ++stats_.existential_aborts;
      machine->RequestStop();
      return CallOutcome::kFail;
    }
    Subgoal& sg = tables_->subgoal(id);
    if (early_completion_ && sg.ground_call() &&
        sg.state_acquire() == SubgoalState::kIncomplete) {
      // Early completion: a ground call has exactly this one answer.
      sg.state.store(SubgoalState::kComplete, std::memory_order_release);
      ++stats_.early_completions;
      machine->RequestStop();
    }
  }
  return CallOutcome::kFail;
}

Status Evaluator::RunGeneratorEpisode(SubgoalId id) {
  ++stats_.generator_episodes;
  TermStore* store = machine_->store();
  const Subgoal& sg = tables_->subgoal(id);
  if (sg.state_acquire() != SubgoalState::kIncomplete) return Status::Ok();

  size_t trail = store->TrailMark();
  size_t heap = store->HeapMark();
  Word call = Unflatten(store, sg.call);
  Word resolve = store->MakeStruct(f_resolve_clauses_, {call});
  Word marker = store->MakeStruct(
      f_tabled_answer_, {IntCell(static_cast<int64_t>(id)), call});
  uint32_t cut_depth = static_cast<uint32_t>(machine_->choice_point_count());
  const GoalNode* chain = machine_->Cons(
      resolve, machine_->Cons(marker, nullptr, cut_depth), cut_depth);
  eval_stack_.push_back(id);
  Status status =
      machine_->Run(chain, []() { return SolveAction::kContinue; });
  eval_stack_.pop_back();
  store->UndoTrail(trail);
  store->TruncateHeap(heap);
  return status;
}

Status Evaluator::ResumeConsumer(SubgoalId owner, FlatTerm saved,
                                 const FlatTerm& answer) {
  ++stats_.resumptions;
  ++tables_->stats().consumer_resumptions;
  TermStore* store = machine_->store();
  SymbolTable* symbols = store->symbols();
  size_t trail = store->TrailMark();
  size_t heap = store->HeapMark();

  Word pair = Unflatten(store, saved);
  Word d = store->Deref(pair);
  Word call = store->Arg(d, 0);
  Word list = store->Deref(store->Arg(d, 1));
  Word answer_term = Unflatten(store, answer);
  if (!store->Unify(call, answer_term)) {
    store->UndoTrail(trail);
    store->TruncateHeap(heap);
    return Status::Ok();  // cannot happen for variant calls; be safe
  }
  // Rebuild the continuation chain.
  std::vector<Word> goals;
  FunctorId cons = symbols->InternFunctor(symbols->dot(), 2);
  while (IsStruct(list) && store->StructFunctor(list) == cons) {
    goals.push_back(store->Arg(list, 0));
    list = store->Deref(store->Arg(list, 1));
  }
  uint32_t cut_depth = static_cast<uint32_t>(machine_->choice_point_count());
  const GoalNode* chain = nullptr;
  for (auto it = goals.rbegin(); it != goals.rend(); ++it) {
    chain = machine_->Cons(*it, chain, cut_depth);
  }
  // The continuation is part of `owner`'s clause bodies: run it in the
  // owner's dependency-capture context.
  eval_stack_.push_back(owner);
  Status status =
      machine_->Run(chain, []() { return SolveAction::kContinue; });
  eval_stack_.pop_back();
  store->UndoTrail(trail);
  store->TruncateHeap(heap);
  return status;
}

Status Evaluator::RunBatchLoop(size_t batch_index) {
  while (true) {
    if (batches_[batch_index].aborted) return Status::Ok();

    if (!batches_[batch_index].generator_queue.empty()) {
      SubgoalId next = batches_[batch_index].generator_queue.back();
      batches_[batch_index].generator_queue.pop_back();
      Status status = RunGeneratorEpisode(next);
      if (!status.ok()) return status;
      continue;
    }

    // Deliver pending answers to consumers. The consumer vector and the
    // answer vectors can both grow during a resumption, so everything is
    // re-fetched through indices.
    bool progressed = false;
    FlatTerm answer;  // scratch reused across deliveries in this pass
    for (size_t ci = 0; ci < batches_[batch_index].consumers.size(); ++ci) {
      while (true) {
        if (batches_[batch_index].aborted) return Status::Ok();
        if (!batches_[batch_index].generator_queue.empty()) break;
        Consumer& c = batches_[batch_index].consumers[ci];
        const AnswerTable* producer = tables_->subgoal(c.producer).table();
        if (c.next_answer >= producer->size()) break;
        if (!producer->live(c.next_answer)) {
          // Answer subsumption: retired (beaten) answers are not delivered —
          // the replacement that retired them sits later in the same table
          // and re-fires this consumer instead.
          ++batches_[batch_index].consumers[ci].next_answer;
          continue;
        }
        producer->ReadAnswer(c.next_answer, &answer);
        ++batches_[batch_index].consumers[ci].next_answer;
        SubgoalId owner = batches_[batch_index].consumers[ci].owner;
        FlatTerm saved = batches_[batch_index].consumers[ci].saved;
        Status status = ResumeConsumer(owner, std::move(saved), answer);
        if (!status.ok()) return status;
        progressed = true;
      }
      if (!batches_[batch_index].generator_queue.empty()) break;
    }
    if (!batches_[batch_index].generator_queue.empty()) continue;
    if (!progressed) return Status::Ok();  // fixpoint
  }
}

Status Evaluator::EvaluateToCompletion(Word goal, FunctorId functor,
                                       bool existential, bool* has_answer,
                                       SubgoalId* root_out) {
  TermStore* store = machine_->store();
  ++stats_.batches;
  batches_.push_back(Batch{tables_->NextBatchId(),
                           {},
                           {},
                           {},
                           kNoSubgoal,
                           false});
  size_t batch_index = batches_.size() - 1;

  auto [root, created] =
      tables_->LookupOrCreate(*store, goal, functor, batches_[batch_index].id,
                              SpecFor(functor));
  if (created) {
    SeedSubgoalDeps(root, functor);
  } else if (tables_->NeedsReevaluation(root)) {
    tables_->ResetForReevaluation(root, batches_[batch_index].id);
#ifdef XSB_MODE_ORACLE
    RecordModeExpectation(root, functor);
#endif
  }
  batches_[batch_index].subgoals.push_back(root);
  batches_[batch_index].generator_queue.push_back(root);
  if (existential) batches_[batch_index].stop_on_answer = root;

  Status status = RunBatchLoop(batch_index);

  Batch& batch = batches_[batch_index];
  bool answered = batch.aborted || !tables_->subgoal(root).table()->empty();
  if (!status.ok() || batch.aborted) {
    // Error, or existential abort: the partial tables are unusable (paper:
    // existential negation "cuts away" the goals created in its context).
    for (SubgoalId id : batch.subgoals) tables_->Dispose(id);
  } else {
    // Publication: the release stores make every answer inserted above
    // visible to any thread that later acquires the state.
    TableSpace::Perturb("batch.publish");
    for (SubgoalId id : batch.subgoals) {
      tables_->subgoal(id).state.store(SubgoalState::kComplete,
                                       std::memory_order_release);
    }
    tables_->NotifyCompletion();
  }
  batches_.pop_back();
  if (has_answer != nullptr) *has_answer = answered;
  if (root_out != nullptr) *root_out = root;
  return status;
}

TabledCallHandler::CallOutcome Evaluator::OnNegation(Machine* machine,
                                                     Word goal,
                                                     const GoalNode* /*cont*/,
                                                     bool existential) {
  TermStore* store = machine->store();
  goal = store->Deref(goal);
  std::optional<FunctorId> functor = Program::CallableFunctor(*store, goal);
  if (!functor.has_value()) {
    machine->SetError(TypeError("tnot/e_tnot argument is not callable"));
    return CallOutcome::kError;
  }
  Predicate* pred = machine->program()->Lookup(*functor);
  if (pred == nullptr || !pred->tabled()) {
    machine->SetError(
        TypeError("tnot/e_tnot require a tabled predicate; use \\+ for "
                  "non-tabled goals"));
    return CallOutcome::kError;
  }
  if (!store->IsGround(goal)) {
    machine->SetError(InstantiationError(
        "tnot/e_tnot on a non-ground goal: the query flounders"));
    return CallOutcome::kError;
  }

  if (batches_.empty()) {
    // Top-level negation: acquire the negated predicate's reach mask like
    // any cold call (same coarse-fallback loop); owning its shard means an
    // incomplete variant of it cannot exist here.
    for (bool coarse = false;;) {
      ShardMask mask =
          coarse ? kAllEvalShards : ReachMask(*functor, goal);
      tables_->AcquireShards(mask);
      owned_shards_ = mask;
      SubgoalId id = tables_->Lookup(*store, goal);
      if (id != kNoSubgoal && !tables_->NeedsReevaluation(id)) {
        bool empty = tables_->subgoal(id).table()->empty();
        tables_->ReleaseShards(owned_shards_);
        owned_shards_ = 0;
        return empty ? CallOutcome::kContinue : CallOutcome::kFail;
      }
      bool has_answer = false;
      Status status = EvaluateToCompletion(goal, *functor, existential,
                                           &has_answer, &id);
      tables_->ReleaseShards(owned_shards_);
      owned_shards_ = 0;
      if (status.ok()) {
        return has_answer ? CallOutcome::kFail : CallOutcome::kContinue;
      }
      if (status.code() == ErrorCode::kRetryEvaluation && !coarse) {
        coarse = true;
        ++tables_->stats().coarse_fallbacks;
        continue;
      }
      machine->SetError(status);
      return CallOutcome::kError;
    }
  }

  // In-batch negation: once this batch owns the negated predicate's shards,
  // an incomplete table seen here can only belong to this thread's own
  // enclosing batch — a genuine stratification violation, never another
  // session's in-flight work.
  Status own = EnsureOwnedForCall(*functor);
  if (!own.ok()) {
    machine->SetError(own);
    return CallOutcome::kError;
  }
  SubgoalId id = tables_->Lookup(*store, goal);
  SubgoalId caller = CurrentSubgoal();
  // An invalid table falls through to re-evaluation below.
  if (id != kNoSubgoal && !tables_->NeedsReevaluation(id)) {
    const Subgoal& sg = tables_->subgoal(id);
    if (sg.state_acquire() == SubgoalState::kComplete) {
      if (caller != kNoSubgoal) tables_->AddDependent(id, caller);
      return sg.table()->empty() ? CallOutcome::kContinue
                                 : CallOutcome::kFail;
    }
    machine->SetError(StratificationFailure(
        machine, *functor,
        "tnot over an incomplete table: the program is not modularly "
        "stratified"));
    return CallOutcome::kError;
  }

  bool has_answer = false;
  Status status = EvaluateToCompletion(goal, *functor, existential,
                                       &has_answer, &id);
  if (!status.ok()) {
    machine->SetError(status);
    return CallOutcome::kError;
  }
  // The negation's truth value depends on the negated table (which is
  // disposed after an existential abort; the edge is skipped there).
  if (caller != kNoSubgoal && id != kNoSubgoal &&
      tables_->subgoal(id).state_acquire() == SubgoalState::kComplete) {
    tables_->AddDependent(id, caller);
  }
  return has_answer ? CallOutcome::kFail : CallOutcome::kContinue;
}

TabledCallHandler::CallOutcome Evaluator::OnTFindall(Machine* machine,
                                                     Word templ, Word goal,
                                                     Word result,
                                                     const GoalNode* /*cont*/) {
  TermStore* store = machine->store();
  goal = store->Deref(goal);
  std::optional<FunctorId> functor = Program::CallableFunctor(*store, goal);
  if (!functor.has_value()) {
    machine->SetError(TypeError("tfindall/3: goal is not callable"));
    return CallOutcome::kError;
  }
  Predicate* pred = machine->program()->Lookup(*functor);
  if (pred == nullptr || !pred->tabled()) {
    machine->SetError(
        TypeError("tfindall/3 requires a tabled goal; use findall/3"));
    return CallOutcome::kError;
  }

  SubgoalId id = kNoSubgoal;
  const AnswerTable* projected = nullptr;
  if (batches_.empty()) {
    // Top-level tfindall: complete the goal's table like a cold call (same
    // shard acquisition and coarse-fallback loop), then project below. The
    // table pointer is captured before the shards go (see OnTabledCall).
    for (bool coarse = false;;) {
      ShardMask mask =
          coarse ? kAllEvalShards : ReachMask(*functor, goal);
      tables_->AcquireShards(mask);
      owned_shards_ = mask;
      id = tables_->Lookup(*store, goal);
      Status status = Status::Ok();
      if (id == kNoSubgoal || tables_->NeedsReevaluation(id)) {
        status = EvaluateToCompletion(goal, *functor,
                                      /*existential=*/false, nullptr, &id);
      }
      if (status.ok()) projected = tables_->subgoal(id).table();
      tables_->ReleaseShards(owned_shards_);
      owned_shards_ = 0;
      if (status.ok()) break;
      if (status.code() == ErrorCode::kRetryEvaluation && !coarse) {
        coarse = true;
        ++tables_->stats().coarse_fallbacks;
        continue;
      }
      machine->SetError(status);
      return CallOutcome::kError;
    }
  } else {
    Status own = EnsureOwnedForCall(*functor);
    if (!own.ok()) {
      machine->SetError(own);
      return CallOutcome::kError;
    }
    id = tables_->Lookup(*store, goal);
    if (id == kNoSubgoal || tables_->NeedsReevaluation(id)) {
      Status status = EvaluateToCompletion(goal, *functor,
                                           /*existential=*/false, nullptr,
                                           &id);
      if (!status.ok()) {
        machine->SetError(status);
        return CallOutcome::kError;
      }
    } else if (tables_->subgoal(id).state_acquire() !=
               SubgoalState::kComplete) {
      // The paper's tfindall *suspends* until completion; under local
      // scheduling a same-SCC tfindall would deadlock, which we report.
      machine->SetError(StratificationFailure(
          machine, *functor,
          "tfindall/3 on a table of the same recursive component"));
      return CallOutcome::kError;
    }
  }

  SubgoalId caller = CurrentSubgoal();
  if (caller != kNoSubgoal) tables_->AddDependent(id, caller);

  // Project each answer through (goal, templ), which share variables. The
  // per-instance flatten goes through a reused scratch, so the stored copy
  // is exact-size and the scratch stops allocating once warm.
  std::vector<FlatTerm> instances;
  const AnswerTable& table =
      projected != nullptr ? *projected : *tables_->subgoal(id).table();
  FlatTerm answer;
  FlatTerm instance_scratch;
  for (size_t i = 0; i < table.size(); ++i) {
    if (!table.live(i)) continue;  // answer retired by lattice subsumption
    table.ReadAnswer(i, &answer);
    size_t trail = store->TrailMark();
    size_t heap = store->HeapMark();
    Word answer_term = Unflatten(store, answer);
    if (store->Unify(goal, answer_term)) {
      if (FlattenInto(*store, templ, &instance_scratch)) {
        ++machine->stats().findall_flatten_reuses;
      }
      instances.push_back(instance_scratch);
    }
    store->UndoTrail(trail);
    store->TruncateHeap(heap);
  }
  std::vector<Word> items;
  items.reserve(instances.size());
  for (const FlatTerm& flat : instances) {
    items.push_back(Unflatten(store, flat));
  }
  Word list = store->MakeList(items, AtomCell(store->symbols()->nil()));
  return store->Unify(result, list) ? CallOutcome::kContinue
                                    : CallOutcome::kFail;
}

bool Evaluator::AbolishTableCall(Machine* machine, Word goal) {
  TermStore* store = machine->store();
  std::optional<FunctorId> functor = Program::CallableFunctor(*store, goal);
  ShardMask need =
      functor.has_value() ? ReachMask(*functor, goal) : kAllEvalShards;
  if (batches_.empty()) {
    ShardLease lease(tables_, need);
    SubgoalId id = tables_->Lookup(*store, goal);
    if (id == kNoSubgoal) return false;
    // Owning the shard, an incomplete table can only be a leftover of this
    // thread; defensively refuse (matches the documented mid-batch no-op).
    if (tables_->subgoal(id).state_acquire() == SubgoalState::kIncomplete) {
      return false;
    }
    tables_->Dispose(id);
    return true;
  }
  // Mid-batch abolish is best-effort: widen ownership without blocking and
  // report failure (no-op) when the shards are contended.
  if (!EnsureOwnedForCall(functor.value_or(0)).ok()) return false;
  SubgoalId id = tables_->Lookup(*store, goal);
  if (id == kNoSubgoal) return false;
  // A table mid-evaluation belongs to a live batch; pulling it out would
  // corrupt the batch, so abolishing it is a no-op.
  if (tables_->subgoal(id).state_acquire() == SubgoalState::kIncomplete) {
    return false;
  }
  tables_->Dispose(id);
  return true;
}

TabledCallHandler::TableState Evaluator::GetTableState(Machine* machine,
                                                       Word goal) {
  // Entirely lock-free: Lookup is an advisory probe and the state/invalid
  // reads are the published atomics — the result is a consistent snapshot
  // of one instant, which is all table_state/2 ever promised.
  TermStore* store = machine->store();
  SubgoalId id = tables_->Lookup(*store, goal);
  if (id == kNoSubgoal) return TableState::kNoTable;
  const Subgoal& sg = tables_->subgoal(id);
  switch (sg.state_acquire()) {
    case SubgoalState::kIncomplete:
      return TableState::kIncomplete;
    case SubgoalState::kComplete:
      return sg.invalid_acquire() ? TableState::kInvalid
                                  : TableState::kComplete;
    case SubgoalState::kDisposed:
      break;  // disposed tables are unreachable via Lookup; be safe
  }
  return TableState::kNoTable;
}

TabledCallHandler::TableStatsInfo Evaluator::GetTableStats(Machine* machine,
                                                           Word goal) {
  // The byte walks need a quiescent space (they read non-atomic capacity
  // fields), so stats take every shard. At top level that blocks until
  // running batches drain; mid-batch the widening is try-only and on
  // contention the walk degrades gracefully: counters and the mutex-guarded
  // aggregate walks stay exact, byte totals report 0.
  ShardMask added = kAllEvalShards & ~owned_shards_;
  bool exclusive;
  if (batches_.empty()) {
    tables_->AcquireShards(added);
    exclusive = true;
  } else {
    exclusive = tables_->TryAcquireShards(added);
    if (!exclusive) added = 0;
  }
  TableStatsInfo info;
  info.interned_terms = tables_->interns().num_terms();
  info.call_trie_nodes = tables_->call_trie_nodes();
  info.factored_saved_bytes =
      tables_->stats().factored_cells_saved * sizeof(Word);
  info.shared_table_hits = tables_->stats().shared_table_hits;
  info.waits_on_inprogress = tables_->stats().waits_on_inprogress;
  info.epochs_retired = tables_->stats().epochs_retired;
  info.coarse_fallbacks = tables_->stats().coarse_fallbacks;
  info.mode_violations = tables_->stats().mode_violations;
  info.subsumed_dropped = tables_->stats().subsumed_dropped;
  info.subsumed_replaced = tables_->stats().subsumed_replaced;
  if (goal == 0) {
    // Aggregate over the whole table space.
    info.found = true;
    info.subgoals = tables_->num_subgoals();
    info.answers = tables_->total_answers();
    info.trie_nodes = tables_->total_trie_nodes();
    info.bytes = exclusive ? tables_->table_bytes() : 0;
    if (added != 0) tables_->ReleaseShards(added);
    return info;
  }
  TermStore* store = machine->store();
  SubgoalId id = tables_->Lookup(*store, goal);
  if (id != kNoSubgoal) {
    const Subgoal& sg = tables_->subgoal(id);
    info.found = true;
    info.subgoals = 1;
    info.answers = sg.table()->live_size();
    info.trie_nodes = sg.table()->trie_nodes();
    info.bytes = exclusive ? sg.table()->bytes() : 0;
  }
  if (added != 0) tables_->ReleaseShards(added);
  return info;
}

}  // namespace xsb
