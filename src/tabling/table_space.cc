#include "tabling/table_space.h"

namespace xsb {

bool AnswerTrie::Insert(const FlatTerm& answer) {
  Node* node = root_.get();
  for (Word w : answer.cells) {
    auto [it, inserted] = node->children.try_emplace(w, nullptr);
    if (inserted) it->second = std::make_unique<Node>();
    node = it->second.get();
  }
  if (node->terminal) return false;
  node->terminal = true;
  ++count_;
  return true;
}

bool AnswerTable::Insert(FlatTerm answer) {
  bool fresh;
  if (use_trie_) {
    fresh = trie_index_.Insert(answer);
  } else {
    fresh = hash_index_.try_emplace(answer, true).second;
  }
  if (fresh) answers_.push_back(std::move(answer));
  return fresh;
}

std::pair<SubgoalId, bool> TableSpace::LookupOrCreate(const FlatTerm& call,
                                                      FunctorId functor,
                                                      uint64_t batch_id) {
  auto it = call_index_.find(call);
  if (it != call_index_.end()) return {it->second, false};
  SubgoalId id = static_cast<SubgoalId>(subgoals_.size());
  subgoals_.push_back(Subgoal{});
  Subgoal& sg = subgoals_.back();
  sg.call = call;
  sg.functor = functor;
  sg.batch_id = batch_id;
  sg.answers = std::make_unique<AnswerTable>(answer_trie_);
  call_index_.emplace(call, id);
  ++stats_.subgoals_created;
  return {id, true};
}

SubgoalId TableSpace::Lookup(const FlatTerm& call) const {
  auto it = call_index_.find(call);
  return it == call_index_.end() ? kNoSubgoal : it->second;
}

bool TableSpace::AddAnswer(SubgoalId id, FlatTerm answer) {
  bool fresh = subgoals_[id].answers->Insert(std::move(answer));
  if (fresh) {
    ++stats_.answers_inserted;
  } else {
    ++stats_.duplicate_answers;
  }
  return fresh;
}

void TableSpace::Dispose(SubgoalId id) {
  Subgoal& sg = subgoals_[id];
  if (sg.state == SubgoalState::kDisposed) return;
  call_index_.erase(sg.call);
  sg.state = SubgoalState::kDisposed;
  sg.answers = std::make_unique<AnswerTable>(answer_trie_);
  ++stats_.subgoals_disposed;
}

void TableSpace::Clear() {
  call_index_.clear();
  subgoals_.clear();
}

}  // namespace xsb
