#include "tabling/table_space.h"

#include <algorithm>

#include "db/index.h"

namespace xsb {

bool AnswerTrie::Insert(const TermStore& store, Word instance,
                        size_t* saved_cells) {
  // Factor `instance` against the template in one lockstep walk: the
  // template's flat cells are traversed in preorder while the work stack
  // tracks the corresponding heap subterms. At a template variable's first
  // occurrence the heap subterm is its binding — flattened into the binding
  // stream (shared variable numbering across segments); repeated occurrences
  // necessarily carry the same binding (the instance is the unflattened
  // template, instantiated) and are skipped. Non-variable template cells
  // match the instance's skeleton by construction.
  bindings_scratch_.clear();
  var_scratch_.clear();
  walk_scratch_.clear();
  walk_scratch_.push_back(instance);
  const SymbolTable& symbols = interns_->symbols();
  size_t full_cells = 0;  // cells a full (unfactored) flatten would store
  size_t next_ord = 0;
  seg_scratch_.clear();  // per-ordinal binding segment length
  for (Word tc : template_.cells) {
    Word x = walk_scratch_.back();
    walk_scratch_.pop_back();
    if (IsLocal(tc)) {
      uint64_t ord = PayloadOf(tc);
      if (ord == next_ord) {
        size_t before = bindings_scratch_.size();
        FlattenAppend(store, x, &bindings_scratch_, &var_scratch_);
        seg_scratch_.push_back(bindings_scratch_.size() - before);
        ++next_ord;
      }
      full_cells += seg_scratch_[ord];
    } else {
      ++full_cells;
      if (IsFunctor(tc)) {
        Word d = store.Deref(x);
        int arity = symbols.FunctorArity(FunctorOf(tc));
        for (int i = arity - 1; i >= 0; --i) {
          walk_scratch_.push_back(store.Arg(d, i));
        }
      }
    }
  }

  interns_->Encode(bindings_scratch_, &encode_scratch_);
  TokenTrie::NodeId node = TokenTrie::root();
  for (Word token : encode_scratch_) {
    node = trie_.Extend(node, token, nullptr);
  }
  if (trie_.payload(node) != TokenTrie::kNoPayload) return false;  // duplicate
  trie_.set_payload(node, static_cast<uint32_t>(leaves_.size()));
  leaves_.push_back(
      Leaf{node, static_cast<uint32_t>(var_scratch_.size())});
  if (saved_cells != nullptr) {
    *saved_cells = full_cells - bindings_scratch_.size();
  }
  return true;
}

void AnswerTrie::ExpandLeaf(size_t i, std::vector<Word>* out) const {
  path_scratch_.clear();
  for (TokenTrie::NodeId n = leaves_[i].node; n != TokenTrie::root();
       n = trie_.node(n).parent) {
    path_scratch_.push_back(trie_.node(n).token);
  }
  out->clear();
  for (auto it = path_scratch_.rbegin(); it != path_scratch_.rend(); ++it) {
    interns_->AppendExpansion(*it, out);
  }
}

void AnswerTrie::ReadBindings(size_t i, FlatTerm* out) const {
  ExpandLeaf(i, &out->cells);
  out->num_vars = leaves_[i].num_vars;
}

void AnswerTrie::ReadAnswer(size_t i, FlatTerm* out) const {
  ExpandLeaf(i, &expand_scratch_);
  out->cells.clear();
  out->num_vars = leaves_[i].num_vars;
  // Splice binding segments back into the template. First occurrences of
  // template variables appear in ordinal order, so segment starts are
  // discovered left to right; repeated occurrences re-splice their segment,
  // reproducing exactly the canonical flatten of the full instance.
  const SymbolTable& symbols = interns_->symbols();
  seg_scratch_.clear();  // per-ordinal segment start
  size_t next_seg = 0;
  for (Word tc : template_.cells) {
    if (!IsLocal(tc)) {
      out->cells.push_back(tc);
      continue;
    }
    uint64_t ord = PayloadOf(tc);
    size_t s;
    if (ord == seg_scratch_.size()) {
      s = next_seg;
      seg_scratch_.push_back(s);
      next_seg = SkipFlatSubterm(symbols, expand_scratch_, s);
    } else {
      s = seg_scratch_[ord];
    }
    size_t e = SkipFlatSubterm(symbols, expand_scratch_, s);
    out->cells.insert(out->cells.end(), expand_scratch_.begin() + s,
                      expand_scratch_.begin() + e);
  }
}

size_t AnswerTrie::bytes() const {
  return trie_.bytes() + leaves_.capacity() * sizeof(Leaf) +
         template_.cells.capacity() * sizeof(Word);
}

bool AnswerTable::Insert(const TermStore& store, Word instance,
                         size_t* saved_cells) {
  if (use_trie_) return trie_.Insert(store, instance, saved_cells);
  if (saved_cells != nullptr) *saved_cells = 0;
  FlatTerm answer = Flatten(store, instance);
  bool fresh = hash_index_.insert(answer).second;
  if (fresh) answers_.push_back(std::move(answer));
  return fresh;
}

void AnswerTable::ReadAnswer(size_t i, FlatTerm* out) const {
  if (use_trie_) {
    trie_.ReadAnswer(i, out);
    return;
  }
  out->cells = answers_[i].cells;
  out->num_vars = answers_[i].num_vars;
}

void AnswerTable::ReadBindings(size_t i, FlatTerm* out) const {
  if (use_trie_) {
    trie_.ReadBindings(i, out);
    return;
  }
  ReadAnswer(i, out);
}

size_t AnswerTable::bytes() const {
  if (use_trie_) return trie_.bytes();
  size_t total = answers_.capacity() * sizeof(FlatTerm);
  for (const FlatTerm& t : answers_) {
    // Stored twice: once in the vector, once as the hash-set key.
    total += 2 * t.cells.capacity() * sizeof(Word);
  }
  total += hash_index_.size() * (sizeof(FlatTerm) + 2 * sizeof(void*));
  return total;
}

std::pair<SubgoalId, bool> TableSpace::LookupOrCreate(const TermStore& store,
                                                      Word goal,
                                                      FunctorId functor,
                                                      uint64_t batch_id) {
  TokenTrie::NodeId leaf = call_trie_.LookupOrInsert(store, goal);
  uint32_t payload = call_trie_.payload(leaf);
  if (payload != TokenTrie::kNoPayload) {
    return {static_cast<SubgoalId>(payload), false};
  }
  SubgoalId id = static_cast<SubgoalId>(subgoals_.size());
  subgoals_.push_back(Subgoal{});
  Subgoal& sg = subgoals_.back();
  sg.call = call_trie_.DecodeLastCall();
  sg.call_leaf = leaf;
  sg.functor = functor;
  sg.batch_id = batch_id;
  sg.answers = std::make_unique<AnswerTable>(answer_trie_, &interns_, sg.call);
  call_trie_.set_payload(leaf, id);
  ++stats_.subgoals_created;
  return {id, true};
}

SubgoalId TableSpace::Lookup(const TermStore& store, Word goal) const {
  TokenTrie::NodeId leaf = call_trie_.Probe(store, goal);
  if (leaf == TokenTrie::kNilNode) return kNoSubgoal;
  uint32_t payload = call_trie_.payload(leaf);
  return payload == TokenTrie::kNoPayload ? kNoSubgoal
                                          : static_cast<SubgoalId>(payload);
}

bool TableSpace::AddAnswer(SubgoalId id, const TermStore& store,
                           Word instance) {
  size_t saved = 0;
  bool fresh = subgoals_[id].answers->Insert(store, instance, &saved);
  if (fresh) {
    ++stats_.answers_inserted;
    stats_.factored_cells_saved += saved;
  } else {
    ++stats_.duplicate_answers;
  }
  return fresh;
}

void TableSpace::Dispose(SubgoalId id) {
  Subgoal& sg = subgoals_[id];
  if (sg.state == SubgoalState::kDisposed) return;
  // The trie path stays; clearing the leaf payload unlinks the variant. A
  // later variant call reuses the path and installs a fresh subgoal id.
  call_trie_.set_payload(sg.call_leaf, TokenTrie::kNoPayload);
  sg.state = SubgoalState::kDisposed;
  retired_answers_.push_back(std::move(sg.answers));
  sg.answers = std::make_unique<AnswerTable>(answer_trie_, &interns_, sg.call);
  ++stats_.subgoals_disposed;
}

void TableSpace::Clear() {
  for (Subgoal& sg : subgoals_) {
    if (sg.answers != nullptr) {
      retired_answers_.push_back(std::move(sg.answers));
    }
  }
  call_trie_.Clear();
  subgoals_.clear();
  pred_readers_.clear();
}

void TableSpace::AddDependent(SubgoalId callee, SubgoalId caller) {
  if (callee == caller) return;
  std::vector<SubgoalId>& deps = subgoals_[callee].dependents;
  if (std::find(deps.begin(), deps.end(), caller) == deps.end()) {
    deps.push_back(caller);
  }
}

void TableSpace::AddPredReader(FunctorId pred, SubgoalId reader) {
  pred_readers_[pred].insert(reader);
}

size_t TableSpace::InvalidateForPredicate(FunctorId pred) {
  auto it = pred_readers_.find(pred);
  if (it == pred_readers_.end()) return 0;
  size_t count = 0;
  std::vector<SubgoalId> work(it->second.begin(), it->second.end());
  std::unordered_set<SubgoalId> visited(work.begin(), work.end());
  while (!work.empty()) {
    SubgoalId id = work.back();
    work.pop_back();
    Subgoal& sg = subgoals_[id];
    if (sg.state == SubgoalState::kDisposed) continue;
    // Incomplete tables are flagged too: they are mid-evaluation and may
    // have read the predicate before the update, so they complete as
    // already-invalid and re-evaluate on their next call. Already invalid
    // tables still propagate: edges may have been added since they were
    // first flagged.
    if (!sg.invalid) {
      sg.invalid = true;
      if (sg.state == SubgoalState::kComplete) ++count;
    }
    for (SubgoalId dep : sg.dependents) {
      if (visited.insert(dep).second) work.push_back(dep);
    }
  }
  stats_.tables_invalidated += count;
  return count;
}

size_t TableSpace::InvalidateAll() {
  size_t count = 0;
  for (Subgoal& sg : subgoals_) {
    if (sg.state == SubgoalState::kComplete && !sg.invalid) {
      sg.invalid = true;
      ++count;
    }
  }
  stats_.tables_invalidated += count;
  return count;
}

void TableSpace::ResetForReevaluation(SubgoalId id, uint64_t batch_id) {
  Subgoal& sg = subgoals_[id];
  retired_answers_.push_back(std::move(sg.answers));
  sg.answers = std::make_unique<AnswerTable>(answer_trie_, &interns_, sg.call);
  sg.state = SubgoalState::kIncomplete;
  sg.invalid = false;
  sg.batch_id = batch_id;
  ++stats_.tables_reevaluated;
}

size_t TableSpace::total_answers() const {
  size_t total = 0;
  for (const Subgoal& sg : subgoals_) total += sg.answers->size();
  return total;
}

size_t TableSpace::total_trie_nodes() const {
  size_t total = 0;
  for (const Subgoal& sg : subgoals_) total += sg.answers->trie_nodes();
  return total;
}

size_t TableSpace::table_bytes() const {
  size_t total = interns_.bytes() + call_trie_.bytes();
  total += subgoals_.size() * sizeof(Subgoal);
  for (const Subgoal& sg : subgoals_) {
    total += sg.answers->bytes();
    total += sg.call.cells.capacity() * sizeof(Word);
    total += sg.dependents.capacity() * sizeof(SubgoalId);
  }
  for (const auto& retired : retired_answers_) total += retired->bytes();
  return total;
}

}  // namespace xsb
