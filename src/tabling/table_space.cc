#include "tabling/table_space.h"

#include <algorithm>

namespace xsb {

bool AnswerTrie::Insert(const FlatTerm& answer) {
  interns_->EncodeOpen(answer.cells, &encode_scratch_);
  TokenTrie::Node* node = trie_.root();
  for (Word token : encode_scratch_) {
    node = trie_.Extend(node, token, nullptr);
  }
  if (node->payload != TokenTrie::kNoPayload) return false;  // duplicate
  node->payload = static_cast<uint32_t>(leaves_.size());
  leaves_.push_back(Leaf{node, answer.num_vars});
  return true;
}

void AnswerTrie::ReadAnswer(size_t i, FlatTerm* out) const {
  const Leaf& leaf = leaves_[i];
  path_scratch_.clear();
  for (const TokenTrie::Node* n = leaf.node; n->parent != nullptr;
       n = n->parent) {
    path_scratch_.push_back(n->token);
  }
  out->cells.clear();
  out->num_vars = leaf.num_vars;
  for (auto it = path_scratch_.rbegin(); it != path_scratch_.rend(); ++it) {
    interns_->AppendExpansion(*it, &out->cells);
  }
}

size_t AnswerTrie::bytes() const {
  return trie_.bytes() + leaves_.capacity() * sizeof(Leaf);
}

bool AnswerTable::Insert(FlatTerm answer) {
  if (use_trie_) return trie_.Insert(answer);
  bool fresh = hash_index_.insert(answer).second;
  if (fresh) answers_.push_back(std::move(answer));
  return fresh;
}

void AnswerTable::ReadAnswer(size_t i, FlatTerm* out) const {
  if (use_trie_) {
    trie_.ReadAnswer(i, out);
    return;
  }
  out->cells = answers_[i].cells;
  out->num_vars = answers_[i].num_vars;
}

size_t AnswerTable::bytes() const {
  if (use_trie_) return trie_.bytes();
  size_t total = answers_.capacity() * sizeof(FlatTerm);
  for (const FlatTerm& t : answers_) {
    // Stored twice: once in the vector, once as the hash-set key.
    total += 2 * t.cells.capacity() * sizeof(Word);
  }
  total += hash_index_.size() * (sizeof(FlatTerm) + 2 * sizeof(void*));
  return total;
}

std::pair<SubgoalId, bool> TableSpace::LookupOrCreate(const FlatTerm& call,
                                                      FunctorId functor,
                                                      uint64_t batch_id) {
  FlatTerm key;
  key.num_vars = call.num_vars;
  interns_.Encode(call.cells, &key.cells);
  auto it = call_index_.find(key);
  if (it != call_index_.end()) return {it->second, false};
  SubgoalId id = static_cast<SubgoalId>(subgoals_.size());
  subgoals_.push_back(Subgoal{});
  Subgoal& sg = subgoals_.back();
  sg.call = call;
  sg.call_key = key;
  sg.functor = functor;
  sg.batch_id = batch_id;
  sg.answers = std::make_unique<AnswerTable>(answer_trie_, &interns_);
  call_index_.emplace(std::move(key), id);
  ++stats_.subgoals_created;
  return {id, true};
}

SubgoalId TableSpace::Lookup(const FlatTerm& call) const {
  FlatTerm key;
  interns_.Encode(call.cells, &key.cells);
  auto it = call_index_.find(key);
  return it == call_index_.end() ? kNoSubgoal : it->second;
}

bool TableSpace::AddAnswer(SubgoalId id, FlatTerm answer) {
  bool fresh = subgoals_[id].answers->Insert(std::move(answer));
  if (fresh) {
    ++stats_.answers_inserted;
  } else {
    ++stats_.duplicate_answers;
  }
  return fresh;
}

void TableSpace::Dispose(SubgoalId id) {
  Subgoal& sg = subgoals_[id];
  if (sg.state == SubgoalState::kDisposed) return;
  call_index_.erase(sg.call_key);
  sg.state = SubgoalState::kDisposed;
  retired_answers_.push_back(std::move(sg.answers));
  sg.answers = std::make_unique<AnswerTable>(answer_trie_, &interns_);
  ++stats_.subgoals_disposed;
}

void TableSpace::Clear() {
  for (Subgoal& sg : subgoals_) {
    if (sg.answers != nullptr) {
      retired_answers_.push_back(std::move(sg.answers));
    }
  }
  call_index_.clear();
  subgoals_.clear();
  pred_readers_.clear();
}

void TableSpace::AddDependent(SubgoalId callee, SubgoalId caller) {
  if (callee == caller) return;
  std::vector<SubgoalId>& deps = subgoals_[callee].dependents;
  if (std::find(deps.begin(), deps.end(), caller) == deps.end()) {
    deps.push_back(caller);
  }
}

void TableSpace::AddPredReader(FunctorId pred, SubgoalId reader) {
  pred_readers_[pred].insert(reader);
}

size_t TableSpace::InvalidateForPredicate(FunctorId pred) {
  auto it = pred_readers_.find(pred);
  if (it == pred_readers_.end()) return 0;
  size_t count = 0;
  std::vector<SubgoalId> work(it->second.begin(), it->second.end());
  std::unordered_set<SubgoalId> visited(work.begin(), work.end());
  while (!work.empty()) {
    SubgoalId id = work.back();
    work.pop_back();
    Subgoal& sg = subgoals_[id];
    if (sg.state == SubgoalState::kDisposed) continue;
    // Incomplete tables are flagged too: they are mid-evaluation and may
    // have read the predicate before the update, so they complete as
    // already-invalid and re-evaluate on their next call. Already invalid
    // tables still propagate: edges may have been added since they were
    // first flagged.
    if (!sg.invalid) {
      sg.invalid = true;
      if (sg.state == SubgoalState::kComplete) ++count;
    }
    for (SubgoalId dep : sg.dependents) {
      if (visited.insert(dep).second) work.push_back(dep);
    }
  }
  stats_.tables_invalidated += count;
  return count;
}

size_t TableSpace::InvalidateAll() {
  size_t count = 0;
  for (Subgoal& sg : subgoals_) {
    if (sg.state == SubgoalState::kComplete && !sg.invalid) {
      sg.invalid = true;
      ++count;
    }
  }
  stats_.tables_invalidated += count;
  return count;
}

void TableSpace::ResetForReevaluation(SubgoalId id, uint64_t batch_id) {
  Subgoal& sg = subgoals_[id];
  retired_answers_.push_back(std::move(sg.answers));
  sg.answers = std::make_unique<AnswerTable>(answer_trie_, &interns_);
  sg.state = SubgoalState::kIncomplete;
  sg.invalid = false;
  sg.batch_id = batch_id;
  ++stats_.tables_reevaluated;
}

size_t TableSpace::total_answers() const {
  size_t total = 0;
  for (const Subgoal& sg : subgoals_) total += sg.answers->size();
  return total;
}

size_t TableSpace::total_trie_nodes() const {
  size_t total = 0;
  for (const Subgoal& sg : subgoals_) total += sg.answers->trie_nodes();
  return total;
}

size_t TableSpace::table_bytes() const {
  size_t total = interns_.bytes();
  for (const Subgoal& sg : subgoals_) {
    total += sg.answers->bytes();
    total += sg.call.cells.capacity() * sizeof(Word);
    total += sg.call_key.cells.capacity() * sizeof(Word);
  }
  return total;
}

}  // namespace xsb
