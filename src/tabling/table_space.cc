#include "tabling/table_space.h"

#include <algorithm>

#include "db/index.h"

namespace xsb {

AnswerTrie::ReadScratch& AnswerTrie::Scratch() {
  static thread_local ReadScratch scratch;
  return scratch;
}

bool AnswerTrie::Insert(const TermStore& store, Word instance,
                        size_t* saved_cells, size_t* index) {
  // Factor `instance` against the template in one lockstep walk: the
  // template's flat cells are traversed in preorder while the work stack
  // tracks the corresponding heap subterms. At a template variable's first
  // occurrence the heap subterm is its binding — flattened into the binding
  // stream (shared variable numbering across segments); repeated occurrences
  // necessarily carry the same binding (the instance is the unflattened
  // template, instantiated) and are skipped. Non-variable template cells
  // match the instance's skeleton by construction.
  bindings_scratch_.clear();
  var_scratch_.clear();
  walk_scratch_.clear();
  walk_scratch_.push_back(instance);
  const SymbolTable& symbols = interns_->symbols();
  size_t full_cells = 0;  // cells a full (unfactored) flatten would store
  size_t next_ord = 0;
  seg_scratch_.clear();  // per-ordinal binding segment length
  for (Word tc : template_.cells) {
    Word x = walk_scratch_.back();
    walk_scratch_.pop_back();
    if (IsLocal(tc)) {
      uint64_t ord = PayloadOf(tc);
      if (ord == next_ord) {
        size_t before = bindings_scratch_.size();
        FlattenAppend(store, x, &bindings_scratch_, &var_scratch_);
        seg_scratch_.push_back(bindings_scratch_.size() - before);
        ++next_ord;
      }
      full_cells += seg_scratch_[ord];
    } else {
      ++full_cells;
      if (IsFunctor(tc)) {
        Word d = store.Deref(x);
        int arity = symbols.FunctorArity(FunctorOf(tc));
        for (int i = arity - 1; i >= 0; --i) {
          walk_scratch_.push_back(store.Arg(d, i));
        }
      }
    }
  }

  interns_->Encode(bindings_scratch_, &encode_scratch_);
  TokenTrie::NodeId node = TokenTrie::root();
  for (Word token : encode_scratch_) {
    node = trie_.Extend(node, token, nullptr);
  }
  if (trie_.payload(node) != TokenTrie::kNoPayload) {  // duplicate
    if (index != nullptr) *index = trie_.payload(node);
    return false;
  }
  // Publication order: link the leaf, then release the new answer count —
  // a concurrent enumerator that observes size() >= k finds answer k-1
  // fully formed.
  size_t i =
      leaves_.EmplaceBack(node, static_cast<uint32_t>(var_scratch_.size()));
  trie_.set_payload(node, static_cast<uint32_t>(i));
  num_answers_.store(i + 1, std::memory_order_release);
  if (saved_cells != nullptr) {
    *saved_cells = full_cells - bindings_scratch_.size();
  }
  if (index != nullptr) *index = i;
  return true;
}

void AnswerTrie::ExpandLeaf(size_t i, std::vector<Word>* out) const {
  std::vector<Word>& path = Scratch().path;
  path.clear();
  for (TokenTrie::NodeId n = leaves_[i].node; n != TokenTrie::root();
       n = trie_.parent(n)) {
    path.push_back(trie_.token(n));
  }
  out->clear();
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    interns_->AppendExpansion(*it, out);
  }
}

void AnswerTrie::ReadBindings(size_t i, FlatTerm* out) const {
  ExpandLeaf(i, &out->cells);
  out->num_vars = leaves_[i].num_vars;
}

void AnswerTrie::ReadAnswer(size_t i, FlatTerm* out) const {
  ReadScratch& scratch = Scratch();
  ExpandLeaf(i, &scratch.expand);
  out->cells.clear();
  out->num_vars = leaves_[i].num_vars;
  // Splice binding segments back into the template. First occurrences of
  // template variables appear in ordinal order, so segment starts are
  // discovered left to right; repeated occurrences re-splice their segment,
  // reproducing exactly the canonical flatten of the full instance.
  const SymbolTable& symbols = interns_->symbols();
  scratch.seg.clear();  // per-ordinal segment start
  size_t next_seg = 0;
  for (Word tc : template_.cells) {
    if (!IsLocal(tc)) {
      out->cells.push_back(tc);
      continue;
    }
    uint64_t ord = PayloadOf(tc);
    size_t s;
    if (ord == scratch.seg.size()) {
      s = next_seg;
      scratch.seg.push_back(s);
      next_seg = SkipFlatSubterm(symbols, scratch.expand, s);
    } else {
      s = scratch.seg[ord];
    }
    size_t e = SkipFlatSubterm(symbols, scratch.expand, s);
    out->cells.insert(out->cells.end(), scratch.expand.begin() + s,
                      scratch.expand.begin() + e);
  }
}

size_t AnswerTrie::bytes() const {
  return trie_.bytes() + leaves_.bytes() +
         template_.cells.capacity() * sizeof(Word);
}

bool AnswerTable::StoreAnswer(const TermStore& store, Word instance,
                              size_t* saved_cells, size_t* index) {
  if (use_trie_) return trie_.Insert(store, instance, saved_cells, index);
  if (saved_cells != nullptr) *saved_cells = 0;
  FlatTerm answer = Flatten(store, instance);
  auto it = hash_index_.insert(answer);
  if (!it.second) {
    if (index != nullptr) {
      // Hash mode has no payload back-pointer; recover the index by scan.
      // Single-threaded ablation store only — not a hot path.
      for (size_t i = 0; i < answers_.size(); ++i) {
        if (answers_[i] == answer) {
          *index = i;
          break;
        }
      }
    }
    return false;
  }
  if (index != nullptr) *index = answers_.size();
  answers_.push_back(std::move(answer));
  if (spec_.subsumptive()) dead_.push_back(0);
  return true;
}

void AnswerTable::RetireAnswerAt(size_t i) {
  if (use_trie_) {
    trie_.RetireLeaf(i);
  } else {
    dead_[i] = 1;
  }
  num_retired_.fetch_add(1, std::memory_order_relaxed);
}

AnswerInsert AnswerTable::Insert(const TermStore& store, Word instance,
                                 size_t* saved_cells) {
  if (spec_.subsumptive()) {
    return InsertSubsumptive(store, instance, saved_cells);
  }
  return StoreAnswer(store, instance, saved_cells, nullptr)
             ? AnswerInsert::kNew
             : AnswerInsert::kDuplicate;
}

AnswerInsert AnswerTable::InsertSubsumptive(const TermStore& store,
                                            Word instance,
                                            size_t* saved_cells) {
  const int agg_pos = spec_.agg_pos;
  const TableSpec::Arg& agg = spec_.args[agg_pos];
  Word instance_deref = store.Deref(instance);
  Word agg_value = store.Deref(store.Arg(instance_deref, agg_pos));
  int64_t value = 0;
  if (agg.agg != TableSpec::Agg::kFirst) {
    // min/max compare integers; anything else is a type error the evaluator
    // raises at the answer site.
    if (!IsInt(agg_value)) return AnswerInsert::kBadAggregate;
    value = IntValue(agg_value);
  }
  // Aggregate key: the canonical flatten of every non-aggregated argument.
  // Two answers collapse iff they are variants outside the lattice position.
  key_scratch_.cells.clear();
  key_vars_.clear();
  int arity = static_cast<int>(spec_.args.size());
  for (int i = 0; i < arity; ++i) {
    if (i == agg_pos) continue;
    FlattenAppend(store, store.Arg(instance_deref, i), &key_scratch_.cells,
                  &key_vars_);
  }
  key_scratch_.num_vars = static_cast<uint32_t>(key_vars_.size());
  auto [it, created] = agg_index_.try_emplace(key_scratch_);
  AggEntry& entry = it->second;

  if (agg.agg == TableSpec::Agg::kFirst) {
    if (entry.count >= agg.n) {
      if (created) agg_index_.erase(it);  // n == 0: nothing is ever kept
      return AnswerInsert::kSubsumedDropped;
    }
    size_t index = 0;
    if (!StoreAnswer(store, instance, saved_cells, &index)) {
      return AnswerInsert::kDuplicate;
    }
    ++entry.count;
    return AnswerInsert::kNew;
  }

  if (!created) {
    bool better = agg.agg == TableSpec::Agg::kMin ? value < entry.best
                                                  : value > entry.best;
    if (!better) {
      // Equal value + equal key means a variant of the kept answer; a worse
      // value is lattice-subsumed. Neither touches the trie.
      return value == entry.best ? AnswerInsert::kDuplicate
                                 : AnswerInsert::kSubsumedDropped;
    }
  }
  // Store first, retire second: the beaten answer stays readable (frozen)
  // for any cursor currently parked on it, and the table never passes
  // through a state with zero live answers for this key. The new answer is
  // provably trie-fresh — per-key values move strictly through the lattice,
  // so this (key, value) pair has never been stored.
  size_t index = 0;
  if (!StoreAnswer(store, instance, saved_cells, &index)) {
    return AnswerInsert::kDuplicate;  // defensive; see invariant above
  }
  if (!created) RetireAnswerAt(entry.live_index);
  entry.best = value;
  entry.live_index = index;
  return created ? AnswerInsert::kNew : AnswerInsert::kReplaced;
}

void AnswerTable::ReadAnswer(size_t i, FlatTerm* out) const {
  if (use_trie_) {
    trie_.ReadAnswer(i, out);
    return;
  }
  out->cells = answers_[i].cells;
  out->num_vars = answers_[i].num_vars;
}

void AnswerTable::ReadBindings(size_t i, FlatTerm* out) const {
  if (use_trie_) {
    trie_.ReadBindings(i, out);
    return;
  }
  ReadAnswer(i, out);
}

size_t AnswerTable::bytes() const {
  size_t agg_bytes = 0;
  for (const auto& [key, entry] : agg_index_) {
    agg_bytes += key.cells.capacity() * sizeof(Word) + sizeof(AggEntry) +
                 2 * sizeof(void*);
  }
  if (use_trie_) return trie_.bytes() + agg_bytes;
  size_t total = agg_bytes + dead_.capacity() +
                 answers_.capacity() * sizeof(FlatTerm);
  for (const FlatTerm& t : answers_) {
    // Stored twice: once in the vector, once as the hash-set key.
    total += 2 * t.cells.capacity() * sizeof(Word);
  }
  total += hash_index_.size() * (sizeof(FlatTerm) + 2 * sizeof(void*));
  return total;
}

std::atomic<TableSpace::SchedulePerturbFn> TableSpace::perturb_hook_{nullptr};

std::pair<SubgoalId, bool> TableSpace::LookupOrCreate(const TermStore& store,
                                                      Word goal,
                                                      FunctorId functor,
                                                      uint64_t batch_id,
                                                      const TableSpec* spec) {
  Perturb("table.lookup_or_create");
  std::lock_guard<std::mutex> lock(structure_mutex_);
  TokenTrie::NodeId leaf = call_trie_.LookupOrInsert(store, goal);
  uint32_t payload = call_trie_.payload(leaf);
  if (payload != TokenTrie::kNoPayload) {
    return {static_cast<SubgoalId>(payload), false};
  }
  SubgoalId id = static_cast<SubgoalId>(subgoals_.EmplaceBack());
  Subgoal& sg = subgoals_[id];
  sg.call = call_trie_.DecodeLastCall();
  sg.call_leaf = leaf;
  sg.functor = functor;
  sg.batch_id = batch_id;
  if (spec != nullptr) sg.spec = *spec;
  sg.answers.store(new AnswerTable(answer_trie_, &interns_, sg.call, sg.spec),
                   std::memory_order_release);
  // Publish last: a lock-free prober that reads this payload finds the
  // subgoal fully initialized.
  call_trie_.set_payload(leaf, id);
  ++stats_.subgoals_created;
  return {id, true};
}

SubgoalId TableSpace::Lookup(const TermStore& store, Word goal) const {
  TokenTrie::NodeId leaf = call_trie_.Probe(store, goal);
  if (leaf == TokenTrie::kNilNode) return kNoSubgoal;
  uint32_t payload = call_trie_.payload(leaf);
  return payload == TokenTrie::kNoPayload ? kNoSubgoal
                                          : static_cast<SubgoalId>(payload);
}

AnswerInsert TableSpace::AddAnswer(SubgoalId id, const TermStore& store,
                                   Word instance) {
  Perturb("answer.insert");
  size_t saved = 0;
  AnswerInsert outcome =
      subgoals_[id].table()->Insert(store, instance, &saved);
  switch (outcome) {
    case AnswerInsert::kNew:
      ++stats_.answers_inserted;
      stats_.factored_cells_saved += saved;
      break;
    case AnswerInsert::kReplaced:
      ++stats_.answers_inserted;
      ++stats_.subsumed_replaced;
      stats_.factored_cells_saved += saved;
      break;
    case AnswerInsert::kDuplicate:
      ++stats_.duplicate_answers;
      break;
    case AnswerInsert::kSubsumedDropped:
      ++stats_.subsumed_dropped;
      break;
    case AnswerInsert::kBadAggregate:
      break;  // the evaluator raises the type error
  }
  return outcome;
}

void TableSpace::RetireAnswers(Subgoal& sg) {
  AnswerTable* fresh =
      new AnswerTable(answer_trie_, &interns_, sg.call, sg.spec);
  AnswerTable* old = sg.answers.exchange(fresh, std::memory_order_acq_rel);
  uint64_t stamp = epochs_.Retire();
  std::lock_guard<std::mutex> lock(retired_mutex_);
  retired_answers_.push_back(
      Retired{std::unique_ptr<AnswerTable>(old), stamp});
}

void TableSpace::Dispose(SubgoalId id) {
  Subgoal& sg = subgoals_[id];
  if (sg.state_acquire() == SubgoalState::kDisposed) return;
  // The trie path stays; clearing the leaf payload unlinks the variant. A
  // later variant call reuses the path and installs a fresh subgoal id.
  call_trie_.set_payload(sg.call_leaf, TokenTrie::kNoPayload);
  // Publication order: leave kComplete *before* swapping the table pointer,
  // so a revalidating reader that sees the fresh pointer must also see the
  // disposed state and reject it (see Subgoal's protocol comment).
  sg.state.store(SubgoalState::kDisposed, std::memory_order_release);
  RetireAnswers(sg);
  ++stats_.subgoals_disposed;
  NotifyCompletion();
}

void TableSpace::Clear() {
  size_t n = subgoals_.size();
  if (shared_) {
    // Concurrent readers may hold subgoal ids and trie indices: keep the
    // arenas and dispose every live table instead of deallocating.
    for (size_t i = 0; i < n; ++i) {
      Dispose(static_cast<SubgoalId>(i));
    }
    std::lock_guard<std::mutex> lock(structure_mutex_);
    pred_readers_.clear();
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Subgoal& sg = subgoals_[i];
    if (sg.table() != nullptr) RetireAnswers(sg);
  }
  std::lock_guard<std::mutex> lock(structure_mutex_);
  call_trie_.Clear();
  subgoals_.Clear();
  pred_readers_.clear();
}

void TableSpace::AddDependent(SubgoalId callee, SubgoalId caller) {
  if (callee == caller) return;
  std::lock_guard<std::mutex> lock(structure_mutex_);
  std::vector<SubgoalId>& deps = subgoals_[callee].dependents;
  if (std::find(deps.begin(), deps.end(), caller) == deps.end()) {
    deps.push_back(caller);
  }
}

void TableSpace::AddPredReader(FunctorId pred, SubgoalId reader) {
  std::lock_guard<std::mutex> lock(structure_mutex_);
  pred_readers_[pred].insert(reader);
}

size_t TableSpace::InvalidateForPredicate(FunctorId pred) {
  std::lock_guard<std::mutex> lock(structure_mutex_);
  auto it = pred_readers_.find(pred);
  if (it == pred_readers_.end()) return 0;
  size_t count = 0;
  std::vector<SubgoalId> work(it->second.begin(), it->second.end());
  std::unordered_set<SubgoalId> visited(work.begin(), work.end());
  while (!work.empty()) {
    SubgoalId id = work.back();
    work.pop_back();
    Subgoal& sg = subgoals_[id];
    if (sg.state_acquire() == SubgoalState::kDisposed) continue;
    // Incomplete tables are flagged too: they are mid-evaluation and may
    // have read the predicate before the update, so they complete as
    // already-invalid and re-evaluate on their next call. Already invalid
    // tables still propagate: edges may have been added since they were
    // first flagged.
    if (!sg.invalid.load(std::memory_order_relaxed)) {
      sg.invalid.store(true, std::memory_order_release);
      if (sg.state_acquire() == SubgoalState::kComplete) ++count;
    }
    for (SubgoalId dep : sg.dependents) {
      if (visited.insert(dep).second) work.push_back(dep);
    }
  }
  stats_.tables_invalidated += count;
  return count;
}

size_t TableSpace::InvalidateAll() {
  size_t count = 0;
  size_t n = subgoals_.size();
  for (size_t i = 0; i < n; ++i) {
    Subgoal& sg = subgoals_[i];
    if (sg.state_acquire() == SubgoalState::kComplete &&
        !sg.invalid.load(std::memory_order_relaxed)) {
      sg.invalid.store(true, std::memory_order_release);
      ++count;
    }
  }
  stats_.tables_invalidated += count;
  return count;
}

void TableSpace::ResetForReevaluation(SubgoalId id, uint64_t batch_id) {
  Subgoal& sg = subgoals_[id];
  // Same publication order as Dispose: leave kComplete first, then swap.
  sg.state.store(SubgoalState::kIncomplete, std::memory_order_release);
  RetireAnswers(sg);
  sg.invalid.store(false, std::memory_order_release);
  sg.batch_id = batch_id;
  ++stats_.tables_reevaluated;
}

void TableSpace::ReleaseRetiredAnswers() {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  size_t before = retired_answers_.size();
  retired_answers_.erase(
      std::remove_if(retired_answers_.begin(), retired_answers_.end(),
                     [this](const Retired& r) {
                       return epochs_.SafeToReclaim(r.stamp);
                     }),
      retired_answers_.end());
  stats_.epochs_retired += before - retired_answers_.size();
}

size_t TableSpace::num_retired_answers() const {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  return retired_answers_.size();
}

void TableSpace::AcquireShards(ShardMask mask) {
  Perturb("shards.acquire");
  std::unique_lock<std::mutex> lock(sched_mutex_);
  sched_cv_.wait(lock, [&] { return (shards_busy_ & mask) == 0; });
  shards_busy_ |= mask;
  lock.unlock();
  Perturb("shards.acquired");
}

bool TableSpace::TryAcquireShards(ShardMask mask) {
  Perturb("shards.try");
  std::lock_guard<std::mutex> lock(sched_mutex_);
  if ((shards_busy_ & mask) != 0) return false;
  shards_busy_ |= mask;
  return true;
}

void TableSpace::ReleaseShards(ShardMask mask) {
  Perturb("shards.release");
  {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    shards_busy_ &= ~mask;
  }
  sched_cv_.notify_all();
}

ShardMask TableSpace::BusyShards() const {
  std::lock_guard<std::mutex> lock(sched_mutex_);
  return shards_busy_;
}

void TableSpace::WaitUntilComplete(SubgoalId id) {
  Perturb("completion.park");
  std::unique_lock<std::mutex> lock(completion_mutex_);
  completion_cv_.wait(lock, [&] {
    return subgoals_[id].state_acquire() != SubgoalState::kIncomplete;
  });
}

void TableSpace::NotifyCompletion() {
  Perturb("completion.notify");
  // Taking the mutex (even empty) orders the preceding state stores before
  // the notify with respect to a parker between its predicate check and its
  // wait — the classic lost-wakeup guard.
  { std::lock_guard<std::mutex> lock(completion_mutex_); }
  completion_cv_.notify_all();
}

size_t TableSpace::total_answers() const {
  std::lock_guard<std::mutex> lock(structure_mutex_);
  size_t total = 0;
  size_t n = subgoals_.size();
  for (size_t i = 0; i < n; ++i) {
    if (const AnswerTable* t = subgoals_[i].table()) total += t->live_size();
  }
  return total;
}

size_t TableSpace::total_trie_nodes() const {
  std::lock_guard<std::mutex> lock(structure_mutex_);
  size_t total = 0;
  size_t n = subgoals_.size();
  for (size_t i = 0; i < n; ++i) {
    if (const AnswerTable* t = subgoals_[i].table()) total += t->trie_nodes();
  }
  return total;
}

size_t TableSpace::table_bytes() const {
  std::lock_guard<std::mutex> lock(structure_mutex_);
  size_t total = interns_.bytes() + call_trie_.bytes();
  size_t n = subgoals_.size();
  total += subgoals_.bytes();
  for (size_t i = 0; i < n; ++i) {
    const Subgoal& sg = subgoals_[i];
    if (const AnswerTable* t = sg.table()) total += t->bytes();
    total += sg.call.cells.capacity() * sizeof(Word);
    total += sg.dependents.capacity() * sizeof(SubgoalId);
  }
  std::lock_guard<std::mutex> retired_lock(retired_mutex_);
  for (const Retired& r : retired_answers_) total += r.table->bytes();
  return total;
}

}  // namespace xsb
