#ifndef XSB_XSB_ENGINE_H_
#define XSB_XSB_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "base/status.h"
#include "db/loader.h"
#include "db/program.h"
#include "engine/machine.h"
#include "tabling/evaluator.h"
#include "term/store.h"

namespace xsb {

// One answer to a query: the query's named variables with their bindings
// rendered as readable terms.
struct Answer {
  std::vector<std::pair<std::string, std::string>> bindings;

  // The binding of `variable`, or "" if absent.
  std::string operator[](std::string_view variable) const;
  std::string ToString() const;  // "X = 1, Y = f(a)"
};

// The in-memory deductive database engine: the public face of this library.
//
//   xsb::Engine engine;
//   engine.ConsultString(
//       ":- table path/2.\n"
//       "path(X,Y) :- edge(X,Y).\n"
//       "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
//       "edge(1,2). edge(2,3). edge(3,1).\n");
//   engine.ForEach("path(1, X)", [](const xsb::Answer& answer) {
//     std::cout << answer.ToString() << "\n";
//     return true;  // keep enumerating
//   });
//
// The engine evaluates tabled predicates with SLG resolution (finite and
// non-redundant on datalog) and everything else with Prolog's SLDNF, exactly
// as the paper describes. HiLog syntax is accepted throughout.
class Engine {
 public:
  struct Options {
    bool answer_trie = true;        // trie-based answer tables (default);
                                    // false = hash-set store (ablation)
    bool early_completion = false;  // complete ground calls at first answer
    bool strict_analysis = false;   // consults fail on error-severity
                                    // analysis diagnostics (non-stratified
                                    // programs) instead of deferring to the
                                    // runtime checks
    bool incremental = true;        // maintain tables across updates to
                                    // :- incremental predicates; false =
                                    // abolish-everything baseline
  };

  Engine();
  explicit Engine(Options options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Loading ---------------------------------------------------------------

  // Consults HiLog source text (clauses + directives).
  Status ConsultString(std::string_view text);
  Status ConsultFile(const std::string& path);

  // Bulk-loads "v1,v2,..." lines as name/arity facts (the formatted read of
  // section 4.6). Returns the number of facts.
  Result<size_t> LoadFactsFormattedFile(const std::string& path,
                                        const std::string& name, int arity);

  // Binary object files: save the named predicates ({} = all), reload later.
  Status SaveObjectFile(const std::string& path);
  Result<size_t> LoadObjectFile(const std::string& path);

  // Applies the HiLog call-specialization pass (section 4.7).
  Status SpecializeHiLog();

  // --- Queries ----------------------------------------------------------------

  // Enumerates answers tuple-at-a-time; the callback returns false to stop.
  Status ForEach(std::string_view goal,
                 const std::function<bool(const Answer&)>& on_answer);

  // True if at least one solution exists.
  Result<bool> Holds(std::string_view goal);

  // Number of solutions.
  Result<size_t> Count(std::string_view goal);

  // All answers, materialized.
  Result<std::vector<Answer>> FindAll(std::string_view goal);

  // Drops all tables (answers will be recomputed on the next call).
  void AbolishAllTables();

  // --- Analysis ---------------------------------------------------------------

  // Runs the consult-time program analyzer on demand (the C++ face of the
  // analyze/1 builtin) and republishes the stratification verdict.
  analysis::AnalysisResult Analyze(
      const analysis::AnalyzeOptions& options = analysis::AnalyzeOptions());

  // --- Escape hatches for benchmarks and tests --------------------------------

  TermStore& store() { return *store_; }
  Program& program() { return *program_; }
  Machine& machine() { return *machine_; }
  Evaluator& evaluator() { return *evaluator_; }
  SymbolTable& symbols() { return *symbols_; }

 private:
  bool strict_analysis_ = false;
  // Depth of nested ForEach calls: retired answer tables (frozen snapshots
  // kept alive for open cursors) are released when the outermost query ends.
  int query_depth_ = 0;
  std::unique_ptr<SymbolTable> symbols_;
  std::unique_ptr<TermStore> store_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Evaluator> evaluator_;
};

}  // namespace xsb

#endif  // XSB_XSB_ENGINE_H_
