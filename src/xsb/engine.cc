#include "xsb/engine.h"

#include "db/objfile.h"
#include "hilog/hilog.h"
#include "parser/reader.h"
#include "parser/writer.h"

namespace xsb {

std::string Answer::operator[](std::string_view variable) const {
  for (const auto& [name, value] : bindings) {
    if (name == variable) return value;
  }
  return std::string();
}

std::string Answer::ToString() const {
  if (bindings.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += ", ";
    out += bindings[i].first + " = " + bindings[i].second;
  }
  return out;
}

Engine::Engine() : Engine(Options()) {}

Engine::Engine(Options options)
    : strict_analysis_(options.strict_analysis),
      symbols_(std::make_unique<SymbolTable>()),
      store_(std::make_unique<TermStore>(symbols_.get())),
      program_(std::make_unique<Program>(symbols_.get())),
      machine_(std::make_unique<Machine>(store_.get(), program_.get())) {
  Evaluator::Options eval_options;
  eval_options.answer_trie = options.answer_trie;
  eval_options.early_completion = options.early_completion;
  eval_options.incremental = options.incremental;
  evaluator_ = std::make_unique<Evaluator>(machine_.get(), eval_options);
}

Engine::~Engine() = default;

Status Engine::ConsultString(std::string_view text) {
  Loader loader(store_.get(), program_.get());
  loader.set_strict(strict_analysis_);
  return loader.ConsultString(text);
}

Status Engine::ConsultFile(const std::string& path) {
  Loader loader(store_.get(), program_.get());
  loader.set_strict(strict_analysis_);
  return loader.ConsultFile(path);
}

Result<size_t> Engine::LoadFactsFormattedFile(const std::string& path,
                                              const std::string& name,
                                              int arity) {
  Loader loader(store_.get(), program_.get());
  return loader.LoadFactsFormattedFile(path, name, arity);
}

Status Engine::SaveObjectFile(const std::string& path) {
  return xsb::SaveObjectFile(*program_, {}, path);
}

Result<size_t> Engine::LoadObjectFile(const std::string& path) {
  return xsb::LoadObjectFile(program_.get(), path);
}

Status Engine::SpecializeHiLog() {
  Result<hilog::SpecializeStats> stats =
      hilog::Specialize(store_.get(), program_.get());
  if (!stats.ok()) return stats.status();
  return Status::Ok();
}

Status Engine::ForEach(std::string_view goal,
                       const std::function<bool(const Answer&)>& on_answer) {
  std::string buffer(goal);
  buffer += " .";
  Reader reader(store_.get(), program_->ops(), buffer,
                program_->hilog_atoms());
  Result<Word> parsed = reader.ReadClause();
  if (!parsed.ok()) return parsed.status();
  std::vector<std::pair<std::string, Word>> names = reader.var_names();

  size_t trail = store_->TrailMark();
  size_t heap = store_->HeapMark();
  ++query_depth_;
  Status status = machine_->Solve(parsed.value(), [&]() {
    Answer answer;
    answer.bindings.reserve(names.size());
    for (const auto& [name, cell] : names) {
      answer.bindings.emplace_back(
          name, WriteTerm(*store_, *program_->ops(), cell));
    }
    return on_answer(answer) ? SolveAction::kContinue : SolveAction::kStop;
  });
  --query_depth_;
  store_->UndoTrail(trail);
  store_->TruncateHeap(heap);
  // Frozen answer snapshots (tables retired by updates or abolishes while a
  // cursor was open) can only be referenced by choice points of some live
  // query; once the outermost query unwinds they are garbage.
  if (query_depth_ == 0) evaluator_->tables().ReleaseRetiredAnswers();
  return status;
}

Result<bool> Engine::Holds(std::string_view goal) {
  bool found = false;
  Status status = ForEach(goal, [&found](const Answer&) {
    found = true;
    return false;
  });
  if (!status.ok()) return status;
  return found;
}

Result<size_t> Engine::Count(std::string_view goal) {
  size_t count = 0;
  Status status = ForEach(goal, [&count](const Answer&) {
    ++count;
    return true;
  });
  if (!status.ok()) return status;
  return count;
}

Result<std::vector<Answer>> Engine::FindAll(std::string_view goal) {
  std::vector<Answer> answers;
  Status status = ForEach(goal, [&answers](const Answer& answer) {
    answers.push_back(answer);
    return true;
  });
  if (!status.ok()) return status;
  return answers;
}

void Engine::AbolishAllTables() {
  evaluator_->AbolishAllTables();
  if (query_depth_ == 0) evaluator_->tables().ReleaseRetiredAnswers();
}

analysis::AnalysisResult Engine::Analyze(
    const analysis::AnalyzeOptions& options) {
  analysis::AnalysisResult result = analysis::Analyze(*program_, options);
  analysis::PublishVerdict(program_.get(), result);
  analysis::PublishIncrementalDeps(program_.get(), result);
  analysis::PublishEvalShards(program_.get(), result);
  // Publishing an empty mode set would clear previously published modes,
  // so skip it when the caller disabled the pass.
  if (options.mode_pass) analysis::PublishModes(program_.get(), result);
  return result;
}

}  // namespace xsb
