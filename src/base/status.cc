#include "base/status.h"

namespace xsb {
namespace {

const char* CodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kParse:
      return "PARSE";
    case ErrorCode::kType:
      return "TYPE";
    case ErrorCode::kInstantiation:
      return "INSTANTIATION";
    case ErrorCode::kExistence:
      return "EXISTENCE";
    case ErrorCode::kPermission:
      return "PERMISSION";
    case ErrorCode::kStratification:
      return "STRATIFICATION";
    case ErrorCode::kResource:
      return "RESOURCE";
    case ErrorCode::kInvalid:
      return "INVALID";
    case ErrorCode::kIo:
      return "IO";
    case ErrorCode::kRetryEvaluation:
      return "RETRY_EVALUATION";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

Status ParseError(std::string message) {
  return Status(ErrorCode::kParse, std::move(message));
}
Status TypeError(std::string message) {
  return Status(ErrorCode::kType, std::move(message));
}
Status InstantiationError(std::string message) {
  return Status(ErrorCode::kInstantiation, std::move(message));
}
Status ExistenceError(std::string message) {
  return Status(ErrorCode::kExistence, std::move(message));
}
Status PermissionError(std::string message) {
  return Status(ErrorCode::kPermission, std::move(message));
}
Status StratificationError(std::string message) {
  return Status(ErrorCode::kStratification, std::move(message));
}
Status InvalidError(std::string message) {
  return Status(ErrorCode::kInvalid, std::move(message));
}
Status IoError(std::string message) {
  return Status(ErrorCode::kIo, std::move(message));
}

}  // namespace xsb
