#ifndef XSB_BASE_CONCURRENT_H_
#define XSB_BASE_CONCURRENT_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace xsb {

// Building blocks for the shared-table serving layer: append-only storage
// whose *read* side is wait-free and never takes a lock, while the *write*
// side is driven by a single mutator at a time (the holder of the table
// space's evaluation lock, or an externally sharded lock).
//
// The shared invariant, frozen here as API: once an element is published it
// never moves and is never mutated except through fields that are themselves
// atomic. Growth allocates new blocks; it never relocates old ones, so a
// reader holding an index (or a pointer) stays sound across any amount of
// concurrent appending.

// Append-only arena over geometrically growing blocks. Indices are dense and
// stable; block 0 holds 2^kBaseShift elements and each further block doubles,
// so element `i` is located with one bit_width and two loads — close enough
// to a vector index that the tabling hot path keeps its cost profile.
//
// Thread contract: any number of concurrent readers (operator[], size) race
// safely against ONE appender (EmplaceBack/AppendRun). Appenders must be
// externally serialized. Clear/destruction require quiescence.
template <typename T, size_t kBaseShift = 9>
class ConcurrentArena {
 public:
  static constexpr size_t kBase = size_t{1} << kBaseShift;
  static constexpr size_t kMaxBlocks = 40;

  ConcurrentArena() = default;
  ConcurrentArena(const ConcurrentArena&) = delete;
  ConcurrentArena& operator=(const ConcurrentArena&) = delete;
  ~ConcurrentArena() { DestroyAll(/*free_blocks=*/true); }

  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const {
    size_t b, off;
    Locate(i, &b, &off);
    return blocks_[b].load(std::memory_order_acquire)[off];
  }
  T& operator[](size_t i) {
    size_t b, off;
    Locate(i, &b, &off);
    return blocks_[b].load(std::memory_order_acquire)[off];
  }

  // Appends a new element (writer only); returns its index. The element is
  // fully constructed before the new size is released to readers.
  template <typename... Args>
  size_t EmplaceBack(Args&&... args) {
    size_t i = size_.load(std::memory_order_relaxed);
    size_t b, off;
    Locate(i, &b, &off);
    T* block = EnsureBlock(b);
    ::new (static_cast<void*>(block + off)) T(std::forward<Args>(args)...);
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

  T& back() { return (*this)[size_.load(std::memory_order_relaxed) - 1]; }

  // Appends `n` elements as one contiguous run (writer only); returns the
  // index of the first. Runs never straddle block boundaries: when the
  // current block cannot fit the run, the remainder of the block is filled
  // with value-initialized padding (readers never index padding — callers
  // hold run starts, not raw sizes). Requires n <= capacity of the block the
  // run lands in (any n <= kBase always fits).
  size_t AppendRun(const T* src, size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (n == 0) return size_.load(std::memory_order_relaxed);
    size_t i = size_.load(std::memory_order_relaxed);
    size_t b, off;
    Locate(i, &b, &off);
    if (off + n > BlockCapacity(b)) {
      // Pad out the block; the run starts at the next block's base.
      size_t pad = BlockCapacity(b) - off;
      T* block = EnsureBlock(b);
      for (size_t k = 0; k < pad; ++k) {
        ::new (static_cast<void*>(block + off + k)) T();
      }
      i += pad;
      Locate(i, &b, &off);
    }
    T* block = EnsureBlock(b);
    for (size_t k = 0; k < n; ++k) {
      ::new (static_cast<void*>(block + off + k)) T(src[k]);
    }
    size_.store(i + n, std::memory_order_release);
    return i;
  }

  // Pointer to the element at `i`; valid forever (blocks never move). For
  // contiguous runs written by AppendRun, the whole run is reachable.
  const T* at(size_t i) const {
    size_t b, off;
    Locate(i, &b, &off);
    return blocks_[b].load(std::memory_order_acquire) + off;
  }

  // Destroys all elements and resets to empty, keeping the first block
  // allocated. Writer only, and only when no reader can be live (the
  // single-threaded engine path between queries).
  void Clear() {
    DestroyAll(/*free_blocks=*/false);
    size_.store(0, std::memory_order_release);
  }

  // Approximate resident bytes (allocated blocks).
  size_t bytes() const {
    size_t total = 0;
    for (size_t b = 0; b < kMaxBlocks; ++b) {
      if (blocks_[b].load(std::memory_order_acquire) == nullptr) break;
      total += BlockCapacity(b) * sizeof(T);
    }
    return total;
  }

 private:
  static constexpr size_t BlockCapacity(size_t b) { return kBase << b; }

  static void Locate(size_t i, size_t* b, size_t* off) {
    size_t q = (i >> kBaseShift) + 1;
    size_t bb = static_cast<size_t>(std::bit_width(q)) - 1;
    *b = bb;
    *off = i - (((size_t{1} << bb) - 1) << kBaseShift);
  }

  T* EnsureBlock(size_t b) {
    T* block = blocks_[b].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = static_cast<T*>(::operator new(
          BlockCapacity(b) * sizeof(T), std::align_val_t{alignof(T)}));
      blocks_[b].store(block, std::memory_order_release);
    }
    return block;
  }

  void DestroyAll(bool free_blocks) {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      size_t n = size_.load(std::memory_order_relaxed);
      for (size_t i = 0; i < n; ++i) (*this)[i].~T();
    }
    if (free_blocks) {
      for (size_t b = 0; b < kMaxBlocks; ++b) {
        T* block = blocks_[b].load(std::memory_order_relaxed);
        if (block != nullptr) {
          ::operator delete(static_cast<void*>(block),
                            std::align_val_t{alignof(T)});
        }
        blocks_[b].store(nullptr, std::memory_order_relaxed);
      }
    } else {
      for (size_t b = 1; b < kMaxBlocks; ++b) {
        T* block = blocks_[b].load(std::memory_order_relaxed);
        if (block != nullptr) {
          ::operator delete(static_cast<void*>(block),
                            std::align_val_t{alignof(T)});
        }
        blocks_[b].store(nullptr, std::memory_order_relaxed);
      }
    }
  }

  std::atomic<size_t> size_{0};
  std::atomic<T*> blocks_[kMaxBlocks] = {};
};

// Open-addressing hash map from a 64-bit key to a 32-bit value with
// lock-free reads and single-writer inserts; no deletion. Used for the
// escalated child indexes of high-fanout trie nodes, which are probed
// lock-free by concurrent readers while the evaluation-lock holder inserts.
//
// Read contract: a Find that returns kNotFound is *advisory* — it may miss a
// key inserted concurrently (the caller falls back to a locked re-check); a
// Find that returns a value is definitive. Growth copies into a fresh slot
// array and publishes it; superseded arrays are retired until destruction,
// so a reader probing a stale array sees (at worst) an advisory miss.
class AtomicKeyMap {
 public:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};  // never a valid key
  static constexpr uint32_t kNotFound = 0xffffffffu;

  explicit AtomicKeyMap(size_t initial_capacity = 16) {
    current_.store(NewTable(initial_capacity), std::memory_order_release);
  }
  AtomicKeyMap(const AtomicKeyMap&) = delete;
  AtomicKeyMap& operator=(const AtomicKeyMap&) = delete;
  ~AtomicKeyMap() {
    delete current_.load(std::memory_order_relaxed);
    for (Table* t : retired_) delete t;
  }

  uint32_t Find(uint64_t key) const {
    const Table* t = current_.load(std::memory_order_acquire);
    size_t mask = t->capacity - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      uint64_t k = t->slots[i].key.load(std::memory_order_acquire);
      if (k == key) return t->slots[i].val.load(std::memory_order_relaxed);
      if (k == kEmptyKey) return kNotFound;
    }
  }

  // Writer only. `key` must not already be present.
  void Insert(uint64_t key, uint32_t val) {
    Table* t = current_.load(std::memory_order_relaxed);
    if ((t->used + 1) * 10 >= t->capacity * 7) t = Grow(t);
    InsertInto(t, key, val);
    ++t->used;
  }

  size_t size() const {
    return current_.load(std::memory_order_acquire)->used;
  }
  size_t bytes() const {
    size_t total = sizeof(*this);
    const Table* t = current_.load(std::memory_order_acquire);
    total += sizeof(Table) + t->capacity * sizeof(Slot);
    for (const Table* r : retired_) {
      total += sizeof(Table) + r->capacity * sizeof(Slot);
    }
    return total;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> key{kEmptyKey};
    std::atomic<uint32_t> val{0};
  };
  struct Table {
    size_t capacity = 0;  // power of two
    size_t used = 0;      // writer-side bookkeeping
    std::unique_ptr<Slot[]> slots;
  };

  static uint64_t Hash(uint64_t key) {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 29;
    return key;
  }

  static Table* NewTable(size_t capacity) {
    Table* t = new Table;
    t->capacity = std::bit_ceil(capacity < 16 ? size_t{16} : capacity);
    t->slots = std::make_unique<Slot[]>(t->capacity);
    return t;
  }

  static void InsertInto(Table* t, uint64_t key, uint32_t val) {
    size_t mask = t->capacity - 1;
    for (size_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      if (t->slots[i].key.load(std::memory_order_relaxed) == kEmptyKey) {
        // Value first, then the key with release: a reader that sees the
        // key is guaranteed to see the value.
        t->slots[i].val.store(val, std::memory_order_relaxed);
        t->slots[i].key.store(key, std::memory_order_release);
        return;
      }
    }
  }

  Table* Grow(Table* old) {
    Table* bigger = NewTable(old->capacity * 2);
    bigger->used = old->used;
    for (size_t i = 0; i < old->capacity; ++i) {
      uint64_t k = old->slots[i].key.load(std::memory_order_relaxed);
      if (k != kEmptyKey) {
        InsertInto(bigger, k,
                   old->slots[i].val.load(std::memory_order_relaxed));
      }
    }
    retired_.push_back(old);
    current_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<Table*> current_{nullptr};
  // Superseded slot arrays, kept until destruction: total memory is bounded
  // by 2x the live table (geometric growth), and retiring rather than
  // freeing is what lets readers probe without any lock.
  std::vector<Table*> retired_;
};

}  // namespace xsb

#endif  // XSB_BASE_CONCURRENT_H_
