#ifndef XSB_BASE_STATUS_H_
#define XSB_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace xsb {

// Error categories used across the engine. The public API reports failures
// through Status / Result<T> rather than C++ exceptions.
enum class ErrorCode {
  kOk = 0,
  kParse,            // syntax error in source text
  kType,             // wrong argument type to a builtin
  kInstantiation,    // argument insufficiently instantiated (e.g. X is Y)
  kExistence,        // unknown predicate called
  kPermission,       // e.g. asserting into a static predicate
  kStratification,   // program not modularly stratified under tnot
  kResource,         // limits exceeded
  kInvalid,          // malformed request to an API
  kIo,               // file errors
  kRetryEvaluation,  // internal: a tabled batch must restart under wider
                     // shard ownership (never surfaces through the API)
};

// A success-or-error value; cheap to copy on the success path.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CATEGORY: message" form.
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

Status ParseError(std::string message);
Status TypeError(std::string message);
Status InstantiationError(std::string message);
Status ExistenceError(std::string message);
Status PermissionError(std::string message);
Status StratificationError(std::string message);
Status InvalidError(std::string message);
Status IoError(std::string message);

// A value of type T or a Status describing why it is absent.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                 // NOLINT
  Result(Status status) : v_(std::move(status)) {}          // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T& value() { return std::get<T>(v_); }
  const Status& status() const { return std::get<Status>(v_); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace xsb

#endif  // XSB_BASE_STATUS_H_
