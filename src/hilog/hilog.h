#ifndef XSB_HILOG_HILOG_H_
#define XSB_HILOG_HILOG_H_

#include "base/status.h"
#include "db/program.h"
#include "term/store.h"

namespace xsb::hilog {

struct SpecializeStats {
  int predicates_specialized = 0;
  int calls_rewritten = 0;
};

// Compile-time specialization of known HiLog calls (section 4.7).
//
// When every clause of apply/N has a head whose functor position is a
// compound term with the same outer symbol f/k —
//
//   apply(path(G), X, Y) :- apply(G, X, Y).
//   apply(path(G), X, Y) :- apply(path(G), X, Z), apply(G, Z, Y).
//
// — the predicate is specialized into a first-order one:
//
//   apply(path(G), X, Y) :- 'apply$path'(G, X, Y).       % bridge
//   'apply$path'(G, X, Y) :- apply(G, X, Y).
//   'apply$path'(G, X, Y) :- 'apply$path'(G, X, Z), apply(G, Z, Y).
//
// and known calls apply(f(...), ...) anywhere in clause bodies are rewritten
// to the specialized predicate, removing the extra indirection level of the
// discrimination graph (Figure 4). A tabled apply/N transfers its tabling to
// the specialized predicate.
Result<SpecializeStats> Specialize(TermStore* store, Program* program);

}  // namespace xsb::hilog

#endif  // XSB_HILOG_HILOG_H_
