#include "hilog/hilog.h"

#include <map>
#include <vector>

namespace xsb::hilog {
namespace {

struct Specialization {
  FunctorId apply_functor;  // apply/N
  FunctorId inner_functor;  // f/k in functor position
  FunctorId specialized;    // 'apply$f/k' / (k + N - 1)
};

}  // namespace

Result<SpecializeStats> Specialize(TermStore* store, Program* program) {
  SymbolTable* symbols = store->symbols();
  SpecializeStats stats;
  AtomId apply_atom = symbols->apply();

  // 1. Identify specializable apply/N predicates: every live clause head has
  // a compound functor-position argument with one common outer symbol.
  std::map<FunctorId, Specialization> specs;
  for (const auto& [functor, pred] : program->predicates()) {
    if (symbols->FunctorAtom(functor) != apply_atom) continue;
    int arity = symbols->FunctorArity(functor);
    if (arity < 2 || pred->num_live_clauses() == 0) continue;
    bool ok = true;
    FunctorId common = 0;
    bool have_common = false;
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased) continue;
      const std::vector<Word>& cells = clause.term.cells;
      // cells[head_pos] is the apply/N functor cell; the functor-position
      // argument starts right after it.
      Word first = cells[clause.head_pos + 1];
      if (!IsFunctor(first)) {
        ok = false;
        break;
      }
      if (!have_common) {
        common = FunctorOf(first);
        have_common = true;
      } else if (common != FunctorOf(first)) {
        ok = false;
        break;
      }
    }
    if (!ok || !have_common) continue;
    int k = symbols->FunctorArity(common);
    std::string name = "apply$" +
                       symbols->AtomName(symbols->FunctorAtom(common)) + "/" +
                       std::to_string(k);
    FunctorId specialized = symbols->InternFunctor(
        symbols->InternAtom(name), k + arity - 1);
    specs.emplace(functor,
                  Specialization{functor, common, specialized});
  }
  if (specs.empty()) return stats;

  // Builds 'apply$f'(T1..Tk, A1..An-1) from apply(f(T..), A..).
  auto specialize_call = [&](Word goal, const Specialization& sp) -> Word {
    Word inner = store->Deref(store->Arg(goal, 0));
    std::vector<Word> args;
    int k = symbols->FunctorArity(sp.inner_functor);
    for (int i = 0; i < k; ++i) args.push_back(store->Arg(inner, i));
    int n = symbols->FunctorArity(sp.apply_functor);
    for (int i = 1; i < n; ++i) args.push_back(store->Arg(goal, i));
    return store->MakeStruct(sp.specialized, args);
  };

  // Rewrites known HiLog calls in goal position.
  auto rewrite = [&](auto&& self, Word goal) -> Word {
    Word g = store->Deref(goal);
    if (!IsStruct(g)) return g;
    FunctorId f = store->StructFunctor(g);
    const std::string& name = symbols->AtomName(symbols->FunctorAtom(f));
    int arity = symbols->FunctorArity(f);
    auto rebuild2 = [&]() {
      Word a = self(self, store->Arg(g, 0));
      Word b = self(self, store->Arg(g, 1));
      return store->MakeStruct(f, {a, b});
    };
    if ((name == "," || name == ";" || name == "->") && arity == 2) {
      return rebuild2();
    }
    if ((name == "\\+" || name == "tnot" || name == "e_tnot" ||
         name == "once" || name == "call") &&
        arity == 1) {
      return store->MakeStruct(f, {self(self, store->Arg(g, 0))});
    }
    if ((name == "findall" || name == "tfindall") && arity == 3) {
      return store->MakeStruct(f, {store->Arg(g, 0),
                                   self(self, store->Arg(g, 1)),
                                   store->Arg(g, 2)});
    }
    auto it = specs.find(f);
    if (it != specs.end()) {
      Word inner = store->Deref(store->Arg(g, 0));
      if (IsStruct(inner) &&
          store->StructFunctor(inner) == it->second.inner_functor) {
        ++stats.calls_rewritten;
        return specialize_call(g, it->second);
      }
    }
    return g;
  };

  // 2. Rewrite every clause of every predicate.
  FunctorId neck2 = symbols->InternFunctor(symbols->neck(), 2);
  std::vector<std::pair<Predicate*, std::vector<Word>>> rebuilt;
  for (const auto& [functor, pred] : program->predicates()) {
    if (pred->num_live_clauses() == 0) continue;
    auto spec_it = specs.find(functor);
    std::vector<Word> new_clauses;
    bool changed = spec_it != specs.end();
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased) continue;
      Word term = Unflatten(store, clause.term);
      Word head = term;
      Word body = 0;
      if (clause.is_rule) {
        Word d = store->Deref(term);
        head = store->Deref(store->Arg(d, 0));
        body = store->Arg(d, 1);
      }
      if (spec_it != specs.end()) {
        head = specialize_call(head, spec_it->second);
      }
      Word new_term = head;
      if (clause.is_rule) {
        int before = stats.calls_rewritten;
        Word new_body = rewrite(rewrite, body);
        if (stats.calls_rewritten != before) changed = true;
        new_term = store->MakeStruct(neck2, {head, new_body});
      }
      new_clauses.push_back(new_term);
    }
    if (changed) rebuilt.emplace_back(pred.get(), std::move(new_clauses));
  }

  for (auto& [pred, clauses] : rebuilt) {
    pred->ClearClauses();
    for (Word clause : clauses) {
      Status s = program->AddClauseTerm(*store, clause);
      if (!s.ok()) return s;
    }
  }

  // 3. Bridges and tabling transfer.
  for (const auto& [functor, sp] : specs) {
    Predicate* apply_pred = program->Lookup(functor);
    int k = symbols->FunctorArity(sp.inner_functor);
    int n = symbols->FunctorArity(functor);
    std::vector<Word> inner_vars, all_args;
    for (int i = 0; i < k; ++i) inner_vars.push_back(store->MakeVar());
    Word inner = store->MakeStruct(sp.inner_functor, inner_vars);
    std::vector<Word> head_args{inner};
    all_args = inner_vars;
    for (int i = 1; i < n; ++i) {
      Word v = store->MakeVar();
      head_args.push_back(v);
      all_args.push_back(v);
    }
    Word head = store->MakeStruct(functor, head_args);
    Word body = store->MakeStruct(sp.specialized, all_args);
    Word bridge = store->MakeStruct(neck2, {head, body});
    Status s = program->AddClauseTerm(*store, bridge);
    if (!s.ok()) return s;
    if (apply_pred->tabled()) {
      program->LookupOrCreate(sp.specialized)->set_tabled(true);
      apply_pred->set_tabled(false);
    }
    ++stats.predicates_specialized;
  }
  return stats;
}

}  // namespace xsb::hilog
