#include "analysis/modes.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

#include "analysis/analyzer.h"
#include "db/index.h"
#include "engine/builtins.h"

namespace xsb::analysis {

Inst JoinInst(Inst a, Inst b) {
  if (a == b) return a;
  if ((a == Inst::kGround && b == Inst::kNonvar) ||
      (a == Inst::kNonvar && b == Inst::kGround)) {
    return Inst::kNonvar;
  }
  return Inst::kAny;
}

bool InstLeq(Inst a, Inst b) {
  if (a == b || b == Inst::kAny) return true;
  return a == Inst::kGround && b == Inst::kNonvar;
}

Inst AbsUnifyInst(Inst a, Inst b) {
  if (a == Inst::kGround || b == Inst::kGround) return Inst::kGround;
  if (a == Inst::kNonvar || b == Inst::kNonvar) return Inst::kNonvar;
  if (a == Inst::kFree && b == Inst::kFree) return Inst::kFree;
  return Inst::kAny;
}

Inst SpecMeetInst(Inst a, Inst b) {
  if (a == b) return a;
  if (a == Inst::kAny) return b;
  if (b == Inst::kAny) return a;
  if ((a == Inst::kGround && b == Inst::kNonvar) ||
      (a == Inst::kNonvar && b == Inst::kGround)) {
    return Inst::kGround;
  }
  return Inst::kAny;  // free vs bound: no single target fits both
}

const char* InstName(Inst inst) {
  switch (inst) {
    case Inst::kGround:
      return "ground";
    case Inst::kNonvar:
      return "nonvar";
    case Inst::kFree:
      return "free";
    case Inst::kAny:
      return "any";
  }
  return "any";
}

std::string FormatInstVec(const InstVec& vec) {
  std::string out = "(";
  for (size_t i = 0; i < vec.size(); ++i) {
    if (i > 0) out += ", ";
    out += InstName(vec[i]);
  }
  out += ")";
  return out;
}

namespace {

// A site-pattern budget per predicate, beyond which new call shapes collapse
// into the all-`any` top pattern (patterns[0]). Keeps the tabulation linear
// in program size; collapsing is a sound over-approximation.
constexpr size_t kMaxSitePatterns = 8;

uint64_t PatternKey(FunctorId f, size_t pix) {
  return (static_cast<uint64_t>(f) << 8) | static_cast<uint64_t>(pix);
}

class ModeAnalyzer {
 public:
  ModeAnalyzer(const Program& program, const AnalysisResult& analysis,
               const std::vector<ModeEntry>& entries)
      : program_(program),
        symbols_(*program.symbols()),
        analysis_(analysis),
        entries_(entries),
        builtins_(program.symbols()) {}

  ModeResult Run();

 private:
  using WorkItem = std::tuple<int, FunctorId, size_t>;  // (scc, f, pattern)

  int SccOf(FunctorId f) const {
    auto it = analysis_.scc_of.find(f);
    return it == analysis_.scc_of.end()
               ? static_cast<int>(analysis_.sccs.size())
               : it->second;
  }

  void Enqueue(FunctorId f, size_t pix) {
    worklist_.insert(WorkItem{SccOf(f), f, pix});
  }

  void ComputeDemands(FunctorId f, const Predicate& pred);
  void DemandWalk(size_t pos, std::vector<bool>* gen,
                  const std::vector<std::vector<int>>& head_pos_of,
                  std::vector<bool>* demanded);
  void SetVarsGen(std::vector<bool>* gen, size_t pos) const {
    size_t end = Skip(pos);
    for (size_t i = pos; i < end; ++i) {
      if (IsLocal(Cells()[i])) (*gen)[PayloadOf(Cells()[i])] = true;
    }
  }

  void Visit(FunctorId f, size_t pix);
  bool VisitClause(const Clause& clause, const InstVec& call, InstVec* out);
  bool WalkGoal(size_t pos);
  bool WalkBranchJoin(size_t first, size_t second_start, bool ite);
  bool UserCall(FunctorId f, size_t pos);
  size_t GetPattern(FunctorId callee, const InstVec& call, SourceSpan origin);

  Inst InstOfTerm(size_t pos) const;
  void ApplyInstToArg(size_t pos, Inst inst);
  void SetVars(size_t pos, Inst inst);
  void GroundVars(size_t pos);
  void Finalize();

  const std::vector<Word>& Cells() const { return cur_clause_->term.cells; }
  size_t Skip(size_t pos) const {
    return SkipFlatSubterm(symbols_, Cells(), pos);
  }

  const Program& program_;
  SymbolTable& symbols_;  // non-const: atom goals intern arity-0 functors
  const AnalysisResult& analysis_;
  const std::vector<ModeEntry>& entries_;
  BuiltinRegistry builtins_;
  ModeResult result_;

  std::set<WorkItem> worklist_;
  // (callee, callee pattern) -> callers to re-visit when its success grows.
  std::unordered_map<uint64_t, std::set<std::pair<FunctorId, size_t>>> deps_;
  std::set<std::tuple<FunctorId, FunctorId, int>> reported_violations_;

  // Current visit.
  FunctorId cur_f_ = kNoFunctor;
  size_t cur_pix_ = 0;
  const Clause* cur_clause_ = nullptr;
  InstVec state_;  // per clause-local variable
  std::vector<std::pair<FunctorId, size_t>> new_calls_;
  bool collect_callees_ = false;
  std::vector<FunctorId> cur_clause_callees_;
};

Inst ModeAnalyzer::InstOfTerm(size_t pos) const {
  Word w = Cells()[pos];
  if (IsLocal(w)) return state_[PayloadOf(w)];
  if (!IsFunctor(w)) return Inst::kGround;  // atom or int
  size_t end = SkipFlatSubterm(symbols_, Cells(), pos);
  bool all_ground = true;
  for (size_t i = pos + 1; i < end; ++i) {
    if (IsLocal(Cells()[i]) &&
        state_[PayloadOf(Cells()[i])] != Inst::kGround) {
      all_ground = false;
      break;
    }
  }
  return all_ground ? Inst::kGround : Inst::kNonvar;
}

void ModeAnalyzer::ApplyInstToArg(size_t pos, Inst inst) {
  Word w = Cells()[pos];
  if (IsLocal(w)) {
    uint64_t v = PayloadOf(w);
    state_[v] = AbsUnifyInst(state_[v], inst);
    return;
  }
  if (!IsFunctor(w)) return;  // atomic: nothing to refine
  if (inst == Inst::kFree) return;  // the free side gets bound, not ours
  size_t end = Skip(pos);
  for (size_t i = pos + 1; i < end; ++i) {
    if (!IsLocal(Cells()[i])) continue;
    uint64_t v = PayloadOf(Cells()[i]);
    state_[v] = AbsUnifyInst(
        state_[v], inst == Inst::kGround ? Inst::kGround : Inst::kAny);
  }
}

void ModeAnalyzer::SetVars(size_t pos, Inst inst) {
  size_t end = Skip(pos);
  for (size_t i = pos; i < end; ++i) {
    if (!IsLocal(Cells()[i])) continue;
    uint64_t v = PayloadOf(Cells()[i]);
    state_[v] = AbsUnifyInst(state_[v], inst);
  }
}

void ModeAnalyzer::GroundVars(size_t pos) {
  size_t end = Skip(pos);
  for (size_t i = pos; i < end; ++i) {
    if (IsLocal(Cells()[i])) state_[PayloadOf(Cells()[i])] = Inst::kGround;
  }
}

size_t ModeAnalyzer::GetPattern(FunctorId callee, const InstVec& call,
                                SourceSpan origin) {
  PredModes& pm = result_.preds[callee];
  for (size_t i = 0; i < pm.patterns.size(); ++i) {
    if (pm.patterns[i].call == call) {
      if (i > 0) pm.patterns[i].from_site = true;
      return i;
    }
  }
  if (pm.patterns.size() > kMaxSitePatterns) return 0;  // budget spent
  ModePattern pat;
  pat.call = call;
  pat.from_site = true;
  pat.origin = origin;
  pm.patterns.push_back(std::move(pat));
  size_t pix = pm.patterns.size() - 1;
  Enqueue(callee, pix);
  return pix;
}

bool ModeAnalyzer::UserCall(FunctorId f, size_t pos) {
  int arity = symbols_.FunctorArity(f);
  InstVec cv(static_cast<size_t>(arity));
  std::vector<size_t> argpos(static_cast<size_t>(arity));
  size_t arg = pos + 1;
  for (int i = 0; i < arity; ++i) {
    argpos[static_cast<size_t>(i)] = arg;
    cv[static_cast<size_t>(i)] = InstOfTerm(arg);
    arg = Skip(arg);
  }

  // M003: a definitely-free variable flowing into a position the callee's
  // every clause demands bound (it feeds arithmetic before any generator).
  auto dit = result_.preds.find(f);
  if (dit != result_.preds.end()) {
    const std::vector<bool>& dem = dit->second.demands_ground;
    for (int i = 0; i < arity && static_cast<size_t>(i) < dem.size(); ++i) {
      if (dem[static_cast<size_t>(i)] &&
          cv[static_cast<size_t>(i)] == Inst::kFree &&
          reported_violations_.insert({cur_f_, f, i + 1}).second) {
        result_.violations.push_back(
            ModeViolation{cur_f_, f, i + 1, cur_clause_->span});
      }
    }
  }

  const Predicate* pred = program_.Lookup(f);
  bool defined = pred != nullptr && pred->num_live_clauses() > 0;
  if (collect_callees_ && defined) cur_clause_callees_.push_back(f);
  if (!defined) return false;  // no clause can match: the call fails

  size_t cpix = GetPattern(f, cv, cur_clause_->span);
  deps_[PatternKey(f, cpix)].insert({cur_f_, cur_pix_});
  new_calls_.emplace_back(f, cpix);
  const ModePattern& cpat = result_.preds[f].patterns[cpix];
  if (!cpat.success_known) return false;  // bottom so far; dep re-visits us
  InstVec succ = cpat.success;  // copy: ApplyInstToArg never reallocates,
                                // but self-recursion may via GetPattern
  for (int i = 0; i < arity; ++i) {
    ApplyInstToArg(argpos[static_cast<size_t>(i)],
                   succ[static_cast<size_t>(i)]);
  }
  return true;
}

// Joins the binding states of the branches of a disjunction. `ite` selects
// if-then-else handling: `first` is the '->' functor cell position.
bool ModeAnalyzer::WalkBranchJoin(size_t first, size_t second_start,
                                  bool ite) {
  InstVec saved = state_;
  bool ok1;
  if (ite) {
    size_t cond = first + 1;
    size_t then = Skip(cond);
    ok1 = WalkGoal(cond) && WalkGoal(then);
  } else {
    ok1 = WalkGoal(first);
  }
  InstVec s1 = state_;
  state_ = std::move(saved);
  bool ok2 = WalkGoal(second_start);
  if (ok1 && ok2) {
    for (size_t i = 0; i < state_.size(); ++i) {
      state_[i] = JoinInst(state_[i], s1[i]);
    }
    return true;
  }
  if (ok1) {
    state_ = std::move(s1);
    return true;
  }
  return ok2;
}

bool ModeAnalyzer::WalkGoal(size_t pos) {
  const std::vector<Word>& cells = Cells();
  Word w = cells[pos];

  if (IsLocal(w)) {
    // Meta-call with unknown target: it may bind anything it is handed.
    result_.meta_callers.insert(cur_f_);
    SetVars(pos, Inst::kAny);
    return true;
  }
  if (IsAtom(w)) {
    const std::string& name = symbols_.AtomName(AtomOf(w));
    if (name == "fail" || name == "false") return false;
    if (name == "!" || name == "true" || name == "otherwise" ||
        name == "tcut") {
      return true;
    }
    FunctorId f = symbols_.InternFunctor(AtomOf(w), 0);
    if (builtins_.Find(f) != nullptr) return true;
    return UserCall(f, pos);
  }
  if (!IsFunctor(w)) return false;  // an int in call position: type error

  FunctorId f = FunctorOf(w);
  const std::string& name = symbols_.AtomName(symbols_.FunctorAtom(f));
  int arity = symbols_.FunctorArity(f);
  size_t a1 = pos + 1;

  if (arity == 2 && name == ",") {
    size_t a2 = Skip(a1);
    return WalkGoal(a1) && WalkGoal(a2);
  }
  if (arity == 2 && name == ";") {
    size_t a2 = Skip(a1);
    Word l = cells[a1];
    bool ite = IsFunctor(l) &&
               symbols_.FunctorArity(FunctorOf(l)) == 2 &&
               symbols_.AtomName(symbols_.FunctorAtom(FunctorOf(l))) == "->";
    return WalkBranchJoin(a1, a2, ite);
  }
  if (arity == 2 && name == "->") {
    size_t a2 = Skip(a1);
    return WalkGoal(a1) && WalkGoal(a2);
  }

  if (arity == 1 && (name == "\\+" || name == "tnot" || name == "e_tnot" ||
                     name == "not")) {
    // Bindings made inside a negation never escape; the walk still records
    // the callee edges for the per-pattern reach masks.
    InstVec saved = state_;
    WalkGoal(a1);
    state_ = std::move(saved);
    return true;
  }

  if (arity == 1 && (name == "once" || name == "call")) return WalkGoal(a1);

  if (arity >= 2 && name == "call") {
    // call(F, A...): treat the extended goal opaquely — record the widened
    // functor edge (pattern 0) for reachability, assume anything it touches
    // may come back bound.
    Word target = cells[a1];
    FunctorId g = kNoFunctor;
    if (IsAtom(target)) {
      g = symbols_.InternFunctor(AtomOf(target), arity - 1);
    } else if (IsFunctor(target)) {
      FunctorId base = FunctorOf(target);
      g = symbols_.InternFunctor(symbols_.FunctorAtom(base),
                                 symbols_.FunctorArity(base) + arity - 1);
    } else {
      result_.meta_callers.insert(cur_f_);
    }
    if (g != kNoFunctor) {
      const Predicate* pred = program_.Lookup(g);
      if (pred != nullptr && pred->num_live_clauses() > 0) {
        if (collect_callees_) cur_clause_callees_.push_back(g);
        deps_[PatternKey(g, 0)].insert({cur_f_, cur_pix_});
        new_calls_.emplace_back(g, 0);
      }
    }
    SetVars(pos, Inst::kAny);
    return true;
  }

  if (arity == 3 && (name == "findall" || name == "bagof" ||
                     name == "setof" || name == "tfindall")) {
    size_t a2 = Skip(a1);
    size_t a3 = Skip(a2);
    InstVec saved = state_;
    WalkGoal(a2);  // inner bindings stay inside; edges recorded
    state_ = std::move(saved);
    ApplyInstToArg(a3, Inst::kNonvar);  // the result is always a list
    return true;
  }

  if (arity == 2 && name == "=") {
    size_t a2 = Skip(a1);
    Inst l = InstOfTerm(a1);
    Inst r = InstOfTerm(a2);
    Inst u = AbsUnifyInst(l, r);
    // Binding a definitely-free side does not touch the other side's
    // variables; ApplyInstToArg(pos, kFree) is already that no-op.
    ApplyInstToArg(a1, r == Inst::kFree && !IsLocal(cells[a1]) ? Inst::kFree
                                                               : u);
    ApplyInstToArg(a2, l == Inst::kFree && !IsLocal(cells[a2]) ? Inst::kFree
                                                               : u);
    return true;
  }

  if (arity == 2 && name == "is") {
    size_t a2 = Skip(a1);
    GroundVars(a2);  // the expression must evaluate: every variable ground
    Word lhs = cells[a1];
    if (IsLocal(lhs)) {
      state_[PayloadOf(lhs)] = Inst::kGround;
      return true;
    }
    return IsInt(lhs);  // an atom/struct lhs never unifies with a number
  }

  if (arity == 2 && (name == "=:=" || name == "=\\=" || name == "<" ||
                     name == ">" || name == "=<" || name == ">=")) {
    GroundVars(pos);  // both expressions must evaluate
    return true;
  }

  if (arity == 1 && (name == "atom" || name == "atomic" || name == "number" ||
                     name == "integer" || name == "float")) {
    Word arg = cells[a1];
    if (IsLocal(arg)) {
      uint64_t v = PayloadOf(arg);
      if (state_[v] == Inst::kFree) return false;  // definitely unbound
      state_[v] = Inst::kGround;
      return true;
    }
    return !IsFunctor(arg);  // a struct is none of these
  }
  if (arity == 1 && name == "nonvar") {
    Word arg = cells[a1];
    if (!IsLocal(arg)) return true;
    uint64_t v = PayloadOf(arg);
    if (state_[v] == Inst::kFree) return false;
    if (state_[v] == Inst::kAny) state_[v] = Inst::kNonvar;
    return true;
  }
  if (arity == 1 && name == "var") {
    Word arg = cells[a1];
    if (!IsLocal(arg)) return false;
    uint64_t v = PayloadOf(arg);
    if (state_[v] == Inst::kGround || state_[v] == Inst::kNonvar) {
      return false;
    }
    state_[v] = Inst::kFree;
    return true;
  }
  if (arity == 1 && name == "ground") {
    GroundVars(a1);  // succeeds only when the whole argument is ground
    return true;
  }

  if (name == "apply") {
    // HiLog apply/N: only a structure-headed goal like path(G)(X,Y) is
    // guaranteed to resolve against the stored apply/N clauses. A variable
    // or atom target (Graph(X,Y) with Graph bound at runtime) dispatches
    // to an arbitrary first-order predicate the analysis cannot see —
    // treating it as a recursive apply/N call would "prove" apply/N has
    // no base case and never succeeds. Treat it as an opaque meta-call.
    if (IsFunctor(cells[a1])) return UserCall(f, pos);
    result_.meta_callers.insert(cur_f_);
    SetVars(pos, Inst::kAny);
    return true;
  }
  if (builtins_.Find(f) != nullptr || (!name.empty() && name[0] == '$')) {
    SetVars(pos, Inst::kAny);  // any variable may come back bound
    return true;
  }

  return UserCall(f, pos);
}

bool ModeAnalyzer::VisitClause(const Clause& clause, const InstVec& call,
                               InstVec* out) {
  cur_clause_ = &clause;
  state_.assign(clause.term.num_vars, Inst::kFree);
  const std::vector<Word>& cells = clause.term.cells;
  size_t head_end = SkipFlatSubterm(symbols_, cells, clause.head_pos);

  if (!call.empty() && IsFunctor(cells[clause.head_pos])) {
    size_t arg = clause.head_pos + 1;
    for (Inst ci : call) {
      ApplyInstToArg(arg, ci);
      arg = Skip(arg);
    }
  }

  if (clause.is_rule && !WalkGoal(head_end)) return false;

  out->clear();
  if (IsFunctor(cells[clause.head_pos])) {
    size_t arg = clause.head_pos + 1;
    int arity = symbols_.FunctorArity(FunctorOf(cells[clause.head_pos]));
    for (int i = 0; i < arity; ++i) {
      out->push_back(InstOfTerm(arg));
      arg = Skip(arg);
    }
  }
  return true;
}

void ModeAnalyzer::Visit(FunctorId f, size_t pix) {
  const Predicate* pred = program_.Lookup(f);
  if (pred == nullptr || pred->num_live_clauses() == 0) return;
  if (pix >= result_.preds[f].patterns.size()) return;

  cur_f_ = f;
  cur_pix_ = pix;
  new_calls_.clear();
  collect_callees_ = pix == 0;
  InstVec call = result_.preds[f].patterns[pix].call;  // copy: GetPattern
                                                       // may reallocate

  std::vector<std::vector<FunctorId>> clause_callees;
  InstVec success;
  bool any_success = false;
  for (const Clause& clause : pred->clauses()) {
    if (clause.erased) continue;
    cur_clause_callees_.clear();
    InstVec s;
    if (VisitClause(clause, call, &s)) {
      if (!any_success) {
        success = std::move(s);
        any_success = true;
      } else {
        for (size_t i = 0; i < success.size(); ++i) {
          success[i] = JoinInst(success[i], s[i]);
        }
      }
    }
    if (collect_callees_) {
      std::sort(cur_clause_callees_.begin(), cur_clause_callees_.end());
      cur_clause_callees_.erase(std::unique(cur_clause_callees_.begin(),
                                            cur_clause_callees_.end()),
                                cur_clause_callees_.end());
      clause_callees.push_back(cur_clause_callees_);
    }
  }
  if (collect_callees_) result_.clause_callees[f] = std::move(clause_callees);

  PredModes& pm = result_.preds[f];
  ModePattern& pat = pm.patterns[pix];
  std::sort(new_calls_.begin(), new_calls_.end());
  new_calls_.erase(std::unique(new_calls_.begin(), new_calls_.end()),
                   new_calls_.end());
  pat.calls = new_calls_;

  bool changed = false;
  if (any_success) {
    if (!pat.success_known) {
      pat.success = std::move(success);
      pat.success_known = true;
      changed = true;
    } else {
      for (size_t i = 0; i < pat.success.size(); ++i) {
        Inst j = JoinInst(pat.success[i], success[i]);
        if (j != pat.success[i]) {
          pat.success[i] = j;
          changed = true;
        }
      }
    }
  }
  if (changed) {
    auto it = deps_.find(PatternKey(f, pix));
    if (it != deps_.end()) {
      for (const auto& [df, dpix] : it->second) Enqueue(df, dpix);
    }
  }
}

// --- Demand pre-pass ---------------------------------------------------------
//
// A head argument position is "demanded ground" when, in every clause, the
// head variable at that position flows into arithmetic before any body goal
// could have bound it. Purely syntactic: no fixpoint involved, so the main
// walk can report M003 violations against callees in any SCC order.

void ModeAnalyzer::DemandWalk(
    size_t pos, std::vector<bool>* gen,
    const std::vector<std::vector<int>>& head_pos_of,
    std::vector<bool>* demanded) {
  const std::vector<Word>& cells = Cells();
  Word w = cells[pos];
  if (!IsFunctor(w)) {
    SetVarsGen(gen, pos);
    return;
  }
  FunctorId f = FunctorOf(w);
  const std::string& name = symbols_.AtomName(symbols_.FunctorAtom(f));
  int arity = symbols_.FunctorArity(f);
  size_t a1 = pos + 1;
  if (arity == 2 && name == ",") {
    size_t a2 = Skip(a1);
    DemandWalk(a1, gen, head_pos_of, demanded);
    DemandWalk(a2, gen, head_pos_of, demanded);
    return;
  }
  auto demand_expr = [&](size_t expr_pos) {
    size_t end = Skip(expr_pos);
    for (size_t i = expr_pos; i < end; ++i) {
      if (!IsLocal(cells[i])) continue;
      uint64_t v = PayloadOf(cells[i]);
      if ((*gen)[v]) continue;
      for (int argnum : head_pos_of[v]) (*demanded)[argnum] = true;
    }
  };
  if (arity == 2 && name == "is") {
    size_t a2 = Skip(a1);
    demand_expr(a2);
    if (IsLocal(cells[a1])) (*gen)[PayloadOf(cells[a1])] = true;
    return;
  }
  if (arity == 2 && (name == "=:=" || name == "=\\=" || name == "<" ||
                     name == ">" || name == "=<" || name == ">=")) {
    demand_expr(pos);
    return;
  }
  // Anything else may bind every variable it mentions.
  SetVarsGen(gen, pos);
}

void ModeAnalyzer::ComputeDemands(FunctorId f, const Predicate& pred) {
  int arity = symbols_.FunctorArity(f);
  PredModes& pm = result_.preds[f];
  pm.demands_ground.assign(static_cast<size_t>(arity), arity > 0);
  if (arity == 0) return;
  for (const Clause& clause : pred.clauses()) {
    if (clause.erased) continue;
    cur_clause_ = &clause;
    const std::vector<Word>& cells = clause.term.cells;
    std::vector<bool> clause_dem(static_cast<size_t>(arity), false);
    if (clause.is_rule && IsFunctor(cells[clause.head_pos])) {
      // Map each variable to the head positions where it is the *plain* arg.
      std::vector<std::vector<int>> head_pos_of(clause.term.num_vars);
      size_t arg = clause.head_pos + 1;
      for (int i = 0; i < arity; ++i) {
        if (IsLocal(cells[arg])) {
          head_pos_of[PayloadOf(cells[arg])].push_back(i);
        }
        arg = Skip(arg);
      }
      std::vector<bool> gen(clause.term.num_vars, false);
      size_t head_end = SkipFlatSubterm(symbols_, cells, clause.head_pos);
      DemandWalk(head_end, &gen, head_pos_of, &clause_dem);
    }
    for (int i = 0; i < arity; ++i) {
      pm.demands_ground[static_cast<size_t>(i)] =
          pm.demands_ground[static_cast<size_t>(i)] &&
          clause_dem[static_cast<size_t>(i)];
    }
  }
}

void ModeAnalyzer::Finalize() {
  for (auto& [f, pm] : result_.preds) {
    (void)f;
    InstVec site_join, spec_meet, success_join;
    bool have_site = false, have_success = false;
    for (const ModePattern& pat : pm.patterns) {
      if (pat.from_site) {
        if (!have_site) {
          site_join = pat.call;
          spec_meet = pat.call;
          have_site = true;
        } else {
          for (size_t i = 0; i < site_join.size(); ++i) {
            site_join[i] = JoinInst(site_join[i], pat.call[i]);
            spec_meet[i] = SpecMeetInst(spec_meet[i], pat.call[i]);
          }
        }
      }
      if (pat.success_known) {
        if (!have_success) {
          success_join = pat.success;
          have_success = true;
        } else {
          for (size_t i = 0; i < success_join.size(); ++i) {
            success_join[i] = JoinInst(success_join[i], pat.success[i]);
          }
        }
      }
    }
    pm.site_join = std::move(site_join);
    pm.spec_meet = std::move(spec_meet);
    pm.success_join = std::move(success_join);
  }
}

ModeResult ModeAnalyzer::Run() {
  std::vector<FunctorId> nodes;
  for (const auto& [f, pred] : program_.predicates()) {
    if (pred->num_live_clauses() > 0) nodes.push_back(f);
  }
  std::sort(nodes.begin(), nodes.end());

  for (FunctorId f : nodes) {
    const Predicate* pred = program_.Lookup(f);
    PredModes& pm = result_.preds[f];
    ModePattern top;
    top.call.assign(static_cast<size_t>(symbols_.FunctorArity(f)),
                    Inst::kAny);
    pm.patterns.push_back(std::move(top));
    ComputeDemands(f, *pred);
    Enqueue(f, 0);
  }
  for (const ModeEntry& entry : entries_) {
    const Predicate* pred = program_.Lookup(entry.functor);
    if (pred == nullptr || pred->num_live_clauses() == 0) continue;
    if (entry.call.size() !=
        static_cast<size_t>(symbols_.FunctorArity(entry.functor))) {
      continue;
    }
    GetPattern(entry.functor, entry.call, SourceSpan{});
  }

  while (!worklist_.empty()) {
    WorkItem item = *worklist_.begin();
    worklist_.erase(worklist_.begin());
    ++result_.iterations;
    Visit(std::get<1>(item), std::get<2>(item));
  }

  Finalize();
  return result_;
}

}  // namespace

ModeResult AnalyzeModes(const Program& program, const AnalysisResult& analysis,
                        const std::vector<ModeEntry>& entries) {
  ModeAnalyzer analyzer(program, analysis, entries);
  return analyzer.Run();
}

namespace {

// Shard bit of each SCC (set only when the component holds a tabled
// predicate) and functor-level reach masks, recomputed exactly as
// PublishEvalShards assigns them so the per-pattern masks refine rather than
// contradict the predicate-level ones.
struct SccShards {
  std::vector<ShardMask> self_bit;
  std::vector<ShardMask> reach;
};

SccShards ComputeSccShards(const Program& program,
                           const AnalysisResult& analysis) {
  size_t n = analysis.sccs.size();
  SccShards out;
  out.self_bit.assign(n, 0);
  for (size_t c = 0; c < n; ++c) {
    for (FunctorId member : analysis.sccs[c].members) {
      const Predicate* pred = program.Lookup(member);
      if (pred != nullptr && pred->tabled()) {
        out.self_bit[c] = EvalShardBit(static_cast<int>(c) % kNumEvalShards);
        break;
      }
    }
  }
  out.reach.assign(n, 0);
  std::vector<std::vector<int>> out_sccs(n);
  for (const CallEdge& edge : analysis.edges) {
    auto from = analysis.scc_of.find(edge.from);
    auto to = analysis.scc_of.find(edge.to);
    if (from == analysis.scc_of.end() || to == analysis.scc_of.end()) {
      continue;
    }
    if (from->second != to->second) {
      out_sccs[static_cast<size_t>(from->second)].push_back(to->second);
    }
  }
  // Tarjan discovery order is reverse topological: one ascending pass.
  for (size_t c = 0; c < n; ++c) {
    out.reach[c] = out.self_bit[c];
    for (int target : out_sccs[c]) {
      out.reach[c] |= out.reach[static_cast<size_t>(target)];
    }
  }
  return out;
}

std::vector<uint8_t> InstBytes(const InstVec& vec) {
  std::vector<uint8_t> out;
  out.reserve(vec.size());
  for (Inst inst : vec) out.push_back(static_cast<uint8_t>(inst));
  return out;
}

}  // namespace

void PublishModes(Program* program, const AnalysisResult& analysis) {
  const ModeResult& modes = analysis.modes;
  SccShards shards = ComputeSccShards(*program, analysis);
  auto self_bit_of = [&](FunctorId f) -> ShardMask {
    auto it = analysis.scc_of.find(f);
    if (it == analysis.scc_of.end()) return 0;
    return shards.self_bit[static_cast<size_t>(it->second)];
  };
  auto reach_of = [&](FunctorId f) -> ShardMask {
    auto it = analysis.scc_of.find(f);
    if (it == analysis.scc_of.end()) return 0;
    return shards.reach[static_cast<size_t>(it->second)];
  };

  // Per-pattern reach masks: fixpoint over the per-pattern call graph. The
  // masks only grow and are bounded by kAllEvalShards, so iteration is
  // cheap; ascending SCC order makes most programs converge in one pass.
  std::unordered_map<uint64_t, ShardMask> pmask;
  for (const auto& [f, pm] : modes.preds) {
    for (size_t pix = 0; pix < pm.patterns.size(); ++pix) {
      pmask[PatternKey(f, pix)] = self_bit_of(f);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [f, pm] : modes.preds) {
      for (size_t pix = 0; pix < pm.patterns.size(); ++pix) {
        ShardMask m = pmask[PatternKey(f, pix)];
        for (const auto& [callee, cpix] : pm.patterns[pix].calls) {
          auto it = pmask.find(PatternKey(callee, cpix));
          if (it != pmask.end()) m |= it->second;
        }
        ShardMask& slot = pmask[PatternKey(f, pix)];
        if (m != slot) {
          slot = m;
          changed = true;
        }
      }
    }
  }

  uint64_t epoch = program->clause_epoch();
  for (const auto& [functor, pred] : program->predicates()) {
    auto it = modes.preds.find(functor);
    if (it == modes.preds.end()) {
      pred->clear_modes();
      pred->clear_key_masks();
      continue;
    }
    const PredModes& pm = it->second;
    auto pub = std::make_unique<PublishedModes>();
    pub->patterns.reserve(pm.patterns.size());
    for (size_t pix = 0; pix < pm.patterns.size(); ++pix) {
      const ModePattern& pat = pm.patterns[pix];
      PublishedModes::Pattern p;
      p.call = InstBytes(pat.call);
      if (pat.success_known) p.success = InstBytes(pat.success);
      p.reach_mask = analysis.widened ? kAllEvalShards
                                      : pmask[PatternKey(functor, pix)];
      pub->patterns.push_back(std::move(p));
    }
    pub->site_join = InstBytes(pm.site_join);
    pub->spec_meet = InstBytes(pm.spec_meet);
    pub->success_join = InstBytes(pm.success_join);
    pub->epoch = epoch;
    pred->set_modes(
        std::unique_ptr<const PublishedModes>(std::move(pub)));

    // First-argument dispatch masks: only for tabled predicates whose every
    // live clause keys on a bound first argument, with per-clause callee
    // sets the walk could fully account for.
    pred->clear_key_masks();
    if (!pred->tabled() || analysis.widened ||
        modes.meta_callers.count(functor) > 0 ||
        program->symbols()->FunctorArity(functor) < 1) {
      continue;
    }
    auto cc = modes.clause_callees.find(functor);
    if (cc == modes.clause_callees.end()) continue;
    auto masks = std::make_unique<std::unordered_map<Word, ShardMask>>();
    ShardMask self = self_bit_of(functor);
    bool usable = true;
    size_t live_ix = 0;
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased) continue;
      if (live_ix >= cc->second.size() ||
          !IsFunctor(clause.term.cells[clause.head_pos])) {
        usable = false;
        break;
      }
      size_t arg0 = clause.head_pos + 1;
      Word key = FlatArgKey(clause.term.cells, arg0);
      if (key == 0) {  // variable first argument: every call reaches it
        usable = false;
        break;
      }
      ShardMask m = self;
      for (FunctorId callee : cc->second[live_ix]) m |= reach_of(callee);
      (*masks)[key] |= m;
      ++live_ix;
    }
    if (usable && !masks->empty()) {
      pred->set_key_masks(std::move(masks));
    }
  }
}

}  // namespace xsb::analysis
