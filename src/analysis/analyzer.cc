#include "analysis/analyzer.h"

#include <algorithm>
#include <unordered_set>

#include "db/index.h"
#include "engine/builtins.h"

namespace xsb::analysis {
namespace {

// Binding state of a clause's local variables during the body walk.
// `generated` tracks variables bound by body generators (user calls, =/2,
// is/2 outputs) — the set range restriction and the index advisor care
// about. `assumed` additionally holds head variables, which the caller may
// bind: the floundering/arithmetic checks use the union to avoid flagging
// ordinary mode-sensitive Prolog.
struct Bindings {
  std::vector<bool> generated;
  std::vector<bool> assumed;

  bool bound(uint64_t v) const { return generated[v] || assumed[v]; }
  void Generate(uint64_t v) { generated[v] = true; }
  void IntersectWith(const Bindings& other) {
    for (size_t i = 0; i < generated.size(); ++i) {
      generated[i] = generated[i] && other.generated[i];
      assumed[i] = assumed[i] && other.assumed[i];
    }
  }
};

// Per-callee accumulation for the index advisor.
struct CallProfile {
  size_t calls = 0;
  std::vector<size_t> bound_count;  // per 0-based argument
};

class Analyzer {
 public:
  Analyzer(const Program& program, const AnalyzeOptions& options)
      : program_(program),
        symbols_(*program.symbols()),
        options_(options),
        builtins_(program.symbols()) {}

  AnalysisResult Run();

 private:
  // --- Pass 0: call graph ---------------------------------------------------
  void CollectClause(FunctorId head, const Clause& clause);
  void WalkGoal(size_t pos, EdgeKind polarity, Bindings* bind);
  void WalkBranches(size_t left, size_t right, EdgeKind polarity,
                    Bindings* bind);
  void AddEdge(FunctorId callee, EdgeKind kind);
  void WidenHiLog(EdgeKind polarity);
  void RecordCallSite(FunctorId callee, size_t pos, const Bindings& bind);

  // --- Pass 1-5 -------------------------------------------------------------
  void ComputeSccs();
  void StratificationPass();
  void SubsumptionPass();
  void ModePass();
  void AdvisorPass();
  void LintPass();

  void Diag(DiagCode code, Severity severity, FunctorId functor,
            std::string message, SourceSpan span);
  // At most one diagnostic per (code, clause): repeated violations inside
  // one clause add no information.
  bool OncePerClause(DiagCode code);

  std::string PredName(FunctorId f) const {
    return symbols_.AtomName(symbols_.FunctorAtom(f)) + "/" +
           std::to_string(symbols_.FunctorArity(f));
  }

  bool IsControl(FunctorId f) const;
  void VarsOf(size_t pos, std::vector<uint64_t>* out) const;
  bool AllVarsBound(size_t pos, const Bindings& bind) const;

  const Program& program_;
  SymbolTable& symbols_;  // non-const: atom goals intern their arity-0
                          // functor ids
  AnalyzeOptions options_;
  BuiltinRegistry builtins_;
  AnalysisResult result_;

  // Current clause context during collection.
  FunctorId cur_head_ = kNoFunctor;
  const Clause* cur_clause_ = nullptr;
  std::unordered_set<uint64_t> clause_diags_;  // (code << 32) ^ clause ordinal
  uint64_t clause_ordinal_ = 0;

  std::unordered_map<FunctorId, std::vector<std::pair<FunctorId, EdgeKind>>>
      adjacency_;
  std::unordered_map<FunctorId, CallProfile> profiles_;
  std::vector<FunctorId> nodes_;  // defined predicates, sorted
};

bool Analyzer::IsControl(FunctorId f) const {
  const std::string& name = symbols_.AtomName(symbols_.FunctorAtom(f));
  int arity = symbols_.FunctorArity(f);
  if (arity == 0) {
    return name == "!" || name == "true" || name == "fail" ||
           name == "false" || name == "otherwise" || name == "tcut";
  }
  if (arity == 1) {
    return name == "\\+" || name == "tnot" || name == "e_tnot" ||
           name == "once" || name == "call" || name == "not";
  }
  if (arity == 2) return name == "," || name == ";" || name == "->";
  if (arity == 3) {
    return name == "findall" || name == "bagof" || name == "setof" ||
           name == "tfindall";
  }
  if (name == "call") return true;  // call/N
  return false;
}

void Analyzer::VarsOf(size_t pos, std::vector<uint64_t>* out) const {
  const std::vector<Word>& cells = cur_clause_->term.cells;
  size_t end = SkipFlatSubterm(symbols_, cells, pos);
  for (size_t i = pos; i < end; ++i) {
    if (IsLocal(cells[i])) out->push_back(PayloadOf(cells[i]));
  }
}

bool Analyzer::AllVarsBound(size_t pos, const Bindings& bind) const {
  std::vector<uint64_t> vars;
  VarsOf(pos, &vars);
  for (uint64_t v : vars) {
    if (!bind.bound(v)) return false;
  }
  return true;
}

void Analyzer::Diag(DiagCode code, Severity severity, FunctorId functor,
                    std::string message, SourceSpan span) {
  result_.diagnostics.push_back(
      Diagnostic{code, severity, functor, std::move(message), span});
}

bool Analyzer::OncePerClause(DiagCode code) {
  uint64_t key = (static_cast<uint64_t>(code) << 32) ^ clause_ordinal_;
  return clause_diags_.insert(key).second;
}

void Analyzer::AddEdge(FunctorId callee, EdgeKind kind) {
  adjacency_[cur_head_].emplace_back(callee, kind);
  result_.edges.push_back(
      CallEdge{cur_head_, callee, kind, cur_clause_->span});
}

void Analyzer::WidenHiLog(EdgeKind polarity) {
  // A meta-call whose target is unknown at consult time (a variable goal,
  // or a call/N closure held in a variable) may reach any predicate: add an
  // edge to every defined predicate. Coarse, but it keeps the verdict sound.
  result_.widened = true;
  for (FunctorId f : nodes_) AddEdge(f, polarity);
}

void Analyzer::RecordCallSite(FunctorId callee, size_t pos,
                              const Bindings& bind) {
  int arity = symbols_.FunctorArity(callee);
  CallProfile& profile = profiles_[callee];
  if (profile.bound_count.empty() && arity > 0) {
    profile.bound_count.assign(static_cast<size_t>(arity), 0);
  }
  ++profile.calls;
  if (arity == 0) return;
  const std::vector<Word>& cells = cur_clause_->term.cells;
  size_t arg = pos + 1;
  for (int i = 0; i < arity; ++i) {
    Word w = cells[arg];
    bool bound = IsLocal(w) ? bind.generated[PayloadOf(w)] : true;
    if (bound) ++profile.bound_count[static_cast<size_t>(i)];
    arg = SkipFlatSubterm(symbols_, cells, arg);
  }
}

void Analyzer::WalkBranches(size_t left, size_t right, EdgeKind polarity,
                            Bindings* bind) {
  Bindings b1 = *bind;
  Bindings b2 = *bind;
  WalkGoal(left, polarity, &b1);
  WalkGoal(right, polarity, &b2);
  // Only bindings every branch establishes survive the disjunction.
  b1.IntersectWith(b2);
  *bind = b1;
}

void Analyzer::WalkGoal(size_t pos, EdgeKind polarity, Bindings* bind) {
  const std::vector<Word>& cells = cur_clause_->term.cells;
  Word w = cells[pos];

  if (IsLocal(w)) {
    // A bare variable goal: a meta-call with unknown target.
    WidenHiLog(polarity);
    return;
  }
  if (IsAtom(w)) {
    FunctorId f = symbols_.InternFunctor(AtomOf(w), 0);
    if (IsControl(f) || builtins_.Find(f) != nullptr) return;
    AddEdge(f, polarity);
    RecordCallSite(f, pos, *bind);
    return;
  }
  if (!IsFunctor(w)) return;  // an int in call position: a type error at
                              // runtime, nothing to analyze

  FunctorId f = FunctorOf(w);
  const std::string& name = symbols_.AtomName(symbols_.FunctorAtom(f));
  int arity = symbols_.FunctorArity(f);
  size_t a1 = pos + 1;

  if (arity == 2 && (name == "," || name == ";" || name == "->")) {
    size_t a2 = SkipFlatSubterm(symbols_, cells, a1);
    if (name == ",") {
      WalkGoal(a1, polarity, bind);
      WalkGoal(a2, polarity, bind);
    } else if (name == ";") {
      // (C -> T ; E) and plain disjunction both split the binding state.
      Word l = cells[a1];
      if (IsFunctor(l) &&
          symbols_.AtomName(symbols_.FunctorAtom(FunctorOf(l))) == "->" &&
          symbols_.FunctorArity(FunctorOf(l)) == 2) {
        // Walk the condition+then as one branch against the else branch.
        Bindings b1 = *bind;
        size_t cond = a1 + 1;
        size_t then = SkipFlatSubterm(symbols_, cells, cond);
        WalkGoal(cond, polarity, &b1);
        WalkGoal(then, polarity, &b1);
        Bindings b2 = *bind;
        WalkGoal(a2, polarity, &b2);
        b1.IntersectWith(b2);
        *bind = b1;
      } else {
        WalkBranches(a1, a2, polarity, bind);
      }
    } else {  // bare if-then
      WalkGoal(a1, polarity, bind);
      size_t a2b = SkipFlatSubterm(symbols_, cells, a1);
      WalkGoal(a2b, polarity, bind);
    }
    return;
  }

  if (arity == 1 && (name == "\\+" || name == "tnot" || name == "e_tnot" ||
                     name == "not")) {
    if (options_.safety_pass && !AllVarsBound(a1, *bind) &&
        OncePerClause(DiagCode::kUnsafeNegation)) {
      Diag(DiagCode::kUnsafeNegation, Severity::kWarning, cur_head_,
           "variable under " + name +
               " is not bound by the preceding goals: the negation may "
               "flounder or quantify existentially",
           cur_clause_->span);
    }
    // Bindings made inside a negation never escape it.
    Bindings inner = *bind;
    WalkGoal(a1, EdgeKind::kNegative, &inner);
    return;
  }

  if (arity == 1 && (name == "once" || name == "call")) {
    WalkGoal(a1, polarity, bind);
    return;
  }

  if (arity >= 2 && name == "call") {
    // call(F, A...): the closure F gains extra arguments. A known closure
    // maps to a widened functor; an unknown one widens the graph.
    Word target = cells[a1];
    if (IsAtom(target)) {
      FunctorId g = symbols_.InternFunctor(AtomOf(target), arity - 1);
      if (!IsControl(g) && builtins_.Find(g) == nullptr) {
        AddEdge(g, polarity);
      }
    } else if (IsFunctor(target)) {
      FunctorId base = FunctorOf(target);
      FunctorId g = symbols_.InternFunctor(
          symbols_.FunctorAtom(base),
          symbols_.FunctorArity(base) + arity - 1);
      AddEdge(g, polarity);
    } else {
      WidenHiLog(polarity);
    }
    std::vector<uint64_t> vars;
    VarsOf(pos, &vars);
    for (uint64_t v : vars) bind->Generate(v);
    return;
  }

  if (arity == 3 && (name == "findall" || name == "bagof" ||
                     name == "setof" || name == "tfindall")) {
    size_t a2 = SkipFlatSubterm(symbols_, cells, a1);
    size_t a3 = SkipFlatSubterm(symbols_, cells, a2);
    // The aggregated goal: its bindings stay inside the aggregate, and for
    // stratification it behaves like negation (the whole answer set is
    // needed before the aggregate can be produced).
    Bindings inner = *bind;
    WalkGoal(a2, EdgeKind::kAggregate, &inner);
    std::vector<uint64_t> vars;
    VarsOf(a3, &vars);
    for (uint64_t v : vars) bind->Generate(v);
    return;
  }

  if (arity == 2 && name == "=") {
    // Unification can bind either side; treat every variable as generated.
    std::vector<uint64_t> vars;
    VarsOf(pos, &vars);
    for (uint64_t v : vars) bind->Generate(v);
    return;
  }

  if (arity == 2 && name == "is") {
    size_t rhs = SkipFlatSubterm(symbols_, cells, a1);
    if (options_.safety_pass && !AllVarsBound(rhs, *bind) &&
        OncePerClause(DiagCode::kUnsafeArith)) {
      Diag(DiagCode::kUnsafeArith, Severity::kWarning, cur_head_,
           "arithmetic over a variable the body never binds: is/2 will "
           "raise an instantiation error",
           cur_clause_->span);
    }
    std::vector<uint64_t> vars;
    VarsOf(a1, &vars);
    for (uint64_t v : vars) bind->Generate(v);
    return;
  }

  if (arity == 2 && (name == "=:=" || name == "=\\=" || name == "<" ||
                     name == ">" || name == "=<" || name == ">=")) {
    if (options_.safety_pass && !AllVarsBound(pos, *bind) &&
        OncePerClause(DiagCode::kUnsafeArith)) {
      Diag(DiagCode::kUnsafeArith, Severity::kWarning, cur_head_,
           "arithmetic comparison over a variable the body never binds",
           cur_clause_->span);
    }
    return;
  }

  if (builtins_.Find(f) != nullptr || IsControl(f) || name == "apply" ||
      (!name.empty() && name[0] == '$')) {
    // Remaining builtins: assume any variable they touch may come out
    // bound (the conservative direction for the later checks). HiLog
    // apply/N goals resolve against the stored apply/N clauses, so they
    // get an ordinary edge as well.
    if (name == "apply") {
      AddEdge(f, polarity);
      RecordCallSite(f, pos, *bind);
    }
    std::vector<uint64_t> vars;
    VarsOf(pos, &vars);
    for (uint64_t v : vars) bind->Generate(v);
    return;
  }

  // A plain user-predicate call.
  AddEdge(f, polarity);
  RecordCallSite(f, pos, *bind);
  std::vector<uint64_t> vars;
  VarsOf(pos, &vars);
  for (uint64_t v : vars) bind->Generate(v);
}

void Analyzer::CollectClause(FunctorId head, const Clause& clause) {
  cur_head_ = head;
  cur_clause_ = &clause;
  ++clause_ordinal_;

  Bindings bind;
  bind.generated.assign(clause.term.num_vars, false);
  bind.assumed.assign(clause.term.num_vars, false);

  const std::vector<Word>& cells = clause.term.cells;
  size_t head_end = SkipFlatSubterm(symbols_, cells, clause.head_pos);

  std::vector<uint64_t> head_vars;
  for (size_t i = clause.head_pos; i < head_end; ++i) {
    if (IsLocal(cells[i])) head_vars.push_back(PayloadOf(cells[i]));
  }
  for (uint64_t v : head_vars) bind.assumed[v] = true;

  if (clause.is_rule) {
    WalkGoal(head_end, EdgeKind::kPositive, &bind);
  }

  if (options_.safety_pass) {
    for (uint64_t v : head_vars) {
      if (!bind.generated[v]) {
        if (OncePerClause(DiagCode::kUnsafeHead)) {
          Diag(DiagCode::kUnsafeHead, Severity::kWarning, head,
               clause.is_rule
                   ? "head variable is not bound by any body generator: "
                     "the clause is not range-restricted"
                   : "fact contains an unbound variable: it denotes "
                     "infinitely many tuples",
               clause.span);
        }
        break;
      }
    }
  }
}

void Analyzer::ComputeSccs() {
  // Iterative Tarjan over the defined predicates (deterministic: nodes and
  // adjacency lists are sorted by functor id).
  std::unordered_map<FunctorId, int> index, low;
  std::unordered_map<FunctorId, bool> on_stack;
  std::vector<FunctorId> stack;
  int counter = 0;

  struct Frame {
    FunctorId v;
    size_t edge = 0;
  };

  for (auto& [from, out] : adjacency_) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    (void)from;
  }

  auto neighbors = [&](FunctorId v)
      -> const std::vector<std::pair<FunctorId, EdgeKind>>& {
    static const std::vector<std::pair<FunctorId, EdgeKind>> kEmpty;
    auto it = adjacency_.find(v);
    return it == adjacency_.end() ? kEmpty : it->second;
  };
  auto defined = [&](FunctorId v) {
    return std::binary_search(nodes_.begin(), nodes_.end(), v);
  };

  for (FunctorId root : nodes_) {
    if (index.count(root) > 0) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto& out = neighbors(frame.v);
      bool descended = false;
      while (frame.edge < out.size()) {
        FunctorId w = out[frame.edge].first;
        ++frame.edge;
        if (!defined(w)) continue;  // undefined callees cannot close cycles
        if (index.count(w) == 0) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[frame.v] = std::min(low[frame.v], index[w]);
      }
      if (descended) continue;
      if (low[frame.v] == index[frame.v]) {
        SccInfo scc;
        while (true) {
          FunctorId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.members.push_back(w);
          if (w == frame.v) break;
        }
        std::sort(scc.members.begin(), scc.members.end());
        int id = static_cast<int>(result_.sccs.size());
        for (FunctorId w : scc.members) result_.scc_of[w] = id;
        result_.sccs.push_back(std::move(scc));
      }
      FunctorId done = frame.v;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[done]);
      }
    }
  }

  // Mark recursive components: size > 1, or a self-edge.
  for (const CallEdge& edge : result_.edges) {
    auto it_from = result_.scc_of.find(edge.from);
    auto it_to = result_.scc_of.find(edge.to);
    if (it_from == result_.scc_of.end() || it_to == result_.scc_of.end()) {
      continue;
    }
    if (it_from->second != it_to->second) continue;
    SccInfo& scc = result_.sccs[static_cast<size_t>(it_from->second)];
    scc.recursive = true;
    if (edge.kind != EdgeKind::kPositive && !scc.negative_internal) {
      scc.negative_internal = true;
      scc.witness = edge;
    }
  }
  for (SccInfo& scc : result_.sccs) {
    if (scc.members.size() > 1) scc.recursive = true;
  }
}

void Analyzer::StratificationPass() {
  for (const SccInfo& scc : result_.sccs) {
    if (!scc.negative_internal) continue;
    result_.verdict = StratVerdict::kWfsRequired;
    std::string members;
    size_t shown = 0;
    for (FunctorId f : scc.members) {
      if (shown++ == 4) {
        members += ", ...";
        break;
      }
      if (!members.empty()) members += ", ";
      members += PredName(f);
    }
    const char* how =
        scc.witness.kind == EdgeKind::kAggregate ? "aggregation" : "negation";
    Diag(DiagCode::kNonStratified, Severity::kError, scc.witness.from,
         "recursive component {" + members + "} crosses " + how + " (" +
             PredName(scc.witness.from) + " -> " + PredName(scc.witness.to) +
             "): the program is not stratified; evaluate under well-founded "
             "semantics or break the cycle",
         scc.witness.span);
  }
}

// Aggregate stratification for answer subsumption (`:- table p(_, min)`).
// A lattice choosing among a predicate's answers is only well-defined when
// the full answer set it selects from is monotonically derivable:
//   * Recursion through min/max over the predicate's own SCC is the intended
//     fixpoint-optimization use (shortest path) and stays silent.
//   * Negation inside the SCC makes the aggregate see a non-monotone answer
//     set — rejected with T001 (an error: strict consults fail).
//   * first(N) inside a recursive SCC keeps whichever N derivations the
//     scheduler produced first — not rejected, but downgraded to a T002
//     warning since re-evaluation order can change the table.
void Analyzer::SubsumptionPass() {
  for (FunctorId f : nodes_) {
    const Predicate* pred = program_.Lookup(f);
    const TableSpec* spec = pred == nullptr ? nullptr : pred->table_spec();
    if (spec == nullptr || !spec->subsumptive()) continue;
    auto it = result_.scc_of.find(f);
    if (it == result_.scc_of.end()) continue;
    const SccInfo& scc = result_.sccs[static_cast<size_t>(it->second)];
    if (scc.negative_internal) {
      Diag(DiagCode::kSubsumptionNegation, Severity::kError, f,
           "answer subsumption on " + PredName(f) +
               " inside a recursive component crossed by negation (" +
               PredName(scc.witness.from) + " -> " +
               PredName(scc.witness.to) +
               "): the lattice aggregate is not stratified; break the cycle "
               "or drop the lattice declaration",
           scc.witness.span);
      continue;
    }
    bool first_n = spec->args[spec->agg_pos].agg == TableSpec::Agg::kFirst;
    if (first_n && scc.recursive) {
      SourceSpan span;
      for (const Clause& clause : pred->clauses()) {
        if (!clause.erased) {
          span = clause.span;
          break;
        }
      }
      Diag(DiagCode::kSubsumptionOrdered, Severity::kWarning, f,
           "first(N) subsumption on recursive " + PredName(f) +
               " keeps whichever N answers are derived first; the table "
               "contents depend on evaluation order",
           span);
    }
  }
}

void Analyzer::ModePass() {
  result_.modes = AnalyzeModes(program_, result_, options_.mode_entries);

  std::vector<FunctorId> preds;
  preds.reserve(result_.modes.preds.size());
  for (const auto& [f, pm] : result_.modes.preds) {
    (void)pm;
    preds.push_back(f);
  }
  std::sort(preds.begin(), preds.end());

  for (FunctorId f : preds) {
    const PredModes& pm = result_.modes.preds[f];
    // M001: report inferred modes only when they carry information beyond
    // all-`any` (every predicate trivially has the top pattern).
    bool informative = false;
    for (Inst i : pm.site_join) informative = informative || i != Inst::kAny;
    for (Inst i : pm.success_join) {
      informative = informative || i != Inst::kAny;
    }
    if (informative) {
      std::string message = "inferred modes: call " +
                            (pm.site_join.empty()
                                 ? std::string("(unknown)")
                                 : FormatInstVec(pm.site_join)) +
                            ", success " +
                            (pm.success_join.empty()
                                 ? std::string("(never succeeds)")
                                 : FormatInstVec(pm.success_join));
      Diag(DiagCode::kInferredModes, Severity::kInfo, f, std::move(message),
           SourceSpan{});
    }
    // M002: an argument position no analyzed call site ever binds. Feeds
    // the index advisor: indexing on such an argument can never be used.
    for (size_t i = 0; i < pm.site_join.size(); ++i) {
      if (pm.site_join[i] == Inst::kFree) {
        Diag(DiagCode::kNeverBound, Severity::kInfo, f,
             "argument " + std::to_string(i + 1) +
                 " is passed a free variable at every analyzed call site; "
                 "an index on it would never be consulted",
             SourceSpan{});
      }
    }
  }

  // M003: a call feeds a definitely-free variable into a position the
  // callee's every clause demands bound before its arithmetic.
  for (const ModeViolation& v : result_.modes.violations) {
    Diag(DiagCode::kModeViolation, Severity::kWarning, v.caller,
         "call to " + PredName(v.callee) + " passes a free variable as "
             "argument " + std::to_string(v.argnum) +
             ", which every clause of " + PredName(v.callee) +
             " feeds into arithmetic: the call will raise an "
             "instantiation error",
         v.span);
  }
}

void Analyzer::AdvisorPass() {
  // Auto-table advisor: any predicate on a call-graph cycle can loop under
  // plain SLD; tabling every member of a recursive component breaks every
  // loop (the paper's table_all analysis, section 4.3).
  for (const SccInfo& scc : result_.sccs) {
    if (!scc.recursive) continue;
    for (FunctorId f : scc.members) {
      const Predicate* pred = program_.Lookup(f);
      if (pred == nullptr || pred->tabled() ||
          pred->num_live_clauses() == 0) {
        continue;
      }
      result_.table_suggestions.push_back(f);
      SourceSpan span;
      for (const Clause& clause : pred->clauses()) {
        if (!clause.erased) {
          span = clause.span;
          break;
        }
      }
      Diag(DiagCode::kAutoTable, Severity::kInfo, f,
           "recursive predicate (component of " +
               std::to_string(scc.members.size()) +
               "): plain SLD may not terminate; add :- table " + PredName(f) +
               ". or use :- auto_table.",
           span);
    }
  }
  std::sort(result_.table_suggestions.begin(),
            result_.table_suggestions.end());

  // Index advisor: a predicate whose call sites never bind argument 1 but
  // always bind some other argument wants an index on that argument
  // (section 4.5's binding-pattern driven index directives).
  std::vector<FunctorId> callees;
  callees.reserve(profiles_.size());
  for (const auto& [f, profile] : profiles_) {
    (void)profile;
    callees.push_back(f);
  }
  std::sort(callees.begin(), callees.end());
  for (FunctorId f : callees) {
    const CallProfile& profile = profiles_[f];
    const Predicate* pred = program_.Lookup(f);
    if (pred == nullptr || pred->num_live_clauses() == 0) continue;
    if (pred->index_kind() != IndexKind::kFirstArg &&
        pred->index_kind() != IndexKind::kNone) {
      continue;  // a hand-written directive wins
    }
    if (profile.calls == 0 || profile.bound_count.empty()) continue;
    // First-argument key census, mirroring the WAM compiler's switchability
    // test (src/wam/compile.cc): constant (atom/int) and structure-functor
    // keys both dispatch through the two-level switch_on_term tables since
    // switch_on_structure, so structure-keyed predicates no longer earn
    // advice. The remaining defeat is a variable-keyed clause, which forces
    // the whole predicate onto the linear chain for every call.
    size_t live = 0, var_keyed = 0;
    SourceSpan var_span;
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased) continue;
      ++live;
      size_t pos =
          FlatArgPos(symbols_, clause.term.cells, clause.head_pos, 0);
      Word key = clause.term.cells[pos];
      if (!IsAtom(key) && !IsInt(key) && !IsFunctor(key)) {
        ++var_keyed;
        if (var_keyed == 1) var_span = clause.span;
      }
    }
    if (profile.bound_count[0] > 0) {
      // Bound-first-argument call sites are served by the switch whether
      // the keys are constants or functors — unless one variable-keyed
      // clause in an otherwise keyed set pins dispatch to the chain. An
      // all-variable head is ordinary Prolog (nothing to switch on) and
      // stays silent.
      if (var_keyed > 0 && var_keyed < live) {
        Diag(DiagCode::kChainDispatch, Severity::kInfo, f,
             std::to_string(var_keyed) + " of " + std::to_string(live) +
                 " clauses key argument 1 on a variable, which disables the "
                 "constant/structure switch for the whole predicate: every "
                 "call walks the full clause chain. Key the clause on a "
                 "symbol or split the predicate.",
             var_span);
      }
      continue;  // first-arg dispatch (constant or functor keys) is usable
    }
    bool suggested = false;
    for (size_t i = 1; i < profile.bound_count.size(); ++i) {
      if (profile.bound_count[i] == profile.calls) {
        int argnum = static_cast<int>(i) + 1;
        result_.index_suggestions.emplace_back(f, argnum);
        Diag(DiagCode::kIndexAdvice, Severity::kInfo, f,
             "all " + std::to_string(profile.calls) +
                 " call sites bind argument " + std::to_string(argnum) +
                 " but never argument 1; consider :- index(" + PredName(f) +
                 ", " + std::to_string(argnum) + ").",
             SourceSpan{});
        suggested = true;
        break;
      }
    }
    if (suggested) continue;
    // Mode-informed fallback: the abstract interpreter propagates bindings
    // through call patterns (a head variable bound by the *caller* counts),
    // so it can prove an argument always-bound where the syntactic profile
    // above cannot.
    auto mit = result_.modes.preds.find(f);
    if (mit == result_.modes.preds.end()) continue;
    const InstVec& sj = mit->second.site_join;
    if (sj.empty() || sj[0] != Inst::kFree) continue;
    for (size_t i = 1; i < sj.size(); ++i) {
      if (sj[i] == Inst::kGround || sj[i] == Inst::kNonvar) {
        int argnum = static_cast<int>(i) + 1;
        result_.index_suggestions.emplace_back(f, argnum);
        Diag(DiagCode::kIndexAdvice, Severity::kInfo, f,
             "mode analysis proves every call binds argument " +
                 std::to_string(argnum) +
                 " and never argument 1; consider :- index(" + PredName(f) +
                 ", " + std::to_string(argnum) + ").",
             SourceSpan{});
        break;
      }
    }
  }
}

void Analyzer::LintPass() {
  // L002: clauses of one predicate interleaved with another's. Only clauses
  // with known spans participate (runtime asserts have none).
  struct Start {
    AtomId file;
    int line;
    int column;
    FunctorId functor;
  };
  std::vector<Start> starts;
  for (FunctorId f : nodes_) {
    const Predicate* pred = program_.Lookup(f);
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased || !clause.span.known()) continue;
      starts.push_back(Start{clause.span.file, clause.span.line,
                             clause.span.column, f});
    }
  }
  std::sort(starts.begin(), starts.end(), [](const Start& a, const Start& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.column < b.column;
  });
  std::unordered_map<FunctorId, size_t> last_seen;  // index into starts
  std::unordered_set<FunctorId> reported_l002;
  for (size_t i = 0; i < starts.size(); ++i) {
    FunctorId f = starts[i].functor;
    auto it = last_seen.find(f);
    if (it != last_seen.end() && it->second + 1 != i &&
        starts[it->second].file == starts[i].file &&
        reported_l002.insert(f).second) {
      const Predicate* pred = program_.Lookup(f);
      if (pred != nullptr && !pred->discontiguous_ok()) {
        Diag(DiagCode::kDiscontiguous, Severity::kWarning, f,
             "clauses are not contiguous (interrupted by " +
                 PredName(starts[i - 1].functor) + "); add :- discontiguous " +
                 PredName(f) + ". if intended",
             SourceSpan{starts[i].file, starts[i].line, starts[i].column});
      }
    }
    last_seen[f] = i;
  }

  // L003: calls to predicates with no clauses and no declaration.
  std::unordered_set<FunctorId> reported;
  for (const CallEdge& edge : result_.edges) {
    if (!reported.insert(edge.to).second) continue;
    const Predicate* pred = program_.Lookup(edge.to);
    if (pred != nullptr &&
        (pred->num_live_clauses() > 0 || pred->tabled() ||
         pred->declared())) {
      continue;
    }
    if (builtins_.Find(edge.to) != nullptr || IsControl(edge.to)) continue;
    Diag(DiagCode::kUnknownPredicate, Severity::kWarning, edge.to,
         "called from " + PredName(edge.from) +
             " but has no clauses and no declaration: the call always "
             "fails (or errors)",
         edge.span);
  }
}

AnalysisResult Analyzer::Run() {
  // Node set: every predicate with at least one live clause.
  for (const auto& [f, pred] : program_.predicates()) {
    if (pred->num_live_clauses() > 0) nodes_.push_back(f);
  }
  std::sort(nodes_.begin(), nodes_.end());

  for (FunctorId f : nodes_) {
    const Predicate* pred = program_.Lookup(f);
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased) continue;
      CollectClause(f, clause);
    }
  }

  ComputeSccs();
  StratificationPass();
  SubsumptionPass();
  if (options_.mode_pass) ModePass();
  if (options_.advisor_pass) AdvisorPass();
  if (options_.lint_pass) LintPass();

  // L001 singleton lints are found while reading (variable names do not
  // survive flattening); the loader parked them on the program.
  if (options_.lint_pass) {
    for (const Diagnostic& lint : program_.consult_lints()) {
      result_.diagnostics.push_back(lint);
    }
  }
  return result_;
}

}  // namespace

AnalysisResult Analyze(const Program& program, const AnalyzeOptions& options) {
  Analyzer analyzer(program, options);
  return analyzer.Run();
}

std::vector<FunctorId> ApplyTableSuggestions(
    Program* program, const AnalysisResult& result,
    const std::vector<FunctorId>& scope) {
  std::unordered_set<FunctorId> in_scope(scope.begin(), scope.end());
  std::vector<FunctorId> newly_tabled;
  for (FunctorId f : result.table_suggestions) {
    if (!scope.empty() && in_scope.count(f) == 0) continue;
    Predicate* pred = program->Lookup(f);
    if (pred != nullptr && !pred->tabled()) {
      pred->set_tabled(true);
      newly_tabled.push_back(f);
    }
  }
  return newly_tabled;
}

void PublishVerdict(Program* program, const AnalysisResult& result) {
  std::unordered_map<FunctorId, std::string> reasons;
  const SymbolTable& symbols = *program->symbols();
  for (const Diagnostic& diagnostic : result.diagnostics) {
    if (diagnostic.code != DiagCode::kNonStratified) continue;
    auto it = result.scc_of.find(diagnostic.functor);
    if (it == result.scc_of.end()) continue;
    const SccInfo& scc = result.sccs[static_cast<size_t>(it->second)];
    std::string message = FormatDiagnostic(symbols, diagnostic);
    for (FunctorId member : scc.members) {
      reasons.emplace(member, message);
    }
  }
  program->SetUnstratified(std::move(reasons));
}

std::unordered_map<FunctorId, std::vector<FunctorId>> IncrementalDependencies(
    const Program& program, const AnalysisResult& result) {
  // Reverse adjacency: for each callee, who calls it. Edge kinds do not
  // matter here — a change below a negation or aggregation still changes
  // the caller's answers.
  std::unordered_map<FunctorId, std::vector<FunctorId>> callers;
  for (const CallEdge& edge : result.edges) {
    callers[edge.to].push_back(edge.from);
  }
  std::unordered_map<FunctorId, std::vector<FunctorId>> deps;
  for (const auto& [functor, pred] : program.predicates()) {
    if (!pred->incremental()) continue;
    // Every predicate that can reach `functor` (including itself) depends
    // on it: walk the reversed call graph.
    std::vector<FunctorId> work{functor};
    std::unordered_set<FunctorId> seen{functor};
    while (!work.empty()) {
      FunctorId reached = work.back();
      work.pop_back();
      deps[reached].push_back(functor);
      auto it = callers.find(reached);
      if (it == callers.end()) continue;
      for (FunctorId caller : it->second) {
        if (seen.insert(caller).second) work.push_back(caller);
      }
    }
  }
  return deps;
}

void PublishIncrementalDeps(Program* program, const AnalysisResult& result) {
  program->SetIncrementalDeps(IncrementalDependencies(*program, result));
}

void PublishEvalShards(Program* program, const AnalysisResult& result) {
  // A component contributes its shard bit only when it contains a tabled
  // predicate: untabled SCCs never materialize subgoals, so including them
  // would make every pair of queries that shares a helper predicate collide
  // on a shard for no reason.
  size_t n = result.sccs.size();
  std::vector<ShardMask> self_bit(n, 0);
  for (size_t c = 0; c < n; ++c) {
    for (FunctorId member : result.sccs[c].members) {
      const Predicate* pred = program->Lookup(member);
      if (pred != nullptr && pred->tabled()) {
        self_bit[c] =
            EvalShardBit(static_cast<int>(c) % kNumEvalShards);
        break;
      }
    }
  }
  // Tarjan discovery order is reverse topological: every edge leads from a
  // later component to an earlier one, so one ascending pass over the
  // components sees each edge target's mask already finished.
  std::vector<ShardMask> reach(n, 0);
  std::vector<std::vector<int>> out_sccs(n);
  for (const CallEdge& edge : result.edges) {
    auto from = result.scc_of.find(edge.from);
    auto to = result.scc_of.find(edge.to);
    if (from == result.scc_of.end() || to == result.scc_of.end()) continue;
    if (from->second != to->second) {
      out_sccs[static_cast<size_t>(from->second)].push_back(to->second);
    }
  }
  for (size_t c = 0; c < n; ++c) {
    reach[c] = self_bit[c];
    for (int target : out_sccs[c]) {
      reach[c] |= reach[static_cast<size_t>(target)];
    }
  }
  // A widened graph (HiLog / call-N forced edges to every in-scope
  // predicate) already reaches everything tabled, but make the coarse
  // fallback explicit: unknown masks mean "all shards" downstream.
  for (const auto& [functor, pred] : program->predicates()) {
    auto it = result.scc_of.find(functor);
    if (it == result.scc_of.end()) {
      pred->set_eval_shards(-1, 0);
      continue;
    }
    int scc = it->second;
    ShardMask mask = result.widened ? kAllEvalShards
                                    : reach[static_cast<size_t>(scc)];
    pred->set_eval_shards(scc % kNumEvalShards, mask);
  }
}

}  // namespace xsb::analysis
