#include "analysis/diagnostic.h"

namespace xsb::analysis {

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kNonStratified:
      return "S001";
    case DiagCode::kUnsafeNegation:
      return "S002";
    case DiagCode::kUnsafeHead:
      return "S003";
    case DiagCode::kUnsafeArith:
      return "S004";
    case DiagCode::kAutoTable:
      return "A001";
    case DiagCode::kIndexAdvice:
      return "A002";
    case DiagCode::kChainDispatch:
      return "A003";
    case DiagCode::kSingletonVar:
      return "L001";
    case DiagCode::kDiscontiguous:
      return "L002";
    case DiagCode::kUnknownPredicate:
      return "L003";
    case DiagCode::kInferredModes:
      return "M001";
    case DiagCode::kNeverBound:
      return "M002";
    case DiagCode::kModeViolation:
      return "M003";
    case DiagCode::kSubsumptionNegation:
      return "T001";
    case DiagCode::kSubsumptionOrdered:
      return "T002";
  }
  return "?";
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kInfo:
      return "info";
  }
  return "?";
}

std::string FormatDiagnostic(const SymbolTable& symbols,
                             const Diagnostic& diagnostic) {
  std::string out;
  if (diagnostic.span.known()) {
    if (diagnostic.span.file != 0) {
      out += symbols.AtomName(diagnostic.span.file);
      out += ':';
    }
    out += std::to_string(diagnostic.span.line);
    out += ':';
    out += std::to_string(diagnostic.span.column);
    out += ": ";
  }
  out += SeverityName(diagnostic.severity);
  out += ' ';
  out += DiagCodeName(diagnostic.code);
  if (diagnostic.functor != kNoFunctor) {
    out += " [";
    out += symbols.AtomName(symbols.FunctorAtom(diagnostic.functor));
    out += '/';
    out += std::to_string(symbols.FunctorArity(diagnostic.functor));
    out += ']';
  }
  out += ": ";
  out += diagnostic.message;
  return out;
}

}  // namespace xsb::analysis
