#ifndef XSB_ANALYSIS_DIAGNOSTIC_H_
#define XSB_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "term/symbols.h"

namespace xsb {

// A source location carried from the lexer through the reader into stored
// clauses and analysis diagnostics. `file` is an interned atom naming the
// consult unit ("path.P" or "<consult-N>" for string consults); 0 together
// with line 0 means unknown (e.g. clauses asserted at runtime).
struct SourceSpan {
  AtomId file = 0;
  int line = 0;  // 1-based; 0 = unknown
  int column = 0;

  bool known() const { return line > 0; }
};

namespace analysis {

enum class Severity { kError, kWarning, kInfo };

// Stable diagnostic codes; the full table lives in DESIGN.md.
enum class DiagCode {
  // Stratification / safety (S...)
  kNonStratified,    // S001: negation or aggregation inside a call-graph SCC
  kUnsafeNegation,   // S002: variable under \+/tnot not bound by the body
  kUnsafeHead,       // S003: head variable not range-restricted by the body
  kUnsafeArith,      // S004: unbound variable in an arithmetic expression
  // Advisors (A...)
  kAutoTable,        // A001: predicate in a recursive SCC should be tabled
  kIndexAdvice,      // A002: call sites suggest a different index directive
  kChainDispatch,    // A003: a variable-keyed clause defeats the first-arg
                     // constant/structure switch for the whole predicate
  // Style lints (L...)
  kSingletonVar,     // L001: named variable occurs once in its clause
  kDiscontiguous,    // L002: clauses of a predicate are not contiguous
  kUnknownPredicate, // L003: call to a predicate with no clauses
  // Mode analysis (M...)
  kInferredModes,    // M001: inferred call/success modes of a predicate
  kNeverBound,       // M002: an argument no call site ever binds
  kModeViolation,    // M003: a free variable fed into a demanded-ground arg
  // Answer subsumption (T...)
  kSubsumptionNegation, // T001: lattice-tabled predicate in an SCC crossed
                        // by negation — the aggregate is not stratified
  kSubsumptionOrdered,  // T002: first(N) inside a recursive SCC is
                        // evaluation-order dependent (downgraded, not
                        // rejected)
};

// "S001", "A002", ...
const char* DiagCodeName(DiagCode code);
const char* SeverityName(Severity severity);

// Marks a diagnostic that concerns the whole program, not one predicate.
inline constexpr FunctorId kNoFunctor = 0xffffffffu;

// One structured finding of the consult-time analyzer.
struct Diagnostic {
  DiagCode code;
  Severity severity;
  FunctorId functor = kNoFunctor;  // the predicate concerned
  std::string message;
  SourceSpan span;
};

// "FILE:LINE:COL: warning S002 [p/2]: message" (omitting unknown parts).
std::string FormatDiagnostic(const SymbolTable& symbols,
                             const Diagnostic& diagnostic);

}  // namespace analysis
}  // namespace xsb

#endif  // XSB_ANALYSIS_DIAGNOSTIC_H_
