#ifndef XSB_ANALYSIS_TO_DATALOG_H_
#define XSB_ANALYSIS_TO_DATALOG_H_

#include "base/status.h"
#include "bottomup/rules.h"
#include "db/program.h"

namespace xsb::analysis {

// Translates the datalog subset of `program` into the bottom-up engine's
// representation: facts with atom/integer arguments, and rules whose bodies
// are conjunctions of positive literals and negated (\+/tnot/not) literals
// with variable or atomic arguments. Returns kInvalid for anything outside
// that subset (compound arguments, arithmetic, disjunction, cut, ...).
//
// This is the bridge the differential tests use: a program the analyzer
// calls stratified must be accepted by datalog::Stratify() and produce the
// same answers under SLG, semi-naive bottom-up, and WFS.
Status ToDatalog(const Program& program, datalog::DatalogProgram* out);

}  // namespace xsb::analysis

#endif  // XSB_ANALYSIS_TO_DATALOG_H_
