#include "analysis/to_datalog.h"

#include <algorithm>
#include <unordered_map>

#include "db/index.h"

namespace xsb::analysis {
namespace {

// Interns name/arity, rejecting the same name at two arities (the datalog
// side keys predicates by name alone).
class PredInterner {
 public:
  explicit PredInterner(datalog::DatalogProgram* out) : out_(out) {}

  Result<datalog::PredId> Intern(const std::string& name, int arity) {
    auto it = arity_of_.find(name);
    if (it != arity_of_.end() && it->second != arity) {
      return InvalidError("predicate " + name +
                          " used at two arities; outside the datalog subset");
    }
    arity_of_.emplace(name, arity);
    return out_->InternPred(name, arity);
  }

 private:
  datalog::DatalogProgram* out_;
  std::unordered_map<std::string, int> arity_of_;
};

class Translator {
 public:
  Translator(const Program& program, datalog::DatalogProgram* out)
      : symbols_(*program.symbols()), out_(out), interner_(out) {}

  Status AddClause(const Clause& clause);

 private:
  // Converts the goal at `pos` into a single literal (no control).
  Result<datalog::Literal> LiteralAt(const std::vector<Word>& cells,
                                     size_t pos, bool allow_vars);
  Status BodyAt(const std::vector<Word>& cells, size_t pos,
                std::vector<datalog::Literal>* body);

  SymbolTable& symbols_;
  datalog::DatalogProgram* out_;
  PredInterner interner_;
};

Result<datalog::Literal> Translator::LiteralAt(const std::vector<Word>& cells,
                                               size_t pos, bool allow_vars) {
  Word w = cells[pos];
  datalog::Literal literal;
  if (IsAtom(w)) {
    Result<datalog::PredId> pred =
        interner_.Intern(symbols_.AtomName(AtomOf(w)), 0);
    if (!pred.ok()) return pred.status();
    literal.pred = pred.value();
    return literal;
  }
  if (!IsFunctor(w)) {
    return InvalidError("non-callable in literal position");
  }
  FunctorId f = FunctorOf(w);
  int arity = symbols_.FunctorArity(f);
  Result<datalog::PredId> pred =
      interner_.Intern(symbols_.AtomName(symbols_.FunctorAtom(f)), arity);
  if (!pred.ok()) return pred.status();
  literal.pred = pred.value();
  literal.args.reserve(static_cast<size_t>(arity));
  size_t arg = pos + 1;
  for (int i = 0; i < arity; ++i) {
    Word a = cells[arg];
    if (IsLocal(a)) {
      if (!allow_vars) {
        return InvalidError("variable in a fact; outside the datalog subset");
      }
      literal.args.push_back(
          datalog::Arg::Var(static_cast<datalog::VarId>(PayloadOf(a))));
    } else if (IsAtom(a)) {
      literal.args.push_back(datalog::Arg::Const(
          out_->consts().Symbol(symbols_.AtomName(AtomOf(a)))));
    } else if (IsInt(a)) {
      literal.args.push_back(
          datalog::Arg::Const(out_->consts().Int(IntValue(a))));
    } else {
      return InvalidError(
          "compound argument; outside the datalog subset");
    }
    arg = SkipFlatSubterm(symbols_, cells, arg);
  }
  return literal;
}

Status Translator::BodyAt(const std::vector<Word>& cells, size_t pos,
                          std::vector<datalog::Literal>* body) {
  Word w = cells[pos];
  if (IsAtom(w)) {
    const std::string& name = symbols_.AtomName(AtomOf(w));
    if (name == "true") return Status::Ok();
    Result<datalog::Literal> literal =
        LiteralAt(cells, pos, /*allow_vars=*/true);
    if (!literal.ok()) return literal.status();
    body->push_back(std::move(literal.value()));
    return Status::Ok();
  }
  if (!IsFunctor(w)) {
    return InvalidError("non-callable body goal");
  }
  FunctorId f = FunctorOf(w);
  const std::string& name = symbols_.AtomName(symbols_.FunctorAtom(f));
  int arity = symbols_.FunctorArity(f);
  if (name == "," && arity == 2) {
    size_t left = pos + 1;
    size_t right = SkipFlatSubterm(symbols_, cells, left);
    Status s = BodyAt(cells, left, body);
    if (!s.ok()) return s;
    return BodyAt(cells, right, body);
  }
  if ((name == "\\+" || name == "tnot" || name == "e_tnot" ||
       name == "not") &&
      arity == 1) {
    Result<datalog::Literal> literal =
        LiteralAt(cells, pos + 1, /*allow_vars=*/true);
    if (!literal.ok()) return literal.status();
    literal.value().negated = true;
    body->push_back(std::move(literal.value()));
    return Status::Ok();
  }
  Result<datalog::Literal> literal =
      LiteralAt(cells, pos, /*allow_vars=*/true);
  if (!literal.ok()) return literal.status();
  body->push_back(std::move(literal.value()));
  return Status::Ok();
}

Status Translator::AddClause(const Clause& clause) {
  const std::vector<Word>& cells = clause.term.cells;
  if (!clause.is_rule) {
    if (clause.term.num_vars != 0) {
      return InvalidError("fact with variables; outside the datalog subset");
    }
    Result<datalog::Literal> fact =
        LiteralAt(cells, clause.head_pos, /*allow_vars=*/false);
    if (!fact.ok()) return fact.status();
    datalog::Tuple tuple;
    tuple.reserve(fact.value().args.size());
    for (const datalog::Arg& arg : fact.value().args) {
      tuple.push_back(arg.id);
    }
    out_->AddFact(fact.value().pred, std::move(tuple));
    return Status::Ok();
  }

  datalog::Rule rule;
  Result<datalog::Literal> head =
      LiteralAt(cells, clause.head_pos, /*allow_vars=*/true);
  if (!head.ok()) return head.status();
  rule.head = std::move(head.value());
  size_t body_pos = SkipFlatSubterm(symbols_, cells, clause.head_pos);
  Status s = BodyAt(cells, body_pos, &rule.body);
  if (!s.ok()) return s;
  rule.num_vars = clause.term.num_vars;
  out_->AddRule(std::move(rule));
  return Status::Ok();
}

}  // namespace

Status ToDatalog(const Program& program, datalog::DatalogProgram* out) {
  Translator translator(program, out);
  // Deterministic order: predicates sorted by functor id.
  std::vector<FunctorId> functors;
  functors.reserve(program.predicates().size());
  for (const auto& [functor, pred] : program.predicates()) {
    (void)pred;
    functors.push_back(functor);
  }
  std::sort(functors.begin(), functors.end());
  for (FunctorId functor : functors) {
    const Predicate* pred = program.Lookup(functor);
    for (const Clause& clause : pred->clauses()) {
      if (clause.erased) continue;
      Status s = translator.AddClause(clause);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace xsb::analysis
