#ifndef XSB_ANALYSIS_ANALYZER_H_
#define XSB_ANALYSIS_ANALYZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/modes.h"
#include "db/program.h"

namespace xsb::analysis {

// How a call site reaches its callee, as far as stratification is concerned.
// Negative and aggregated edges both force the callee into a strictly lower
// stratum; they are distinguished only for diagnostics.
enum class EdgeKind { kPositive, kNegative, kAggregate };

// One edge of the predicate call graph. `span` locates the clause the edge
// was collected from, so stratification errors can cite source positions.
struct CallEdge {
  FunctorId from;
  FunctorId to;
  EdgeKind kind;
  SourceSpan span;
};

// A strongly connected component of the call graph, in Tarjan (reverse
// topological) discovery order: every edge out of a component leads to an
// earlier component.
struct SccInfo {
  std::vector<FunctorId> members;   // sorted by functor id
  bool recursive = false;           // a cycle runs through the component
  bool negative_internal = false;   // ...and crosses negation/aggregation
  // For negative_internal components: one witness edge for the message.
  CallEdge witness{};
};

enum class StratVerdict {
  kStratified,   // no negation inside any SCC: SLG/bottom-up safe as-is
  kWfsRequired,  // negation inside an SCC: downgrade to well-founded
                 // semantics (or rely on runtime modular-stratification
                 // checks, which may reject the query)
};

// Everything the consult-time pass pipeline produced.
struct AnalysisResult {
  std::vector<CallEdge> edges;
  std::vector<SccInfo> sccs;
  std::unordered_map<FunctorId, int> scc_of;
  StratVerdict verdict = StratVerdict::kStratified;
  // True when a HiLog/var call forced conservative widening (edges to every
  // in-scope predicate), making SCCs coarser than the real call structure.
  bool widened = false;

  std::vector<Diagnostic> diagnostics;

  // Auto-table advisor output: untabled predicates in recursive SCCs.
  std::vector<FunctorId> table_suggestions;
  // Index advisor output: predicate -> 1-based argument to index on.
  std::vector<std::pair<FunctorId, int>> index_suggestions;

  // Mode/groundness analysis output (per-predicate call-pattern tabulation);
  // empty when the mode pass is disabled.
  ModeResult modes;

  bool stratified() const { return verdict == StratVerdict::kStratified; }
};

struct AnalyzeOptions {
  bool safety_pass = true;
  bool advisor_pass = true;
  bool lint_pass = true;
  // Run the abstract-interpretation mode pass (analysis/modes.h) and fold
  // its M001-M003 findings into the diagnostics.
  bool mode_pass = true;
  // Known entry-point call shapes to seed the mode fixpoint with, beyond
  // what in-program call sites reveal.
  std::vector<ModeEntry> mode_entries;
};

// Runs the pass pipeline over every predicate of `program`: call-graph
// construction (positive/negative/aggregated edges, HiLog calls widened
// conservatively), Tarjan SCCs, stratification check, safety analysis,
// auto-table and index advisors, and style lints. Appends the consult-time
// lints stored on the program (singleton variables) to the diagnostics.
// Read-only: never mutates the program.
AnalysisResult Analyze(const Program& program,
                       const AnalyzeOptions& options = AnalyzeOptions());

// Applies `result`'s auto-table suggestions restricted to `scope` (the
// predicates a consult unit defined; empty = all). Returns the functors
// newly tabled. This is what `:- auto_table.` runs.
std::vector<FunctorId> ApplyTableSuggestions(
    Program* program, const AnalysisResult& result,
    const std::vector<FunctorId>& scope);

// Stores the stratification verdict on the program: every member of a
// negation-infected SCC gets its S001 message, which the tabling evaluator
// uses to replace its generic runtime kStratification error.
void PublishVerdict(Program* program, const AnalysisResult& result);

// Per-predicate sets of incremental dynamic predicates reachable through the
// call graph (a predicate declared incremental reaches itself). These seed
// the table space's subgoal->predicate dependency edges, guaranteeing that
// invalidation over-approximates the truly affected tables even where the
// runtime edge capture is blind (call/N, HiLog widening).
std::unordered_map<FunctorId, std::vector<FunctorId>> IncrementalDependencies(
    const Program& program, const AnalysisResult& result);

// Stores IncrementalDependencies() on the program for the evaluator to read
// when it creates tables.
void PublishIncrementalDeps(Program* program, const AnalysisResult& result);

// Assigns each predicate its evaluation shard (call-graph SCC index mod
// kNumEvalShards) and the mask of shards holding *tabled* SCCs statically
// reachable from it. The shared-table evaluator acquires a cold batch's
// whole reach mask up front, so batches over call-graph-independent tabled
// subgoals own disjoint shard sets and evaluate concurrently. Masks are
// hints, not load-bearing: clauses asserted after this pass can understate
// reachability, which the evaluator's per-call ownership check repairs at
// runtime (shard escalation, or the coarse-lock fallback).
void PublishEvalShards(Program* program, const AnalysisResult& result);

}  // namespace xsb::analysis

#endif  // XSB_ANALYSIS_ANALYZER_H_
