#ifndef XSB_ANALYSIS_MODES_H_
#define XSB_ANALYSIS_MODES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/diagnostic.h"
#include "db/program.h"

namespace xsb::analysis {

struct AnalysisResult;  // analyzer.h (which includes this header)

// --- The instantiation lattice ------------------------------------------------
//
// Abstract description of one argument position, ordered by the set of
// concrete terms it may denote:
//
//         any
//        /    .
//   nonvar   free
//      |
//    ground
//
// `ground` (no variables anywhere) ⊑ `nonvar` (outer symbol known) ⊑ `any`;
// `free` (definitely an unbound variable) ⊑ `any`. `free` and the bound
// states are incomparable: their concretizations are disjoint.
enum class Inst : uint8_t {
  kGround = kModeGround,
  kNonvar = kModeNonvar,
  kFree = kModeFree,
  kAny = kModeAny,
};

// Least upper bound under the ordering above.
Inst JoinInst(Inst a, Inst b);
// a ⊑ b (a describes a subset of the terms b describes).
bool InstLeq(Inst a, Inst b);
// Abstract unification: the state both sides share after unify succeeds.
// unify can only instantiate further, so the result is the most *bound* of
// the two sides (ground wins; nonvar next; free∪free stays free; free
// against any may come out anything).
Inst AbsUnifyInst(Inst a, Inst b);
// Meet used for picking a specialization target from several observed call
// patterns: the most precise compatible state, or kAny when the patterns
// genuinely conflict (free vs bound — specializing either way would make
// half the calls take the fallback).
Inst SpecMeetInst(Inst a, Inst b);
// "ground" / "nonvar" / "free" / "any".
const char* InstName(Inst inst);

using InstVec = std::vector<Inst>;

// One tabulated (call pattern -> success pattern) entry of a predicate.
struct ModePattern {
  InstVec call;
  // Join over the clauses' head-argument states at clause exit. Only
  // meaningful when `success_known`; a pattern whose every clause is cut off
  // by a definitely-failing goal never succeeds (bottom).
  InstVec success;
  bool success_known = false;
  // Created from an in-program call site (or an explicit entry seed), as
  // opposed to the implicit all-`any` top pattern every predicate gets.
  bool from_site = false;
  // Where the pattern was first demanded (a call site span), for M003.
  SourceSpan origin;
  // (callee, callee pattern index) edges of the per-pattern call graph,
  // rebuilt on each fixpoint visit. PublishEvalShards turns these into
  // per-call-pattern shard reach masks.
  std::vector<std::pair<FunctorId, size_t>> calls;
};

// Everything the mode analysis derived about one predicate.
struct PredModes {
  // patterns[0] is always the all-`any` top pattern (any caller unknown to
  // the analysis — a top-level query, a meta-call — is an instance of it).
  std::vector<ModePattern> patterns;
  // Join over the site-derived patterns' call vectors; empty when the
  // predicate has no analyzed call site.
  InstVec site_join;
  // SpecMeet over the site-derived patterns' call vectors: the most precise
  // pattern worth specializing code for (runtime-guarded, so precision here
  // costs only fallbacks, never soundness). Empty when no site exists.
  InstVec spec_meet;
  // Join over every pattern's known success vector; empty when no pattern
  // ever succeeds.
  InstVec success_join;
  // Head argument positions every clause demands bound at call time (the
  // argument flows into arithmetic before any body goal could bind it).
  // Calling such a position with a definitely-free variable is M003.
  std::vector<bool> demands_ground;
};

// One M003 witness: a call site passing a definitely-free variable into an
// argument position the callee demands ground.
struct ModeViolation {
  FunctorId caller = kNoFunctor;
  FunctorId callee = kNoFunctor;
  int argnum = 0;  // 1-based
  SourceSpan span;
};

struct ModeResult {
  std::unordered_map<FunctorId, PredModes> preds;
  std::vector<ModeViolation> violations;
  // Per predicate, per live clause (in clause-id order): the user/tabled
  // predicates its body calls, collected once under the top pattern. Fuels
  // the first-argument key masks of PublishEvalShards.
  std::unordered_map<FunctorId, std::vector<std::vector<FunctorId>>>
      clause_callees;
  // Predicates with a clause containing a meta-call whose callee set is
  // unknown (variable goal, call/N closure in a variable): their per-clause
  // callee lists understate reachability, so key masks are not built.
  std::unordered_set<FunctorId> meta_callers;
  // Fixpoint worklist visits (diagnostic; the lattice is finite, so the
  // analysis always converges).
  uint64_t iterations = 0;
};

// Optional entry seeds: known query shapes (e.g. "nrev is always called
// with its first argument ground") that the in-program call sites cannot
// reveal. Seeded patterns count as site-derived.
struct ModeEntry {
  FunctorId functor = kNoFunctor;
  InstVec call;
};

// Runs the per-predicate, per-call-pattern fixpoint over `program`'s
// clauses. `analysis` supplies the Tarjan SCC numbering: the worklist is
// prioritized in reverse-topological order (callees before callers), so
// each component converges before the components calling into it are
// (re-)visited. Read-only over the program.
ModeResult AnalyzeModes(const Program& program, const AnalysisResult& analysis,
                        const std::vector<ModeEntry>& entries = {});

// Stores the inferred modes on the program's predicates (Predicate::modes(),
// consumed by the WAM specializer, predicate_mode/2 and the runtime
// soundness oracle), stamped with the program's current clause epoch so
// consumers can detect staleness after runtime asserts. Also derives the
// per-call-pattern shard reach masks and the first-argument key masks from
// `analysis`'s SCC numbering, so it wants the full AnalysisResult (with its
// `modes` member filled by Analyze).
void PublishModes(Program* program, const AnalysisResult& analysis);

// Formats an InstVec as "(ground, free)" for messages and shell output.
std::string FormatInstVec(const InstVec& vec);

}  // namespace xsb::analysis

#endif  // XSB_ANALYSIS_MODES_H_
