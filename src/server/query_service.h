#ifndef XSB_SERVER_QUERY_SERVICE_H_
#define XSB_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/status.h"
#include "db/program.h"
#include "engine/machine.h"
#include "tabling/evaluator.h"
#include "term/store.h"
#include "xsb/engine.h"

namespace xsb {

// Concurrent query serving over one shared table space.
//
// A QueryService owns a single Program + TableSpace + InternTable and a pool
// of worker threads. Each worker is a full private session — its own
// TermStore heap, Machine and Evaluator — but all sessions evaluate against
// the one shared TableSpace, so a table computed by any worker serves every
// later query from every worker:
//
//   xsb::QueryService service({.num_workers = 4});
//   service.Consult(":- table path/2."
//                   "path(X,Y) :- edge(X,Y)."
//                   "path(X,Y) :- path(X,Z), edge(Z,Y)."
//                   "edge(1,2). edge(2,3).");
//   auto warm = service.Query("path(1,X)");          // blocking
//   auto fut  = service.Submit("path(2,X)");         // async, any worker
//   auto answers = fut.get();
//
// Concurrency contract (DESIGN.md "Threading model" has the full story):
//   * Warm queries — every tabled call hits a published complete+valid
//     table — run entirely lock-free: variant probe via the concurrent call
//     trie, answer enumeration straight off the append-only answer tries.
//   * Cold queries evaluate *in parallel* when independent: the first
//     caller of an unevaluated variant acquires its predicate's shard
//     reach mask (analyzer SCC output) and computes it; workers whose cold
//     roots reach disjoint shard sets evaluate concurrently against the
//     shared space, and concurrent callers of the *same* variant park on
//     the completion condvar instead of duplicating the work. Dependencies
//     that cross the owned mask mid-evaluation widen it non-blockingly or
//     restart the batch under the full mask (coarse_fallbacks counter).
//   * Consult/Update are pause-the-world: the service drains in-flight
//     queries, mutates the program on the control session (which owns the
//     Program's update-listener slot, so incremental invalidation works),
//     then resumes the pool. Queries submitted meanwhile just queue.
//   * Every worker holds an epoch slot and brackets each query with an
//     epoch guard, so tables retired by an update are reclaimed only after
//     every reader that could see them has moved on.
class QueryService {
 public:
  struct Options {
    int num_workers = 2;           // worker threads (>= 1)
    bool answer_trie = true;       // see Engine::Options
    bool early_completion = false;
    bool incremental = true;
  };

  QueryService() : QueryService(Options()) {}
  explicit QueryService(Options options);
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Program maintenance (pause-the-world, serialized) --------------------

  // Consults HiLog source text on the control session.
  Status Consult(std::string_view text);
  // Runs `goal` once on the control session (assert/retract updates,
  // abolish_table_call/1, ...). Incremental invalidation triggered by the
  // goal propagates through the shared table space before workers resume.
  Status Update(std::string_view goal);

  // --- Queries (concurrent) -------------------------------------------------

  // Enqueues `goal` for the next free worker; the future delivers all
  // answers (or the evaluation error).
  std::future<Result<std::vector<Answer>>> Submit(std::string goal);

  // Blocking conveniences over Submit.
  Result<std::vector<Answer>> Query(std::string_view goal);
  Result<size_t> Count(std::string_view goal);

  // --- Counters -------------------------------------------------------------

  // Per-worker and aggregate service counters. All underlying counters are
  // relaxed atomics: each is an independent monotonic event count; reading
  // while the pool is serving observes some recent value of each counter,
  // with no cross-counter snapshot implied.
  struct WorkerStats {
    uint64_t queries_served = 0;
    uint64_t errors = 0;
  };
  struct ServiceStats {
    std::vector<WorkerStats> per_worker;
    uint64_t queries_served = 0;      // sum over workers
    uint64_t shared_table_hits = 0;   // lock-free warm-table serves
    uint64_t waits_on_inprogress = 0; // callers parked on another batch
    uint64_t epochs_retired = 0;      // retired answer tables reclaimed
    uint64_t parallel_batches = 0;    // cold batches on a proper shard subset
    uint64_t shard_escalations = 0;   // successful mid-batch mask widenings
    uint64_t coarse_fallbacks = 0;    // batches restarted under all shards
  };
  ServiceStats Stats() const;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Escape hatches for tests and benches.
  TableSpace& tables() { return *tables_; }
  Program& program() { return *program_; }

 private:
  // One full evaluation session: private heap + machine, shared tables.
  struct Session {
    std::unique_ptr<TermStore> store;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Evaluator> evaluator;
  };

  struct Worker {
    Session session;
    std::thread thread;
    std::atomic<uint64_t> queries_served{0};
    std::atomic<uint64_t> errors{0};
  };

  struct Job {
    std::string goal;
    std::promise<Result<std::vector<Answer>>> promise;
  };

  Session MakeSession(bool control);

  // Parses and runs `goal` on `session`, collecting up to `max_answers`
  // answers. The caller brackets with an epoch guard (workers) or the
  // paused world (control).
  Result<std::vector<Answer>> RunGoal(Session& session, std::string_view goal,
                                      size_t max_answers);

  void WorkerLoop(Worker* worker);

  // Pause-the-world bracket for program mutation: blocks new job pickup,
  // drains in-flight queries, runs `fn`, resumes the pool.
  Status PausedMutation(const std::function<Status()>& fn);

  Options options_;
  std::unique_ptr<SymbolTable> symbols_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<TableSpace> tables_;
  Session control_;                  // owns the update-listener slot
  std::mutex control_mutex_;         // serializes Consult/Update

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;  // workers: job available / unpaused
  std::condition_variable idle_cv_;   // control: a worker went idle
  std::deque<Job> queue_;
  int busy_workers_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
};

}  // namespace xsb

#endif  // XSB_SERVER_QUERY_SERVICE_H_
