#include "server/query_service.h"

#include <utility>

#include "db/loader.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "tabling/epoch.h"

namespace xsb {

QueryService::QueryService(Options options)
    : options_(options),
      symbols_(std::make_unique<SymbolTable>()),
      program_(std::make_unique<Program>(symbols_.get())),
      tables_(std::make_unique<TableSpace>(symbols_.get(),
                                           options.answer_trie,
                                           /*shared=*/true)) {
  control_ = MakeSession(/*control=*/true);
  int n = options_.num_workers < 1 ? 1 : options_.num_workers;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->session = MakeSession(/*control=*/false);
    workers_.push_back(std::move(worker));
  }
  // Sessions first, then threads: a worker loop must never observe a
  // half-built pool.
  for (auto& worker : workers_) {
    worker->thread = std::thread(&QueryService::WorkerLoop, this,
                                 worker.get());
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& job : queue_) {
    job.promise.set_value(
        Status(ErrorCode::kInvalid, "query service shut down"));
  }
}

QueryService::Session QueryService::MakeSession(bool control) {
  Session session;
  session.store = std::make_unique<TermStore>(symbols_.get());
  session.machine =
      std::make_unique<Machine>(session.store.get(), program_.get());
  Evaluator::Options eval;
  eval.answer_trie = options_.answer_trie;
  eval.early_completion = options_.early_completion;
  eval.incremental = options_.incremental;
  // The Program has one update-listener slot; the control session owns it.
  // All sessions share one table space, so invalidation raised there is
  // visible to every worker anyway.
  eval.register_update_listener = control;
  session.evaluator = std::make_unique<Evaluator>(session.machine.get(),
                                                  eval, tables_.get());
  return session;
}

Status QueryService::Consult(std::string_view text) {
  return PausedMutation([&]() -> Status {
    Loader loader(control_.store.get(), program_.get());
    return loader.ConsultString(text);
  });
}

Status QueryService::Update(std::string_view goal) {
  return PausedMutation([&]() -> Status {
    Result<std::vector<Answer>> result =
        RunGoal(control_, goal, /*max_answers=*/1);
    if (!result.ok()) return result.status();
    if (result.value().empty()) {
      return Status(ErrorCode::kInvalid,
                    "update goal failed: " + std::string(goal));
    }
    return Status::Ok();
  });
}

std::future<Result<std::vector<Answer>>> QueryService::Submit(
    std::string goal) {
  Job job;
  job.goal = std::move(goal);
  std::future<Result<std::vector<Answer>>> future =
      job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      job.promise.set_value(
          Status(ErrorCode::kInvalid, "query service shut down"));
      return future;
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return future;
}

Result<std::vector<Answer>> QueryService::Query(std::string_view goal) {
  return Submit(std::string(goal)).get();
}

Result<size_t> QueryService::Count(std::string_view goal) {
  Result<std::vector<Answer>> answers = Query(goal);
  if (!answers.ok()) return answers.status();
  return answers.value().size();
}

Result<std::vector<Answer>> QueryService::RunGoal(Session& session,
                                                  std::string_view goal,
                                                  size_t max_answers) {
  std::string buffer(goal);
  buffer += " .";
  Reader reader(session.store.get(), program_->ops(), buffer,
                program_->hilog_atoms());
  Result<Word> parsed = reader.ReadClause();
  if (!parsed.ok()) return parsed.status();
  std::vector<std::pair<std::string, Word>> names = reader.var_names();

  std::vector<Answer> answers;
  size_t trail = session.store->TrailMark();
  size_t heap = session.store->HeapMark();
  Status status = session.machine->Solve(parsed.value(), [&]() {
    Answer answer;
    answer.bindings.reserve(names.size());
    for (const auto& [name, cell] : names) {
      answer.bindings.emplace_back(
          name, WriteTerm(*session.store, *program_->ops(), cell));
    }
    answers.push_back(std::move(answer));
    return answers.size() < max_answers ? SolveAction::kContinue
                                        : SolveAction::kStop;
  });
  session.store->UndoTrail(trail);
  session.store->TruncateHeap(heap);
  if (!status.ok()) return status;
  return answers;
}

void QueryService::WorkerLoop(Worker* worker) {
  // Each serving thread owns an epoch slot for the lifetime of the pool;
  // individual queries are bracketed with EpochGuard below.
  int slot = tables_->epochs().AcquireSlot();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) break;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_workers_;
    }
    {
      // The guard pins this thread's epoch for the whole query: any table
      // retired after this point stays allocated until we exit.
      EpochGuard guard(&tables_->epochs(), slot);
      Result<std::vector<Answer>> result =
          RunGoal(worker->session, job.goal, /*max_answers=*/SIZE_MAX);
      worker->queries_served.fetch_add(1, std::memory_order_relaxed);
      if (!result.ok()) {
        worker->errors.fetch_add(1, std::memory_order_relaxed);
      }
      job.promise.set_value(std::move(result));
    }
    // Outside the guard: reclaim whatever every serving thread has passed.
    tables_->ReleaseRetiredAnswers();
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --busy_workers_;
    }
    idle_cv_.notify_all();
  }
  tables_->epochs().ReleaseSlot(slot);
}

Status QueryService::PausedMutation(const std::function<Status()>& fn) {
  std::lock_guard<std::mutex> control(control_mutex_);
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    paused_ = true;
    // Workers re-check `paused_` before picking up a job, so once the busy
    // count hits zero the world is stopped: no session reads the Program
    // or evaluates until we resume.
    idle_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  }
  Status status = fn();
  // All workers idle, all epoch slots idle: every retired table frees now.
  tables_->ReleaseRetiredAnswers();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
  return status;
}

QueryService::ServiceStats QueryService::Stats() const {
  ServiceStats stats;
  stats.per_worker.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerStats ws;
    ws.queries_served =
        worker->queries_served.load(std::memory_order_relaxed);
    ws.errors = worker->errors.load(std::memory_order_relaxed);
    stats.queries_served += ws.queries_served;
    stats.per_worker.push_back(ws);
  }
  const TableStats& ts = tables_->stats();
  stats.shared_table_hits =
      ts.shared_table_hits.load(std::memory_order_relaxed);
  stats.waits_on_inprogress =
      ts.waits_on_inprogress.load(std::memory_order_relaxed);
  stats.epochs_retired = ts.epochs_retired.load(std::memory_order_relaxed);
  stats.parallel_batches =
      ts.parallel_batches.load(std::memory_order_relaxed);
  stats.shard_escalations =
      ts.shard_escalations.load(std::memory_order_relaxed);
  stats.coarse_fallbacks =
      ts.coarse_fallbacks.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace xsb
