#ifndef XSB_BOTTOMUP_MAGIC_H_
#define XSB_BOTTOMUP_MAGIC_H_

#include "base/status.h"
#include "bottomup/rules.h"

namespace xsb::datalog {

// Magic-sets rewriting with adornments and a left-to-right sideways
// information passing strategy — the goal-directedness transformation the
// bottom-up systems of Table 1 (CORAL, LDL, Aditi) rely on, and the method
// the paper contrasts with SLG's tabled subgoals ("the magic facts ... appear
// to correspond to the tabled subgoals of an SLG evaluation", section 2).
//
// Rewrites `program` in place: IDB rules are replaced by adorned rules plus
// magic rules, and the magic seed fact for `query` is added. Returns the
// adorned query literal to Select after evaluation.
//
// Restrictions: rules must be positive (magic with stratified negation needs
// a doubled program; the rewritten program is rejected if negation occurs).
Result<Literal> MagicRewrite(DatalogProgram* program, const Literal& query);

// The factoring optimization of Naughton et al. (the paper's CORAL-fac
// configuration): for a left-linear transitive closure
//     p(X,Y) :- e(X,Y).      p(X,Y) :- p(X,Z), e(Z,Y).
// queried as p(c, Y), the binary recursion factors into a unary one
//     fp(Y) :- e(c,Y).       fp(Y) :- fp(Z), e(Z,Y).
// Rewrites `program` in place and returns the factored query literal, or an
// error when the pattern does not apply.
Result<Literal> FactorRewrite(DatalogProgram* program, const Literal& query);

}  // namespace xsb::datalog

#endif  // XSB_BOTTOMUP_MAGIC_H_
