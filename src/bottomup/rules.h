#ifndef XSB_BOTTOMUP_RULES_H_
#define XSB_BOTTOMUP_RULES_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "bottomup/relation.h"

namespace xsb::datalog {

using PredId = uint32_t;
using VarId = uint32_t;

// A rule argument: a variable or a constant.
struct Arg {
  bool is_var;
  uint32_t id;  // VarId or Value

  static Arg Var(VarId v) { return Arg{true, v}; }
  static Arg Const(Value c) { return Arg{false, c}; }
  bool operator==(const Arg& o) const {
    return is_var == o.is_var && id == o.id;
  }
};

struct Literal {
  // Built-in arithmetic literals `add(X, Y, Z)` (Z = X + Y) and
  // `min(X, Y, Z)` (Z = min(X, Y)) over integers: evaluated in place during
  // the join, no stored relation. The inputs must be bound when the join
  // reaches the literal, so write it after the literals that bind X and Y;
  // an unbound or non-integer input simply fails to match.
  enum class Builtin : uint8_t { kNone, kAdd, kMin };

  PredId pred;
  bool negated = false;
  Builtin builtin = Builtin::kNone;
  std::vector<Arg> args;

  bool is_builtin() const { return builtin != Builtin::kNone; }
};

struct Rule {
  Literal head;
  std::vector<Literal> body;
  uint32_t num_vars = 0;  // variables are 0..num_vars-1
};

// A datalog program: predicate table, EDB relations, and IDB rules. This is
// the input format of the bottom-up engine (the set-at-a-time baseline) and
// of the well-founded-semantics evaluator.
class DatalogProgram {
 public:
  PredId InternPred(std::string_view name, int arity);
  const std::string& PredName(PredId p) const { return preds_[p].name; }
  int PredArity(PredId p) const { return preds_[p].arity; }
  size_t num_preds() const { return preds_.size(); }

  ConstPool& consts() { return consts_; }
  const ConstPool& consts() const { return consts_; }

  void AddFact(PredId pred, Tuple tuple) { edb_[pred].emplace_back(tuple); }
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  // Per-predicate answer-subsumption lattice, mirroring the SLG engine's
  // `:- table p(_, min)`: derived tuples agreeing on every column but `pos`
  // collapse to the lattice-best one. Declared textually as
  // `lattice(p, Arity, Pos, min).` / `lattice(p, Arity, Pos, first, N).`
  // (Pos is 1-based). Applies to IDB derivation; EDB facts load unchanged.
  struct Lattice {
    enum class Kind : uint8_t { kMin, kMax, kFirst };
    Kind kind = Kind::kMin;
    int pos = 0;     // aggregated column, 0-based
    int64_t n = 0;   // kFirst: per-key cap
  };
  void SetLattice(PredId pred, Lattice lattice) {
    lattices_[pred] = lattice;
  }
  const Lattice* lattice(PredId pred) const {
    auto it = lattices_.find(pred);
    return it == lattices_.end() ? nullptr : &it->second;
  }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& rules() { return rules_; }
  const std::unordered_map<PredId, std::vector<Tuple>>& edb() const {
    return edb_;
  }

  // True if some rule defines `pred` (it is an IDB predicate).
  bool IsIdb(PredId pred) const;

  // Basic range-restriction (safety) validation:
  //  * every head variable occurs in a positive body literal,
  //  * every variable of a negated literal occurs in a positive literal.
  Status CheckSafety() const;

  std::string LiteralToString(const Literal& literal) const;
  std::string RuleToString(const Rule& rule) const;

 private:
  struct PredInfo {
    std::string name;
    int arity;
  };
  std::vector<PredInfo> preds_;
  std::unordered_map<std::string, PredId> pred_ids_;
  ConstPool consts_;
  std::vector<Rule> rules_;
  std::unordered_map<PredId, std::vector<Tuple>> edb_;
  std::unordered_map<PredId, Lattice> lattices_;
};

// Parses a textual datalog program:
//   edge(1, 2).  path(X,Y) :- edge(X,Y).  path(X,Y) :- path(X,Z), edge(Z,Y).
//   wins(X) :- move(X,Y), not wins(Y).
// Variables are capitalized; `not ` marks negative literals; constants are
// integers or lowercase symbols. Comments: % to end of line.
Status ParseDatalog(std::string_view text, DatalogProgram* program);

// Parses a single query literal such as "path(1, X)".
Result<Literal> ParseQuery(std::string_view text, DatalogProgram* program);

}  // namespace xsb::datalog

#endif  // XSB_BOTTOMUP_RULES_H_
