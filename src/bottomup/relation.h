#ifndef XSB_BOTTOMUP_RELATION_H_
#define XSB_BOTTOMUP_RELATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xsb::datalog {

// A datalog constant: an interned integer or symbol. The bottom-up engine is
// deliberately independent of the tuple-at-a-time term machinery — it is the
// stand-in for the set-at-a-time systems (CORAL, LDL) that section 5
// compares against.
using Value = uint32_t;

// Interns datalog constants.
class ConstPool {
 public:
  Value Int(int64_t value);
  Value Symbol(std::string_view name);

  bool IsInt(Value v) const { return entries_[v].is_int; }
  int64_t IntOf(Value v) const { return entries_[v].int_value; }
  const std::string& NameOf(Value v) const { return entries_[v].name; }
  std::string ToString(Value v) const;

 private:
  struct Entry {
    bool is_int;
    int64_t int_value;
    std::string name;
  };
  std::vector<Entry> entries_;
  std::unordered_map<int64_t, Value> int_ids_;
  std::unordered_map<std::string, Value> symbol_ids_;
};

using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 1469598103934665603ULL;
    for (Value v : t) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// A set of same-arity tuples with duplicate elimination and lazily built
// per-column hash indexes (the join indexes a set-at-a-time engine uses).
class Relation {
 public:
  explicit Relation(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // Returns true if the tuple was new.
  bool Insert(const Tuple& tuple);
  bool Contains(const Tuple& tuple) const {
    return dedup_.count(tuple) > 0;
  }

  // Tombstones a row replaced by answer subsumption. The row stays in
  // tuples() so probe indexes remain valid; scans and membership tests must
  // skip it via IsDead. The tuple leaves the dedup set, so a *different*
  // tuple may be inserted afresh later (a lattice only replaces with
  // strictly better values, so the same tuple never comes back).
  void Kill(uint32_t row);
  bool IsDead(uint32_t row) const {
    return row < dead_.size() && dead_[row] != 0;
  }
  size_t live_size() const { return tuples_.size() - num_dead_; }

  // Builds (once) and uses a hash index on `column`; returns the row ids
  // whose `column` equals `v`.
  const std::vector<uint32_t>& Probe(int column, Value v);

  void Clear();

 private:
  static const std::vector<uint32_t> kEmptyRows;

  int arity_;
  std::vector<Tuple> tuples_;
  std::vector<uint8_t> dead_;  // grown on first Kill; empty = all live
  size_t num_dead_ = 0;
  std::unordered_map<Tuple, uint32_t, TupleHash> dedup_;
  // indexes_[c] maps value -> row ids; absent until first probe on c.
  std::unordered_map<int, std::unordered_map<Value, std::vector<uint32_t>>>
      indexes_;
};

}  // namespace xsb::datalog

#endif  // XSB_BOTTOMUP_RELATION_H_
