#include "bottomup/rules.h"

#include <cctype>

namespace xsb::datalog {

PredId DatalogProgram::InternPred(std::string_view name, int arity) {
  std::string key = std::string(name) + "/" + std::to_string(arity);
  auto it = pred_ids_.find(key);
  if (it != pred_ids_.end()) return it->second;
  PredId id = static_cast<PredId>(preds_.size());
  preds_.push_back(PredInfo{std::string(name), arity});
  pred_ids_.emplace(std::move(key), id);
  return id;
}

bool DatalogProgram::IsIdb(PredId pred) const {
  for (const Rule& rule : rules_) {
    if (rule.head.pred == pred) return true;
  }
  return false;
}

Status DatalogProgram::CheckSafety() const {
  for (const Rule& rule : rules_) {
    std::vector<bool> positive(rule.num_vars, false);
    for (const Literal& literal : rule.body) {
      if (literal.negated) continue;
      if (literal.is_builtin()) {
        // add/min bind only their output; the first two args are inputs.
        if (literal.args[2].is_var) positive[literal.args[2].id] = true;
        continue;
      }
      for (const Arg& arg : literal.args) {
        if (arg.is_var) positive[arg.id] = true;
      }
    }
    for (const Arg& arg : rule.head.args) {
      if (arg.is_var && !positive[arg.id]) {
        return InvalidError("unsafe rule (head variable not bound): " +
                            RuleToString(rule));
      }
    }
    for (const Literal& literal : rule.body) {
      if (literal.is_builtin()) {
        for (int i = 0; i < 2; ++i) {
          const Arg& arg = literal.args[i];
          if (arg.is_var && !positive[arg.id]) {
            return InvalidError("unsafe builtin input: " + RuleToString(rule));
          }
        }
        continue;
      }
      if (!literal.negated) continue;
      for (const Arg& arg : literal.args) {
        if (arg.is_var && !positive[arg.id]) {
          return InvalidError("unsafe negation: " + RuleToString(rule));
        }
      }
    }
  }
  return Status::Ok();
}

std::string DatalogProgram::LiteralToString(const Literal& literal) const {
  std::string out;
  if (literal.negated) out += "not ";
  out += PredName(literal.pred);
  if (!literal.args.empty()) {
    out += '(';
    for (size_t i = 0; i < literal.args.size(); ++i) {
      if (i > 0) out += ',';
      const Arg& arg = literal.args[i];
      if (arg.is_var) {
        out += "V" + std::to_string(arg.id);
      } else {
        out += consts_.ToString(arg.id);
      }
    }
    out += ')';
  }
  return out;
}

std::string DatalogProgram::RuleToString(const Rule& rule) const {
  std::string out = LiteralToString(rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += LiteralToString(rule.body[i]);
    }
  }
  return out + ".";
}

namespace {

// A minimal recursive-descent parser for the datalog subset.
class DatalogParser {
 public:
  DatalogParser(std::string_view text, DatalogProgram* program)
      : text_(text), program_(program) {}

  Status ParseProgram() {
    SkipLayout();
    while (pos_ < text_.size()) {
      Status s = ParseClause();
      if (!s.ok()) return s;
      SkipLayout();
    }
    return Status::Ok();
  }

  Result<Literal> ParseSingleLiteral() {
    SkipLayout();
    std::unordered_map<std::string, VarId> vars;
    uint32_t next_var = 0;
    Result<Literal> lit = ParseLiteral(&vars, &next_var);
    return lit;
  }

 private:
  void SkipLayout() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eat(char c) {
    SkipLayout();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatWord(std::string_view word) {
    SkipLayout();
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseIdent() {
    SkipLayout();
    if (pos_ >= text_.size() ||
        (!std::isalpha(static_cast<unsigned char>(text_[pos_])) &&
         text_[pos_] != '_')) {
      return ParseError("expected identifier in datalog source");
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Literal> ParseLiteral(std::unordered_map<std::string, VarId>* vars,
                               uint32_t* next_var) {
    bool negated = EatWord("not ");
    Result<std::string> name = ParseIdent();
    if (!name.ok()) return name.status();
    std::vector<Arg> args;
    if (Eat('(')) {
      while (true) {
        SkipLayout();
        if (pos_ >= text_.size()) return ParseError("unterminated literal");
        char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
          bool negative = c == '-';
          if (negative) ++pos_;
          int64_t v = 0;
          while (pos_ < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            v = v * 10 + (text_[pos_++] - '0');
          }
          args.push_back(Arg::Const(program_->consts().Int(negative ? -v
                                                                    : v)));
        } else if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
          Result<std::string> vn = ParseIdent();
          if (!vn.ok()) return vn.status();
          if (vn.value() == "_") {
            args.push_back(Arg::Var((*next_var)++));
          } else {
            auto [it, inserted] = vars->try_emplace(vn.value(), *next_var);
            if (inserted) ++(*next_var);
            args.push_back(Arg::Var(it->second));
          }
        } else if (std::islower(static_cast<unsigned char>(c))) {
          Result<std::string> sym = ParseIdent();
          if (!sym.ok()) return sym.status();
          args.push_back(Arg::Const(program_->consts().Symbol(sym.value())));
        } else {
          return ParseError("bad argument in datalog literal");
        }
        if (Eat(',')) continue;
        if (Eat(')')) break;
        return ParseError("expected ',' or ')' in datalog literal");
      }
    }
    Literal literal;
    literal.pred = program_->InternPred(name.value(),
                                        static_cast<int>(args.size()));
    literal.negated = negated;
    if (args.size() == 3) {
      if (name.value() == "add") literal.builtin = Literal::Builtin::kAdd;
      if (name.value() == "min") literal.builtin = Literal::Builtin::kMin;
    }
    if (literal.is_builtin() && negated) {
      return ParseError("negated arithmetic builtins are not supported");
    }
    literal.args = std::move(args);
    return literal;
  }

  // `lattice(p, Arity, Pos, min|max|first[, N]).` — a ground pseudo-fact
  // declaring answer subsumption for p/Arity on 1-based column Pos.
  Status HandleLatticeDecl(const Tuple& args) {
    const ConstPool& pool = program_->consts();
    if (args.size() != 4 && args.size() != 5) {
      return ParseError("lattice(p, Arity, Pos, min|max|first[, N])");
    }
    if (pool.IsInt(args[0]) || !pool.IsInt(args[1]) || !pool.IsInt(args[2]) ||
        pool.IsInt(args[3])) {
      return ParseError("lattice(p, Arity, Pos, min|max|first[, N])");
    }
    int arity = static_cast<int>(pool.IntOf(args[1]));
    int pos = static_cast<int>(pool.IntOf(args[2]));
    if (arity <= 0 || pos < 1 || pos > arity) {
      return ParseError("lattice declaration: Pos out of range");
    }
    DatalogProgram::Lattice lattice;
    lattice.pos = pos - 1;
    const std::string& kind = pool.NameOf(args[3]);
    if (kind == "min") {
      lattice.kind = DatalogProgram::Lattice::Kind::kMin;
    } else if (kind == "max") {
      lattice.kind = DatalogProgram::Lattice::Kind::kMax;
    } else if (kind == "first") {
      lattice.kind = DatalogProgram::Lattice::Kind::kFirst;
      if (args.size() != 5 || !pool.IsInt(args[4]) || pool.IntOf(args[4]) < 0) {
        return ParseError("lattice first requires a non-negative N");
      }
      lattice.n = pool.IntOf(args[4]);
    } else {
      return ParseError("lattice kind must be min, max or first");
    }
    program_->SetLattice(program_->InternPred(pool.NameOf(args[0]), arity),
                         lattice);
    return Status::Ok();
  }

  Status ParseClause() {
    std::unordered_map<std::string, VarId> vars;
    uint32_t next_var = 0;
    Result<Literal> head = ParseLiteral(&vars, &next_var);
    if (!head.ok()) return head.status();
    if (head.value().negated) return ParseError("negated head");

    if (Eat('.')) {
      // A fact: all args must be constants.
      Tuple tuple;
      for (const Arg& arg : head.value().args) {
        if (arg.is_var) return ParseError("non-ground fact");
        tuple.push_back(arg.id);
      }
      if (program_->PredName(head.value().pred) == "lattice") {
        return HandleLatticeDecl(tuple);
      }
      program_->AddFact(head.value().pred, std::move(tuple));
      return Status::Ok();
    }
    if (!EatWord(":-")) return ParseError("expected ':-' or '.'");

    Rule rule;
    rule.head = head.value();
    while (true) {
      Result<Literal> lit = ParseLiteral(&vars, &next_var);
      if (!lit.ok()) return lit.status();
      rule.body.push_back(lit.value());
      if (Eat(',')) continue;
      if (Eat('.')) break;
      return ParseError("expected ',' or '.' after body literal");
    }
    rule.num_vars = next_var;
    program_->AddRule(std::move(rule));
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  DatalogProgram* program_;
};

}  // namespace

Status ParseDatalog(std::string_view text, DatalogProgram* program) {
  DatalogParser parser(text, program);
  Status s = parser.ParseProgram();
  if (!s.ok()) return s;
  return program->CheckSafety();
}

Result<Literal> ParseQuery(std::string_view text, DatalogProgram* program) {
  DatalogParser parser(text, program);
  return parser.ParseSingleLiteral();
}

}  // namespace xsb::datalog
