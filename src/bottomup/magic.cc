#include "bottomup/magic.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace xsb::datalog {
namespace {

// An adornment: one char per argument, 'b' (bound) or 'f' (free).
std::string AdornmentFor(const Literal& literal,
                         const std::set<VarId>& bound_vars) {
  std::string a;
  a.reserve(literal.args.size());
  for (const Arg& arg : literal.args) {
    bool bound = !arg.is_var || bound_vars.count(arg.id) > 0;
    a.push_back(bound ? 'b' : 'f');
  }
  return a;
}

std::vector<Arg> BoundArgs(const Literal& literal,
                           const std::string& adornment) {
  std::vector<Arg> out;
  for (size_t i = 0; i < literal.args.size(); ++i) {
    if (adornment[i] == 'b') out.push_back(literal.args[i]);
  }
  return out;
}

}  // namespace

Result<Literal> MagicRewrite(DatalogProgram* program, const Literal& query) {
  for (const Rule& rule : program->rules()) {
    for (const Literal& literal : rule.body) {
      if (literal.negated) {
        return InvalidError(
            "magic rewriting here supports positive programs only");
      }
    }
  }

  const std::vector<Rule> original_rules = program->rules();
  std::vector<Rule> rewritten;

  // Adorned predicate bookkeeping: (pred, adornment) -> new ids.
  std::map<std::pair<PredId, std::string>, PredId> adorned_ids;
  std::map<std::pair<PredId, std::string>, PredId> magic_ids;
  std::vector<std::pair<PredId, std::string>> worklist;
  std::set<std::pair<PredId, std::string>> seen;

  auto adorned_pred = [&](PredId pred, const std::string& a) {
    auto key = std::make_pair(pred, a);
    auto it = adorned_ids.find(key);
    if (it != adorned_ids.end()) return it->second;
    PredId id = program->InternPred(program->PredName(pred) + "__" + a,
                                    program->PredArity(pred));
    adorned_ids.emplace(key, id);
    return id;
  };
  auto magic_pred = [&](PredId pred, const std::string& a) {
    auto key = std::make_pair(pred, a);
    auto it = magic_ids.find(key);
    if (it != magic_ids.end()) return it->second;
    int bound = static_cast<int>(std::count(a.begin(), a.end(), 'b'));
    PredId id = program->InternPred(
        "m_" + program->PredName(pred) + "__" + a, bound);
    magic_ids.emplace(key, id);
    return id;
  };

  // Seed with the query's adornment.
  std::string query_adornment = AdornmentFor(query, {});
  worklist.emplace_back(query.pred, query_adornment);
  seen.insert(worklist.back());

  while (!worklist.empty()) {
    auto [pred, adornment] = worklist.back();
    worklist.pop_back();

    for (const Rule& rule : original_rules) {
      if (rule.head.pred != pred) continue;

      // Head-bound variables: those under a 'b' in the adornment.
      std::set<VarId> bound_vars;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (adornment[i] == 'b' && rule.head.args[i].is_var) {
          bound_vars.insert(rule.head.args[i].id);
        }
      }

      Rule out;
      out.num_vars = rule.num_vars;
      out.head = rule.head;
      out.head.pred = adorned_pred(pred, adornment);

      // The magic guard.
      Literal guard;
      guard.pred = magic_pred(pred, adornment);
      guard.args = BoundArgs(rule.head, adornment);
      out.body.push_back(guard);

      // Left-to-right SIPS through the body.
      for (const Literal& literal : rule.body) {
        if (program->IsIdb(literal.pred)) {
          std::string a = AdornmentFor(literal, bound_vars);
          // Magic rule: m_q__a(bound args) :- <prefix so far>.
          Rule magic_rule;
          magic_rule.num_vars = rule.num_vars;
          magic_rule.head.pred = magic_pred(literal.pred, a);
          magic_rule.head.args = BoundArgs(literal, a);
          magic_rule.body = out.body;  // guard + processed prefix
          rewritten.push_back(std::move(magic_rule));
          if (seen.insert({literal.pred, a}).second) {
            worklist.emplace_back(literal.pred, a);
          }
          Literal adorned = literal;
          adorned.pred = adorned_pred(literal.pred, a);
          out.body.push_back(adorned);
        } else {
          out.body.push_back(literal);
        }
        for (const Arg& arg : literal.args) {
          if (arg.is_var) bound_vars.insert(arg.id);
        }
      }
      rewritten.push_back(std::move(out));
    }
  }

  // Seed fact: the magic tuple of the query's constants.
  Tuple seed;
  for (size_t i = 0; i < query.args.size(); ++i) {
    if (query_adornment[i] == 'b') seed.push_back(query.args[i].id);
  }
  program->AddFact(magic_pred(query.pred, query_adornment), std::move(seed));

  program->rules() = std::move(rewritten);

  Literal adorned_query = query;
  adorned_query.pred = adorned_pred(query.pred, query_adornment);
  return adorned_query;
}

Result<Literal> FactorRewrite(DatalogProgram* program, const Literal& query) {
  // Pattern: query p(c, Var); rules {p(X,Y) :- e(X,Y).
  //                                  p(X,Y) :- p(X,Z), e(Z,Y).}
  if (query.args.size() != 2 || query.args[0].is_var ||
      !query.args[1].is_var) {
    return InvalidError("factoring needs a p(const, Var) query");
  }
  const Rule* base = nullptr;
  const Rule* rec = nullptr;
  for (const Rule& rule : program->rules()) {
    if (rule.head.pred != query.pred) continue;
    if (rule.body.size() == 1 && !program->IsIdb(rule.body[0].pred)) {
      base = &rule;
    } else if (rule.body.size() == 2 &&
               rule.body[0].pred == query.pred &&
               !program->IsIdb(rule.body[1].pred)) {
      rec = &rule;
    } else {
      return InvalidError("factoring pattern mismatch");
    }
  }
  if (base == nullptr || rec == nullptr) {
    return InvalidError("factoring needs base + left-linear rules");
  }
  // Shape checks: p(X,Y) :- e(X,Y) and p(X,Y) :- p(X,Z), e(Z,Y).
  auto head_vars_distinct = [](const Rule& r) {
    return r.head.args.size() == 2 && r.head.args[0].is_var &&
           r.head.args[1].is_var && !(r.head.args[0] == r.head.args[1]);
  };
  if (!head_vars_distinct(*base) || !head_vars_distinct(*rec)) {
    return InvalidError("factoring pattern mismatch");
  }
  const Literal& b0 = base->body[0];
  if (b0.args.size() != 2 || !(b0.args[0] == base->head.args[0]) ||
      !(b0.args[1] == base->head.args[1])) {
    return InvalidError("factoring pattern mismatch");
  }
  const Literal& r0 = rec->body[0];
  const Literal& r1 = rec->body[1];
  if (r0.args.size() != 2 || r1.args.size() != 2 ||
      !(r0.args[0] == rec->head.args[0]) ||
      !(r1.args[1] == rec->head.args[1]) || !(r0.args[1] == r1.args[0])) {
    return InvalidError("factoring pattern mismatch");
  }

  PredId edge = b0.pred;
  PredId factored = program->InternPred(
      "f_" + program->PredName(query.pred), 1);

  std::vector<Rule> rewritten;
  {
    // f_p(Y) :- e(c, Y).
    Rule rule;
    rule.num_vars = 1;
    rule.head = Literal{factored, false, Literal::Builtin::kNone, {Arg::Var(0)}};
    rule.body.push_back(
        Literal{edge, false, Literal::Builtin::kNone, {Arg::Const(query.args[0].id), Arg::Var(0)}});
    rewritten.push_back(std::move(rule));
  }
  {
    // f_p(Y) :- f_p(Z), e(Z, Y).
    Rule rule;
    rule.num_vars = 2;
    rule.head = Literal{factored, false, Literal::Builtin::kNone, {Arg::Var(0)}};
    rule.body.push_back(Literal{factored, false, Literal::Builtin::kNone, {Arg::Var(1)}});
    rule.body.push_back(
        Literal{edge, false, Literal::Builtin::kNone, {Arg::Var(1), Arg::Var(0)}});
    rewritten.push_back(std::move(rule));
  }
  program->rules() = std::move(rewritten);

  Literal factored_query;
  factored_query.pred = factored;
  factored_query.args = {query.args[1]};
  return factored_query;
}

}  // namespace xsb::datalog
