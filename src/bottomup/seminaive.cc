#include "bottomup/seminaive.h"

#include <algorithm>
#include <unordered_set>

namespace xsb::datalog {

Status Stratify(const DatalogProgram& program,
                std::vector<int>* stratum_of_pred) {
  size_t n = program.num_preds();
  stratum_of_pred->assign(n, 0);
  // Ullman's iterative algorithm: raise strata until fixpoint; more than n
  // rounds of change means a negative cycle (not stratifiable).
  for (size_t round = 0; round <= n + 1; ++round) {
    bool changed = false;
    for (const Rule& rule : program.rules()) {
      int& head = (*stratum_of_pred)[rule.head.pred];
      for (const Literal& literal : rule.body) {
        int need = (*stratum_of_pred)[literal.pred] + (literal.negated ? 1 : 0);
        if (head < need) {
          head = need;
          changed = true;
        }
      }
    }
    if (!changed) return Status::Ok();
  }
  return StratificationError(
      "negation through recursion: the program is not stratified");
}

Relation& Evaluation::relation(PredId pred) {
  auto it = relations_.find(pred);
  if (it == relations_.end()) {
    it = relations_
             .emplace(pred, Relation(program_->PredArity(pred)))
             .first;
  }
  return it->second;
}

void Evaluation::JoinFrom(const Rule& rule, const std::vector<int>& order,
                          size_t idx, int delta_literal, Relation* delta_rel,
                          std::vector<Value>* env, std::vector<bool>* bound,
                          std::vector<Tuple>* out) {
  if (idx == order.size()) {
    ++stats_.rule_firings;
    Tuple head(rule.head.args.size());
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      const Arg& arg = rule.head.args[i];
      head[i] = arg.is_var ? (*env)[arg.id] : arg.id;
    }
    out->push_back(std::move(head));
    return;
  }
  int body_index = order[idx];
  const Literal& literal = rule.body[body_index];

  if (literal.is_builtin()) {
    // Built-in add (Z = X + Y) / min (Z = min(X, Y)) over integers: no
    // stored relation, evaluated in place. Unbound or non-integer inputs
    // simply fail (CheckSafety requires the inputs to occur in an earlier
    // positive literal).
    ConstPool& pool = program_->consts();
    Value in[2];
    for (int i = 0; i < 2; ++i) {
      const Arg& arg = literal.args[i];
      if (!arg.is_var) {
        in[i] = arg.id;
      } else if ((*bound)[arg.id]) {
        in[i] = (*env)[arg.id];
      } else {
        return;
      }
      if (!pool.IsInt(in[i])) return;
    }
    int64_t x = pool.IntOf(in[0]);
    int64_t y = pool.IntOf(in[1]);
    Value sum = pool.Int(literal.builtin == Literal::Builtin::kAdd
                             ? x + y
                             : (x < y ? x : y));
    const Arg& out_arg = literal.args[2];
    if (!out_arg.is_var) {
      if (out_arg.id == sum) {
        JoinFrom(rule, order, idx + 1, delta_literal, delta_rel, env, bound,
                 out);
      }
      return;
    }
    if ((*bound)[out_arg.id]) {
      if ((*env)[out_arg.id] == sum) {
        JoinFrom(rule, order, idx + 1, delta_literal, delta_rel, env, bound,
                 out);
      }
      return;
    }
    (*bound)[out_arg.id] = true;
    (*env)[out_arg.id] = sum;
    JoinFrom(rule, order, idx + 1, delta_literal, delta_rel, env, bound, out);
    (*bound)[out_arg.id] = false;
    return;
  }

  if (literal.negated) {
    // All variables are bound here (negations are ordered last and safety
    // was checked); a membership test suffices — the stratum below is done.
    Tuple probe(literal.args.size());
    for (size_t i = 0; i < literal.args.size(); ++i) {
      const Arg& arg = literal.args[i];
      probe[i] = arg.is_var ? (*env)[arg.id] : arg.id;
    }
    if (!relation(literal.pred).Contains(probe)) {
      JoinFrom(rule, order, idx + 1, delta_literal, delta_rel, env, bound,
               out);
    }
    return;
  }

  Relation& rel = (body_index == delta_literal) ? *delta_rel
                                                : relation(literal.pred);

  // Pick the first bound column as the probe key.
  int probe_column = -1;
  Value probe_value = 0;
  for (size_t i = 0; i < literal.args.size(); ++i) {
    const Arg& arg = literal.args[i];
    if (!arg.is_var) {
      probe_column = static_cast<int>(i);
      probe_value = arg.id;
      break;
    }
    if ((*bound)[arg.id]) {
      probe_column = static_cast<int>(i);
      probe_value = (*env)[arg.id];
      break;
    }
  }

  auto match_row = [&](const Tuple& tuple) {
    // Fixed-size scratch: literals have few arguments; avoids a per-row
    // heap allocation in the innermost join loop.
    VarId newly_bound[16];
    size_t num_newly_bound = 0;
    bool ok = true;
    for (size_t i = 0; i < literal.args.size(); ++i) {
      const Arg& arg = literal.args[i];
      if (!arg.is_var) {
        if (tuple[i] != arg.id) {
          ok = false;
          break;
        }
        continue;
      }
      if ((*bound)[arg.id]) {
        if ((*env)[arg.id] != tuple[i]) {
          ok = false;
          break;
        }
        continue;
      }
      (*bound)[arg.id] = true;
      (*env)[arg.id] = tuple[i];
      if (num_newly_bound < 16) newly_bound[num_newly_bound++] = arg.id;
    }
    if (ok) {
      JoinFrom(rule, order, idx + 1, delta_literal, delta_rel, env, bound,
               out);
    }
    for (size_t k = 0; k < num_newly_bound; ++k) {
      (*bound)[newly_bound[k]] = false;
    }
  };

  if (probe_column >= 0) {
    for (uint32_t row : rel.Probe(probe_column, probe_value)) {
      if (rel.IsDead(row)) continue;
      match_row(rel.tuples()[row]);
    }
  } else {
    const std::vector<Tuple>& tuples = rel.tuples();
    for (uint32_t row = 0; row < tuples.size(); ++row) {
      if (rel.IsDead(row)) continue;
      match_row(tuples[row]);
    }
  }
}

Status Evaluation::Run(const EvalOptions& options) {
  Status safety = program_->CheckSafety();
  if (!safety.ok()) return safety;
  std::vector<int> stratum;
  Status stratified = Stratify(*program_, &stratum);
  if (!stratified.ok()) return stratified;

  // Load the EDB.
  for (const auto& [pred, tuples] : program_->edb()) {
    Relation& rel = relation(pred);
    for (const Tuple& tuple : tuples) {
      if (rel.Insert(tuple)) {
        ++stats_.tuples_inserted;
      } else {
        ++stats_.duplicate_tuples;
      }
    }
  }

  int max_stratum = 0;
  for (const Rule& rule : program_->rules()) {
    max_stratum = std::max(max_stratum, stratum[rule.head.pred]);
  }

  // Answer-subsumption state: per lattice predicate, the current best value
  // (or first(N) count) and live row for each key (= the non-aggregated
  // columns). Mirrors AnswerTable::InsertSubsumptive on the SLG side.
  struct LatticeEntry {
    int64_t best = 0;
    uint32_t row = 0;
    int64_t count = 0;
  };
  std::unordered_map<PredId,
                     std::unordered_map<Tuple, LatticeEntry, TupleHash>>
      lattice_state;

  for (int s = 0; s <= max_stratum; ++s) {
    std::vector<const Rule*> layer;
    for (const Rule& rule : program_->rules()) {
      if (stratum[rule.head.pred] == s) layer.push_back(&rule);
    }
    if (layer.empty()) continue;

    // Evaluation order within a rule: positive literals as written, then
    // negated literals (whose strata are already closed).
    auto order_of = [](const Rule& rule) {
      std::vector<int> order;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!rule.body[i].negated) order.push_back(static_cast<int>(i));
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (rule.body[i].negated) order.push_back(static_cast<int>(i));
      }
      return order;
    };

    // Predicates that feed back into this stratum's rule bodies; only they
    // need delta relations (a non-recursive head never re-fires a rule).
    std::unordered_set<PredId> recursive;
    for (const Rule* rule : layer) {
      for (const Literal& literal : rule->body) {
        if (!literal.negated && !literal.is_builtin()) {
          recursive.insert(literal.pred);
        }
      }
    }

    // Per-predicate deltas for this stratum.
    std::unordered_map<PredId, Relation> delta;
    auto flush = [&](const std::vector<std::pair<PredId, Tuple>>& derived,
                     std::unordered_map<PredId, Relation>* next_delta) {
      bool any = false;
      for (const auto& [pred, tuple] : derived) {
        const DatalogProgram::Lattice* lat = program_->lattice(pred);
        if (lat != nullptr) {
          const ConstPool& pool = program_->consts();
          Relation& rel = relation(pred);
          Tuple key;
          key.reserve(tuple.size() - 1);
          for (size_t i = 0; i < tuple.size(); ++i) {
            if (static_cast<int>(i) != lat->pos) key.push_back(tuple[i]);
          }
          auto& entries = lattice_state[pred];
          if (lat->kind == DatalogProgram::Lattice::Kind::kFirst) {
            LatticeEntry& entry = entries[key];
            if (entry.count >= lat->n || !rel.Insert(tuple)) {
              ++stats_.duplicate_tuples;
              continue;
            }
            ++entry.count;
            ++stats_.tuples_inserted;
            if (recursive.count(pred) > 0) {
              (*next_delta)[pred].Insert(tuple);
              any = true;
            }
            continue;
          }
          Value agg = tuple[lat->pos];
          if (!pool.IsInt(agg)) {
            ++stats_.duplicate_tuples;
            continue;
          }
          int64_t value = pool.IntOf(agg);
          auto [it, created] = entries.try_emplace(key);
          if (!created) {
            bool better = lat->kind == DatalogProgram::Lattice::Kind::kMin
                              ? value < it->second.best
                              : value > it->second.best;
            if (!better) {
              ++stats_.duplicate_tuples;
              continue;
            }
          }
          // A strictly better value was never stored before, so the insert
          // always succeeds; the beaten row is tombstoned after.
          rel.Insert(tuple);
          ++stats_.tuples_inserted;
          if (!created) rel.Kill(it->second.row);
          it->second.best = value;
          it->second.row = static_cast<uint32_t>(rel.size() - 1);
          if (recursive.count(pred) > 0) {
            (*next_delta)[pred].Insert(tuple);
            any = true;
          }
          continue;
        }
        if (relation(pred).Insert(tuple)) {
          ++stats_.tuples_inserted;
          if (recursive.count(pred) > 0) {
            (*next_delta)[pred].Insert(tuple);
            any = true;
          }
        } else {
          ++stats_.duplicate_tuples;
        }
      }
      return any;
    };

    // First round: evaluate every rule in full.
    std::vector<std::pair<PredId, Tuple>> derived;
    for (const Rule* rule : layer) {
      std::vector<Value> env(rule->num_vars, 0);
      std::vector<bool> bound(rule->num_vars, false);
      std::vector<Tuple> out;
      JoinFrom(*rule, order_of(*rule), 0, -1, nullptr, &env, &bound, &out);
      for (Tuple& t : out) derived.emplace_back(rule->head.pred, std::move(t));
    }
    std::unordered_map<PredId, Relation> next_delta;
    bool changed = flush(derived, &next_delta);
    ++stats_.iterations;

    // Fixpoint rounds.
    while (changed) {
      ++stats_.iterations;
      delta = std::move(next_delta);
      next_delta.clear();
      derived.clear();
      for (const Rule* rule : layer) {
        std::vector<int> order = order_of(*rule);
        if (options.seminaive) {
          // One pass per recursive body occurrence, evaluated over delta.
          for (size_t i = 0; i < rule->body.size(); ++i) {
            const Literal& literal = rule->body[i];
            if (literal.negated || literal.is_builtin()) continue;
            auto it = delta.find(literal.pred);
            if (it == delta.end() || it->second.empty()) continue;
            std::vector<Value> env(rule->num_vars, 0);
            std::vector<bool> bound(rule->num_vars, false);
            std::vector<Tuple> out;
            JoinFrom(*rule, order, 0, static_cast<int>(i), &it->second,
                     &env, &bound, &out);
            for (Tuple& t : out) {
              derived.emplace_back(rule->head.pred, std::move(t));
            }
          }
        } else {
          std::vector<Value> env(rule->num_vars, 0);
          std::vector<bool> bound(rule->num_vars, false);
          std::vector<Tuple> out;
          JoinFrom(*rule, order, 0, -1, nullptr, &env, &bound, &out);
          for (Tuple& t : out) {
            derived.emplace_back(rule->head.pred, std::move(t));
          }
        }
      }
      changed = flush(derived, &next_delta);
    }
  }
  return Status::Ok();
}

std::vector<Tuple> Evaluation::Select(const Literal& query) {
  std::vector<Tuple> out;
  Relation& rel = relation(query.pred);
  std::unordered_map<VarId, Value> seen;
  for (uint32_t row = 0; row < rel.tuples().size(); ++row) {
    if (rel.IsDead(row)) continue;
    const Tuple& tuple = rel.tuples()[row];
    bool ok = true;
    seen.clear();
    for (size_t i = 0; i < query.args.size(); ++i) {
      const Arg& arg = query.args[i];
      if (!arg.is_var) {
        if (tuple[i] != arg.id) {
          ok = false;
          break;
        }
        continue;
      }
      auto [it, inserted] = seen.try_emplace(arg.id, tuple[i]);
      if (!inserted && it->second != tuple[i]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(tuple);
  }
  return out;
}

}  // namespace xsb::datalog
