#ifndef XSB_BOTTOMUP_SEMINAIVE_H_
#define XSB_BOTTOMUP_SEMINAIVE_H_

#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "bottomup/rules.h"

namespace xsb::datalog {

// Assigns a stratum to every predicate (EDB predicates get 0) or fails if
// negation occurs inside a recursive component.
Status Stratify(const DatalogProgram& program,
                std::vector<int>* stratum_of_pred);

struct EvalOptions {
  bool seminaive = true;  // false: naive iteration (for the ablation bench)
};

struct EvalStats {
  uint64_t iterations = 0;
  uint64_t rule_firings = 0;     // rule body matches found
  uint64_t tuples_inserted = 0;  // distinct derived tuples
  uint64_t duplicate_tuples = 0;
};

// Stratified (semi-)naive bottom-up evaluation: the set-at-a-time fixpoint
// engine that plays the role of CORAL/LDL in section 5's comparisons.
class Evaluation {
 public:
  explicit Evaluation(DatalogProgram* program) : program_(program) {}

  Status Run(const EvalOptions& options = EvalOptions());

  // Derived (plus EDB) relation of `pred` after Run.
  Relation& relation(PredId pred);

  // All tuples of `query.pred` matching the query's constants.
  std::vector<Tuple> Select(const Literal& query);

  const EvalStats& stats() const { return stats_; }

 private:
  // Joins body literals [idx..] of `rule` given partial bindings, calling
  // Emit on each complete match. `delta_literal` marks the body occurrence
  // evaluated against `delta` instead of the full relation (-1: none).
  void JoinFrom(const Rule& rule, const std::vector<int>& order, size_t idx,
                int delta_literal, Relation* delta_rel,
                std::vector<Value>* env, std::vector<bool>* bound,
                std::vector<Tuple>* out);

  DatalogProgram* program_;
  std::unordered_map<PredId, Relation> relations_;
  EvalStats stats_;
};

}  // namespace xsb::datalog

#endif  // XSB_BOTTOMUP_SEMINAIVE_H_
