#include "bottomup/relation.h"

namespace xsb::datalog {

Value ConstPool::Int(int64_t value) {
  auto it = int_ids_.find(value);
  if (it != int_ids_.end()) return it->second;
  Value id = static_cast<Value>(entries_.size());
  entries_.push_back(Entry{true, value, std::string()});
  int_ids_.emplace(value, id);
  return id;
}

Value ConstPool::Symbol(std::string_view name) {
  auto it = symbol_ids_.find(std::string(name));
  if (it != symbol_ids_.end()) return it->second;
  Value id = static_cast<Value>(entries_.size());
  entries_.push_back(Entry{false, 0, std::string(name)});
  symbol_ids_.emplace(entries_.back().name, id);
  return id;
}

std::string ConstPool::ToString(Value v) const {
  const Entry& e = entries_[v];
  return e.is_int ? std::to_string(e.int_value) : e.name;
}

const std::vector<uint32_t> Relation::kEmptyRows;

bool Relation::Insert(const Tuple& tuple) {
  auto [it, inserted] =
      dedup_.try_emplace(tuple, static_cast<uint32_t>(tuples_.size()));
  if (!inserted) return false;
  tuples_.push_back(tuple);
  uint32_t row = static_cast<uint32_t>(tuples_.size() - 1);
  for (auto& [column, index] : indexes_) {
    index[tuple[column]].push_back(row);
  }
  return true;
}

void Relation::Kill(uint32_t row) {
  if (row >= tuples_.size() || IsDead(row)) return;
  if (dead_.size() < tuples_.size()) dead_.resize(tuples_.size(), 0);
  dead_[row] = 1;
  ++num_dead_;
  // Probe indexes keep the row (IsDead filters it at scan sites), but the
  // dedup set must forget it so Contains sees only live tuples.
  dedup_.erase(tuples_[row]);
}

const std::vector<uint32_t>& Relation::Probe(int column, Value v) {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    auto& index = indexes_[column];
    for (uint32_t row = 0; row < tuples_.size(); ++row) {
      index[tuples_[row][column]].push_back(row);
    }
    it = indexes_.find(column);
  }
  auto rows = it->second.find(v);
  if (rows == it->second.end()) return kEmptyRows;
  return rows->second;
}

void Relation::Clear() {
  tuples_.clear();
  dead_.clear();
  num_dead_ = 0;
  dedup_.clear();
  indexes_.clear();
}

}  // namespace xsb::datalog
