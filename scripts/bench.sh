#!/usr/bin/env bash
# Builds the optimized (default, RelWithDebInfo) preset and runs the
# benchmark suite uniformly. Every suite's stdout lands in
# bench-out/<name>.log; suites with machine-readable output additionally
# write bench-out/BENCH_<name>.json — the same shape as the BENCH_*.json
# snapshots tracked at the repo root, so refreshing a tracked snapshot is
# `./scripts/bench.sh && cp bench-out/BENCH_foo.json BENCH_foo.json` plus
# updating its commentary fields. CI runs this non-gating and uploads
# bench-out/ as an artifact.
#
# Usage: scripts/bench.sh [--quick]
#   --quick   only the JSON-emitting suites (the ones PRs track)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== Build (default preset, optimized) =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"

mkdir -p bench-out

run() {  # run <name> [args...] — log stdout, keep going on failure
  local name=$1
  shift
  echo "== bench: $name =="
  if ./build/bench/"$name" "$@" | tee "bench-out/$name.log"; then
    return 0
  else
    echo "(bench $name failed; continuing)" | tee -a "bench-out/$name.log"
  fi
}

# JSON-emitting suites: arg 1 is the snapshot path.
run subst_factoring bench-out/BENCH_subst_factoring.json
run incremental_updates bench-out/BENCH_incremental.json
run concurrent_queries bench-out/BENCH_concurrent.json
run wam_modes bench-out/BENCH_modes.json
run subsumption bench-out/BENCH_subsumption.json

if [[ "$quick" == 0 ]]; then
  run fig5_path
  run leftrec_chain
  run datalog_suite
  run table3_join
  run table2_negation
  run fig2_win_calls
  run indexing_ablation
  run micro_core --benchmark_filter='AnswerInsert|CallTrie|Intern|Encode'
fi

echo "All benchmarks done; outputs in bench-out/."
