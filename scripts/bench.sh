#!/usr/bin/env bash
# Builds the optimized (default, RelWithDebInfo) preset and runs the
# benchmark suite uniformly. Every suite's stdout lands in
# bench-out/<name>.log; suites with machine-readable output additionally
# write bench-out/BENCH_<name>.json — the same shape as the BENCH_*.json
# snapshots tracked at the repo root, so refreshing a tracked snapshot is
# `./scripts/bench.sh && cp bench-out/BENCH_foo.json BENCH_foo.json` plus
# updating its commentary fields. Every emitted JSON is stamped with
# hardware_threads, seed_commit, and date (keys the bench itself did not
# already write). A bench binary exiting non-zero fails the script.
# CI runs this non-gating and uploads bench-out/ as an artifact.
#
# Usage: scripts/bench.sh [--quick]
#   --quick   only the JSON-emitting suites (the ones PRs track)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== Build (default preset, optimized) =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"

mkdir -p bench-out

run() {  # run <name> [args...] — log stdout; a failing bench fails the script
  local name=$1
  shift
  echo "== bench: $name =="
  ./build/bench/"$name" "$@" | tee "bench-out/$name.log" || {
    echo "bench $name exited non-zero" >&2
    exit 1
  }
}

# Adds provenance keys to a BENCH_*.json, skipping any the bench already
# wrote itself (e.g. concurrent_queries records hardware_threads). Inserted
# right after the opening brace, so the file stays valid JSON.
stamp() {
  local f=$1 extra=""
  grep -q '"hardware_threads"' "$f" ||
    extra+="  \"hardware_threads\": $(nproc 2>/dev/null || echo 1),\\n"
  grep -q '"seed_commit"' "$f" ||
    extra+="  \"seed_commit\": \"$(git rev-parse --short HEAD 2>/dev/null ||
      echo unknown)\",\\n"
  grep -q '"date"' "$f" ||
    extra+="  \"date\": \"$(date -u +%Y-%m-%d)\",\\n"
  [[ -z "$extra" ]] && return 0
  awk -v extra="$extra" 'NR==1 { print; printf "%s", extra; next } { print }' \
    "$f" > "$f.tmp" && mv "$f.tmp" "$f"
}

# JSON-emitting suites: arg 1 is the snapshot path.
run subst_factoring bench-out/BENCH_subst_factoring.json
run incremental_updates bench-out/BENCH_incremental.json
run concurrent_queries bench-out/BENCH_concurrent.json
run wam_modes bench-out/BENCH_modes.json
run subsumption bench-out/BENCH_subsumption.json
run meta_overhead bench-out/BENCH_meta_overhead.json
run fig5_path bench-out/BENCH_fig5_path.json

if [[ "$quick" == 0 ]]; then
  run leftrec_chain
  run datalog_suite
  run table3_join
  run table2_negation
  run fig2_win_calls
  run indexing_ablation
  run micro_core --benchmark_filter='AnswerInsert|CallTrie|Intern|Encode'
fi

for f in bench-out/BENCH_*.json; do
  stamp "$f"
done

echo "All benchmarks done; outputs in bench-out/."
