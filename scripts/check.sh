#!/usr/bin/env bash
# Full check: style gates (clang-format / clang-tidy, skipped when the tools
# are not installed), then build and run the test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (the `asan-ubsan` CMake
# preset), then the tier-1 suite — which includes the concurrency stress
# tests — under ThreadSanitizer (the `tsan` preset), then — unless
# --sanitized-only is given — under the default RelWithDebInfo preset too.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
sanitized_only=0
[[ "${1:-}" == "--sanitized-only" ]] && sanitized_only=1

cxx_sources() {
  find src tests examples bench -name '*.cc' -o -name '*.h' -o -name '*.cpp'
}

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format check =="
  cxx_sources | xargs clang-format --dry-run --Werror
else
  echo "== clang-format not installed; skipping format check =="
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake --preset default >/dev/null
  find src -name '*.cc' | xargs clang-tidy -p build --quiet
else
  echo "== clang-tidy not installed; skipping lint check =="
fi

echo "== ASan+UBSan build =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
echo "== ASan+UBSan tests =="
ctest --preset asan-ubsan -j "$jobs"

echo "== TSan build =="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"
echo "== TSan tier-1 + concurrency tests =="
ctest --preset tsan -L tier1 -j "$jobs"

if [[ "$sanitized_only" == 0 ]]; then
  echo "== Default build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  echo "== Default tests =="
  ctest --preset default -j "$jobs"
fi

echo "All checks passed."
