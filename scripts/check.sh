#!/usr/bin/env bash
# Full check: build and run the test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the `asan-ubsan` CMake preset), then — unless
# --sanitized-only is given — under the default RelWithDebInfo preset too.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
sanitized_only=0
[[ "${1:-}" == "--sanitized-only" ]] && sanitized_only=1

echo "== ASan+UBSan build =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
echo "== ASan+UBSan tests =="
ctest --preset asan-ubsan -j "$jobs"

if [[ "$sanitized_only" == 0 ]]; then
  echo "== Default build =="
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  echo "== Default tests =="
  ctest --preset default -j "$jobs"
fi

echo "All checks passed."
