// Quickstart: the paper's introductory example — transitive closure that
// plain Prolog cannot terminate on (a cyclic edge relation), evaluated
// finitely and without redundancy by SLG tabling.
//
//   $ ./quickstart

#include <iostream>

#include "xsb/engine.h"

int main() {
  xsb::Engine engine;

  xsb::Status status = engine.ConsultString(R"PROGRAM(
      % Left-recursive transitive closure: the natural way to write it.
      :- table path/2.
      path(X, Y) :- edge(X, Y).
      path(X, Y) :- path(X, Z), edge(Z, Y).

      % A cyclic graph: SLD (Prolog) would loop forever here.
      edge(1, 2).  edge(2, 3).  edge(3, 4).  edge(4, 1).
      edge(2, 5).
  )PROGRAM");
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }

  std::cout << "Nodes reachable from 1:\n";
  status = engine.ForEach("path(1, X)", [](const xsb::Answer& answer) {
    std::cout << "  " << answer.ToString() << "\n";
    return true;
  });
  if (!status.ok()) {
    std::cerr << "query failed: " << status.ToString() << "\n";
    return 1;
  }

  auto pairs = engine.Count("path(X, Y)");
  std::cout << "Total path/2 pairs: " << pairs.value() << "\n";

  // Tables persist between queries: re-running is a table lookup.
  auto again = engine.Count("path(1, X)");
  std::cout << "Re-query (answered from the table): " << again.value()
            << " answers, " << engine.evaluator().tables().num_subgoals()
            << " tables in table space\n";
  return 0;
}
