// A small "deductive database in production" tour: bulk loading through the
// formatted reader, multi-field index declarations, updates with
// assert/retract, rules over the loaded data, and object-file save/load —
// the persistent-store interface of section 4.6.
//
//   $ ./company_db

#include <cstdio>
#include <fstream>
#include <iostream>

#include "xsb/engine.h"

int main() {
  // 1. Write a CSV-ish data file and bulk-load it (formatted read).
  std::string data_path = "/tmp/xsb_company_employees.dat";
  {
    std::ofstream out(data_path);
    // employee(Id, Name, Dept, Salary)
    out << "1,alice,engineering,120\n"
        << "2,bob,engineering,95\n"
        << "3,carol,sales,87\n"
        << "4,dan,sales,91\n"
        << "5,erin,legal,130\n";
  }

  xsb::Engine engine;
  auto loaded = engine.LoadFactsFormattedFile(data_path, "employee", 4);
  if (!loaded.ok()) {
    std::cerr << "bulk load failed: " << loaded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Bulk-loaded " << loaded.value() << " employee tuples\n";

  // 2. Declare indexing: by id, by department, and by (dept, salary).
  xsb::Status status = engine.ConsultString(R"PROGRAM(
      :- index(employee/4, [1, 3, 3+4]).

      manages(alice, bob).
      manages(erin, alice). manages(erin, carol). manages(carol, dan).

      :- table chain_of_command/2.
      chain_of_command(E, M) :- manages(M, E).
      chain_of_command(E, M) :- chain_of_command(E, M0), manages(M, M0).

      dept_of(Name, Dept) :- employee(_, Name, Dept, _).

      well_paid(Name) :- employee(_, Name, _, S), S >= 100.

      % The paper's null-transformation idiom (section 4.4).
      transform_null(null, 'date unknown') :- !.
      transform_null(X, X).
  )PROGRAM");
  if (!status.ok()) {
    std::cerr << "rules failed: " << status.ToString() << "\n";
    return 1;
  }

  std::cout << "\nEngineering department (index on field 3):\n";
  engine.ForEach("employee(Id, Name, engineering, S)",
                 [](const xsb::Answer& answer) {
                   std::cout << "  #" << answer["Id"] << " " << answer["Name"]
                             << " ($" << answer["S"] << "k)\n";
                   return true;
                 });

  std::cout << "\nEveryone above dan in the chain of command:\n";
  engine.ForEach("chain_of_command(dan, Boss)",
                 [](const xsb::Answer& answer) {
                   std::cout << "  " << answer["Boss"] << "\n";
                   return true;
                 });

  // 3. Updates: a hire and a raise (retract + assert).
  std::cout << "\nHiring frank, giving bob a raise...\n";
  (void)engine.Holds("assert(employee(6, frank, engineering, 88))");
  (void)engine.Holds(
      "retract(employee(2, bob, engineering, 95)), "
      "assert(employee(2, bob, engineering, 105))");

  std::cout << "Well paid now:\n";
  engine.ForEach("well_paid(N)", [](const xsb::Answer& answer) {
    std::cout << "  " << answer["N"] << "\n";
    return true;
  });

  // 4. Persist to an object file and reload into a fresh engine.
  std::string object_path = "/tmp/xsb_company.xob";
  status = engine.SaveObjectFile(object_path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  xsb::Engine restored;
  auto reloaded = restored.LoadObjectFile(object_path);
  std::cout << "\nReloaded " << reloaded.value()
            << " clauses from the object file; engineering head count: "
            << restored.Count("employee(_, N, engineering, _)").value()
            << "\n";

  std::remove(data_path.c_str());
  std::remove(object_path.c_str());
  return 0;
}
