// The same-generation program over a small genealogy — one of the standard
// deductive-database workloads the paper benchmarks against CORAL
// (section 5). Demonstrates tabling on a non-linearly recursive predicate
// plus tfindall/3 for set-at-a-time retrieval of a completed table.
//
//   $ ./same_generation

#include <iostream>

#include "xsb/engine.h"

int main() {
  xsb::Engine engine;

  xsb::Status status = engine.ConsultString(R"PROGRAM(
      % parent(Child, Parent)
      parent(ann,   george).  parent(bob,   george).
      parent(carol, helen).   parent(helen, magda).
      parent(george, magda).  parent(dave,  helen).
      parent(erik,  ann).     parent(fred,  bob).
      parent(gina,  carol).

      :- table sg/2.
      sg(X, X).
      sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).

      cousins(X, Y) :- sg(X, Y), X \== Y.
  )PROGRAM");
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }

  std::cout << "People in erik's generation:\n";
  engine.ForEach("sg(erik, Who)", [](const xsb::Answer& answer) {
    std::cout << "  " << answer["Who"] << "\n";
    return true;
  });

  std::cout << "\nCousin pairs (distinct, same generation):\n";
  engine.ForEach("cousins(X, Y)", [](const xsb::Answer& answer) {
    std::cout << "  " << answer["X"] << " ~ " << answer["Y"] << "\n";
    return true;
  });

  // tfindall collects from a *completed* table, set-at-a-time.
  std::cout << "\ntfindall over the completed sg(ann, _) table:\n";
  engine.ForEach("tfindall(W, sg(ann, W), L)",
                 [](const xsb::Answer& answer) {
                   std::cout << "  L = " << answer["L"] << "\n";
                   return true;
                 });
  return 0;
}
