// The stalemate game of Example 4.1: win(X) :- move(X,Y), tnot win(Y).
//
// Three evaluations side by side:
//   * SLG negation (tnot) on an acyclic game — modularly stratified;
//   * existential negation (e_tnot) — same answers, fewer tables;
//   * the well-founded model for a *cyclic* game, where positions on the
//     cycle are neither won nor lost (undefined) — the case the engine
//     rejects as non-modularly-stratified and XSB routes to its
//     well-founded meta-evaluator.
//
//   $ ./win_game

#include <iostream>
#include <string>

#include "wfs/wfs.h"
#include "xsb/engine.h"

int main() {
  xsb::Engine engine;
  xsb::Status status = engine.ConsultString(R"PROGRAM(
      :- table win/1.  :- table ewin/1.
      win(X)  :- move(X, Y), tnot win(Y).
      ewin(X) :- move(X, Y), e_tnot ewin(Y).

      % A small acyclic game tree.
      move(a, b). move(a, c).
      move(b, d). move(b, e).
      move(c, f).
      move(f, g).
  )PROGRAM");
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }

  std::cout << "Acyclic game, SLG negation vs existential negation:\n";
  for (std::string node : {"a", "b", "c", "d", "f", "g"}) {
    bool w = engine.Holds("win(" + node + ")").value();
    bool e = engine.Holds("ewin(" + node + ")").value();
    std::cout << "  " << node << ": win=" << (w ? "yes" : "no ")
              << "  ewin=" << (e ? "yes" : "no ")
              << (w == e ? "" : "  MISMATCH!") << "\n";
  }
  std::cout << "  tables disposed by e_tnot: "
            << engine.evaluator().tables().stats().subgoals_disposed << "\n";

  // A cyclic game: the engine correctly refuses (not modularly stratified).
  xsb::Engine cyclic;
  (void)cyclic.ConsultString(
      ":- table win/1.\n"
      "win(X) :- move(X,Y), tnot win(Y).\n"
      "move(p, q). move(q, p).\n");
  xsb::Result<bool> refused = cyclic.Holds("win(p)");
  std::cout << "\nCyclic game through the engine: "
            << (refused.ok() ? "unexpectedly answered"
                             : refused.status().ToString())
            << "\n";

  // The well-founded evaluator handles it three-valuedly.
  xsb::datalog::DatalogProgram program;
  status = xsb::datalog::ParseDatalog(
      "move(p, q). move(q, p).\n"
      "win(X) :- move(X, Y), not win(Y).\n",
      &program);
  if (!status.ok()) {
    std::cerr << "datalog load failed: " << status.ToString() << "\n";
    return 1;
  }
  auto model = xsb::wfs::ComputeWellFounded(&program);
  if (!model.ok()) {
    std::cerr << "wfs failed: " << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nWell-founded model of the cyclic game:\n";
  auto win = program.InternPred("win", 1);
  for (const char* node : {"p", "q"}) {
    xsb::datalog::Tuple args{program.consts().Symbol(node)};
    const char* verdict = "undefined";
    switch (model.value().TruthOf(win, args)) {
      case xsb::wfs::Truth::kTrue:
        verdict = "won";
        break;
      case xsb::wfs::Truth::kFalse:
        verdict = "lost";
        break;
      case xsb::wfs::Truth::kUndefined:
        break;
    }
    std::cout << "  win(" << node << "): " << verdict << "\n";
  }
  return 0;
}
