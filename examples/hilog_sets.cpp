// HiLog data modeling (section 4.7): complex terms as predicate symbols,
// sets named by terms, and parameterized set operations — the paper's
// employee-benefits example, verbatim.
//
//   $ ./hilog_sets

#include <iostream>

#include "xsb/engine.h"

int main() {
  xsb::Engine engine;

  xsb::Status status = engine.ConsultString(R"PROGRAM(
      % Benefit packages are sets of (benefit, status) pairs, represented
      % by the HiLog terms package1 and package2 used as predicates.
      package1(health_ins,     required).
      package1(life_ins,       optional).
      package2(free_car,       optional).
      package2(long_vacations, optional).

      benefits('John', package1).
      benefits('Bob',  package2).

      % Set operations parameterized by set names (HiLog functors).
      intersect_2(S1, S2)(X, Y) :- S1(X, Y), S2(X, Y).
      union_2(S1, S2)(X, Y)     :- S1(X, Y).
      union_2(S1, S2)(X, Y)     :- S2(X, Y).

      % A parameterized closure: path(Graph) is itself a predicate.
      :- table apply/3.
      path(Graph)(X, Y) :- Graph(X, Y).
      path(Graph)(X, Y) :- path(Graph)(X, Z), Graph(Z, Y).

      reports_to(erik, ann). reports_to(ann, helen).
      reports_to(fred, bob). reports_to(bob, helen).
  )PROGRAM");
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }

  std::cout << "John's benefits (via the set name bound to P):\n";
  engine.ForEach("benefits('John', P), P(X, Y)",
                 [](const xsb::Answer& answer) {
                   std::cout << "  " << answer["X"] << " (" << answer["Y"]
                             << ")\n";
                   return true;
                 });

  std::cout << "\nUnion of John's and Bob's benefits:\n";
  engine.ForEach(
      "benefits('John', P), benefits('Bob', Q), union_2(P, Q)(X, _)",
      [](const xsb::Answer& answer) {
        std::cout << "  " << answer["X"] << "\n";
        return true;
      });

  auto common = engine.Count(
      "benefits('John', P), benefits('Bob', Q), intersect_2(P, Q)(X, Y)");
  std::cout << "\nCommon benefits: " << common.value() << "\n";

  std::cout << "\nManagement chain above erik (tabled HiLog closure):\n";
  engine.ForEach("path(reports_to)(erik, Boss)",
                 [](const xsb::Answer& answer) {
                   std::cout << "  " << answer["Boss"] << "\n";
                   return true;
                 });
  return 0;
}
