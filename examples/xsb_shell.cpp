// An interactive read-eval-print shell over the engine, in the spirit of
// the paper's section 4.2 ("XSB is normally invoked using its
// read-eval-print loop interpreter").
//
//   $ ./xsb_shell [file.P ...]
//   ?- path(1, X).
//   X = 2 ;
//   ...
//
// Meta-commands: :load FILE, :analyze, :tables, :stats, :abolish, :halt.

#include <iostream>
#include <string>

#include "xsb/engine.h"

namespace {

void PrintHelp() {
  std::cout << "Enter goals ending in '.'; meta-commands:\n"
               "  :load FILE    consult a source file\n"
               "  :analyze      run the program analyzer, print diagnostics\n"
               "  :tables       table-space statistics\n"
               "  :stats        machine statistics\n"
               "  :abolish      drop all tables\n"
               "  :help         this text\n"
               "  :halt         exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  xsb::Engine engine;
  for (int i = 1; i < argc; ++i) {
    xsb::Status s = engine.ConsultFile(argv[i]);
    if (!s.ok()) {
      std::cerr << argv[i] << ": " << s.ToString() << "\n";
      return 1;
    }
    std::cout << "% consulted " << argv[i] << "\n";
  }

  std::cout << "xsb-engine shell (SLG resolution; :help for commands)\n";
  std::string line;
  std::string pending;
  while (true) {
    std::cout << (pending.empty() ? "?- " : "   ") << std::flush;
    if (!std::getline(std::cin, line)) break;

    if (pending.empty() && !line.empty() && line[0] == ':') {
      if (line == ":halt" || line == ":q") break;
      if (line == ":help") {
        PrintHelp();
      } else if (line == ":analyze") {
        xsb::analysis::AnalysisResult result = engine.Analyze();
        std::cout << result.sccs.size() << " SCC"
                  << (result.sccs.size() == 1 ? "" : "s") << ", "
                  << (result.stratified() ? "stratified"
                                          : "not stratified (WFS required)")
                  << (result.widened ? ", call graph widened by meta-calls"
                                     : "")
                  << "\n";
        if (!result.modes.preds.empty()) {
          std::cout << "modes inferred for " << result.modes.preds.size()
                    << " predicate"
                    << (result.modes.preds.size() == 1 ? "" : "s")
                    << " in " << result.modes.iterations
                    << " fixpoint iterations (M001 below; "
                       "predicate_mode/2 queries one)\n";
        }
        for (const xsb::analysis::Diagnostic& diag : result.diagnostics) {
          std::cout << FormatDiagnostic(engine.symbols(), diag) << "\n";
        }
        if (result.diagnostics.empty()) std::cout << "no diagnostics.\n";
      } else if (line == ":tables") {
        const auto& stats = engine.evaluator().tables().stats();
        std::cout << "subgoals created:   " << stats.subgoals_created << "\n"
                  << "subgoals disposed:  " << stats.subgoals_disposed << "\n"
                  << "answers inserted:   " << stats.answers_inserted << "\n"
                  << "duplicate answers:  " << stats.duplicate_answers << "\n"
                  << "consumer suspends:  " << stats.consumer_suspensions
                  << "\n"
                  << "consumer resumes:   " << stats.consumer_resumptions
                  << "\n";
      } else if (line == ":stats") {
        const auto& stats = engine.machine().stats();
        std::cout << "user calls:         " << stats.user_calls << "\n"
                  << "builtin calls:      " << stats.builtin_calls << "\n"
                  << "choice points:      " << stats.choice_points << "\n"
                  << "head unifications:  " << stats.head_unifications << "\n"
                  << "factored returns:   " << stats.factored_answer_returns
                  << "\n"
                  << "flatten reuses:     " << stats.findall_flatten_reuses
                  << "\n";
      } else if (line == ":abolish") {
        engine.AbolishAllTables();
        std::cout << "tables dropped.\n";
      } else if (line.rfind(":load ", 0) == 0) {
        xsb::Status s = engine.ConsultFile(line.substr(6));
        std::cout << (s.ok() ? "loaded." : s.ToString()) << "\n";
      } else {
        std::cout << "unknown command; :help\n";
      }
      continue;
    }

    pending += line;
    // A goal is complete at a terminating period.
    std::string trimmed = pending;
    while (!trimmed.empty() && std::isspace(
               static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    if (trimmed.empty()) {
      pending.clear();
      continue;
    }
    if (trimmed.back() != '.') {
      pending += "\n";
      continue;  // keep reading the multi-line goal
    }
    trimmed.pop_back();
    pending.clear();

    size_t answers = 0;
    xsb::Status status =
        engine.ForEach(trimmed, [&answers](const xsb::Answer& answer) {
          ++answers;
          std::cout << answer.ToString() << " ;\n";
          return answers < 64;  // cap runaway enumerations interactively
        });
    if (!status.ok()) {
      std::cout << "error: " << status.ToString() << "\n";
    } else if (answers == 0) {
      std::cout << "no.\n";
    } else {
      std::cout << "yes (" << answers << " answer"
                << (answers == 1 ? "" : "s") << ").\n";
    }
  }
  return 0;
}
