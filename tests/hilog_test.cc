#include <gtest/gtest.h>

#include <optional>

#include "db/loader.h"
#include "engine/machine.h"
#include "hilog/hilog.h"
#include "parser/reader.h"
#include "tabling/evaluator.h"

namespace xsb {
namespace {

class HilogTest : public ::testing::Test {
 protected:
  HilogTest()
      : store_(&symbols_),
        program_(&symbols_),
        loader_(&store_, &program_),
        machine_(&store_, &program_),
        evaluator_(&machine_) {}

  void Load(const std::string& text) {
    Status s = loader_.ConsultString(text);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  Word Parse(const std::string& text) {
    std::string buffer = text + " .";
    Reader reader(&store_, program_.ops(), buffer, program_.hilog_atoms());
    Result<Word> r = reader.ReadClause();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  size_t Count(const std::string& goal) {
    Result<size_t> r = machine_.CountSolutions(Parse(goal));
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    return r.ok() ? r.value() : size_t(-1);
  }

  bool Holds(const std::string& goal) {
    size_t trail = store_.TrailMark();
    Result<bool> r = machine_.SolveOnce(Parse(goal));
    store_.UndoTrail(trail);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    return r.ok() && r.value();
  }

  SymbolTable symbols_;
  TermStore store_;
  Program program_;
  Loader loader_;
  Machine machine_;
  Evaluator evaluator_;
};

constexpr char kHiLogPath[] =
    "edge1(1,2). edge1(2,3). edge1(3,1).\n"
    "edge2(a,b). edge2(b,c).\n"
    ":- table apply/3.\n"
    "path(Graph)(X, Y) :- Graph(X, Y).\n"
    "path(Graph)(X, Y) :- path(Graph)(X, Z), Graph(Z, Y).\n";

TEST_F(HilogTest, ParameterizedPathRunsOverBothGraphs) {
  Load(kHiLogPath);
  EXPECT_EQ(Count("path(edge1)(1, X)"), 3u);
  EXPECT_EQ(Count("path(edge2)(a, X)"), 2u);
}

TEST_F(HilogTest, SpecializationPreservesAnswers) {
  Load(kHiLogPath);
  size_t before1 = Count("path(edge1)(1, X)");
  size_t before2 = Count("path(edge2)(a, X)");
  evaluator_.AbolishAllTables();

  Result<hilog::SpecializeStats> stats =
      hilog::Specialize(&store_, &program_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().predicates_specialized, 1);
  EXPECT_GE(stats.value().calls_rewritten, 1);

  EXPECT_EQ(Count("path(edge1)(1, X)"), before1);
  EXPECT_EQ(Count("path(edge2)(a, X)"), before2);
}

TEST_F(HilogTest, SpecializationCreatesFirstOrderPredicate) {
  Load(kHiLogPath);
  ASSERT_TRUE(hilog::Specialize(&store_, &program_).ok());
  FunctorId specialized = symbols_.InternFunctor(
      symbols_.InternAtom("apply$path/1"), 3);
  Predicate* pred = program_.Lookup(specialized);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->num_live_clauses(), 2u);
  // Tabling moved from apply/3 to the specialized predicate.
  EXPECT_TRUE(pred->tabled());
  Predicate* apply3 = program_.Lookup(
      symbols_.InternFunctor(symbols_.apply(), 3));
  ASSERT_NE(apply3, nullptr);
  EXPECT_FALSE(apply3->tabled());
  EXPECT_EQ(apply3->num_live_clauses(), 1u);  // the bridge
}

TEST_F(HilogTest, SpecializationSkipsMixedFunctors) {
  Load("f(g)(1). f(g)(2). other(h)(3).\n");
  // apply/2 has heads f(g) and other(h): two different outer symbols.
  Result<hilog::SpecializeStats> stats =
      hilog::Specialize(&store_, &program_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().predicates_specialized, 0);
  EXPECT_EQ(Count("f(g)(X)"), 2u);
}

TEST_F(HilogTest, SetsViaHiLogTermsPaperSection47) {
  Load("package1(health_ins, required).\n"
       "package1(life_ins, optional).\n"
       "package2(free_car, optional).\n"
       "package2(long_vacations, optional).\n"
       "benefits('John', package1). benefits('Bob', package2).\n"
       "intersect_2(S1,S2)(X,Y) :- S1(X,Y), S2(X,Y).\n"
       "union_2(S1,S2)(X,Y) :- S1(X,Y).\n"
       "union_2(S1,S2)(X,Y) :- S2(X,Y).\n");
  // The paper's query: John's benefits through the set name.
  EXPECT_EQ(Count("benefits('John', P), P(X, Y)"), 2u);
  // Union of both packages.
  EXPECT_EQ(Count("benefits('John',P), benefits('Bob',Q), union_2(P,Q)(X,Y)"),
            4u);
  // Their intersection is empty.
  EXPECT_EQ(
      Count("benefits('John',P), benefits('Bob',Q), intersect_2(P,Q)(X,Y)"),
      0u);
}

TEST_F(HilogTest, HiLogDeclaredAtomsDefineApplyClauses) {
  Load(":- hilog r.\n"
       "r(1). r(2).\n"
       "any(X) :- r(X).\n");
  // r/1 clauses are stored as apply(r, 1)...; calls to r(X) in a body
  // resolve through them because r is hilog-declared.
  EXPECT_EQ(Count("any(X)"), 2u);
  EXPECT_EQ(Count("r(X)"), 2u);
}

TEST_F(HilogTest, VariablePredicateQueries) {
  Load("likes(mary, wine). hates(mary, beer).\n"
       "attitude(P) :- P(mary, _).\n");
  EXPECT_EQ(Count("attitude(likes)"), 1u);
  // Unbound functor position cannot be enumerated; it raises instantiation.
  Status s = machine_.Solve(Parse("X(mary, wine)"),
                            []() { return SolveAction::kContinue; });
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace xsb
