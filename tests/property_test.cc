// Parameterized cross-engine property sweeps: the same query evaluated by
// several independent implementations in this repository must agree.
//   * tabled SLG (left recursion) == tabled SLG (right recursion)
//     == bottom-up semi-naive == bottom-up + magic, over graph families;
//   * tnot == e_tnot == the well-founded model, over game trees;
//   * SLD interpreter == WAM bytecode, over list workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bottomup/magic.h"
#include "bottomup/seminaive.h"
#include "parser/reader.h"
#include "tabling/table_space.h"
#include "term/intern.h"
#include "wam/compile.h"
#include "wam/emulator.h"
#include "wfs/wfs.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

// --- Graph family sweep -------------------------------------------------------

struct GraphCase {
  const char* shape;
  int size;
};

std::string GraphEdges(const GraphCase& g) {
  std::string text;
  int n = g.size;
  std::string shape = g.shape;
  if (shape == "chain") {
    for (int i = 1; i < n; ++i) {
      text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) +
              ").\n";
    }
  } else if (shape == "cycle") {
    for (int i = 1; i <= n; ++i) {
      text += "edge(" + std::to_string(i) + "," +
              std::to_string(i % n + 1) + ").\n";
    }
  } else if (shape == "fanout") {
    for (int i = 1; i <= n; ++i) {
      text += "edge(1," + std::to_string(i) + ").\n";
    }
  } else if (shape == "dag") {
    for (int i = 1; i < n; ++i) {
      text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) +
              ").\n";
      if (i + 2 <= n) {
        text += "edge(" + std::to_string(i) + "," + std::to_string(i + 2) +
                ").\n";
      }
    }
  } else if (shape == "grid") {
    int side = n;
    for (int r = 0; r < side; ++r) {
      for (int c = 0; c < side; ++c) {
        int id = r * side + c + 1;
        if (c + 1 < side) {
          text += "edge(" + std::to_string(id) + "," +
                  std::to_string(id + 1) + ").\n";
        }
        if (r + 1 < side) {
          text += "edge(" + std::to_string(id) + "," +
                  std::to_string(id + side) + ").\n";
        }
      }
    }
  }
  return text;
}

class ReachabilityAgreement
    : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ReachabilityAgreement, AllEnginesAgreeOnPathCounts) {
  std::string edges = GraphEdges(GetParam());

  // Tabled, left recursion.
  Engine left;
  ASSERT_TRUE(left.ConsultString(
                      ":- table path/2.\n"
                      "path(X,Y) :- edge(X,Y).\n"
                      "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges)
                  .ok());
  size_t left_bound = left.Count("path(1, X)").value();
  size_t left_all = left.Count("path(X, Y)").value();

  // Tabled, right recursion.
  Engine right;
  ASSERT_TRUE(right.ConsultString(
                       ":- table path/2.\n"
                       "path(X,Y) :- edge(X,Y).\n"
                       "path(X,Y) :- edge(X,Z), path(Z,Y).\n" + edges)
                  .ok());
  EXPECT_EQ(right.Count("path(1, X)").value(), left_bound);
  EXPECT_EQ(right.Count("path(X, Y)").value(), left_all);

  // Bottom-up semi-naive, full evaluation.
  {
    datalog::DatalogProgram program;
    ASSERT_TRUE(datalog::ParseDatalog(
                    "path(X,Y) :- edge(X,Y).\n"
                    "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges,
                    &program)
                    .ok());
    datalog::Evaluation eval(&program);
    ASSERT_TRUE(eval.Run().ok());
    auto query = datalog::ParseQuery("path(1, X)", &program);
    EXPECT_EQ(eval.Select(query.value()).size(), left_bound);
    EXPECT_EQ(eval.relation(program.InternPred("path", 2)).size(), left_all);
  }

  // Bottom-up + magic sets, goal-directed.
  {
    datalog::DatalogProgram program;
    ASSERT_TRUE(datalog::ParseDatalog(
                    "path(X,Y) :- edge(X,Y).\n"
                    "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges,
                    &program)
                    .ok());
    auto query = datalog::ParseQuery("path(1, X)", &program);
    auto adorned = datalog::MagicRewrite(&program, query.value());
    ASSERT_TRUE(adorned.ok());
    datalog::Evaluation eval(&program);
    ASSERT_TRUE(eval.Run().ok());
    EXPECT_EQ(eval.Select(adorned.value()).size(), left_bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphShapes, ReachabilityAgreement,
    ::testing::Values(GraphCase{"chain", 6}, GraphCase{"chain", 40},
                      GraphCase{"cycle", 3}, GraphCase{"cycle", 17},
                      GraphCase{"fanout", 25}, GraphCase{"dag", 12},
                      GraphCase{"grid", 4}, GraphCase{"grid", 6}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return std::string(info.param.shape) + "_" +
             std::to_string(info.param.size);
    });

// --- Negation sweep -------------------------------------------------------------

class NegationAgreement : public ::testing::TestWithParam<int> {};

TEST_P(NegationAgreement, TnotETnotAndWfsAgreeOnGameTrees) {
  int height = GetParam();
  std::string moves;
  int internal = (1 << height) - 1;
  for (int i = 1; i <= internal; ++i) {
    moves += "move(" + std::to_string(i) + "," + std::to_string(2 * i) +
             ").\nmove(" + std::to_string(i) + "," +
             std::to_string(2 * i + 1) + ").\n";
  }

  Engine engine;
  ASSERT_TRUE(engine.ConsultString(
                        ":- table win/1. :- table ewin/1.\n"
                        "win(X) :- move(X,Y), tnot win(Y).\n"
                        "ewin(X) :- move(X,Y), e_tnot ewin(Y).\n" + moves)
                  .ok());

  datalog::DatalogProgram program;
  ASSERT_TRUE(datalog::ParseDatalog(
                  "wins(X) :- move(X,Y), not wins(Y).\n" + moves, &program)
                  .ok());
  auto model = wfs::ComputeWellFounded(&program);
  ASSERT_TRUE(model.ok());
  datalog::PredId wins = program.InternPred("wins", 1);

  int total_nodes = (1 << (height + 1)) - 1;
  for (int node = 1; node <= total_nodes; node += 3) {
    std::string n = std::to_string(node);
    bool tnot_wins = engine.Holds("win(" + n + ")").value();
    bool etnot_wins = engine.Holds("ewin(" + n + ")").value();
    wfs::Truth wfs_truth = model.value().TruthOf(
        wins, {program.consts().Int(node)});
    EXPECT_EQ(tnot_wins, etnot_wins) << "node " << node;
    EXPECT_EQ(tnot_wins, wfs_truth == wfs::Truth::kTrue) << "node " << node;
    EXPECT_NE(wfs_truth, wfs::Truth::kUndefined) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(TreeHeights, NegationAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- WAM vs interpreter sweep -----------------------------------------------------

class WamAgreement : public ::testing::TestWithParam<int> {};

TEST_P(WamAgreement, AppendSplitsMatchInterpreter) {
  int n = GetParam();
  SymbolTable symbols;
  TermStore store(&symbols);
  Program program(&symbols);
  Loader loader(&store, &program);
  ASSERT_TRUE(loader
                  .ConsultString("app([], L, L).\n"
                                 "app([H|T], L, [H|R]) :- app(T, L, R).\n")
                  .ok());
  auto module = wam::CompileModule(&store, program, {});
  ASSERT_TRUE(module.ok());
  wam::Emulator emulator(&store, &module.value());
  Machine machine(&store, &program);

  std::string list = "[";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) list += ",";
    list += std::to_string(i);
  }
  list += "]";
  std::string goal_text = "app(X, Y, " + list + ")";

  auto goal1 = ParseTermString(&store, program.ops(), goal_text);
  ASSERT_TRUE(goal1.ok());
  size_t wam_count = 0;
  size_t trail = store.TrailMark();
  ASSERT_TRUE(emulator
                  .Solve(goal1.value(),
                         [&wam_count]() {
                           ++wam_count;
                           return wam::WamAction::kContinue;
                         })
                  .ok());
  store.UndoTrail(trail);

  auto goal2 = ParseTermString(&store, program.ops(), goal_text);
  Result<size_t> interpreted = machine.CountSolutions(goal2.value());
  ASSERT_TRUE(interpreted.ok());
  EXPECT_EQ(wam_count, interpreted.value());
  EXPECT_EQ(wam_count, static_cast<size_t>(n + 1));  // all splits
}

INSTANTIATE_TEST_SUITE_P(ListLengths, WamAgreement,
                         ::testing::Values(0, 1, 2, 5, 10, 25, 60));

// --- Sorting builtins sweep --------------------------------------------------------

class SortAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SortAgreement, SetofEqualsSortedDedupedFindall) {
  int n = GetParam();
  Engine engine;
  std::string facts;
  for (int i = 0; i < n; ++i) {
    facts += "v(" + std::to_string((i * 7) % 5) + ").\n";
  }
  ASSERT_TRUE(engine.ConsultString(facts).ok());
  auto via_setof = engine.FindAll("setof(X, v(X), L)");
  auto via_findall = engine.FindAll("findall(X, v(X), F), sort(F, L)");
  ASSERT_TRUE(via_setof.ok());
  ASSERT_TRUE(via_findall.ok());
  ASSERT_EQ(via_setof.value().size(), 1u);
  ASSERT_EQ(via_findall.value().size(), 1u);
  EXPECT_EQ(via_setof.value()[0]["L"], via_findall.value()[0]["L"]);
  // msort keeps duplicates: its length equals the fact count.
  EXPECT_TRUE(engine
                  .Holds("findall(X, v(X), F), msort(F, M), length(M, " +
                         std::to_string(n) + ")")
                  .value());
}

INSTANTIATE_TEST_SUITE_P(FactCounts, SortAgreement,
                         ::testing::Values(1, 3, 8, 20));

// --- Interning and answer-trie properties ------------------------------------

// Random FlatTerm generator over a fixed small vocabulary; `ground` controls
// whether kLocal variable cells may appear.
class FlatTermGen {
 public:
  FlatTermGen(TermStore* store, uint32_t seed, bool ground)
      : store_(store), rng_(seed), ground_(ground) {}

  FlatTerm Next() {
    vars_.clear();
    size_t trail = store_->TrailMark();
    Word t = Build(2 + static_cast<int>(rng_() % 2));
    FlatTerm flat = Flatten(*store_, t);
    store_->UndoTrail(trail);
    return flat;
  }

 private:
  Word Build(int depth) {
    SymbolTable* symbols = store_->symbols();
    uint32_t choice = rng_() % (depth <= 0 ? (ground_ ? 2 : 3) : 5);
    switch (choice) {
      case 0:
        return AtomCell(symbols->InternAtom(kAtoms[rng_() % 4]));
      case 1:
        return IntCell(static_cast<int64_t>(rng_() % 50));
      case 2:
        if (!ground_) {
          uint32_t slot = rng_() % 3;
          while (vars_.size() <= slot) vars_.push_back(store_->MakeVar());
          return vars_[slot];
        }
        [[fallthrough]];
      default: {
        int arity = 1 + static_cast<int>(rng_() % 3);
        std::vector<Word> args;
        for (int i = 0; i < arity; ++i) args.push_back(Build(depth - 1));
        FunctorId f = symbols->InternFunctor(
            symbols->InternAtom(kAtoms[rng_() % 4]), arity);
        return store_->MakeStruct(f, args);
      }
    }
  }

  static constexpr const char* kAtoms[4] = {"a", "b", "f", "g"};
  TermStore* store_;
  std::mt19937 rng_;
  bool ground_;
  std::vector<Word> vars_;
};

class InternProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(InternProperty, InternIsIdempotentAndRoundTrips) {
  SymbolTable symbols;
  TermStore store(&symbols);
  InternTable interns(&symbols);
  FlatTermGen gen(&store, GetParam(), /*ground=*/true);

  for (int round = 0; round < 60; ++round) {
    FlatTerm t = gen.Next();
    Word token1 = interns.Intern(t);
    Word token2 = interns.Intern(t);
    // Hash-consing: the same ground term always maps to the same token, so
    // term equality is token (integer) equality.
    EXPECT_EQ(token1, token2);
    FlatTerm back = interns.Decode({token1});
    EXPECT_EQ(back.cells, t.cells) << "round " << round;
    EXPECT_EQ(back.num_vars, 0u);
  }
}

TEST_P(InternProperty, EncodeDecodeRoundTripsNonGroundTerms) {
  SymbolTable symbols;
  TermStore store(&symbols);
  InternTable interns(&symbols);
  FlatTermGen gen(&store, GetParam() + 1000, /*ground=*/false);

  for (int round = 0; round < 60; ++round) {
    FlatTerm t = gen.Next();
    std::vector<Word> tokens;
    interns.Encode(t.cells, &tokens);
    // Tokens never exceed the original cells, and collapse below them as
    // soon as a ground compound subterm appears.
    EXPECT_LE(tokens.size(), t.cells.size());
    FlatTerm back = interns.Decode(tokens);
    EXPECT_EQ(back.cells, t.cells) << "round " << round;
    EXPECT_EQ(back.num_vars, t.num_vars) << "round " << round;
  }
}

TEST_P(InternProperty, DistinctTermsGetDistinctTokens) {
  SymbolTable symbols;
  TermStore store(&symbols);
  InternTable interns(&symbols);
  FlatTermGen gen(&store, GetParam() + 2000, /*ground=*/true);

  std::set<std::vector<Word>> seen_terms;
  std::set<Word> seen_tokens;
  for (int round = 0; round < 60; ++round) {
    FlatTerm t = gen.Next();
    Word token = interns.Intern(t);
    bool new_term = seen_terms.insert(t.cells).second;
    bool new_token = seen_tokens.insert(token).second;
    EXPECT_EQ(new_term, new_token) << "round " << round;
  }
}

class AnswerTrieProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AnswerTrieProperty, InsertMatchesHashSetOracleAndEnumeratesAll) {
  SymbolTable symbols;
  TermStore store(&symbols);
  InternTable interns(&symbols);

  // A two-variable call template ans(A, B): answers are heap instances
  // ans(T1, T2), of which the trie stores only the {A, B} binding streams.
  FunctorId ans2 = symbols.InternFunctor(symbols.InternAtom("ans"), 2);
  Word call = store.MakeStruct(ans2, {store.MakeVar(), store.MakeVar()});
  AnswerTrie trie(&interns, Flatten(store, call));

  std::unordered_set<FlatTerm, FlatTermHash> oracle;  // full instances
  std::vector<FlatTerm> inserted;  // insertion order, first occurrences

  FlatTermGen ground_gen(&store, GetParam(), /*ground=*/true);
  FlatTermGen open_gen(&store, GetParam() + 500, /*ground=*/false);
  std::mt19937 rng(GetParam());

  for (int round = 0; round < 120; ++round) {
    Word inst;
    if (rng() % 4 == 0 && !inserted.empty()) {
      // Forced duplicate: a fresh-variable variant of an earlier instance
      // must hit the same trie path.
      inst = Unflatten(&store, inserted[rng() % inserted.size()]);
    } else {
      Word t1 = Unflatten(
          &store, (rng() % 2 == 0) ? ground_gen.Next() : open_gen.Next());
      Word t2 = Unflatten(
          &store, (rng() % 2 == 0) ? ground_gen.Next() : open_gen.Next());
      inst = store.MakeStruct(ans2, {t1, t2});
    }
    FlatTerm full = Flatten(store, inst);
    size_t saved = 0;
    bool fresh_trie = trie.Insert(store, inst, &saved);
    bool fresh_oracle = oracle.insert(full).second;
    EXPECT_EQ(fresh_trie, fresh_oracle) << "round " << round;
    if (fresh_oracle) inserted.push_back(full);
    if (fresh_trie) {
      // Factoring accounting: stored bindings + saved cells = full instance.
      FlatTerm bindings;
      trie.ReadBindings(trie.size() - 1, &bindings);
      EXPECT_EQ(bindings.cells.size() + saved, full.cells.size())
          << "round " << round;
    }
  }

  // Enumeration: same count, same order as first insertion, and every
  // reconstructed answer element-wise equal to the canonical full instance.
  ASSERT_EQ(trie.size(), inserted.size());
  FlatTerm out;
  for (size_t i = 0; i < trie.size(); ++i) {
    trie.ReadAnswer(i, &out);
    EXPECT_EQ(out.cells, inserted[i].cells) << "index " << i;
    EXPECT_EQ(out.num_vars, inserted[i].num_vars) << "index " << i;
  }
  EXPECT_GT(trie.node_count(), 0u);
}

// --- Call-trie variant indexing vs. the hash-map oracle -----------------------
//
// The call trie replaced an unordered_map<FlatTerm, SubgoalId> as the variant
// index of table space. This sweep replays random call streams — fresh calls,
// forced variants (fresh-variable copies of earlier calls), interleaved
// Dispose, and never-inserted probes — against both the real TableSpace and
// a reimplementation of the old map. They must agree on every {id, created}
// pair, every probe, and the final subgoal count. Seed range matches the
// differential suite whose call streams this models.

class CallTrieProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CallTrieProperty, VariantLookupMatchesHashMapOracle) {
  SymbolTable symbols;
  TermStore store(&symbols);
  TableSpace tables(&symbols, /*answer_trie=*/true);

  // The old implementation: canonical FlatTerm -> subgoal id, ids handed out
  // by a counter that never reuses (mirrors subgoals_.size()).
  std::unordered_map<FlatTerm, SubgoalId, FlatTermHash> oracle;
  SubgoalId oracle_next_id = 0;

  const char* preds[3] = {"p", "q", "path"};
  int arities[3] = {1, 2, 3};
  FunctorId fs[3];
  for (int i = 0; i < 3; ++i) {
    fs[i] = symbols.InternFunctor(symbols.InternAtom(preds[i]), arities[i]);
  }
  FunctorId never = symbols.InternFunctor(symbols.InternAtom("never"), 1);

  FlatTermGen ground_gen(&store, GetParam() * 3 + 1, /*ground=*/true);
  FlatTermGen open_gen(&store, GetParam() * 3 + 2, /*ground=*/false);
  std::mt19937 rng(GetParam());

  std::vector<FlatTerm> all_calls;  // every distinct call ever created
  std::vector<std::pair<FlatTerm, SubgoalId>> live;  // dispose victims

  auto random_arg = [&]() {
    return Unflatten(&store,
                     (rng() % 2 == 0) ? ground_gen.Next() : open_gen.Next());
  };

  for (int round = 0; round < 200; ++round) {
    // A probe of a call that is never tabled must miss in both indexes.
    if (rng() % 6 == 0) {
      Word absent = store.MakeStruct(never, {random_arg()});
      EXPECT_EQ(tables.Lookup(store, absent), kNoSubgoal) << "round " << round;
      EXPECT_EQ(oracle.count(Flatten(store, absent)), 0u) << "round " << round;
    }

    Word call;
    int which;
    if (rng() % 3 == 0 && !all_calls.empty()) {
      // Forced variant: a fresh-variable rebuild of an earlier call (which
      // may since have been disposed — then both sides re-create).
      const FlatTerm& prev = all_calls[rng() % all_calls.size()];
      call = Unflatten(&store, prev);
      FunctorId f;
      ASSERT_TRUE(FlatTopFunctor(prev, &f));
      which = -1;
      for (int i = 0; i < 3; ++i) {
        if (fs[i] == f) which = i;
      }
      ASSERT_GE(which, 0);
    } else {
      which = static_cast<int>(rng() % 3);
      std::vector<Word> args;
      for (int a = 0; a < arities[which]; ++a) args.push_back(random_arg());
      call = store.MakeStruct(fs[which], args);
    }

    FlatTerm canon = Flatten(store, call);
    auto [id, created] = tables.LookupOrCreate(store, call, fs[which], 0);

    auto it = oracle.find(canon);
    bool oracle_created = (it == oracle.end());
    SubgoalId oracle_id;
    if (oracle_created) {
      oracle_id = oracle_next_id++;
      oracle.emplace(canon, oracle_id);
      all_calls.push_back(canon);
      live.push_back({canon, oracle_id});
    } else {
      oracle_id = it->second;
    }

    EXPECT_EQ(id, oracle_id) << "round " << round;
    EXPECT_EQ(created, oracle_created) << "round " << round;
    // The const probe agrees, and the stored canonical call (the answer
    // template decoded from the trie walk) matches the old Flatten form.
    EXPECT_EQ(tables.Lookup(store, call), id) << "round " << round;
    EXPECT_EQ(tables.subgoal(id).call.cells, canon.cells) << "round " << round;
    EXPECT_EQ(tables.subgoal(id).call.num_vars, canon.num_vars)
        << "round " << round;

    // Interleaved disposal: drop a random live variant from both indexes;
    // probes must miss until a later LookupOrCreate re-creates it.
    if (rng() % 8 == 0 && !live.empty()) {
      size_t v = rng() % live.size();
      auto [victim_call, victim_id] = live[v];
      tables.Dispose(victim_id);
      oracle.erase(victim_call);
      live.erase(live.begin() + v);
      Word rebuilt = Unflatten(&store, victim_call);
      EXPECT_EQ(tables.Lookup(store, rebuilt), kNoSubgoal)
          << "round " << round;
    }
  }

  EXPECT_EQ(tables.num_subgoals(), oracle_next_id);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternProperty, ::testing::Range(0u, 8u));
INSTANTIATE_TEST_SUITE_P(Seeds, AnswerTrieProperty,
                         ::testing::Range(0u, 12u));
INSTANTIATE_TEST_SUITE_P(Seeds, CallTrieProperty, ::testing::Range(0u, 51u));

// --- Incremental invalidation properties --------------------------------------
//
// Two bounding properties of the dependency graph, checked from opposite
// sides:
//   * soundness (superset): any variant whose from-scratch answers change
//     under an update must be marked invalid the moment the update lands —
//     over-approximation is allowed, missing a truly affected table is not;
//   * precision (no collateral damage): an update to one component must not
//     invalidate or re-evaluate the tables of an independent component.

// State atom of `goal`'s variant table: undefined|incomplete|complete|invalid.
std::string VariantTableState(Engine& engine, const std::string& goal) {
  std::string state;
  Status status =
      engine.ForEach("table_state(" + goal + ", S)", [&](const Answer& a) {
        state = a["S"];
        return false;
      });
  EXPECT_TRUE(status.ok()) << status.message();
  return state;
}

std::set<std::string> PathAnswers(Engine& engine, const std::string& goal) {
  std::set<std::string> result;
  EXPECT_TRUE(engine
                  .ForEach(goal,
                           [&result](const Answer& a) {
                             result.insert(a.ToString());
                             return true;
                           })
                  .ok());
  return result;
}

class InvalidationSuperset : public ::testing::TestWithParam<uint32_t> {};

TEST_P(InvalidationSuperset, EveryAffectedVariantIsMarkedInvalid) {
  std::mt19937 rng(GetParam() * 977 + 3);
  const int n = 4 + static_cast<int>(rng() % 4);
  std::set<std::pair<int, int>> edges;
  int count = n + static_cast<int>(rng() % n);
  for (int k = 0; k < count; ++k) {
    edges.insert({1 + static_cast<int>(rng() % n),
                  1 + static_cast<int>(rng() % n)});
  }
  auto program_text = [&](const std::set<std::pair<int, int>>& es) {
    std::string text =
        ":- table path/2.\n"
        ":- incremental(edge/2).\n"
        "path(X,Y) :- edge(X,Y).\n"
        "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
    for (auto [a, b] : es) {
      text += "edge(" + std::to_string(a) + "," + std::to_string(b) + ").\n";
    }
    return text;
  };

  Engine engine;
  ASSERT_TRUE(engine.ConsultString(program_text(edges)).ok());

  // Materialize one table per source node plus the open variant.
  std::vector<std::string> variants = {"path(X, Y)"};
  for (int i = 1; i <= n; ++i) {
    variants.push_back("path(" + std::to_string(i) + ", Y)");
  }
  std::vector<std::set<std::string>> before;
  for (const std::string& v : variants) {
    before.push_back(PathAnswers(engine, v));
    ASSERT_EQ(VariantTableState(engine, v), "complete") << v;
  }

  // One random update: assert a fresh edge or retract an existing one.
  std::set<std::pair<int, int>> updated = edges;
  if (rng() % 2 == 0 || edges.empty()) {
    std::pair<int, int> f;
    do {
      f = {1 + static_cast<int>(rng() % n), 1 + static_cast<int>(rng() % n)};
    } while (updated.count(f) != 0);
    updated.insert(f);
    ASSERT_TRUE(engine
                    .Holds("assert(edge(" + std::to_string(f.first) + "," +
                           std::to_string(f.second) + "))")
                    .value());
  } else {
    auto it = edges.begin();
    std::advance(it, rng() % edges.size());
    updated.erase(*it);
    ASSERT_TRUE(engine
                    .Holds("retract(edge(" + std::to_string(it->first) + "," +
                           std::to_string(it->second) + "))")
                    .value());
  }

  // From-scratch truth for the updated facts.
  Engine oracle;
  ASSERT_TRUE(oracle.ConsultString(program_text(updated)).ok());
  for (size_t i = 0; i < variants.size(); ++i) {
    std::set<std::string> after = PathAnswers(oracle, variants[i]);
    std::string state = VariantTableState(engine, variants[i]);
    if (after != before[i]) {
      EXPECT_EQ(state, "invalid")
          << "variant " << variants[i]
          << " changed under the update but its table was not invalidated";
    } else {
      EXPECT_TRUE(state == "complete" || state == "invalid")
          << "variant " << variants[i] << " in state " << state;
    }
    // And re-querying the live engine must agree with the oracle.
    EXPECT_EQ(PathAnswers(engine, variants[i]), after)
        << "variant " << variants[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvalidationSuperset,
                         ::testing::Range(0u, 24u));

TEST(InvalidationPrecision, IrrelevantUpdateLeavesIndependentTablesAlone) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(
                      ":- table path/2.\n"
                      ":- table rpath/2.\n"
                      ":- incremental(edge/2).\n"
                      ":- incremental(redge/2).\n"
                      "path(X,Y) :- edge(X,Y).\n"
                      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                      "rpath(X,Y) :- redge(X,Y).\n"
                      "rpath(X,Y) :- rpath(X,Z), redge(Z,Y).\n"
                      "edge(1,2). edge(2,3).\n"
                      "redge(a,b). redge(b,c).\n")
                  .ok());
  ASSERT_EQ(engine.Count("path(X, Y)").value(), 3u);
  ASSERT_EQ(engine.Count("rpath(X, Y)").value(), 3u);
  ASSERT_EQ(VariantTableState(engine, "path(X, Y)"), "complete");
  ASSERT_EQ(VariantTableState(engine, "rpath(X, Y)"), "complete");

  // Update only the edge/path component.
  ASSERT_TRUE(engine.Holds("assert(edge(3,4))").value());
  EXPECT_EQ(VariantTableState(engine, "path(X, Y)"), "invalid");
  EXPECT_EQ(VariantTableState(engine, "rpath(X, Y)"), "complete")
      << "an update to edge/2 must not touch the independent rpath table";

  // Re-querying rpath must not re-evaluate anything.
  uint64_t reevals = engine.evaluator().tables().stats().tables_reevaluated;
  EXPECT_EQ(engine.Count("rpath(X, Y)").value(), 3u);
  EXPECT_EQ(engine.evaluator().tables().stats().tables_reevaluated, reevals);

  // Re-querying path re-evaluates exactly the invalidated component.
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 6u);
  EXPECT_GT(engine.evaluator().tables().stats().tables_reevaluated, reevals);
  EXPECT_EQ(VariantTableState(engine, "path(X, Y)"), "complete");
}

TEST(SortBuiltins, Basics) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("p(1).\n").ok());
  EXPECT_TRUE(engine.Holds("sort([c,a,b,a], [a,b,c])").value());
  EXPECT_TRUE(engine.Holds("msort([c,a,b,a], [a,a,b,c])").value());
  EXPECT_TRUE(engine.Holds("sort([f(2),f(1),1,z], [1,z,f(1),f(2)])").value());
  EXPECT_TRUE(engine.Holds("bagof(X, p(X), [1])").value());
  EXPECT_FALSE(engine.Holds("bagof(X, fail_p(X), _)").ok());  // existence
  EXPECT_FALSE(engine.Holds("setof(X, (p(X), X > 5), _)").value());
  EXPECT_TRUE(engine.Holds("succ(3, X), X =:= 4").value());
  EXPECT_TRUE(engine.Holds("succ(X, 4), X =:= 3").value());
}

}  // namespace
}  // namespace xsb
