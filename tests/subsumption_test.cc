// Answer subsumption (lattice aggregation in the answer-trie insert path):
// `:- table p(_, min)` declarations keep only the lattice-best answer per
// key. These tier-1 tests cover the core semantics (min / max / first(N)),
// the table_stats counters, the parser and analyzer diagnostics (T001 /
// T002), cursor safety while answers are replaced, incremental invalidation
// of subsumptive tables, and concurrent serving of a min table. The seeded
// 51-graph differential sweep lives in subsumption_property_test.cc (tier 2).

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "server/query_service.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

using analysis::AnalysisResult;
using analysis::DiagCode;
using analysis::Diagnostic;
using analysis::Severity;

const Diagnostic* FindCode(const AnalysisResult& result, DiagCode code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// Shortest path over a cyclic weighted digraph. Without subsumption the
// cycle a -> b -> c -> a would enumerate unboundedly many walk costs; with
// the min lattice each (X, Y) key keeps one strictly decreasing cost, so
// SLG terminates.
const char kShortestPath[] =
    ":- table sp(_, _, min).\n"
    "sp(X, Y, C) :- edge(X, Y, C).\n"
    "sp(X, Y, C) :- sp(X, Z, C1), edge(Z, Y, C2), C is C1 + C2.\n"
    "edge(a, b, 3). edge(b, c, 4). edge(a, c, 10). edge(c, a, 1).\n";

std::map<std::pair<std::string, std::string>, std::string> AllPairs(
    Engine& engine, const std::string& pred) {
  std::map<std::pair<std::string, std::string>, std::string> best;
  Status s = engine.ForEach(pred + "(X, Y, C)", [&](const Answer& a) {
    auto [it, inserted] = best.try_emplace({a["X"], a["Y"]}, a["C"]);
    EXPECT_TRUE(inserted) << "two live answers for key (" << a["X"] << ", "
                          << a["Y"] << ")";
    return true;
  });
  EXPECT_TRUE(s.ok()) << s.message();
  return best;
}

TEST(Subsumption, MinShortestPathOnCyclicGraph) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kShortestPath).ok());
  auto best = AllPairs(engine, "sp");
  // All 9 ordered pairs are connected through the a -> b -> c -> a cycle.
  EXPECT_EQ(best.size(), 9u);
  EXPECT_EQ((best[{"a", "b"}]), "3");
  EXPECT_EQ((best[{"a", "c"}]), "7");   // a-b-c beats the direct 10 edge
  EXPECT_EQ((best[{"c", "b"}]), "4");   // c-a-b
  EXPECT_EQ((best[{"a", "a"}]), "8");   // around the full cycle: 3 + 4 + 1
  EXPECT_EQ((best[{"b", "b"}]), "8");
  EXPECT_EQ((best[{"c", "c"}]), "8");

  // The open call keeps exactly one live answer per key.
  EXPECT_EQ(engine.Count("sp(a, c, C)").value(), 1u);
  EXPECT_TRUE(engine.Holds("sp(a, c, 7)").value());
  // Caveat (documented in DESIGN.md): a call that *binds* the aggregated
  // argument is its own variant subgoal, so it checks derivability of that
  // cost rather than consulting the open call's minimum.
  EXPECT_TRUE(engine.Holds("sp(a, c, 10)").value());
}

TEST(Subsumption, MaxWidestPath) {
  // Widest path (maximize the bottleneck capacity); the max lattice keeps
  // the strictly increasing best per pair and terminates on the cycle.
  Engine engine;
  ASSERT_TRUE(
      engine
          .ConsultString(":- table wp(_, _, max).\n"
                         "wp(X, Y, W) :- edge(X, Y, W).\n"
                         "wp(X, Y, W) :- wp(X, Z, W1), edge(Z, Y, W2), "
                         "W is min(W1, W2).\n"
                         "edge(a, b, 5). edge(b, c, 3). edge(a, c, 2). "
                         "edge(c, a, 9).\n")
          .ok());
  auto best = AllPairs(engine, "wp");
  EXPECT_EQ((best[{"a", "b"}]), "5");
  EXPECT_EQ((best[{"a", "c"}]), "3");  // a-b-c bottleneck 3 beats direct 2
  EXPECT_EQ((best[{"c", "b"}]), "5");  // c-a-b bottleneck min(9,5)
}

TEST(Subsumption, FirstNCapsCardinality) {
  Engine engine;
  ASSERT_TRUE(
      engine
          .ConsultString(":- table pick(first(2)).\n"
                         "pick(X) :- num(X).\n"
                         "num(1). num(2). num(3). num(4).\n")
          .ok());
  // One key (no non-aggregated args): at most 2 answers survive.
  EXPECT_EQ(engine.Count("pick(X)").value(), 2u);
}

TEST(Subsumption, FirstNIsPerKey) {
  Engine engine;
  ASSERT_TRUE(
      engine
          .ConsultString(":- table fk(_, first(1)).\n"
                         "fk(K, V) :- pair(K, V).\n"
                         "pair(a, 1). pair(a, 2). pair(b, 7).\n")
          .ok());
  EXPECT_EQ(engine.Count("fk(K, V)").value(), 2u);
  EXPECT_EQ(engine.Count("fk(a, V)").value(), 1u);
  EXPECT_EQ(engine.Count("fk(b, V)").value(), 1u);
}

TEST(Subsumption, TableStatsCountsDropsAndReplacements) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kShortestPath).ok());
  ASSERT_EQ(engine.Count("sp(X, Y, C)").value(), 9u);
  const auto& stats = engine.evaluator().tables().stats();
  // The cycle derives many walk costs per pair: worse ones are dropped,
  // better ones replace (a - c via b replaces the direct 10-cost edge).
  EXPECT_GE(stats.subsumed_dropped.load(), 1u);
  EXPECT_GE(stats.subsumed_replaced.load(), 1u);

  // ...and both surface through the table_stats/2 builtin.
  bool saw_dropped = false;
  bool saw_replaced = false;
  Status s = engine.ForEach("table_stats(all, S)", [&](const Answer& a) {
    saw_dropped = a["S"].find("subsumed_dropped") != std::string::npos;
    saw_replaced = a["S"].find("subsumed_replaced") != std::string::npos;
    return false;
  });
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_TRUE(saw_dropped);
  EXPECT_TRUE(saw_replaced);
}

TEST(Subsumption, EqualValueIsAVariantNotAReplacement) {
  // Two derivations of the same cost: the second is a duplicate, the key
  // still has exactly one live answer.
  Engine engine;
  ASSERT_TRUE(
      engine
          .ConsultString(":- table sp(_, _, min).\n"
                         "sp(X, Y, C) :- edge(X, Y, C).\n"
                         "sp(X, Y, C) :- sp(X, Z, C1), edge(Z, Y, C2), "
                         "C is C1 + C2.\n"
                         "edge(a, b, 2). edge(b, d, 3). edge(a, c, 2). "
                         "edge(c, d, 3).\n")
          .ok());
  EXPECT_EQ(engine.Count("sp(a, d, C)").value(), 1u);
  EXPECT_TRUE(engine.Holds("sp(a, d, 5)").value());
}

TEST(Subsumption, MinRequiresIntegerAggregate) {
  Engine engine;
  ASSERT_TRUE(
      engine
          .ConsultString(":- table v(_, min).\n"
                         "v(K, C) :- w(K, C).\n"
                         "w(a, oops).\n")
          .ok());
  Status s = engine.ForEach("v(K, C)", [](const Answer&) { return true; });
  EXPECT_FALSE(s.ok());
}

TEST(Subsumption, TableSpecParseErrors) {
  {
    Engine engine;
    EXPECT_FALSE(engine.ConsultString(":- table p(_, foo).\n").ok());
  }
  {
    // At most one aggregated argument.
    Engine engine;
    EXPECT_FALSE(engine.ConsultString(":- table p(min, max).\n").ok());
  }
  {
    Engine engine;
    EXPECT_FALSE(engine.ConsultString(":- table p(_, first(-1)).\n").ok());
  }
  {
    // All-underscore spec falls back to a plain (non-subsumptive) table.
    Engine engine;
    ASSERT_TRUE(engine
                    .ConsultString(":- table p(_, _).\n"
                                   "p(X, Y) :- q(X, Y).\n"
                                   "q(1, 2). q(1, 3).\n")
                    .ok());
    EXPECT_EQ(engine.Count("p(X, Y)").value(), 2u);
  }
}

TEST(Subsumption, AnalyzerRejectsSubsumptionThroughNegation) {
  // p's min aggregate sits in an SCC crossed by negation: the lattice value
  // is not well-defined (T001, error severity).
  const char program[] =
      ":- table p(_, min).\n"
      ":- table q/1.\n"
      "p(X, C) :- q(X), C is 1.\n"
      "q(X) :- num(X), tnot p(X, 0).\n"
      "num(1).\n";
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(program).ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* t001 = FindCode(result, DiagCode::kSubsumptionNegation);
  ASSERT_NE(t001, nullptr);
  EXPECT_EQ(t001->severity, Severity::kError);

  // Strict-analysis consults refuse the program outright.
  Engine strict({.strict_analysis = true});
  EXPECT_FALSE(strict.ConsultString(program).ok());
}

TEST(Subsumption, AnalyzerDowngradesFirstNInRecursion) {
  // first(N) in a recursive SCC is evaluation-order dependent: flagged as a
  // warning (T002), but still accepted — even under strict analysis.
  const char program[] =
      ":- table r(_, first(3)).\n"
      "r(X, V) :- r(X, V).\n"
      "r(X, V) :- seed(X, V).\n"
      "seed(1, 1).\n";
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(program).ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* t002 = FindCode(result, DiagCode::kSubsumptionOrdered);
  ASSERT_NE(t002, nullptr);
  EXPECT_EQ(t002->severity, Severity::kWarning);

  Engine strict({.strict_analysis = true});
  EXPECT_TRUE(strict.ConsultString(program).ok());
}

// A non-subsumptive stratified program must not trip the new pass.
TEST(Subsumption, PlainTablesUnaffectedByPass) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table path/2.\n"
                                 "path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2). edge(2,3).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  EXPECT_EQ(FindCode(result, DiagCode::kSubsumptionNegation), nullptr);
  EXPECT_EQ(FindCode(result, DiagCode::kSubsumptionOrdered), nullptr);
}

// --- Cursor safety under replacement ---------------------------------------

const char kIncrementalShortestPath[] =
    ":- table sp(_, _, min).\n"
    ":- incremental(edge/3).\n"
    "sp(X, Y, C) :- edge(X, Y, C).\n"
    "sp(X, Y, C) :- sp(X, Z, C1), edge(Z, Y, C2), C is C1 + C2.\n"
    "edge(a, b, 5). edge(b, c, 5).\n";

TEST(SubsumptionCursors, OpenCursorSurvivesMidEnumerationImprovement) {
  // An open AnswerSource on a completed min table keeps enumerating its
  // frozen snapshot while an assert invalidates the table and a nested
  // query recomputes it with a better answer (PR 3's retired-answer
  // freeze); the follow-up query then sees the improved minimum.
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kIncrementalShortestPath).ok());
  size_t seen = 0;
  Status s = engine.ForEach("sp(a, Y, C)", [&](const Answer&) {
    if (seen++ == 0) {
      EXPECT_TRUE(engine.Holds("assert(edge(a, c, 1))").value());
      EXPECT_TRUE(engine.Holds("sp(a, c, 1)").value());
    }
    return true;
  });
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(seen, 2u);  // the snapshot: (b, 5) and (c, 10)
  EXPECT_EQ(engine.Count("sp(a, c, C)").value(), 1u);
  EXPECT_TRUE(engine.Holds("sp(a, c, 1)").value());
}

TEST(SubsumptionCursors, RetractReevaluatesToWorseMinimum) {
  // Retracting the edge carrying the current best forces re-evaluation;
  // the recomputed table reflects the (now worse) true minimum.
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kIncrementalShortestPath).ok());
  ASSERT_TRUE(engine.Holds("assert(edge(a, c, 1))").value());
  EXPECT_TRUE(engine.Holds("sp(a, c, 1)").value());

  ASSERT_TRUE(engine.Holds("retract(edge(a, c, 1))").value());
  EXPECT_EQ(engine.Count("sp(a, c, C)").value(), 1u);
  EXPECT_TRUE(engine.Holds("sp(a, c, 10)").value());
  EXPECT_GE(engine.evaluator().tables().stats().tables_reevaluated, 1u);
}

// --- Concurrent serving -----------------------------------------------------

TEST(SubsumptionConcurrent, FourWorkersAgreeOnMinTable) {
  QueryService service({.num_workers = 4});
  ASSERT_TRUE(service.Consult(kShortestPath).ok());
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (int round = 0; round < 4; ++round) {
    futures.push_back(service.Submit("sp(a, Y, C)"));
    futures.push_back(service.Submit("sp(b, Y, C)"));
    futures.push_back(service.Submit("sp(c, Y, C)"));
    futures.push_back(service.Submit("sp(X, Y, C)"));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<std::vector<Answer>> r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status().message();
    // Every enumeration sees exactly one live answer per key.
    std::set<std::pair<std::string, std::string>> keys;
    for (const Answer& a : r.value()) {
      EXPECT_TRUE(keys.insert({a["X"], a["Y"]}).second);
    }
    size_t expected = (i % 4 == 3) ? 9u : 3u;
    EXPECT_EQ(r.value().size(), expected);
  }
  EXPECT_TRUE(service.Query("sp(a, c, 7)").ok());
}

// --- Mode oracle regression --------------------------------------------------

// Under XSB_MODE_ORACLE builds (asan-ubsan / tsan presets) the inferred-mode
// runtime check must fire only for answers that are actually stored: a
// subsumed-dropped or replaced-then-retired answer must not be re-checked
// once its leaf is retired. A replacement-heavy cyclic min query would
// abort here if the oracle walked retired leaves.
TEST(SubsumptionModeOracle, ReplacementHeavyQueryPassesOracle) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kShortestPath).ok());
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(engine.Count("sp(X, Y, C)").value(), 9u);
    engine.AbolishAllTables();
  }
}

}  // namespace
}  // namespace xsb
