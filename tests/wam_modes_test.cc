// Differential tests for WAM mode specialization (src/wam/compile.cc +
// the kCheckMode/kGetConstantNv/kGetStructureRd/kUnifyConstantRd ops):
// a module compiled with specialization ON must produce byte-identical
// answers, in identical order, to the same module compiled with it OFF —
// including on calls that violate the inferred modes and take the guarded
// fallback into the generic copy.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/loader.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "wam/compile.h"
#include "wam/emulator.h"

namespace xsb::wam {
namespace {

class WamModesTest : public ::testing::Test {
 protected:
  WamModesTest() : store_(&symbols_), program_(&symbols_) {}

  // Consults (running the analyzer, which publishes modes) and compiles the
  // program twice: with and without mode specialization.
  void LoadAndCompile(const std::string& text) {
    Loader loader(&store_, &program_);
    Status s = loader.ConsultString(text);
    ASSERT_TRUE(s.ok()) << s.ToString();
    CompileOptions spec_on;
    spec_on.specialize = true;
    Result<CompiledModule> spec =
        CompileModule(&store_, program_, {}, spec_on);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    spec_module_ = std::move(spec.value());
    CompileOptions spec_off;
    spec_off.specialize = false;
    Result<CompiledModule> generic =
        CompileModule(&store_, program_, {}, spec_off);
    ASSERT_TRUE(generic.ok()) << generic.status().ToString();
    generic_module_ = std::move(generic.value());
    spec_emulator_ = std::make_unique<Emulator>(&store_, &spec_module_);
    generic_emulator_ = std::make_unique<Emulator>(&store_, &generic_module_);
    // A module compiled without specialization must emit none of it.
    EXPECT_TRUE(generic_module_.mode_specs.empty());
  }

  Word Parse(const std::string& text) {
    Result<Word> r = ParseTermString(&store_, program_.ops(), text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  // Every solution of `goal` on `emulator`, rendered, in derivation order.
  std::vector<std::string> Answers(Emulator* emulator,
                                   const std::string& goal) {
    Word g = Parse(goal);
    size_t trail = store_.TrailMark();
    std::vector<std::string> out;
    Status s = emulator->Solve(g, [&]() {
      out.push_back(WriteTerm(store_, *program_.ops(), g));
      return WamAction::kContinue;
    });
    store_.UndoTrail(trail);
    EXPECT_TRUE(s.ok()) << goal << ": " << s.ToString();
    return out;
  }

  // The core differential: identical answers, identical order.
  void ExpectAgreement(const std::vector<std::string>& queries) {
    for (const std::string& q : queries) {
      EXPECT_EQ(Answers(spec_emulator_.get(), q),
                Answers(generic_emulator_.get(), q))
          << "query: " << q;
    }
  }

  SymbolTable symbols_;
  TermStore store_;
  Program program_;
  CompiledModule spec_module_;
  CompiledModule generic_module_;
  std::unique_ptr<Emulator> spec_emulator_;
  std::unique_ptr<Emulator> generic_emulator_;
};

TEST_F(WamModesTest, ConstantFactsAgreeOnAllCallShapes) {
  LoadAndCompile("lookup(a, 1). lookup(b, 2). lookup(c, 3).\n"
                 "use(V) :- lookup(a, V).\n");
  // The analyzed call sites always bind argument 1: the compiler must have
  // found a specialization worth guarding.
  ASSERT_FALSE(spec_module_.mode_specs.empty());
  // Constants at the top of an argument are compare-only (kGetConstantNv),
  // which needs nonvar, not ground: the guard must have been weakened from
  // the analyzer's proven-ground meet to the cheap single-deref check.
  for (const std::vector<uint8_t>& spec : spec_module_.mode_specs) {
    for (uint8_t m : spec) EXPECT_NE(m, kModeGround);
  }
  ExpectAgreement({
      "lookup(a, X)",   // matches the inferred pattern (specialized path)
      "lookup(b, 2)",   // fully bound
      "lookup(c, 9)",   // fully bound, fails
      "lookup(Z, 2)",   // violates the pattern: guarded fallback
      "lookup(X, Y)",   // open call, enumerates all three
      "use(V)",
  });
}

TEST_F(WamModesTest, StructureArgumentsAgreeInReadMode) {
  LoadAndCompile(
      "area(rect(W, H), A) :- A is W * H.\n"
      "area(circle(R), A) :- A is 3 * R * R.\n"
      "top(A) :- area(rect(3, 4), A).\n"
      "top2(A) :- area(circle(5), A).\n");
  ExpectAgreement({
      "area(rect(2, 5), A)",    // ground struct: read-mode specialized head
      "area(circle(7), A)",
      "top(A)",
      "top2(A)",
  });
}

TEST_F(WamModesTest, ListRecursionAgreesUnderSeededGroundCalls) {
  LoadAndCompile(
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []).\n"
      "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
      "drive(R) :- nrev([1,2,3,4], R).\n");
  ExpectAgreement({
      "app([1,2], [3], Z)",
      "app(X, Y, [1,2,3])",  // open split: enumerates all four splits
      "nrev([1,2,3], R)",
      "drive(R)",
  });
}

TEST_F(WamModesTest, InteriorConstantsKeepGroundGuardAndAgree) {
  LoadAndCompile(
      "tag(f(red, N), N).\n"
      "tag(g(blue), 0).\n"
      "drive(N) :- tag(f(red, 7), N).\n"
      "drive2(N) :- tag(g(blue), N).\n");
  ASSERT_FALSE(spec_module_.mode_specs.empty());
  // Constants *inside* a structured argument compile to read-mode
  // unify_constant, which is only sound when the whole argument is ground:
  // the guard must keep the analyzer's ground mode here.
  bool any_ground = false;
  for (const std::vector<uint8_t>& spec : spec_module_.mode_specs) {
    for (uint8_t m : spec) any_ground = any_ground || m == kModeGround;
  }
  EXPECT_TRUE(any_ground);
  ExpectAgreement({
      "tag(f(red, 3), X)",
      "tag(f(blue, 3), X)",  // wrong interior constant: fails both ways
      "tag(g(blue), X)",
      "tag(Z, 0)",           // violates the guard: write-mode fallback binds Z
      "drive(N)",
      "drive2(N)",
  });
}

TEST_F(WamModesTest, SpecializedEntryUsesStructureTable) {
  // The mode-specialized copy must dispatch through the structure table
  // exactly like the generic copy — a verified functor switch followed by
  // read-mode heads (kGetStructureRd) — not degrade to a chain. nrev/app
  // key on []/'.'/2, so each predicate body (specialized + generic copy)
  // carries the two-level switch.
  LoadAndCompile(
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []).\n"
      "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
      "drive(R) :- nrev([1,2,3,4,5,6], R).\n");
  ASSERT_FALSE(spec_module_.mode_specs.empty());
  auto count_in = [](const std::string& listing, const std::string& needle) {
    size_t n = 0;
    for (size_t at = listing.find(needle); at != std::string::npos;
         at = listing.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  std::string spec_listing = spec_module_.Disassemble(symbols_);
  std::string generic_listing = generic_module_.Disassemble(symbols_);
  // Specialized copies dispatch on the structure key too: one switch per
  // copy (app and nrev, specialized + generic) vs one per predicate.
  EXPECT_EQ(count_in(spec_listing, "switch_on_structure"), 4u);
  EXPECT_EQ(count_in(generic_listing, "switch_on_structure"), 2u);
  // ...and their struct-keyed clause heads run read-mode after the switch.
  EXPECT_GT(count_in(spec_listing, "get_structure_rd"), 0u);
  EXPECT_EQ(count_in(generic_listing, "get_structure_rd"), 0u);
  EXPECT_EQ(count_in(spec_listing, "try_me_else"), 0u);

  // Differential regression: identical answers on every call shape,
  // including guard violations, and on a conformant bound call the spec
  // path costs at most one guard instruction per guarded entry over the
  // generic path (the structure switch itself is shared, not duplicated).
  ExpectAgreement({
      "app([1,2], [3], Z)",
      "app(X, Y, [1,2,3])",  // violates the pattern: guarded fallback walks
                             // the var arm, bounded by the ground third arg
      "nrev([1,2,3,4], R)",
      "drive(R)",
  });
  uint64_t spec0 = spec_emulator_->stats().instructions;
  uint64_t checks0 = spec_emulator_->stats().mode_checks;
  Answers(spec_emulator_.get(), "drive(R)");
  uint64_t spec_cost = spec_emulator_->stats().instructions - spec0;
  uint64_t checks = spec_emulator_->stats().mode_checks - checks0;
  uint64_t gen0 = generic_emulator_->stats().instructions;
  Answers(generic_emulator_.get(), "drive(R)");
  uint64_t gen_cost = generic_emulator_->stats().instructions - gen0;
  EXPECT_LE(spec_cost, gen_cost + checks);
  // Both modules dispatch every bound list call through the structure side.
  EXPECT_GT(spec_emulator_->stats().switch_structure_hits, 0u);
  EXPECT_GT(generic_emulator_->stats().switch_structure_hits, 0u);
  EXPECT_EQ(spec_emulator_->stats().choice_points,
            generic_emulator_->stats().choice_points);
}

TEST_F(WamModesTest, MixedKeySpecializedEntrySkipsVarChain) {
  // A predicate whose clauses mix constant and structure keys keeps the
  // shared switch_on_term in its specialized copy (both tables live), but
  // the var arm is dead under the nonvar guard — no full chain runs on
  // conformant calls, and violations still enumerate through the fallback.
  LoadAndCompile(
      "kind(nil, empty).\n"
      "kind(leaf(X), l(X)).\n"
      "kind(node(L, R), n(L, R)).\n"
      "probe(K) :- kind(leaf(7), K).\n"
      "probe2(K) :- kind(nil, K).\n");
  ASSERT_FALSE(spec_module_.mode_specs.empty());
  ExpectAgreement({
      "kind(nil, K)",
      "kind(leaf(9), K)",
      "kind(node(a, b), K)",
      "kind(V, l(2))",  // unbound first arg: guard fails, generic enumerates
      "probe(K)",
      "probe2(K)",
  });
  uint64_t cps0 = spec_emulator_->stats().choice_points;
  Answers(spec_emulator_.get(), "probe(K)");
  Answers(spec_emulator_.get(), "probe2(K)");
  EXPECT_EQ(spec_emulator_->stats().choice_points, cps0);
}

TEST_F(WamModesTest, ArithmeticChainsAgree) {
  LoadAndCompile(
      "step(X, Y) :- Y is X + 7.\n"
      "twice(X, Z) :- step(X, Y), step(Y, Z).\n"
      "from_const(Z) :- twice(10, Z).\n");
  ExpectAgreement({
      "step(1, Y)",
      "twice(5, Z)",
      "from_const(Z)",
  });
}

TEST_F(WamModesTest, GuardFailureFallsBackAndCounts) {
  LoadAndCompile("lookup(a, 1). lookup(b, 2). lookup(c, 3).\n"
                 "use(V) :- lookup(a, V).\n");
  ASSERT_FALSE(spec_module_.mode_specs.empty());

  // A call matching the inferred pattern takes the specialized entry.
  uint64_t checks0 = spec_emulator_->stats().mode_checks;
  uint64_t falls0 = spec_emulator_->stats().mode_fallbacks;
  EXPECT_EQ(Answers(spec_emulator_.get(), "lookup(a, X)").size(), 1u);
  EXPECT_GT(spec_emulator_->stats().mode_checks, checks0);
  EXPECT_EQ(spec_emulator_->stats().mode_fallbacks, falls0);

  // A call violating the proven-ground argument fails the guard, falls
  // back to the generic copy, and still answers correctly.
  std::vector<std::string> open =
      Answers(spec_emulator_.get(), "lookup(Z, 2)");
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0], "lookup(b,2)");
  EXPECT_GT(spec_emulator_->stats().mode_fallbacks, falls0);

  // The generic module has no guards at all.
  EXPECT_EQ(Answers(generic_emulator_.get(), "lookup(Z, 2)").size(), 1u);
  EXPECT_EQ(generic_emulator_->stats().mode_checks, 0u);
  EXPECT_EQ(generic_emulator_->stats().mode_fallbacks, 0u);
}

TEST_F(WamModesTest, SpecializedPathExecutesFewerInstructions) {
  LoadAndCompile("lookup(a, 1). lookup(b, 2). lookup(c, 3).\n"
                 "use(V) :- lookup(a, V).\n");
  ASSERT_FALSE(spec_module_.mode_specs.empty());

  auto cost = [&](Emulator* emulator, const std::string& goal) {
    uint64_t before = emulator->stats().instructions;
    Answers(emulator, goal);
    return emulator->stats().instructions - before;
  };
  // A pattern-conformant bound call skips switch_on_term and the verified
  // first-argument get in the clause body.
  EXPECT_LT(cost(spec_emulator_.get(), "lookup(b, X)"),
            cost(generic_emulator_.get(), "lookup(b, X)"));
}

}  // namespace
}  // namespace xsb::wam
