#include <gtest/gtest.h>

#include <unordered_set>

#include "parser/lexer.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "term/store.h"

namespace xsb {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : store_(&symbols_), ops_(&symbols_) {}

  // Parses one term and renders it back canonically.
  std::string RoundTrip(const std::string& text) {
    Result<Word> r = ParseTermString(&store_, &ops_, text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    if (!r.ok()) return "<error>";
    WriteOptions options;
    options.use_operators = false;
    options.hilog_sugar = false;
    return WriteTerm(store_, ops_, r.value(), options);
  }

  std::string Pretty(const std::string& text) {
    Result<Word> r = ParseTermString(&store_, &ops_, text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    if (!r.ok()) return "<error>";
    return WriteTerm(store_, ops_, r.value());
  }

  SymbolTable symbols_;
  TermStore store_;
  OpTable ops_;
};

TEST_F(ParserTest, Atoms) {
  EXPECT_EQ(RoundTrip("foo"), "foo");
  EXPECT_EQ(RoundTrip("'hello world'"), "'hello world'");
  EXPECT_EQ(RoundTrip("[]"), "[]");
}

TEST_F(ParserTest, Integers) {
  EXPECT_EQ(RoundTrip("42"), "42");
  EXPECT_EQ(RoundTrip("-7"), "-7");
  EXPECT_EQ(RoundTrip("0"), "0");
}

TEST_F(ParserTest, SimpleStructs) {
  EXPECT_EQ(RoundTrip("f(a,b)"), "f(a,b)");
  EXPECT_EQ(RoundTrip("f( a , b )"), "f(a,b)");
  EXPECT_EQ(RoundTrip("parent('John','Mary')"), "parent('John','Mary')");
  EXPECT_EQ(RoundTrip("f(g(h(x)))"), "f(g(h(x)))");
}

TEST_F(ParserTest, VariablesShareWithinClause) {
  Result<Word> r = ParseTermString(&store_, &ops_, "f(X, Y, X)");
  ASSERT_TRUE(r.ok());
  Word t = store_.Deref(r.value());
  EXPECT_EQ(store_.Deref(store_.Arg(t, 0)), store_.Deref(store_.Arg(t, 2)));
  EXPECT_NE(store_.Deref(store_.Arg(t, 0)), store_.Deref(store_.Arg(t, 1)));
}

TEST_F(ParserTest, AnonymousVariablesAreDistinct) {
  Result<Word> r = ParseTermString(&store_, &ops_, "f(_, _)");
  ASSERT_TRUE(r.ok());
  Word t = store_.Deref(r.value());
  EXPECT_NE(store_.Deref(store_.Arg(t, 0)), store_.Deref(store_.Arg(t, 1)));
}

TEST_F(ParserTest, Lists) {
  EXPECT_EQ(RoundTrip("[1,2,3]"), "[1,2,3]");
  EXPECT_EQ(RoundTrip("[a|T]"), "[a|_G0]");
  EXPECT_EQ(RoundTrip("[]"), "[]");
  EXPECT_EQ(RoundTrip("[[1],[2,3]]"), "[[1],[2,3]]");
}

TEST_F(ParserTest, OperatorPrecedence) {
  EXPECT_EQ(RoundTrip("1+2*3"), "+(1,*(2,3))");
  EXPECT_EQ(RoundTrip("(1+2)*3"), "*(+(1,2),3)");
  EXPECT_EQ(RoundTrip("1+2+3"), "+(+(1,2),3)");      // yfx
  EXPECT_EQ(RoundTrip("a = b"), "=(a,b)");
  EXPECT_EQ(RoundTrip("X is Y+1"), "is(_G0,+(_G1,1))");
}

TEST_F(ParserTest, ClauseSyntax) {
  EXPECT_EQ(RoundTrip("p :- q, r"), ":-(p,','(q,r))");
  EXPECT_EQ(RoundTrip("p(X) :- q(X), r(X)"),
            ":-(p(_G0),','(q(_G0),r(_G0)))");
  EXPECT_EQ(RoundTrip("a ; b ; c"), ";(a,;(b,c))");  // xfy
  EXPECT_EQ(RoundTrip("(a -> b ; c)"), ";(->(a,b),c)");
}

TEST_F(ParserTest, NegationOperators) {
  EXPECT_EQ(RoundTrip("\\+ p(X)"), "\\+(p(_G0))");
  EXPECT_EQ(RoundTrip("tnot win(X)"), "tnot(win(_G0))");
  EXPECT_EQ(RoundTrip("e_tnot win(X)"), "e_tnot(win(_G0))");
}

TEST_F(ParserTest, HiLogVariableApplication) {
  // X(bob, Y) => apply(X, bob, Y)
  EXPECT_EQ(RoundTrip("X(bob, Y)"), "apply(_G0,bob,_G1)");
}

TEST_F(ParserTest, HiLogCompoundApplication) {
  // path(G)(X, Y) => apply(path(G), X, Y)
  EXPECT_EQ(RoundTrip("path(G)(X, Y)"), "apply(path(_G0),_G1,_G2)");
  // r(X)(parent(X,'Mary')) from the paper.
  EXPECT_EQ(RoundTrip("r(X)(parent(X,'Mary'))"),
            "apply(r(_G0),parent(_G0,'Mary'))");
}

TEST_F(ParserTest, HiLogIntegerApplication) {
  // 7(E) => apply(7, E)
  EXPECT_EQ(RoundTrip("7(E)"), "apply(7,_G0)");
}

TEST_F(ParserTest, HiLogDeclaredAtom) {
  std::unordered_set<AtomId> hilog{symbols_.InternAtom("h")};
  std::string text = "h(a) .";
  Reader reader(&store_, &ops_, text, &hilog);
  Result<Word> r = reader.ReadClause();
  ASSERT_TRUE(r.ok());
  WriteOptions options;
  options.use_operators = false;
  options.hilog_sugar = false;
  EXPECT_EQ(WriteTerm(store_, ops_, r.value(), options), "apply(h,a)");
}

TEST_F(ParserTest, HiLogSugarPrintsApplicationsBack) {
  EXPECT_EQ(Pretty("X(bob, Y)"), "_G0(bob,_G1)");
  EXPECT_EQ(Pretty("path(G)(X, Y)"), "path(_G0)(_G1,_G2)");
}

TEST_F(ParserTest, ParenthesizedTermIsNotApplication) {
  // `foo (a)` with layout: foo applied to nothing; becomes an error since
  // an atom followed by a parenthesized term is not valid Prolog syntax.
  Result<Word> r = ParseTermString(&store_, &ops_, "f (a)");
  EXPECT_FALSE(r.ok());
}

TEST_F(ParserTest, CommentsAreSkipped) {
  EXPECT_EQ(RoundTrip("f(a) % comment\n"), "f(a)");
  EXPECT_EQ(RoundTrip("f(/* inline */ a)"), "f(a)");
}

TEST_F(ParserTest, MultipleClauses) {
  std::string text = "edge(1,2). edge(2,3).\npath(X,Y) :- edge(X,Y).\n";
  Reader reader(&store_, &ops_, text);
  int count = 0;
  while (!reader.AtEof()) {
    Result<Word> r = reader.ReadClause();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST_F(ParserTest, VarNamesReported) {
  std::string text = "p(Xvar, Yvar, _, Xvar) .";
  Reader reader(&store_, &ops_, text);
  Result<Word> r = reader.ReadClause();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(reader.var_names().size(), 2u);
  EXPECT_EQ(reader.var_names()[0].first, "Xvar");
  EXPECT_EQ(reader.var_names()[1].first, "Yvar");
}

TEST_F(ParserTest, Directives) {
  EXPECT_EQ(RoundTrip(":- table win/1"), ":-(table(/(win,1)))");
  EXPECT_EQ(RoundTrip(":- hilog h"), ":-(hilog(h))");
  EXPECT_EQ(RoundTrip(":- index(p/5, [1,2,3+5])"),
            ":-(index(/(p,5),[1,2,+(3,5)]))");
  EXPECT_EQ(RoundTrip(":- table_all"), ":-(table_all)");
}

TEST_F(ParserTest, SyntaxErrorsReportLine) {
  Result<Word> r = ParseTermString(&store_, &ops_, "f(a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParse);
}

TEST_F(ParserTest, StringsBecomeCodeLists) {
  EXPECT_EQ(RoundTrip("\"ab\""), "[97,98]");
}

TEST_F(ParserTest, QuotedAtomsWithEscapes) {
  EXPECT_EQ(RoundTrip("'it''s'"), "'it\\'s'");
  EXPECT_EQ(RoundTrip("'a\\nb'"), "'a\nb'");
}

TEST_F(ParserTest, CurlyBraces) {
  EXPECT_EQ(RoundTrip("{a,b}"), "{}(','(a,b))");
  EXPECT_EQ(RoundTrip("{}"), "{}");
}

// --- Source spans (consumed by the analyzer's diagnostics) -------------------

TEST(LexerSpanTest, TokensAfterLineCommentKeepColumns) {
  Lexer lexer("% leading comment\n  foo(X)");
  Token foo = lexer.Next();
  EXPECT_EQ(foo.kind, TokenKind::kAtom);
  EXPECT_EQ(foo.line, 2);
  EXPECT_EQ(foo.column, 3);
  Token paren = lexer.Next();
  EXPECT_EQ(paren.kind, TokenKind::kFuncLParen);
  EXPECT_EQ(paren.column, 6);
  Token var = lexer.Next();
  EXPECT_EQ(var.kind, TokenKind::kVar);
  EXPECT_EQ(var.line, 2);
  EXPECT_EQ(var.column, 7);
}

TEST(LexerSpanTest, TrailingLineCommentDoesNotSkewNextLine) {
  Lexer lexer("a. % comment after a clause\nbcd.");
  EXPECT_EQ(lexer.Next().text, "a");
  EXPECT_EQ(lexer.Next().kind, TokenKind::kEnd);
  Token b = lexer.Next();
  EXPECT_EQ(b.text, "bcd");
  EXPECT_EQ(b.line, 2);
  EXPECT_EQ(b.column, 1);
}

TEST(LexerSpanTest, BlockCommentsTrackLinesAndColumns) {
  Lexer lexer("/* one\n   two */ x /* inline */ Y");
  Token x = lexer.Next();
  EXPECT_EQ(x.text, "x");
  EXPECT_EQ(x.line, 2);
  EXPECT_EQ(x.column, 11);
  Token y = lexer.Next();
  EXPECT_EQ(y.kind, TokenKind::kVar);
  EXPECT_EQ(y.line, 2);
  EXPECT_EQ(y.column, 26);
}

TEST_F(ParserTest, ReaderReportsClauseAndVariableSpans) {
  Reader reader(&store_, &ops_,
                "% header\nfirst(1).\n  second(X, Y) :- q(X, X).\n");
  ASSERT_TRUE(reader.ReadClause().ok());
  EXPECT_EQ(reader.clause_line(), 2);
  EXPECT_EQ(reader.clause_column(), 1);

  ASSERT_TRUE(reader.ReadClause().ok());
  EXPECT_EQ(reader.clause_line(), 3);
  EXPECT_EQ(reader.clause_column(), 3);
  const std::vector<Reader::VarInfo>& vars = reader.var_infos();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].name, "X");
  EXPECT_EQ(vars[0].occurrences, 3);
  EXPECT_EQ(vars[0].line, 3);
  EXPECT_EQ(vars[0].column, 10);
  EXPECT_EQ(vars[1].name, "Y");
  EXPECT_EQ(vars[1].occurrences, 1);
  EXPECT_EQ(vars[1].column, 13);
}

}  // namespace
}  // namespace xsb
