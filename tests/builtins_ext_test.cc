// Tests for the extended builtin set: atom/string conversions, clause/2
// introspection, and user-declared operators via the op/3 directive.

#include <gtest/gtest.h>

#include "xsb/engine.h"

namespace xsb {
namespace {

TEST(AtomBuiltins, AtomCodesBothDirections) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("seed(1).\n").ok());
  EXPECT_TRUE(engine.Holds("atom_codes(abc, [97,98,99])").value());
  EXPECT_TRUE(engine.Holds("atom_codes(abc, L), length(L, 3)").value());
  EXPECT_TRUE(engine.Holds("atom_codes(A, [104,105]), A == hi").value());
  EXPECT_TRUE(engine.Holds("atom_codes(42, [0'4, 0'2])").value());
}

TEST(AtomBuiltins, NumberCodes) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("seed(1).\n").ok());
  EXPECT_TRUE(engine.Holds("number_codes(123, \"123\")").value());
  EXPECT_TRUE(engine.Holds("number_codes(N, \"77\"), N =:= 77").value());
  EXPECT_TRUE(engine.Holds("number_codes(N, \"-5\"), N =:= -5").value());
  EXPECT_FALSE(engine.Holds("number_codes(_, \"abc\")").value());
}

TEST(AtomBuiltins, LengthAndConcat) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("seed(1).\n").ok());
  EXPECT_TRUE(engine.Holds("atom_length(hello, 5)").value());
  EXPECT_TRUE(engine.Holds("atom_concat(foo, bar, foobar)").value());
  EXPECT_TRUE(engine.Holds("atom_concat(x, 1, A), A == x1").value());
  EXPECT_FALSE(engine.Holds("atom_concat(a, b, c)").value());
}

TEST(ClauseIntrospection, EnumeratesFactsAndRules) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("p(1). p(2).\n"
                                 "q(X) :- p(X), X > 1.\n")
                  .ok());
  EXPECT_EQ(engine.Count("clause(p(X), true)").value(), 2u);
  EXPECT_TRUE(engine.Holds("clause(p(1), B), B == true").value());
  EXPECT_TRUE(engine.Holds("clause(q(X), (p(X), X > 1))").value());
  EXPECT_FALSE(engine.Holds("clause(p(3), _)").value());
  // clause/2 sees dynamic updates.
  ASSERT_TRUE(engine.Holds("assert(p(3))").value());
  EXPECT_TRUE(engine.Holds("clause(p(3), true)").value());
}

TEST(UserOperators, OpDirectiveChangesParsing) {
  Engine engine;
  Status s = engine.ConsultString(
      ":- op(700, xfx, likes).\n"
      ":- op(650, xfy, and).\n"
      "fact(mary likes wine and cheese).\n"
      "query(X, Y) :- fact(X likes Y).\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto answers = engine.FindAll("query(Who, What)");
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  EXPECT_EQ(answers.value()[0]["Who"], "mary");
  EXPECT_EQ(answers.value()[0]["What"], "wine and cheese");
}

TEST(UserOperators, BadOpDirectivesRejected) {
  Engine e1, e2;
  EXPECT_FALSE(e1.ConsultString(":- op(9999, xfx, foo).\n").ok());
  EXPECT_FALSE(e2.ConsultString(":- op(700, zfz, foo).\n").ok());
}

}  // namespace
}  // namespace xsb
