#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "db/objfile.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

TEST(EngineApi, QuickstartFlow) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table path/2.\n"
                                 "path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2). edge(2,3). edge(3,1).\n")
                  .ok());
  Result<size_t> count = engine.Count("path(1, X)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 3u);

  Result<std::vector<Answer>> answers = engine.FindAll("path(1, X)");
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 3u);
  EXPECT_EQ(answers.value()[0]["X"], "2");
  EXPECT_EQ(answers.value()[0].ToString(), "X = 2");
}

TEST(EngineApi, ForEachStopsOnFalse) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("n(1). n(2). n(3).\n").ok());
  int seen = 0;
  ASSERT_TRUE(engine
                  .ForEach("n(X)",
                           [&seen](const Answer&) {
                             ++seen;
                             return seen < 2;
                           })
                  .ok());
  EXPECT_EQ(seen, 2);
}

TEST(EngineApi, HoldsAndErrors) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("p(a).\n").ok());
  EXPECT_TRUE(engine.Holds("p(a)").value());
  EXPECT_FALSE(engine.Holds("p(b)").value());
  EXPECT_FALSE(engine.Holds("undefined_thing(1)").ok());
  EXPECT_FALSE(engine.ConsultString("p(a) :- ").ok());
}

TEST(EngineApi, AnswersRenderCompoundTerms) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("holds(f(g(1), [a,b])).\n").ok());
  Result<std::vector<Answer>> answers = engine.FindAll("holds(T)");
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  EXPECT_EQ(answers.value()[0]["T"], "f(g(1),[a,b])");
}

TEST(EngineApi, GroundQueryHasEmptyBindings) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("p(a).\n").ok());
  Result<std::vector<Answer>> answers = engine.FindAll("p(a)");
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  EXPECT_EQ(answers.value()[0].ToString(), "true");
}

TEST(EngineApi, ObjectFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/xsb_objfile_test.xob";
  {
    Engine engine;
    ASSERT_TRUE(engine
                    .ConsultString(":- table tc/2.\n"
                                   "tc(X,Y) :- e(X,Y).\n"
                                   "tc(X,Y) :- tc(X,Z), e(Z,Y).\n"
                                   "e(1,2). e(2,3). e(a,f(b)).\n")
                    .ok());
    ASSERT_TRUE(engine.SaveObjectFile(path).ok());
  }
  Engine fresh;
  Result<size_t> loaded = fresh.LoadObjectFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), 5u);
  // Tabling attribute survives; answers match.
  EXPECT_EQ(fresh.Count("tc(1, X)").value(), 2u);
  EXPECT_TRUE(fresh.Holds("e(a, f(b))").value());
  std::remove(path.c_str());
}

TEST(EngineApi, ObjectFileRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/xsb_objfile_garbage.xob";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an object file at all";
  }
  Engine engine;
  EXPECT_FALSE(engine.LoadObjectFile(path).ok());
  std::remove(path.c_str());
}

TEST(EngineApi, SpecializeHiLogThroughFacade) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("edge(1,2). edge(2,3).\n"
                                 ":- table apply/3.\n"
                                 "closure(G)(X,Y) :- G(X,Y).\n"
                                 "closure(G)(X,Y) :- closure(G)(X,Z), "
                                 "G(Z,Y).\n")
                  .ok());
  EXPECT_EQ(engine.Count("closure(edge)(1, Y)").value(), 2u);
  engine.AbolishAllTables();
  ASSERT_TRUE(engine.SpecializeHiLog().ok());
  EXPECT_EQ(engine.Count("closure(edge)(1, Y)").value(), 2u);
}

TEST(EngineApi, TabledNegationThroughFacade) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table win/1.\n"
                                 "win(X) :- move(X,Y), tnot win(Y).\n"
                                 "move(1,2). move(2,3).\n")
                  .ok());
  EXPECT_FALSE(engine.Holds("win(3)").value());
  EXPECT_TRUE(engine.Holds("win(2)").value());
  EXPECT_FALSE(engine.Holds("win(1)").value());
}

}  // namespace
}  // namespace xsb
