#include <gtest/gtest.h>

#include "wfs/wfs.h"

namespace xsb::wfs {
namespace {

using datalog::DatalogProgram;
using datalog::ParseDatalog;
using datalog::PredId;
using datalog::Tuple;
using datalog::Value;

class WfsTest : public ::testing::Test {
 protected:
  void Load(const std::string& text) {
    Status s = ParseDatalog(text, &program_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  Truth Of(const std::string& pred, std::vector<int64_t> args) {
    PredId p = program_.InternPred(pred, static_cast<int>(args.size()));
    Tuple t;
    for (int64_t a : args) t.push_back(program_.consts().Int(a));
    return model_->TruthOf(p, t);
  }

  Truth OfSym(const std::string& pred, std::vector<std::string> args) {
    PredId p = program_.InternPred(pred, static_cast<int>(args.size()));
    Tuple t;
    for (const std::string& a : args) {
      t.push_back(program_.consts().Symbol(a));
    }
    return model_->TruthOf(p, t);
  }

  void Compute() {
    Result<WellFoundedModel> r = ComputeWellFounded(&program_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    model_ = r.value();
  }

  DatalogProgram program_;
  std::optional<WellFoundedModel> model_;
};

TEST_F(WfsTest, PositiveProgramIsTwoValued) {
  Load("edge(1,2). edge(2,3).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), edge(Z,Y).\n");
  Compute();
  EXPECT_EQ(Of("path", {1, 3}), Truth::kTrue);
  EXPECT_EQ(Of("path", {3, 1}), Truth::kFalse);
  EXPECT_EQ(model_->num_undefined(), 0u);
}

TEST_F(WfsTest, WinOnChainMatchesGameTheory) {
  Load("move(1,2). move(2,3). move(3,4).\n"
       "wins(X) :- move(X,Y), not wins(Y).\n");
  Compute();
  EXPECT_EQ(Of("wins", {1}), Truth::kTrue);
  EXPECT_EQ(Of("wins", {2}), Truth::kFalse);
  EXPECT_EQ(Of("wins", {3}), Truth::kTrue);
  EXPECT_EQ(Of("wins", {4}), Truth::kFalse);
  EXPECT_EQ(model_->num_undefined(), 0u);
}

TEST_F(WfsTest, WinOnCycleIsUndefined) {
  // The stalemate game of Example 4.1 with a cyclic move relation: every
  // position on the 2-cycle is undefined in the well-founded model.
  Load("move(a,b). move(b,a).\n"
       "wins(X) :- move(X,Y), not wins(Y).\n");
  Compute();
  EXPECT_EQ(OfSym("wins", {"a"}), Truth::kUndefined);
  EXPECT_EQ(OfSym("wins", {"b"}), Truth::kUndefined);
  EXPECT_EQ(model_->num_undefined(), 2u);
}

TEST_F(WfsTest, MixedCycleAndEscape) {
  // a <-> b cycle, but b can also move to c (a dead end): b wins by moving
  // to c; a loses nothing... classic: wins(b) true (c loses), wins(a):
  // a's only move is to b which wins, so a loses.
  Load("move(a,b). move(b,a). move(b,c).\n"
       "wins(X) :- move(X,Y), not wins(Y).\n");
  Compute();
  EXPECT_EQ(OfSym("wins", {"c"}), Truth::kFalse);
  EXPECT_EQ(OfSym("wins", {"b"}), Truth::kTrue);
  EXPECT_EQ(OfSym("wins", {"a"}), Truth::kFalse);
  EXPECT_EQ(model_->num_undefined(), 0u);
}

TEST_F(WfsTest, BarberParadoxIsUndefined) {
  // shaves(barber, X) :- person(X), not shaves(X, X).
  Load("person(barber).\n"
       "shaves(X, X2) :- is_barber(X), person(X2), not shaves(X2, X2).\n"
       "is_barber(barber).\n");
  Compute();
  EXPECT_EQ(OfSym("shaves", {"barber", "barber"}), Truth::kUndefined);
}

TEST_F(WfsTest, StratifiedProgramMatchesPerfectModel) {
  Load("node(1). node(2). node(3). edge(1,2).\n"
       "reach(X) :- edge(1,X).\n"
       "reach(X) :- reach(Y), edge(Y,X).\n"
       "unreach(X) :- node(X), not reach(X).\n");
  Compute();
  EXPECT_EQ(Of("unreach", {3}), Truth::kTrue);
  EXPECT_EQ(Of("unreach", {2}), Truth::kFalse);
  EXPECT_EQ(model_->num_undefined(), 0u);
}

TEST_F(WfsTest, EdbFactsAreTrue) {
  Load("edge(1,2).\np(X) :- edge(X,Y), not edge(Y,X).\n");
  Compute();
  EXPECT_EQ(Of("edge", {1, 2}), Truth::kTrue);
  EXPECT_EQ(Of("p", {1}), Truth::kTrue);
  EXPECT_EQ(Of("p", {2}), Truth::kFalse);
}

TEST_F(WfsTest, GroundingIsRelevanceRestricted) {
  // Irrelevant large component: grounding follows the overestimate only.
  std::string text = "wins(X) :- move(X,Y), not wins(Y).\nmove(1,2).\n";
  for (int i = 100; i < 160; ++i) {
    text += "isolated(" + std::to_string(i) + ").\n";
  }
  Load(text);
  Compute();
  // Ground atoms are the two wins atoms, not 60+ isolated ones.
  EXPECT_LE(model_->num_ground_rules(), 2u);
  EXPECT_EQ(Of("wins", {1}), Truth::kTrue);
  EXPECT_EQ(Of("wins", {2}), Truth::kFalse);
}

TEST_F(WfsTest, ThreeValuedInterleaving) {
  // p :- not q. q :- not p. (both undefined)  r :- not s. s. (r false)
  Load("p(1) :- base(1), not q(1).\n"
       "q(1) :- base(1), not p(1).\n"
       "base(1).\n"
       "s(1).\n"
       "r(1) :- base(1), not s(1).\n");
  Compute();
  EXPECT_EQ(Of("p", {1}), Truth::kUndefined);
  EXPECT_EQ(Of("q", {1}), Truth::kUndefined);
  EXPECT_EQ(Of("r", {1}), Truth::kFalse);
  EXPECT_EQ(Of("s", {1}), Truth::kTrue);
}

}  // namespace
}  // namespace xsb::wfs
